#pragma once
// Multi-layer AHB at the transaction level.
//
// The shared AHB serializes every transfer through one fabric; the
// multi-layer interconnect (the architecture ARM later shipped as
// multi-layer AHB / AHB-Lite matrices) gives each master its own layer
// into per-slave input stages, so transfers to *different* slaves
// proceed concurrently and only same-slave contention arbitrates. This
// model quantifies the architecture-exploration question the paper's
// introduction poses: what does the extra parallel datapath cost in
// power, and what does it buy in throughput?
//
// Modeling choices: per-layer power FSMs (each layer is a full
// address/data mux structure -- that is the power price of the
// topology), per-slave busy tracking for contention, global time =
// max over layers (layers run in parallel).

#include <cstdint>
#include <memory>
#include <vector>

#include "power/power_fsm.hpp"
#include "tlm/tlm.hpp"

namespace ahbp::tlm {

/// Transaction-level multi-layer interconnect.
class MultilayerBus {
public:
  struct Config {
    unsigned n_masters = 2;
    gate::Technology tech = gate::Technology::default_2003();
  };

  explicit MultilayerBus(Config cfg);

  /// Maps a slave at [base, base+size) on every layer.
  void map(TlmSlave& slave, std::uint32_t base, std::uint32_t size);

  /// One word transfer by `master` on its own layer. Advances that
  /// layer's local clock; contention for a busy slave stalls the layer.
  bool read(unsigned master, std::uint32_t addr, std::uint32_t& data);
  bool write(unsigned master, std::uint32_t addr, std::uint32_t data);

  /// Advances `n` idle cycles on one layer.
  void idle(unsigned master, unsigned n);

  /// @name Results
  ///@{
  /// Global elapsed cycles: the slowest layer (layers run in parallel).
  [[nodiscard]] std::uint64_t cycles() const;
  [[nodiscard]] std::uint64_t layer_cycles(unsigned master) const {
    return layers_.at(master).cycles;
  }
  /// Total energy across every layer's fabric.
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] const power::PowerFsm& layer_fsm(unsigned master) const {
    return *layers_.at(master).fsm;
  }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  /// Cycles lost to same-slave contention, summed over layers.
  [[nodiscard]] std::uint64_t contention_cycles() const { return contention_; }
  ///@}

private:
  struct Mapping {
    std::uint32_t base;
    std::uint32_t size;
    TlmSlave* slave;
    std::uint64_t busy_until = 0;  ///< global cycle the slave frees up
  };
  struct Layer {
    std::unique_ptr<power::PowerFsm> fsm;
    std::uint64_t cycles = 0;
  };

  [[nodiscard]] Mapping* decode(std::uint32_t addr);
  bool transfer(unsigned master, std::uint32_t addr, bool write,
                std::uint32_t& data);

  Config cfg_;
  std::vector<Mapping> map_;
  std::vector<Layer> layers_;
  std::uint64_t transfers_ = 0;
  std::uint64_t contention_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace ahbp::tlm
