#pragma once
// Transaction-level model of the AHB system.
//
// The paper's speed argument ("the simulation of a complete SoC, that
// uses system-level IP models, can be several hundreds times faster than
// an RTL simulation") extends one abstraction level up: a function-call
// bus with no event kernel at all. Masters invoke read()/write()
// directly; timing is approximated by a cycle counter; the *same*
// instruction-based power FSM runs on synthesized per-transfer cycle
// views, so energy stays comparable with the cycle-accurate model while
// simulation gets much faster.
//
// This module is deliberately kernel-free: no ahbp::sim types appear.

#include <cstdint>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "power/power_fsm.hpp"

namespace ahbp::tlm {

/// Slave-side interface of the TLM bus.
class TlmSlave {
public:
  virtual ~TlmSlave() = default;
  /// Word read; returns extra wait cycles consumed.
  virtual unsigned read(std::uint32_t addr, std::uint32_t& data) = 0;
  /// Word write; returns extra wait cycles consumed.
  virtual unsigned write(std::uint32_t addr, std::uint32_t data) = 0;
};

/// Sparse word memory with fixed wait states.
class TlmMemory final : public TlmSlave {
public:
  explicit TlmMemory(unsigned wait_states = 0) : waits_(wait_states) {}

  unsigned read(std::uint32_t addr, std::uint32_t& data) override;
  unsigned write(std::uint32_t addr, std::uint32_t data) override;

  [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
  void poke(std::uint32_t addr, std::uint32_t value);

private:
  unsigned waits_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;
};

/// The function-call bus: address decode, cycle accounting, and the
/// power FSM fed per transaction.
class TlmBus {
public:
  struct Config {
    unsigned n_masters = 3;
    gate::Technology tech = gate::Technology::default_2003();
  };

  explicit TlmBus(Config cfg);

  /// Maps a slave at [base, base+size). Ranges must not overlap.
  void map(TlmSlave& slave, std::uint32_t base, std::uint32_t size);

  /// One word transfer by `master`. Advances time by 1 + wait cycles and
  /// feeds the power FSM. Returns false for unmapped addresses (counted
  /// as an error; 2 cycles, like the default slave's ERROR).
  bool read(unsigned master, std::uint32_t addr, std::uint32_t& data);
  bool write(unsigned master, std::uint32_t addr, std::uint32_t data);

  /// Advances `n` idle bus cycles (power FSM sees IDLE views).
  void idle(unsigned n, std::uint32_t pending_requests = 0);

  /// @name Results
  ///@{
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] double total_energy() const { return fsm_.total_energy(); }
  [[nodiscard]] const power::PowerFsm& fsm() const { return fsm_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  ///@}

private:
  struct Mapping {
    std::uint32_t base;
    std::uint32_t size;
    TlmSlave* slave;
  };
  [[nodiscard]] const Mapping* decode(std::uint32_t addr) const;
  void account_transfer(unsigned master, std::uint32_t addr, bool write,
                        std::uint32_t data, unsigned wait_cycles,
                        std::uint8_t slave_index);

  Config cfg_;
  std::vector<Mapping> map_;
  power::PowerFsm fsm_;
  std::uint64_t cycles_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t errors_ = 0;
  std::uint8_t last_master_ = 0;
};

/// Procedural re-implementation of the paper testbench's master pattern
/// (WRITE-READ non-interruptible sequences + IDLE) on the TLM bus.
class TlmTrafficRunner {
public:
  struct Config {
    std::uint32_t addr_base = 0;
    std::uint32_t addr_range = 1024;
    unsigned min_idle_cycles = 1;
    unsigned max_idle_cycles = 8;
    unsigned min_pairs = 4;
    unsigned max_pairs = 24;
    std::uint64_t seed = 1;
  };

  TlmTrafficRunner(TlmBus& bus, unsigned master_index, Config cfg);

  /// Runs tenures until the bus cycle counter passes `until_cycle`.
  void run_until(std::uint64_t until_cycle);

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t mismatches() const { return mismatches_; }

private:
  TlmBus& bus_;
  unsigned master_;
  Config cfg_;
  std::mt19937_64 rng_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace ahbp::tlm
