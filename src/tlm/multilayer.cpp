#include "tlm/multilayer.hpp"

#include <algorithm>

#include "sim/report.hpp"

namespace ahbp::tlm {

using sim::SimError;

MultilayerBus::MultilayerBus(Config cfg) : cfg_(cfg) {
  if (cfg.n_masters < 1) throw SimError("MultilayerBus: need >= 1 master");
  layers_.resize(cfg.n_masters);
  for (Layer& l : layers_) {
    // Each layer is a 1-master fabric; the power FSM wants >= 2 mux
    // inputs, so model the layer's input stage as a 2-input structure
    // (master + the slave-side arbitration path).
    l.fsm = std::make_unique<power::PowerFsm>(
        power::PowerFsm::Config{.n_masters = 2, .n_slaves = 4, .tech = cfg.tech});
  }
}

void MultilayerBus::map(TlmSlave& slave, std::uint32_t base, std::uint32_t size) {
  if (size == 0) throw SimError("MultilayerBus: empty slave range");
  for (const Mapping& m : map_) {
    if (base < m.base + m.size && m.base < base + size) {
      throw SimError("MultilayerBus: overlapping slave ranges");
    }
  }
  map_.push_back(Mapping{base, size, &slave});
}

MultilayerBus::Mapping* MultilayerBus::decode(std::uint32_t addr) {
  for (Mapping& m : map_) {
    if (addr >= m.base && addr - m.base < m.size) return &m;
  }
  return nullptr;
}

bool MultilayerBus::transfer(unsigned master, std::uint32_t addr, bool write,
                             std::uint32_t& data) {
  Layer& layer = layers_.at(master);
  Mapping* m = decode(addr);
  if (m == nullptr) {
    ++errors_;
    layer.cycles += 2;
    return false;
  }

  // Same-slave contention: wait until the slave's input stage frees up.
  if (m->busy_until > layer.cycles) {
    const std::uint64_t stall = m->busy_until - layer.cycles;
    contention_ += stall;
    power::CycleView idle_v;
    idle_v.grant_vector = 1;
    layer.fsm->step_repeated(idle_v, stall);
    layer.cycles += stall;
  }

  const unsigned waits =
      write ? m->slave->write(addr - m->base, data) : m->slave->read(addr - m->base, data);

  // Account on this layer's fabric.
  power::CycleView v;
  v.haddr = addr;
  v.htrans = 2;
  v.hwrite = write;
  v.data_active = true;
  v.data_write = write;
  v.data_slave = static_cast<std::uint8_t>(m - map_.data());
  v.grant_vector = 1;
  v.req_vector = 1;
  if (write) {
    v.hwdata = data;
  } else {
    v.hrdata = data;
  }
  for (unsigned w = 0; w < waits; ++w) {
    power::CycleView stall = v;
    stall.hready = false;
    layer.fsm->step(stall);
    ++layer.cycles;
  }
  layer.fsm->step(v);
  ++layer.cycles;
  m->busy_until = layer.cycles;  // slave occupied until this completes
  ++transfers_;
  return true;
}

bool MultilayerBus::read(unsigned master, std::uint32_t addr, std::uint32_t& data) {
  return transfer(master, addr, false, data);
}

bool MultilayerBus::write(unsigned master, std::uint32_t addr, std::uint32_t data) {
  return transfer(master, addr, true, data);
}

void MultilayerBus::idle(unsigned master, unsigned n) {
  Layer& layer = layers_.at(master);
  power::CycleView v;
  v.grant_vector = 1;
  layer.fsm->step_repeated(v, n);
  layer.cycles += n;
}

std::uint64_t MultilayerBus::cycles() const {
  std::uint64_t max = 0;
  for (const Layer& l : layers_) max = std::max(max, l.cycles);
  return max;
}

double MultilayerBus::total_energy() const {
  double e = 0.0;
  for (const Layer& l : layers_) e += l.fsm->total_energy();
  return e;
}

}  // namespace ahbp::tlm
