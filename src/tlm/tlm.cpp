#include "tlm/tlm.hpp"

#include "sim/report.hpp"

namespace ahbp::tlm {

using sim::SimError;

// ---------------------------------------------------------------------------
// TlmMemory

unsigned TlmMemory::read(std::uint32_t addr, std::uint32_t& data) {
  const auto it = mem_.find(addr / 4);
  data = it == mem_.end() ? 0 : it->second;
  return waits_;
}

unsigned TlmMemory::write(std::uint32_t addr, std::uint32_t data) {
  mem_[addr / 4] = data;
  return waits_;
}

std::uint32_t TlmMemory::peek(std::uint32_t addr) const {
  const auto it = mem_.find(addr / 4);
  return it == mem_.end() ? 0 : it->second;
}

void TlmMemory::poke(std::uint32_t addr, std::uint32_t value) {
  mem_[addr / 4] = value;
}

// ---------------------------------------------------------------------------
// TlmBus

TlmBus::TlmBus(Config cfg)
    : cfg_(cfg),
      fsm_(power::PowerFsm::Config{.n_masters = cfg.n_masters,
                                   .n_slaves = 4,
                                   .tech = cfg.tech}) {}

void TlmBus::map(TlmSlave& slave, std::uint32_t base, std::uint32_t size) {
  if (size == 0) throw SimError("TlmBus: empty slave range");
  for (const Mapping& m : map_) {
    if (base < m.base + m.size && m.base < base + size) {
      throw SimError("TlmBus: overlapping slave ranges");
    }
  }
  map_.push_back(Mapping{base, size, &slave});
}

const TlmBus::Mapping* TlmBus::decode(std::uint32_t addr) const {
  for (const Mapping& m : map_) {
    if (addr >= m.base && addr - m.base < m.size) return &m;
  }
  return nullptr;
}

void TlmBus::account_transfer(unsigned master, std::uint32_t addr, bool write,
                              std::uint32_t data, unsigned wait_cycles,
                              std::uint8_t slave_index) {
  // Synthesize the cycle views the cycle-accurate monitor would have
  // sampled: wait cycles repeat the same data phase, then one completing
  // cycle carries the payload.
  power::CycleView v;
  v.haddr = addr;
  v.htrans = 2;  // NONSEQ
  v.hwrite = write;
  v.data_active = true;
  v.data_write = write;
  v.data_slave = slave_index;
  v.hmaster = static_cast<std::uint8_t>(master);
  v.grant_vector = 1u << master;
  v.req_vector = 1u << master;
  if (write) {
    v.hwdata = data;
  } else {
    v.hrdata = data;
  }
  for (unsigned w = 0; w < wait_cycles; ++w) {
    power::CycleView stall = v;
    stall.hready = false;
    fsm_.step(stall);
    ++cycles_;
  }
  v.hready = true;
  fsm_.step(v);
  ++cycles_;
  ++transfers_;
  last_master_ = static_cast<std::uint8_t>(master);
}

bool TlmBus::read(unsigned master, std::uint32_t addr, std::uint32_t& data) {
  const Mapping* m = decode(addr);
  if (m == nullptr) {
    ++errors_;
    cycles_ += 2;
    return false;
  }
  const unsigned waits = m->slave->read(addr - m->base, data);
  account_transfer(master, addr, false, data, waits,
                   static_cast<std::uint8_t>(m - map_.data()));
  return true;
}

bool TlmBus::write(unsigned master, std::uint32_t addr, std::uint32_t data) {
  const Mapping* m = decode(addr);
  if (m == nullptr) {
    ++errors_;
    cycles_ += 2;
    return false;
  }
  const unsigned waits = m->slave->write(addr - m->base, data);
  account_transfer(master, addr, true, data, waits,
                   static_cast<std::uint8_t>(m - map_.data()));
  return true;
}

void TlmBus::idle(unsigned n, std::uint32_t pending_requests) {
  power::CycleView v;
  v.hmaster = last_master_;
  v.grant_vector = 1u << last_master_;
  v.req_vector = pending_requests;
  fsm_.step_repeated(v, n);
  cycles_ += n;
}

// ---------------------------------------------------------------------------
// TlmTrafficRunner

TlmTrafficRunner::TlmTrafficRunner(TlmBus& bus, unsigned master_index, Config cfg)
    : bus_(bus), master_(master_index), cfg_(cfg), rng_(cfg.seed) {}

void TlmTrafficRunner::run_until(std::uint64_t until_cycle) {
  auto rand_between = [this](unsigned lo, unsigned hi) {
    return lo + static_cast<unsigned>(rng_() % (hi - lo + 1));
  };
  while (bus_.cycles() < until_cycle) {
    bus_.idle(rand_between(cfg_.min_idle_cycles, cfg_.max_idle_cycles));
    // Arbitration approximation: one handover-ish idle cycle with this
    // master requesting before the tenure starts.
    bus_.idle(1, 1u << master_);
    const unsigned pairs = rand_between(cfg_.min_pairs, cfg_.max_pairs);
    for (unsigned p = 0; p < pairs; ++p) {
      const std::uint32_t words = cfg_.addr_range / 4;
      const std::uint32_t addr =
          cfg_.addr_base + 4 * static_cast<std::uint32_t>(rng_() % words);
      const auto value = static_cast<std::uint32_t>(rng_());
      bus_.write(master_, addr, value);
      ++writes_;
      std::uint32_t back = 0;
      bus_.read(master_, addr, back);
      ++reads_;
      if (back != value) ++mismatches_;
    }
  }
}

}  // namespace ahbp::tlm
