#pragma once
// Signal<T>: the evaluate/update communication channel.
//
// Writes during the evaluation phase are buffered; the kernel applies them
// in the update phase, and a changed value notifies the signal's
// value-changed event as a delta notification. This gives deterministic
// simulation independent of process execution order, exactly as in
// SystemC's sc_signal.

#include <concepts>
#include <string>
#include <utility>

#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/object.hpp"

namespace ahbp::sim {

/// Type-erased base so the kernel can hold heterogeneous update requests.
class SignalBase : public Object {
public:
  [[nodiscard]] const char* kind() const override { return "signal"; }

  /// Applies the buffered write (kernel update phase).
  virtual void apply_update() = 0;

protected:
  SignalBase(Module* parent, std::string name) : Object(parent, std::move(name)) {}

  /// Enqueues this signal for the next update phase (idempotent per delta).
  void request_update() {
    if (update_requested_) return;
    update_requested_ = true;
    kernel().request_update(*this);
  }

  bool update_requested_ = false;
};

/// A signal carrying a value of type T (equality-comparable, copyable).
///
/// Reads always observe the *current* value; writes take effect one delta
/// cycle later. Writing the current value is a no-op (no event fires).
template <std::equality_comparable T>
class Signal : public SignalBase {
public:
  /// Creates the signal with an initial current value.
  Signal(Module* parent, std::string name, T initial = T{})
      : SignalBase(parent, std::move(name)),
        current_(initial),
        next_(std::move(initial)),
        changed_(parent, basename() + ".changed"),
        posedge_(parent, basename() + ".pos"),
        negedge_(parent, basename() + ".neg") {}

  /// Current (settled) value.
  [[nodiscard]] const T& read() const { return current_; }

  /// Buffers `v` to become the current value in the next update phase.
  ///
  /// A later write in the same evaluation phase may restore the current
  /// value; the already-queued update then finds next_ == current_ in
  /// apply_update() and degrades to a no-op (no event fires).
  void write(const T& v) {
    next_ = v;
    if (next_ != current_) request_update();
  }

  /// Fires one delta after any update that changes the value.
  [[nodiscard]] Event& value_changed_event() { return changed_; }

  /// For Signal<bool>: fires on false->true updates.
  [[nodiscard]] Event& posedge_event()
    requires std::same_as<T, bool>
  {
    return posedge_;
  }
  /// For Signal<bool>: fires on true->false updates.
  [[nodiscard]] Event& negedge_event()
    requires std::same_as<T, bool>
  {
    return negedge_;
  }

  /// True if the value changed in the immediately preceding update phase
  /// of the current time step.
  [[nodiscard]] bool event() const {
    return last_change_time_ == kernel().now() &&
           last_change_delta_ + 1 == kernel().delta_count();
  }

  void apply_update() override {
    update_requested_ = false;
    if (next_ == current_) return;
    const bool was = to_bool(current_);
    current_ = next_;
    last_change_time_ = kernel().now();
    last_change_delta_ = kernel().delta_count();
    changed_.notify_delta();
    if constexpr (std::same_as<T, bool>) {
      if (!was && current_) posedge_.notify_delta();
      if (was && !current_) negedge_.notify_delta();
    }
  }

private:
  static bool to_bool(const T& v) {
    if constexpr (std::same_as<T, bool>) {
      return v;
    } else {
      (void)v;
      return false;
    }
  }

  T current_;
  T next_;
  Event changed_;
  Event posedge_;
  Event negedge_;
  SimTime last_change_time_ = SimTime::max();
  std::uint64_t last_change_delta_ = UINT64_MAX;
};

}  // namespace ahbp::sim
