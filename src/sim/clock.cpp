#include "sim/clock.hpp"

#include "sim/report.hpp"

namespace ahbp::sim {

Clock::Clock(Module* parent, std::string name, SimTime period, double duty,
             SimTime start_delay)
    : Module(parent, std::move(name)),
      period_(period),
      start_delay_(start_delay),
      sig_(this, "clk", false),
      tick_event_(this, "tick"),
      driver_(this, "driver", [this] { tick(); }) {
  if (period <= SimTime::zero()) throw SimError("clock period must be positive");
  if (duty <= 0.0 || duty >= 1.0) throw SimError("clock duty cycle must be in (0,1)");
  high_time_ = SimTime::fs(
      static_cast<std::int64_t>(static_cast<double>(period.femtoseconds()) * duty));
  low_time_ = period - high_time_;
  if (high_time_ <= SimTime::zero() || low_time_ <= SimTime::zero()) {
    throw SimError("clock duty cycle unrepresentable at this period");
  }
  driver_.sensitive(tick_event_);
}

void Clock::tick() {
  if (!started_) {
    // Process initialization at time 0: establish the low level and wait
    // out the start delay (a zero delay means the clock rises right away,
    // still at time 0, one delta later).
    started_ = true;
    if (start_delay_ > SimTime::zero()) {
      sig_.write(false);
      tick_event_.notify(start_delay_);
      return;
    }
  }
  sig_.write(next_value_);
  tick_event_.notify(next_value_ ? high_time_ : low_time_);
  next_value_ = !next_value_;
}

}  // namespace ahbp::sim
