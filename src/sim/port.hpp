#pragma once
// Thin, late-bound port wrappers over Signal<T>.
//
// Modules declare In<T>/Out<T> members and the netlist-level code binds
// them to signals during elaboration. Reading or writing an unbound port
// is a fatal error, which catches wiring mistakes immediately.

#include "sim/report.hpp"
#include "sim/signal.hpp"

namespace ahbp::sim {

/// Read-only port.
template <std::equality_comparable T>
class In {
public:
  In() = default;

  void bind(Signal<T>& s) { sig_ = &s; }
  [[nodiscard]] bool bound() const { return sig_ != nullptr; }

  [[nodiscard]] const T& read() const {
    check();
    return sig_->read();
  }
  [[nodiscard]] Event& value_changed_event() const {
    check();
    return sig_->value_changed_event();
  }
  [[nodiscard]] Event& posedge_event() const
    requires std::same_as<T, bool>
  {
    check();
    return sig_->posedge_event();
  }
  [[nodiscard]] Event& negedge_event() const
    requires std::same_as<T, bool>
  {
    check();
    return sig_->negedge_event();
  }

private:
  void check() const {
    if (sig_ == nullptr) throw SimError("access to unbound In<> port");
  }
  Signal<T>* sig_ = nullptr;
};

/// Write (and read-back) port.
template <std::equality_comparable T>
class Out {
public:
  Out() = default;

  void bind(Signal<T>& s) { sig_ = &s; }
  [[nodiscard]] bool bound() const { return sig_ != nullptr; }

  void write(const T& v) {
    check();
    sig_->write(v);
  }
  [[nodiscard]] const T& read() const {
    check();
    return sig_->read();
  }

private:
  void check() const {
    if (sig_ == nullptr) throw SimError("access to unbound Out<> port");
  }
  Signal<T>* sig_ = nullptr;
};

}  // namespace ahbp::sim
