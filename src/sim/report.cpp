#include "sim/report.hpp"

#include <iostream>

namespace ahbp::sim {

thread_local Reporter::Counts Reporter::counts_;
thread_local Severity Reporter::min_printed_ = Severity::kWarning;

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "Info";
    case Severity::kWarning: return "Warning";
    case Severity::kError: return "Error";
    case Severity::kFatal: return "Fatal";
  }
  return "?";
}

void Reporter::report(Severity sev, std::string_view msg_type, std::string_view msg) {
  switch (sev) {
    case Severity::kInfo: ++counts_.info; break;
    case Severity::kWarning: ++counts_.warning; break;
    case Severity::kError: ++counts_.error; break;
    case Severity::kFatal: ++counts_.fatal; break;
  }
  if (sev >= min_printed_) {
    std::ostream& os = sev == Severity::kInfo ? std::cout : std::cerr;
    os << to_string(sev) << ": (" << msg_type << ") " << msg << '\n';
  }
  if (sev >= Severity::kError) {
    throw SimError(std::string("(") + std::string(msg_type) + ") " + std::string(msg));
  }
}

const Reporter::Counts& Reporter::counts() { return counts_; }

void Reporter::reset_counts() { counts_ = Counts{}; }

void Reporter::set_verbosity(Severity min_printed) { min_printed_ = min_printed; }

}  // namespace ahbp::sim
