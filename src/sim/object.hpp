#pragma once
// Named-object hierarchy shared by all kernel entities (modules, signals,
// events, processes). Comparable to SystemC's sc_object.

#include <string>
#include <vector>

namespace ahbp::sim {

class Kernel;
class Module;

/// Base class for every named simulation entity.
///
/// An Object belongs to exactly one Kernel and optionally to a parent
/// Module; its `full_name()` is the dot-separated hierarchical path
/// ("top.bus.arbiter"). Objects register with the kernel on construction
/// and deregister on destruction, so the kernel can enumerate the design
/// hierarchy (used by tracing and diagnostics).
class Object {
public:
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;
  virtual ~Object();

  /// Leaf name, as given at construction.
  [[nodiscard]] const std::string& basename() const { return name_; }
  /// Hierarchical name: parent path + "." + basename.
  [[nodiscard]] std::string full_name() const;
  /// Enclosing module, or nullptr for top-level objects.
  [[nodiscard]] Module* parent() const { return parent_; }
  /// The kernel this object is registered with.
  [[nodiscard]] Kernel& kernel() const { return *kernel_; }

  /// A short string naming the concrete kind ("module", "signal", ...).
  [[nodiscard]] virtual const char* kind() const { return "object"; }

protected:
  /// Creates an object under `parent` (nullptr = top level). The kernel is
  /// taken from the parent, or from Kernel::current() for top-level
  /// objects; constructing a top-level object with no kernel alive is a
  /// fatal error.
  Object(Module* parent, std::string name);

private:
  std::string name_;
  Module* parent_ = nullptr;
  Kernel* kernel_ = nullptr;
};

}  // namespace ahbp::sim
