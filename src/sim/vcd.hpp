#pragma once
// Minimal VCD (IEEE 1364 value-change dump) trace writer.
//
// Supports Signal<bool> and unsigned integral signals. Values are sampled
// whenever simulated time advances, so each dumped instant shows settled
// (post-delta) values only.

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sim/signal.hpp"

namespace ahbp::sim {

/// Writes a VCD file while the simulation runs.
///
/// Usage:
///   VcdWriter vcd("trace.vcd", kernel);
///   vcd.add(my_bool_signal);
///   vcd.add(my_addr_signal, 32);
///   kernel.run(...);
///   // file flushed on destruction (or flush())
class VcdWriter {
public:
  /// Registers with `k` to sample at every timestep boundary. Timescale
  /// is 1 ps.
  VcdWriter(const std::string& path, Kernel& k);
  ~VcdWriter();
  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Traces a boolean signal (1-bit wire named after the signal).
  void add(const Signal<bool>& s);
  /// Traces an unsigned integral signal as a `width`-bit vector.
  template <std::unsigned_integral T>
  void add(const Signal<T>& s, unsigned width) {
    add_channel(s.full_name(), width, [&s] { return static_cast<std::uint64_t>(s.read()); });
  }

  /// Traces an arbitrary sampled quantity (e.g. a power probe).
  void add_channel(std::string name, unsigned width,
                   std::function<std::uint64_t()> sample);

  void flush();

private:
  void sample_all();
  void write_header();
  static std::string escape(const std::string& name);

  struct Channel {
    std::string name;
    std::string id;  ///< short VCD identifier
    unsigned width;
    std::function<std::uint64_t()> sample;
    std::uint64_t last = 0;
    bool ever_dumped = false;
  };

  Kernel& kernel_;
  std::ofstream out_;
  std::vector<Channel> channels_;
  bool header_written_ = false;
  std::int64_t last_dump_ps_ = -1;
};

}  // namespace ahbp::sim
