#pragma once
// Event: the kernel's notification primitive (cf. SystemC sc_event).

#include <cstdint>
#include <vector>

#include "sim/object.hpp"
#include "sim/time.hpp"

namespace ahbp::sim {

class Process;

/// A notification primitive that wakes processes.
///
/// Processes can be *statically* sensitive to an event (woken on every
/// trigger) or *dynamically* waiting (coroutine threads: woken exactly
/// once, subscription cleared on trigger).
///
/// An event holds at most one pending notification. A pending notification
/// may only be overridden by an earlier one: immediate beats delta beats
/// timed, and an earlier timed notification beats a later one. This follows
/// the IEEE 1666 (SystemC) semantics.
class Event : public Object {
public:
  Event(Module* parent, std::string name);
  ~Event() override;

  [[nodiscard]] const char* kind() const override { return "event"; }

  /// Immediate notification: sensitive processes become runnable in the
  /// *current* evaluation phase. Cancels any pending notification.
  void notify();
  /// Delta notification: processes wake in the next delta cycle.
  void notify_delta();
  /// Timed notification at now() + delay. delay must be > 0 (use
  /// notify_delta() for zero-delay semantics).
  void notify(SimTime delay);
  /// Cancels a pending (delta or timed) notification, if any.
  void cancel();

  /// True if a delta or timed notification is pending.
  [[nodiscard]] bool pending() const { return pending_ != Pending::kNone; }

  /// Static sensitivity management (used by Process::sensitive()).
  void add_static(Process& p);
  void remove_static(Process& p);
  /// One-shot subscription for a dynamically waiting process.
  void add_dynamic(Process& p);
  void remove_dynamic(Process& p);

  /// Kernel time of the most recent trigger, or SimTime::max() if never.
  [[nodiscard]] SimTime last_triggered() const { return last_triggered_; }

private:
  friend class Kernel;

  enum class Pending : std::uint8_t { kNone, kDelta, kTimed };

  /// Wakes all sensitive processes. Called by the kernel (delta/timed
  /// queues) or directly by notify().
  void trigger();

  Pending pending_ = Pending::kNone;
  SimTime pending_time_;
  std::uint64_t stamp_ = 0;  ///< invalidates stale timed-queue entries
  SimTime last_triggered_ = SimTime::max();
  std::vector<Process*> static_sensitive_;
  std::vector<Process*> dynamic_waiters_;
};

}  // namespace ahbp::sim
