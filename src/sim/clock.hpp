#pragma once
// Clock: a free-running boolean signal source.

#include <string>

#include "sim/module.hpp"
#include "sim/process.hpp"
#include "sim/signal.hpp"

namespace ahbp::sim {

/// Generates a periodic boolean waveform on an internal Signal<bool>.
///
/// The first edge is the rising edge at `start_delay` (default: time 0 is
/// already high is avoided -- the clock initializes low and rises at
/// start_delay, so method processes sensitive to posedge see a clean first
/// cycle).
class Clock : public Module {
public:
  /// period must be positive; duty in (0, 1).
  Clock(Module* parent, std::string name, SimTime period, double duty = 0.5,
        SimTime start_delay = SimTime::zero());

  /// The generated waveform.
  [[nodiscard]] Signal<bool>& signal() { return sig_; }
  [[nodiscard]] const Signal<bool>& signal() const { return sig_; }

  /// Current clock level.
  [[nodiscard]] bool read() const { return sig_.read(); }

  /// Convenience accessors for sensitivity lists.
  [[nodiscard]] Event& posedge_event() { return sig_.posedge_event(); }
  [[nodiscard]] Event& negedge_event() { return sig_.negedge_event(); }

  [[nodiscard]] SimTime period() const { return period_; }

  [[nodiscard]] const char* kind() const override { return "clock"; }

private:
  void tick();

  SimTime period_;
  SimTime high_time_;
  SimTime low_time_;
  SimTime start_delay_;
  bool started_ = false;
  bool next_value_ = true;
  Signal<bool> sig_;
  Event tick_event_;
  Method driver_;
};

}  // namespace ahbp::sim
