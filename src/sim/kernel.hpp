#pragma once
// The discrete-event scheduler.
//
// Implements the classic SystemC evaluate/update/delta-notify cycle:
//
//   1. evaluate : run every runnable process (writes are buffered)
//   2. update   : apply buffered signal writes; changed signals queue
//                 their value-changed events as delta notifications
//   3. notify   : trigger delta-queued events, making processes runnable
//                 for the next delta cycle at the same time
//   4. advance  : when no process is runnable, jump to the earliest timed
//                 notification and trigger it
//
// One Kernel instance is alive *per thread* (enforced); top-level objects
// attach to Kernel::current(), which is thread-local. Independent
// simulations may therefore run concurrently, one kernel per
// std::jthread -- the contract the campaign runner (src/campaign/)
// builds on. A single Kernel and the objects attached to it must only
// ever be touched from the thread that constructed it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/time.hpp"

namespace ahbp::sim {

class Object;
class Event;
class Process;
class SignalBase;

/// Execution budget enforced by Kernel::run() -- the watchdog that keeps
/// a hung or runaway simulation from stalling its hosting thread forever
/// (the campaign runner's per-RunSpec guard; see src/campaign/).
///
/// All limits are zero-initialized to "unlimited"; enforcing them costs
/// one integer compare per delta / time advance, so an unlimited budget
/// is free on the hot path. Limits count from the start of each run()
/// call, not from kernel construction.
struct RunBudget {
  /// Max distinct simulated instants (time advances); 0 = unlimited.
  std::uint64_t max_cycles = 0;
  /// Max process activations (catches delta storms too); 0 = unlimited.
  std::uint64_t max_events = 0;
  /// Wall-clock deadline for one run() call in seconds; 0 = unlimited.
  /// Checked every 1024 time advances, so enforcement lags by up to one
  /// check interval.
  double max_wall_seconds = 0.0;
  /// When true, a run() that drains its event queues while coroutine
  /// processes are still suspended (waiting on events that can never
  /// fire) throws DeadlockError naming the blocked set instead of
  /// returning as if the simulation had finished.
  bool fail_on_deadlock = false;

  [[nodiscard]] bool limited() const {
    return max_cycles != 0 || max_events != 0 || max_wall_seconds > 0.0 ||
           fail_on_deadlock;
  }
};

/// Thrown by Kernel::run() when a RunBudget limit is hit. The message
/// names the exhausted limit, the simulated time reached and the set of
/// still-waiting thread processes.
class BudgetExceededError : public SimError {
public:
  explicit BudgetExceededError(const std::string& what) : SimError(what) {}
};

/// Thrown by Kernel::run() when the cooperative cancel flag (see
/// Kernel::set_cancel_flag) is observed set.
class RunCancelledError : public SimError {
public:
  explicit RunCancelledError(const std::string& what) : SimError(what) {}
};

/// Thrown by Kernel::run() on deadlock diagnosis (RunBudget::
/// fail_on_deadlock): no runnable or pending events remain but thread
/// processes are still suspended.
class DeadlockError : public SimError {
public:
  explicit DeadlockError(const std::string& what) : SimError(what) {}
};

/// The simulation scheduler and object registry.
class Kernel {
public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// The kernel top-level objects attach to. Fatal if none is alive on
  /// the calling thread.
  [[nodiscard]] static Kernel& current();
  /// Nullptr-safe variant of current().
  [[nodiscard]] static Kernel* current_or_null();

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }
  /// Number of delta cycles executed so far.
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }

  /// Scheduler activity counters, maintained on the hot path at the
  /// cost of one increment each -- the kernel's own observability feed
  /// (exported as `sim.*` metrics by the CLI's --telemetry mode).
  struct Stats {
    std::uint64_t processes_executed = 0;  ///< process activations
    std::uint64_t timed_notifications = 0; ///< timed events triggered
    std::uint64_t time_advances = 0;       ///< distinct simulated instants
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Runs the simulation for `duration` (default: until no activity
  /// remains). On return, now() has advanced to start + duration, or to
  /// the last activity if the event queues drained first (or if duration
  /// is SimTime::max()).
  void run(SimTime duration = SimTime::max());

  /// Requests run() to return after the current delta cycle completes.
  void stop() { stop_requested_ = true; }

  /// True while inside run() -- processes can check this.
  [[nodiscard]] bool running() const { return running_; }

  /// @name Watchdog: budgets, cancellation and deadlock diagnosis
  ///@{
  /// Budget applied to subsequent run() calls. A freshly constructed
  /// kernel inherits the thread default (see set_thread_defaults).
  void set_budget(const RunBudget& b) { budget_ = b; }
  [[nodiscard]] const RunBudget& budget() const { return budget_; }

  /// Cooperative cancellation: run() polls `flag` once per time advance
  /// and throws RunCancelledError when it reads true. The flag is not
  /// owned and must outlive every run() call; nullptr disables polling.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }

  /// Ambient per-thread defaults picked up by every Kernel constructed
  /// on the calling thread afterwards -- how the campaign runner imposes
  /// a budget on a RunSpec that builds its own kernel internally.
  /// clear_thread_defaults() restores the unlimited defaults.
  static void set_thread_defaults(const RunBudget& budget,
                                  const std::atomic<bool>* cancel_flag);
  static void clear_thread_defaults();

  /// Thread processes that are neither done nor runnable -- the set a
  /// deadlocked simulation is blocked on. Hierarchical names, in
  /// construction order.
  [[nodiscard]] std::vector<std::string> blocked_processes() const;
  ///@}

  /// Registers a callback invoked whenever simulated time is about to
  /// advance (all deltas at the current time done) and once when run()
  /// returns. Used by the VCD tracer to sample settled values.
  void add_timestep_callback(std::function<void()> cb);

  /// All objects currently registered, in construction order.
  [[nodiscard]] const std::vector<Object*>& objects() const { return objects_; }

  /// @name Internal interfaces (used by Object/Event/Process/Signal)
  ///@{
  void register_object(Object& o);
  void unregister_object(Object& o);
  void register_process(Process& p);
  void unregister_process(Process& p);
  void make_runnable(Process& p);
  void schedule_delta(Event& e);
  void schedule_timed(Event& e, SimTime abs_time, std::uint64_t stamp);
  void request_update(SignalBase& s);
  ///@}

private:
  void initialize();
  /// Runs eval/update/notify once; returns true if further deltas are
  /// pending at the current time.
  void do_delta();
  void fire_timestep_callbacks();

  struct TimedEntry {
    SimTime time;
    std::uint64_t seq;  ///< FIFO order among equal times
    Event* event;
    std::uint64_t stamp;
    bool operator>(const TimedEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// Builds the "budget exhausted at ..." diagnosis shared by every
  /// watchdog throw site (simulated time, counters, blocked set).
  [[nodiscard]] std::string watchdog_context() const;

  SimTime now_;
  std::uint64_t delta_count_ = 0;
  Stats stats_;
  std::uint64_t timed_seq_ = 0;
  bool initialized_ = false;
  bool running_ = false;
  bool stop_requested_ = false;

  RunBudget budget_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  static thread_local RunBudget thread_default_budget_;
  static thread_local const std::atomic<bool>* thread_default_cancel_;

  std::vector<Object*> objects_;
  std::vector<Process*> processes_;
  std::vector<Process*> runnable_;
  std::vector<Event*> delta_queue_;
  std::vector<SignalBase*> update_queue_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_queue_;
  std::vector<std::function<void()>> timestep_callbacks_;

  /// Scratch buffers swapped with update_queue_/delta_queue_ each delta
  /// so the hot loop reuses capacity instead of allocating per cycle.
  std::vector<SignalBase*> update_scratch_;
  std::vector<Event*> delta_scratch_;

  static thread_local Kernel* current_;
};

}  // namespace ahbp::sim
