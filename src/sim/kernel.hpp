#pragma once
// The discrete-event scheduler.
//
// Implements the classic SystemC evaluate/update/delta-notify cycle:
//
//   1. evaluate : run every runnable process (writes are buffered)
//   2. update   : apply buffered signal writes; changed signals queue
//                 their value-changed events as delta notifications
//   3. notify   : trigger delta-queued events, making processes runnable
//                 for the next delta cycle at the same time
//   4. advance  : when no process is runnable, jump to the earliest timed
//                 notification and trigger it
//
// One Kernel instance is alive *per thread* (enforced); top-level objects
// attach to Kernel::current(), which is thread-local. Independent
// simulations may therefore run concurrently, one kernel per
// std::jthread -- the contract the campaign runner (src/campaign/)
// builds on. A single Kernel and the objects attached to it must only
// ever be touched from the thread that constructed it.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ahbp::sim {

class Object;
class Event;
class Process;
class SignalBase;

/// The simulation scheduler and object registry.
class Kernel {
public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// The kernel top-level objects attach to. Fatal if none is alive on
  /// the calling thread.
  [[nodiscard]] static Kernel& current();
  /// Nullptr-safe variant of current().
  [[nodiscard]] static Kernel* current_or_null();

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }
  /// Number of delta cycles executed so far.
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }

  /// Scheduler activity counters, maintained on the hot path at the
  /// cost of one increment each -- the kernel's own observability feed
  /// (exported as `sim.*` metrics by the CLI's --telemetry mode).
  struct Stats {
    std::uint64_t processes_executed = 0;  ///< process activations
    std::uint64_t timed_notifications = 0; ///< timed events triggered
    std::uint64_t time_advances = 0;       ///< distinct simulated instants
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Runs the simulation for `duration` (default: until no activity
  /// remains). On return, now() has advanced to start + duration, or to
  /// the last activity if the event queues drained first (or if duration
  /// is SimTime::max()).
  void run(SimTime duration = SimTime::max());

  /// Requests run() to return after the current delta cycle completes.
  void stop() { stop_requested_ = true; }

  /// True while inside run() -- processes can check this.
  [[nodiscard]] bool running() const { return running_; }

  /// Registers a callback invoked whenever simulated time is about to
  /// advance (all deltas at the current time done) and once when run()
  /// returns. Used by the VCD tracer to sample settled values.
  void add_timestep_callback(std::function<void()> cb);

  /// All objects currently registered, in construction order.
  [[nodiscard]] const std::vector<Object*>& objects() const { return objects_; }

  /// @name Internal interfaces (used by Object/Event/Process/Signal)
  ///@{
  void register_object(Object& o);
  void unregister_object(Object& o);
  void register_process(Process& p);
  void unregister_process(Process& p);
  void make_runnable(Process& p);
  void schedule_delta(Event& e);
  void schedule_timed(Event& e, SimTime abs_time, std::uint64_t stamp);
  void request_update(SignalBase& s);
  ///@}

private:
  void initialize();
  /// Runs eval/update/notify once; returns true if further deltas are
  /// pending at the current time.
  void do_delta();
  void fire_timestep_callbacks();

  struct TimedEntry {
    SimTime time;
    std::uint64_t seq;  ///< FIFO order among equal times
    Event* event;
    std::uint64_t stamp;
    bool operator>(const TimedEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  SimTime now_;
  std::uint64_t delta_count_ = 0;
  Stats stats_;
  std::uint64_t timed_seq_ = 0;
  bool initialized_ = false;
  bool running_ = false;
  bool stop_requested_ = false;

  std::vector<Object*> objects_;
  std::vector<Process*> processes_;
  std::vector<Process*> runnable_;
  std::vector<Event*> delta_queue_;
  std::vector<SignalBase*> update_queue_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_queue_;
  std::vector<std::function<void()>> timestep_callbacks_;

  /// Scratch buffers swapped with update_queue_/delta_queue_ each delta
  /// so the hot loop reuses capacity instead of allocating per cycle.
  std::vector<SignalBase*> update_scratch_;
  std::vector<Event*> delta_scratch_;

  static thread_local Kernel* current_;
};

}  // namespace ahbp::sim
