#include "sim/object.hpp"

#include <algorithm>

#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "sim/report.hpp"

namespace ahbp::sim {

Object::Object(Module* parent, std::string name)
    : name_(std::move(name)), parent_(parent) {
  kernel_ = parent != nullptr ? &parent->kernel() : Kernel::current_or_null();
  if (kernel_ == nullptr) {
    throw SimError("object '" + name_ + "' constructed with no Kernel alive");
  }
  kernel_->register_object(*this);
  if (parent_ != nullptr) parent_->children_.push_back(this);
}

Object::~Object() {
  if (parent_ != nullptr) {
    auto& v = parent_->children_;
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
  }
  kernel_->unregister_object(*this);
}

std::string Object::full_name() const {
  if (parent_ == nullptr) return name_;
  return parent_->full_name() + "." + name_;
}

}  // namespace ahbp::sim
