#pragma once
// Umbrella header for the ahbp::sim discrete-event kernel.
//
// The kernel is a compact SystemC-style simulator:
//   Kernel           -- scheduler (evaluate / update / delta-notify)
//   Module, Object   -- named design hierarchy
//   Event            -- notification primitive
//   Method, Thread   -- callback and coroutine processes
//   Signal<T>        -- delta-cycle channel; Clock -- waveform source
//   In<T>, Out<T>    -- late-bound ports
//   VcdWriter        -- waveform dumping
//   Reporter         -- severity-tagged diagnostics

#include "sim/clock.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "sim/object.hpp"
#include "sim/port.hpp"
#include "sim/process.hpp"
#include "sim/report.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"
#include "sim/vcd.hpp"
