#pragma once
// Simulation time for the ahbpower discrete-event kernel.
//
// Time is kept as an integral number of femtoseconds, which gives an
// unambiguous total order (no floating-point accumulation error) and a
// range of +/- ~2.5 hours in a signed 64-bit counter -- far beyond any
// system-level simulation this library targets.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ahbp::sim {

/// Discrete simulation time, stored in femtoseconds.
///
/// SimTime is a regular value type: it is cheap to copy, totally ordered,
/// and supports the usual affine arithmetic (time + duration, time - time).
class SimTime {
public:
  /// Zero time. Identical to SimTime::zero().
  constexpr SimTime() = default;

  /// Named constructors for the usual units.
  [[nodiscard]] static constexpr SimTime fs(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime ps(std::int64_t v) { return SimTime{v * 1'000}; }
  [[nodiscard]] static constexpr SimTime ns(std::int64_t v) { return SimTime{v * 1'000'000}; }
  [[nodiscard]] static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000'000'000}; }
  [[nodiscard]] static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000'000'000}; }
  [[nodiscard]] static constexpr SimTime sec(std::int64_t v) { return SimTime{v * 1'000'000'000'000'000}; }

  /// The zero instant / empty duration.
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }

  /// A time strictly larger than every representable instant; used by the
  /// kernel as the "run forever" bound.
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{INT64_MAX};
  }

  /// Raw femtosecond count.
  [[nodiscard]] constexpr std::int64_t femtoseconds() const { return fs_; }
  /// Value converted to the given unit (truncating).
  [[nodiscard]] constexpr std::int64_t picoseconds() const { return fs_ / 1'000; }
  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return fs_ / 1'000'000; }
  [[nodiscard]] constexpr std::int64_t microseconds() const { return fs_ / 1'000'000'000; }

  /// Value in seconds as a double, for reporting and power computation
  /// (power = energy / seconds).
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(fs_) * 1e-15;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    fs_ += rhs.fs_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    fs_ -= rhs.fs_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return a -= b; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.fs_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  /// Number of whole periods `b` that fit into `a` (integer division).
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.fs_ / b.fs_; }

  /// Human-readable rendering with an automatically chosen unit,
  /// e.g. "150 ns", "2.5 us".
  [[nodiscard]] std::string to_string() const;

private:
  constexpr explicit SimTime(std::int64_t fs) : fs_{fs} {}
  std::int64_t fs_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace ahbp::sim
