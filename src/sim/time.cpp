#include "sim/time.hpp"

#include <array>
#include <cstdio>
#include <ostream>

namespace ahbp::sim {

std::string SimTime::to_string() const {
  struct Unit {
    std::int64_t scale;
    const char* name;
  };
  static constexpr std::array<Unit, 6> units{{
      {1'000'000'000'000'000, "s"},
      {1'000'000'000'000, "ms"},
      {1'000'000'000, "us"},
      {1'000'000, "ns"},
      {1'000, "ps"},
      {1, "fs"},
  }};

  const std::int64_t v = fs_;
  if (v == 0) return "0 s";
  const std::int64_t mag = v < 0 ? -v : v;
  for (const auto& u : units) {
    if (mag >= u.scale) {
      const double scaled = static_cast<double>(v) / static_cast<double>(u.scale);
      char buf[64];
      if (mag % u.scale == 0) {
        std::snprintf(buf, sizeof buf, "%lld %s",
                      static_cast<long long>(v / u.scale), u.name);
      } else {
        std::snprintf(buf, sizeof buf, "%.3f %s", scaled, u.name);
      }
      return buf;
    }
  }
  return "0 s";
}

std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.to_string(); }

}  // namespace ahbp::sim
