#include "sim/event.hpp"

#include <algorithm>

#include "sim/kernel.hpp"
#include "sim/process.hpp"
#include "sim/report.hpp"

namespace ahbp::sim {

Event::Event(Module* parent, std::string name) : Object(parent, std::move(name)) {}

Event::~Event() {
  // Sever both subscription directions: teardown order between an event
  // and its subscribers is not specified (a bench may destroy a slave's
  // signals before the bus mux that watches them), so whichever side
  // dies first must unhook itself from the survivor.
  for (Process* p : static_sensitive_) {
    auto& v = p->static_events_;
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
  }
  for (Process* p : dynamic_waiters_) p->dynamic_wait_event_ = nullptr;
}

void Event::notify() {
  // Immediate notification: fire now, and drop any pending notification
  // (immediate is the earliest possible, so it always overrides).
  pending_ = Pending::kNone;
  ++stamp_;
  trigger();
}

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;  // already as early as possible
  // A pending timed notification is later than a delta one: override it.
  pending_ = Pending::kDelta;
  ++stamp_;
  kernel().schedule_delta(*this);
}

void Event::notify(SimTime delay) {
  if (delay <= SimTime::zero()) {
    notify_delta();
    return;
  }
  const SimTime abs = kernel().now() + delay;
  if (pending_ == Pending::kDelta) return;  // pending delta is earlier
  if (pending_ == Pending::kTimed && pending_time_ <= abs) return;
  pending_ = Pending::kTimed;
  pending_time_ = abs;
  ++stamp_;
  kernel().schedule_timed(*this, abs, stamp_);
}

void Event::cancel() {
  // Lazy cancellation: queued entries carry the stamp and are discarded
  // when popped if it no longer matches.
  pending_ = Pending::kNone;
  ++stamp_;
}

void Event::add_static(Process& p) { static_sensitive_.push_back(&p); }

void Event::remove_static(Process& p) {
  auto& v = static_sensitive_;
  v.erase(std::remove(v.begin(), v.end(), &p), v.end());
}

void Event::add_dynamic(Process& p) {
  dynamic_waiters_.push_back(&p);
  p.dynamic_wait_event_ = this;
}

void Event::remove_dynamic(Process& p) {
  auto& v = dynamic_waiters_;
  v.erase(std::remove(v.begin(), v.end(), &p), v.end());
  if (p.dynamic_wait_event_ == this) p.dynamic_wait_event_ = nullptr;
}

void Event::trigger() {
  last_triggered_ = kernel().now();
  for (Process* p : static_sensitive_) kernel().make_runnable(*p);
  if (!dynamic_waiters_.empty()) {
    // One-shot semantics: move the list out first, since a woken process
    // may re-subscribe during the same evaluation phase.
    std::vector<Process*> waiters;
    waiters.swap(dynamic_waiters_);
    for (Process* p : waiters) {
      p->dynamic_wait_event_ = nullptr;
      kernel().make_runnable(*p);
    }
  }
}

}  // namespace ahbp::sim
