#include "sim/process.hpp"

#include <algorithm>
#include <utility>

#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/report.hpp"

namespace ahbp::sim {

namespace {
thread_local Thread* g_current_thread = nullptr;
}  // namespace

Process::Process(Module* parent, std::string name) : Object(parent, std::move(name)) {
  kernel().register_process(*this);
}

Process::~Process() {
  // ~Event clears both lists below for whichever events died first, so
  // every pointer still present here is alive.
  if (dynamic_wait_event_) dynamic_wait_event_->remove_dynamic(*this);
  for (Event* ev : static_events_) ev->remove_static(*this);
  kernel().unregister_process(*this);
}

Process& Process::sensitive(Event& ev) {
  ev.add_static(*this);
  static_events_.push_back(&ev);
  return *this;
}

Process& Process::dont_initialize() {
  initialize_ = false;
  return *this;
}

Method::Method(Module* parent, std::string name, std::function<void()> fn)
    : Process(parent, std::move(name)), fn_(std::move(fn)) {
  if (!fn_) throw SimError("method '" + full_name() + "' constructed with empty body");
}

Thread::Thread(Module* parent, std::string name, std::function<Task()> body)
    : Process(parent, std::move(name)),
      body_(std::move(body)),
      wake_event_(new Event(parent, basename() + ".wake")) {
  if (!body_) throw SimError("thread '" + full_name() + "' constructed with empty body");
  // Timed waits are implemented by notifying the private wake event; the
  // thread is statically sensitive to it.
  sensitive(*wake_event_);
}

Thread::~Thread() {
  // The base Process destructor walks static_events_, so the wake event
  // must be unhooked from the sensitivity machinery before it is freed.
  wake_event_->remove_static(*this);
  static_events_.erase(
      std::remove(static_events_.begin(), static_events_.end(), wake_event_),
      static_events_.end());
  delete wake_event_;
}

Thread* Thread::current() { return g_current_thread; }

void Thread::arm_timed_wait(SimTime delay) {
  if (delay <= SimTime::zero()) {
    wake_event_->notify_delta();
  } else {
    wake_event_->notify(delay);
  }
}

void Thread::arm_event_wait(Event& ev) { ev.add_dynamic(*this); }

void Thread::execute() {
  if (done_) return;
  if (!started_) {
    started_ = true;
    task_ = body_();
  }
  Thread* const prev = g_current_thread;
  g_current_thread = this;
  task_.handle.resume();
  g_current_thread = prev;
  if (task_.handle.done()) {
    done_ = true;
    if (auto ex = task_.handle.promise().exception) std::rethrow_exception(ex);
  }
}

}  // namespace ahbp::sim
