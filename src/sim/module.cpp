#include "sim/module.hpp"

namespace ahbp::sim {

Module::Module(Module* parent, std::string name) : Object(parent, std::move(name)) {}

Module::~Module() = default;

}  // namespace ahbp::sim
