#pragma once
// Module: a structural container for processes, signals and sub-modules.

#include <string>
#include <vector>

#include "sim/object.hpp"

namespace ahbp::sim {

/// A node of the design hierarchy (cf. SystemC sc_module).
///
/// Modules own their children by containment: declare sub-modules,
/// signals, events and processes as data members and pass `this` as their
/// parent. The kernel discovers everything through object registration;
/// Module itself only provides naming scope and child enumeration.
class Module : public Object {
public:
  Module(Module* parent, std::string name);
  ~Module() override;

  [[nodiscard]] const char* kind() const override { return "module"; }

  /// Direct children (all object kinds), in construction order.
  [[nodiscard]] const std::vector<Object*>& children() const { return children_; }

private:
  friend class Object;
  std::vector<Object*> children_;
};

}  // namespace ahbp::sim
