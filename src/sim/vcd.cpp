#include "sim/vcd.hpp"

#include "sim/kernel.hpp"
#include "sim/report.hpp"

namespace ahbp::sim {

namespace {
/// Generates compact VCD identifiers: !, ", #, ... then two-char codes.
std::string make_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}
}  // namespace

VcdWriter::VcdWriter(const std::string& path, Kernel& k) : kernel_(k), out_(path) {
  if (!out_) throw SimError("cannot open VCD file '" + path + "'");
  kernel_.add_timestep_callback([this] { sample_all(); });
}

VcdWriter::~VcdWriter() { flush(); }

std::string VcdWriter::escape(const std::string& name) {
  std::string s = name;
  for (char& c : s) {
    if (c == ' ' || c == '.') c = '_';
  }
  return s;
}

void VcdWriter::add(const Signal<bool>& s) {
  add_channel(s.full_name(), 1, [&s] { return s.read() ? 1u : 0u; });
}

void VcdWriter::add_channel(std::string name, unsigned width,
                            std::function<std::uint64_t()> sample) {
  if (header_written_) {
    throw SimError("VcdWriter: cannot add channels after tracing started");
  }
  Channel ch;
  ch.name = escape(name);
  ch.id = make_id(channels_.size());
  ch.width = width;
  ch.sample = std::move(sample);
  channels_.push_back(std::move(ch));
}

void VcdWriter::write_header() {
  out_ << "$timescale 1ps $end\n$scope module top $end\n";
  for (const auto& ch : channels_) {
    out_ << "$var wire " << ch.width << ' ' << ch.id << ' ' << ch.name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::sample_all() {
  if (!header_written_) write_header();
  const std::int64_t t = kernel_.now().picoseconds();
  bool stamped = false;
  for (auto& ch : channels_) {
    const std::uint64_t v = ch.sample();
    if (ch.ever_dumped && v == ch.last) continue;
    if (!stamped && t != last_dump_ps_) {
      out_ << '#' << t << '\n';
      last_dump_ps_ = t;
    }
    stamped = true;
    if (ch.width == 1) {
      out_ << (v & 1u) << ch.id << '\n';
    } else {
      out_ << 'b';
      for (int bit = static_cast<int>(ch.width) - 1; bit >= 0; --bit) {
        out_ << ((v >> bit) & 1u);
      }
      out_ << ' ' << ch.id << '\n';
    }
    ch.last = v;
    ch.ever_dumped = true;
  }
}

void VcdWriter::flush() { out_.flush(); }

}  // namespace ahbp::sim
