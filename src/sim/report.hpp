#pragma once
// Severity-tagged reporting for kernel and model code.
//
// Modeled loosely on SystemC's sc_report: messages carry a severity and a
// message-type id; fatal errors throw SimError so tests can assert on
// misuse instead of aborting the process.

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ahbp::sim {

/// Exception thrown for unrecoverable modeling or kernel errors
/// (elaboration misuse, protocol violations promoted to fatal, ...).
class SimError : public std::runtime_error {
public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Message severity, ordered from least to most severe.
enum class Severity { kInfo, kWarning, kError, kFatal };

[[nodiscard]] std::string_view to_string(Severity s);

/// Reporting configuration and counters (thread-local, like the kernel).
///
/// Reporter is intentionally tiny: `report()` prints to stderr for
/// warnings/errors (stdout for info), bumps a per-severity counter, and
/// throws SimError for kError and kFatal. Tests use `counts()` to check
/// that a scenario warned, and `set_verbosity` to silence info chatter.
/// Counters and verbosity are thread-local so concurrently hosted
/// kernels (one per thread -- see sim/kernel.hpp) never race: each
/// simulation observes exactly the reports its own thread produced.
class Reporter {
public:
  struct Counts {
    unsigned long info = 0;
    unsigned long warning = 0;
    unsigned long error = 0;
    unsigned long fatal = 0;
  };

  /// Emit a report. kError/kFatal throw SimError after counting.
  static void report(Severity sev, std::string_view msg_type, std::string_view msg);

  /// Counters since the last reset_counts().
  [[nodiscard]] static const Counts& counts();
  static void reset_counts();

  /// Minimum severity that is printed (everything is still counted).
  static void set_verbosity(Severity min_printed);

private:
  static thread_local Counts counts_;
  static thread_local Severity min_printed_;
};

/// Convenience helpers used throughout the library.
inline void info(std::string_view type, std::string_view msg) {
  Reporter::report(Severity::kInfo, type, msg);
}
inline void warn(std::string_view type, std::string_view msg) {
  Reporter::report(Severity::kWarning, type, msg);
}
[[noreturn]] inline void error(std::string_view type, std::string_view msg) {
  Reporter::report(Severity::kError, type, msg);
  throw SimError(std::string(msg));  // unreachable; report() already throws
}

}  // namespace ahbp::sim
