#include "sim/kernel.hpp"

#include <algorithm>

#include "sim/event.hpp"
#include "sim/object.hpp"
#include "sim/process.hpp"
#include "sim/report.hpp"
#include "sim/signal.hpp"

namespace ahbp::sim {

thread_local Kernel* Kernel::current_ = nullptr;

Kernel::Kernel() {
  if (current_ != nullptr) {
    throw SimError("only one Kernel may be alive at a time per thread");
  }
  current_ = this;
}

Kernel::~Kernel() { current_ = nullptr; }

Kernel& Kernel::current() {
  if (current_ == nullptr) throw SimError("no Kernel is alive on this thread");
  return *current_;
}

Kernel* Kernel::current_or_null() { return current_; }

void Kernel::register_object(Object& o) { objects_.push_back(&o); }

void Kernel::unregister_object(Object& o) {
  objects_.erase(std::remove(objects_.begin(), objects_.end(), &o), objects_.end());
}

void Kernel::register_process(Process& p) { processes_.push_back(&p); }

void Kernel::unregister_process(Process& p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), &p),
                   processes_.end());
  runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), &p), runnable_.end());
}

void Kernel::make_runnable(Process& p) {
  if (p.in_runnable_ || p.done_) return;
  p.in_runnable_ = true;
  runnable_.push_back(&p);
}

void Kernel::schedule_delta(Event& e) { delta_queue_.push_back(&e); }

void Kernel::schedule_timed(Event& e, SimTime abs_time, std::uint64_t stamp) {
  timed_queue_.push(TimedEntry{abs_time, timed_seq_++, &e, stamp});
}

void Kernel::request_update(SignalBase& s) { update_queue_.push_back(&s); }

void Kernel::add_timestep_callback(std::function<void()> cb) {
  timestep_callbacks_.push_back(std::move(cb));
}

void Kernel::initialize() {
  initialized_ = true;
  for (Process* p : processes_) {
    if (p->initialize_) make_runnable(*p);
  }
}

void Kernel::do_delta() {
  // --- evaluate ---------------------------------------------------------
  // Processes made runnable during this phase (immediate notifications)
  // also run in it, so iterate by index.
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    Process* p = runnable_[i];
    p->in_runnable_ = false;
    p->execute();
  }
  stats_.processes_executed += runnable_.size();
  runnable_.clear();

  // --- update -----------------------------------------------------------
  // Applying a signal's new value may queue its value-changed event as a
  // delta notification (handled below). The queue is swapped into a
  // member scratch buffer so both vectors keep their capacity across
  // deltas -- this loop runs every simulated cycle.
  update_scratch_.clear();
  update_scratch_.swap(update_queue_);
  for (SignalBase* s : update_scratch_) s->apply_update();

  // --- delta notification ------------------------------------------------
  delta_scratch_.clear();
  delta_scratch_.swap(delta_queue_);
  for (Event* e : delta_scratch_) {
    if (e->pending_ != Event::Pending::kDelta) continue;  // cancelled
    e->pending_ = Event::Pending::kNone;
    e->trigger();
  }
  ++delta_count_;
}

void Kernel::fire_timestep_callbacks() {
  for (const auto& cb : timestep_callbacks_) cb();
}

void Kernel::run(SimTime duration) {
  const SimTime end =
      duration == SimTime::max() ? SimTime::max() : now_ + duration;
  if (!initialized_) initialize();
  running_ = true;
  stop_requested_ = false;

  while (!stop_requested_) {
    if (!runnable_.empty() || !delta_queue_.empty() || !update_queue_.empty()) {
      do_delta();
      continue;
    }
    // Time advance: settled values at the current time are final.
    fire_timestep_callbacks();
    if (timed_queue_.empty()) break;
    const SimTime next = timed_queue_.top().time;
    if (next > end) break;
    now_ = next;
    ++stats_.time_advances;
    // Trigger every valid event scheduled for this instant.
    while (!timed_queue_.empty() && timed_queue_.top().time == now_) {
      const TimedEntry entry = timed_queue_.top();
      timed_queue_.pop();
      Event* e = entry.event;
      if (e->pending_ != Event::Pending::kTimed || e->stamp_ != entry.stamp) {
        continue;  // cancelled or overridden
      }
      e->pending_ = Event::Pending::kNone;
      e->trigger();
      ++stats_.timed_notifications;
    }
  }

  // sc_start-style semantics: a bounded run leaves time at exactly
  // start + duration even if activity drained earlier.
  if (end != SimTime::max() && now_ < end && !stop_requested_) now_ = end;
  fire_timestep_callbacks();
  running_ = false;
}

}  // namespace ahbp::sim
