#include "sim/kernel.hpp"

#include <algorithm>
#include <cstring>

#include "sim/event.hpp"
#include "sim/object.hpp"
#include "sim/process.hpp"
#include "sim/report.hpp"
#include "sim/signal.hpp"

namespace ahbp::sim {

thread_local Kernel* Kernel::current_ = nullptr;
thread_local RunBudget Kernel::thread_default_budget_{};
thread_local const std::atomic<bool>* Kernel::thread_default_cancel_ = nullptr;

Kernel::Kernel() {
  if (current_ != nullptr) {
    throw SimError("only one Kernel may be alive at a time per thread");
  }
  current_ = this;
  budget_ = thread_default_budget_;
  cancel_flag_ = thread_default_cancel_;
}

Kernel::~Kernel() { current_ = nullptr; }

Kernel& Kernel::current() {
  if (current_ == nullptr) throw SimError("no Kernel is alive on this thread");
  return *current_;
}

Kernel* Kernel::current_or_null() { return current_; }

void Kernel::register_object(Object& o) { objects_.push_back(&o); }

void Kernel::unregister_object(Object& o) {
  objects_.erase(std::remove(objects_.begin(), objects_.end(), &o), objects_.end());
}

void Kernel::register_process(Process& p) { processes_.push_back(&p); }

void Kernel::unregister_process(Process& p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), &p),
                   processes_.end());
  runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), &p), runnable_.end());
}

void Kernel::make_runnable(Process& p) {
  if (p.in_runnable_ || p.done_) return;
  p.in_runnable_ = true;
  runnable_.push_back(&p);
}

void Kernel::schedule_delta(Event& e) { delta_queue_.push_back(&e); }

void Kernel::schedule_timed(Event& e, SimTime abs_time, std::uint64_t stamp) {
  timed_queue_.push(TimedEntry{abs_time, timed_seq_++, &e, stamp});
}

void Kernel::request_update(SignalBase& s) { update_queue_.push_back(&s); }

void Kernel::add_timestep_callback(std::function<void()> cb) {
  timestep_callbacks_.push_back(std::move(cb));
}

void Kernel::initialize() {
  initialized_ = true;
  for (Process* p : processes_) {
    if (p->initialize_) make_runnable(*p);
  }
}

void Kernel::do_delta() {
  // --- evaluate ---------------------------------------------------------
  // Processes made runnable during this phase (immediate notifications)
  // also run in it, so iterate by index.
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    Process* p = runnable_[i];
    p->in_runnable_ = false;
    p->execute();
  }
  stats_.processes_executed += runnable_.size();
  runnable_.clear();

  // --- update -----------------------------------------------------------
  // Applying a signal's new value may queue its value-changed event as a
  // delta notification (handled below). The queue is swapped into a
  // member scratch buffer so both vectors keep their capacity across
  // deltas -- this loop runs every simulated cycle.
  update_scratch_.clear();
  update_scratch_.swap(update_queue_);
  for (SignalBase* s : update_scratch_) s->apply_update();

  // --- delta notification ------------------------------------------------
  delta_scratch_.clear();
  delta_scratch_.swap(delta_queue_);
  for (Event* e : delta_scratch_) {
    if (e->pending_ != Event::Pending::kDelta) continue;  // cancelled
    e->pending_ = Event::Pending::kNone;
    e->trigger();
  }
  ++delta_count_;
}

void Kernel::fire_timestep_callbacks() {
  for (const auto& cb : timestep_callbacks_) cb();
}

void Kernel::set_thread_defaults(const RunBudget& budget,
                                 const std::atomic<bool>* cancel_flag) {
  thread_default_budget_ = budget;
  thread_default_cancel_ = cancel_flag;
}

void Kernel::clear_thread_defaults() {
  thread_default_budget_ = RunBudget{};
  thread_default_cancel_ = nullptr;
}

std::vector<std::string> Kernel::blocked_processes() const {
  std::vector<std::string> blocked;
  for (const Process* p : processes_) {
    if (p->done() || p->in_runnable_) continue;
    if (std::strcmp(p->kind(), "thread") != 0) continue;
    blocked.push_back(p->full_name());
  }
  return blocked;
}

std::string Kernel::watchdog_context() const {
  std::string msg = " at t=" + now_.to_string() + " (" +
                    std::to_string(stats_.time_advances) + " time advances, " +
                    std::to_string(stats_.processes_executed) +
                    " process activations)";
  const std::vector<std::string> blocked = blocked_processes();
  if (!blocked.empty()) {
    msg += "; waiting processes:";
    for (const std::string& name : blocked) msg += " " + name;
  }
  return msg;
}

void Kernel::run(SimTime duration) {
  const SimTime end =
      duration == SimTime::max() ? SimTime::max() : now_ + duration;
  if (!initialized_) initialize();
  running_ = true;
  stop_requested_ = false;

  // Watchdog bookkeeping: absolute thresholds computed once so the loop
  // pays a single compare per limit. The wall clock is only sampled when
  // a deadline is armed, and then only every 1024 time advances.
  const std::uint64_t event_limit =
      budget_.max_events != 0 ? stats_.processes_executed + budget_.max_events
                              : UINT64_MAX;
  const std::uint64_t cycle_limit =
      budget_.max_cycles != 0 ? stats_.time_advances + budget_.max_cycles
                              : UINT64_MAX;
  const bool wall_limited = budget_.max_wall_seconds > 0.0;
  const auto wall_start = wall_limited ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{};
  std::uint64_t wall_check = 0;

  while (!stop_requested_) {
    if (!runnable_.empty() || !delta_queue_.empty() || !update_queue_.empty()) {
      do_delta();
      if (stats_.processes_executed >= event_limit) {
        running_ = false;
        throw BudgetExceededError("max-event budget (" +
                                  std::to_string(budget_.max_events) +
                                  " activations) exhausted" +
                                  watchdog_context());
      }
      continue;
    }
    // Time advance: settled values at the current time are final.
    fire_timestep_callbacks();
    if (timed_queue_.empty()) {
      // Genuine quiesce: nothing can ever run again. With deadlock
      // diagnosis armed, threads still suspended here are waiting on
      // events that can no longer fire.
      if (budget_.fail_on_deadlock) {
        const std::vector<std::string> blocked = blocked_processes();
        if (!blocked.empty()) {
          running_ = false;
          throw DeadlockError("deadlock: event queues drained with " +
                              std::to_string(blocked.size()) +
                              " thread process(es) still suspended" +
                              watchdog_context());
        }
      }
      break;
    }
    const SimTime next = timed_queue_.top().time;
    if (next > end) break;
    if (stats_.time_advances >= cycle_limit) {
      running_ = false;
      throw BudgetExceededError("max-cycle budget (" +
                                std::to_string(budget_.max_cycles) +
                                " time advances) exhausted" +
                                watchdog_context());
    }
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      running_ = false;
      throw RunCancelledError("run cancelled" + watchdog_context());
    }
    if (wall_limited && (++wall_check & 1023u) == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (elapsed >= budget_.max_wall_seconds) {
        running_ = false;
        throw BudgetExceededError(
            "wall-deadline budget (" +
            std::to_string(budget_.max_wall_seconds) + " s) exhausted" +
            watchdog_context());
      }
    }
    now_ = next;
    ++stats_.time_advances;
    // Trigger every valid event scheduled for this instant.
    while (!timed_queue_.empty() && timed_queue_.top().time == now_) {
      const TimedEntry entry = timed_queue_.top();
      timed_queue_.pop();
      Event* e = entry.event;
      if (e->pending_ != Event::Pending::kTimed || e->stamp_ != entry.stamp) {
        continue;  // cancelled or overridden
      }
      e->pending_ = Event::Pending::kNone;
      e->trigger();
      ++stats_.timed_notifications;
    }
  }

  // sc_start-style semantics: a bounded run leaves time at exactly
  // start + duration even if activity drained earlier.
  if (end != SimTime::max() && now_ < end && !stop_requested_) now_ = end;
  fire_timestep_callbacks();
  running_ = false;
}

}  // namespace ahbp::sim
