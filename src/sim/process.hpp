#pragma once
// Processes: the kernel's units of execution.
//
// Two flavours are provided, mirroring SystemC:
//  * Method  -- a callback re-invoked from the top on every trigger
//               (SC_METHOD). Cheap; the workhorse for combinational logic.
//  * Thread  -- a C++20 coroutine that suspends with `co_await wait(...)`
//               and resumes where it left off (SC_THREAD). Natural for
//               sequential testbench masters.

#include <coroutine>
#include <exception>
#include <functional>
#include <string>
#include <utility>

#include "sim/object.hpp"
#include "sim/time.hpp"

namespace ahbp::sim {

class Event;

/// Abstract schedulable entity.
///
/// A process is made *runnable* by event triggers (or at initialization)
/// and executed once per evaluation phase it is runnable in.
class Process : public Object {
public:
  ~Process() override;

  [[nodiscard]] const char* kind() const override { return "process"; }

  /// Adds `ev` to the static sensitivity list: every trigger of `ev`
  /// makes this process runnable.
  Process& sensitive(Event& ev);

  /// Suppresses the implicit run at simulation start. By default every
  /// process executes once in the first evaluation phase.
  Process& dont_initialize();

  /// True once the process has terminated (threads only; methods never
  /// terminate).
  [[nodiscard]] bool done() const { return done_; }

protected:
  Process(Module* parent, std::string name);

  bool done_ = false;
  std::vector<Event*> static_events_;  ///< for cleanup on destruction

private:
  friend class Kernel;
  friend class Event;

  /// Body invoked by the kernel during the evaluation phase.
  virtual void execute() = 0;

  bool in_runnable_ = false;     ///< dedup flag while queued
  bool initialize_ = true;       ///< run once at simulation start
  Event* dynamic_wait_event_ = nullptr;  ///< event currently awaited, if any
};

/// A callback process (SC_METHOD analogue). The callback runs to
/// completion on every trigger; it must not block.
class Method final : public Process {
public:
  /// `fn` is the method body. Use sensitive()/dont_initialize() to
  /// configure triggering.
  Method(Module* parent, std::string name, std::function<void()> fn);

  [[nodiscard]] const char* kind() const override { return "method"; }

private:
  void execute() override { fn_(); }

  std::function<void()> fn_;
};

class Thread;

/// Coroutine type returned by thread bodies. Not used directly: declare a
/// member `Task body();` and pass it to the Thread constructor.
struct Task {
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  Task(Task&& o) noexcept : handle(std::exchange(o.handle, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& o) noexcept {
    if (handle) handle.destroy();
    handle = std::exchange(o.handle, nullptr);
    return *this;
  }
  ~Task() {
    if (handle) handle.destroy();
  }

  std::coroutine_handle<promise_type> handle;
};

/// A coroutine process (SC_THREAD analogue).
///
/// The body is a coroutine returning Task; inside it, suspend with
///   co_await wait(SimTime::ns(10));   // timed wait
///   co_await wait(some_event);        // wait for one trigger
/// The thread terminates when the coroutine returns. Exceptions escaping
/// the body are rethrown out of Kernel::run().
class Thread final : public Process {
public:
  /// `body` is called once, lazily, at the thread's first execution; the
  /// returned coroutine is then resumed on every wake-up.
  Thread(Module* parent, std::string name, std::function<Task()> body);
  ~Thread() override;

  [[nodiscard]] const char* kind() const override { return "thread"; }

  /// The thread currently executing (valid only inside a thread body).
  [[nodiscard]] static Thread* current();

  /// @name Awaitable hooks (called by the wait() awaiters).
  ///@{
  void arm_timed_wait(SimTime delay);
  void arm_event_wait(Event& ev);
  ///@}

private:
  void execute() override;

  std::function<Task()> body_;
  Task task_{nullptr};
  bool started_ = false;
  Event* wake_event_;  ///< private event for timed waits (owned)
};

/// @name Awaitables for thread bodies
///@{

/// `co_await wait(delay)` -- suspend the current thread for `delay`.
struct TimedWait {
  SimTime delay;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    Thread::current()->arm_timed_wait(delay);
  }
  void await_resume() const noexcept {}
};

/// `co_await wait(event)` -- suspend until the event next triggers.
struct EventWait {
  Event& ev;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    Thread::current()->arm_event_wait(ev);
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline TimedWait wait(SimTime delay) { return {delay}; }
[[nodiscard]] inline EventWait wait(Event& ev) { return {ev}; }

///@}

}  // namespace ahbp::sim
