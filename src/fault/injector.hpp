#pragma once
// FaultInjector: binds a FaultPlan to slaves and counts what it did.
//
// The injector owns nothing on the bus; it hands out FaultHook closures
// (one per slave index) for MemorySlave::Config::fault_hook. Each hook
// routes through the plan's pure decide() and tallies the verdicts into
// local stats plus optional `ahb.fault.*` telemetry counters.

#include <cstdint>

#include "ahb/slave.hpp"
#include "fault/plan.hpp"
#include "telemetry/metrics.hpp"

namespace ahbp::fault {

/// Deterministic fault injection front-end for one simulation.
///
/// Thread-compatible with the campaign runner: one injector per run,
/// living on that run's thread; the hooks it vends must not outlive it.
class FaultInjector {
public:
  struct Stats {
    std::uint64_t decisions = 0;      ///< hook invocations
    std::uint64_t retries = 0;        ///< RETRY verdicts
    std::uint64_t errors = 0;         ///< ERROR verdicts
    std::uint64_t splits = 0;         ///< SPLIT verdicts
    std::uint64_t jitter_hits = 0;    ///< transfers given extra waits
    std::uint64_t jitter_cycles = 0;  ///< total extra wait cycles injected
  };

  /// `metrics` is optional and not owned; when set, verdicts also count
  /// into `ahb.fault.decisions/.retries/.errors/.splits/.jitter_cycles`.
  explicit FaultInjector(FaultPlan plan,
                         telemetry::MetricsRegistry* metrics = nullptr);

  /// The hook for slave index `slave`. Captures `this`: the injector
  /// must outlive every slave the hook is installed on.
  [[nodiscard]] ahb::FaultHook hook(unsigned slave);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

private:
  ahb::FaultDecision decide(unsigned slave, const ahb::FaultQuery& q);

  FaultPlan plan_;
  Stats stats_;
  telemetry::Counter* c_decisions_ = nullptr;
  telemetry::Counter* c_retries_ = nullptr;
  telemetry::Counter* c_errors_ = nullptr;
  telemetry::Counter* c_splits_ = nullptr;
  telemetry::Counter* c_jitter_ = nullptr;
};

}  // namespace ahbp::fault
