#pragma once
// Deterministic fault scheduling (the injection half of the robustness
// subsystem; see docs/ROBUSTNESS.md).
//
// A FaultPlan maps (seed, slave index, transfer index) to a
// FaultDecision through a counter-based splitmix64 hash: the schedule is
// a *pure function* of the plan, with no RNG state to advance. Two
// consequences the campaign runner depends on:
//   * the same seed yields bit-identical fault schedules regardless of
//     thread count, interleaving or how many decisions were consumed
//     elsewhere;
//   * decisions can be (re)computed out of order -- e.g. by a validator
//     replaying one slave's schedule.

#include <cstdint>
#include <vector>

#include "ahb/slave.hpp"

namespace ahbp::fault {

/// Fault rates for one slave. All rates are probabilities in [0,1];
/// retry+error+split must not exceed 1.
struct SlaveFaultConfig {
  double retry_rate = 0.0;  ///< P(two-cycle RETRY) per transfer
  double error_rate = 0.0;  ///< P(two-cycle ERROR) per transfer
  double split_rate = 0.0;  ///< P(two-cycle SPLIT) per transfer
  /// P(extra wait states) for transfers that complete OKAY.
  double jitter_rate = 0.0;
  /// Jitter amount: uniform in [1, max_extra_waits] when it hits.
  unsigned max_extra_waits = 3;
  /// P(interrupting a burst) applied to SEQ beats on top of the plain
  /// rates: a hit turns the beat into a RETRY, forcing the master to
  /// rebuild the burst from that point.
  double burst_interrupt_rate = 0.0;
  /// Cycles from a SPLIT response to the HSPLITx resume.
  unsigned split_resume_cycles = 4;
};

/// The deterministic, seed-driven fault schedule for a set of slaves.
class FaultPlan {
public:
  struct Config {
    std::uint64_t seed = 1;
    /// One entry per slave index; slaves beyond the vector get no
    /// faults.
    std::vector<SlaveFaultConfig> slaves;
  };

  /// Validates rates; throws sim::SimError on out-of-range values.
  explicit FaultPlan(Config cfg);

  /// The verdict for one accepted transfer on `slave`. Pure: the same
  /// (plan, slave, query) always returns the same decision.
  [[nodiscard]] ahb::FaultDecision decide(unsigned slave,
                                          const ahb::FaultQuery& q) const;

  /// Convenience: a FaultPlan with the same rates on every slave.
  [[nodiscard]] static FaultPlan uniform(std::uint64_t seed,
                                         const SlaveFaultConfig& rates,
                                         unsigned n_slaves);

  [[nodiscard]] const Config& config() const { return cfg_; }

private:
  Config cfg_;
};

/// The counter-based hash behind FaultPlan, exposed for tests: a
/// uniform double in [0,1) from (seed, slave, transfer index, stream).
[[nodiscard]] double fault_u01(std::uint64_t seed, unsigned slave,
                               std::uint64_t transfer_index,
                               std::uint64_t stream);

}  // namespace ahbp::fault
