#include "fault/injector.hpp"

namespace ahbp::fault {

FaultInjector::FaultInjector(FaultPlan plan, telemetry::MetricsRegistry* metrics)
    : plan_(std::move(plan)) {
  if (metrics != nullptr) {
    c_decisions_ = &metrics->counter("ahb.fault.decisions");
    c_retries_ = &metrics->counter("ahb.fault.retries");
    c_errors_ = &metrics->counter("ahb.fault.errors");
    c_splits_ = &metrics->counter("ahb.fault.splits");
    c_jitter_ = &metrics->counter("ahb.fault.jitter_cycles");
  }
}

ahb::FaultHook FaultInjector::hook(unsigned slave) {
  return [this, slave](const ahb::FaultQuery& q) { return decide(slave, q); };
}

ahb::FaultDecision FaultInjector::decide(unsigned slave,
                                         const ahb::FaultQuery& q) {
  const ahb::FaultDecision d = plan_.decide(slave, q);
  ++stats_.decisions;
  if (c_decisions_ != nullptr) c_decisions_->increment();
  switch (d.resp) {
    case ahb::Resp::kRetry:
      ++stats_.retries;
      if (c_retries_ != nullptr) c_retries_->increment();
      break;
    case ahb::Resp::kError:
      ++stats_.errors;
      if (c_errors_ != nullptr) c_errors_->increment();
      break;
    case ahb::Resp::kSplit:
      ++stats_.splits;
      if (c_splits_ != nullptr) c_splits_->increment();
      break;
    case ahb::Resp::kOkay:
      if (d.extra_waits > 0) {
        ++stats_.jitter_hits;
        stats_.jitter_cycles += d.extra_waits;
        if (c_jitter_ != nullptr) c_jitter_->add(d.extra_waits);
      }
      break;
  }
  return d;
}

}  // namespace ahbp::fault
