#include "fault/plan.hpp"

#include "sim/report.hpp"

namespace ahbp::fault {

using sim::SimError;

namespace {

// Independent hash streams for the per-transfer decisions.
constexpr std::uint64_t kStreamResp = 0x7265737021ULL;
constexpr std::uint64_t kStreamJitter = 0x6a69747221ULL;
constexpr std::uint64_t kStreamJitterAmount = 0x616d6f756eULL;
constexpr std::uint64_t kStreamBurst = 0x6275727374ULL;

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void check_rate(double r, const char* what) {
  if (r < 0.0 || r > 1.0) {
    throw SimError(std::string("FaultPlan: ") + what + " must be in [0,1]");
  }
}

}  // namespace

double fault_u01(std::uint64_t seed, unsigned slave,
                 std::uint64_t transfer_index, std::uint64_t stream) {
  // Chained splitmix64: each input fully avalanches before the next is
  // mixed in, so neighbouring (slave, index) pairs are uncorrelated.
  std::uint64_t h = splitmix64(seed ^ stream);
  h = splitmix64(h ^ slave);
  h = splitmix64(h ^ transfer_index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultPlan::FaultPlan(Config cfg) : cfg_(std::move(cfg)) {
  for (const SlaveFaultConfig& s : cfg_.slaves) {
    check_rate(s.retry_rate, "retry_rate");
    check_rate(s.error_rate, "error_rate");
    check_rate(s.split_rate, "split_rate");
    check_rate(s.jitter_rate, "jitter_rate");
    check_rate(s.burst_interrupt_rate, "burst_interrupt_rate");
    if (s.retry_rate + s.error_rate + s.split_rate > 1.0) {
      throw SimError("FaultPlan: retry+error+split rates exceed 1");
    }
    if (s.split_rate > 0.0 && s.split_resume_cycles == 0) {
      throw SimError("FaultPlan: split_resume_cycles must be > 0");
    }
    if (s.jitter_rate > 0.0 && s.max_extra_waits == 0) {
      throw SimError("FaultPlan: jitter_rate > 0 needs max_extra_waits > 0");
    }
  }
}

FaultPlan FaultPlan::uniform(std::uint64_t seed, const SlaveFaultConfig& rates,
                             unsigned n_slaves) {
  Config cfg;
  cfg.seed = seed;
  cfg.slaves.assign(n_slaves, rates);
  return FaultPlan(cfg);
}

ahb::FaultDecision FaultPlan::decide(unsigned slave,
                                     const ahb::FaultQuery& q) const {
  ahb::FaultDecision d;
  if (slave >= cfg_.slaves.size()) return d;
  const SlaveFaultConfig& s = cfg_.slaves[slave];

  // Response fault: one uniform draw partitioned into SPLIT / RETRY /
  // ERROR bands (ordering is part of the schedule contract).
  const double u = fault_u01(cfg_.seed, slave, q.transfer_index, kStreamResp);
  if (u < s.split_rate) {
    d.resp = ahb::Resp::kSplit;
    d.split_resume_cycles = s.split_resume_cycles;
    return d;
  }
  if (u < s.split_rate + s.retry_rate) {
    d.resp = ahb::Resp::kRetry;
    return d;
  }
  if (u < s.split_rate + s.retry_rate + s.error_rate) {
    d.resp = ahb::Resp::kError;
    return d;
  }

  // Burst-interrupt points: an extra RETRY band applied to SEQ beats
  // only, drawn from its own stream so it does not perturb the plain
  // response schedule.
  if (q.htrans == ahb::Trans::kSeq && s.burst_interrupt_rate > 0.0 &&
      fault_u01(cfg_.seed, slave, q.transfer_index, kStreamBurst) <
          s.burst_interrupt_rate) {
    d.resp = ahb::Resp::kRetry;
    return d;
  }

  // Wait-state jitter on clean transfers.
  if (s.jitter_rate > 0.0 &&
      fault_u01(cfg_.seed, slave, q.transfer_index, kStreamJitter) <
          s.jitter_rate) {
    const double a =
        fault_u01(cfg_.seed, slave, q.transfer_index, kStreamJitterAmount);
    d.extra_waits =
        1u + static_cast<unsigned>(a * static_cast<double>(s.max_extra_waits));
    if (d.extra_waits > s.max_extra_waits) d.extra_waits = s.max_extra_waits;
  }
  return d;
}

}  // namespace ahbp::fault
