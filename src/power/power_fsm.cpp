#include "power/power_fsm.hpp"

namespace ahbp::power {

const char* to_string(BusMode m) {
  switch (m) {
    case BusMode::kIdle: return "IDLE";
    case BusMode::kIdleHo: return "IDLE_HO";
    case BusMode::kRead: return "READ";
    case BusMode::kWrite: return "WRITE";
  }
  return "?";
}

std::string_view instruction_view(BusMode from, BusMode to) {
  // All 16 transition names, interned once: hot query paths hand out
  // views instead of building a std::string per call.
  static const std::array<std::string, 16> names = [] {
    std::array<std::string, 16> t;
    for (unsigned f = 0; f < 4; ++f) {
      for (unsigned to_i = 0; to_i < 4; ++to_i) {
        t[f * 4 + to_i] = std::string(to_string(static_cast<BusMode>(f))) +
                          "_" + to_string(static_cast<BusMode>(to_i));
      }
    }
    return t;
  }();
  return names[static_cast<unsigned>(from) * 4 + static_cast<unsigned>(to)];
}

std::string instruction_name(BusMode from, BusMode to) {
  return std::string(instruction_view(from, to));
}

namespace {
/// Channel names, indexed by PowerFsm::Channel.
const std::vector<std::string> kChannelNames = {
    "haddr", "hcontrol", "hwdata",     "hrdata",  "hresp",
    "hbusreq", "hgrant",  "data_slave", "hmaster"};
}  // namespace

PowerFsm::PowerFsm(Config cfg)
    : cfg_(cfg),
      dec_model_(cfg.n_slaves, cfg.tech),
      m2s_model_(cfg.addr_width + cfg.control_width + cfg.data_width,
                 cfg.n_masters, cfg.tech, cfg.m2s_coefficients),
      s2m_model_(cfg.data_width + 3, cfg.n_slaves, cfg.tech,
                 cfg.s2m_coefficients),
      arb_model_(cfg.n_masters, cfg.tech),
      packed_(kChannelNames) {
  master_energy_.assign(cfg.n_masters, 0.0);
}

void PowerFsm::reset() {
  packed_.reset();
  activity_view_.reset();
  mode_ = BusMode::kIdle;
  first_cycle_ = true;
  prev_ = CycleView{};
  cycles_ = 0;
  blocks_ = BlockEnergy{};
  master_energy_.assign(cfg_.n_masters, 0.0);
  instr_.fill(InstrStats{});
}

void PowerFsm::publish_metrics(telemetry::MetricsRegistry& registry,
                               const std::string& prefix) const {
  auto lower = [](std::string s) {
    for (char& c : s) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    return s;
  };
  registry.counter(prefix + ".cycles").add(cycles_);
  for (const auto& [name, st] : instructions()) {
    const std::string base = prefix + ".instr." + lower(name);
    registry.counter(base + ".count").add(st.count);
    registry.gauge(base + ".energy_j").set(st.energy);
  }
  registry.gauge(prefix + ".energy.arb_j").set(blocks_.arb);
  registry.gauge(prefix + ".energy.dec_j").set(blocks_.dec);
  registry.gauge(prefix + ".energy.m2s_j").set(blocks_.m2s);
  registry.gauge(prefix + ".energy.s2m_j").set(blocks_.s2m);
  registry.gauge(prefix + ".energy.total_j").set(blocks_.total());
  for (std::size_t m = 0; m < master_energy_.size(); ++m) {
    registry.gauge(prefix + ".master." + std::to_string(m) + ".energy_j")
        .set(master_energy_[m]);
  }
}

std::map<std::string, PowerFsm::InstrStats> PowerFsm::instructions() const {
  std::map<std::string, InstrStats> out;
  for (unsigned from = 0; from < 4; ++from) {
    for (unsigned to = 0; to < 4; ++to) {
      const InstrStats& st = instr_[from * 4 + to];
      if (st.count == 0) continue;
      out.emplace(instruction_name(static_cast<BusMode>(from),
                                   static_cast<BusMode>(to)),
                  st);
    }
  }
  return out;
}

BusMode PowerFsm::classify(const CycleView& v, bool handover) const {
  if (v.data_active) return v.data_write ? BusMode::kWrite : BusMode::kRead;
  // No data transfer this cycle: is arbitration working? Either the
  // ownership moved, or a non-owner is requesting (the grant is being
  // negotiated). Split-masked masters are excluded: the arbiter ignores
  // their requests until the HSPLITx resume, so a parked split request
  // burns no arbitration activity.
  const bool pending_request =
      (v.req_vector & ~v.grant_vector & ~v.split_vector) != 0;
  if (handover || pending_request) return BusMode::kIdleHo;
  return BusMode::kIdle;
}

void PowerFsm::step_repeated(const CycleView& v, std::uint64_t n) {
  if (n == 0) return;
  step(v);
  if (n == 1) return;
  // Second step establishes the steady state (all HDs zero from here).
  const StepResult steady = step(v);
  if (n == 2) return;

  const std::uint64_t rest = n - 2;
  BlockEnergy extra = steady.blocks;
  extra.arb *= static_cast<double>(rest);
  extra.dec *= static_cast<double>(rest);
  extra.m2s *= static_cast<double>(rest);
  extra.s2m *= static_cast<double>(rest);
  blocks_ += extra;
  cycles_ += rest;
  InstrStats& st = instr_[static_cast<unsigned>(steady.from) * 4 +
                          static_cast<unsigned>(steady.mode)];
  st.count += rest;
  st.energy += extra.total();
  if (v.hmaster < master_energy_.size()) {
    master_energy_[v.hmaster] += extra.total();
  }
  // Note: the Activity channels record only the two explicit samples; the
  // skipped repetitions carry zero bit changes, so bit_change_count()
  // stays exact (only the per-channel sample counters are condensed).
}

PowerFsm::StepResult PowerFsm::step(const CycleView& v) {
  ++cycles_;

  // --- instrumentation: store per-signal switching activity -------------
  // (the paper's get_activity() called at every bus event) -- all nine
  // signals packed into one SoA word array, Hamming distances computed
  // in a single XOR+popcount pass.
  std::uint64_t vals[kNumChannels];
  unsigned hd[kNumChannels];
  vals[kChHaddr] = v.haddr;
  vals[kChHcontrol] = (static_cast<std::uint64_t>(v.htrans) << 0) |
                      (static_cast<std::uint64_t>(v.hwrite) << 2) |
                      (static_cast<std::uint64_t>(v.hsize) << 3) |
                      (static_cast<std::uint64_t>(v.hburst) << 6);
  vals[kChHwdata] = v.hwdata;
  vals[kChHrdata] = v.hrdata;
  vals[kChHresp] =
      (static_cast<std::uint64_t>(v.hresp) << 1) | (v.hready ? 1u : 0u);
  vals[kChHbusreq] = v.req_vector;
  vals[kChHgrant] = v.grant_vector;
  vals[kChDataSlave] = v.data_slave;
  vals[kChHmaster] = v.hmaster;
  packed_.store_all(vals, hd);

  const unsigned hd_addr = hd[kChHaddr];
  const unsigned hd_ctl = hd[kChHcontrol];
  const unsigned hd_wdata = hd[kChHwdata];
  const unsigned hd_rdata = hd[kChHrdata];
  const unsigned hd_resp = hd[kChHresp];
  const unsigned hd_req = hd[kChHbusreq];
  const unsigned hd_grant = hd[kChHgrant];
  // The S2M select is physically one-hot: a selection change toggles
  // exactly two select lines regardless of the binary index distance.
  const unsigned hd_dslave = hd[kChDataSlave] != 0 ? 2u : 0u;

  const bool handover = !first_cycle_ && v.hmaster != prev_.hmaster;

  // --- sub-block energies from the macromodels --------------------------
  BlockEnergy e;
  e.dec = dec_model_.energy(hd_addr);
  e.m2s = m2s_model_.energy(hd_addr + hd_ctl + hd_wdata,
                            /*hd_sel=*/hd_grant, hd_addr + hd_ctl + hd_wdata);
  e.s2m = s2m_model_.energy(hd_rdata + hd_resp, /*hd_sel=*/hd_dslave,
                            hd_rdata + hd_resp);
  e.arb = arb_model_.energy(hd_req, handover);
  blocks_ += e;
  if (v.hmaster < master_energy_.size()) master_energy_[v.hmaster] += e.total();

  // --- the FSM transition = executed instruction ------------------------
  const BusMode next = classify(v, handover);
  const BusMode from = first_cycle_ ? next : mode_;
  InstrStats& st = instr_[static_cast<unsigned>(from) * 4 +
                          static_cast<unsigned>(next)];
  ++st.count;
  st.energy += e.total();

  mode_ = next;
  prev_ = v;
  first_cycle_ = false;
  return StepResult{from, next, e};
}

}  // namespace ahbp::power
