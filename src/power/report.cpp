#include "power/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ahbp::power {

namespace {

std::string fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

bool touches_idle_ho(const std::string& instruction) {
  return instruction.find("IDLE_HO") != std::string::npos;
}

bool is_data_transfer_no_handover(const std::string& instruction) {
  if (touches_idle_ho(instruction)) return false;
  // Transitions whose destination is a transfer mode: READ_WRITE,
  // WRITE_READ, WRITE_WRITE, READ_READ, IDLE_WRITE, IDLE_READ.
  return instruction.ends_with("_READ") || instruction.ends_with("_WRITE");
}

}  // namespace

std::string format_energy(double joules) {
  const double a = std::fabs(joules);
  if (a >= 1e-3) return fixed(joules * 1e3, 3) + " mJ";
  if (a >= 1e-6) return fixed(joules * 1e6, 3) + " uJ";
  if (a >= 1e-9) return fixed(joules * 1e9, 3) + " nJ";
  if (a >= 1e-12) return fixed(joules * 1e12, 2) + " pJ";
  if (a == 0.0) return "0 J";
  return fixed(joules * 1e15, 2) + " fJ";
}

std::string format_power(double watts) {
  const double a = std::fabs(watts);
  if (a >= 1.0) return fixed(watts, 3) + " W";
  if (a >= 1e-3) return fixed(watts * 1e3, 3) + " mW";
  if (a >= 1e-6) return fixed(watts * 1e6, 3) + " uW";
  if (a == 0.0) return "0 W";
  return fixed(watts * 1e9, 3) + " nW";
}

std::vector<InstructionRow> instruction_table(const PowerFsm& fsm) {
  const double total = fsm.total_energy();
  std::vector<InstructionRow> rows;
  for (const auto& [name, st] : fsm.instructions()) {
    InstructionRow r;
    r.instruction = name;
    r.count = st.count;
    r.average_j = st.average();
    r.total_j = st.energy;
    r.percent = total > 0 ? 100.0 * st.energy / total : 0.0;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const InstructionRow& a, const InstructionRow& b) {
              return a.total_j > b.total_j;
            });
  return rows;
}

std::string format_instruction_table(const PowerFsm& fsm) {
  std::ostringstream os;
  os << "Instruction            Count      Avg energy    Total energy   Share\n";
  os << "-------------------------------------------------------------------\n";
  for (const InstructionRow& r : instruction_table(fsm)) {
    char line[160];
    std::snprintf(line, sizeof line, "%-20s %9llu %13s %15s %6.2f %%\n",
                  r.instruction.c_str(), static_cast<unsigned long long>(r.count),
                  format_energy(r.average_j).c_str(),
                  format_energy(r.total_j).c_str(), r.percent);
    os << line;
  }
  os << "-------------------------------------------------------------------\n";
  os << "Total simulation energy: " << format_energy(fsm.total_energy()) << " over "
     << fsm.cycles() << " cycles\n";
  return os.str();
}

double data_transfer_share(const PowerFsm& fsm) {
  const double total = fsm.total_energy();
  if (total <= 0) return 0.0;
  double e = 0.0;
  for (const auto& [name, st] : fsm.instructions()) {
    if (is_data_transfer_no_handover(name)) e += st.energy;
  }
  return e / total;
}

double arbitration_share(const PowerFsm& fsm) {
  const double total = fsm.total_energy();
  if (total <= 0) return 0.0;
  double e = 0.0;
  for (const auto& [name, st] : fsm.instructions()) {
    if (touches_idle_ho(name)) e += st.energy;
  }
  return e / total;
}

std::string format_block_breakdown(const BlockEnergy& blocks) {
  const double total = blocks.total();
  auto pct = [&](double v) { return total > 0 ? 100.0 * v / total : 0.0; };
  std::ostringstream os;
  os << "AHB sub-block energy contribution (paper Fig. 6):\n";
  char line[128];
  std::snprintf(line, sizeof line, "  M2S  %10s  %6.2f %%\n",
                format_energy(blocks.m2s).c_str(), pct(blocks.m2s));
  os << line;
  std::snprintf(line, sizeof line, "  DEC  %10s  %6.2f %%\n",
                format_energy(blocks.dec).c_str(), pct(blocks.dec));
  os << line;
  std::snprintf(line, sizeof line, "  ARB  %10s  %6.2f %%\n",
                format_energy(blocks.arb).c_str(), pct(blocks.arb));
  os << line;
  std::snprintf(line, sizeof line, "  S2M  %10s  %6.2f %%\n",
                format_energy(blocks.s2m).c_str(), pct(blocks.s2m));
  os << line;
  return os.str();
}

std::string format_master_attribution(const PowerFsm& fsm,
                                      const std::vector<std::string>& names) {
  const auto& per = fsm.per_master_energy();
  double total = 0.0;
  for (double e : per) total += e;
  std::ostringstream os;
  os << "Per-master bus energy attribution:\n";
  for (std::size_t m = 0; m < per.size(); ++m) {
    const std::string label =
        m < names.size() ? names[m] : "master " + std::to_string(m);
    char line[128];
    std::snprintf(line, sizeof line, "  %-16s %10s  %6.2f %%\n", label.c_str(),
                  format_energy(per[m]).c_str(),
                  total > 0 ? 100.0 * per[m] / total : 0.0);
    os << line;
  }
  return os.str();
}

void write_trace_csv(std::ostream& os, const PowerTrace& trace) {
  os << "time_us,p_total_mw,p_arb_mw,p_dec_mw,p_m2s_mw,p_s2m_mw\n";
  for (const auto& p : trace.points()) {
    os << static_cast<double>(p.start.picoseconds()) * 1e-6 << ','
       << trace.power_total(p) * 1e3 << ',' << trace.power_arb(p) * 1e3 << ','
       << trace.power_dec(p) * 1e3 << ',' << trace.power_m2s(p) * 1e3 << ','
       << trace.power_s2m(p) * 1e3 << '\n';
  }
}

void write_instruction_csv(std::ostream& os, const PowerFsm& fsm) {
  os << "instruction,count,avg_pj,total_pj,percent\n";
  for (const InstructionRow& r : instruction_table(fsm)) {
    os << r.instruction << ',' << r.count << ',' << r.average_j * 1e12 << ','
       << r.total_j * 1e12 << ',' << r.percent << '\n';
  }
}

std::string format_activity_report(const Activity& activity) {
  std::ostringstream os;
  os << "Signal switching activity (instrumentation summary):\n";
  os << "  channel        samples     bit changes   mean HD   P(change)\n";
  // Activity stores channels unordered; sort names so the report is
  // deterministic across runs and platforms.
  std::vector<const std::string*> names;
  names.reserve(activity.channels().size());
  for (const auto& kv : activity.channels()) names.push_back(&kv.first);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* name : names) {
    const ActivityChannel& ch = *activity.find(*name);
    const double p_change =
        ch.sample_count() > 1
            ? static_cast<double>(ch.nonzero_count()) /
                  static_cast<double>(ch.sample_count() - 1)
            : 0.0;
    char line[128];
    std::snprintf(line, sizeof line, "  %-12s %9llu %15llu %9.3f %10.3f\n",
                  name->c_str(),
                  static_cast<unsigned long long>(ch.sample_count()),
                  static_cast<unsigned long long>(ch.bit_change_count()),
                  ch.mean_hd(), p_change);
    os << line;
  }
  return os.str();
}

std::string format_trace(const PowerTrace& trace, const std::string& block,
                         sim::SimTime until) {
  std::ostringstream os;
  os << "time         P_" << block << '\n';
  for (const auto& p : trace.points()) {
    if (until > sim::SimTime::zero() && p.start >= until) break;
    double w = 0.0;
    if (block == "total") {
      w = trace.power_total(p);
    } else if (block == "arb") {
      w = trace.power_arb(p);
    } else if (block == "dec") {
      w = trace.power_dec(p);
    } else if (block == "m2s") {
      w = trace.power_m2s(p);
    } else if (block == "s2m") {
      w = trace.power_s2m(p);
    }
    char line[96];
    std::snprintf(line, sizeof line, "%-12s %s\n", p.start.to_string().c_str(),
                  format_power(w).c_str());
    os << line;
  }
  return os.str();
}

}  // namespace ahbp::power
