#include "power/activity.hpp"

#include <algorithm>

namespace ahbp::power {

unsigned ActivityChannel::store_activity(std::uint64_t value) {
  if (has_value_) {
    last_hd_ = hamming(last_value_, value);
  } else {
    last_hd_ = 0;
    has_value_ = true;
  }
  bit_changes_ += last_hd_;
  if (last_hd_ != 0) ++nonzero_;
  last_value_ = value;
  ++samples_;
  return last_hd_;
}

double ActivityChannel::mean_hd() const {
  if (samples_ < 2) return 0.0;
  return static_cast<double>(bit_changes_) / static_cast<double>(samples_ - 1);
}

void ActivityChannel::restore(std::uint64_t last_value, unsigned last_hd,
                              std::uint64_t bit_changes, std::uint64_t nonzero,
                              std::uint64_t samples) {
  last_value_ = last_value;
  has_value_ = samples > 0;
  last_hd_ = last_hd;
  bit_changes_ = bit_changes;
  nonzero_ = nonzero;
  samples_ = samples;
}

void ActivityChannel::reset() { *this = ActivityChannel{}; }

ActivityChannel& Activity::channel(const std::string& name) { return channels_[name]; }

const ActivityChannel* Activity::find(const std::string& name) const {
  const auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

std::uint64_t Activity::bit_change_count() const {
  std::uint64_t total = 0;
  for (const auto& kv : channels_) total += kv.second.bit_change_count();
  return total;
}

void Activity::reset() { channels_.clear(); }

PackedActivity::PackedActivity(std::vector<std::string> names)
    : names_(std::move(names)),
      last_value_(names_.size(), 0),
      bit_changes_(names_.size(), 0),
      nonzero_(names_.size(), 0),
      last_hd_(names_.size(), 0) {}

void PackedActivity::store_all(const std::uint64_t* vals, unsigned* hd_out) {
  const std::size_t n = names_.size();
  if (has_value_) {
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned hd = hamming(last_value_[i], vals[i]);
      last_hd_[i] = hd;
      hd_out[i] = hd;
      bit_changes_[i] += hd;
      nonzero_[i] += hd != 0 ? 1 : 0;
      last_value_[i] = vals[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      last_hd_[i] = 0;
      hd_out[i] = 0;
      last_value_[i] = vals[i];
    }
    has_value_ = true;
  }
  ++samples_;
}

std::uint64_t PackedActivity::bit_change_count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : bit_changes_) total += c;
  return total;
}

void PackedActivity::export_to(Activity& out) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.channel(names_[i]).restore(last_value_[i], last_hd_[i], bit_changes_[i],
                                   nonzero_[i], samples_);
  }
}

void PackedActivity::reset() {
  std::fill(last_value_.begin(), last_value_.end(), 0);
  std::fill(bit_changes_.begin(), bit_changes_.end(), 0);
  std::fill(nonzero_.begin(), nonzero_.end(), 0);
  std::fill(last_hd_.begin(), last_hd_.end(), 0);
  samples_ = 0;
  has_value_ = false;
}

}  // namespace ahbp::power
