#include "power/activity.hpp"

namespace ahbp::power {

unsigned ActivityChannel::store_activity(std::uint64_t value) {
  if (has_value_) {
    last_hd_ = hamming(last_value_, value);
  } else {
    last_hd_ = 0;
    has_value_ = true;
  }
  bit_changes_ += last_hd_;
  if (last_hd_ != 0) ++nonzero_;
  last_value_ = value;
  ++samples_;
  return last_hd_;
}

double ActivityChannel::mean_hd() const {
  if (samples_ < 2) return 0.0;
  return static_cast<double>(bit_changes_) / static_cast<double>(samples_ - 1);
}

void ActivityChannel::reset() { *this = ActivityChannel{}; }

ActivityChannel& Activity::channel(const std::string& name) { return channels_[name]; }

const ActivityChannel* Activity::find(const std::string& name) const {
  const auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

std::uint64_t Activity::bit_change_count() const {
  std::uint64_t total = 0;
  for (const auto& kv : channels_) total += kv.second.bit_change_count();
  return total;
}

void Activity::reset() { channels_.clear(); }

}  // namespace ahbp::power
