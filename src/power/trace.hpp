#pragma once
// Windowed power-versus-time traces (the paper's Figures 3-5).
//
// PowerTrace is now a thin alias over the telemetry layer: the
// windowing arithmetic lives in telemetry::WindowSeries (ticked in
// femtoseconds here), and this header only adapts it to the historical
// BlockEnergy-typed API that report.hpp, the figure benches and the CLI
// consume. New code should prefer the estimator's cycle-windowed
// telemetry (AhbPowerEstimator::Config::telemetry_window_cycles) and
// the telemetry exporters.

#include <cstdint>
#include <vector>

#include "power/power_fsm.hpp"
#include "sim/report.hpp"
#include "sim/time.hpp"
#include "telemetry/window.hpp"

namespace ahbp::power {

/// Accumulates per-cycle block energies into fixed time windows.
class PowerTrace {
public:
  struct Point {
    sim::SimTime start;  ///< window start time
    BlockEnergy energy;  ///< energy within the window [J]
  };

  explicit PowerTrace(sim::SimTime window)
      : window_(window),
        series_(telemetry::WindowSeries::Config{
            .window_ticks = window > sim::SimTime::zero()
                ? static_cast<std::uint64_t>(window.femtoseconds())
                : throw sim::SimError("PowerTrace: window must be positive"),
            .tracks = {"arb", "dec", "m2s", "s2m"}}) {}

  /// Adds one cycle's energy at simulation time `now`. Windows are
  /// closed automatically as `now` crosses boundaries.
  void record(sim::SimTime now, const BlockEnergy& e) {
    series_.record(static_cast<std::uint64_t>(now.femtoseconds()),
                   {e.arb, e.dec, e.m2s, e.s2m});
  }

  /// Closes the current (partial) window so its data becomes visible.
  void flush() { series_.flush(); }

  [[nodiscard]] const std::vector<Point>& points() const {
    // Windows only ever append; convert the ones not yet mirrored.
    for (std::size_t i = points_.size(); i < series_.windows().size(); ++i) {
      const auto& w = series_.windows()[i];
      points_.push_back(Point{
          sim::SimTime::fs(static_cast<std::int64_t>(w.start_tick)),
          BlockEnergy{.arb = w.values[0], .dec = w.values[1],
                      .m2s = w.values[2], .s2m = w.values[3]}});
    }
    return points_;
  }
  [[nodiscard]] sim::SimTime window() const { return window_; }
  /// The backing telemetry series (femtosecond ticks).
  [[nodiscard]] const telemetry::WindowSeries& series() const { return series_; }

  /// Average power of a point [W].
  [[nodiscard]] double power_total(const Point& p) const {
    return p.energy.total() / window_.to_seconds();
  }
  [[nodiscard]] double power_arb(const Point& p) const {
    return p.energy.arb / window_.to_seconds();
  }
  [[nodiscard]] double power_dec(const Point& p) const {
    return p.energy.dec / window_.to_seconds();
  }
  [[nodiscard]] double power_m2s(const Point& p) const {
    return p.energy.m2s / window_.to_seconds();
  }
  [[nodiscard]] double power_s2m(const Point& p) const {
    return p.energy.s2m / window_.to_seconds();
  }

private:
  sim::SimTime window_;
  telemetry::WindowSeries series_;
  mutable std::vector<Point> points_;  ///< lazy mirror of series_.windows()
};

}  // namespace ahbp::power
