#pragma once
// Windowed power-versus-time traces (the paper's Figures 3-5).
//
// Energy is accumulated per fixed time window; each closed window yields
// one point whose power is window energy / window duration, per sub-block
// and total.

#include <vector>

#include "power/power_fsm.hpp"
#include "sim/time.hpp"

namespace ahbp::power {

/// Accumulates per-cycle block energies into fixed windows.
class PowerTrace {
public:
  struct Point {
    sim::SimTime start;  ///< window start time
    BlockEnergy energy;  ///< energy within the window [J]
  };

  explicit PowerTrace(sim::SimTime window);

  /// Adds one cycle's energy at simulation time `now`. Windows are
  /// closed automatically as `now` crosses boundaries.
  void record(sim::SimTime now, const BlockEnergy& e);

  /// Closes the current (partial) window so its data becomes visible.
  void flush();

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] sim::SimTime window() const { return window_; }

  /// Average power of a point [W].
  [[nodiscard]] double power_total(const Point& p) const {
    return p.energy.total() / window_.to_seconds();
  }
  [[nodiscard]] double power_arb(const Point& p) const {
    return p.energy.arb / window_.to_seconds();
  }
  [[nodiscard]] double power_dec(const Point& p) const {
    return p.energy.dec / window_.to_seconds();
  }
  [[nodiscard]] double power_m2s(const Point& p) const {
    return p.energy.m2s / window_.to_seconds();
  }
  [[nodiscard]] double power_s2m(const Point& p) const {
    return p.energy.s2m / window_.to_seconds();
  }

private:
  sim::SimTime window_;
  std::int64_t current_index_ = -1;
  BlockEnergy acc_;
  std::vector<Point> points_;
};

}  // namespace ahbp::power
