#pragma once
// Live gate-level co-simulation cross-check.
//
// The paper validated its macromodels offline with SIS. This module goes
// one step further: while the system-level bus simulates, the generated
// gate-level structures for two sub-blocks (the address-path M2S mux and
// the arbiter FSM) are driven with the *same live stimulus* the bus
// sees, and their toggle-accounted energy is recorded next to the
// macromodel's per-cycle estimate. The result is a direct, workload-
// faithful accuracy measurement (totals ratio + per-cycle correlation).

#include <cstdint>
#include <optional>
#include <vector>

#include "ahb/bus.hpp"
#include "gate/bitsim.hpp"
#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "power/macromodel.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::power {

/// Paired per-cycle energy series and their agreement statistics.
struct CosimSeries {
  std::vector<double> model;  ///< macromodel energy per cycle [J]
  std::vector<double> gate;   ///< gate-level reference energy per cycle [J]

  [[nodiscard]] double model_total() const;
  [[nodiscard]] double gate_total() const;
  /// Pearson correlation of the two series (0 if degenerate).
  [[nodiscard]] double correlation() const;
  /// model_total / gate_total (0 if the reference never switched).
  [[nodiscard]] double totals_ratio() const;
};

/// Runs the gate-level address mux and arbiter beside a live bus.
class GateLevelCrossCheck : public sim::Module {
public:
  /// How the gate-level references are evaluated.
  enum class Engine : std::uint8_t {
    kPerCycle,  ///< one GateSim eval/tick per bus cycle
    /// Buffer 64 cycles of live stimulus and replay them as the 64
    /// lanes of one gate::BitSim pass (cycle base+j = lane j; every
    /// lane's "previous" assignment comes from the lane below via a
    /// word shift, carrying the last pre-batch cycle into lane 0).
    /// Per-cycle gate energies are bit-identical to kPerCycle.
    kBatched,
  };

  GateLevelCrossCheck(sim::Module* parent, std::string name, ahb::AhbBus& bus);
  GateLevelCrossCheck(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                      gate::Technology tech, Engine engine = Engine::kPerCycle);

  /// Address-path (32-bit) M2S mux: gate level vs MuxModel.
  [[nodiscard]] const CosimSeries& mux_series() const;
  /// Arbiter: gate level vs ArbiterFsmModel.
  [[nodiscard]] const CosimSeries& arbiter_series() const;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] Engine engine() const { return engine_; }

  /// Drains buffered cycles (kBatched) into the series as a partial
  /// batch. The series accessors call this themselves; recording
  /// continues seamlessly afterwards. No-op for kPerCycle.
  void flush();

private:
  void on_cycle();
  void flush_batch();

  ahb::AhbBus& bus_;
  gate::Technology tech_;

  gate::MuxNetlist mux_nl_;
  gate::GateSim mux_sim_;
  MuxModel mux_model_;
  CosimSeries mux_series_;
  std::uint32_t prev_addr_out_ = 0;
  std::uint8_t prev_hmaster_ = 0;
  std::vector<std::uint32_t> prev_master_addr_;

  gate::ArbiterNetlist arb_nl_;
  gate::GateSim arb_sim_;
  ArbiterFsmModel arb_model_;
  CosimSeries arb_series_;
  std::uint32_t prev_req_ = 0;

  // Batched engine state: buffered stimulus for the in-flight batch and
  // the carry (the last flushed cycle's assignment, lane 0's "previous").
  Engine engine_ = Engine::kPerCycle;
  std::optional<gate::BitSim> mux_bsim_;
  std::optional<gate::BitSim> arb_bsim_;
  std::vector<std::uint32_t> pend_addr_;  ///< n_masters entries per cycle
  std::vector<std::uint8_t> pend_sel_;    ///< one entry per cycle
  std::vector<std::uint32_t> pend_req_;   ///< one entry per cycle
  std::vector<std::uint32_t> lane_prev_addr_;
  std::uint8_t lane_prev_sel_ = 0;
  std::uint32_t lane_prev_req_ = 0;
  std::vector<std::uint64_t> pin_words_;  ///< flush scratch, no per-batch alloc

  std::uint64_t cycles_ = 0;
  sim::Method proc_;
};

}  // namespace ahbp::power
