#pragma once
// Live gate-level co-simulation cross-check.
//
// The paper validated its macromodels offline with SIS. This module goes
// one step further: while the system-level bus simulates, the generated
// gate-level structures for two sub-blocks (the address-path M2S mux and
// the arbiter FSM) are driven with the *same live stimulus* the bus
// sees, and their toggle-accounted energy is recorded next to the
// macromodel's per-cycle estimate. The result is a direct, workload-
// faithful accuracy measurement (totals ratio + per-cycle correlation).

#include <cstdint>
#include <vector>

#include "ahb/bus.hpp"
#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "power/macromodel.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::power {

/// Paired per-cycle energy series and their agreement statistics.
struct CosimSeries {
  std::vector<double> model;  ///< macromodel energy per cycle [J]
  std::vector<double> gate;   ///< gate-level reference energy per cycle [J]

  [[nodiscard]] double model_total() const;
  [[nodiscard]] double gate_total() const;
  /// Pearson correlation of the two series (0 if degenerate).
  [[nodiscard]] double correlation() const;
  /// model_total / gate_total (0 if the reference never switched).
  [[nodiscard]] double totals_ratio() const;
};

/// Runs the gate-level address mux and arbiter beside a live bus.
class GateLevelCrossCheck : public sim::Module {
public:
  GateLevelCrossCheck(sim::Module* parent, std::string name, ahb::AhbBus& bus);
  GateLevelCrossCheck(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                      gate::Technology tech);

  /// Address-path (32-bit) M2S mux: gate level vs MuxModel.
  [[nodiscard]] const CosimSeries& mux_series() const { return mux_series_; }
  /// Arbiter: gate level vs ArbiterFsmModel.
  [[nodiscard]] const CosimSeries& arbiter_series() const { return arb_series_; }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

private:
  void on_cycle();

  ahb::AhbBus& bus_;
  gate::Technology tech_;

  gate::MuxNetlist mux_nl_;
  gate::GateSim mux_sim_;
  MuxModel mux_model_;
  CosimSeries mux_series_;
  std::uint32_t prev_addr_out_ = 0;
  std::uint8_t prev_hmaster_ = 0;
  std::vector<std::uint32_t> prev_master_addr_;

  gate::ArbiterNetlist arb_nl_;
  gate::GateSim arb_sim_;
  ArbiterFsmModel arb_model_;
  CosimSeries arb_series_;
  std::uint32_t prev_req_ = 0;

  std::uint64_t cycles_ = 0;
  sim::Method proc_;
};

}  // namespace ahbp::power
