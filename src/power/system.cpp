#include "power/system.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "power/report.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

MemoryEnergyModel::MemoryEnergyModel(std::uint32_t size_bytes,
                                     gate::Technology tech)
    : size_(size_bytes) {
  if (size_bytes == 0) throw sim::SimError("MemoryEnergyModel: empty memory");
  const double words = static_cast<double>(size_bytes) / 4.0;
  // Row/column organization: switched capacitance per access grows with
  // sqrt(words) (one wordline + 32 bitline segments), plus fixed
  // sense-amp / IO capacitance.
  const double c_array = tech.c_node * (16.0 + 32.0 * 0.25 * std::sqrt(words));
  const double vdd2_2 = tech.vdd * tech.vdd / 2.0;
  e_read_ = vdd2_2 * c_array;
  // Writes drive the cells hard (full-swing bitlines): slightly costlier.
  e_write_ = 1.2 * e_read_;
  // Standby: decoder clocking only.
  e_idle_ = vdd2_2 * tech.c_node * 0.1;
}

double MemoryEnergyModel::total(const ahb::MemorySlave::Stats& stats,
                                std::uint64_t cycles) const {
  const std::uint64_t accesses = stats.reads + stats.writes;
  const std::uint64_t idle = cycles > accesses ? cycles - accesses : 0;
  return static_cast<double>(stats.reads) * e_read_ +
         static_cast<double>(stats.writes) * e_write_ +
         static_cast<double>(idle) * e_idle_;
}

void SystemPowerSummary::add(std::string name, double energy_joules) {
  items_.push_back(SystemPowerItem{std::move(name), energy_joules});
}

double SystemPowerSummary::total() const {
  double t = 0.0;
  for (const auto& it : items_) t += it.energy;
  return t;
}

std::string SystemPowerSummary::format(double seconds) const {
  std::vector<SystemPowerItem> sorted = items_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SystemPowerItem& a, const SystemPowerItem& b) {
              return a.energy > b.energy;
            });
  const double t = total();
  std::ostringstream os;
  os << "System power roll-up:\n";
  for (const auto& it : sorted) {
    char line[160];
    std::snprintf(line, sizeof line, "  %-18s %12s  %6.2f %%\n", it.name.c_str(),
                  format_energy(it.energy).c_str(),
                  t > 0 ? 100.0 * it.energy / t : 0.0);
    os << line;
  }
  char tail[160];
  std::snprintf(tail, sizeof tail, "  %-18s %12s  (avg %s)\n", "TOTAL",
                format_energy(t).c_str(),
                seconds > 0 ? format_power(t / seconds).c_str() : "-");
  os << tail;
  return os.str();
}

}  // namespace ahbp::power
