#pragma once
// Result rendering: the paper's Table 1 (per-instruction energy), the
// Fig. 6 sub-block breakdown, power traces as CSV/series, and the
// data-path-vs-arbitration energy split the paper's conclusion rests on.

#include <iosfwd>
#include <string>
#include <vector>

#include "power/power_fsm.hpp"
#include "power/trace.hpp"

namespace ahbp::power {

/// One row of the Table-1-style report.
struct InstructionRow {
  std::string instruction;
  std::uint64_t count = 0;
  double average_j = 0.0;  ///< average energy per execution [J]
  double total_j = 0.0;    ///< total energy [J]
  double percent = 0.0;    ///< of the whole simulation energy
};

/// Builds the instruction table, sorted by descending total energy.
[[nodiscard]] std::vector<InstructionRow> instruction_table(const PowerFsm& fsm);

/// Renders the table in the paper's format (average / total / percent).
[[nodiscard]] std::string format_instruction_table(const PowerFsm& fsm);

/// Fraction of total energy spent in data-transfer instructions with no
/// bus handover (transitions between READ/WRITE modes, plus entering a
/// transfer from plain IDLE). The paper reports ~87% for its testbench.
[[nodiscard]] double data_transfer_share(const PowerFsm& fsm);

/// Fraction of total energy in arbitration-related instructions (any
/// instruction touching the IDLE_HO mode). The paper reports ~13%.
[[nodiscard]] double arbitration_share(const PowerFsm& fsm);

/// Renders the Fig. 6 sub-block contribution breakdown (M2S / DEC /
/// ARB / S2M percentages).
[[nodiscard]] std::string format_block_breakdown(const BlockEnergy& blocks);

/// Renders the per-master energy attribution (who owns the bus when the
/// energy is burned) -- the per-IP budget view. `names[i]` labels master
/// i; missing names fall back to "master <i>".
[[nodiscard]] std::string format_master_attribution(
    const PowerFsm& fsm, const std::vector<std::string>& names = {});

/// Writes a power trace as CSV: time_us, p_total_mw, p_arb_mw, p_dec_mw,
/// p_m2s_mw, p_s2m_mw.
void write_trace_csv(std::ostream& os, const PowerTrace& trace);

/// Writes the instruction table as CSV: instruction, count, avg_pj,
/// total_pj, percent.
void write_instruction_csv(std::ostream& os, const PowerFsm& fsm);

/// Renders the per-signal switching-activity summary gathered by the
/// instrumentation (mean HD, total bit changes, change probability per
/// monitored channel).
[[nodiscard]] std::string format_activity_report(const Activity& activity);

/// Renders one block's power series as a compact fixed-width listing
/// (used by the figure benches). `block` selects "total", "arb", "dec",
/// "m2s" or "s2m"; `until` truncates the series (zero = everything).
[[nodiscard]] std::string format_trace(const PowerTrace& trace,
                                       const std::string& block,
                                       sim::SimTime until = sim::SimTime::zero());

/// Pretty-prints an energy in engineering units (pJ/nJ/uJ).
[[nodiscard]] std::string format_energy(double joules);
/// Pretty-prints a power in engineering units (uW/mW).
[[nodiscard]] std::string format_power(double watts);

}  // namespace ahbp::power
