#include "power/styles.hpp"

#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

using sim::SimError;

// ---------------------------------------------------------------------------
// PrivatePowerModel

PrivatePowerModel::PrivatePowerModel(sim::Module* parent, std::string name,
                                     ahb::AhbBus& bus)
    : PrivatePowerModel(parent, std::move(name), bus,
                        gate::Technology::default_2003()) {}

PrivatePowerModel::PrivatePowerModel(sim::Module* parent, std::string name,
                                     ahb::AhbBus& bus, gate::Technology tech)
    : Module(parent, std::move(name)),
      bus_(bus),
      dec_model_(bus.n_slaves(), tech),
      m2s_model_(72, bus.n_masters(), tech),
      s2m_model_(35, bus.n_slaves(), tech),
      arb_model_(bus.n_masters(), tech),
      dec_proc_(this, "dec", [this] { on_decoder_event(); }),
      m2s_proc_(this, "m2s", [this] { on_m2s_event(); }),
      s2m_proc_(this, "s2m", [this] { on_s2m_event(); }) {
  if (!bus.finalized()) {
    throw SimError("PrivatePowerModel: bus must be finalized first");
  }
  ahb::BusSignals& b = bus.bus();
  dec_proc_.sensitive(b.haddr.value_changed_event()).dont_initialize();
  m2s_proc_.sensitive(b.haddr.value_changed_event())
      .sensitive(b.htrans.value_changed_event())
      .sensitive(b.hwrite.value_changed_event())
      .sensitive(b.hwdata.value_changed_event())
      .sensitive(b.hmaster.value_changed_event());
  m2s_proc_.dont_initialize();
  s2m_proc_.sensitive(b.hrdata.value_changed_event())
      .sensitive(b.hready.value_changed_event())
      .sensitive(b.hresp.value_changed_event());
  s2m_proc_.dont_initialize();

  arb_proc_ = std::make_unique<sim::Method>(this, "arb", [this] { on_arbiter_event(); });
  arb_proc_->sensitive(b.hmaster.value_changed_event()).dont_initialize();
  // Request-line changes also wake the arbiter probe.
  // (HBUSREQ lines are master outputs; the arbiter sees them directly.)
  arb_proc_->sensitive(b.hready.value_changed_event());
}

namespace {
/// Address + write data packed with disjoint bit fields (exact HD).
std::uint64_t m2s_data_bundle(const ahb::BusSignals& b) {
  return static_cast<std::uint64_t>(b.haddr.read()) |
         (static_cast<std::uint64_t>(b.hwdata.read()) << 32);
}
std::uint64_t m2s_ctl_bundle(const ahb::BusSignals& b) {
  return static_cast<std::uint64_t>(b.htrans.read()) |
         (static_cast<std::uint64_t>(b.hwrite.read()) << 2);
}
std::uint64_t s2m_bundle(const ahb::BusSignals& b) {
  return static_cast<std::uint64_t>(b.hrdata.read()) |
         (static_cast<std::uint64_t>(b.hresp.read()) << 32) |
         (static_cast<std::uint64_t>(b.hready.read()) << 34);
}
}  // namespace

void PrivatePowerModel::on_decoder_event() {
  ++events_;
  const std::uint32_t addr = bus_.bus().haddr.read();
  blocks_.dec += dec_model_.energy(prev_haddr_, addr);
  prev_haddr_ = addr;
}

void PrivatePowerModel::on_m2s_event() {
  ++events_;
  const ahb::BusSignals& b = bus_.bus();
  const std::uint64_t cur = m2s_data_bundle(b);
  const std::uint64_t ctl = m2s_ctl_bundle(b);
  const std::uint8_t hm = b.hmaster.read();
  const unsigned hd = hamming(prev_m2s_, cur) + hamming(prev_m2s_ctl_, ctl);
  const unsigned hd_sel = hm != prev_hmaster_ ? 2u : 0u;
  blocks_.m2s += m2s_model_.energy(hd, hd_sel, hd);
  prev_m2s_ = cur;
  prev_m2s_ctl_ = ctl;
  prev_hmaster_ = hm;
}

void PrivatePowerModel::on_s2m_event() {
  ++events_;
  const ahb::BusSignals& b = bus_.bus();
  const std::uint64_t cur = s2m_bundle(b);
  const std::uint8_t ds = bus_.pipeline().data_phase_slave().read();
  const unsigned hd = hamming(prev_s2m_, cur);
  const unsigned hd_sel = ds != prev_dslave_ ? 2u : 0u;
  blocks_.s2m += s2m_model_.energy(hd, hd_sel, hd);
  prev_s2m_ = cur;
  prev_dslave_ = ds;
}

void PrivatePowerModel::on_arbiter_event() {
  ++events_;
  const std::uint32_t req = bus_.arbiter().request_vector();
  const bool handover = bus_.bus().hmaster.read() != prev_hmaster_;
  blocks_.arb += arb_model_.energy(hamming(prev_req_, req), handover);
  prev_req_ = req;
}

// ---------------------------------------------------------------------------
// BusActivityProbe

BusActivityProbe::BusActivityProbe(sim::Module* parent, std::string name,
                                   ahb::AhbBus& bus, PowerReportIf& sink)
    : Module(parent, std::move(name)),
      bus_(bus),
      sink_(sink),
      proc_(this, "probe", [this] { on_cycle(); }) {
  if (!bus.finalized()) {
    throw SimError("BusActivityProbe: bus must be finalized first");
  }
  proc_.sensitive(bus.clock().negedge_event()).dont_initialize();
}

void BusActivityProbe::on_cycle() {
  const ahb::BusSignals& b = bus_.bus();
  CycleView v;
  v.haddr = b.haddr.read();
  v.htrans = b.htrans.read();
  v.hwrite = b.hwrite.read();
  v.hsize = b.hsize.read();
  v.hburst = b.hburst.read();
  v.hwdata = b.hwdata.read();
  v.hrdata = b.hrdata.read();
  v.hready = b.hready.read();
  v.hresp = b.hresp.read();
  v.hmaster = b.hmaster.read();
  v.data_slave = bus_.pipeline().data_phase_slave().read();
  v.data_active = bus_.pipeline().data_phase_active().read();
  v.data_write = bus_.pipeline().data_phase_write().read();
  for (unsigned m = 0; m < bus_.n_masters(); ++m) {
    if (bus_.hgrant(m).read()) v.grant_vector |= 1u << m;
  }
  v.req_vector = bus_.arbiter().request_vector();
  sink_.post_cycle(v);
  ++posted_;
}

// ---------------------------------------------------------------------------
// GlobalPowerAnalyzer

GlobalPowerAnalyzer::GlobalPowerAnalyzer(sim::Module* parent, std::string name,
                                         PowerFsm::Config cfg)
    : Module(parent, std::move(name)), fsm_(cfg) {}

void GlobalPowerAnalyzer::post_cycle(const CycleView& view) { fsm_.step(view); }

}  // namespace ahbp::power
