#pragma once
// The three power-model integration styles of the paper's Fig. 1.
//
//   * private -- accounting code embedded per block, triggered by every
//     signal event of that block (most intrusive, finest grained);
//   * local   -- one added monitor FSM process per module: that is
//     AhbPowerEstimator (see estimator.hpp);
//   * global  -- a separate analyzer module fed through an explicit
//     reporting interface, knowing nothing about the bus internals
//     (most reusable).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ahb/bus.hpp"
#include "power/estimator.hpp"
#include "power/power_fsm.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::power {

/// Alias making the style taxonomy explicit: the "local model" style is
/// the estimator.
using LocalPowerMonitor = AhbPowerEstimator;

/// The "private model" style: one accounting process per sub-block, each
/// statically sensitive to its own block's signals and charging the
/// macromodel at every event (not once per cycle). Finest granularity,
/// highest simulation cost.
class PrivatePowerModel : public sim::Module {
public:
  PrivatePowerModel(sim::Module* parent, std::string name, ahb::AhbBus& bus);
  PrivatePowerModel(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                    gate::Technology tech);

  [[nodiscard]] const BlockEnergy& block_totals() const { return blocks_; }
  [[nodiscard]] double total_energy() const { return blocks_.total(); }
  /// Number of signal events processed (a cost proxy).
  [[nodiscard]] std::uint64_t event_count() const { return events_; }

private:
  void on_decoder_event();
  void on_m2s_event();
  void on_s2m_event();
  void on_arbiter_event();

  ahb::AhbBus& bus_;
  DecoderModel dec_model_;
  MuxModel m2s_model_;
  MuxModel s2m_model_;
  ArbiterFsmModel arb_model_;

  // Previous values per block, for event-level Hamming distances.
  std::uint32_t prev_haddr_ = 0;
  std::uint64_t prev_m2s_ = 0;
  std::uint64_t prev_m2s_ctl_ = 0;
  std::uint64_t prev_s2m_ = 0;
  std::uint32_t prev_req_ = 0;
  std::uint8_t prev_hmaster_ = 0;
  std::uint8_t prev_dslave_ = 0xFF;

  BlockEnergy blocks_;
  std::uint64_t events_ = 0;

  sim::Method dec_proc_;
  sim::Method m2s_proc_;
  sim::Method s2m_proc_;
  std::unique_ptr<sim::Method> arb_proc_;  ///< built after grants exist
};

/// The reporting interface of the "global model" style: whatever sits on
/// the analyzer side only needs to implement this.
class PowerReportIf {
public:
  virtual ~PowerReportIf() = default;
  /// Delivers one cycle's activity record.
  virtual void post_cycle(const CycleView& view) = 0;
};

/// Bus-side probe of the global style: a minimal process that packages
/// the cycle view and posts it through the PowerReportIf. It contains no
/// power knowledge at all.
class BusActivityProbe : public sim::Module {
public:
  BusActivityProbe(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                   PowerReportIf& sink);

  [[nodiscard]] std::uint64_t posted() const { return posted_; }

private:
  void on_cycle();

  ahb::AhbBus& bus_;
  PowerReportIf& sink_;
  std::uint64_t posted_ = 0;
  sim::Method proc_;
};

/// The analyzer side of the global style: a bus-agnostic module that
/// turns posted activity records into energy via the power FSM. It could
/// analyze any core that speaks PowerReportIf.
class GlobalPowerAnalyzer : public sim::Module, public PowerReportIf {
public:
  GlobalPowerAnalyzer(sim::Module* parent, std::string name, PowerFsm::Config cfg);

  void post_cycle(const CycleView& view) override;

  [[nodiscard]] const PowerFsm& fsm() const { return fsm_; }
  [[nodiscard]] double total_energy() const { return fsm_.total_energy(); }
  [[nodiscard]] const BlockEnergy& block_totals() const { return fsm_.block_totals(); }

private:
  PowerFsm fsm_;
};

}  // namespace ahbp::power
