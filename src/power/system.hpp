#pragma once
// Whole-system energy roll-up.
//
// The paper's methodology lineage ([4] Givargis/Vahid/Henkel,
// "Instruction based system level power evaluation of SoC peripheral
// cores") treats every core as an instruction-driven energy consumer.
// This module extends our bus-centric analysis the same way: a simple
// per-access energy model for memory slaves, and a summary that rolls
// bus fabric + memories + APB into the system power picture a designer
// budgets against.

#include <cstdint>
#include <string>
#include <vector>

#include "ahb/slave.hpp"
#include "gate/tech.hpp"

namespace ahbp::power {

/// Instruction-based energy model of a memory core: the instruction set
/// is {READ access, WRITE access, idle cycle}.
///
///   E_access = VDD^2/2 * C_array(size)   (bitline/wordline switching)
///   C_array grows with the square root of the word count (row/column
///   organization splits the decode), plus a fixed sense/IO term.
class MemoryEnergyModel {
public:
  MemoryEnergyModel(std::uint32_t size_bytes, gate::Technology tech);

  [[nodiscard]] double read_energy() const { return e_read_; }
  [[nodiscard]] double write_energy() const { return e_write_; }
  /// Standby cost per idle cycle (clocking/leakage proxy).
  [[nodiscard]] double idle_cycle_energy() const { return e_idle_; }

  /// Total energy for a slave's recorded activity over `cycles` bus
  /// cycles (accesses from its stats; the rest idles).
  [[nodiscard]] double total(const ahb::MemorySlave::Stats& stats,
                             std::uint64_t cycles) const;

  [[nodiscard]] std::uint32_t size_bytes() const { return size_; }

private:
  std::uint32_t size_;
  double e_read_;
  double e_write_;
  double e_idle_;
};

/// One line of the system roll-up.
struct SystemPowerItem {
  std::string name;
  double energy = 0.0;  ///< [J]
};

/// The system power picture: bus fabric + every modeled core.
class SystemPowerSummary {
public:
  void add(std::string name, double energy_joules);

  [[nodiscard]] const std::vector<SystemPowerItem>& items() const { return items_; }
  [[nodiscard]] double total() const;

  /// Renders the roll-up with shares (largest first) and average power.
  [[nodiscard]] std::string format(double seconds) const;

private:
  std::vector<SystemPowerItem> items_;
};

}  // namespace ahbp::power
