#include "power/governor.hpp"

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

PowerGovernor::PowerGovernor(sim::Module* parent, std::string name,
                             AhbPowerEstimator& est, Config cfg)
    : Module(parent, std::move(name)),
      est_(est),
      cfg_(cfg),
      throttle_(this, "throttle", false),
      proc_(this, "watch", [this] { on_cycle(); }) {
  if (cfg_.budget_watts <= 0) throw sim::SimError("PowerGovernor: budget must be > 0");
  if (cfg_.window_cycles == 0) throw sim::SimError("PowerGovernor: window must be > 0");
  // Run after the estimator's own negedge sampling (registration order
  // within a delta does not matter: we only read accumulated energy).
  proc_.sensitive(est.bus_clock().negedge_event()).dont_initialize();
}

void PowerGovernor::on_cycle() {
  if (++cycles_in_window_ < cfg_.window_cycles) return;

  const double e = est_.total_energy();
  const double window_energy = e - window_start_energy_;
  const double window_seconds =
      est_.bus_clock().period().to_seconds() * cfg_.window_cycles;
  const double p = window_energy / window_seconds;

  ++stats_.windows;
  power_sum_ += p;
  stats_.mean_window_power = power_sum_ / static_cast<double>(stats_.windows);
  stats_.peak_window_power = std::max(stats_.peak_window_power, p);
  if (p > cfg_.budget_watts) ++stats_.over_budget_windows;

  throttle_.write(p > cfg_.budget_watts);
  window_start_energy_ = e;
  cycles_in_window_ = 0;
}

}  // namespace ahbp::power
