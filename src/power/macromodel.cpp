#include "power/macromodel.hpp"

#include "gate/synth.hpp"
#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

using sim::SimError;

// ---------------------------------------------------------------------------
// LinearModel

double LinearModel::energy(const std::vector<double>& features) const {
  if (coeffs_.empty()) throw SimError("LinearModel: no coefficients");
  if (features.size() + 1 != coeffs_.size()) {
    throw SimError("LinearModel: feature count mismatch");
  }
  double e = coeffs_[0];
  for (std::size_t i = 0; i < features.size(); ++i) e += coeffs_[i + 1] * features[i];
  return e;
}

// ---------------------------------------------------------------------------
// DecoderModel

DecoderModel::DecoderModel(unsigned n_outputs, gate::Technology tech)
    : n_outputs_(n_outputs), n_inputs_(gate::select_bits(n_outputs)), tech_(tech) {
  if (n_outputs < 2) throw SimError("DecoderModel: need >= 2 outputs");
}

double DecoderModel::energy(unsigned hd_in) const {
  // Paper, Sec. 5.1:
  //   E_DEC = VDD^2/4 * (nO * nI * C_PD * HD_IN + 2 * HD_OUT * C_O)
  const unsigned hd_out = hd_in >= 1 ? 1u : 0u;
  const double vdd2_4 = tech_.vdd * tech_.vdd / 4.0;
  return vdd2_4 * (static_cast<double>(n_outputs_) * n_inputs_ * tech_.c_node * hd_in +
                   2.0 * hd_out * tech_.c_out);
}

double DecoderModel::energy(std::uint64_t prev_in, std::uint64_t cur_in) const {
  return energy(hamming(prev_in, cur_in));
}

// ---------------------------------------------------------------------------
// MuxModel

MuxModel::MuxModel(unsigned width, unsigned n_inputs, gate::Technology tech)
    : MuxModel(width, n_inputs, tech, Coefficients{}) {}

MuxModel::MuxModel(unsigned width, unsigned n_inputs, gate::Technology tech,
                   Coefficients k)
    : width_(width), n_inputs_(n_inputs), tech_(tech), k_(k) {
  if (width < 1 || n_inputs < 2) throw SimError("MuxModel: bad shape");
}

double MuxModel::energy(unsigned hd_in, unsigned hd_sel, unsigned hd_out) const {
  const double vdd2_4 = tech_.vdd * tech_.vdd / 4.0;
  return vdd2_4 * tech_.c_node *
         (k_.k_in * hd_in + k_.k_sel * static_cast<double>(width_) * hd_sel +
          k_.k_out * hd_out * (tech_.c_out / tech_.c_node));
}

// ---------------------------------------------------------------------------
// ArbiterFsmModel

ArbiterFsmModel::ArbiterFsmModel(unsigned n_masters, gate::Technology tech)
    : n_masters_(n_masters) {
  if (n_masters < 2) throw SimError("ArbiterFsmModel: need >= 2 masters");
  const double vdd2_4 = tech.vdd * tech.vdd / 4.0;
  const unsigned state_bits = gate::select_bits(n_masters);
  // Background clocking of the state register (small, per cycle).
  e_idle_ = vdd2_4 * tech.c_node * 0.5 * state_bits;
  // One toggling request ripples through the priority chain (the wins_i
  // AND/OR ladder re-evaluates below the flipped line; calibrated against
  // the gate-level structure via charlib).
  e_req_ = vdd2_4 * tech.c_node * 10.0;
  // A handover toggles ~all state bits plus two one-hot grant outputs
  // and their decode minterms.
  e_grant_ = vdd2_4 * (tech.c_node * 5.0 * state_bits + 2.0 * tech.c_out);
}

double ArbiterFsmModel::energy(unsigned hd_req, bool handover) const {
  return e_idle_ + e_req_ * hd_req + (handover ? e_grant_ : 0.0);
}

}  // namespace ahbp::power
