#include "power/cosim.hpp"

#include <cmath>

#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

using sim::SimError;

// ---------------------------------------------------------------------------
// CosimSeries

double CosimSeries::model_total() const {
  double s = 0.0;
  for (double v : model) s += v;
  return s;
}

double CosimSeries::gate_total() const {
  double s = 0.0;
  for (double v : gate) s += v;
  return s;
}

double CosimSeries::correlation() const {
  const std::size_t n = model.size();
  if (n < 2 || gate.size() != n) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += model[i];
    my += gate[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = model[i] - mx;
    const double dy = gate[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double CosimSeries::totals_ratio() const {
  const double g = gate_total();
  return g > 0 ? model_total() / g : 0.0;
}

// ---------------------------------------------------------------------------
// GateLevelCrossCheck

namespace {

/// Gathers one lane-major stimulus bundle (`get(j)` = recorded cycle j's
/// value) into pin-major words: afterwards bit j of tmp[b] is bit b of
/// cycle j's value. Lanes past `lanes` replicate the last recorded value
/// so a partial batch settles quietly: under the lane-shift trick their
/// "previous" assignment equals their current one, so they toggle no
/// nets and contribute no energy to any read-out lane.
template <class Get>
void gather_pins(unsigned lanes, Get&& get,
                 std::uint64_t tmp[gate::BitSim::kLanes]) {
  const std::uint64_t last =
      lanes != 0 ? static_cast<std::uint64_t>(get(lanes - 1)) : 0;
  for (unsigned j = 0; j < gate::BitSim::kLanes; ++j) {
    tmp[j] = j < lanes ? static_cast<std::uint64_t>(get(j)) : last;
  }
  gate::bit_transpose_64x64(tmp);
}

}  // namespace

GateLevelCrossCheck::GateLevelCrossCheck(sim::Module* parent, std::string name,
                                         ahb::AhbBus& bus)
    : GateLevelCrossCheck(parent, std::move(name), bus,
                          gate::Technology::default_2003()) {}

GateLevelCrossCheck::GateLevelCrossCheck(sim::Module* parent, std::string name,
                                         ahb::AhbBus& bus, gate::Technology tech,
                                         Engine engine)
    : Module(parent, std::move(name)),
      bus_(bus),
      tech_(tech),
      mux_nl_(gate::build_mux(32, std::max(2u, bus.n_masters()))),
      mux_sim_(mux_nl_.nl, tech),
      mux_model_(32, std::max(2u, bus.n_masters()), tech),
      prev_master_addr_(bus.n_masters(), 0),
      arb_nl_(gate::build_priority_arbiter(std::max(2u, bus.n_masters()))),
      arb_sim_(arb_nl_.nl, tech),
      arb_model_(std::max(2u, bus.n_masters()), tech),
      engine_(engine),
      lane_prev_addr_(bus.n_masters(), 0),
      proc_(this, "cosim", [this] { on_cycle(); }) {
  if (!bus.finalized()) {
    throw SimError("GateLevelCrossCheck: bus must be finalized first");
  }
  if (engine_ == Engine::kBatched) {
    mux_bsim_.emplace(mux_nl_.nl, tech_, gate::BitSim::Accounting::kPerLane);
    arb_bsim_.emplace(arb_nl_.nl, tech_, gate::BitSim::Accounting::kPerLane);
    pend_addr_.reserve(static_cast<std::size_t>(gate::BitSim::kLanes) *
                       bus.n_masters());
    pend_sel_.reserve(gate::BitSim::kLanes);
    pend_req_.reserve(gate::BitSim::kLanes);
  }
  proc_.sensitive(bus.clock().negedge_event()).dont_initialize();
}

const CosimSeries& GateLevelCrossCheck::mux_series() const {
  // Logically const: draining the lane buffer only completes entries the
  // recorded cycles already determine.
  const_cast<GateLevelCrossCheck*>(this)->flush();
  return mux_series_;
}

const CosimSeries& GateLevelCrossCheck::arbiter_series() const {
  const_cast<GateLevelCrossCheck*>(this)->flush();
  return arb_series_;
}

void GateLevelCrossCheck::flush() {
  if (engine_ == Engine::kBatched) flush_batch();
}

void GateLevelCrossCheck::flush_batch() {
  const unsigned lanes = static_cast<unsigned>(pend_sel_.size());
  if (lanes == 0) return;
  const unsigned n_masters = bus_.n_masters();
  std::uint64_t tmp[gate::BitSim::kLanes];

  // --- address-path mux: 64 cycles as 64 lanes --------------------------
  // Wave 1 (unaccounted) establishes every lane's previous assignment:
  // lane j's predecessor is cycle base+j-1, i.e. lane j-1's current
  // words, so the shifted pin words with the carry bit in lane 0 are
  // exactly the predecessor assignment. Wave 2 accounts the transition.
  gate::BitSim& mux = *mux_bsim_;
  pin_words_.clear();
  for (unsigned m = 0; m < n_masters; ++m) {
    gather_pins(lanes, [&](unsigned j) { return pend_addr_[j * n_masters + m]; },
                tmp);
    pin_words_.insert(pin_words_.end(), tmp, tmp + 32);
  }
  const unsigned n_sel = static_cast<unsigned>(mux_nl_.sel.size());
  gather_pins(lanes, [&](unsigned j) { return pend_sel_[j]; }, tmp);
  pin_words_.insert(pin_words_.end(), tmp, tmp + n_sel);

  const auto drive_mux = [&](bool shifted) {
    std::size_t w = 0;
    const auto word = [shifted](std::uint64_t cur, std::uint32_t carry_bit) {
      return shifted ? cur << 1 | carry_bit : cur;
    };
    for (unsigned m = 0; m < n_masters; ++m) {
      for (unsigned bit = 0; bit < 32; ++bit, ++w) {
        mux.set_input(mux_nl_.data[m][bit],
                      word(pin_words_[w], lane_prev_addr_[m] >> bit & 1u));
      }
    }
    for (unsigned bit = 0; bit < n_sel; ++bit, ++w) {
      mux.set_input(mux_nl_.sel[bit],
                    word(pin_words_[w],
                         static_cast<std::uint32_t>(lane_prev_sel_) >> bit & 1u));
    }
  };
  drive_mux(/*shifted=*/true);
  mux.eval_unaccounted();
  drive_mux(/*shifted=*/false);
  mux.reset_accounting();
  mux.eval();
  for (unsigned j = 0; j < lanes; ++j) {
    mux_series_.gate.push_back(mux.lane_energy(j));
  }
  for (unsigned m = 0; m < n_masters; ++m) {
    lane_prev_addr_[m] = pend_addr_[(lanes - 1) * n_masters + m];
  }
  lane_prev_sel_ = pend_sel_[lanes - 1];

  // --- arbiter ----------------------------------------------------------
  // Sequential, but its post-tick state is a function of the last
  // request vector alone (see characterize_arbiter), so one warm-up tick
  // with the shifted request words puts every lane into its
  // predecessor's post-tick state; the accounted tick then reproduces
  // the per-cycle scalar energies exactly.
  gate::BitSim& arb = *arb_bsim_;
  gather_pins(lanes, [&](unsigned j) { return pend_req_[j]; }, tmp);
  const auto drive_arb = [&](bool shifted) {
    for (unsigned m = 0; m < n_masters; ++m) {
      arb.set_input(arb_nl_.req[m],
                    shifted ? tmp[m] << 1 | (lane_prev_req_ >> m & 1u) : tmp[m]);
    }
  };
  drive_arb(/*shifted=*/true);
  arb.tick();
  drive_arb(/*shifted=*/false);
  arb.reset_accounting();
  arb.tick();
  for (unsigned j = 0; j < lanes; ++j) {
    arb_series_.gate.push_back(arb.lane_energy(j));
  }
  lane_prev_req_ = pend_req_[lanes - 1];

  pend_addr_.clear();
  pend_sel_.clear();
  pend_req_.clear();
}

void GateLevelCrossCheck::on_cycle() {
  ++cycles_;
  const ahb::BusSignals& b = bus_.bus();
  const unsigned n_masters = bus_.n_masters();

  // --- address-path mux ---------------------------------------------------
  // Drive the gate mux with every master's live HADDR and the arbiter's
  // HMASTER as select; its output equals the bus address.
  const bool batched = engine_ == Engine::kBatched;
  unsigned hd_in = 0;
  const std::uint8_t hm = b.hmaster.read();
  for (unsigned m = 0; m < n_masters; ++m) {
    const std::uint32_t a = bus_.m2s().input(m).haddr.read();
    if (m == hm) hd_in = hamming(prev_master_addr_[m], a);
    prev_master_addr_[m] = a;
    if (batched) {
      pend_addr_.push_back(a);
    } else {
      for (unsigned bit = 0; bit < 32; ++bit) {
        mux_sim_.set_input(mux_nl_.data[m][bit], (a >> bit & 1u) != 0);
      }
    }
  }
  double gate_mux_e = 0.0;
  if (!batched) {
    for (unsigned bit = 0; bit < mux_nl_.sel.size(); ++bit) {
      mux_sim_.set_input(mux_nl_.sel[bit], (hm >> bit & 1u) != 0);
    }
    mux_sim_.reset_accounting();
    mux_sim_.eval();
    gate_mux_e = mux_sim_.energy();
  }

  const std::uint32_t addr_out = b.haddr.read();
  const unsigned hd_out = hamming(prev_addr_out_, addr_out);
  const unsigned hd_sel = hm != prev_hmaster_ ? 2u : 0u;
  prev_addr_out_ = addr_out;
  prev_hmaster_ = hm;
  mux_series_.model.push_back(mux_model_.energy(hd_in, hd_sel, hd_out));
  if (!batched) mux_series_.gate.push_back(gate_mux_e);

  // --- arbiter -------------------------------------------------------------
  const std::uint32_t req = bus_.arbiter().request_vector();
  if (!batched) {
    for (unsigned m = 0; m < n_masters; ++m) {
      arb_sim_.set_input(arb_nl_.req[m], (req >> m & 1u) != 0);
    }
    arb_sim_.reset_accounting();
    arb_sim_.tick();
  }

  const bool handover = hd_sel != 0;
  arb_series_.model.push_back(arb_model_.energy(hamming(prev_req_, req), handover));
  if (batched) {
    pend_sel_.push_back(hm);
    pend_req_.push_back(req);
    if (pend_sel_.size() == gate::BitSim::kLanes) flush_batch();
  } else {
    arb_series_.gate.push_back(arb_sim_.energy());
  }
  prev_req_ = req;
}

}  // namespace ahbp::power
