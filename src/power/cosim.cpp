#include "power/cosim.hpp"

#include <cmath>

#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::power {

using sim::SimError;

// ---------------------------------------------------------------------------
// CosimSeries

double CosimSeries::model_total() const {
  double s = 0.0;
  for (double v : model) s += v;
  return s;
}

double CosimSeries::gate_total() const {
  double s = 0.0;
  for (double v : gate) s += v;
  return s;
}

double CosimSeries::correlation() const {
  const std::size_t n = model.size();
  if (n < 2 || gate.size() != n) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += model[i];
    my += gate[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = model[i] - mx;
    const double dy = gate[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double CosimSeries::totals_ratio() const {
  const double g = gate_total();
  return g > 0 ? model_total() / g : 0.0;
}

// ---------------------------------------------------------------------------
// GateLevelCrossCheck

GateLevelCrossCheck::GateLevelCrossCheck(sim::Module* parent, std::string name,
                                         ahb::AhbBus& bus)
    : GateLevelCrossCheck(parent, std::move(name), bus,
                          gate::Technology::default_2003()) {}

GateLevelCrossCheck::GateLevelCrossCheck(sim::Module* parent, std::string name,
                                         ahb::AhbBus& bus, gate::Technology tech)
    : Module(parent, std::move(name)),
      bus_(bus),
      tech_(tech),
      mux_nl_(gate::build_mux(32, std::max(2u, bus.n_masters()))),
      mux_sim_(mux_nl_.nl, tech),
      mux_model_(32, std::max(2u, bus.n_masters()), tech),
      prev_master_addr_(bus.n_masters(), 0),
      arb_nl_(gate::build_priority_arbiter(std::max(2u, bus.n_masters()))),
      arb_sim_(arb_nl_.nl, tech),
      arb_model_(std::max(2u, bus.n_masters()), tech),
      proc_(this, "cosim", [this] { on_cycle(); }) {
  if (!bus.finalized()) {
    throw SimError("GateLevelCrossCheck: bus must be finalized first");
  }
  proc_.sensitive(bus.clock().negedge_event()).dont_initialize();
}

void GateLevelCrossCheck::on_cycle() {
  ++cycles_;
  const ahb::BusSignals& b = bus_.bus();
  const unsigned n_masters = bus_.n_masters();

  // --- address-path mux ---------------------------------------------------
  // Drive the gate mux with every master's live HADDR and the arbiter's
  // HMASTER as select; its output equals the bus address.
  unsigned hd_in = 0;
  const std::uint8_t hm = b.hmaster.read();
  for (unsigned m = 0; m < n_masters; ++m) {
    const std::uint32_t a = bus_.m2s().input(m).haddr.read();
    if (m == hm) hd_in = hamming(prev_master_addr_[m], a);
    prev_master_addr_[m] = a;
    for (unsigned bit = 0; bit < 32; ++bit) {
      mux_sim_.set_input(mux_nl_.data[m][bit], (a >> bit & 1u) != 0);
    }
  }
  for (unsigned bit = 0; bit < mux_nl_.sel.size(); ++bit) {
    mux_sim_.set_input(mux_nl_.sel[bit], (hm >> bit & 1u) != 0);
  }
  mux_sim_.reset_accounting();
  mux_sim_.eval();
  const double gate_mux_e = mux_sim_.energy();

  const std::uint32_t addr_out = b.haddr.read();
  const unsigned hd_out = hamming(prev_addr_out_, addr_out);
  const unsigned hd_sel = hm != prev_hmaster_ ? 2u : 0u;
  prev_addr_out_ = addr_out;
  prev_hmaster_ = hm;
  mux_series_.model.push_back(mux_model_.energy(hd_in, hd_sel, hd_out));
  mux_series_.gate.push_back(gate_mux_e);

  // --- arbiter -------------------------------------------------------------
  const std::uint32_t req = bus_.arbiter().request_vector();
  for (unsigned m = 0; m < n_masters; ++m) {
    arb_sim_.set_input(arb_nl_.req[m], (req >> m & 1u) != 0);
  }
  arb_sim_.reset_accounting();
  arb_sim_.tick();
  const double gate_arb_e = arb_sim_.energy();

  const bool handover = hd_sel != 0;
  arb_series_.model.push_back(arb_model_.energy(hamming(prev_req_, req), handover));
  arb_series_.gate.push_back(gate_arb_e);
  prev_req_ = req;
}

}  // namespace ahbp::power
