#pragma once
// Transaction-scoped power attribution.
//
// TransactionTracer observes the same settled per-cycle bus view the
// power FSM consumes and reconstructs every transfer as a span: which
// master owned it, which slave it addressed, how long it waited for the
// grant, how many beats / wait states / BUSY cycles it took, and what
// RETRY / SPLIT / ERROR rework it suffered. EnergyAttributor splits the
// FSM's per-cycle block energies across the live transaction(s) owning
// that cycle -- each block is assigned wholly to exactly one owner, so
// the attributed per-master totals plus the synthetic "bus" owner's
// idle/handover share reproduce PowerFsm::total_energy() within
// floating-point reassociation (checked to 1e-9 by the tests and by
// tools/telemetry_validate on the exported stream).
//
// Ownership rules per cycle (documented in docs/OBSERVABILITY.md):
//   dec, m2s -> address-phase transaction, else data-phase transaction,
//               else bus
//   arb      -> address-phase transaction, else bus
//   s2m      -> data-phase transaction, else bus
// A re-issued transfer after RETRY appears as a new transaction; the
// RETRY response is counted on the transaction that received it.

#include <array>
#include <cstdint>
#include <vector>

#include "power/power_fsm.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/txn_trace.hpp"

namespace ahbp::power {

/// Accumulates attributed energy per master, per slave, and for the
/// synthetic bus owner. Conservation: masters_total() + bus_energy()
/// equals the sum of everything credited.
class EnergyAttributor {
public:
  EnergyAttributor(unsigned n_masters, unsigned n_slaves);

  void credit_master(unsigned m, double e);
  void credit_slave(unsigned s, double e);
  void credit_bus(double e) { bus_energy_ += e; }

  [[nodiscard]] const std::vector<double>& master_energy() const {
    return master_energy_;
  }
  [[nodiscard]] const std::vector<double>& slave_energy() const {
    return slave_energy_;
  }
  [[nodiscard]] double bus_energy() const { return bus_energy_; }
  [[nodiscard]] double masters_total() const;

  void reset();

private:
  std::vector<double> master_energy_;
  std::vector<double> slave_energy_;
  double bus_energy_ = 0.0;
};

/// Reconstructs transactions from per-cycle bus views and attributes
/// per-cycle block energies to them. Feed on_cycle() once per sampled
/// cycle (AhbPowerEstimator does this when Config::txn_trace is set);
/// call flush() after the run to close in-flight transactions.
class TransactionTracer {
public:
  struct Config {
    unsigned n_masters = 0;
    unsigned n_slaves = 0;
    /// Optional metrics sink (not owned; must outlive the tracer).
    /// flush() publishes per-master/per-slave totals; completed
    /// transactions feed the latency histograms live.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  explicit TransactionTracer(Config cfg);

  /// Observes one settled cycle and its per-block energies.
  void on_cycle(const CycleView& v, const BlockEnergy& e);

  /// Closes in-flight transactions (end = last seen cycle + 1) and
  /// publishes summary metrics (once). Idempotent per run.
  void flush();

  /// Runtime bypass: when disabled, on_cycle returns immediately (the
  /// bench_overhead --txn-guard contract: < 3% overhead).
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// @name Results
  ///@{
  [[nodiscard]] const telemetry::TxnTraceLog& log() const { return log_; }
  [[nodiscard]] const EnergyAttributor& attribution() const { return attr_; }
  /// Per-master transaction counts (index = master).
  [[nodiscard]] const std::vector<std::uint64_t>& master_txns() const {
    return master_txns_;
  }
  /// Chrome-trace spans on per-master tracks (telemetry::txn_track_tid).
  [[nodiscard]] const telemetry::TraceEventLog& spans() const { return spans_; }
  /// Attribution totals + per-transaction stream header for the JSON
  /// exporter; total_energy_j is the caller's FSM total.
  [[nodiscard]] telemetry::TxnSummary summary(double total_energy_j) const;
  [[nodiscard]] std::uint64_t cycles() const { return cycle_; }
  ///@}

  [[nodiscard]] const Config& config() const { return cfg_; }

private:
  static constexpr int kNone = -1;
  static constexpr std::int64_t kNoTick = -1;

  struct OpenTxn {
    telemetry::TxnRecord rec;
    bool live = false;
  };

  [[nodiscard]] int start_txn(const CycleView& v, std::uint64_t cycle);
  void close_txn(int slot, std::uint64_t end_tick);
  /// Credits `e` joules to the open transaction in `slot`, or to the
  /// synthetic bus owner when slot is kNone.
  void assign(double e, int slot);

  Config cfg_;
  bool enabled_ = true;
  bool flushed_ = false;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_id_ = 0;
  bool prev_hready_ = true;

  /// First cycle each master has been continuously requesting while not
  /// owning the address phase (kNoTick = not waiting).
  std::vector<std::int64_t> req_since_;

  /// Open-transaction slots: at most two are live at once (one in the
  /// address phase, one draining its data phase).
  std::array<OpenTxn, 2> open_{};
  int addr_open_ = kNone;
  int data_open_ = kNone;

  telemetry::TxnTraceLog log_;
  telemetry::TraceEventLog spans_;
  EnergyAttributor attr_;
  std::vector<std::uint64_t> master_txns_;

  telemetry::Histogram* h_arb_ = nullptr;
  telemetry::Histogram* h_wait_ = nullptr;
  telemetry::Counter* c_txns_ = nullptr;
};

}  // namespace ahbp::power
