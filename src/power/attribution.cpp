#include "power/attribution.hpp"

#include <algorithm>

#include "ahb/types.hpp"

namespace ahbp::power {

// ---------------------------------------------------------------------------
// EnergyAttributor

EnergyAttributor::EnergyAttributor(unsigned n_masters, unsigned n_slaves)
    : master_energy_(n_masters, 0.0), slave_energy_(n_slaves, 0.0) {}

void EnergyAttributor::credit_master(unsigned m, double e) {
  if (m < master_energy_.size()) {
    master_energy_[m] += e;
  } else {
    bus_energy_ += e;  // out-of-range owner: keep the sum conserved
  }
}

void EnergyAttributor::credit_slave(unsigned s, double e) {
  // Slave credit is a secondary view (the same joules already credited
  // to a master); out-of-range simply drops out of the per-slave table.
  if (s < slave_energy_.size()) slave_energy_[s] += e;
}

double EnergyAttributor::masters_total() const {
  double t = 0.0;
  for (const double e : master_energy_) t += e;
  return t;
}

void EnergyAttributor::reset() {
  std::fill(master_energy_.begin(), master_energy_.end(), 0.0);
  std::fill(slave_energy_.begin(), slave_energy_.end(), 0.0);
  bus_energy_ = 0.0;
}

// ---------------------------------------------------------------------------
// TransactionTracer

TransactionTracer::TransactionTracer(Config cfg)
    : cfg_(cfg),
      req_since_(cfg.n_masters, kNoTick),
      attr_(cfg.n_masters, cfg.n_slaves),
      master_txns_(cfg.n_masters, 0) {
  if (cfg_.metrics != nullptr) {
    h_arb_ = &cfg_.metrics->histogram("ahb.txn.arb_latency_cycles",
                                      {0, 1, 2, 5, 10, 20, 50, 100});
    h_wait_ = &cfg_.metrics->histogram("ahb.txn.wait_cycles",
                                       {0, 1, 2, 5, 10, 20, 50, 100});
    c_txns_ = &cfg_.metrics->counter("ahb.txn.count");
  }
}

int TransactionTracer::start_txn(const CycleView& v, std::uint64_t cycle) {
  int slot = kNone;
  for (int i = 0; i < 2; ++i) {
    if (!open_[static_cast<std::size_t>(i)].live) {
      slot = i;
      break;
    }
  }
  if (slot == kNone) {
    // Both slots live: the non-data one is a stale address-phase
    // transaction that never reached its data phase -- close it.
    slot = (data_open_ == 0) ? 1 : 0;
    if (addr_open_ == slot) addr_open_ = kNone;
    close_txn(slot, cycle);
  }

  OpenTxn& o = open_[static_cast<std::size_t>(slot)];
  o.rec = telemetry::TxnRecord{};
  o.rec.id = next_id_++;
  o.rec.master = v.hmaster;
  o.rec.slave = 0xFF;
  o.rec.kind = ahb::to_string(static_cast<ahb::Burst>(v.hburst & 7));
  o.rec.write = v.hwrite;
  o.rec.start_tick = cycle;
  if (v.hmaster < req_since_.size() &&
      req_since_[v.hmaster] != kNoTick &&
      static_cast<std::uint64_t>(req_since_[v.hmaster]) <= cycle) {
    o.rec.req_tick = static_cast<std::uint64_t>(req_since_[v.hmaster]);
    o.rec.arb_cycles = cycle - o.rec.req_tick;
    req_since_[v.hmaster] = kNoTick;
  } else {
    o.rec.req_tick = cycle;
    o.rec.arb_cycles = 0;
  }
  o.live = true;
  return slot;
}

void TransactionTracer::close_txn(int slot, std::uint64_t end_tick) {
  OpenTxn& o = open_[static_cast<std::size_t>(slot)];
  if (!o.live) return;
  o.rec.end_tick = std::max(end_tick, o.rec.start_tick + 1);
  if (o.rec.slave != 0xFF) attr_.credit_slave(o.rec.slave, o.rec.energy_j);
  if (o.rec.master < master_txns_.size()) ++master_txns_[o.rec.master];
  if (c_txns_ != nullptr) c_txns_->increment();
  if (h_arb_ != nullptr) {
    h_arb_->observe(static_cast<double>(o.rec.arb_cycles));
  }
  if (h_wait_ != nullptr) {
    h_wait_->observe(static_cast<double>(o.rec.wait_cycles));
  }
  telemetry::append_txn_spans(spans_, o.rec);
  log_.add(std::move(o.rec));
  o.live = false;
}

void TransactionTracer::assign(double e, int slot) {
  if (slot != kNone) {
    OpenTxn& o = open_[static_cast<std::size_t>(slot)];
    o.rec.energy_j += e;
    attr_.credit_master(o.rec.master, e);
  } else {
    attr_.credit_bus(e);
  }
}

void TransactionTracer::on_cycle(const CycleView& v, const BlockEnergy& e) {
  if (!enabled_) return;
  const std::uint64_t cycle = cycle_++;
  const auto t = static_cast<ahb::Trans>(v.htrans & 3);

  // --- arbitration wait tracking ----------------------------------------
  // First cycle each non-owner has been continuously requesting; cleared
  // when the request drops, consumed when its transfer starts.
  for (unsigned m = 0; m < cfg_.n_masters; ++m) {
    const bool requesting = ((v.req_vector >> m) & 1u) != 0;
    if (!requesting) {
      req_since_[m] = kNoTick;
    } else if (m != v.hmaster && req_since_[m] == kNoTick) {
      req_since_[m] = static_cast<std::int64_t>(cycle);
    }
  }

  // --- transaction start / burst continuation ---------------------------
  const bool held = !prev_hready_;  // addr phase did not advance into here
  if (t == ahb::Trans::kNonSeq) {
    // A NONSEQ held across wait states is the same beat; anything else
    // opens a new transaction (including a RETRY/SPLIT re-issue).
    const bool same_held_beat =
        held && addr_open_ != kNone &&
        open_[static_cast<std::size_t>(addr_open_)].rec.master == v.hmaster;
    if (!same_held_beat) addr_open_ = start_txn(v, cycle);
  } else if ((t == ahb::Trans::kSeq || t == ahb::Trans::kBusy) &&
             addr_open_ == kNone && data_open_ != kNone &&
             open_[static_cast<std::size_t>(data_open_)].rec.master ==
                 v.hmaster) {
    // Burst continuation re-entering the address phase.
    addr_open_ = data_open_;
  }

  // --- phase ownership this cycle ---------------------------------------
  const int a_slot = (addr_open_ != kNone && t != ahb::Trans::kIdle)
                         ? addr_open_
                         : kNone;
  int d_slot = kNone;
  if (v.data_active) {
    if (data_open_ == kNone) {
      // Orphan data phase (tracer attached mid-transfer): synthesize a
      // record from the data-phase owner so the beat is still attributed.
      data_open_ = start_txn(v, cycle);
      OpenTxn& o = open_[static_cast<std::size_t>(data_open_)];
      o.rec.master = v.hmaster_data;
      o.rec.kind = "UNKNOWN";
      o.rec.write = v.data_write;
    }
    d_slot = data_open_;
  }

  // --- per-transaction cycle accounting ---------------------------------
  if (a_slot != kNone) {
    OpenTxn& a = open_[static_cast<std::size_t>(a_slot)];
    ++a.rec.addr_cycles;
    if (t == ahb::Trans::kBusy) ++a.rec.busy_cycles;
  }
  if (d_slot != kNone) {
    OpenTxn& d = open_[static_cast<std::size_t>(d_slot)];
    if (d.rec.slave == 0xFF && v.data_slave != 0xFF) d.rec.slave = v.data_slave;
    if (v.hready) {
      switch (static_cast<ahb::Resp>(v.hresp & 3)) {
        case ahb::Resp::kOkay: ++d.rec.data_beats; break;
        case ahb::Resp::kError: ++d.rec.errors; break;
        case ahb::Resp::kRetry: ++d.rec.retries; break;
        case ahb::Resp::kSplit: ++d.rec.splits; break;
      }
    } else {
      ++d.rec.wait_cycles;
    }
  }

  // --- block-wise energy attribution ------------------------------------
  // Each block's joules go wholly to one owner, so the per-cycle sum --
  // and therefore the run total -- is conserved exactly.
  assign(e.dec, a_slot != kNone ? a_slot : d_slot);
  assign(e.m2s, a_slot != kNone ? a_slot : d_slot);
  assign(e.arb, a_slot);
  assign(e.s2m, d_slot);

  // --- pipeline advance --------------------------------------------------
  if (v.hready) {
    const int next_data =
        (addr_open_ != kNone && ahb::is_active(t)) ? addr_open_ : kNone;
    if (data_open_ != kNone && data_open_ != next_data) {
      // BUSY inserts an empty data beat but the burst continues; any
      // other mismatch means the data-phase transaction just finished.
      const bool busy_hold =
          t == ahb::Trans::kBusy && addr_open_ == data_open_;
      if (!busy_hold) {
        if (addr_open_ == data_open_) addr_open_ = kNone;
        close_txn(data_open_, cycle + 1);
        data_open_ = kNone;
      }
    }
    if (next_data != kNone) data_open_ = next_data;
  }
  prev_hready_ = v.hready;
}

void TransactionTracer::flush() {
  if (flushed_) return;
  // Close in start order for a deterministic tail.
  std::array<int, 2> live{};
  int n = 0;
  for (int i = 0; i < 2; ++i) {
    if (open_[static_cast<std::size_t>(i)].live) live[static_cast<std::size_t>(n++)] = i;
  }
  if (n == 2 && open_[static_cast<std::size_t>(live[0])].rec.id >
                    open_[static_cast<std::size_t>(live[1])].rec.id) {
    std::swap(live[0], live[1]);
  }
  for (int i = 0; i < n; ++i) close_txn(live[static_cast<std::size_t>(i)], cycle_);
  addr_open_ = data_open_ = kNone;

  if (cfg_.metrics != nullptr) {
    telemetry::MetricsRegistry& reg = *cfg_.metrics;
    reg.gauge("ahb.txn.bus_energy_j").set(attr_.bus_energy());
    for (unsigned m = 0; m < cfg_.n_masters; ++m) {
      const std::string base = "ahb.txn.master." + std::to_string(m);
      reg.counter(base + ".count").add(master_txns_[m]);
      reg.gauge(base + ".energy_j").set(attr_.master_energy()[m]);
    }
    for (unsigned s = 0; s < cfg_.n_slaves; ++s) {
      reg.gauge("ahb.txn.slave." + std::to_string(s) + ".energy_j")
          .set(attr_.slave_energy()[s]);
    }
  }
  flushed_ = true;
}

telemetry::TxnSummary TransactionTracer::summary(double total_energy_j) const {
  telemetry::TxnSummary s;
  s.total_energy_j = total_energy_j;
  s.bus_energy_j = attr_.bus_energy();
  s.master_energy_j = attr_.master_energy();
  s.master_txns = master_txns_;
  s.slave_energy_j = attr_.slave_energy();
  return s;
}

}  // namespace ahbp::power
