#pragma once
// Dynamic power management (paper Sec. 4: the power-analysis code is
// normally excluded from synthesis "unless it is necessary to develop a
// dynamic power management for a run-time energy optimization of the
// system"). PowerGovernor is that hook made concrete: it watches the
// estimator's energy over fixed windows and asserts a throttle signal
// whenever the windowed bus power exceeds a budget. Cooperative masters
// (TrafficMaster with Config::throttle set) delay new tenures while the
// signal is high, closing the loop.

#include <cstdint>

#include "power/estimator.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"
#include "sim/signal.hpp"

namespace ahbp::power {

/// Watches windowed bus power and throttles cooperative masters.
class PowerGovernor : public sim::Module {
public:
  struct Config {
    double budget_watts = 1e-3;  ///< windowed average power ceiling
    unsigned window_cycles = 32; ///< averaging window length
  };

  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t over_budget_windows = 0;
    double peak_window_power = 0.0;  ///< [W]
    double mean_window_power = 0.0;  ///< [W], running mean
  };

  PowerGovernor(sim::Module* parent, std::string name, AhbPowerEstimator& est,
                Config cfg);

  /// High while the bus must back off. Hand this to the masters.
  [[nodiscard]] sim::Signal<bool>& throttle() { return throttle_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

private:
  void on_cycle();

  AhbPowerEstimator& est_;
  Config cfg_;
  Stats stats_;
  sim::Signal<bool> throttle_;
  double window_start_energy_ = 0.0;
  unsigned cycles_in_window_ = 0;
  double power_sum_ = 0.0;
  sim::Method proc_;
};

}  // namespace ahbp::power
