#pragma once
// Switching-activity bookkeeping -- the paper's `Activity` class.
//
// The instrumentation phase of the methodology (Sec. 5.3) adds "a
// specialized object class ... for the dynamic monitoring and the storage
// of the activity of the I/O signals of the different blocks", with
// methods bit_change_count() and store_activity(). ActivityChannel is
// that class for one signal; Activity groups named channels (the paper's
// "Masters signals activity storage / Slaves signals activity storage").

#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ahbp::power {

/// Hamming distance between two words: the number of toggling bits --
/// the central activity measure of the paper's macromodels. One
/// popcount instruction on any modern target (the old Kernighan loop
/// was O(toggles) of dependent ops).
[[nodiscard]] constexpr unsigned hamming(std::uint64_t a, std::uint64_t b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// Switching-activity accumulator for one observed signal.
///
/// Feed it the signal's value once per observation point (bus event /
/// clock cycle); it tracks the Hamming distance of consecutive values.
class ActivityChannel {
public:
  /// Records `value` as the next observation. Returns the Hamming
  /// distance to the previous observation (0 for the first).
  unsigned store_activity(std::uint64_t value);

  /// Total bits changed across all observations.
  [[nodiscard]] std::uint64_t bit_change_count() const { return bit_changes_; }
  /// Number of observations whose Hamming distance was non-zero (the
  /// empirical "signal changed" probability numerator, used by the
  /// analytic estimator for non-linear macromodel terms).
  [[nodiscard]] std::uint64_t nonzero_count() const { return nonzero_; }
  /// Hamming distance recorded by the most recent store_activity().
  [[nodiscard]] unsigned last_hd() const { return last_hd_; }
  /// Number of observations so far.
  [[nodiscard]] std::uint64_t sample_count() const { return samples_; }
  /// Mean Hamming distance per observation (0 if fewer than 2 samples).
  [[nodiscard]] double mean_hd() const;
  /// Previous observed value.
  [[nodiscard]] std::uint64_t last_value() const { return last_value_; }

  /// Overwrites the accumulated state wholesale. Used by
  /// PackedActivity::export_to() to materialize a map-of-channels view
  /// from the SoA hot-path storage; not meant for instrumentation code.
  void restore(std::uint64_t last_value, unsigned last_hd,
               std::uint64_t bit_changes, std::uint64_t nonzero,
               std::uint64_t samples);

  void reset();

private:
  std::uint64_t last_value_ = 0;
  bool has_value_ = false;
  unsigned last_hd_ = 0;
  std::uint64_t bit_changes_ = 0;
  std::uint64_t nonzero_ = 0;
  std::uint64_t samples_ = 0;
};

/// A named group of activity channels -- one per monitored bus signal.
///
/// Storage is an unordered_map for O(1) find(); per the standard,
/// unordered_map references and pointers stay valid across inserts
/// (only erase/clear invalidate), so monitors may cache the
/// ActivityChannel* returned by channel() at construction time and hit
/// it every sampled cycle without a string lookup -- the pattern
/// PowerFsm::bind_channels() and ApbPowerMonitor use. Iteration order
/// is unspecified; report formatters sort names before rendering.
class Activity {
public:
  /// Channel accessor; creates the channel on first use. The returned
  /// reference is stable for the channel's lifetime (until reset()).
  [[nodiscard]] ActivityChannel& channel(const std::string& name);
  [[nodiscard]] const ActivityChannel* find(const std::string& name) const;

  /// Sum of bit_change_count() over all channels.
  [[nodiscard]] std::uint64_t bit_change_count() const;

  [[nodiscard]] const std::unordered_map<std::string, ActivityChannel>& channels()
      const {
    return channels_;
  }

  /// Drops every channel. Invalidates all cached ActivityChannel
  /// pointers -- callers holding handles must re-bind afterwards.
  void reset();

private:
  std::unordered_map<std::string, ActivityChannel> channels_;
};

/// Structure-of-arrays activity capture for a fixed channel set -- the
/// cycle-kernel hot path behind PowerFsm (and, through it, the energy
/// attribution pipeline).
///
/// Where Activity scatters each channel's state across unordered_map
/// nodes, PackedActivity keeps the previous values and all counters in
/// contiguous arrays, so the per-cycle capture is one tight loop of
/// XOR + popcount over packed signal words -- no pointer chasing, no
/// per-channel Kernighan loops. The channel set is fixed at
/// construction; store_all() observes every channel exactly once per
/// cycle, which is precisely the sampling discipline PowerFsm::step()
/// follows.
///
/// For reporting, export_to() materializes a plain Activity with
/// identical per-channel statistics, so the map-based view (reports,
/// analytic estimator) is unchanged.
class PackedActivity {
public:
  explicit PackedActivity(std::vector<std::string> names);

  /// Observes one value per channel (vals[i] -> channel i) and writes
  /// each channel's Hamming distance to hd_out[i]. First observation
  /// yields 0 for every channel, like ActivityChannel.
  void store_all(const std::uint64_t* vals, unsigned* hd_out);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const { return names_[i]; }
  [[nodiscard]] std::uint64_t bit_change_count(std::size_t i) const {
    return bit_changes_[i];
  }
  /// Sum over all channels.
  [[nodiscard]] std::uint64_t bit_change_count() const;
  [[nodiscard]] std::uint64_t nonzero_count(std::size_t i) const {
    return nonzero_[i];
  }
  [[nodiscard]] std::uint64_t sample_count() const { return samples_; }
  [[nodiscard]] std::uint64_t last_value(std::size_t i) const {
    return last_value_[i];
  }
  [[nodiscard]] unsigned last_hd(std::size_t i) const { return last_hd_[i]; }

  /// Copies every channel's statistics into `out` (channels created on
  /// demand; existing unrelated channels are left alone).
  void export_to(Activity& out) const;

  void reset();

private:
  std::vector<std::string> names_;
  std::vector<std::uint64_t> last_value_;
  std::vector<std::uint64_t> bit_changes_;
  std::vector<std::uint64_t> nonzero_;
  std::vector<unsigned> last_hd_;
  std::uint64_t samples_ = 0;  ///< observations per channel (lock-stepped)
  bool has_value_ = false;
};

}  // namespace ahbp::power
