#pragma once
// Umbrella header for ahbp::power -- the paper's system-level power
// analysis methodology.
//
//   Activity, ActivityChannel      -- switching-activity instrumentation
//   DecoderModel, MuxModel,
//   ArbiterFsmModel, LinearModel   -- sub-block energy macromodels
//   PowerFsm                       -- instruction-level power FSM
//   AhbPowerEstimator              -- "local" integration style (main API)
//   PrivatePowerModel              -- "private" per-block style
//   GlobalPowerAnalyzer + probe    -- "global" analyzer-module style
//   PowerTrace                     -- power-vs-time windows (Figs 3-5)
//   TransactionTracer,
//   EnergyAttributor               -- per-transaction energy attribution
//   report.hpp                     -- Table 1 / Fig 6 rendering
//
// Streaming observability (cycle-windowed series, trace events, metric
// counters) lives in ahbp::telemetry and hooks in through
// AhbPowerEstimator::Config -- see docs/OBSERVABILITY.md.

#include "power/activity.hpp"
#include "power/analytic.hpp"
#include "power/attribution.hpp"
#include "power/cosim.hpp"
#include "power/estimator.hpp"
#include "power/governor.hpp"
#include "power/macromodel.hpp"
#include "power/power_fsm.hpp"
#include "power/report.hpp"
#include "power/styles.hpp"
#include "power/system.hpp"
#include "power/trace.hpp"
