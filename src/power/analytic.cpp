#include "power/analytic.hpp"

#include <cmath>

#include "gate/synth.hpp"

namespace ahbp::power {

AnalyticPowerModel::AnalyticPowerModel(PowerFsm::Config cfg)
    : cfg_(cfg),
      dec_(cfg.n_slaves, cfg.tech),
      m2s_(cfg.addr_width + cfg.control_width + cfg.data_width, cfg.n_masters,
           cfg.tech),
      s2m_(cfg.data_width + 3, cfg.n_slaves, cfg.tech),
      arb_(cfg.n_masters, cfg.tech) {}

BlockEnergy AnalyticPowerModel::blocks_per_cycle(const WorkloadStats& s) const {
  BlockEnergy e;
  // Decoder: E = vdd^2/4 * (nO nI Cpd * HD + 2 Cout * [HD >= 1]); both
  // terms separate under expectation. dec_.energy(1) - dec_.energy(0)
  // isolates the per-HD slope plus the indicator; reconstruct explicitly:
  const double slope = dec_.energy(2) - dec_.energy(1);        // per extra HD bit
  const double indicator = dec_.energy(1) - slope;             // the 2*C_O term
  e.dec = slope * s.hd_addr + indicator * s.p_addr_change;

  // Muxes: fully linear in their features.
  const double m2s_unit_in = m2s_.energy(1, 0, 0);
  const double m2s_unit_sel = m2s_.energy(0, 1, 0);
  const double m2s_unit_out = m2s_.energy(0, 0, 1);
  const double m2s_in = s.hd_addr + s.hd_ctl + s.hd_wdata;
  e.m2s = m2s_unit_in * m2s_in + m2s_unit_sel * s.hd_grant + m2s_unit_out * m2s_in;

  const double s2m_unit_in = s2m_.energy(1, 0, 0);
  const double s2m_unit_sel = s2m_.energy(0, 1, 0);
  const double s2m_unit_out = s2m_.energy(0, 0, 1);
  const double s2m_in = s.hd_rdata + s.hd_resp;
  e.s2m = s2m_unit_in * s2m_in + s2m_unit_sel * s.hd_dslave + s2m_unit_out * s2m_in;

  // Arbiter: e_idle + e_req * HD_req + e_grant * P[handover].
  e.arb = arb_.idle_energy() + arb_.request_energy() * s.hd_req +
          arb_.handover_energy() * s.p_handover;
  return e;
}

double AnalyticPowerModel::energy_per_cycle(const WorkloadStats& s) const {
  return blocks_per_cycle(s).total();
}

namespace {
double mean_of(const Activity& a, const char* name, std::uint64_t cycles) {
  const ActivityChannel* ch = a.find(name);
  if (ch == nullptr || cycles == 0) return 0.0;
  return static_cast<double>(ch->bit_change_count()) / static_cast<double>(cycles);
}
double p_nonzero(const Activity& a, const char* name, std::uint64_t cycles) {
  const ActivityChannel* ch = a.find(name);
  if (ch == nullptr || cycles == 0) return 0.0;
  return static_cast<double>(ch->nonzero_count()) / static_cast<double>(cycles);
}
}  // namespace

WorkloadStats AnalyticPowerModel::from_activity(const Activity& a,
                                                std::uint64_t cycles,
                                                double p_handover) {
  WorkloadStats s;
  s.hd_addr = mean_of(a, "haddr", cycles);
  s.hd_ctl = mean_of(a, "hcontrol", cycles);
  s.hd_wdata = mean_of(a, "hwdata", cycles);
  s.hd_rdata = mean_of(a, "hrdata", cycles);
  s.hd_resp = mean_of(a, "hresp", cycles);
  s.hd_req = mean_of(a, "hbusreq", cycles);
  s.hd_grant = mean_of(a, "hgrant", cycles);
  // One-hot select: 2 toggling lines per selection change (matches the
  // FSM's indicator treatment of the data-slave channel).
  s.hd_dslave = 2.0 * p_nonzero(a, "data_slave", cycles);
  s.p_addr_change = p_nonzero(a, "haddr", cycles);
  s.p_handover = p_handover;
  return s;
}

WorkloadStats AnalyticPowerModel::assume_random_traffic(double transfer_fraction,
                                                        double write_fraction,
                                                        std::uint32_t addr_window,
                                                        unsigned data_width) {
  // Uniform random word in a 2^k window: expected HD between consecutive
  // addresses is k/2 over the varying bits; payloads flip width/2 bits.
  WorkloadStats s;
  const double addr_bits = std::log2(std::max<std::uint32_t>(addr_window / 4, 2));
  s.hd_addr = transfer_fraction * addr_bits / 2.0;
  s.p_addr_change = transfer_fraction;
  s.hd_ctl = transfer_fraction * 1.0;  // NONSEQ/IDLE + hwrite toggling
  s.hd_wdata = transfer_fraction * write_fraction * data_width / 2.0;
  s.hd_rdata = transfer_fraction * (1.0 - write_fraction) * data_width / 2.0;
  s.hd_resp = transfer_fraction * 0.1;
  s.hd_req = 0.02;
  s.hd_grant = 0.02;
  s.hd_dslave = transfer_fraction * 0.5;
  s.p_handover = 0.01;
  return s;
}

}  // namespace ahbp::power
