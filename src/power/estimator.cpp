#include "power/estimator.hpp"

#include "sim/report.hpp"

namespace ahbp::power {

using sim::SimError;

AhbPowerEstimator::AhbPowerEstimator(sim::Module* parent, std::string name,
                                     ahb::AhbBus& bus)
    : AhbPowerEstimator(parent, std::move(name), bus, Config{}) {}

AhbPowerEstimator::AhbPowerEstimator(sim::Module* parent, std::string name,
                                     ahb::AhbBus& bus, Config cfg)
    : Module(parent, std::move(name)),
      bus_(bus),
      cfg_(cfg),
      fsm_(PowerFsm::Config{.n_masters = bus.n_masters(),
                            .n_slaves = bus.n_slaves(),
                            .data_width = 32,
                            .addr_width = 32,
                            .control_width = 8,
                            .tech = cfg.tech}),
      proc_(this, "sample", [this] { on_cycle(); }) {
  if (!bus.finalized()) {
    throw SimError("AhbPowerEstimator: bus must be finalized first");
  }
  if (cfg_.trace_window > sim::SimTime::zero()) {
    trace_ = std::make_unique<PowerTrace>(cfg_.trace_window);
  }
  if (cfg_.telemetry_window_cycles > 0) {
    windows_ = std::make_unique<telemetry::WindowSeries>(
        telemetry::WindowSeries::Config{
            .window_ticks = cfg_.telemetry_window_cycles,
            .tracks = {"arb", "dec", "m2s", "s2m"}});
    events_ = std::make_unique<telemetry::TraceEventLog>();
  }
  if (cfg_.txn_trace) {
    txn_ = std::make_unique<TransactionTracer>(
        TransactionTracer::Config{.n_masters = bus.n_masters(),
                                  .n_slaves = bus.n_slaves(),
                                  .metrics = cfg_.metrics});
  }
  if (cfg_.metrics != nullptr) {
    c_cycles_ = &cfg_.metrics->counter("ahb.power.sampled_cycles");
    h_cycle_energy_ = &cfg_.metrics->histogram(
        "ahb.power.cycle_energy_pj", {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0});
  }
  // Sample at the falling edge: every value driven at the rising edge has
  // settled by mid-cycle, so one sample sees the whole cycle's state.
  proc_.sensitive(bus.clock().negedge_event()).dont_initialize();
}

CycleView AhbPowerEstimator::sample_view() const {
  const ahb::BusSignals& b = bus_.bus();
  CycleView v;
  v.haddr = b.haddr.read();
  v.htrans = b.htrans.read();
  v.hwrite = b.hwrite.read();
  v.hsize = b.hsize.read();
  v.hburst = b.hburst.read();
  v.hwdata = b.hwdata.read();
  v.hrdata = b.hrdata.read();
  v.hready = b.hready.read();
  v.hresp = b.hresp.read();
  v.hmaster = b.hmaster.read();
  v.hmaster_data = b.hmaster_data.read();
  v.data_slave = bus_.pipeline().data_phase_slave().read();
  v.data_active = bus_.pipeline().data_phase_active().read();
  v.data_write = bus_.pipeline().data_phase_write().read();
  // Request and grant vectors, assembled from the arbiter's attachments.
  for (unsigned m = 0; m < bus_.n_masters(); ++m) {
    if (bus_.hgrant(m).read()) v.grant_vector |= 1u << m;
  }
  v.req_vector = bus_.arbiter().request_vector();
  v.split_vector = bus_.arbiter().split_mask();
  return v;
}

void AhbPowerEstimator::on_cycle() {
  if (!cfg_.enabled) return;
  const CycleView v = sample_view();
  const PowerFsm::StepResult r = fsm_.step(v);
  if (txn_) txn_->on_cycle(v, r.blocks);
  if (trace_) trace_->record(kernel().now(), r.blocks);
  if (windows_) {
    const std::uint64_t cycle = fsm_.cycles() - 1;
    windows_->record(cycle, {r.blocks.arb, r.blocks.dec, r.blocks.m2s,
                             r.blocks.s2m});
    if (!run_open_) {
      run_mode_ = r.mode;
      run_start_ = cycle;
      run_open_ = true;
    } else if (r.mode != run_mode_) {
      events_->add_complete(to_string(run_mode_), "bus", run_start_,
                            cycle - run_start_);
      run_mode_ = r.mode;
      run_start_ = cycle;
    }
  }
  if (c_cycles_ != nullptr) {
    c_cycles_->increment();
    h_cycle_energy_->observe(r.blocks.total() * 1e12);
  }
}

void AhbPowerEstimator::flush_trace() {
  if (trace_) trace_->flush();
}

void AhbPowerEstimator::flush_telemetry() {
  flush_trace();
  if (windows_) {
    if (run_open_) {
      events_->add_complete(to_string(run_mode_), "bus", run_start_,
                            fsm_.cycles() - run_start_);
      run_open_ = false;
    }
    windows_->flush();
  }
  if (txn_) txn_->flush();
  if (cfg_.metrics != nullptr && !metrics_published_) {
    fsm_.publish_metrics(*cfg_.metrics);
    metrics_published_ = true;
  }
}

sim::Clock& AhbPowerEstimator::bus_clock() const { return bus_.clock(); }

}  // namespace ahbp::power
