#pragma once
// The power finite-state machine (Sec. 5.4 of the paper).
//
// Bus activity is abstracted into four modes -- IDLE, IDLE with bus
// handover (IDLE_HO), READ and WRITE -- and the *instruction set* is the
// set of permissible transitions between them (IDLE_WRITE, WRITE_READ,
// IDLE_HO_IDLE_HO, ...). Every simulated bus cycle executes exactly one
// instruction; its energy is computed by composing the sub-block
// macromodels with the cycle's observed switching activity, and
// accumulated per instruction -- which yields the paper's Table 1.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gate/tech.hpp"
#include "power/activity.hpp"
#include "power/macromodel.hpp"
#include "telemetry/metrics.hpp"

namespace ahbp::power {

/// The four activity modes of the AHB power FSM.
enum class BusMode : std::uint8_t { kIdle, kIdleHo, kRead, kWrite };

[[nodiscard]] const char* to_string(BusMode m);
/// Instruction name in the paper's style, e.g. "WRITE_READ",
/// "IDLE_HO_IDLE_HO". The 16 possible names are interned once in a
/// static table; the view is valid for the program's lifetime.
[[nodiscard]] std::string_view instruction_view(BusMode from, BusMode to);
/// Owning copy of instruction_view() for callers that need a string.
[[nodiscard]] std::string instruction_name(BusMode from, BusMode to);

/// Per-sub-block energy amounts [J] (the paper's Fig. 6 quantities).
struct BlockEnergy {
  double arb = 0.0;  ///< arbiter
  double dec = 0.0;  ///< address decoder
  double m2s = 0.0;  ///< masters-to-slaves data/control mux
  double s2m = 0.0;  ///< slaves-to-masters data/control mux

  [[nodiscard]] double total() const { return arb + dec + m2s + s2m; }
  BlockEnergy& operator+=(const BlockEnergy& o) {
    arb += o.arb;
    dec += o.dec;
    m2s += o.m2s;
    s2m += o.s2m;
    return *this;
  }
};

/// One cycle's settled bus values, as sampled by the instrumentation.
struct CycleView {
  std::uint32_t haddr = 0;
  std::uint8_t htrans = 0;
  bool hwrite = false;
  std::uint8_t hsize = 0;
  std::uint8_t hburst = 0;
  std::uint32_t hwdata = 0;
  std::uint32_t hrdata = 0;
  bool hready = true;
  std::uint8_t hresp = 0;
  std::uint8_t hmaster = 0;
  std::uint8_t hmaster_data = 0;  ///< data-phase bus owner
  std::uint8_t data_slave = 0xFF;
  bool data_active = false;
  bool data_write = false;
  std::uint32_t req_vector = 0;    ///< HBUSREQx, bit per master
  std::uint32_t grant_vector = 0;  ///< HGRANTx, bit per master
  /// Split-masked masters (arbiter HSPLITx mask, bit per master). A
  /// masked master's pending request is *not* arbitration work -- the
  /// arbiter ignores it until resume -- so it must not classify the
  /// cycle as IDLE_HO.
  std::uint32_t split_vector = 0;
};

/// The instruction-level power model of the AHB bus.
///
/// Drive step() once per bus cycle with the settled signal values; query
/// the per-instruction energy table and the per-block totals afterwards.
class PowerFsm {
public:
  struct Config {
    unsigned n_masters = 3;
    unsigned n_slaves = 4;       ///< including the default slave
    unsigned data_width = 32;    ///< HWDATA/HRDATA bits
    unsigned addr_width = 32;    ///< HADDR bits
    unsigned control_width = 8;  ///< HTRANS+HWRITE+HSIZE+HBURST bundle
    gate::Technology tech = gate::Technology::default_2003();
    /// Mux macromodel coefficients; replace with charlib-fitted values
    /// (MuxCharacterization::calibrated) to sharpen absolute accuracy.
    MuxModel::Coefficients m2s_coefficients{};
    MuxModel::Coefficients s2m_coefficients{};
  };

  struct InstrStats {
    std::uint64_t count = 0;
    double energy = 0.0;  ///< total [J]
    [[nodiscard]] double average() const {
      return count == 0 ? 0.0 : energy / static_cast<double>(count);
    }
  };

  struct StepResult {
    BusMode from;        ///< previous mode
    BusMode mode;        ///< mode of the cycle just classified
    BlockEnergy blocks;  ///< energy of this cycle per block
    /// Executed instruction name (interned; the hot path carries only
    /// the mode pair and the lookup allocates nothing).
    [[nodiscard]] std::string_view instruction() const {
      return instruction_view(from, mode);
    }
  };

  explicit PowerFsm(Config cfg);

  /// Classifies and accounts one bus cycle.
  StepResult step(const CycleView& v);

  /// Accounts `n` consecutive cycles with the *same* view. After the
  /// first repetition all Hamming distances are zero, so the remaining
  /// cycles cost a constant steady-state energy -- this computes them in
  /// O(1) instead of O(n). Used by the transaction-level fast model.
  void step_repeated(const CycleView& v, std::uint64_t n);

  /// @name Results
  ///@{
  /// The instruction table (name -> stats), built from the internal
  /// 4x4 transition array; only executed instructions appear.
  [[nodiscard]] std::map<std::string, InstrStats> instructions() const;
  [[nodiscard]] const BlockEnergy& block_totals() const { return blocks_; }
  [[nodiscard]] double total_energy() const { return blocks_.total(); }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  /// Energy attributed to each master (by address-phase bus ownership of
  /// the cycle) -- the per-IP energy budget view. Index = HMASTER.
  [[nodiscard]] const std::vector<double>& per_master_energy() const {
    return master_energy_;
  }
  [[nodiscard]] BusMode mode() const { return mode_; }
  /// The instrumentation-side activity storage (paper's Activity
  /// object). The hot path accumulates into an SoA PackedActivity; this
  /// accessor materializes the map-of-channels view on demand, with
  /// per-channel statistics identical to the former per-channel
  /// storage.
  [[nodiscard]] const Activity& activity() const {
    packed_.export_to(activity_view_);
    return activity_view_;
  }
  ///@}

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Publishes the accumulated results into a metrics registry under
  /// `prefix` (default "ahb.power"), following the naming contract of
  /// docs/OBSERVABILITY.md: `<prefix>.cycles`,
  /// `<prefix>.instr.<name>.count` / `.energy_j` for every *executed*
  /// instruction (names lowercased), `<prefix>.energy.<block>_j`,
  /// `<prefix>.energy.total_j` and `<prefix>.master.<i>.energy_j`.
  /// Counters are cumulative -- call once per run.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix = "ahb.power") const;

  void reset();

private:
  [[nodiscard]] BusMode classify(const CycleView& v, bool handover) const;

  Config cfg_;
  DecoderModel dec_model_;
  MuxModel m2s_model_;
  MuxModel s2m_model_;
  ArbiterFsmModel arb_model_;

  /// Monitored-signal indices into the packed SoA capture. Order is the
  /// store order of the former per-channel code; the names live in
  /// kChannelNames (power_fsm.cpp).
  enum Channel : std::size_t {
    kChHaddr = 0,
    kChHcontrol,
    kChHwdata,
    kChHrdata,
    kChHresp,
    kChHbusreq,
    kChHgrant,
    kChDataSlave,
    kChHmaster,
    kNumChannels,
  };
  /// Hot-path activity storage: all nine channels observed with one
  /// packed XOR+popcount pass per cycle (SoA; no pointer chasing).
  PackedActivity packed_;
  /// Lazily materialized map view handed out by activity().
  mutable Activity activity_view_;

  BusMode mode_ = BusMode::kIdle;
  bool first_cycle_ = true;
  CycleView prev_;
  std::uint64_t cycles_ = 0;
  BlockEnergy blocks_;
  std::vector<double> master_energy_;
  /// Transition-indexed stats: [from * 4 + to].
  std::array<InstrStats, 16> instr_{};
};

}  // namespace ahbp::power
