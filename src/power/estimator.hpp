#pragma once
// AhbPowerEstimator: the methodology's "local model" integration style
// (Fig. 1) and the library's main power-analysis entry point.
//
// A single monitor process is added beside the functional bus model; it
// samples the settled bus signals once per cycle, feeds the power FSM,
// and (optionally) builds windowed power telemetry. The functional model
// is untouched, and when disabled the monitor costs one virtual call per
// cycle -- the executable-specification equivalent of compiling without
// the paper's POWERTEST define is simply not constructing the estimator.
//
// Observability: with `telemetry_window_cycles` set, every sampled cycle
// publishes its per-block energy into a cycle-windowed
// telemetry::WindowSeries and runs of identical bus modes become
// duration events in a telemetry::TraceEventLog -- ready for the CSV /
// JSON / Chrome trace_event exporters (docs/OBSERVABILITY.md). With
// `metrics` set, hot-path counters land in the given MetricsRegistry.

#include <array>
#include <memory>
#include <string>

#include "ahb/bus.hpp"
#include "power/attribution.hpp"
#include "power/power_fsm.hpp"
#include "power/trace.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/window.hpp"

namespace ahbp::power {

/// Samples a finalized AhbBus once per cycle and runs the power FSM.
class AhbPowerEstimator : public sim::Module {
public:
  struct Config {
    gate::Technology tech = gate::Technology::default_2003();
    /// Runtime bypass: when false, sampling returns immediately.
    bool enabled = true;
    /// Window for the legacy time-based power trace; zero disables it.
    sim::SimTime trace_window = sim::SimTime::zero();
    /// Window (in sampled bus cycles) for the telemetry series and the
    /// bus-instruction trace events; zero disables both.
    std::uint64_t telemetry_window_cycles = 0;
    /// Reconstruct per-transaction spans and attribute block energies to
    /// them (TransactionTracer); see docs/OBSERVABILITY.md.
    bool txn_trace = false;
    /// Optional metrics registry (not owned; must outlive the
    /// estimator). The estimator maintains `ahb.power.sampled_cycles`
    /// and `ahb.power.cycle_energy_pj` live, and flush_telemetry()
    /// publishes the FSM's end-of-run totals into it.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// The bus must already be finalized.
  AhbPowerEstimator(sim::Module* parent, std::string name, ahb::AhbBus& bus);
  AhbPowerEstimator(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                    Config cfg);

  /// @name Results
  ///@{
  [[nodiscard]] const PowerFsm& fsm() const { return fsm_; }
  [[nodiscard]] double total_energy() const { return fsm_.total_energy(); }
  [[nodiscard]] const BlockEnergy& block_totals() const { return fsm_.block_totals(); }
  /// Nullptr when the legacy time-based trace is disabled.
  [[nodiscard]] const PowerTrace* trace() const { return trace_.get(); }
  /// Cycle-windowed per-block energy series (tracks arb/dec/m2s/s2m);
  /// nullptr when telemetry_window_cycles is zero.
  [[nodiscard]] const telemetry::WindowSeries* windows() const {
    return windows_.get();
  }
  /// Bus-instruction duration events; nullptr when telemetry is off.
  [[nodiscard]] const telemetry::TraceEventLog* trace_events() const {
    return events_.get();
  }
  /// Per-transaction tracer; nullptr unless Config::txn_trace was set.
  /// flush_telemetry() closes in-flight transactions before you read it.
  [[nodiscard]] const TransactionTracer* txn_tracer() const {
    return txn_.get();
  }
  /// Mutable access (runtime set_enabled for overhead experiments).
  [[nodiscard]] TransactionTracer* txn_tracer() { return txn_.get(); }
  /// Closes the trace's current window (call after the run, before
  /// reading the points).
  void flush_trace();
  /// Closes the telemetry window and open mode run, and publishes the
  /// FSM totals into the metrics registry (once per run). Also flushes
  /// the legacy trace.
  void flush_telemetry();
  ///@}

  void set_enabled(bool on) { cfg_.enabled = on; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Builds the current settled-cycle view (also used by the other
  /// integration styles and by tests).
  [[nodiscard]] CycleView sample_view() const;

  /// The clock of the monitored bus (used by downstream observers like
  /// PowerGovernor to align their sampling).
  [[nodiscard]] sim::Clock& bus_clock() const;

private:
  void on_cycle();

  ahb::AhbBus& bus_;
  Config cfg_;
  PowerFsm fsm_;
  std::unique_ptr<PowerTrace> trace_;
  std::unique_ptr<telemetry::WindowSeries> windows_;
  std::unique_ptr<telemetry::TraceEventLog> events_;
  std::unique_ptr<TransactionTracer> txn_;
  /// Current run of consecutive same-mode cycles (one trace slice).
  BusMode run_mode_ = BusMode::kIdle;
  std::uint64_t run_start_ = 0;
  bool run_open_ = false;
  bool metrics_published_ = false;
  telemetry::Counter* c_cycles_ = nullptr;
  telemetry::Histogram* h_cycle_energy_ = nullptr;
  sim::Method proc_;
};

}  // namespace ahbp::power
