#pragma once
// AhbPowerEstimator: the methodology's "local model" integration style
// (Fig. 1) and the library's main power-analysis entry point.
//
// A single monitor process is added beside the functional bus model; it
// samples the settled bus signals once per cycle, feeds the power FSM,
// and (optionally) builds a windowed power trace. The functional model is
// untouched, and when disabled the monitor costs one virtual call per
// cycle -- the executable-specification equivalent of compiling without
// the paper's POWERTEST define is simply not constructing the estimator.

#include <memory>
#include <string>

#include "ahb/bus.hpp"
#include "power/power_fsm.hpp"
#include "power/trace.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::power {

/// Samples a finalized AhbBus once per cycle and runs the power FSM.
class AhbPowerEstimator : public sim::Module {
public:
  struct Config {
    gate::Technology tech = gate::Technology::default_2003();
    /// Runtime bypass: when false, sampling returns immediately.
    bool enabled = true;
    /// Window for the power-versus-time trace; zero disables tracing.
    sim::SimTime trace_window = sim::SimTime::zero();
  };

  /// The bus must already be finalized.
  AhbPowerEstimator(sim::Module* parent, std::string name, ahb::AhbBus& bus);
  AhbPowerEstimator(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                    Config cfg);

  /// @name Results
  ///@{
  [[nodiscard]] const PowerFsm& fsm() const { return fsm_; }
  [[nodiscard]] double total_energy() const { return fsm_.total_energy(); }
  [[nodiscard]] const BlockEnergy& block_totals() const { return fsm_.block_totals(); }
  /// Nullptr when tracing is disabled.
  [[nodiscard]] const PowerTrace* trace() const { return trace_.get(); }
  /// Closes the trace's current window (call after the run, before
  /// reading the points).
  void flush_trace();
  ///@}

  void set_enabled(bool on) { cfg_.enabled = on; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Builds the current settled-cycle view (also used by the other
  /// integration styles and by tests).
  [[nodiscard]] CycleView sample_view() const;

  /// The clock of the monitored bus (used by downstream observers like
  /// PowerGovernor to align their sampling).
  [[nodiscard]] sim::Clock& bus_clock() const;

private:
  void on_cycle();

  ahb::AhbBus& bus_;
  Config cfg_;
  PowerFsm fsm_;
  std::unique_ptr<PowerTrace> trace_;
  sim::Method proc_;
};

}  // namespace ahbp::power
