#include "power/trace.hpp"

#include "sim/report.hpp"

namespace ahbp::power {

PowerTrace::PowerTrace(sim::SimTime window) : window_(window) {
  if (window <= sim::SimTime::zero()) {
    throw sim::SimError("PowerTrace: window must be positive");
  }
}

void PowerTrace::record(sim::SimTime now, const BlockEnergy& e) {
  const std::int64_t idx = now.femtoseconds() / window_.femtoseconds();
  if (current_index_ < 0) current_index_ = idx;
  while (idx > current_index_) {
    // Close the current window (and any empty gap windows).
    points_.push_back(Point{window_ * current_index_, acc_});
    acc_ = BlockEnergy{};
    ++current_index_;
  }
  acc_ += e;
}

void PowerTrace::flush() {
  if (current_index_ < 0) return;
  points_.push_back(Point{window_ * current_index_, acc_});
  acc_ = BlockEnergy{};
  ++current_index_;
}

}  // namespace ahbp::power
