#pragma once
// Analytic (simulation-free) power prediction.
//
// The paper lists "the switching-activity, the probability of a signal or
// the Hamming distance between two successive data" as macromodel
// inputs. Because every sub-block macromodel is linear in its activity
// features (only the decoder's HD_OUT term is an indicator), the
// *expected* energy per cycle follows in closed form from workload
// statistics -- no simulation needed. That makes the earliest possible
// estimate in the methodology's ladder: assume activity statistics,
// read off power.

#include <cstdint>

#include "power/activity.hpp"
#include "power/power_fsm.hpp"

namespace ahbp::power {

/// Per-cycle expected switching statistics of a workload.
struct WorkloadStats {
  double hd_addr = 0.0;    ///< E[HD(HADDR)] per cycle
  double hd_ctl = 0.0;     ///< E[HD(control bundle)]
  double hd_wdata = 0.0;   ///< E[HD(HWDATA)]
  double hd_rdata = 0.0;   ///< E[HD(HRDATA)]
  double hd_resp = 0.0;    ///< E[HD(response bundle)]
  double hd_req = 0.0;     ///< E[HD(HBUSREQ vector)]
  double hd_grant = 0.0;   ///< E[HD(HGRANT vector)]
  double hd_dslave = 0.0;  ///< E[HD(data-phase slave index)]
  double p_addr_change = 0.0;  ///< P[HADDR changed] (decoder HD_OUT term)
  double p_handover = 0.0;     ///< P[HMASTER changed]
};

/// Closed-form expected energy from the same macromodels PowerFsm uses.
class AnalyticPowerModel {
public:
  explicit AnalyticPowerModel(PowerFsm::Config cfg);

  /// Expected energy of one bus cycle under the given statistics [J].
  [[nodiscard]] double energy_per_cycle(const WorkloadStats& s) const;
  /// Expected power at clock frequency f [W].
  [[nodiscard]] double power(const WorkloadStats& s, double f_hz) const {
    return energy_per_cycle(s) * f_hz;
  }
  /// Expected per-block energy for one cycle.
  [[nodiscard]] BlockEnergy blocks_per_cycle(const WorkloadStats& s) const;

  /// Extracts the statistics a finished run actually had, from the power
  /// FSM's activity storage. Feeding these back into energy_per_cycle()
  /// reproduces the simulated energy (exactly, up to the indicator
  /// terms' empirical probabilities).
  [[nodiscard]] static WorkloadStats from_activity(const Activity& a,
                                                   std::uint64_t cycles,
                                                   double p_handover);

  /// A priori statistics for the paper-testbench workload class:
  /// `transfer_fraction` of cycles carry a data phase, `write_fraction`
  /// of those are writes, payloads are uniform random words in a
  /// `addr_window`-byte address window.
  [[nodiscard]] static WorkloadStats assume_random_traffic(
      double transfer_fraction, double write_fraction, std::uint32_t addr_window,
      unsigned data_width = 32);

private:
  PowerFsm::Config cfg_;
  DecoderModel dec_;
  MuxModel m2s_;
  MuxModel s2m_;
  ArbiterFsmModel arb_;
};

}  // namespace ahbp::power
