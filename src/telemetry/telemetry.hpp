#pragma once
// Umbrella header for ahbp::telemetry -- the observability layer.
//
//   MetricsRegistry, Counter,
//   Gauge, Histogram               -- named metrics, one-branch bypass
//   WindowSeries                   -- fixed-window multi-track series
//   TraceEventLog                  -- duration events for trace viewers
//   TxnTraceLog, TxnRecord         -- per-transaction stream + exporters
//   exporters.hpp                  -- CSV / JSON / Chrome trace_event
//
// The instrumentation contract (naming, window semantics, formats,
// overhead guarantees) is documented in docs/OBSERVABILITY.md.

#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/txn_trace.hpp"
#include "telemetry/window.hpp"
