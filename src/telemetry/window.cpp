#include "telemetry/window.hpp"

#include <algorithm>

#include "sim/report.hpp"

namespace ahbp::telemetry {

WindowSeries::WindowSeries(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.window_ticks == 0) {
    throw sim::SimError("WindowSeries: window_ticks must be positive");
  }
  if (cfg_.tracks.empty()) {
    throw sim::SimError("WindowSeries: at least one track required");
  }
  acc_.assign(cfg_.tracks.size(), 0.0);
}

void WindowSeries::check_width(std::span<const double> values) const {
  if (values.size() != cfg_.tracks.size()) {
    throw sim::SimError("WindowSeries: value count does not match track count");
  }
}

void WindowSeries::close_current() {
  Window w;
  w.start_tick = static_cast<std::uint64_t>(current_index_) * cfg_.window_ticks;
  w.ticks = cfg_.window_ticks;
  w.values = acc_;
  windows_.push_back(std::move(w));
  std::fill(acc_.begin(), acc_.end(), 0.0);
  ++current_index_;
}

void WindowSeries::record_scaled(std::uint64_t tick,
                                 std::span<const double> values, double scale) {
  const auto idx = static_cast<std::int64_t>(tick / cfg_.window_ticks);
  if (current_index_ < 0) current_index_ = idx;
  while (idx > current_index_) close_current();  // interior + gap windows
  for (std::size_t i = 0; i < acc_.size(); ++i) acc_[i] += values[i] * scale;
  open_ = true;
  last_tick_ = std::max(last_tick_, tick);
}

void WindowSeries::record(std::uint64_t tick, std::span<const double> values) {
  check_width(values);
  record_scaled(tick, values, 1.0);
}

void WindowSeries::record_span(std::uint64_t start_tick, std::uint64_t n_ticks,
                               std::span<const double> values) {
  check_width(values);
  if (n_ticks == 0) return;
  const std::uint64_t end = start_tick + n_ticks;
  std::uint64_t pos = start_tick;
  while (pos < end) {
    const std::uint64_t window_end =
        (pos / cfg_.window_ticks + 1) * cfg_.window_ticks;
    const std::uint64_t chunk = std::min(end, window_end) - pos;
    // The chunk's last tick still lies inside this window, so the scaled
    // record lands in it and advances last_tick_ to the chunk end.
    record_scaled(pos + chunk - 1, values,
                  static_cast<double>(chunk) / static_cast<double>(n_ticks));
    pos += chunk;
  }
}

void WindowSeries::flush() {
  if (!open_) return;
  Window w;
  w.start_tick = static_cast<std::uint64_t>(current_index_) * cfg_.window_ticks;
  w.ticks = std::min(cfg_.window_ticks, last_tick_ + 1 - w.start_tick);
  w.values = acc_;
  windows_.push_back(std::move(w));
  std::fill(acc_.begin(), acc_.end(), 0.0);
  ++current_index_;
  open_ = false;
}

std::vector<double> WindowSeries::totals() const {
  std::vector<double> t(cfg_.tracks.size(), 0.0);
  for (const Window& w : windows_) {
    for (std::size_t i = 0; i < t.size(); ++i) t[i] += w.values[i];
  }
  for (std::size_t i = 0; i < t.size(); ++i) t[i] += acc_[i];
  return t;
}

}  // namespace ahbp::telemetry
