#pragma once
// Crash-safe file emission: every output file is either the complete
// new content or the previous content -- never a truncated mix.
//
// The classic failure this prevents: a campaign (or the process hosting
// it) is SIGKILLed while an exporter's ofstream has flushed half a JSON
// document, leaving a torn artifact that downstream tooling chokes on.
// AtomicFile stages the content in memory, writes it to a same-directory
// temp file, fsyncs, renames over the destination (atomic on POSIX) and
// fsyncs the directory so the rename itself is durable. Adopted by the
// campaign report, the telemetry exporters and the CLI
// (docs/ROBUSTNESS.md).

#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>

namespace ahbp::telemetry {

/// One atomic file write: stream into `stream()`, then `commit()`.
///
///   AtomicFile f(dir / "metrics.json");
///   write_metrics_json(f.stream(), registry);
///   f.commit();  // temp + fsync + rename; throws std::runtime_error
///
/// A destructed-but-uncommitted AtomicFile leaves the destination
/// untouched (nothing is created before commit). Parent directories are
/// created by commit() when missing.
class AtomicFile {
 public:
  explicit AtomicFile(std::filesystem::path path) : path_(std::move(path)) {}

  /// The staging stream; content is held in memory until commit().
  [[nodiscard]] std::ostream& stream() { return buf_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Durably publishes the staged content. Throws std::runtime_error on
  /// any I/O failure; the destination is untouched when it throws.
  void commit();

  /// One-shot form: atomically replace `path` with `contents`. Returns
  /// false and fills `error` (when non-null) instead of throwing.
  static bool write(const std::filesystem::path& path,
                    std::string_view contents, std::string* error = nullptr);

 private:
  std::filesystem::path path_;
  std::ostringstream buf_;
  bool committed_ = false;
};

}  // namespace ahbp::telemetry
