#include "telemetry/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "telemetry/atomic_file.hpp"

namespace ahbp::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == 0.0) return "0";
  // Exact integers (within double's exact range) without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest precision that round-trips. Deterministic for a given
  // value on every IEEE-754 platform.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

/// A window's covered wall time in seconds.
double window_seconds(const WindowSeries::Window& w, const ExportMeta& meta) {
  return static_cast<double>(w.ticks) * meta.tick_ns * 1e-9;
}

double window_total(const WindowSeries::Window& w) {
  double t = 0.0;
  for (const double v : w.values) t += v;
  return t;
}

double tick_to_us(std::uint64_t tick, const ExportMeta& meta) {
  return static_cast<double>(tick) * meta.tick_ns * 1e-3;
}

}  // namespace

void write_window_csv(std::ostream& os, const WindowSeries& series,
                      const ExportMeta& meta) {
  os << "window,start_tick,ticks,t_start_us";
  for (const std::string& t : series.tracks()) os << ",e_" << t << "_j";
  os << ",e_total_j,p_total_w\n";
  std::size_t idx = 0;
  for (const auto& w : series.windows()) {
    const double total = window_total(w);
    const double secs = window_seconds(w, meta);
    os << idx++ << ',' << w.start_tick << ',' << w.ticks << ','
       << json_number(tick_to_us(w.start_tick, meta));
    for (const double v : w.values) os << ',' << json_number(v);
    os << ',' << json_number(total) << ','
       << json_number(secs > 0.0 ? total / secs : 0.0) << '\n';
  }
}

void write_window_json(std::ostream& os, const WindowSeries& series,
                       const ExportMeta& meta) {
  double grand_total = 0.0;
  for (const auto& w : series.windows()) grand_total += window_total(w);

  os << "{\n";
  os << "  \"schema\": \"ahbpower.windows.v1\",\n";
  os << "  \"tick_ns\": " << json_number(meta.tick_ns) << ",\n";
  os << "  \"window_ticks\": " << series.window_ticks() << ",\n";
  os << "  \"tracks\": [";
  for (std::size_t i = 0; i < series.tracks().size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(series.tracks()[i]) << '"';
  }
  os << "],\n";
  os << "  \"total_energy_j\": " << json_number(grand_total) << ",\n";
  os << "  \"windows\": [";
  for (std::size_t i = 0; i < series.windows().size(); ++i) {
    const auto& w = series.windows()[i];
    const double total = window_total(w);
    const double secs = window_seconds(w, meta);
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"start_tick\": " << w.start_tick << ", \"ticks\": " << w.ticks
       << ", \"t_start_us\": " << json_number(tick_to_us(w.start_tick, meta))
       << ", \"energy_j\": [";
    for (std::size_t j = 0; j < w.values.size(); ++j) {
      if (j != 0) os << ", ";
      os << json_number(w.values[j]);
    }
    os << "], \"energy_total_j\": " << json_number(total)
       << ", \"power_w\": " << json_number(secs > 0.0 ? total / secs : 0.0)
       << "}";
  }
  os << "\n  ]\n}\n";
}

void write_chrome_trace(std::ostream& os, const TraceEventLog& log,
                        const WindowSeries* series, const ExportMeta& meta) {
  os << "{\"traceEvents\": [\n";
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"name\": \""
     << json_escape(meta.process_name) << "\"}}";
  for (const auto& [tid, label] : meta.threads) {
    os << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << tid << ", \"args\": {\"name\": \"" << json_escape(label) << "\"}}";
  }
  for (const TraceEvent& e : log.events()) {
    os << ",\n  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.category) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.tid << ", \"ts\": " << json_number(tick_to_us(e.start_tick, meta))
       << ", \"dur\": "
       << json_number(static_cast<double>(e.dur_ticks) * meta.tick_ns * 1e-3);
    if (!e.args_json.empty()) os << ", \"args\": " << e.args_json;
    os << "}";
  }
  if (series != nullptr) {
    for (const auto& w : series->windows()) {
      const double secs = window_seconds(w, meta);
      os << ",\n  {\"name\": \"power_mw\", \"ph\": \"C\", \"pid\": 1"
         << ", \"ts\": " << json_number(tick_to_us(w.start_tick, meta))
         << ", \"args\": {";
      for (std::size_t j = 0; j < w.values.size(); ++j) {
        if (j != 0) os << ", ";
        const double watts = secs > 0.0 ? w.values[j] / secs : 0.0;
        os << '"' << json_escape(series->tracks()[j])
           << "\": " << json_number(watts * 1e3);
      }
      os << "}}";
    }
  }
  os << "\n]}\n";
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry) {
  os << "{\n";
  os << "  \"schema\": \"ahbpower.metrics.v1\",\n";
  os << "  \"enabled\": " << (registry.enabled() ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c.value();
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << json_number(g.value());
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    // One locked snapshot per histogram: counts/count/sum/min/max stay
    // mutually consistent even while observe() runs concurrently.
    const Histogram::Snapshot snap = h.snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {";
    os << "\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) os << ", ";
      os << json_number(h.bounds()[i]);
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i != 0) os << ", ";
      os << snap.counts[i];
    }
    os << "], \"count\": " << snap.count
       << ", \"sum\": " << json_number(snap.sum)
       << ", \"min\": " << json_number(snap.min)
       << ", \"max\": " << json_number(snap.max) << "}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
}

namespace {

/// "campaign.runs_ok" -> "campaign_runs_ok". The naming contract
/// ([a-z0-9_] dot-separated segments) makes the result a legal
/// Prometheus metric name.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

}  // namespace

void write_prometheus_text(std::ostream& os, const MetricsRegistry& registry) {
  for (const auto& [name, c] : registry.counters()) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << json_number(g.value())
       << '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string n = prometheus_name(name);
    const Histogram::Snapshot snap = h.snapshot();
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += snap.counts[i];
      os << n << "_bucket{le=\"" << json_number(h.bounds()[i]) << "\"} "
         << cumulative << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
    os << n << "_sum " << json_number(snap.sum) << '\n';
    os << n << "_count " << snap.count << '\n';
  }
}

void write_window_csv_file(const std::filesystem::path& path,
                           const WindowSeries& series, const ExportMeta& meta) {
  AtomicFile file(path);
  write_window_csv(file.stream(), series, meta);
  file.commit();
}

void write_window_json_file(const std::filesystem::path& path,
                            const WindowSeries& series,
                            const ExportMeta& meta) {
  AtomicFile file(path);
  write_window_json(file.stream(), series, meta);
  file.commit();
}

void write_chrome_trace_file(const std::filesystem::path& path,
                             const TraceEventLog& log,
                             const WindowSeries* series,
                             const ExportMeta& meta) {
  AtomicFile file(path);
  write_chrome_trace(file.stream(), log, series, meta);
  file.commit();
}

void write_metrics_json_file(const std::filesystem::path& path,
                             const MetricsRegistry& registry) {
  AtomicFile file(path);
  write_metrics_json(file.stream(), registry);
  file.commit();
}

}  // namespace ahbp::telemetry
