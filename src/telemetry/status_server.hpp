#pragma once
// Embedded HTTP/1.1 status endpoint (CLI --status-port).
//
// A minimal, dependency-free server on one dedicated thread, bound to
// 127.0.0.1 only (observability is a local concern; anything wider
// belongs behind a real reverse proxy). Port 0 requests an ephemeral
// port; the caller reads the bound port back via port() and prints it.
//
// Routes (all GET, Connection: close, Content-Length framed):
//   /status            application/json  -- campaign snapshot
//                      ("ahbpower.status.v1", see campaign/progress.hpp)
//   /metrics           text/plain        -- Prometheus exposition
//                      (write_prometheus_text over a MetricsRegistry)
//   /events?after=N    application/x-ndjson -- event-log tail with
//                      seq > N (EventLog::render_since)
// Anything else is 404; a malformed or non-GET request is 400.
//
// The server owns no campaign state: the three content callbacks are
// injected, so the telemetry layer never depends on the campaign layer
// (the CLI wires campaign::ProgressTracker::status_json and friends in).
// Callbacks run on the server thread and must be thread-safe against
// the threads mutating the underlying state; a throwing callback
// renders as a 500 instead of killing the thread.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ahbp::telemetry {

/// One HTTP response, as seen by the in-tree client below.
struct HttpResponse {
  int status = 0;  ///< HTTP status code; 0 = transport failure
  std::string body;
  std::string content_type;
  [[nodiscard]] bool ok() const { return status == 200; }
};

/// Blocking GET against 127.0.0.1:`port`. The in-tree client used by
/// the tests and the ctest smoke probe (no curl dependency); transport
/// failures return status 0 instead of throwing.
[[nodiscard]] HttpResponse http_get(std::uint16_t port, const std::string& path,
                                    double timeout_seconds = 5.0);

class StatusServer {
public:
  struct Config {
    /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via
    /// port()).
    std::uint16_t port = 0;
    /// GET /status body (application/json).
    std::function<std::string()> status_json;
    /// GET /metrics body (text/plain Prometheus exposition).
    std::function<std::string()> metrics_text;
    /// GET /events body: every event line with seq > the argument.
    std::function<std::string(std::uint64_t)> events_jsonl;
  };

  /// Binds and starts serving immediately. Throws std::runtime_error
  /// when the port cannot be bound (already in use, privileged).
  explicit StatusServer(Config cfg);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (the ephemeral assignment when Config::port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stops accepting and joins the server thread. Idempotent; also run
  /// by the destructor.
  void stop();

private:
  void serve();
  void handle(int fd);

  Config cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  ///< self-pipe: stop() interrupts poll()
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ahbp::telemetry
