#pragma once
// Low-overhead metrics primitives -- the observability counterpart of
// the paper's POWERTEST bypass philosophy.
//
// A MetricsRegistry owns named counters, gauges and histograms.
// Instrumented code obtains a handle (stable pointer) once, at setup
// time, and updates it on the hot path; every update is guarded by a
// single registry-wide enable flag, so a disabled registry costs one
// predictable branch per update -- the runtime equivalent of compiling
// the instrumentation out. Metric names follow the contract documented
// in docs/OBSERVABILITY.md: lowercase dot-separated segments of
// [a-z0-9_], e.g. "ahb.power.cycles".
//
// Concurrency: updates and reads may race -- the status server renders
// /metrics while pool workers increment on the hot path. Counter and
// Gauge are relaxed atomics (no torn 64-bit reads); Histogram guards
// its correlated state (counts/count/sum/min/max) with a per-histogram
// mutex, and snapshot() returns one consistent view. *Registration*
// (counter()/gauge()/histogram() and set_enabled()) is still setup-time
// only: it mutates the maps and must not race updates or rendering.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ahbp::telemetry {

/// Monotonically increasing integer metric (events, cycles, bytes).
class Counter {
public:
  void add(std::uint64_t n = 1) {
    if (*enabled_) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Registration-time only: std::map materializes the handle via this
  /// copy (MetricsRegistry::counter); handles never copy after setup.
  Counter(const Counter& o)
      : enabled_(o.enabled_),
        value_(o.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter&) = delete;

private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric (energies, ratios, temperatures).
class Gauge {
public:
  void set(double v) {
    if (*enabled_) value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!*enabled_) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Registration-time only (see Counter).
  Gauge(const Gauge& o)
      : enabled_(o.enabled_),
        value_(o.value_.load(std::memory_order_relaxed)) {}
  Gauge& operator=(const Gauge&) = delete;

private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::atomic<double> value_{0.0};
};

/// Distribution metric over fixed bucket upper bounds.
///
/// `counts()[i]` counts observations <= `bounds()[i]`; the final slot
/// counts the overflow (> last bound). Bounds are strictly increasing
/// and fixed at registration.
class Histogram {
public:
  /// Records one observation. NaN, +/-inf and negative values are
  /// rejected (dropped without touching count/sum/min/max): the metric
  /// contract covers non-negative measurements only.
  void observe(double v);

  /// One internally consistent view of the mutable state, taken under
  /// the histogram lock -- what renderers racing observe() must use.
  struct Snapshot {
    std::vector<std::uint64_t> counts;  ///< bounds().size() + 1 slots
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Size bounds().size() + 1 (last slot = overflow). Returned by value:
  /// a consistent copy taken under the lock.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Smallest / largest observation (0 when count() == 0).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const { return snapshot().mean(); }

  /// Registration-time only (see Counter).
  Histogram(const Histogram& o);
  Histogram& operator=(const Histogram&) = delete;

private:
  friend class MetricsRegistry;
  Histogram(const bool* enabled, std::vector<double> bounds);
  const bool* enabled_;
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store with deterministic iteration order.
///
/// Registration is idempotent: asking twice for the same name returns
/// the same object (a histogram must be re-requested with identical
/// bounds). Registering one name as two different kinds, or with a name
/// violating the naming contract, throws. Storage is a std::map, so
/// handles are stable for the registry's lifetime and snapshots iterate
/// in name order -- reports are byte-reproducible across runs.
class MetricsRegistry {
public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The global bypass switch every handle checks on update.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Name-ordered views for rendering.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// True iff `name` satisfies the naming contract: non-empty lowercase
  /// dot-separated segments of [a-z0-9_], no empty segment.
  [[nodiscard]] static bool valid_name(const std::string& name);

private:
  void check_name(const std::string& name) const;

  bool enabled_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ahbp::telemetry
