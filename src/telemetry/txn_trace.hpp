#pragma once
// Transaction-scoped tracing: the record type, the append-only log, and
// the deterministic exporters for per-transaction observability.
//
// A TxnRecord is one reconstructed bus transfer -- who owned it (master),
// whom it addressed (slave), what shape it had (burst kind, direction)
// and where its cycles went (arbitration wait, address phase, data
// beats, wait states, BUSY beats, RETRY/SPLIT/ERROR rework) -- plus the
// energy attributed to it by the power layer. The telemetry layer does
// not reconstruct anything itself; producers (power::TransactionTracer)
// fill records, this layer stores and renders them. Formats are
// specified in docs/OBSERVABILITY.md and validated in CI against
// tools/telemetry_schema.json (schema "ahbpower.txns.v1").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/exporters.hpp"

namespace ahbp::telemetry {

/// One completed bus transaction, as reconstructed by a tracer.
struct TxnRecord {
  std::uint64_t id = 0;        ///< sequence number, in start order
  unsigned master = 0;         ///< owning master index
  unsigned slave = 0xFF;       ///< addressed slave index (0xFF = none seen)
  std::string kind;            ///< burst kind, e.g. "SINGLE", "INCR4"
  bool write = false;          ///< direction of the transfer
  std::uint64_t req_tick = 0;    ///< first cycle the master waited for grant
  std::uint64_t start_tick = 0;  ///< first address-phase cycle
  std::uint64_t end_tick = 0;    ///< one past the last owned cycle
  std::uint64_t arb_cycles = 0;  ///< request->first-address latency
  std::uint64_t addr_cycles = 0; ///< cycles owning the address phase
  std::uint64_t data_beats = 0;  ///< completed data-phase beats
  std::uint64_t wait_cycles = 0; ///< data-phase cycles stalled by the slave
  std::uint64_t busy_cycles = 0; ///< BUSY beats inserted by the master
  std::uint32_t retries = 0;     ///< RETRY responses received
  std::uint32_t splits = 0;      ///< SPLIT responses received
  std::uint32_t errors = 0;      ///< ERROR responses received
  double energy_j = 0.0;         ///< energy attributed to this transaction [J]
};

/// Append-only log of completed transactions, in completion order.
class TxnTraceLog {
public:
  void add(TxnRecord r) { records_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<TxnRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

private:
  std::vector<TxnRecord> records_;
};

/// Attribution totals accompanying a transaction stream: how the run's
/// energy splits across masters, slaves and the synthetic "bus" owner
/// (idle / handover cycles nobody's transaction owns). Conservation
/// contract: sum of per-record energy_j plus bus_energy_j equals
/// total_energy_j within 1e-9 relative error (docs/OBSERVABILITY.md).
struct TxnSummary {
  double total_energy_j = 0.0;            ///< the estimator's run total
  double bus_energy_j = 0.0;              ///< idle/handover (bus-owned)
  std::vector<double> master_energy_j;    ///< per-master attributed energy
  std::vector<std::uint64_t> master_txns; ///< per-master transaction counts
  std::vector<double> slave_energy_j;     ///< per-slave attributed energy
};

/// Writes the transaction stream as CSV, one row per record:
///   txn,master,slave,kind,write,req_tick,start_tick,end_tick,
///   arb_cycles,addr_cycles,data_beats,wait_cycles,busy_cycles,
///   retries,splits,errors,energy_j
void write_txn_csv(std::ostream& os, const TxnTraceLog& log);

/// Writes the transaction stream as a JSON document (schema
/// "ahbpower.txns.v1"): header (tick_ns, per-master / per-slave
/// attribution totals, bus_energy_j, total_energy_j) plus one object
/// per transaction.
void write_txn_json(std::ostream& os, const TxnTraceLog& log,
                    const TxnSummary& summary, const ExportMeta& meta);

/// Appends one transaction's Chrome-trace spans to `spans`: an outer
/// slice covering [req_tick, end_tick) on the master's track
/// (tid = master + 2, clear of the bus-instruction track at tid 1),
/// with nested "arb" and "xfer" child slices and the record's counters
/// as args. Render the log with write_chrome_trace; name the tracks via
/// ExportMeta::threads.
void append_txn_spans(TraceEventLog& spans, const TxnRecord& r);

/// The Chrome-trace thread id carrying a master's transaction spans.
[[nodiscard]] constexpr int txn_track_tid(unsigned master) {
  return static_cast<int>(master) + 2;
}

/// @name Crash-safe file variants
/// Identical output to the stream writers above, committed through
/// AtomicFile; throw std::runtime_error on I/O failure.
///@{
void write_txn_csv_file(const std::filesystem::path& path,
                        const TxnTraceLog& log);
void write_txn_json_file(const std::filesystem::path& path,
                         const TxnTraceLog& log, const TxnSummary& summary,
                         const ExportMeta& meta);
///@}

}  // namespace ahbp::telemetry
