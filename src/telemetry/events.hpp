#pragma once
// Structured campaign event log (schema "ahbpower.events.v1").
//
// Long sweeps were a black box while they ran: every artifact the
// telemetry layer emits (metrics, windows, campaign reports) only
// materializes after the last run finishes. The EventLog is the live
// counterpart: an append-only sequence of typed lifecycle events
// (campaign start/finish, run start/finish/retry, watchdog trips,
// journal appends, SIGINT drains, worker stalls), each stamped with a
// strictly increasing sequence number, a monotonic timestamp (for
// ordering and age arithmetic) and a wall-clock timestamp (for humans
// and cross-host correlation).
//
// Consumers:
//  - campaign::ProgressTracker subscribes via add_listener() and folds
//    the stream into throughput / ETA / liveness state;
//  - the status server tails the in-memory ring via render_since()
//    (GET /events?after=N);
//  - an optional JSONL file sink persists every event as one line,
//    written with write(2) + fsync(2) under the log mutex (the journal's
//    durability discipline), so a post-mortem can replay the campaign's
//    timeline -- and the final counts must replay to the same
//    done/failed/crashed totals as campaign.json.
//
// Concurrency: emit() is thread-safe (pool workers, the process-pool
// reaper and the CLI all emit concurrently). Listeners are invoked on
// the emitting thread *after* the log mutex is released, so a listener
// may call back into the log (e.g. the tracker emitting
// "worker_stalled") without deadlocking; listeners must do their own
// locking. A disabled log (Config::enabled = false) costs one branch
// per emit -- the MetricsRegistry bypass discipline, held to < 2% by
// bench_overhead --events-guard.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ahbp::telemetry {

/// The on-disk schema identifier; also the "schema" field of the JSONL
/// header line.
inline constexpr std::string_view kEventsSchema = "ahbpower.events.v1";

/// One typed key/value attribute of an event. Values keep their native
/// type so consumers (ProgressTracker) never re-parse rendered JSON.
struct EventField {
  enum class Kind : std::uint8_t { kString, kU64, kF64 };
  std::string key;
  Kind kind = Kind::kU64;
  std::string str;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
};

[[nodiscard]] EventField field_str(std::string key, std::string_view value);
[[nodiscard]] EventField field_u64(std::string key, std::uint64_t value);
[[nodiscard]] EventField field_f64(std::string key, double value);

/// One log entry. `seq` starts at 1 and increases by exactly 1 per
/// emitted event; `t_mono_us` is microseconds since the log's
/// construction (steady clock); `t_wall_us` is microseconds since the
/// Unix epoch (system clock).
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t t_mono_us = 0;
  std::uint64_t t_wall_us = 0;
  std::string type;
  std::vector<EventField> fields;

  [[nodiscard]] const EventField* find(std::string_view key) const;
  /// Typed field access with a fallback when the key is absent or of a
  /// different kind.
  [[nodiscard]] std::uint64_t u64(std::string_view key,
                                  std::uint64_t fallback = 0) const;
  [[nodiscard]] double f64(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = {}) const;
  /// Renders the event as one JSON object (no trailing newline): the
  /// envelope keys (seq, t_mono_us, t_wall_us, type) followed by the
  /// fields in emission order. Deterministic for a given event.
  [[nodiscard]] std::string render() const;
};

/// Append-only, thread-safe event log with an optional durable JSONL
/// file sink. See the header comment for the full contract.
class EventLog {
public:
  struct Config {
    /// Master switch: a disabled log ignores emit() after one branch.
    bool enabled = true;
    /// JSONL sink path (empty = in-memory only). The file is truncated
    /// on open -- an event log describes exactly one campaign -- and
    /// starts with a header line naming the schema and the campaign
    /// config fingerprint.
    std::filesystem::path file;
    /// Campaign configuration fingerprint recorded in the header line
    /// (see campaign::JournalWriter); 0 when not applicable.
    std::uint64_t config_fingerprint = 0;
  };

  EventLog() : EventLog(Config{}) {}
  explicit EventLog(Config cfg);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const std::filesystem::path& path() const { return cfg_.file; }

  /// Appends one event: stamps seq/timestamps, stores it, writes the
  /// JSONL line to the sink (when configured), then invokes listeners
  /// outside the lock. No-op when the log is disabled.
  void emit(std::string type, std::vector<EventField> fields = {});

  /// Subscribes to every future event. Listeners run on the emitting
  /// thread after the log mutex is released; registration is expected
  /// at setup time, before concurrent emission starts.
  using Listener = std::function<void(const Event&)>;
  void add_listener(Listener fn);

  /// Number of events emitted so far (== the last assigned seq).
  [[nodiscard]] std::uint64_t size() const;

  /// Copies of every event with seq > after_seq, in seq order.
  [[nodiscard]] std::vector<Event> events_since(std::uint64_t after_seq) const;

  /// The same tail rendered as JSONL ("" when nothing is newer) -- the
  /// GET /events?after=N response body.
  [[nodiscard]] std::string render_since(std::uint64_t after_seq) const;

  /// Microseconds since this log's construction on the same steady
  /// clock that stamps t_mono_us -- the time base for heartbeat ages.
  [[nodiscard]] std::uint64_t now_mono_us() const;

  /// First deferred sink failure (disk full, EIO), or empty. A sink
  /// failure never throws across emit(): the in-memory log and the
  /// listeners keep working, only durability is lost.
  [[nodiscard]] std::string error() const;

private:
  void write_line(const std::string& line);  // callers hold mutex_

  Config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<Listener> listeners_;
  int fd_ = -1;
  std::string error_;
};

}  // namespace ahbp::telemetry
