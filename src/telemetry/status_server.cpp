#include "telemetry/status_server.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "telemetry/exporters.hpp"

namespace ahbp::telemetry {

namespace {

/// Applies a receive/send timeout so one stuck client cannot wedge the
/// single-threaded accept loop (or a test against a dead server).
void set_io_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return "";
  }
}

void send_response(int fd, int status, const std::string& content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     reason_phrase(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head)) send_all(fd, body);
}

/// Parses "after=N" from a query string. Absent = 0 (full tail); a
/// non-numeric value is a client error, reported as false -> 400.
bool parse_after(std::string_view query, std::uint64_t& after) {
  after = 0;
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    if (pair.size() >= 6 && pair.substr(0, 6) == "after=") {
      if (pair.size() == 6) return false;
      std::uint64_t v = 0;
      for (const char c : pair.substr(6)) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
      }
      after = v;
      return true;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return true;
}

}  // namespace

HttpResponse http_get(std::uint16_t port, const std::string& path,
                      double timeout_seconds) {
  HttpResponse res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  set_io_timeout(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return res;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return res;
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n<headers>\r\n\r\n<body>"
  if (raw.compare(0, 5, "HTTP/") != 0) return res;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return res;
  res.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    res.status = 0;
    return res;
  }
  const std::string head = raw.substr(0, head_end);
  std::size_t ct = head.find("Content-Type: ");
  if (ct != std::string::npos) {
    ct += 14;
    res.content_type = head.substr(ct, head.find("\r\n", ct) - ct);
  }
  res.body = raw.substr(head_end + 4);
  return res;
}

StatusServer::StatusServer(Config cfg) : cfg_(std::move(cfg)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("status server: socket() failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status server: cannot bind 127.0.0.1:" +
                             std::to_string(cfg_.port) + ": " + why);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_fd_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status server: pipe() failed");
  }
  ::fcntl(wake_fd_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_fd_[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(listen_fd_, F_SETFD, FD_CLOEXEC);
  thread_ = std::thread([this] { serve(); });
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::stop() {
  if (!stopping_.exchange(true)) {
    // Wake the poll() so the thread observes the flag promptly.
    if (wake_fd_[1] >= 0) {
      const char byte = 0;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd_[1], &byte, 1);
    }
  }
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_fd_[0], &wake_fd_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void StatusServer::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fd_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, 200);
    if (n <= 0) continue;  // timeout / EINTR: re-check the stop flag
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_io_timeout(client, 2.0);
    handle(client);
    ::close(client);
  }
}

void StatusServer::handle(int fd) {
  // Read until the end of the request head (we never accept bodies).
  std::string req;
  char chunk[2048];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    req.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = req.find("\r\n");
  if (line_end == std::string::npos) {
    send_response(fd, 400, "application/json",
                  "{\"error\": \"malformed request\"}\n");
    return;
  }
  // "GET <target> HTTP/1.1"
  const std::string line = req.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    send_response(fd, 400, "application/json",
                  "{\"error\": \"malformed request\"}\n");
    return;
  }
  if (line.substr(0, sp1) != "GET") {
    send_response(fd, 400, "application/json",
                  "{\"error\": \"only GET is supported\"}\n");
    return;
  }
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  const std::string path = target.substr(0, q);
  const std::string query =
      q == std::string::npos ? std::string() : target.substr(q + 1);

  try {
    if (path == "/status" && cfg_.status_json) {
      send_response(fd, 200, "application/json", cfg_.status_json());
    } else if (path == "/metrics" && cfg_.metrics_text) {
      send_response(fd, 200, "text/plain; version=0.0.4",
                    cfg_.metrics_text());
    } else if (path == "/events" && cfg_.events_jsonl) {
      std::uint64_t after = 0;
      if (!parse_after(query, after)) {
        send_response(fd, 400, "application/json",
                      "{\"error\": \"bad after parameter\"}\n");
      } else {
        send_response(fd, 200, "application/x-ndjson",
                      cfg_.events_jsonl(after));
      }
    } else {
      send_response(fd, 404, "application/json",
                    "{\"error\": \"not found\"}\n");
    }
  } catch (const std::exception& e) {
    send_response(fd, 500, "application/json",
                  "{\"error\": \"" + json_escape(e.what()) + "\"}\n");
  }
}

}  // namespace ahbp::telemetry
