#include "telemetry/txn_trace.hpp"

#include <ostream>

#include "telemetry/atomic_file.hpp"

namespace ahbp::telemetry {

namespace {

/// One record as a compact JSON object (shared by write_txn_json).
void write_record(std::ostream& os, const TxnRecord& r) {
  os << "{\"id\": " << r.id << ", \"master\": " << r.master
     << ", \"slave\": " << r.slave << ", \"kind\": \"" << json_escape(r.kind)
     << "\", \"write\": " << (r.write ? "true" : "false")
     << ", \"req_tick\": " << r.req_tick << ", \"start_tick\": " << r.start_tick
     << ", \"end_tick\": " << r.end_tick << ", \"arb_cycles\": " << r.arb_cycles
     << ", \"addr_cycles\": " << r.addr_cycles
     << ", \"data_beats\": " << r.data_beats
     << ", \"wait_cycles\": " << r.wait_cycles
     << ", \"busy_cycles\": " << r.busy_cycles << ", \"retries\": " << r.retries
     << ", \"splits\": " << r.splits << ", \"errors\": " << r.errors
     << ", \"energy_j\": " << json_number(r.energy_j) << "}";
}

}  // namespace

void write_txn_csv(std::ostream& os, const TxnTraceLog& log) {
  os << "txn,master,slave,kind,write,req_tick,start_tick,end_tick,"
        "arb_cycles,addr_cycles,data_beats,wait_cycles,busy_cycles,"
        "retries,splits,errors,energy_j\n";
  for (const TxnRecord& r : log.records()) {
    os << r.id << ',' << r.master << ',' << r.slave << ',' << r.kind << ','
       << (r.write ? 'W' : 'R') << ',' << r.req_tick << ',' << r.start_tick
       << ',' << r.end_tick << ',' << r.arb_cycles << ',' << r.addr_cycles
       << ',' << r.data_beats << ',' << r.wait_cycles << ',' << r.busy_cycles
       << ',' << r.retries << ',' << r.splits << ',' << r.errors << ','
       << json_number(r.energy_j) << '\n';
  }
}

void write_txn_json(std::ostream& os, const TxnTraceLog& log,
                    const TxnSummary& summary, const ExportMeta& meta) {
  os << "{\n";
  os << "  \"schema\": \"ahbpower.txns.v1\",\n";
  os << "  \"tick_ns\": " << json_number(meta.tick_ns) << ",\n";
  os << "  \"total_energy_j\": " << json_number(summary.total_energy_j)
     << ",\n";
  os << "  \"bus_energy_j\": " << json_number(summary.bus_energy_j) << ",\n";
  os << "  \"masters\": [";
  for (std::size_t m = 0; m < summary.master_energy_j.size(); ++m) {
    if (m != 0) os << ", ";
    const std::uint64_t txns =
        m < summary.master_txns.size() ? summary.master_txns[m] : 0;
    os << "{\"energy_j\": " << json_number(summary.master_energy_j[m])
       << ", \"txns\": " << txns << "}";
  }
  os << "],\n";
  os << "  \"slaves\": [";
  for (std::size_t s = 0; s < summary.slave_energy_j.size(); ++s) {
    if (s != 0) os << ", ";
    os << "{\"energy_j\": " << json_number(summary.slave_energy_j[s]) << "}";
  }
  os << "],\n";
  os << "  \"txns\": [";
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_record(os, log.records()[i]);
  }
  os << "\n  ]\n}\n";
}

void append_txn_spans(TraceEventLog& spans, const TxnRecord& r) {
  const int tid = txn_track_tid(r.master);
  const std::uint64_t dur =
      r.end_tick > r.req_tick ? r.end_tick - r.req_tick : 1;
  std::string args = "{\"txn\": " + std::to_string(r.id) +
                     ", \"slave\": " + std::to_string(r.slave) +
                     ", \"beats\": " + std::to_string(r.data_beats) +
                     ", \"waits\": " + std::to_string(r.wait_cycles) +
                     ", \"retries\": " + std::to_string(r.retries) +
                     ", \"energy_j\": " + json_number(r.energy_j) + "}";
  spans.add_complete(r.kind + (r.write ? " WR" : " RD"), "txn", r.req_tick,
                     dur, tid, std::move(args));
  if (r.start_tick > r.req_tick) {
    spans.add_complete("arb", "txn", r.req_tick, r.start_tick - r.req_tick,
                       tid, {});
  }
  if (r.end_tick > r.start_tick) {
    spans.add_complete("xfer", "txn", r.start_tick, r.end_tick - r.start_tick,
                       tid, {});
  }
}

void write_txn_csv_file(const std::filesystem::path& path,
                        const TxnTraceLog& log) {
  AtomicFile file(path);
  write_txn_csv(file.stream(), log);
  file.commit();
}

void write_txn_json_file(const std::filesystem::path& path,
                         const TxnTraceLog& log, const TxnSummary& summary,
                         const ExportMeta& meta) {
  AtomicFile file(path);
  write_txn_json(file.stream(), log, summary, meta);
  file.commit();
}

}  // namespace ahbp::telemetry
