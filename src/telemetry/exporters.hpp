#pragma once
// Telemetry exporters: CSV and JSON window time-series, a Chrome
// trace_event (about://tracing, ui.perfetto.dev) writer, and the
// metrics-registry JSON snapshot.
//
// Every exporter is deterministic: identical inputs produce
// byte-identical output (numbers are rendered with a shortest
// round-trip formatter, maps iterate in name order), so emitted files
// can be golden-tested and diffed across runs. Formats are specified in
// docs/OBSERVABILITY.md; structural validity of the JSON outputs is
// checked in CI by tools/telemetry_validate against
// tools/telemetry_schema.json.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/window.hpp"

namespace ahbp::telemetry {

/// @name JSON rendering primitives (shared by all JSON emitters)
///@{
/// Escapes a string for use inside JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view s);
/// Renders a finite double as the shortest decimal that parses back to
/// the same value ("1.5", "0.1", "1e-12"); integral values within the
/// exact-double range render without a fraction. Non-finite values
/// render as 0 (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double v);
///@}

/// Conversion context shared by the exporters: how long one series tick
/// lasts in real time (the bus clock period for cycle-indexed series).
struct ExportMeta {
  double tick_ns = 10.0;                  ///< duration of one tick [ns]
  std::string process_name = "ahbpower";  ///< Chrome trace process label
  /// Chrome trace thread tracks: (tid, label) pairs announced as
  /// thread_name metadata. Events carry their own tid (default 1).
  std::vector<std::pair<int, std::string>> threads = {{1, "bus instructions"}};
};

/// One completed duration event on the trace timeline (rendered as a
/// Chrome trace_event "X" slice): e.g. a run of consecutive bus cycles
/// in the same power-FSM mode.
struct TraceEvent {
  std::string name;          ///< slice label, e.g. "READ"
  std::string category;      ///< trace_event "cat", e.g. "bus"
  std::uint64_t start_tick = 0;
  std::uint64_t dur_ticks = 0;
  int tid = 1;               ///< thread track (see ExportMeta::threads)
  /// Pre-rendered JSON object for the event's "args" field (empty =
  /// omitted). The producer owns its validity.
  std::string args_json;
};

/// Append-only log of duration events. Within one tid, events nest by
/// containment (Chrome trace "X" semantics); emit parents before
/// children that share a start tick.
class TraceEventLog {
public:
  void add_complete(std::string name, std::string category,
                    std::uint64_t start_tick, std::uint64_t dur_ticks) {
    events_.push_back(TraceEvent{std::move(name), std::move(category),
                                 start_tick, dur_ticks, 1, {}});
  }
  void add_complete(std::string name, std::string category,
                    std::uint64_t start_tick, std::uint64_t dur_ticks, int tid,
                    std::string args_json) {
    events_.push_back(TraceEvent{std::move(name), std::move(category),
                                 start_tick, dur_ticks, tid,
                                 std::move(args_json)});
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

private:
  std::vector<TraceEvent> events_;
};

/// Writes a window series as CSV. Track values are treated as energies
/// in joules; columns are
///   window,start_tick,ticks,t_start_us,e_<track>_j...,e_total_j,p_total_w
/// where p_total_w divides the window's total energy by its covered
/// wall time (ticks * tick_ns).
void write_window_csv(std::ostream& os, const WindowSeries& series,
                      const ExportMeta& meta);

/// Writes a window series as a JSON document (schema
/// "ahbpower.windows.v1"): header fields (tick_ns, window_ticks,
/// tracks, total_energy_j) plus one object per window.
void write_window_json(std::ostream& os, const WindowSeries& series,
                       const ExportMeta& meta);

/// Writes a Chrome trace_event JSON file: the log's duration events as
/// "X" slices on one thread track, and (when `series` is non-null) one
/// "C" counter event per window carrying each track's average power in
/// mW -- Perfetto renders those as stacked counter tracks under the
/// process.
void write_chrome_trace(std::ostream& os, const TraceEventLog& log,
                        const WindowSeries* series, const ExportMeta& meta);

/// Writes a metrics-registry snapshot as JSON (schema
/// "ahbpower.metrics.v1"), metrics in name order.
void write_metrics_json(std::ostream& os, const MetricsRegistry& registry);

/// Writes the registry in the Prometheus text exposition format
/// (version 0.0.4): one "# TYPE" line per metric, names with '.'
/// mapped to '_' (the naming contract guarantees the result is a legal
/// Prometheus identifier), histograms as cumulative _bucket/_sum/_count
/// series. Deterministic; safe to call while other threads update the
/// metrics (this is the GET /metrics render path).
void write_prometheus_text(std::ostream& os, const MetricsRegistry& registry);

/// @name Crash-safe file variants
/// Identical output to the stream writers above, but committed through
/// AtomicFile (atomic_file.hpp): a crash mid-export can never leave a
/// truncated artifact on disk. All throw std::runtime_error on I/O
/// failure.
///@{
void write_window_csv_file(const std::filesystem::path& path,
                           const WindowSeries& series, const ExportMeta& meta);
void write_window_json_file(const std::filesystem::path& path,
                            const WindowSeries& series, const ExportMeta& meta);
void write_chrome_trace_file(const std::filesystem::path& path,
                             const TraceEventLog& log,
                             const WindowSeries* series,
                             const ExportMeta& meta);
void write_metrics_json_file(const std::filesystem::path& path,
                             const MetricsRegistry& registry);
///@}

}  // namespace ahbp::telemetry
