#pragma once
// Fixed-window time-series accumulation -- the streaming generalization
// of the one-shot power report.
//
// A WindowSeries buckets per-tick contributions (a "tick" is whatever
// discrete axis the producer uses: bus cycles for the power estimator,
// femtoseconds for the legacy PowerTrace adapter) into fixed windows of
// `window_ticks`. Each closed window carries one accumulated value per
// named track; dividing by the window duration yields the power-vs-time
// series of the paper's Figures 3-5. Window semantics (boundary
// crossing, gap windows, the partial final window, span splitting) are
// specified in docs/OBSERVABILITY.md and locked down by
// tests/telemetry/test_window.cpp.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ahbp::telemetry {

/// Multi-track accumulator over fixed tick windows.
///
/// Windows close automatically when a recorded tick crosses a boundary;
/// skipped windows are emitted as zero-valued (gap) windows so the time
/// axis stays uniform. flush() closes the open partial window, with its
/// actual covered tick count. Conservation guarantee: the sum of a
/// track over windows() (plus any still-open accumulation) equals the
/// sum of everything recorded, exactly -- each contribution is added to
/// exactly one window (record) or split once (record_span).
class WindowSeries {
public:
  struct Config {
    std::uint64_t window_ticks = 0;    ///< window length; must be > 0
    std::vector<std::string> tracks;   ///< at least one track name
  };

  struct Window {
    std::uint64_t start_tick = 0;
    /// Ticks the window covers: window_ticks for interior and gap
    /// windows, possibly fewer for the flushed final window.
    std::uint64_t ticks = 0;
    std::vector<double> values;  ///< one accumulated value per track
  };

  explicit WindowSeries(Config cfg);

  /// Adds one tick's contribution (one value per track, in track
  /// order). Ticks must not decrease below the current window's start;
  /// stragglers inside the current window are folded into it.
  void record(std::uint64_t tick, std::span<const double> values);
  void record(std::uint64_t tick, std::initializer_list<double> values) {
    record(tick, std::span<const double>(values.begin(), values.size()));
  }

  /// Adds a contribution spread uniformly over [start_tick, start_tick +
  /// n_ticks): each overlapped window receives values * overlap/n_ticks.
  /// This is how O(1)-accounted repeated cycles (step_repeated, the TLM
  /// fast path) stay window-accurate across boundaries.
  void record_span(std::uint64_t start_tick, std::uint64_t n_ticks,
                   std::span<const double> values);
  void record_span(std::uint64_t start_tick, std::uint64_t n_ticks,
                   std::initializer_list<double> values) {
    record_span(start_tick, n_ticks,
                std::span<const double>(values.begin(), values.size()));
  }

  /// Closes the open window (if any ticks were recorded into it) with
  /// its actual covered tick count. Idempotent.
  void flush();

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  [[nodiscard]] const std::vector<std::string>& tracks() const {
    return cfg_.tracks;
  }
  [[nodiscard]] std::uint64_t window_ticks() const { return cfg_.window_ticks; }

  /// Per-track sums over closed windows plus the open accumulation --
  /// equal to the per-track sums of everything recorded.
  [[nodiscard]] std::vector<double> totals() const;

private:
  void check_width(std::span<const double> values) const;
  void record_scaled(std::uint64_t tick, std::span<const double> values,
                     double scale);
  void close_current();

  Config cfg_;
  std::int64_t current_index_ = -1;  ///< window index; -1 before first record
  std::uint64_t last_tick_ = 0;      ///< highest tick recorded so far
  bool open_ = false;                ///< acc_ holds unreported content
  std::vector<double> acc_;
  std::vector<Window> windows_;
};

}  // namespace ahbp::telemetry
