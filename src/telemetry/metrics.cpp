#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "sim/report.hpp"

namespace ahbp::telemetry {

Histogram::Histogram(const bool* enabled, std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw sim::SimError("Histogram: at least one bucket bound required");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw sim::SimError("Histogram: bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram::Histogram(const Histogram& o)
    : enabled_(o.enabled_), bounds_(o.bounds_) {
  const std::lock_guard<std::mutex> lock(o.mutex_);
  counts_ = o.counts_;
  count_ = o.count_;
  sum_ = o.sum_;
  min_ = o.min_;
  max_ = o.max_;
}

void Histogram::observe(double v) {
  if (!*enabled_) return;
  // Rejection policy: NaN/inf and negative observations are dropped --
  // every metric in the contract is a non-negative measurement, and a
  // poisoned sum()/min() would silently corrupt the exported snapshot.
  if (!std::isfinite(v) || v < 0.0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = count_ == 0 ? 0.0 : min_;
  s.max = count_ == 0 ? 0.0 : max_;
  return s;
}

std::vector<std::uint64_t> Histogram::counts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : max_;
}

bool MetricsRegistry::valid_name(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

void MetricsRegistry::check_name(const std::string& name) const {
  if (!valid_name(name)) {
    throw sim::SimError("MetricsRegistry: invalid metric name '" + name +
                        "' (want lowercase dot-separated [a-z0-9_] segments)");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  check_name(name);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw sim::SimError("MetricsRegistry: '" + name +
                        "' already registered as a different kind");
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, Counter(&enabled_)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_name(name);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw sim::SimError("MetricsRegistry: '" + name +
                        "' already registered as a different kind");
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, Gauge(&enabled_)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  check_name(name);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw sim::SimError("MetricsRegistry: '" + name +
                        "' already registered as a different kind");
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(&enabled_, std::move(bounds))).first;
  } else if (it->second.bounds() != bounds) {
    throw sim::SimError("MetricsRegistry: histogram '" + name +
                        "' re-registered with different bounds");
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace ahbp::telemetry
