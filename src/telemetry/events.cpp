#include "telemetry/events.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "telemetry/exporters.hpp"

namespace ahbp::telemetry {

namespace {

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// write(2) the whole buffer, retrying on EINTR/short writes.
bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

EventField field_str(std::string key, std::string_view value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kString;
  f.str = value;
  return f;
}

EventField field_u64(std::string key, std::uint64_t value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kU64;
  f.u64 = value;
  return f;
}

EventField field_f64(std::string key, double value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kF64;
  f.f64 = value;
  return f;
}

const EventField* Event::find(std::string_view key) const {
  for (const EventField& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

std::uint64_t Event::u64(std::string_view key, std::uint64_t fallback) const {
  const EventField* f = find(key);
  return f != nullptr && f->kind == EventField::Kind::kU64 ? f->u64 : fallback;
}

double Event::f64(std::string_view key, double fallback) const {
  const EventField* f = find(key);
  return f != nullptr && f->kind == EventField::Kind::kF64 ? f->f64 : fallback;
}

std::string_view Event::str(std::string_view key,
                            std::string_view fallback) const {
  const EventField* f = find(key);
  return f != nullptr && f->kind == EventField::Kind::kString
             ? std::string_view(f->str)
             : fallback;
}

std::string Event::render() const {
  std::string out = "{\"seq\": " + std::to_string(seq) +
                    ", \"t_mono_us\": " + std::to_string(t_mono_us) +
                    ", \"t_wall_us\": " + std::to_string(t_wall_us) +
                    ", \"type\": \"" + json_escape(type) + "\"";
  for (const EventField& f : fields) {
    out += ", \"" + json_escape(f.key) + "\": ";
    switch (f.kind) {
      case EventField::Kind::kString:
        out += "\"" + json_escape(f.str) + "\"";
        break;
      case EventField::Kind::kU64: out += std::to_string(f.u64); break;
      case EventField::Kind::kF64: out += json_number(f.f64); break;
    }
  }
  out += "}";
  return out;
}

EventLog::EventLog(Config cfg)
    : cfg_(std::move(cfg)), epoch_(std::chrono::steady_clock::now()) {
  if (!cfg_.enabled || cfg_.file.empty()) return;
  fd_ = ::open(cfg_.file.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    error_ = "EventLog: cannot open " + cfg_.file.string() + ": " +
             std::strerror(errno);
    return;
  }
  const std::string header = "{\"schema\": \"" + std::string(kEventsSchema) +
                             "\", \"config\": \"" +
                             hex16(cfg_.config_fingerprint) + "\"}\n";
  write_line(header);
}

EventLog::~EventLog() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void EventLog::write_line(const std::string& line) {
  if (fd_ < 0 || !error_.empty()) return;
  if (!write_all(fd_, line) || ::fsync(fd_) != 0) {
    error_ = "EventLog: write to " + cfg_.file.string() + " failed: " +
             std::strerror(errno);
    ::close(fd_);
    fd_ = -1;  // no point appending after a hole in the stream
  }
}

void EventLog::emit(std::string type, std::vector<EventField> fields) {
  if (!cfg_.enabled) return;
  Event ev;
  ev.type = std::move(type);
  ev.fields = std::move(fields);

  std::vector<Listener> listeners;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ev.seq = events_.size() + 1;
    ev.t_mono_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    ev.t_wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    events_.push_back(ev);
    write_line(ev.render() + "\n");
    listeners = listeners_;
  }
  // Outside the lock: a listener may emit() again (worker_stalled).
  for (const Listener& fn : listeners) fn(ev);
}

void EventLog::add_listener(Listener fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(std::move(fn));
}

std::uint64_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<Event> EventLog::events_since(std::uint64_t after_seq) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  if (after_seq < events_.size()) {
    out.assign(events_.begin() + static_cast<std::ptrdiff_t>(after_seq),
               events_.end());
  }
  return out;
}

std::string EventLog::render_since(std::uint64_t after_seq) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (std::size_t i = after_seq; i < events_.size(); ++i) {
    out += events_[i].render();
    out += '\n';
  }
  return out;
}

std::uint64_t EventLog::now_mono_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::string EventLog::error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

}  // namespace ahbp::telemetry
