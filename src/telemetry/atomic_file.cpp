#include "telemetry/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace ahbp::telemetry {

namespace {

[[nodiscard]] std::string errno_text(const char* op,
                                     const std::filesystem::path& p) {
  return std::string(op) + " " + p.string() + ": " + std::strerror(errno);
}

/// Writes all of `data` to `fd`, riding out short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// fsyncs the directory containing `path` so a just-committed rename
/// survives power loss. Best effort: some filesystems reject O_RDONLY
/// directory fsync; the rename is still atomic without it.
void sync_parent_dir(const std::filesystem::path& path) {
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool AtomicFile::write(const std::filesystem::path& path,
                       std::string_view contents, std::string* error) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      if (error) *error = "create_directories " + path.parent_path().string() +
                          ": " + ec.message();
      return false;
    }
  }
  // Same-directory temp file (rename(2) is only atomic within a
  // filesystem); pid-suffixed so concurrent writers never collide.
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = errno_text("open", tmp);
    return false;
  }
  const bool wrote = write_all(fd, contents);
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || !synced) {
    if (error) *error = errno_text(wrote ? "fsync" : "write", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = errno_text("rename", path);
    ::unlink(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

void AtomicFile::commit() {
  if (committed_) throw std::runtime_error("AtomicFile: double commit");
  std::string error;
  if (!write(path_, buf_.view(), &error)) {
    throw std::runtime_error("AtomicFile: " + error);
  }
  committed_ = true;
}

}  // namespace ahbp::telemetry
