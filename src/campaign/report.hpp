#pragma once
// Campaign-level observability: aggregate the outcomes of a sweep into
// one machine-readable JSON report.
//
// The report is deterministic by construction -- runs appear in spec
// order, per-run metric maps iterate in key order, and wall-clock
// timings are excluded from healthy output -- so two executions of a
// fully successful campaign (any thread count) produce byte-identical
// files. Structure is specified in docs/OBSERVABILITY.md (schema
// "ahbpower.campaign.v4"; v3 added the per-run "status" field and a
// top-level "degraded" block -- emitted only when at least one run did
// not complete, carrying per-run status / wall time / attempts / error;
// v4 adds the "crashed" status, the killing signal and the "resumed"
// provenance count inside that block, so all-ok reports -- including
// journal-resumed ones -- stay byte-identical to v3 modulo the schema
// string; see docs/ROBUSTNESS.md) and validated in CI by
// tools/telemetry_validate.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace ahbp::campaign {

/// Campaign-wide header fields for the JSON report.
struct CampaignReportMeta {
  std::string name = "campaign";  ///< campaign label
  std::uint64_t cycles = 0;       ///< per-run simulated cycles (0 = varies)
  unsigned threads = 1;           ///< pool width the campaign ran with
};

/// Writes the outcomes as one JSON document: header, one object per run
/// (index, name, ok, status, cycles, transfers, energies, optional
/// per-master attribution, free-form metrics), an aggregate block
/// (run/failure counts, energy sum / min / max over successful runs)
/// and -- only when some run did not complete -- a "degraded" block
/// listing every non-ok run with its status, wall time, attempts and
/// error text.
void write_campaign_json(std::ostream& os,
                         const std::vector<RunOutcome>& outcomes,
                         const CampaignReportMeta& meta);

/// As write_campaign_json, but committed to `path` through
/// telemetry::AtomicFile -- the on-disk report is never observable
/// half-written. Throws std::runtime_error on I/O failure.
void write_campaign_json_file(const std::filesystem::path& path,
                              const std::vector<RunOutcome>& outcomes,
                              const CampaignReportMeta& meta);

}  // namespace ahbp::campaign
