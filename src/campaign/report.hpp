#pragma once
// Campaign-level observability: aggregate the outcomes of a sweep into
// one machine-readable JSON report.
//
// The report is deterministic by construction -- runs appear in spec
// order, per-run metric maps iterate in key order, and wall-clock
// timings are excluded -- so two executions of the same campaign (any
// thread count) produce byte-identical files. Structure is specified in
// docs/OBSERVABILITY.md (schema "ahbpower.campaign.v2"; v2 adds the
// optional per-run "attribution" block and keeps every v1 field) and
// validated in CI by tools/telemetry_validate.

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace ahbp::campaign {

/// Campaign-wide header fields for the JSON report.
struct CampaignReportMeta {
  std::string name = "campaign";  ///< campaign label
  std::uint64_t cycles = 0;       ///< per-run simulated cycles (0 = varies)
  unsigned threads = 1;           ///< pool width the campaign ran with
};

/// Writes the outcomes as one JSON document: header, one object per run
/// (index, name, ok, cycles, transfers, energies, optional per-master
/// attribution, free-form metrics) and an aggregate block (run/failure
/// counts, energy sum / min / max over successful runs).
void write_campaign_json(std::ostream& os,
                         const std::vector<RunOutcome>& outcomes,
                         const CampaignReportMeta& meta);

}  // namespace ahbp::campaign
