#pragma once
// Live campaign progress: throughput, ETA and worker liveness.
//
// A ProgressTracker folds the telemetry event stream (events.hpp) plus
// the process-isolation heartbeat frames into a queryable Snapshot --
// the data model behind GET /status, the CLI --progress line and the
// stalled-shard diagnosis.
//
// Liveness semantics: in kProcess isolation every worker child writes a
// heartbeat frame onto its result pipe a few times per second (see
// campaign.hpp Config::heartbeat_interval_seconds); the parent reaper
// forwards each arrival via heartbeat(pid). A worker whose heartbeat
// age exceeds Config::stall_after_seconds is *stalled* -- genuinely
// wedged (SIGSTOP, livelock, swap death), as opposed to merely slow: a
// slow run keeps heartbeating. The first time a worker trips the
// threshold the tracker emits one "worker_stalled" event through the
// attached log (once per stall episode; a heartbeat arriving later
// clears the episode). In kThread isolation there are no heartbeats and
// no stall diagnosis -- in-flight ages are reported, stalled is never
// set.
//
// Thread-safety: on_event()/heartbeat()/snapshot() may be called from
// any thread (listeners run on emitting threads, the status server
// polls from its own). snapshot_at() takes an explicit monotonic "now"
// so tests exercise the age/ETA arithmetic deterministically.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace ahbp::campaign {

class ProgressTracker {
public:
  struct Config {
    /// Heartbeat age (seconds) past which an in-flight worker is
    /// flagged stalled (kProcess isolation only).
    double stall_after_seconds = 5.0;
  };

  /// One in-flight run as the parent sees it.
  struct Worker {
    long id = 0;            ///< worker pid (kProcess) or pool slot (kThread)
    std::uint64_t run = 0;  ///< spec index in flight
    std::string name;       ///< spec name
    double age_seconds = 0.0;            ///< since run_start
    double heartbeat_age_seconds = 0.0;  ///< since the last liveness signal
    bool stalled = false;
  };

  /// The /status data model ("ahbpower.status.v1" when rendered).
  struct Snapshot {
    std::uint64_t total = 0;      ///< specs submitted to the campaign
    std::uint64_t done = 0;       ///< reached any terminal status
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t crashed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t restored = 0;   ///< journal-resumed without executing
    std::uint64_t retries = 0;    ///< retry/respawn attempts observed
    std::uint64_t in_flight = 0;
    bool finished = false;
    double elapsed_seconds = 0.0;
    /// Executed completions per second of campaign wall time (0 until
    /// the first completion).
    double runs_per_sec = 0.0;
    /// Remaining work over runs_per_sec; -1 while unknown.
    double eta_seconds = -1.0;
    double stall_after_seconds = 0.0;
    std::vector<Worker> workers;  ///< in-flight runs, start order
    std::uint64_t stalled_workers = 0;
  };

  ProgressTracker() : ProgressTracker(Config{}) {}
  explicit ProgressTracker(Config cfg);

  /// Subscribes this tracker to `log` and adopts the log's monotonic
  /// clock as the time base (ages in snapshots line up with event
  /// t_mono_us). The log must outlive the tracker. worker_stalled
  /// events are emitted through the same log.
  void attach(telemetry::EventLog& log);

  /// Event ingestion -- normally via attach(), callable directly for
  /// deterministic replay (see tests/campaign/test_progress.cpp).
  void on_event(const telemetry::Event& ev);

  /// Liveness signal for a worker process (heartbeat frame or result
  /// bytes arriving on its pipe).
  void heartbeat(long worker_id);

  /// Snapshot at the current monotonic time.
  [[nodiscard]] Snapshot snapshot();

  /// Snapshot at an explicit monotonic microsecond timestamp (the
  /// attached log's time base). Emits worker_stalled for workers newly
  /// past the threshold.
  [[nodiscard]] Snapshot snapshot_at(std::uint64_t mono_now_us);

  /// Campaign config fingerprint rendered into status_json (16 hex
  /// digits; 0 until set).
  void set_fingerprint(std::uint64_t fp);

  /// Renders snapshot() as the "ahbpower.status.v1" JSON document.
  [[nodiscard]] std::string status_json();

  [[nodiscard]] const Config& config() const { return cfg_; }

private:
  struct InFlight {
    long worker = 0;
    std::uint64_t run = 0;
    std::string name;
    std::uint64_t started_us = 0;
    std::uint64_t last_heartbeat_us = 0;
    bool stall_reported = false;  ///< one worker_stalled per episode
  };

  [[nodiscard]] std::uint64_t now_us() const;

  Config cfg_;
  telemetry::EventLog* log_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;  ///< clock before attach()

  mutable std::mutex mutex_;
  std::uint64_t total_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t crashed_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t restored_ = 0;
  std::uint64_t retries_ = 0;
  bool finished_ = false;
  bool heartbeats_expected_ = false;  ///< kProcess isolation announced
  std::uint64_t started_us_ = 0;      ///< campaign_start timestamp
  std::uint64_t fingerprint_ = 0;
  std::vector<InFlight> in_flight_;
};

}  // namespace ahbp::campaign
