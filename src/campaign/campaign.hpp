#pragma once
// Multi-core simulation campaign runner.
//
// The paper's pay-off is scale: "in a small time it is possible to
// evaluate hundreds of different configurations and architectures"
// (Sec. 1). Every sweep in bench/ and examples/ runs dozens of
// *independent* simulations, so they parallelize perfectly -- the
// kernel is thread-hostable (one Kernel per thread, see
// sim/kernel.hpp), and a Campaign fans RunSpecs across a fixed pool of
// std::jthreads.
//
// Determinism contract: every spec builds, runs and tears down its
// whole simulation inside its `run` callable on whatever pool thread
// picks it up. Specs share nothing, per-run RNG is seeded from the
// spec, and results are returned ordered by spec index -- so a
// campaign's outcomes are bit-identical regardless of thread count or
// completion order (same seeds => same joules).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "power/power_fsm.hpp"
#include "sim/kernel.hpp"

namespace ahbp::telemetry {
class EventLog;  // telemetry/events.hpp
}

namespace ahbp::campaign {

class JournalWriter;     // journal.hpp
class ProgressTracker;   // progress.hpp

/// Per-run power/performance summary gathered from one simulation.
///
/// The fixed fields cover the quantities every sweep reports; `metrics`
/// carries workload-specific extras (an ordered map so rendering a
/// report iterates deterministically).
struct PowerReport {
  double total_energy = 0.0;       ///< [J]
  power::BlockEnergy blocks;       ///< per-sub-block split (Fig. 6 view)
  std::uint64_t cycles = 0;        ///< sampled bus cycles
  std::uint64_t transfers = 0;     ///< completed transfers (0 if not tracked)
  std::map<std::string, double> metrics;  ///< free-form extras

  /// One master's share of the run energy (transaction attribution).
  struct MasterAttribution {
    double energy_j = 0.0;     ///< joules attributed to this master
    std::uint64_t txns = 0;    ///< completed transactions
  };
  /// Per-master attribution (index = master id); empty when the run did
  /// not trace transactions. Rendered as the campaign.v2 report block.
  std::vector<MasterAttribution> attribution;
  /// Idle/handover energy owned by no transaction (the synthetic "bus"
  /// owner). attribution energies + bus_energy_j == total_energy.
  double bus_energy_j = 0.0;
};

/// One unit of campaign work: a factory that builds, runs and
/// summarizes a complete simulation on the calling thread.
///
/// The callable must construct its own sim::Kernel (and everything
/// attached to it) inside the call -- never capture live simulation
/// objects from another thread. Any RNG must be seeded from values
/// captured by the spec so reruns are reproducible.
struct RunSpec {
  std::string name;
  std::function<PowerReport()> run;
};

/// How one RunSpec ended.
enum class RunStatus : std::uint8_t {
  kOk,         ///< completed, report valid
  kFailed,     ///< threw (crash/assertion); error carries the context
  kTimedOut,   ///< killed by the per-run budget or deadlock diagnosis
  kCancelled,  ///< cooperative cancel (campaign deadline) or never started
  kCrashed,    ///< worker process died on a signal (kProcess isolation)
};

[[nodiscard]] const char* to_string(RunStatus s);

/// The result slot for one RunSpec, in submission order.
struct RunOutcome {
  std::size_t index = 0;  ///< position in the submitted spec vector
  std::string name;
  PowerReport report;     ///< valid only when ok
  bool ok = false;        ///< status == kOk (kept for existing callers)
  RunStatus status = RunStatus::kFailed;
  /// Context-prefixed exception text when !ok:
  /// "spec[<index>] <name>: <what>".
  std::string error;
  double wall_seconds = 0.0;  ///< measured even for degraded outcomes
  unsigned attempts = 0;      ///< executions consumed (retry accounting)
  /// Signal that killed the worker process (kCrashed only, else 0).
  int term_signal = 0;
  /// True when this outcome was restored from a write-ahead journal
  /// instead of executing (see journal.hpp); provenance only, never
  /// rendered into healthy report output.
  bool resumed = false;
};

/// A fixed thread pool that executes RunSpecs and gathers RunOutcomes.
///
/// Scheduling is a single atomic ticket counter (no work stealing, no
/// queues): each worker claims the next unclaimed spec index until none
/// remain. Each outcome is written to its own pre-allocated slot, so
/// the result vector is ordered by spec index independent of completion
/// order. threads() == 1 executes inline on the calling thread -- the
/// serial baseline path.
/// Where a RunSpec executes.
enum class Isolation : std::uint8_t {
  /// In-process, on a pool thread (fastest; a hard crash kills the
  /// whole campaign).
  kThread,
  /// In a forked child process per run: the child serializes its
  /// RunOutcome over a pipe, so a SIGSEGV / abort / OOM-kill becomes a
  /// kCrashed outcome with the signal recorded instead of sinking the
  /// sweep. Healthy outcomes round-trip bit-identically (raw IEEE-754
  /// bits on the wire). Children are forked from the calling thread
  /// only -- never from pool threads -- so the usual fork-in-
  /// multithreaded-process hazards are avoided.
  kProcess,
};

class Campaign {
public:
  struct Config {
    /// Worker count; 0 = one per hardware thread. In kProcess isolation
    /// this is the number of concurrently live worker processes.
    unsigned threads = 0;
    /// Per-RunSpec execution budget, imposed on each spec's internally
    /// constructed Kernel via the thread-default mechanism (see
    /// sim::Kernel::set_thread_defaults). Unlimited by default; a
    /// budget-killed run becomes a kTimedOut outcome instead of
    /// stalling its pool thread forever.
    sim::RunBudget run_budget{};
    /// Whole-campaign wall deadline in seconds (0 = none). Once
    /// exceeded, in-flight runs are cooperatively cancelled and
    /// unclaimed specs are marked kCancelled without running.
    double campaign_wall_seconds = 0.0;
    /// Re-execute a kFailed (crashed) spec once before recording the
    /// failure -- salvages transient crashes; deterministic failures
    /// fail twice and are recorded with attempts = 2. Timed-out runs
    /// are never retried (they would exhaust the budget again). In
    /// kProcess isolation a crashed worker is also respawned once.
    bool retry_transient = false;
    /// Crash containment mode (see Isolation).
    Isolation isolation = Isolation::kThread;
    /// Optional external cancel request (e.g. the CLI's SIGINT flag):
    /// once it reads true, in-flight runs are cooperatively cancelled
    /// (kThread) or killed (kProcess) and unclaimed specs are marked
    /// kCancelled. Must outlive run().
    const std::atomic<bool>* cancel = nullptr;
    /// kProcess only: how often each worker child writes a heartbeat
    /// frame (an empty-payload journal frame) onto its result pipe so
    /// the parent can tell a slow run from a hung worker. <= 0 disables
    /// heartbeats (the pre-heartbeat wire format).
    double heartbeat_interval_seconds = 0.1;
  };

  Campaign() : Campaign(Config{}) {}
  explicit Campaign(Config cfg);

  /// Resolved worker count (>= 1).
  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Durability hooks for one run() call (see journal.hpp).
  struct RunOptions {
    /// When set, every finished outcome (any status except kCancelled)
    /// is durably appended the moment it completes.
    JournalWriter* journal = nullptr;
    /// Previously journaled outcomes: entries whose index and name
    /// match a spec are restored (marked resumed) without executing.
    /// kCancelled entries are re-run.
    const std::vector<RunOutcome>* resume = nullptr;
    /// When set, a journal append failure (disk full, I/O error) is
    /// reported here instead of thrown, so the completed outcomes are
    /// still returned -- the run results are valid, only their
    /// durability is lost. Left empty on success. When null, run()
    /// throws std::runtime_error after all runs complete.
    std::string* journal_error = nullptr;
    /// When set, the campaign narrates its lifecycle into this log:
    /// campaign_start/finish, run_start/finish/retry/restored,
    /// watchdog_trip (parent wall-budget kill) and journal_append.
    /// Must outlive run(). Workers never emit (children run with no
    /// log); all emission happens in the parent process.
    telemetry::EventLog* events = nullptr;
    /// When set (kProcess isolation), receives a heartbeat() call for
    /// every liveness signal a worker child sends -- the feed for
    /// stalled-shard diagnosis. Pair it with `events` via
    /// ProgressTracker::attach for the full live view.
    ProgressTracker* progress = nullptr;
  };

  /// Runs every spec and returns outcomes ordered by spec index. A spec
  /// that throws, exhausts its budget or is cancelled is captured in
  /// its outcome (ok = false, status says how); the campaign itself
  /// always completes.
  [[nodiscard]] std::vector<RunOutcome> run(const std::vector<RunSpec>& specs) const;

  /// As above, with write-ahead journaling and/or resume.
  [[nodiscard]] std::vector<RunOutcome> run(const std::vector<RunSpec>& specs,
                                            const RunOptions& opts) const;

  /// The machine's hardware concurrency (>= 1 even when unknown).
  [[nodiscard]] static unsigned hardware_threads();

private:
  Config cfg_;
  unsigned threads_ = 1;
};

}  // namespace ahbp::campaign
