#pragma once
// Write-ahead journal for campaign runs (schema "ahbpower.journal.v1").
//
// Power sweeps are long-running batch jobs; a mid-campaign `kill -9`
// must not cost the completed runs. The journal makes every finished
// RunOutcome durable the moment it completes: an append-only file
// holding two ASCII header lines (the schema identifier and a
// `config=<16 hex digits>` campaign-configuration fingerprint)
// followed by binary frames, each
// `[u32 payload length][u64 FNV-1a checksum][payload]`, written with
// write(2) + fsync(2) under a mutex so concurrent pool workers append
// whole frames in completion order.
//
// Durability contract:
//  - append() returns only after the frame is fsynced -- a subsequent
//    hard kill cannot lose it. (The file's directory entry is also
//    fsynced at creation, so the journal itself survives power loss.)
//  - Doubles are serialized as raw IEEE-754 bits, so a restored outcome
//    is bit-identical to the original and a resumed campaign report is
//    byte-identical to an uninterrupted one (docs/ROBUSTNESS.md).
//  - load_journal() tolerates a torn tail (the frame being written when
//    the process died) by returning every complete frame before it;
//    a corrupt *complete* frame (checksum mismatch) is an error.
//  - Reopening an existing journal truncates a torn tail before the
//    first new append, so resumed appends never land after a partial
//    frame (which would otherwise corrupt every later frame).
//  - The config fingerprint lets a resume refuse a journal written by
//    a campaign with different parameters instead of silently mixing
//    stale outcomes into the new report.
//
// Resume: pass the loaded outcomes to Campaign::run via
// RunOptions::resume -- journaled runs are restored without executing,
// and only newly executed runs are appended again.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"

namespace ahbp::campaign {

/// The journal's on-disk schema identifier (also its first header line).
inline constexpr std::string_view kJournalSchema = "ahbpower.journal.v1";

/// The second header line: "config=" + 16 lowercase hex digits + "\n".
inline constexpr std::string_view kJournalConfigPrefix = "config=";

/// Total header size in bytes (schema line + config line); frames start
/// at this offset.
inline constexpr std::size_t kJournalHeaderBytes =
    kJournalSchema.size() + 1 + kJournalConfigPrefix.size() + 16 + 1;

/// @name Outcome wire format (shared by the journal and the process-
/// isolation result pipe)
///@{
/// Serializes one outcome; doubles as raw bits, strings length-prefixed.
[[nodiscard]] std::string encode_outcome(const RunOutcome& out);
/// Inverse of encode_outcome. Returns false on a malformed payload.
[[nodiscard]] bool decode_outcome(std::string_view payload, RunOutcome& out);
/// Wraps a payload in the journal frame: u32 length, u64 FNV-1a
/// checksum, payload bytes (all little-endian).
[[nodiscard]] std::string frame_payload(std::string_view payload);
/// FNV-1a 64-bit checksum of a byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);
///@}

/// Append-only durable writer. Creates the file (and the header) when
/// absent; appends to an existing journal, so an interrupted campaign's
/// writer picks up where the previous process stopped -- after
/// truncating any torn tail left by the previous process dying
/// mid-append. Thread-safe.
class JournalWriter {
 public:
  /// Opens (or creates) the journal. `config_fingerprint` identifies
  /// the campaign configuration (see fnv1a64): a fresh journal records
  /// it in the header, and reopening an existing journal throws when
  /// the recorded fingerprint differs (0 = skip the check). Also throws
  /// std::runtime_error when the file cannot be opened, has a foreign
  /// header, or holds a corrupt complete frame.
  explicit JournalWriter(const std::filesystem::path& file,
                         std::uint64_t config_fingerprint = 0);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Durably appends one finished outcome (frame + fsync). Throws
  /// std::runtime_error on I/O failure.
  void append(const RunOutcome& out);

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::mutex mutex_;
  int fd_ = -1;
};

/// What load_journal recovered.
struct JournalLoadResult {
  std::vector<RunOutcome> outcomes;  ///< complete frames, file order
  bool torn_tail = false;  ///< file ended mid-frame (tolerated)
  /// Campaign-configuration fingerprint recorded in the header.
  std::uint64_t config_fingerprint = 0;
  /// Byte offset of the end of the last valid frame (header included):
  /// the length a writer must truncate the file to before appending
  /// after a torn tail.
  std::size_t valid_bytes = 0;
  /// Empty when the journal is readable; otherwise why loading stopped
  /// (missing header, corrupt complete frame, undecodable payload).
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Reads a journal back. A missing file yields ok() with no outcomes
/// (a fresh campaign); a torn tail yields the recovered prefix.
[[nodiscard]] JournalLoadResult load_journal(
    const std::filesystem::path& file);

}  // namespace ahbp::campaign
