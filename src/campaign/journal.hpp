#pragma once
// Write-ahead journal for campaign runs (schema "ahbpower.journal.v1").
//
// Power sweeps are long-running batch jobs; a mid-campaign `kill -9`
// must not cost the completed runs. The journal makes every finished
// RunOutcome durable the moment it completes: an append-only file
// holding a one-line ASCII header followed by binary frames, each
// `[u32 payload length][u64 FNV-1a checksum][payload]`, written with
// write(2) + fsync(2) under a mutex so concurrent pool workers append
// whole frames in completion order.
//
// Durability contract:
//  - append() returns only after the frame is fsynced -- a subsequent
//    hard kill cannot lose it.
//  - Doubles are serialized as raw IEEE-754 bits, so a restored outcome
//    is bit-identical to the original and a resumed campaign report is
//    byte-identical to an uninterrupted one (docs/ROBUSTNESS.md).
//  - load_journal() tolerates a torn tail (the frame being written when
//    the process died) by returning every complete frame before it;
//    a corrupt *complete* frame (checksum mismatch) is an error.
//
// Resume: pass the loaded outcomes to Campaign::run via
// RunOptions::resume -- journaled runs are restored without executing,
// and only newly executed runs are appended again.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"

namespace ahbp::campaign {

/// The journal's on-disk schema identifier (also its header line).
inline constexpr std::string_view kJournalSchema = "ahbpower.journal.v1";

/// @name Outcome wire format (shared by the journal and the process-
/// isolation result pipe)
///@{
/// Serializes one outcome; doubles as raw bits, strings length-prefixed.
[[nodiscard]] std::string encode_outcome(const RunOutcome& out);
/// Inverse of encode_outcome. Returns false on a malformed payload.
[[nodiscard]] bool decode_outcome(std::string_view payload, RunOutcome& out);
/// Wraps a payload in the journal frame: u32 length, u64 FNV-1a
/// checksum, payload bytes (all little-endian).
[[nodiscard]] std::string frame_payload(std::string_view payload);
/// FNV-1a 64-bit checksum of a byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);
///@}

/// Append-only durable writer. Creates the file (and the header) when
/// absent; appends to an existing journal, so an interrupted campaign's
/// writer picks up where the previous process stopped. Thread-safe.
class JournalWriter {
 public:
  /// Opens (or creates) the journal. Throws std::runtime_error when the
  /// file cannot be opened or an existing file has a foreign header.
  explicit JournalWriter(const std::filesystem::path& file);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Durably appends one finished outcome (frame + fsync). Throws
  /// std::runtime_error on I/O failure.
  void append(const RunOutcome& out);

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::mutex mutex_;
  int fd_ = -1;
};

/// What load_journal recovered.
struct JournalLoadResult {
  std::vector<RunOutcome> outcomes;  ///< complete frames, file order
  bool torn_tail = false;  ///< file ended mid-frame (tolerated)
  /// Empty when the journal is readable; otherwise why loading stopped
  /// (missing header, corrupt complete frame, undecodable payload).
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Reads a journal back. A missing file yields ok() with no outcomes
/// (a fresh campaign); a torn tail yields the recovered prefix.
[[nodiscard]] JournalLoadResult load_journal(
    const std::filesystem::path& file);

}  // namespace ahbp::campaign
