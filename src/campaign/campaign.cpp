#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace ahbp::campaign {

namespace {

/// Executes spec `i` into its pre-allocated outcome slot. Runs on a
/// pool thread; everything it touches is private to the slot.
void execute(const RunSpec& spec, std::size_t i, RunOutcome& out) {
  out.index = i;
  out.name = spec.name;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    out.report = spec.run();
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  } catch (...) {
    out.ok = false;
    out.error = "unknown exception";
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

Campaign::Campaign(Config cfg)
    : threads_(cfg.threads != 0 ? cfg.threads : hardware_threads()) {}

unsigned Campaign::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

std::vector<RunOutcome> Campaign::run(const std::vector<RunSpec>& specs) const {
  std::vector<RunOutcome> outcomes(specs.size());
  if (specs.empty()) return outcomes;

  if (threads_ <= 1 || specs.size() == 1) {
    // Serial baseline: inline on the calling thread. Note the caller's
    // own Kernel (if any) must not be alive -- each spec constructs one.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      execute(specs[i], i, outcomes[i]);
    }
    return outcomes;
  }

  // Ticket scheduling: workers claim the next spec index until the
  // counter runs past the end. Outcome slots are disjoint, so no
  // synchronization beyond the counter is needed.
  std::atomic<std::size_t> next{0};
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, specs.size()));
  {
    std::vector<std::jthread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= specs.size()) return;
          execute(specs[i], i, outcomes[i]);
        }
      });
    }
  }  // jthread joins here; all slots are written before we return.
  return outcomes;
}

}  // namespace ahbp::campaign
