#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/journal.hpp"
#include "campaign/progress.hpp"
#include "telemetry/events.hpp"

namespace ahbp::campaign {

namespace {

using Clock = std::chrono::steady_clock;

using telemetry::field_f64;
using telemetry::field_str;
using telemetry::field_u64;

/// Installs the campaign's per-run kernel defaults on the current
/// thread for the duration of a scope (restored to unlimited on exit).
struct ThreadDefaultsGuard {
  ThreadDefaultsGuard(const sim::RunBudget& budget,
                      const std::atomic<bool>* cancel) {
    sim::Kernel::set_thread_defaults(budget, cancel);
  }
  ~ThreadDefaultsGuard() { sim::Kernel::clear_thread_defaults(); }
  ThreadDefaultsGuard(const ThreadDefaultsGuard&) = delete;
  ThreadDefaultsGuard& operator=(const ThreadDefaultsGuard&) = delete;
};

/// Runs `spec.run()` once, classifying the ending. Returns the status.
RunStatus attempt(const RunSpec& spec, std::size_t i, RunOutcome& out) {
  try {
    out.report = spec.run();
    out.error.clear();
    return RunStatus::kOk;
  } catch (const sim::RunCancelledError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kCancelled;
  } catch (const sim::BudgetExceededError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kTimedOut;
  } catch (const sim::DeadlockError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kTimedOut;
  } catch (const std::exception& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kFailed;
  } catch (...) {
    out.error =
        "spec[" + std::to_string(i) + "] " + spec.name + ": unknown exception";
    return RunStatus::kFailed;
  }
}

/// Executes spec `i` into its pre-allocated outcome slot. Runs on a
/// pool thread (or inside a forked worker); everything it touches is
/// private to the slot. `events` narrates the in-process retry (null in
/// forked children -- the parent owns the log).
void execute(const RunSpec& spec, std::size_t i, RunOutcome& out,
             bool retry_transient, telemetry::EventLog* events) {
  out.index = i;
  out.name = spec.name;
  const auto t0 = Clock::now();
  out.status = attempt(spec, i, out);
  out.attempts = 1;
  if (out.status == RunStatus::kFailed && retry_transient) {
    if (events != nullptr) {
      events->emit("run_retry",
                   {field_u64("run", i), field_str("name", spec.name)});
    }
    // One more try: a transient crash (resource blip, rare race in the
    // workload itself) completes now; a deterministic one fails again.
    out.status = attempt(spec, i, out);
    out.attempts = 2;
  }
  out.ok = out.status == RunStatus::kOk;
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One run_finish event per terminal outcome (any status, including
/// cancelled-without-starting: attempts stays 0 there).
void emit_run_finish(telemetry::EventLog* events, const RunOutcome& out) {
  if (events == nullptr) return;
  events->emit("run_finish",
               {field_u64("run", out.index), field_str("name", out.name),
                field_str("status", to_string(out.status)),
                field_f64("wall_seconds", out.wall_seconds),
                field_u64("attempts", out.attempts)});
}

/// Marks a spec that was never started because the campaign was
/// cancelled (wall deadline or external cancel) before a worker
/// claimed it.
void mark_unstarted(const RunSpec& spec, std::size_t i, RunOutcome& out) {
  out.index = i;
  out.name = spec.name;
  out.ok = false;
  out.status = RunStatus::kCancelled;
  out.attempts = 0;
  out.wall_seconds = 0.0;
  out.error = "spec[" + std::to_string(i) + "] " + spec.name +
              ": not started (campaign cancelled or deadline exceeded)";
}

/// Stable names for the signals worker processes realistically die on
/// (strsignal() is locale-dependent; reports must be deterministic).
const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return "signal";
  }
}

/// Appends `out` to the journal, remembering the first failure instead
/// of throwing across a pool thread.
class JournalSink {
 public:
  JournalSink(JournalWriter* writer, telemetry::EventLog* events)
      : writer_(writer), events_(events) {}

  void record(const RunOutcome& out) {
    // Cancelled specs never ran; leaving them out of the journal is
    // what makes --resume re-execute them. The append runs under the
    // lock: pool threads race record() against the catch path's
    // writer_ reset otherwise. Appends were already serialized by the
    // writer's own mutex, so this costs no extra parallelism. The
    // journal_append event is emitted after the lock is released --
    // the event log has its own mutex and listeners of its own.
    bool appended = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (writer_ == nullptr || out.status == RunStatus::kCancelled) return;
      try {
        writer_->append(out);
        appended = true;
      } catch (const std::exception& e) {
        if (error_.empty()) error_ = e.what();
        writer_ = nullptr;  // no point journaling further
      }
    }
    if (appended && events_ != nullptr) {
      events_->emit("journal_append", {field_u64("run", out.index)});
    }
  }

  /// The first deferred journaling failure, or empty.
  [[nodiscard]] std::string error() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

  /// Rethrows a deferred journaling failure on the caller's thread.
  void rethrow() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_.empty()) throw std::runtime_error(error_);
  }

 private:
  JournalWriter* writer_;
  telemetry::EventLog* events_;
  std::mutex mutex_;
  std::string error_;
};

// --- process isolation ------------------------------------------------------

/// One live forked worker and its result pipe.
struct ChildProc {
  pid_t pid = -1;
  int fd = -1;  ///< read end of the result pipe
  std::size_t index = 0;
  Clock::time_point start{};
  std::string buf;       ///< frame bytes received so far
  unsigned spawns = 1;   ///< process-level attempts (crash respawn)
  bool killed_timeout = false;
  bool killed_cancel = false;
};

/// Decodes the child's framed RunOutcome. Returns false when the frame
/// is incomplete or fails its checksum -- the child died mid-write.
bool parse_result_frame(const std::string& buf, RunOutcome& out) {
  if (buf.size() < 12) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
           << (8 * i);
  }
  std::uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(buf[4 + i]))
        << (8 * i);
  }
  if (buf.size() != 12u + len) return false;
  const std::string_view payload(buf.data() + 12, len);
  if (fnv1a64(payload) != checksum) return false;
  return decode_outcome(payload, out);
}

/// Removes leading heartbeat frames (empty-payload frames, 12 bytes
/// each) from a child's receive buffer so parse_result_frame only ever
/// sees the result frame. Returns how many heartbeats were consumed.
/// A result frame always has a nonzero payload, so len == 0 plus the
/// empty-string checksum identifies a heartbeat unambiguously.
std::size_t strip_heartbeats(std::string& buf) {
  const std::uint64_t empty_checksum = fnv1a64(std::string_view{});
  std::size_t stripped = 0;
  while (buf.size() >= 12) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    if (len != 0) break;
    std::uint64_t checksum = 0;
    for (int i = 0; i < 8; ++i) {
      checksum |=
          static_cast<std::uint64_t>(static_cast<unsigned char>(buf[4 + i]))
          << (8 * i);
    }
    if (checksum != empty_checksum) break;  // torn garbage, not a beat
    buf.erase(0, 12);
    ++stripped;
  }
  return stripped;
}

/// Forks one worker for spec `i`. The child executes the spec with the
/// campaign's run budget installed, streams its framed outcome through
/// the pipe and _exits without running atexit handlers (the parent's
/// buffered state must not be flushed twice).
///
/// While the spec runs, a child-side heartbeat thread writes one
/// empty-payload frame per `heartbeat_interval` onto the pipe -- the
/// liveness signal behind stalled-worker diagnosis. SIGSTOP (or a
/// genuine wedge) freezes the whole child including that thread, so
/// silence really does mean "not making progress". The thread is
/// joined before the result frame is written: heartbeats and the
/// result never interleave, and each 12-byte beat is well under
/// PIPE_BUF so beats are atomic on the wire.
ChildProc spawn_worker(const RunSpec& spec, std::size_t i,
                       const sim::RunBudget& budget, bool retry_transient,
                       double heartbeat_interval) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error("campaign: pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("campaign: fork() failed");
  }
  if (pid == 0) {
    ::close(fds[0]);
    RunOutcome out;
    std::atomic<bool> run_done{false};
    std::thread beater;
    if (heartbeat_interval > 0.0) {
      const int pipe_fd = fds[1];
      beater = std::thread([&run_done, pipe_fd, heartbeat_interval] {
        const std::string beat = frame_payload(std::string_view{});
        const auto interval = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(heartbeat_interval));
        auto next_beat = Clock::now() + interval;
        while (!run_done.load(std::memory_order_acquire)) {
          // Short sleep slices so join() after the run is prompt.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          if (Clock::now() < next_beat) continue;
          next_beat = Clock::now() + interval;
          std::string_view rest = beat;
          while (!rest.empty()) {
            const ssize_t n = ::write(pipe_fd, rest.data(), rest.size());
            if (n < 0) {
              if (errno == EINTR) continue;
              return;  // parent went away; nobody is listening
            }
            rest.remove_prefix(static_cast<std::size_t>(n));
          }
        }
      });
    }
    {
      ThreadDefaultsGuard guard(budget, nullptr);
      execute(spec, i, out, retry_transient, nullptr);
    }
    run_done.store(true, std::memory_order_release);
    if (beater.joinable()) beater.join();
    const std::string frame = frame_payload(encode_outcome(out));
    std::string_view rest = frame;
    while (!rest.empty()) {
      const ssize_t n = ::write(fds[1], rest.data(), rest.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        ::_exit(1);
      }
      rest.remove_prefix(static_cast<std::size_t>(n));
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  ChildProc child;
  child.pid = pid;
  child.fd = fds[0];
  child.index = i;
  child.start = Clock::now();
  return child;
}

void run_process_pool(const Campaign::Config& cfg, unsigned threads,
                      const std::vector<RunSpec>& specs,
                      std::vector<RunOutcome>& outcomes,
                      const std::vector<char>& restored, JournalSink& journal,
                      const std::function<bool()>& cancel_requested,
                      telemetry::EventLog* events, ProgressTracker* progress);

}  // namespace

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimedOut: return "timed_out";
    case RunStatus::kCancelled: return "cancelled";
    case RunStatus::kCrashed: return "crashed";
  }
  return "unknown";
}

Campaign::Campaign(Config cfg)
    : cfg_(cfg), threads_(cfg.threads != 0 ? cfg.threads : hardware_threads()) {}

unsigned Campaign::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

std::vector<RunOutcome> Campaign::run(const std::vector<RunSpec>& specs) const {
  return run(specs, RunOptions{});
}

std::vector<RunOutcome> Campaign::run(const std::vector<RunSpec>& specs,
                                      const RunOptions& opts) const {
  std::vector<RunOutcome> outcomes(specs.size());
  if (specs.empty()) return outcomes;

  // Restore journaled outcomes first: a slot that matches a journal
  // entry by index and name is already done and must not execute again.
  // Cancelled entries re-run (they never produced a result).
  std::vector<char> restored(specs.size(), 0);
  if (opts.resume != nullptr) {
    for (const RunOutcome& o : *opts.resume) {
      if (o.index >= specs.size() || o.name != specs[o.index].name) continue;
      if (o.status == RunStatus::kCancelled) continue;
      outcomes[o.index] = o;
      outcomes[o.index].resumed = true;
      restored[o.index] = 1;
    }
  }

  telemetry::EventLog* const events = opts.events;
  if (events != nullptr) {
    events->emit(
        "campaign_start",
        {field_u64("runs", specs.size()), field_u64("threads", threads_),
         field_str("isolation", cfg_.isolation == Isolation::kProcess
                                    ? "process"
                                    : "thread")});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (restored[i]) {
        events->emit("run_restored",
                     {field_u64("run", i), field_str("name", specs[i].name)});
      }
    }
  }

  JournalSink journal(opts.journal, events);
  // A journaling failure never invalidates the outcomes themselves;
  // callers that pass journal_error get them back with the error on
  // the side instead of losing the whole sweep to a throw.
  const auto finish_journal = [&journal, &opts] {
    if (opts.journal_error != nullptr) {
      *opts.journal_error = journal.error();
      return;
    }
    journal.rethrow();
  };

  // The closing tally: executed terminal statuses plus the restored
  // count (restored slots emitted run_restored, never run_finish, so
  // ok+failed+crashed+timed_out+cancelled+restored == runs).
  const auto emit_campaign_finish = [&outcomes, events] {
    if (events == nullptr) return;
    std::uint64_t ok = 0, failed = 0, crashed = 0, timed_out = 0,
                  cancelled = 0, restored_n = 0;
    for (const RunOutcome& o : outcomes) {
      if (o.resumed) {
        ++restored_n;
        continue;
      }
      switch (o.status) {
        case RunStatus::kOk: ++ok; break;
        case RunStatus::kFailed: ++failed; break;
        case RunStatus::kCrashed: ++crashed; break;
        case RunStatus::kTimedOut: ++timed_out; break;
        case RunStatus::kCancelled: ++cancelled; break;
      }
    }
    events->emit("campaign_finish",
                 {field_u64("ok", ok), field_u64("failed", failed),
                  field_u64("crashed", crashed),
                  field_u64("timed_out", timed_out),
                  field_u64("cancelled", cancelled),
                  field_u64("restored", restored_n)});
  };

  // Shared cooperative cancel flag: set when the campaign wall deadline
  // passes or the external cancel request fires; every in-flight kernel
  // polls it once per time advance.
  std::atomic<bool> cancel{false};
  const auto start = Clock::now();
  const bool deadline_armed = cfg_.campaign_wall_seconds > 0.0;
  auto cancel_requested = [&] {
    if (cancel.load(std::memory_order_relaxed)) return true;
    if (cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      cancel.store(true, std::memory_order_relaxed);
      return true;
    }
    if (!deadline_armed) return false;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= cfg_.campaign_wall_seconds) {
      cancel.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  if (cfg_.isolation == Isolation::kProcess) {
    run_process_pool(cfg_, threads_, specs, outcomes, restored, journal,
                     cancel_requested, events, opts.progress);
    emit_campaign_finish();
    finish_journal();
    return outcomes;
  }

  // Watcher: folds the deadline and the external cancel request into
  // the shared flag *while runs are in flight* -- without it the flag
  // would only be (re)checked between claims.
  std::jthread watcher;
  if (deadline_armed || cfg_.cancel != nullptr) {
    watcher = std::jthread([&cancel_requested](const std::stop_token& st) {
      while (!st.stop_requested()) {
        if (cancel_requested()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  if (threads_ <= 1 || specs.size() == 1) {
    // Serial baseline: inline on the calling thread. Note the caller's
    // own Kernel (if any) must not be alive -- each spec constructs one.
    ThreadDefaultsGuard guard(cfg_.run_budget, &cancel);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (restored[i]) continue;
      if (cancel_requested()) {
        mark_unstarted(specs[i], i, outcomes[i]);
        emit_run_finish(events, outcomes[i]);
        continue;
      }
      if (events != nullptr) {
        events->emit("run_start",
                     {field_u64("run", i), field_str("name", specs[i].name),
                      field_u64("worker", 0)});
      }
      execute(specs[i], i, outcomes[i], cfg_.retry_transient, events);
      journal.record(outcomes[i]);
      emit_run_finish(events, outcomes[i]);
    }
    emit_campaign_finish();
    finish_journal();
    return outcomes;
  }

  // Ticket scheduling: workers claim the next spec index until the
  // counter runs past the end. Outcome slots are disjoint, so no
  // synchronization beyond the counter is needed.
  std::atomic<std::size_t> next{0};
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, specs.size()));
  {
    std::vector<std::jthread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      pool.emplace_back([&, w] {
        ThreadDefaultsGuard guard(cfg_.run_budget, &cancel);
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= specs.size()) return;
          if (restored[i]) continue;
          if (cancel_requested()) {
            mark_unstarted(specs[i], i, outcomes[i]);
            emit_run_finish(events, outcomes[i]);
            continue;
          }
          if (events != nullptr) {
            events->emit(
                "run_start",
                {field_u64("run", i), field_str("name", specs[i].name),
                 field_u64("worker", w)});
          }
          execute(specs[i], i, outcomes[i], cfg_.retry_transient, events);
          journal.record(outcomes[i]);
          emit_run_finish(events, outcomes[i]);
        }
      });
    }
  }  // jthread joins here; all slots are written before we return.
  emit_campaign_finish();
  finish_journal();
  return outcomes;
}

namespace {

/// The kProcess scheduler: forks up to `threads` concurrently live
/// workers *from the calling thread only* and reaps them through their
/// result pipes. No pool threads exist in this mode, so fork() never
/// races a multithreaded parent.
void run_process_pool(const Campaign::Config& cfg, unsigned threads,
                      const std::vector<RunSpec>& specs,
                      std::vector<RunOutcome>& outcomes,
                      const std::vector<char>& restored, JournalSink& journal,
                      const std::function<bool()>& cancel_requested,
                      telemetry::EventLog* events, ProgressTracker* progress) {
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, specs.size()));
  std::vector<ChildProc> active;
  active.reserve(n_workers);
  std::size_t next = 0;

  // Finishes one child: reap it, classify the ending, fill the slot.
  // Returns false when the child should be respawned instead (transient
  // crash salvage).
  auto finalize = [&](ChildProc& child) -> bool {
    int status = 0;
    while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(child.fd);
    const double wall =
        std::chrono::duration<double>(Clock::now() - child.start).count();
    RunOutcome& out = outcomes[child.index];
    const RunSpec& spec = specs[child.index];

    RunOutcome received;
    const bool got_result = WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                            parse_result_frame(child.buf, received);
    if (got_result && !child.killed_cancel) {
      out = std::move(received);
      // The child measured its own wall time; surface the spawn count
      // so a salvaged transient crash is visible in `attempts`.
      out.attempts += child.spawns - 1;
      journal.record(out);
      return true;
    }
    out.index = child.index;
    out.name = spec.name;
    out.ok = false;
    out.wall_seconds = wall;
    out.attempts = child.spawns;
    if (child.killed_cancel) {
      out.status = RunStatus::kCancelled;
      out.error = "spec[" + std::to_string(child.index) + "] " + spec.name +
                  ": cancelled (campaign abort killed the worker)";
      return true;  // never journaled (kCancelled), never respawned
    }
    if (child.killed_timeout) {
      out.status = RunStatus::kTimedOut;
      out.error = "spec[" + std::to_string(child.index) + "] " + spec.name +
                  ": exceeded the per-run wall budget; worker killed";
      journal.record(out);
      return true;
    }
    // Hard death: signal, nonzero exit, or a torn result frame.
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    if (cfg.retry_transient && child.spawns == 1) return false;
    out.status = RunStatus::kCrashed;
    out.term_signal = sig;
    if (sig != 0) {
      out.error = "spec[" + std::to_string(child.index) + "] " + spec.name +
                  ": worker crashed with signal " + std::to_string(sig) +
                  " (" + signal_name(sig) + ")";
    } else {
      out.error = "spec[" + std::to_string(child.index) + "] " + spec.name +
                  ": worker exited without a result (exit status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1) +
                  ")";
    }
    journal.record(out);
    return true;
  };

  while (next < specs.size() || !active.empty()) {
    const bool cancelled = cancel_requested();

    // Claim and spawn until the worker slots are full.
    while (!cancelled && active.size() < n_workers && next < specs.size()) {
      const std::size_t i = next++;
      if (restored[i]) continue;
      active.push_back(spawn_worker(specs[i], i, cfg.run_budget,
                                    cfg.retry_transient,
                                    cfg.heartbeat_interval_seconds));
      if (events != nullptr) {
        events->emit(
            "run_start",
            {field_u64("run", i), field_str("name", specs[i].name),
             field_u64("worker",
                       static_cast<std::uint64_t>(active.back().pid))});
      }
    }
    if (cancelled) {
      while (next < specs.size()) {
        const std::size_t i = next++;
        if (restored[i]) continue;
        mark_unstarted(specs[i], i, outcomes[i]);
        emit_run_finish(events, outcomes[i]);
      }
      for (ChildProc& child : active) {
        if (!child.killed_cancel) {
          child.killed_cancel = true;
          ::kill(child.pid, SIGKILL);
        }
      }
    }
    if (active.empty()) continue;

    // Per-run wall budget: the parent enforces it with SIGKILL, which
    // is what makes even a hung (non-cooperative) worker a kTimedOut
    // outcome instead of a stuck campaign.
    if (cfg.run_budget.max_wall_seconds > 0.0) {
      for (ChildProc& child : active) {
        if (child.killed_timeout || child.killed_cancel) continue;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - child.start).count();
        if (elapsed > cfg.run_budget.max_wall_seconds) {
          child.killed_timeout = true;
          ::kill(child.pid, SIGKILL);
          if (events != nullptr) {
            events->emit(
                "watchdog_trip",
                {field_u64("run", child.index),
                 field_u64("worker", static_cast<std::uint64_t>(child.pid)),
                 field_f64("wall_seconds", elapsed)});
          }
        }
      }
    }

    std::vector<pollfd> fds;
    fds.reserve(active.size());
    for (const ChildProc& child : active) {
      fds.push_back(pollfd{child.fd, POLLIN, 0});
    }
    const int n_ready = ::poll(fds.data(), fds.size(), 20);
    if (n_ready <= 0) continue;  // timeout / EINTR: re-check budgets

    for (std::size_t k = active.size(); k-- > 0;) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(active[k].fd, chunk, sizeof chunk);
      if (n > 0) {
        active[k].buf.append(chunk, static_cast<std::size_t>(n));
        // Heartbeat frames are liveness, not payload: peel them off so
        // parse_result_frame sees exactly the result frame. Any bytes
        // arriving at all also prove the child is alive.
        strip_heartbeats(active[k].buf);
        if (progress != nullptr) {
          progress->heartbeat(static_cast<long>(active[k].pid));
        }
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      // EOF: the child is done (or dead). Finalize or respawn.
      ChildProc child = std::move(active[k]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
      if (!finalize(child)) {
        ChildProc again = spawn_worker(specs[child.index], child.index,
                                       cfg.run_budget, cfg.retry_transient,
                                       cfg.heartbeat_interval_seconds);
        again.spawns = child.spawns + 1;
        if (events != nullptr) {
          events->emit(
              "run_retry",
              {field_u64("run", child.index),
               field_str("name", specs[child.index].name),
               field_u64("worker", static_cast<std::uint64_t>(again.pid))});
        }
        active.push_back(std::move(again));
      } else {
        emit_run_finish(events, outcomes[child.index]);
      }
    }
  }
}

}  // namespace

}  // namespace ahbp::campaign
