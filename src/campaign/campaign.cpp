#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace ahbp::campaign {

namespace {

using Clock = std::chrono::steady_clock;

/// Installs the campaign's per-run kernel defaults on the current
/// thread for the duration of a scope (restored to unlimited on exit).
struct ThreadDefaultsGuard {
  ThreadDefaultsGuard(const sim::RunBudget& budget,
                      const std::atomic<bool>* cancel) {
    sim::Kernel::set_thread_defaults(budget, cancel);
  }
  ~ThreadDefaultsGuard() { sim::Kernel::clear_thread_defaults(); }
  ThreadDefaultsGuard(const ThreadDefaultsGuard&) = delete;
  ThreadDefaultsGuard& operator=(const ThreadDefaultsGuard&) = delete;
};

/// Runs `spec.run()` once, classifying the ending. Returns the status.
RunStatus attempt(const RunSpec& spec, std::size_t i, RunOutcome& out) {
  try {
    out.report = spec.run();
    out.error.clear();
    return RunStatus::kOk;
  } catch (const sim::RunCancelledError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kCancelled;
  } catch (const sim::BudgetExceededError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kTimedOut;
  } catch (const sim::DeadlockError& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kTimedOut;
  } catch (const std::exception& e) {
    out.error = "spec[" + std::to_string(i) + "] " + spec.name + ": " + e.what();
    return RunStatus::kFailed;
  } catch (...) {
    out.error =
        "spec[" + std::to_string(i) + "] " + spec.name + ": unknown exception";
    return RunStatus::kFailed;
  }
}

/// Executes spec `i` into its pre-allocated outcome slot. Runs on a
/// pool thread; everything it touches is private to the slot.
void execute(const RunSpec& spec, std::size_t i, RunOutcome& out,
             bool retry_transient) {
  out.index = i;
  out.name = spec.name;
  const auto t0 = Clock::now();
  out.status = attempt(spec, i, out);
  out.attempts = 1;
  if (out.status == RunStatus::kFailed && retry_transient) {
    // One more try: a transient crash (resource blip, rare race in the
    // workload itself) completes now; a deterministic one fails again.
    out.status = attempt(spec, i, out);
    out.attempts = 2;
  }
  out.ok = out.status == RunStatus::kOk;
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Marks a spec that was never started because the campaign deadline
/// passed before a worker claimed it.
void mark_unstarted(const RunSpec& spec, std::size_t i, RunOutcome& out) {
  out.index = i;
  out.name = spec.name;
  out.ok = false;
  out.status = RunStatus::kCancelled;
  out.attempts = 0;
  out.wall_seconds = 0.0;
  out.error = "spec[" + std::to_string(i) + "] " + spec.name +
              ": not started (campaign wall deadline exceeded)";
}

}  // namespace

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimedOut: return "timed_out";
    case RunStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

Campaign::Campaign(Config cfg)
    : cfg_(cfg), threads_(cfg.threads != 0 ? cfg.threads : hardware_threads()) {}

unsigned Campaign::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

std::vector<RunOutcome> Campaign::run(const std::vector<RunSpec>& specs) const {
  std::vector<RunOutcome> outcomes(specs.size());
  if (specs.empty()) return outcomes;

  // Shared cooperative cancel flag: set when the campaign wall deadline
  // passes; every in-flight kernel polls it once per time advance.
  std::atomic<bool> cancel{false};
  const auto start = Clock::now();
  const bool deadline_armed = cfg_.campaign_wall_seconds > 0.0;
  auto deadline_passed = [&] {
    if (!deadline_armed) return false;
    if (cancel.load(std::memory_order_relaxed)) return true;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= cfg_.campaign_wall_seconds) {
      cancel.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  if (threads_ <= 1 || specs.size() == 1) {
    // Serial baseline: inline on the calling thread. Note the caller's
    // own Kernel (if any) must not be alive -- each spec constructs one.
    ThreadDefaultsGuard guard(cfg_.run_budget, &cancel);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (deadline_passed()) {
        mark_unstarted(specs[i], i, outcomes[i]);
        continue;
      }
      execute(specs[i], i, outcomes[i], cfg_.retry_transient);
    }
    return outcomes;
  }

  // Ticket scheduling: workers claim the next spec index until the
  // counter runs past the end. Outcome slots are disjoint, so no
  // synchronization beyond the counter is needed.
  std::atomic<std::size_t> next{0};
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, specs.size()));
  {
    std::vector<std::jthread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      pool.emplace_back([&] {
        ThreadDefaultsGuard guard(cfg_.run_budget, &cancel);
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= specs.size()) return;
          if (deadline_passed()) {
            mark_unstarted(specs[i], i, outcomes[i]);
            continue;
          }
          execute(specs[i], i, outcomes[i], cfg_.retry_transient);
        }
      });
    }
  }  // jthread joins here; all slots are written before we return.
  return outcomes;
}

}  // namespace ahbp::campaign
