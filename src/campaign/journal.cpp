#include "campaign/journal.hpp"

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace ahbp::campaign {

namespace {

// --- little-endian primitive encoding --------------------------------------

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}

/// Raw IEEE-754 bits: the round trip is exact, which is what makes a
/// resumed report byte-identical to an uninterrupted one.
void put_f64(std::string& s, double v) {
  put_u64(s, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& s, std::string_view v) {
  put_u32(s, static_cast<std::uint32_t>(v.size()));
  s.append(v);
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  bool str(std::string& v) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (remaining() < n) return false;
    v.assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Refuse absurd frame lengths so a corrupt length field cannot make
/// the loader allocate gigabytes.
constexpr std::uint32_t kMaxPayload = 1u << 28;

[[nodiscard]] std::string errno_text(const char* op,
                                     const std::filesystem::path& p) {
  return std::string(op) + " " + p.string() + ": " + std::strerror(errno);
}

bool write_all_fd(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// fsyncs the directory containing `path` so a freshly created journal
/// survives power loss (mirrors telemetry::AtomicFile). Best effort:
/// some filesystems reject O_RDONLY directory fsync.
void sync_parent_dir(const std::filesystem::path& path) {
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// The "config=<16 hex digits>\n" header line for a fingerprint.
std::string config_line(std::uint64_t fingerprint) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string line(kJournalConfigPrefix);
  for (int i = 15; i >= 0; --i) line.push_back(kHex[(fingerprint >> (4 * i)) & 0xf]);
  line.push_back('\n');
  return line;
}

/// Parses the two ASCII header lines. Returns false on a foreign or
/// truncated header; on success `fingerprint` holds the config value.
bool parse_header(std::string_view data, std::uint64_t& fingerprint) {
  if (data.size() < kJournalHeaderBytes) return false;
  if (data.substr(0, kJournalSchema.size()) != kJournalSchema ||
      data[kJournalSchema.size()] != '\n') {
    return false;
  }
  std::string_view cfg = data.substr(kJournalSchema.size() + 1,
                                     kJournalConfigPrefix.size() + 17);
  if (cfg.substr(0, kJournalConfigPrefix.size()) != kJournalConfigPrefix ||
      cfg.back() != '\n') {
    return false;
  }
  cfg = cfg.substr(kJournalConfigPrefix.size(), 16);
  fingerprint = 0;
  for (const char c : cfg) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    fingerprint = (fingerprint << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_outcome(const RunOutcome& out) {
  std::string p;
  p.reserve(160 + out.name.size() + out.error.size());
  put_u64(p, out.index);
  put_str(p, out.name);
  put_u8(p, static_cast<std::uint8_t>(out.status));
  put_u32(p, static_cast<std::uint32_t>(out.term_signal));
  put_str(p, out.error);
  put_f64(p, out.wall_seconds);
  put_u32(p, out.attempts);

  const PowerReport& r = out.report;
  put_f64(p, r.total_energy);
  put_f64(p, r.blocks.arb);
  put_f64(p, r.blocks.dec);
  put_f64(p, r.blocks.m2s);
  put_f64(p, r.blocks.s2m);
  put_u64(p, r.cycles);
  put_u64(p, r.transfers);
  put_u32(p, static_cast<std::uint32_t>(r.metrics.size()));
  for (const auto& [key, value] : r.metrics) {
    put_str(p, key);
    put_f64(p, value);
  }
  put_u32(p, static_cast<std::uint32_t>(r.attribution.size()));
  for (const PowerReport::MasterAttribution& m : r.attribution) {
    put_f64(p, m.energy_j);
    put_u64(p, m.txns);
  }
  put_f64(p, r.bus_energy_j);
  return p;
}

bool decode_outcome(std::string_view payload, RunOutcome& out) {
  Reader rd(payload);
  out = RunOutcome{};
  std::uint64_t index = 0;
  std::uint8_t status = 0;
  std::uint32_t signal = 0;
  std::uint32_t attempts = 0;
  if (!rd.u64(index) || !rd.str(out.name) || !rd.u8(status) ||
      !rd.u32(signal) || !rd.str(out.error) || !rd.f64(out.wall_seconds) ||
      !rd.u32(attempts)) {
    return false;
  }
  if (status > static_cast<std::uint8_t>(RunStatus::kCrashed)) return false;
  out.index = static_cast<std::size_t>(index);
  out.status = static_cast<RunStatus>(status);
  out.ok = out.status == RunStatus::kOk;
  out.term_signal = static_cast<int>(signal);
  out.attempts = attempts;

  PowerReport& r = out.report;
  std::uint32_t n_metrics = 0;
  if (!rd.f64(r.total_energy) || !rd.f64(r.blocks.arb) ||
      !rd.f64(r.blocks.dec) || !rd.f64(r.blocks.m2s) ||
      !rd.f64(r.blocks.s2m) || !rd.u64(r.cycles) || !rd.u64(r.transfers) ||
      !rd.u32(n_metrics)) {
    return false;
  }
  for (std::uint32_t i = 0; i < n_metrics; ++i) {
    std::string key;
    double value = 0.0;
    if (!rd.str(key) || !rd.f64(value)) return false;
    r.metrics.emplace(std::move(key), value);
  }
  std::uint32_t n_masters = 0;
  if (!rd.u32(n_masters)) return false;
  if (n_masters > payload.size()) return false;  // corrupt count
  r.attribution.reserve(n_masters);
  for (std::uint32_t i = 0; i < n_masters; ++i) {
    PowerReport::MasterAttribution m;
    if (!rd.f64(m.energy_j) || !rd.u64(m.txns)) return false;
    r.attribution.push_back(m);
  }
  if (!rd.f64(r.bus_energy_j)) return false;
  return rd.remaining() == 0;
}

std::string frame_payload(std::string_view payload) {
  std::string frame;
  frame.reserve(12 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u64(frame, fnv1a64(payload));
  frame.append(payload);
  return frame;
}

// --- writer ----------------------------------------------------------------

JournalWriter::JournalWriter(const std::filesystem::path& file,
                             std::uint64_t config_fingerprint)
    : path_(file) {
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
  }
  fd_ = ::open(file.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: " + errno_text("open", file));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    // Fresh journal: durable header (schema + config fingerprint)
    // before any frame, then the directory entry itself -- without the
    // parent fsync, power loss could drop the whole file even though
    // every append() "durably" returned.
    std::string header(kJournalSchema);
    header.push_back('\n');
    header += config_line(config_fingerprint);
    if (!write_all_fd(fd_, header) || ::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: " + errno_text("write", file));
    }
    sync_parent_dir(file);
    return;
  }
  // Appending to an existing file. Refuse a foreign format outright so
  // --journal pointed at the wrong file cannot silently corrupt it,
  // refuse a journal written by a differently configured campaign, and
  // truncate a torn tail: O_APPEND would otherwise place new frames
  // after the partial one, making every later frame unreadable.
  const JournalLoadResult existing = load_journal(file);
  if (!existing.ok()) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(existing.error);
  }
  if (config_fingerprint != 0 &&
      existing.config_fingerprint != config_fingerprint) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(
        "journal: " + file.string() +
        " was written by a campaign with a different configuration");
  }
  if (static_cast<std::size_t>(size) > existing.valid_bytes) {
    if (::ftruncate(fd_, static_cast<off_t>(existing.valid_bytes)) != 0 ||
        ::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: " + errno_text("truncate", file));
    }
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const RunOutcome& out) {
  const std::string frame = frame_payload(encode_outcome(out));
  const std::lock_guard<std::mutex> lock(mutex_);
  // O_APPEND makes the whole-frame write atomic w.r.t. concurrent
  // appends; fsync before returning is the write-ahead guarantee.
  if (!write_all_fd(fd_, frame) || ::fsync(fd_) != 0) {
    throw std::runtime_error("journal: " + errno_text("append", path_));
  }
}

// --- loader ----------------------------------------------------------------

JournalLoadResult load_journal(const std::filesystem::path& file) {
  JournalLoadResult result;
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(file)) return result;  // fresh campaign
    result.error = "journal: cannot read " + file.string();
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (!parse_header(data, result.config_fingerprint)) {
    result.error =
        "journal: " + file.string() + " has no " +
        std::string(kJournalSchema) + " header with a config line";
    return result;
  }

  std::size_t pos = kJournalHeaderBytes;
  result.valid_bytes = pos;
  while (pos < data.size()) {
    // Frame prefix: u32 length + u64 checksum. A short prefix is a torn
    // tail (the process died mid-append) and is tolerated.
    if (data.size() - pos < 12) {
      result.torn_tail = true;
      return result;
    }
    Reader prefix(std::string_view(data).substr(pos, 12));
    std::uint32_t len = 0;
    std::uint64_t checksum = 0;
    prefix.u32(len);
    prefix.u64(checksum);
    if (len > kMaxPayload) {
      result.error = "journal: frame at offset " + std::to_string(pos) +
                     " has absurd length " + std::to_string(len);
      return result;
    }
    if (data.size() - pos - 12 < len) {
      result.torn_tail = true;  // payload cut off mid-write
      return result;
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + 12, len);
    if (fnv1a64(payload) != checksum) {
      // A *complete* frame that fails its checksum is corruption, not a
      // torn tail -- refuse to resume from it.
      result.error = "journal: checksum mismatch in frame at offset " +
                     std::to_string(pos);
      return result;
    }
    RunOutcome out;
    if (!decode_outcome(payload, out)) {
      result.error = "journal: undecodable outcome in frame at offset " +
                     std::to_string(pos);
      return result;
    }
    out.resumed = true;
    result.outcomes.push_back(std::move(out));
    pos += 12 + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace ahbp::campaign
