#include "campaign/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "telemetry/atomic_file.hpp"
#include "telemetry/exporters.hpp"

namespace ahbp::campaign {

using telemetry::json_escape;
using telemetry::json_number;

void write_campaign_json(std::ostream& os,
                         const std::vector<RunOutcome>& outcomes,
                         const CampaignReportMeta& meta) {
  std::size_t failed = 0;
  double sum = 0.0;
  double min_e = 0.0;
  double max_e = 0.0;
  bool any_ok = false;
  for (const RunOutcome& o : outcomes) {
    if (!o.ok) {
      ++failed;
      continue;
    }
    const double e = o.report.total_energy;
    if (!any_ok) {
      min_e = max_e = e;
      any_ok = true;
    } else {
      min_e = std::min(min_e, e);
      max_e = std::max(max_e, e);
    }
    sum += e;
  }

  os << "{\n";
  os << "  \"schema\": \"ahbpower.campaign.v4\",\n";
  os << "  \"name\": \"" << json_escape(meta.name) << "\",\n";
  os << "  \"cycles\": " << meta.cycles << ",\n";
  os << "  \"threads\": " << meta.threads << ",\n";
  os << "  \"runs\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"index\": " << o.index << ", \"name\": \""
       << json_escape(o.name) << "\", \"ok\": " << (o.ok ? "true" : "false")
       << ", \"status\": \"" << to_string(o.status) << '"';
    if (!o.ok) {
      os << ", \"error\": \"" << json_escape(o.error) << "\"}";
      continue;
    }
    const PowerReport& r = o.report;
    os << ", \"cycles\": " << r.cycles << ", \"transfers\": " << r.transfers
       << ", \"total_energy_j\": " << json_number(r.total_energy)
       << ", \"blocks_j\": {\"arb\": " << json_number(r.blocks.arb)
       << ", \"dec\": " << json_number(r.blocks.dec)
       << ", \"m2s\": " << json_number(r.blocks.m2s)
       << ", \"s2m\": " << json_number(r.blocks.s2m) << "}";
    if (!r.attribution.empty()) {
      // v2 addition: per-master transaction attribution. v1 consumers
      // that ignore unknown keys keep working; all v1 fields remain.
      os << ", \"attribution\": {\"bus_energy_j\": "
         << json_number(r.bus_energy_j) << ", \"masters\": [";
      for (std::size_t m = 0; m < r.attribution.size(); ++m) {
        if (m != 0) os << ", ";
        os << "{\"energy_j\": " << json_number(r.attribution[m].energy_j)
           << ", \"txns\": " << r.attribution[m].txns << "}";
      }
      os << "]}";
    }
    os << ", \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : r.metrics) {
      if (!first) os << ", ";
      os << '"' << json_escape(key) << "\": " << json_number(value);
      first = false;
    }
    os << "}}";
  }
  os << "\n  ],\n";
  if (failed != 0) {
    // Degraded block: only present when something went wrong, so a
    // fully successful campaign report stays byte-identical across
    // reruns (wall times below are inherently non-deterministic) --
    // and, by the same token, byte-identical after a journal resume.
    // That is why the "resumed" provenance count lives here and not at
    // the top level (docs/ROBUSTNESS.md).
    std::size_t n_failed = 0;
    std::size_t n_timed_out = 0;
    std::size_t n_cancelled = 0;
    std::size_t n_crashed = 0;
    std::size_t n_resumed = 0;
    for (const RunOutcome& o : outcomes) {
      if (o.resumed) ++n_resumed;
      if (o.ok) continue;
      switch (o.status) {
        case RunStatus::kTimedOut: ++n_timed_out; break;
        case RunStatus::kCancelled: ++n_cancelled; break;
        case RunStatus::kCrashed: ++n_crashed; break;
        default: ++n_failed; break;
      }
    }
    os << "  \"degraded\": {\"count\": " << failed
       << ", \"failed\": " << n_failed
       << ", \"timed_out\": " << n_timed_out
       << ", \"cancelled\": " << n_cancelled
       << ", \"crashed\": " << n_crashed
       << ", \"resumed\": " << n_resumed << ", \"runs\": [";
    bool first = true;
    for (const RunOutcome& o : outcomes) {
      if (o.ok) continue;
      os << (first ? "\n" : ",\n");
      first = false;
      os << "    {\"index\": " << o.index << ", \"name\": \""
         << json_escape(o.name) << "\", \"status\": \"" << to_string(o.status)
         << "\", \"signal\": " << o.term_signal
         << ", \"wall_seconds\": " << json_number(o.wall_seconds)
         << ", \"attempts\": " << o.attempts << ", \"error\": \""
         << json_escape(o.error) << "\"}";
    }
    os << "\n  ]},\n";
  }
  os << "  \"aggregate\": {\"runs\": " << outcomes.size()
     << ", \"failed\": " << failed
     << ", \"total_energy_j\": " << json_number(sum)
     << ", \"min_energy_j\": " << json_number(min_e)
     << ", \"max_energy_j\": " << json_number(max_e) << "}\n";
  os << "}\n";
}

void write_campaign_json_file(const std::filesystem::path& path,
                              const std::vector<RunOutcome>& outcomes,
                              const CampaignReportMeta& meta) {
  telemetry::AtomicFile file(path);
  write_campaign_json(file.stream(), outcomes, meta);
  file.commit();
}

}  // namespace ahbp::campaign
