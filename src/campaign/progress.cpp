#include "campaign/progress.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/exporters.hpp"

namespace ahbp::campaign {

namespace {

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

double us_between(std::uint64_t earlier, std::uint64_t later) {
  return later <= earlier
             ? 0.0
             : static_cast<double>(later - earlier) * 1e-6;
}

}  // namespace

ProgressTracker::ProgressTracker(Config cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {}

void ProgressTracker::attach(telemetry::EventLog& log) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    log_ = &log;
  }
  log.add_listener([this](const telemetry::Event& ev) { on_event(ev); });
}

std::uint64_t ProgressTracker::now_us() const {
  if (log_ != nullptr) return log_->now_mono_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ProgressTracker::on_event(const telemetry::Event& ev) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ev.type == "campaign_start") {
    total_ = ev.u64("runs");
    started_us_ = ev.t_mono_us;
    heartbeats_expected_ = ev.str("isolation") == "process";
    return;
  }
  if (ev.type == "run_restored") {
    ++restored_;
    return;
  }
  if (ev.type == "run_start") {
    InFlight f;
    f.worker = static_cast<long>(ev.u64("worker"));
    f.run = ev.u64("run");
    f.name = ev.str("name");
    f.started_us = ev.t_mono_us;
    f.last_heartbeat_us = ev.t_mono_us;
    in_flight_.push_back(std::move(f));
    return;
  }
  if (ev.type == "run_retry") {
    ++retries_;
    // The retried run stays in flight; treat the respawn as liveness.
    const std::uint64_t run = ev.u64("run");
    for (InFlight& f : in_flight_) {
      if (f.run == run) {
        f.started_us = ev.t_mono_us;
        f.last_heartbeat_us = ev.t_mono_us;
        f.stall_reported = false;
        if (const telemetry::EventField* w = ev.find("worker")) {
          f.worker = static_cast<long>(w->u64);
        }
      }
    }
    return;
  }
  if (ev.type == "run_finish") {
    const std::uint64_t run = ev.u64("run");
    in_flight_.erase(
        std::remove_if(in_flight_.begin(), in_flight_.end(),
                       [run](const InFlight& f) { return f.run == run; }),
        in_flight_.end());
    const std::string_view status = ev.str("status");
    if (status == "ok") ++ok_;
    else if (status == "failed") ++failed_;
    else if (status == "crashed") ++crashed_;
    else if (status == "timed_out") ++timed_out_;
    else if (status == "cancelled") ++cancelled_;
    return;
  }
  if (ev.type == "campaign_finish") {
    finished_ = true;
    return;
  }
  // journal_append, watchdog_trip, worker_stalled, sigint_drain: no
  // tracker state of their own.
}

void ProgressTracker::heartbeat(long worker_id) {
  const std::uint64_t now = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (InFlight& f : in_flight_) {
    if (f.worker == worker_id) {
      f.last_heartbeat_us = now;
      f.stall_reported = false;  // a stalled worker came back
    }
  }
}

void ProgressTracker::set_fingerprint(std::uint64_t fp) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fingerprint_ = fp;
}

ProgressTracker::Snapshot ProgressTracker::snapshot() {
  return snapshot_at(now_us());
}

ProgressTracker::Snapshot ProgressTracker::snapshot_at(
    std::uint64_t mono_now_us) {
  Snapshot s;
  // Stall emissions are collected under the lock and sent after it is
  // released: emit() re-enters on_event() on this thread.
  std::vector<std::pair<long, double>> newly_stalled_runs;
  std::vector<std::uint64_t> newly_stalled_idx;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.total = total_;
    s.ok = ok_;
    s.failed = failed_;
    s.crashed = crashed_;
    s.timed_out = timed_out_;
    s.cancelled = cancelled_;
    s.done = ok_ + failed_ + crashed_ + timed_out_ + cancelled_;
    s.restored = restored_;
    s.retries = retries_;
    s.in_flight = in_flight_.size();
    s.finished = finished_;
    s.stall_after_seconds = cfg_.stall_after_seconds;
    s.elapsed_seconds = us_between(started_us_, mono_now_us);
    const std::uint64_t executed = ok_ + failed_ + crashed_ + timed_out_;
    if (s.elapsed_seconds > 0.0 && executed > 0) {
      s.runs_per_sec = static_cast<double>(executed) / s.elapsed_seconds;
      const std::uint64_t accounted = s.done + restored_;
      const std::uint64_t remaining =
          total_ > accounted ? total_ - accounted : 0;
      s.eta_seconds = static_cast<double>(remaining) / s.runs_per_sec;
    }
    s.workers.reserve(in_flight_.size());
    for (InFlight& f : in_flight_) {
      Worker w;
      w.id = f.worker;
      w.run = f.run;
      w.name = f.name;
      w.age_seconds = us_between(f.started_us, mono_now_us);
      w.heartbeat_age_seconds = us_between(f.last_heartbeat_us, mono_now_us);
      w.stalled = heartbeats_expected_ &&
                  w.heartbeat_age_seconds > cfg_.stall_after_seconds;
      if (w.stalled) {
        ++s.stalled_workers;
        if (!f.stall_reported) {
          f.stall_reported = true;
          newly_stalled_runs.emplace_back(f.worker, w.heartbeat_age_seconds);
          newly_stalled_idx.push_back(f.run);
        }
      }
      s.workers.push_back(std::move(w));
    }
  }
  if (log_ != nullptr) {
    for (std::size_t i = 0; i < newly_stalled_runs.size(); ++i) {
      log_->emit("worker_stalled",
                 {telemetry::field_u64(
                      "worker",
                      static_cast<std::uint64_t>(newly_stalled_runs[i].first)),
                  telemetry::field_u64("run", newly_stalled_idx[i]),
                  telemetry::field_f64("heartbeat_age_seconds",
                                       newly_stalled_runs[i].second)});
    }
  }
  return s;
}

std::string ProgressTracker::status_json() {
  const Snapshot s = snapshot();
  std::uint64_t fp = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fp = fingerprint_;
  }
  using telemetry::json_escape;
  using telemetry::json_number;
  std::string out = "{\n  \"schema\": \"ahbpower.status.v1\",\n";
  out += "  \"config\": \"" + hex16(fp) + "\",\n";
  out += "  \"total\": " + std::to_string(s.total) + ",\n";
  out += "  \"done\": " + std::to_string(s.done) + ",\n";
  out += "  \"ok\": " + std::to_string(s.ok) + ",\n";
  out += "  \"failed\": " + std::to_string(s.failed) + ",\n";
  out += "  \"crashed\": " + std::to_string(s.crashed) + ",\n";
  out += "  \"timed_out\": " + std::to_string(s.timed_out) + ",\n";
  out += "  \"cancelled\": " + std::to_string(s.cancelled) + ",\n";
  out += "  \"restored\": " + std::to_string(s.restored) + ",\n";
  out += "  \"retries\": " + std::to_string(s.retries) + ",\n";
  out += "  \"in_flight\": " + std::to_string(s.in_flight) + ",\n";
  out += std::string("  \"finished\": ") + (s.finished ? "true" : "false") +
         ",\n";
  out += "  \"elapsed_seconds\": " + json_number(s.elapsed_seconds) + ",\n";
  out += "  \"runs_per_sec\": " + json_number(s.runs_per_sec) + ",\n";
  out += "  \"eta_seconds\": " + json_number(s.eta_seconds) + ",\n";
  out += "  \"stall_after_seconds\": " + json_number(s.stall_after_seconds) +
         ",\n";
  out += "  \"stalled_workers\": " + std::to_string(s.stalled_workers) + ",\n";
  out += "  \"workers\": [";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const Worker& w = s.workers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": " + std::to_string(w.id) +
           ", \"run\": " + std::to_string(w.run) + ", \"name\": \"" +
           json_escape(w.name) + "\", \"age_seconds\": " +
           json_number(w.age_seconds) + ", \"heartbeat_age_seconds\": " +
           json_number(w.heartbeat_age_seconds) + ", \"stalled\": " +
           (w.stalled ? "true" : "false") + "}";
  }
  out += s.workers.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace ahbp::campaign
