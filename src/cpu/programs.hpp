#pragma once
// Ready-made RV32I programs for tests, benches and examples. Each
// builder returns the instruction words; callers load them with
// load_program() and point the core's reset PC at them.
//
// Register conventions used here (informal): x1 scratch, x2 base
// pointers, x5-x7 loop state, x10 result (a0), x31 temporary.

#include <cstdint>
#include <vector>

namespace ahbp::cpu::progs {

/// Sums `n` words starting at `src`; result in x10, then EBREAK.
[[nodiscard]] std::vector<std::uint32_t> sum_array(std::uint32_t src, unsigned n);

/// Computes fib(n) iteratively into x10, then EBREAK. n in [0, 47).
[[nodiscard]] std::vector<std::uint32_t> fibonacci(unsigned n);

/// Copies `words` words from `src` to `dst`, then EBREAK.
[[nodiscard]] std::vector<std::uint32_t> memcpy_words(std::uint32_t src,
                                                      std::uint32_t dst,
                                                      unsigned words);

/// Writes `words` pseudo-random words (xorshift) starting at `dst`,
/// then EBREAK. Seeds x10 with the final generator state.
[[nodiscard]] std::vector<std::uint32_t> fill_random(std::uint32_t dst,
                                                     unsigned words,
                                                     std::uint32_t seed);

/// Byte-wise string copy of `bytes` bytes (exercises LB/SB and the
/// read-modify-write path), then EBREAK.
[[nodiscard]] std::vector<std::uint32_t> memcpy_bytes(std::uint32_t src,
                                                      std::uint32_t dst,
                                                      unsigned bytes);

/// Bit-reflected CRC32 (polynomial 0xEDB88320) over `words` words at
/// `src`, bit-serial inner loop; result in x10, then EBREAK. Heavy on
/// ALU + branches with a steady fetch stream.
[[nodiscard]] std::vector<std::uint32_t> crc32_words(std::uint32_t src,
                                                     unsigned words);

/// In-place ascending bubble sort of `n` words at `base`, then EBREAK.
/// Data-dependent branch + swap traffic.
[[nodiscard]] std::vector<std::uint32_t> bubble_sort(std::uint32_t base,
                                                     unsigned n);

}  // namespace ahbp::cpu::progs
