#include "cpu/isa.hpp"

#include <cstdio>

namespace ahbp::cpu {

const char* to_string(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kFence: return "fence";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
  }
  return "?";
}

namespace {

std::int32_t imm_i(std::uint32_t w) { return static_cast<std::int32_t>(w) >> 20; }

std::int32_t imm_s(std::uint32_t w) {
  return (static_cast<std::int32_t>(w) >> 25 << 5) |
         static_cast<std::int32_t>((w >> 7) & 0x1F);
}

std::int32_t imm_b(std::uint32_t w) {
  const std::uint32_t imm = ((w >> 31) & 1u) << 12 | ((w >> 7) & 1u) << 11 |
                            ((w >> 25) & 0x3Fu) << 5 | ((w >> 8) & 0xFu) << 1;
  return static_cast<std::int32_t>(imm << 19) >> 19;  // sign-extend 13 bits
}

std::int32_t imm_u(std::uint32_t w) {
  return static_cast<std::int32_t>(w & 0xFFFFF000u);
}

std::int32_t imm_j(std::uint32_t w) {
  const std::uint32_t imm = ((w >> 31) & 1u) << 20 | ((w >> 12) & 0xFFu) << 12 |
                            ((w >> 20) & 1u) << 11 | ((w >> 21) & 0x3FFu) << 1;
  return static_cast<std::int32_t>(imm << 11) >> 11;  // sign-extend 21 bits
}

}  // namespace

Instr decode(std::uint32_t w) {
  Instr in;
  in.rd = static_cast<std::uint8_t>((w >> 7) & 0x1F);
  in.rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1F);
  in.rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1F);
  const std::uint32_t opcode = w & 0x7F;
  const std::uint32_t funct3 = (w >> 12) & 0x7;
  const std::uint32_t funct7 = (w >> 25) & 0x7F;

  switch (opcode) {
    case 0x37:
      in.op = Op::kLui;
      in.imm = imm_u(w);
      break;
    case 0x17:
      in.op = Op::kAuipc;
      in.imm = imm_u(w);
      break;
    case 0x6F:
      in.op = Op::kJal;
      in.imm = imm_j(w);
      break;
    case 0x67:
      in.op = funct3 == 0 ? Op::kJalr : Op::kInvalid;
      in.imm = imm_i(w);
      break;
    case 0x63:
      in.imm = imm_b(w);
      switch (funct3) {
        case 0: in.op = Op::kBeq; break;
        case 1: in.op = Op::kBne; break;
        case 4: in.op = Op::kBlt; break;
        case 5: in.op = Op::kBge; break;
        case 6: in.op = Op::kBltu; break;
        case 7: in.op = Op::kBgeu; break;
        default: in.op = Op::kInvalid; break;
      }
      break;
    case 0x03:
      in.imm = imm_i(w);
      switch (funct3) {
        case 0: in.op = Op::kLb; break;
        case 1: in.op = Op::kLh; break;
        case 2: in.op = Op::kLw; break;
        case 4: in.op = Op::kLbu; break;
        case 5: in.op = Op::kLhu; break;
        default: in.op = Op::kInvalid; break;
      }
      break;
    case 0x23:
      in.imm = imm_s(w);
      switch (funct3) {
        case 0: in.op = Op::kSb; break;
        case 1: in.op = Op::kSh; break;
        case 2: in.op = Op::kSw; break;
        default: in.op = Op::kInvalid; break;
      }
      break;
    case 0x13:
      in.imm = imm_i(w);
      switch (funct3) {
        case 0: in.op = Op::kAddi; break;
        case 2: in.op = Op::kSlti; break;
        case 3: in.op = Op::kSltiu; break;
        case 4: in.op = Op::kXori; break;
        case 6: in.op = Op::kOri; break;
        case 7: in.op = Op::kAndi; break;
        case 1:
          in.op = funct7 == 0 ? Op::kSlli : Op::kInvalid;
          in.imm = static_cast<std::int32_t>(in.rs2);  // shamt
          break;
        case 5:
          in.op = funct7 == 0 ? Op::kSrli : funct7 == 0x20 ? Op::kSrai : Op::kInvalid;
          in.imm = static_cast<std::int32_t>(in.rs2);  // shamt
          break;
        default: in.op = Op::kInvalid; break;
      }
      break;
    case 0x33:
      switch (funct3 | funct7 << 3) {
        case 0: in.op = Op::kAdd; break;
        case (0x20 << 3) | 0: in.op = Op::kSub; break;
        case 1: in.op = Op::kSll; break;
        case 2: in.op = Op::kSlt; break;
        case 3: in.op = Op::kSltu; break;
        case 4: in.op = Op::kXor; break;
        case 5: in.op = Op::kSrl; break;
        case (0x20 << 3) | 5: in.op = Op::kSra; break;
        case 6: in.op = Op::kOr; break;
        case 7: in.op = Op::kAnd; break;
        default: in.op = Op::kInvalid; break;
      }
      break;
    case 0x0F:
      in.op = Op::kFence;
      break;
    case 0x73:
      if (w == 0x00000073) {
        in.op = Op::kEcall;
      } else if (w == 0x00100073) {
        in.op = Op::kEbreak;
      } else {
        in.op = Op::kInvalid;
      }
      break;
    default:
      in.op = Op::kInvalid;
      break;
  }
  return in;
}

std::string disassemble(std::uint32_t word) {
  const Instr in = decode(word);
  char buf[96];
  const char* m = to_string(in.op);
  switch (in.op) {
    case Op::kLui:
    case Op::kAuipc:
      std::snprintf(buf, sizeof buf, "%s x%u, 0x%x", m, in.rd,
                    static_cast<std::uint32_t>(in.imm) >> 12);
      break;
    case Op::kJal:
      std::snprintf(buf, sizeof buf, "%s x%u, %d", m, in.rd, in.imm);
      break;
    case Op::kJalr:
      std::snprintf(buf, sizeof buf, "%s x%u, %d(x%u)", m, in.rd, in.imm, in.rs1);
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      std::snprintf(buf, sizeof buf, "%s x%u, x%u, %d", m, in.rs1, in.rs2, in.imm);
      break;
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
      std::snprintf(buf, sizeof buf, "%s x%u, %d(x%u)", m, in.rd, in.imm, in.rs1);
      break;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      std::snprintf(buf, sizeof buf, "%s x%u, %d(x%u)", m, in.rs2, in.imm, in.rs1);
      break;
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      std::snprintf(buf, sizeof buf, "%s x%u, x%u, %d", m, in.rd, in.rs1, in.imm);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
      std::snprintf(buf, sizeof buf, "%s x%u, x%u, x%u", m, in.rd, in.rs1, in.rs2);
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s", m);
      break;
  }
  return buf;
}

}  // namespace ahbp::cpu
