#pragma once
// RV32I instruction-set definitions: formats, decode, disassembly.
//
// The paper's AMBA system hangs "CPU or DSP cores" on the AHB; this
// module provides the ISA layer of our CPU master -- a clean-room RV32I
// subset (integer ALU, branches, jumps, loads/stores, EBREAK/ECALL halt)
// chosen because it is compact, well-specified and gives realistic
// instruction-fetch + data-access bus patterns.

#include <cstdint>
#include <string>

namespace ahbp::cpu {

/// Decoded operation kinds (post-decode, format-independent).
enum class Op : std::uint8_t {
  kInvalid,
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kFence,   ///< executes as NOP
  kEcall,   ///< halts the core (environment call surface)
  kEbreak,  ///< halts the core
};

[[nodiscard]] const char* to_string(Op op);

/// A decoded instruction.
struct Instr {
  Op op = Op::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  [[nodiscard]] bool is_load() const {
    return op == Op::kLb || op == Op::kLh || op == Op::kLw || op == Op::kLbu ||
           op == Op::kLhu;
  }
  [[nodiscard]] bool is_store() const {
    return op == Op::kSb || op == Op::kSh || op == Op::kSw;
  }
  [[nodiscard]] bool is_branch() const {
    return op == Op::kBeq || op == Op::kBne || op == Op::kBlt || op == Op::kBge ||
           op == Op::kBltu || op == Op::kBgeu;
  }
};

/// Decodes a 32-bit instruction word. Unknown encodings decode to
/// Op::kInvalid (the core halts on them).
[[nodiscard]] Instr decode(std::uint32_t word);

/// One-line disassembly, e.g. "addi x5, x5, -1".
[[nodiscard]] std::string disassemble(std::uint32_t word);

}  // namespace ahbp::cpu
