#pragma once
// Umbrella header for ahbp::cpu -- the RV32I CPU master:
//   isa.hpp      -- decode / disassembly
//   encode.hpp   -- instruction encoders ("assembler")
//   core.hpp     -- architectural core (bus-independent)
//   ahb_cpu.hpp  -- CpuMaster: the core as an AHB bus master
//   programs.hpp -- ready-made test/benchmark programs

#include "cpu/ahb_cpu.hpp"
#include "cpu/core.hpp"
#include "cpu/encode.hpp"
#include "cpu/isa.hpp"
#include "cpu/programs.hpp"
