#include "cpu/core.hpp"

namespace ahbp::cpu {

namespace {

std::uint32_t byte_mask(std::uint32_t addr, unsigned bytes) {
  const unsigned lane = addr & 3u;
  const std::uint32_t base = bytes == 1 ? 0xFFu : bytes == 2 ? 0xFFFFu : 0xFFFFFFFFu;
  return base << (8 * lane);
}

}  // namespace

MemOp Rv32Core::execute(std::uint32_t instr_word) {
  MemOp mem;
  if (halted_) {
    mem.kind = MemOp::Kind::kHalt;
    return mem;
  }

  const Instr in = decode(instr_word);
  const std::uint32_t rs1 = x_[in.rs1];
  const std::uint32_t rs2 = x_[in.rs2];
  const auto srs1 = static_cast<std::int32_t>(rs1);
  const auto srs2 = static_cast<std::int32_t>(rs2);
  const std::uint32_t uimm = static_cast<std::uint32_t>(in.imm);
  std::uint32_t next_pc = pc_ + 4;

  auto wr = [this, &in](std::uint32_t v) { set_reg(in.rd, v); };

  switch (in.op) {
    case Op::kLui: wr(uimm); break;
    case Op::kAuipc: wr(pc_ + uimm); break;
    case Op::kJal:
      wr(pc_ + 4);
      next_pc = pc_ + uimm;
      break;
    case Op::kJalr:
      wr(pc_ + 4);
      next_pc = (rs1 + uimm) & ~1u;
      break;
    case Op::kBeq: if (rs1 == rs2) next_pc = pc_ + uimm; break;
    case Op::kBne: if (rs1 != rs2) next_pc = pc_ + uimm; break;
    case Op::kBlt: if (srs1 < srs2) next_pc = pc_ + uimm; break;
    case Op::kBge: if (srs1 >= srs2) next_pc = pc_ + uimm; break;
    case Op::kBltu: if (rs1 < rs2) next_pc = pc_ + uimm; break;
    case Op::kBgeu: if (rs1 >= rs2) next_pc = pc_ + uimm; break;

    case Op::kLb:
    case Op::kLbu:
      mem.kind = MemOp::Kind::kLoad;
      mem.addr = rs1 + uimm;
      mem.bytes = 1;
      mem.sign_extend = in.op == Op::kLb;
      mem.rd = in.rd;
      break;
    case Op::kLh:
    case Op::kLhu:
      mem.kind = MemOp::Kind::kLoad;
      mem.addr = rs1 + uimm;
      mem.bytes = 2;
      mem.sign_extend = in.op == Op::kLh;
      mem.rd = in.rd;
      break;
    case Op::kLw:
      mem.kind = MemOp::Kind::kLoad;
      mem.addr = rs1 + uimm;
      mem.bytes = 4;
      mem.rd = in.rd;
      break;

    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      mem.kind = MemOp::Kind::kStore;
      mem.addr = rs1 + uimm;
      mem.bytes = in.op == Op::kSb ? 1 : in.op == Op::kSh ? 2 : 4;
      mem.wmask = byte_mask(mem.addr, mem.bytes);
      const unsigned lane = mem.addr & 3u;
      mem.wdata = (rs2 << (8 * lane)) & mem.wmask;
      break;
    }

    case Op::kAddi: wr(rs1 + uimm); break;
    case Op::kSlti: wr(srs1 < in.imm ? 1 : 0); break;
    case Op::kSltiu: wr(rs1 < uimm ? 1 : 0); break;
    case Op::kXori: wr(rs1 ^ uimm); break;
    case Op::kOri: wr(rs1 | uimm); break;
    case Op::kAndi: wr(rs1 & uimm); break;
    case Op::kSlli: wr(rs1 << (in.imm & 31)); break;
    case Op::kSrli: wr(rs1 >> (in.imm & 31)); break;
    case Op::kSrai: wr(static_cast<std::uint32_t>(srs1 >> (in.imm & 31))); break;

    case Op::kAdd: wr(rs1 + rs2); break;
    case Op::kSub: wr(rs1 - rs2); break;
    case Op::kSll: wr(rs1 << (rs2 & 31)); break;
    case Op::kSlt: wr(srs1 < srs2 ? 1 : 0); break;
    case Op::kSltu: wr(rs1 < rs2 ? 1 : 0); break;
    case Op::kXor: wr(rs1 ^ rs2); break;
    case Op::kSrl: wr(rs1 >> (rs2 & 31)); break;
    case Op::kSra: wr(static_cast<std::uint32_t>(srs1 >> (rs2 & 31))); break;
    case Op::kOr: wr(rs1 | rs2); break;
    case Op::kAnd: wr(rs1 & rs2); break;

    case Op::kFence: break;  // NOP in this single-master-ordering model

    case Op::kEcall:
    case Op::kEbreak:
    case Op::kInvalid:
      halted_ = true;
      mem.kind = MemOp::Kind::kHalt;
      return mem;  // pc stays at the halting instruction
  }

  pc_ = next_pc;
  ++instret_;
  return mem;
}

void Rv32Core::complete_load(const MemOp& op, std::uint32_t loaded_word) {
  const unsigned lane = op.addr & 3u;
  std::uint32_t v = loaded_word >> (8 * lane);
  if (op.bytes == 1) {
    v &= 0xFFu;
    if (op.sign_extend && (v & 0x80u) != 0) v |= 0xFFFFFF00u;
  } else if (op.bytes == 2) {
    v &= 0xFFFFu;
    if (op.sign_extend && (v & 0x8000u) != 0) v |= 0xFFFF0000u;
  }
  set_reg(op.rd, v);
}

}  // namespace ahbp::cpu
