#pragma once
// Rv32Core: the architectural model, independent of any bus.
//
// The core is driven in phases by its bus wrapper:
//   1. fetch_addr() -> where to fetch,
//   2. execute(instr_word) -> an optional memory operation,
//   3. for loads: complete_load(value) writes the destination register.
// This split keeps the ISA logic pure and unit-testable without a
// simulation kernel, while the AHB wrapper supplies realistic fetch and
// data traffic to the bus.

#include <array>
#include <cstdint>

#include "cpu/isa.hpp"

namespace ahbp::cpu {

/// The memory access (if any) an instruction requires.
struct MemOp {
  enum class Kind : std::uint8_t { kNone, kLoad, kStore, kHalt };
  Kind kind = Kind::kNone;
  std::uint32_t addr = 0;
  std::uint32_t wdata = 0;   ///< store data (full word, pre-merged via mask)
  std::uint32_t wmask = 0;   ///< byte-lane mask as bit mask over the word
  unsigned bytes = 4;        ///< access width
  bool sign_extend = false;  ///< for sub-word loads
  std::uint8_t rd = 0;       ///< load destination
};

/// RV32I architectural state + single-instruction executor.
class Rv32Core {
public:
  explicit Rv32Core(std::uint32_t reset_pc = 0) : pc_(reset_pc) {}

  /// Address of the next instruction.
  [[nodiscard]] std::uint32_t fetch_addr() const { return pc_; }

  /// Executes one instruction word fetched from fetch_addr(). Updates pc
  /// and registers; returns the memory operation the wrapper must
  /// perform (kNone for pure ALU/branch instructions, kHalt on
  /// EBREAK/ECALL or an invalid encoding).
  MemOp execute(std::uint32_t instr_word);

  /// Delivers load data for the MemOp returned by the last execute().
  void complete_load(const MemOp& op, std::uint32_t loaded_word);

  /// @name State access
  ///@{
  [[nodiscard]] std::uint32_t reg(unsigned i) const { return x_[i & 31]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if ((i & 31) != 0) x_[i & 31] = v;
  }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t instret() const { return instret_; }
  ///@}

private:
  std::array<std::uint32_t, 32> x_{};
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t instret_ = 0;
};

}  // namespace ahbp::cpu
