#pragma once
// CpuMaster: an Rv32Core attached to the AHB as a bus master.
//
// Every instruction produces realistic bus traffic: an instruction fetch
// (sequential addresses with jumps), plus loads/stores for memory
// operations (sub-word stores become read-modify-write word accesses,
// since the modeled bus datapath is word-wide). Accesses are serialized
// (no fetch/data overlap) -- a simple non-pipelined embedded core, which
// is exactly the kind of CPU the 2003-era AHB systems carried.

#include <cstdint>
#include <vector>

#include "ahb/master.hpp"
#include "ahb/slave.hpp"
#include "cpu/core.hpp"

namespace ahbp::cpu {

/// RV32I CPU as an AHB master.
class CpuMaster final : public ahb::AhbMaster {
public:
  struct Config {
    std::uint32_t reset_pc = 0;
    /// Release the bus for `yield_cycles` after every `yield_every`
    /// instructions (0 = never yield; the CPU then monopolizes the bus
    /// whenever it is the highest-priority requester).
    unsigned yield_every = 0;
    unsigned yield_cycles = 2;
  };

  struct Stats {
    std::uint64_t fetches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t rmw_stores = 0;  ///< sub-word stores (read-modify-write)
    std::uint64_t error_responses = 0;
  };

  CpuMaster(sim::Module* parent, std::string name, ahb::AhbBus& bus, Config cfg);

  [[nodiscard]] const Rv32Core& core() const { return core_; }
  [[nodiscard]] Rv32Core& core() { return core_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool halted() const { return core_.halted(); }

private:
  sim::Task body();

  Config cfg_;
  Rv32Core core_;
  Stats stats_;
  sim::Thread thread_;
};

/// Loads a program (word vector) into a memory slave at `base`
/// (slave-relative byte offset).
void load_program(ahb::MemorySlave& mem, std::uint32_t base,
                  const std::vector<std::uint32_t>& words);

}  // namespace ahbp::cpu
