#include "cpu/programs.hpp"

#include "cpu/encode.hpp"

namespace ahbp::cpu::progs {

namespace {

/// Emits a load-immediate (1 or 2 instructions).
void li(std::vector<std::uint32_t>& v, unsigned rd, std::uint32_t value) {
  const auto sv = static_cast<std::int32_t>(value);
  if (sv >= -2048 && sv < 2048) {
    v.push_back(enc::addi(rd, 0, sv));
    return;
  }
  const auto hi = static_cast<std::int32_t>((value + 0x800u) >> 12);
  const std::int32_t lo = static_cast<std::int32_t>(value << 20) >> 20;
  v.push_back(enc::lui(rd, hi));
  v.push_back(enc::addi(rd, rd, lo));
}

}  // namespace

std::vector<std::uint32_t> sum_array(std::uint32_t src, unsigned n) {
  std::vector<std::uint32_t> v;
  li(v, 2, src);
  li(v, 5, n);
  v.push_back(enc::addi(10, 0, 0));
  // loop:
  v.push_back(enc::beq(5, 0, 24));   // -> ebreak
  v.push_back(enc::lw(1, 2, 0));
  v.push_back(enc::add(10, 10, 1));
  v.push_back(enc::addi(2, 2, 4));
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -20));     // -> loop
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> fibonacci(unsigned n) {
  std::vector<std::uint32_t> v;
  li(v, 5, n);
  v.push_back(enc::addi(6, 0, 0));  // a = fib(0)
  v.push_back(enc::addi(7, 0, 1));  // b = fib(1)
  // loop:
  v.push_back(enc::beq(5, 0, 24));  // -> done
  v.push_back(enc::add(1, 6, 7));   // t = a + b
  v.push_back(enc::add(6, 7, 0));   // a = b
  v.push_back(enc::add(7, 1, 0));   // b = t
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -20));    // -> loop
  // done:
  v.push_back(enc::add(10, 6, 0));  // result = a
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> memcpy_words(std::uint32_t src, std::uint32_t dst,
                                        unsigned words) {
  std::vector<std::uint32_t> v;
  li(v, 2, src);
  li(v, 3, dst);
  li(v, 5, words);
  // loop:
  v.push_back(enc::beq(5, 0, 28));  // -> ebreak
  v.push_back(enc::lw(1, 2, 0));
  v.push_back(enc::sw(1, 3, 0));
  v.push_back(enc::addi(2, 2, 4));
  v.push_back(enc::addi(3, 3, 4));
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -24));    // -> loop
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> fill_random(std::uint32_t dst, unsigned words,
                                       std::uint32_t seed) {
  std::vector<std::uint32_t> v;
  li(v, 2, dst);
  li(v, 5, words);
  li(v, 10, seed);
  // loop: xorshift32 then store.
  v.push_back(enc::beq(5, 0, 44));    // -> ebreak
  v.push_back(enc::slli(1, 10, 13));
  v.push_back(enc::xor_(10, 10, 1));
  v.push_back(enc::srli(1, 10, 17));
  v.push_back(enc::xor_(10, 10, 1));
  v.push_back(enc::slli(1, 10, 5));
  v.push_back(enc::xor_(10, 10, 1));
  v.push_back(enc::sw(10, 2, 0));
  v.push_back(enc::addi(2, 2, 4));
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -40));      // -> loop
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> memcpy_bytes(std::uint32_t src, std::uint32_t dst,
                                        unsigned bytes) {
  std::vector<std::uint32_t> v;
  li(v, 2, src);
  li(v, 3, dst);
  li(v, 5, bytes);
  // loop:
  v.push_back(enc::beq(5, 0, 28));  // -> ebreak
  v.push_back(enc::lbu(1, 2, 0));
  v.push_back(enc::sb(1, 3, 0));
  v.push_back(enc::addi(2, 2, 1));
  v.push_back(enc::addi(3, 3, 1));
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -24));    // -> loop
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> crc32_words(std::uint32_t src, unsigned words) {
  std::vector<std::uint32_t> v;
  li(v, 2, src);
  li(v, 5, words);
  v.push_back(enc::addi(10, 0, -1));  // crc = 0xFFFFFFFF
  li(v, 6, 0xEDB88320u);              // reflected polynomial (2 instrs)
  // Lw: (word-loop; indices relative to this instruction)
  v.push_back(enc::beq(5, 0, 52));    // -> done (index 13)
  v.push_back(enc::lw(1, 2, 0));
  v.push_back(enc::xor_(10, 10, 1));
  v.push_back(enc::addi(7, 0, 32));
  // Lb: (bit loop, index 4)
  v.push_back(enc::andi(11, 10, 1));
  v.push_back(enc::srli(10, 10, 1));
  v.push_back(enc::beq(11, 0, 8));    // skip the poly xor
  v.push_back(enc::xor_(10, 10, 6));
  v.push_back(enc::addi(7, 7, -1));
  v.push_back(enc::bne(7, 0, -20));   // -> Lb
  v.push_back(enc::addi(2, 2, 4));
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -48));      // -> Lw
  // done:
  v.push_back(enc::xori(10, 10, -1)); // crc = ~crc
  v.push_back(enc::ebreak());
  return v;
}

std::vector<std::uint32_t> bubble_sort(std::uint32_t base, unsigned n) {
  std::vector<std::uint32_t> v;
  li(v, 2, base);
  li(v, 5, n);
  // outer: (index 0)
  v.push_back(enc::addi(6, 5, -1));   // comparisons this pass
  v.push_back(enc::beq(6, 0, 48));    // -> done (index 13)
  v.push_back(enc::add(3, 2, 0));     // ptr = base
  // inner: (index 3)
  v.push_back(enc::lw(7, 3, 0));
  v.push_back(enc::lw(8, 3, 4));
  v.push_back(enc::bge(8, 7, 12));    // already ordered -> noswap
  v.push_back(enc::sw(8, 3, 0));
  v.push_back(enc::sw(7, 3, 4));
  // noswap: (index 8)
  v.push_back(enc::addi(3, 3, 4));
  v.push_back(enc::addi(6, 6, -1));
  v.push_back(enc::bne(6, 0, -28));   // -> inner
  v.push_back(enc::addi(5, 5, -1));
  v.push_back(enc::jal(0, -48));      // -> outer
  // done:
  v.push_back(enc::ebreak());
  return v;
}

}  // namespace ahbp::cpu::progs
