#pragma once
// RV32I instruction encoders -- the "assembler" used by tests, examples
// and workload generators to build programs as word vectors.
//
// Each function returns the 32-bit encoding; compose programs as
//   std::vector<uint32_t> prog = { addi(5, 0, 10), sw(5, 2, 0), ebreak() };

#include <cstdint>

namespace ahbp::cpu::enc {

namespace detail {
constexpr std::uint32_t r_type(std::uint32_t f7, std::uint32_t rs2,
                               std::uint32_t rs1, std::uint32_t f3,
                               std::uint32_t rd, std::uint32_t opc) {
  return f7 << 25 | rs2 << 20 | rs1 << 15 | f3 << 12 | rd << 7 | opc;
}
constexpr std::uint32_t i_type(std::int32_t imm, std::uint32_t rs1,
                               std::uint32_t f3, std::uint32_t rd,
                               std::uint32_t opc) {
  return static_cast<std::uint32_t>(imm & 0xFFF) << 20 | rs1 << 15 | f3 << 12 |
         rd << 7 | opc;
}
constexpr std::uint32_t s_type(std::int32_t imm, std::uint32_t rs2,
                               std::uint32_t rs1, std::uint32_t f3,
                               std::uint32_t opc) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 5) & 0x7F) << 25 | rs2 << 20 | rs1 << 15 | f3 << 12 |
         (u & 0x1F) << 7 | opc;
}
constexpr std::uint32_t b_type(std::int32_t imm, std::uint32_t rs2,
                               std::uint32_t rs1, std::uint32_t f3) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 12) & 1u) << 31 | ((u >> 5) & 0x3Fu) << 25 | rs2 << 20 |
         rs1 << 15 | f3 << 12 | ((u >> 1) & 0xFu) << 8 | ((u >> 11) & 1u) << 7 |
         0x63;
}
constexpr std::uint32_t u_type(std::int32_t imm20, std::uint32_t rd,
                               std::uint32_t opc) {
  return static_cast<std::uint32_t>(imm20) << 12 | rd << 7 | opc;
}
constexpr std::uint32_t j_type(std::int32_t imm, std::uint32_t rd) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 20) & 1u) << 31 | ((u >> 1) & 0x3FFu) << 21 |
         ((u >> 11) & 1u) << 20 | ((u >> 12) & 0xFFu) << 12 | rd << 7 | 0x6F;
}
}  // namespace detail

// --- U/J-type -------------------------------------------------------------
/// rd = imm20 << 12
constexpr std::uint32_t lui(unsigned rd, std::int32_t imm20) {
  return detail::u_type(imm20, rd, 0x37);
}
/// rd = pc + (imm20 << 12)
constexpr std::uint32_t auipc(unsigned rd, std::int32_t imm20) {
  return detail::u_type(imm20, rd, 0x17);
}
/// rd = pc + 4; pc += offset (bytes, even)
constexpr std::uint32_t jal(unsigned rd, std::int32_t offset) {
  return detail::j_type(offset, rd);
}
/// rd = pc + 4; pc = (rs1 + imm) & ~1
constexpr std::uint32_t jalr(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 0, rd, 0x67);
}

// --- branches (offset in bytes from this instruction) ----------------------
constexpr std::uint32_t beq(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 0);
}
constexpr std::uint32_t bne(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 1);
}
constexpr std::uint32_t blt(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 4);
}
constexpr std::uint32_t bge(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 5);
}
constexpr std::uint32_t bltu(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 6);
}
constexpr std::uint32_t bgeu(unsigned rs1, unsigned rs2, std::int32_t off) {
  return detail::b_type(off, rs2, rs1, 7);
}

// --- loads / stores ---------------------------------------------------------
constexpr std::uint32_t lb(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 0, rd, 0x03);
}
constexpr std::uint32_t lh(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 1, rd, 0x03);
}
constexpr std::uint32_t lw(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 2, rd, 0x03);
}
constexpr std::uint32_t lbu(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 4, rd, 0x03);
}
constexpr std::uint32_t lhu(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 5, rd, 0x03);
}
constexpr std::uint32_t sb(unsigned rs2, unsigned rs1, std::int32_t imm) {
  return detail::s_type(imm, rs2, rs1, 0, 0x23);
}
constexpr std::uint32_t sh(unsigned rs2, unsigned rs1, std::int32_t imm) {
  return detail::s_type(imm, rs2, rs1, 1, 0x23);
}
constexpr std::uint32_t sw(unsigned rs2, unsigned rs1, std::int32_t imm) {
  return detail::s_type(imm, rs2, rs1, 2, 0x23);
}

// --- ALU immediate ----------------------------------------------------------
constexpr std::uint32_t addi(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 0, rd, 0x13);
}
constexpr std::uint32_t slti(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 2, rd, 0x13);
}
constexpr std::uint32_t sltiu(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 3, rd, 0x13);
}
constexpr std::uint32_t xori(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 4, rd, 0x13);
}
constexpr std::uint32_t ori(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 6, rd, 0x13);
}
constexpr std::uint32_t andi(unsigned rd, unsigned rs1, std::int32_t imm) {
  return detail::i_type(imm, rs1, 7, rd, 0x13);
}
constexpr std::uint32_t slli(unsigned rd, unsigned rs1, unsigned shamt) {
  return detail::r_type(0, shamt, rs1, 1, rd, 0x13);
}
constexpr std::uint32_t srli(unsigned rd, unsigned rs1, unsigned shamt) {
  return detail::r_type(0, shamt, rs1, 5, rd, 0x13);
}
constexpr std::uint32_t srai(unsigned rd, unsigned rs1, unsigned shamt) {
  return detail::r_type(0x20, shamt, rs1, 5, rd, 0x13);
}

// --- ALU register -------------------------------------------------------------
constexpr std::uint32_t add(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 0, rd, 0x33);
}
constexpr std::uint32_t sub(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0x20, rs2, rs1, 0, rd, 0x33);
}
constexpr std::uint32_t sll(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 1, rd, 0x33);
}
constexpr std::uint32_t slt(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 2, rd, 0x33);
}
constexpr std::uint32_t sltu(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 3, rd, 0x33);
}
constexpr std::uint32_t xor_(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 4, rd, 0x33);
}
constexpr std::uint32_t srl(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 5, rd, 0x33);
}
constexpr std::uint32_t sra(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0x20, rs2, rs1, 5, rd, 0x33);
}
constexpr std::uint32_t or_(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 6, rd, 0x33);
}
constexpr std::uint32_t and_(unsigned rd, unsigned rs1, unsigned rs2) {
  return detail::r_type(0, rs2, rs1, 7, rd, 0x33);
}

// --- misc ---------------------------------------------------------------------
constexpr std::uint32_t nop() { return addi(0, 0, 0); }
constexpr std::uint32_t ecall() { return 0x00000073; }
constexpr std::uint32_t ebreak() { return 0x00100073; }
constexpr std::uint32_t fence() { return 0x0000000F; }

}  // namespace ahbp::cpu::enc
