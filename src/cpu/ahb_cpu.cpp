#include "cpu/ahb_cpu.hpp"

#include "ahb/bus.hpp"
#include "ahb/slave.hpp"

namespace ahbp::cpu {

using sim::Task;
using sim::wait;

CpuMaster::CpuMaster(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                     Config cfg)
    : AhbMaster(parent, std::move(name), bus),
      cfg_(cfg),
      core_(cfg.reset_pc),
      thread_(this, "proc", [this] { return body(); }) {}

void load_program(ahb::MemorySlave& mem, std::uint32_t base,
                  const std::vector<std::uint32_t>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    mem.poke(base + 4 * static_cast<std::uint32_t>(i), words[i]);
  }
}

Task CpuMaster::body() {
  ahb::BusSignals& bus = bus_signals();
  sim::Event& edge = clock().posedge_event();
  std::uint64_t since_yield = 0;

  // One serialized bus access. `write` selects direction; the result of
  // a read lands in `rdata`. (Written inline because coroutines cannot
  // call co_await through helper functions without extra machinery.)
  std::uint32_t rdata = 0;

  sig_.hbusreq.write(true);
  do {
    co_await wait(edge);
  } while (!(granted() && bus.hready.read()));

  while (!core_.halted()) {
    // ---- instruction fetch ---------------------------------------------
    {
      sig_.htrans.write(ahb::raw(ahb::Trans::kNonSeq));
      sig_.haddr.write(core_.fetch_addr());
      sig_.hwrite.write(false);
      sig_.hsize.write(ahb::raw(ahb::Size::kWord));
      sig_.hburst.write(ahb::raw(ahb::Burst::kSingle));
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      if (static_cast<ahb::Resp>(bus.hresp.read()) != ahb::Resp::kOkay) {
        ++stats_.error_responses;
      }
      rdata = bus.hrdata.read();
      ++stats_.fetches;
    }

    const MemOp mem = core_.execute(rdata);

    if (mem.kind == MemOp::Kind::kLoad ||
        (mem.kind == MemOp::Kind::kStore && mem.bytes != 4)) {
      // ---- data read (load, or the read half of a sub-word store) -------
      sig_.htrans.write(ahb::raw(ahb::Trans::kNonSeq));
      sig_.haddr.write(mem.addr & ~3u);
      sig_.hwrite.write(false);
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      if (static_cast<ahb::Resp>(bus.hresp.read()) != ahb::Resp::kOkay) {
        ++stats_.error_responses;
      }
      rdata = bus.hrdata.read();
      if (mem.kind == MemOp::Kind::kLoad) {
        core_.complete_load(mem, rdata);
        ++stats_.loads;
      }
    }

    if (mem.kind == MemOp::Kind::kStore) {
      // ---- data write (whole word; sub-word stores merge into rdata) ----
      const std::uint32_t word =
          mem.bytes == 4 ? mem.wdata : (rdata & ~mem.wmask) | mem.wdata;
      sig_.htrans.write(ahb::raw(ahb::Trans::kNonSeq));
      sig_.haddr.write(mem.addr & ~3u);
      sig_.hwrite.write(true);
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
      sig_.hwdata.write(word);
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      if (static_cast<ahb::Resp>(bus.hresp.read()) != ahb::Resp::kOkay) {
        ++stats_.error_responses;
      }
      ++stats_.stores;
      if (mem.bytes != 4) ++stats_.rmw_stores;
    }

    // ---- cooperative yield ----------------------------------------------
    if (cfg_.yield_every != 0 && ++since_yield >= cfg_.yield_every) {
      since_yield = 0;
      sig_.hbusreq.write(false);
      for (unsigned i = 0; i < cfg_.yield_cycles; ++i) co_await wait(edge);
      sig_.hbusreq.write(true);
      do {
        co_await wait(edge);
      } while (!(granted() && bus.hready.read()));
    }
  }

  // Halted: park the bus.
  sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
  sig_.hbusreq.write(false);
}

}  // namespace ahbp::cpu
