#pragma once
// Gate-level netlists.
//
// A Netlist is a flat graph of primitive gates over single-bit nets. It is
// the low-level reference the power macromodels are characterized and
// validated against -- the role Berkeley SIS played in the paper. Only
// what characterization needs is provided: structural construction,
// validation (single driver, no combinational cycles) and levelization
// for zero-delay simulation.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ahbp::gate {

/// Index of a single-bit net within a Netlist.
using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = UINT32_MAX;

/// Primitive gate kinds. All combinational gates take 1 (kNot, kBuf) or 2
/// inputs; wider functions are built as trees. kDff is a posedge
/// D-flip-flop clocked implicitly by GateSim::tick().
enum class GateType : std::uint8_t {
  kNot,
  kBuf,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kDff,
};

[[nodiscard]] const char* to_string(GateType t);
/// Number of data inputs the gate type takes.
[[nodiscard]] int arity(GateType t);
/// Evaluates a combinational gate (kDff not allowed here).
[[nodiscard]] bool eval_gate(GateType t, bool a, bool b);

/// One gate instance.
struct GateInst {
  GateType type;
  NetId in0 = kInvalidNet;
  NetId in1 = kInvalidNet;  ///< kInvalidNet for unary gates
  NetId out = kInvalidNet;
};

/// A flat gate-level netlist.
///
/// Construction protocol: create nets (or let gate factories create their
/// output nets), mark primary inputs/outputs, then call finalize() --
/// which validates the structure and computes a topological order -- before
/// handing the netlist to GateSim.
class Netlist {
public:
  Netlist() = default;

  /// @name Structure building
  ///@{
  NetId add_net(std::string name = "");
  /// Marks an existing net as a primary input (driven by the testbench).
  void mark_input(NetId n);
  /// Marks an existing net as a primary output (gets C_O load in energy
  /// accounting).
  void mark_output(NetId n);
  /// Adds a gate driving a fresh net; returns that net.
  NetId add_gate(GateType t, NetId a, NetId b = kInvalidNet);
  /// Adds a gate driving an existing (previously undriven) net.
  void add_gate_onto(GateType t, NetId a, NetId b, NetId out);
  /// Adds a D-flip-flop: q follows d at each GateSim::tick().
  NetId add_dff(NetId d, std::string q_name = "");
  ///@}

  /// Builds convenience: balanced AND/OR tree over `ins` (>= 1 nets).
  NetId add_tree(GateType t2, const std::vector<NetId>& ins);

  /// Validates (every non-input net has exactly one driver; no
  /// combinational cycles) and computes the evaluation order. Throws
  /// ahbp::sim::SimError on violations.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// @name Introspection
  ///@{
  [[nodiscard]] std::size_t net_count() const { return net_names_.size(); }
  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] std::size_t dff_count() const;
  [[nodiscard]] const std::vector<GateInst>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::string& net_name(NetId n) const { return net_names_[n]; }
  /// O(1): simulators call this on every driven input, every cycle.
  [[nodiscard]] bool is_input(NetId n) const {
    return n < input_flag_.size() && input_flag_[n] != 0;
  }
  [[nodiscard]] bool is_output(NetId n) const;
  /// Indices into gates() in topological (evaluation) order; valid after
  /// finalize(). DFFs are excluded (they are sequential boundaries).
  [[nodiscard]] const std::vector<std::size_t>& topo_order() const { return topo_; }
  ///@}

  /// Emits the netlist in (a subset of) BLIF, the interchange format SIS
  /// used; handy for eyeballing generated structures.
  [[nodiscard]] std::string to_blif(const std::string& model_name) const;

private:
  std::vector<std::string> net_names_;
  std::vector<GateInst> gates_;
  std::vector<NetId> inputs_;
  std::vector<std::uint8_t> input_flag_;  ///< [net] -> is primary input
  std::vector<NetId> outputs_;
  std::vector<std::size_t> topo_;
  bool finalized_ = false;
};

}  // namespace ahbp::gate
