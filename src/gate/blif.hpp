#pragma once
// BLIF import -- the counterpart of Netlist::to_blif().
//
// Parses the structural subset SIS-era tools exchanged: .model, .inputs,
// .outputs, .names with single-output covers matching our gate library,
// .latch (rising-edge D flip-flops) and .end. This closes the loop with
// the paper's flow: netlists characterized here can be round-tripped
// through the same interchange format the authors fed to SIS.

#include <string>

#include "gate/netlist.hpp"

namespace ahbp::gate {

/// Result of parsing a BLIF model.
struct BlifModel {
  std::string name;
  Netlist netlist;  ///< finalized
};

/// Parses one BLIF model. Throws sim::SimError on syntax errors, covers
/// that do not correspond to a library gate, or structural violations
/// (via Netlist::finalize()).
[[nodiscard]] BlifModel from_blif(const std::string& text);

}  // namespace ahbp::gate
