#include "gate/synth.hpp"

#include <string>

#include "sim/report.hpp"

namespace ahbp::gate {

using sim::SimError;

unsigned select_bits(unsigned n) {
  if (n < 2) return 1;
  unsigned bits = 0;
  unsigned v = n - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

namespace {

/// Adds addr inputs plus their inverters; returns (true_nets, false_nets).
struct AddressLiterals {
  std::vector<NetId> pos;
  std::vector<NetId> neg;
};

AddressLiterals add_address_literals(Netlist& nl, unsigned bits,
                                     const std::string& prefix,
                                     std::vector<NetId>& inputs_out) {
  AddressLiterals lit;
  for (unsigned b = 0; b < bits; ++b) {
    const NetId a = nl.add_net(prefix + std::to_string(b));
    nl.mark_input(a);
    inputs_out.push_back(a);
    lit.pos.push_back(a);
    lit.neg.push_back(nl.add_gate(GateType::kNot, a));
  }
  return lit;
}

/// Builds the one-hot minterm for `index` over the given literals.
NetId add_minterm(Netlist& nl, const AddressLiterals& lit, unsigned index) {
  std::vector<NetId> terms;
  for (unsigned b = 0; b < lit.pos.size(); ++b) {
    terms.push_back((index >> b & 1u) != 0 ? lit.pos[b] : lit.neg[b]);
  }
  return nl.add_tree(GateType::kAnd, terms);
}

}  // namespace

DecoderNetlist build_onehot_decoder(unsigned n_outputs) {
  if (n_outputs < 2) throw SimError("build_onehot_decoder: need >= 2 outputs");
  DecoderNetlist d;
  const unsigned bits = select_bits(n_outputs);
  const AddressLiterals lit = add_address_literals(d.nl, bits, "addr", d.addr);
  for (unsigned o = 0; o < n_outputs; ++o) {
    NetId term = add_minterm(d.nl, lit, o);
    // Route through a buffer so the primary output has a dedicated driver
    // (mirrors the output buffering of the synthesized structure).
    const NetId out = d.nl.add_gate(GateType::kBuf, term);
    d.nl.mark_output(out);
    d.sel.push_back(out);
  }
  d.nl.finalize();
  return d;
}

MuxNetlist build_mux(unsigned width, unsigned n_inputs) {
  if (width < 1) throw SimError("build_mux: need width >= 1");
  if (n_inputs < 2) throw SimError("build_mux: need >= 2 inputs");
  MuxNetlist m;
  const unsigned bits = select_bits(n_inputs);
  const AddressLiterals lit = add_address_literals(m.nl, bits, "sel", m.sel);

  // Shared one-hot select decode.
  std::vector<NetId> onehot;
  for (unsigned i = 0; i < n_inputs; ++i) onehot.push_back(add_minterm(m.nl, lit, i));

  m.data.resize(n_inputs);
  for (unsigned i = 0; i < n_inputs; ++i) {
    for (unsigned b = 0; b < width; ++b) {
      const NetId in = m.nl.add_net("d" + std::to_string(i) + "_" + std::to_string(b));
      m.nl.mark_input(in);
      m.data[i].push_back(in);
    }
  }
  for (unsigned b = 0; b < width; ++b) {
    std::vector<NetId> gated;
    for (unsigned i = 0; i < n_inputs; ++i) {
      gated.push_back(m.nl.add_gate(GateType::kAnd, m.data[i][b], onehot[i]));
    }
    const NetId out = m.nl.add_tree(GateType::kOr, gated);
    m.nl.mark_output(out);
    m.out.push_back(out);
  }
  m.nl.finalize();
  return m;
}

ArbiterNetlist build_priority_arbiter(unsigned n_masters) {
  if (n_masters < 2) throw SimError("build_priority_arbiter: need >= 2 masters");
  ArbiterNetlist a;
  const unsigned bits = select_bits(n_masters);

  for (unsigned i = 0; i < n_masters; ++i) {
    const NetId r = a.nl.add_net("req" + std::to_string(i));
    a.nl.mark_input(r);
    a.req.push_back(r);
  }

  // wins_i = req_i AND NOT(req_0 OR ... OR req_{i-1}); master 0 has the
  // highest priority. If nobody requests, the default master (0) wins.
  std::vector<NetId> wins(n_masters);
  NetId any_higher = kInvalidNet;
  for (unsigned i = 0; i < n_masters; ++i) {
    if (i == 0) {
      wins[0] = a.nl.add_gate(GateType::kBuf, a.req[0]);
      any_higher = a.req[0];
    } else {
      const NetId none_higher = a.nl.add_gate(GateType::kNot, any_higher);
      wins[i] = a.nl.add_gate(GateType::kAnd, a.req[i], none_higher);
      any_higher = a.nl.add_gate(GateType::kOr, any_higher, a.req[i]);
    }
  }

  // next_state bit b = OR of wins_i over masters whose index has bit b set.
  // (Master 0 contributes no bits; the all-zero state doubles as the
  // default-master grant, so idle buses park on master 0.)
  std::vector<NetId> next_state(bits);
  for (unsigned b = 0; b < bits; ++b) {
    std::vector<NetId> contributors;
    for (unsigned i = 1; i < n_masters; ++i) {
      if ((i >> b & 1u) != 0) contributors.push_back(wins[i]);
    }
    if (contributors.empty()) {
      // No master index uses this bit: constant 0 via AND(req0, !req0).
      const NetId n0 = a.nl.add_gate(GateType::kNot, a.req[0]);
      next_state[b] = a.nl.add_gate(GateType::kAnd, a.req[0], n0);
    } else {
      next_state[b] = a.nl.add_tree(GateType::kOr, contributors);
    }
  }

  for (unsigned b = 0; b < bits; ++b) {
    a.state.push_back(a.nl.add_dff(next_state[b], "state" + std::to_string(b)));
  }

  // Registered one-hot grant decode from the state bits.
  AddressLiterals lit;
  for (unsigned b = 0; b < bits; ++b) {
    lit.pos.push_back(a.state[b]);
    lit.neg.push_back(a.nl.add_gate(GateType::kNot, a.state[b]));
  }
  for (unsigned i = 0; i < n_masters; ++i) {
    const NetId g = a.nl.add_gate(GateType::kBuf, add_minterm(a.nl, lit, i));
    a.nl.mark_output(g);
    a.grant.push_back(g);
  }
  a.nl.finalize();
  return a;
}

}  // namespace ahbp::gate
