#pragma once
// Structural generators for the AHB sub-blocks at gate level.
//
// These produce exactly the structures the paper characterized:
//  * a one-hot address decoder built from NOT and AND gates (Sec. 5.1),
//  * a generic n-to-1 multiplexer of width w,
//  * a simplified priority arbiter modeled as a Moore FSM.
//
// The returned bundles expose the primary-input/-output nets so
// characterization code (charlib) can drive them and fit macromodels.

#include <vector>

#include "gate/netlist.hpp"

namespace ahbp::gate {

/// Number of select/address bits needed for `n` alternatives -- the
/// paper's "first integer greater than log2(n-1)" (== ceil(log2 n),
/// minimum 1).
[[nodiscard]] unsigned select_bits(unsigned n);

/// One-hot decoder: addr (binary) -> sel (one-hot among n_outputs).
struct DecoderNetlist {
  Netlist nl;
  std::vector<NetId> addr;  ///< n_I binary address inputs (LSB first)
  std::vector<NetId> sel;   ///< n_O one-hot select outputs
};
/// Builds a decoder with n_outputs >= 2 outputs from NOT and AND gates.
[[nodiscard]] DecoderNetlist build_onehot_decoder(unsigned n_outputs);

/// n-to-1 multiplexer: out = data[sel], bit-sliced over `width` bits.
struct MuxNetlist {
  Netlist nl;
  std::vector<std::vector<NetId>> data;  ///< [input][bit] data inputs
  std::vector<NetId> sel;                ///< binary select inputs (LSB first)
  std::vector<NetId> out;                ///< width output bits
};
/// Builds a mux with n_inputs >= 2 inputs of `width` >= 1 bits each.
[[nodiscard]] MuxNetlist build_mux(unsigned width, unsigned n_inputs);

/// Simplified bus arbiter as a Moore FSM:
///   state (DFF register) = index of the granted master (binary);
///   next state = highest-priority requester (master 0 = highest), or the
///   default master 0 when nobody requests;
///   grant outputs = one-hot decode of the state.
struct ArbiterNetlist {
  Netlist nl;
  std::vector<NetId> req;    ///< n request inputs
  std::vector<NetId> grant;  ///< n one-hot grant outputs (registered state)
  std::vector<NetId> state;  ///< DFF outputs (binary master index)
};
/// Builds an arbiter FSM for n_masters >= 2 masters. Advance it with
/// GateSim::tick().
[[nodiscard]] ArbiterNetlist build_priority_arbiter(unsigned n_masters);

}  // namespace ahbp::gate
