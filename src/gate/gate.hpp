#pragma once
// Umbrella header for ahbp::gate -- the gate-level reference substrate
// (netlists, structural generators, toggle-energy simulation).

#include "gate/area.hpp"
#include "gate/bitsim.hpp"
#include "gate/blif.hpp"
#include "gate/gatesim.hpp"
#include "gate/netlist.hpp"
#include "gate/synth.hpp"
#include "gate/tech.hpp"
