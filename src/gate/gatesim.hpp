#pragma once
// Zero-delay levelized gate simulator with switching-energy accounting.
//
// This is the reference ("SIS role") simulator: it evaluates a finalized
// Netlist cycle by cycle, counts settled-value transitions per net, and
// charges CV^2/2 per transition. Because evaluation is levelized there are
// no glitches -- each net toggles at most once per step, matching the
// assumptions behind the paper's Hamming-distance macromodels.

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/tech.hpp"

namespace ahbp::gate {

/// Simulates a finalized Netlist and accumulates switching energy.
class GateSim {
public:
  /// The netlist must outlive the simulator and be finalize()d.
  GateSim(const Netlist& nl, Technology tech = Technology::default_2003());

  /// Drives a primary input (takes effect at the next eval()/tick()).
  void set_input(NetId n, bool v);

  /// Settles combinational logic and accounts transitions. Call after
  /// changing inputs; for sequential designs use tick() instead.
  void eval();

  /// One clock cycle: DFFs capture their D values, then combinational
  /// logic settles; all resulting transitions are accounted.
  void tick();

  /// Current settled value of any net.
  [[nodiscard]] bool value(NetId n) const { return values_[n] != 0; }

  /// @name Activity and energy accounting
  ///@{
  [[nodiscard]] std::uint64_t toggles(NetId n) const { return toggle_counts_[n]; }
  [[nodiscard]] std::uint64_t total_toggles() const;
  /// Switching energy accumulated since construction/reset [J].
  [[nodiscard]] double energy() const { return energy_; }
  /// Clears energy and toggle counters (state and values are kept).
  void reset_accounting();
  ///@}

  /// Per-net total capacitance used for accounting [F].
  [[nodiscard]] double net_capacitance(NetId n) const { return net_cap_[n]; }

  [[nodiscard]] const Technology& tech() const { return tech_; }

private:
  void settle_and_account(bool account);
  /// Evaluates all combinational gates in topological order over `next`.
  void settle(std::vector<std::uint8_t>& next);
  /// Accounts next-vs-current transitions (optionally) and commits `next`.
  void account_and_commit(bool account);

  const Netlist& nl_;
  Technology tech_;
  std::vector<std::uint8_t> values_;        ///< settled value per net
  std::vector<std::uint8_t> scratch_;       ///< settle buffer (reused, no per-call alloc)
  std::vector<std::uint8_t> input_next_;    ///< pending primary-input values
  std::vector<std::uint64_t> toggle_counts_;
  std::vector<double> net_cap_;
  double energy_ = 0.0;
};

}  // namespace ahbp::gate
