#include "gate/gatesim.hpp"

#include <numeric>

#include "sim/report.hpp"

namespace ahbp::gate {

using sim::SimError;

GateSim::GateSim(const Netlist& nl, Technology tech)
    : nl_(nl),
      tech_(tech),
      values_(nl.net_count(), 0),
      scratch_(nl.net_count(), 0),
      input_next_(nl.net_count(), 0),
      toggle_counts_(nl.net_count(), 0),
      net_cap_(nl.net_count(), 0.0) {
  if (!nl.finalized()) throw SimError("GateSim: netlist not finalized");

  // Per-net capacitance: intrinsic driver output cap + one input cap per
  // driven gate pin + extra load on primary outputs.
  for (NetId n = 0; n < nl.net_count(); ++n) net_cap_[n] = tech_.c_node;
  for (const GateInst& g : nl.gates()) {
    net_cap_[g.in0] += tech_.c_in;
    if (g.in1 != kInvalidNet) net_cap_[g.in1] += tech_.c_in;
  }
  for (NetId n : nl.outputs()) net_cap_[n] += tech_.c_out;

  // Establish a consistent all-zero-input initial state without charging
  // energy for it.
  settle_and_account(/*account=*/false);
}

void GateSim::set_input(NetId n, bool v) {
  if (!nl_.is_input(n)) throw SimError("set_input: net is not a primary input");
  input_next_[n] = v ? 1 : 0;
}

std::uint64_t GateSim::total_toggles() const {
  return std::accumulate(toggle_counts_.begin(), toggle_counts_.end(),
                         std::uint64_t{0});
}

void GateSim::reset_accounting() {
  std::fill(toggle_counts_.begin(), toggle_counts_.end(), 0);
  energy_ = 0.0;
}

void GateSim::settle(std::vector<std::uint8_t>& next) {
  // Levelized evaluation: one pass in topological order settles
  // everything (DFF outputs are carried over in `next` by the caller).
  const auto& gates = nl_.gates();
  for (std::size_t gi : nl_.topo_order()) {
    const GateInst& g = gates[gi];
    const bool a = next[g.in0] != 0;
    const bool b = g.in1 != kInvalidNet && next[g.in1] != 0;
    next[g.out] = eval_gate(g.type, a, b) ? 1 : 0;
  }
}

void GateSim::account_and_commit(bool account) {
  if (account) {
    for (NetId n = 0; n < nl_.net_count(); ++n) {
      if (scratch_[n] != values_[n]) {
        ++toggle_counts_[n];
        energy_ += tech_.toggle_energy(net_cap_[n]);
      }
    }
  }
  values_.swap(scratch_);
}

void GateSim::settle_and_account(bool account) {
  scratch_ = values_;

  // Apply pending primary-input values.
  for (NetId n : nl_.inputs()) scratch_[n] = input_next_[n];

  settle(scratch_);
  account_and_commit(account);
}

void GateSim::eval() { settle_and_account(true); }

void GateSim::tick() {
  // A full clock cycle: the inputs applied during the cycle propagate to
  // the DFF D pins (setup), then the clock edge captures them and the new
  // state ripples through the grant decode. Both waves are accounted.
  settle_and_account(true);

  scratch_ = values_;
  for (const GateInst& g : nl_.gates()) {
    if (g.type == GateType::kDff) scratch_[g.out] = values_[g.in0];
  }
  settle(scratch_);
  account_and_commit(true);
}

}  // namespace ahbp::gate
