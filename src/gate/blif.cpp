#include "gate/blif.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "sim/report.hpp"

namespace ahbp::gate {

using sim::SimError;

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

/// Maps a .names cover (set of input patterns implying output 1) back to
/// a library gate type. Patterns are sorted for canonical comparison.
GateType cover_to_gate(unsigned n_inputs, std::vector<std::string> patterns) {
  std::sort(patterns.begin(), patterns.end());
  if (n_inputs == 1) {
    if (patterns == std::vector<std::string>{"0"}) return GateType::kNot;
    if (patterns == std::vector<std::string>{"1"}) return GateType::kBuf;
  } else if (n_inputs == 2) {
    if (patterns == std::vector<std::string>{"11"}) return GateType::kAnd;
    if (patterns == std::vector<std::string>{"-1", "1-"}) return GateType::kOr;
    if (patterns == std::vector<std::string>{"-0", "0-"}) return GateType::kNand;
    if (patterns == std::vector<std::string>{"00"}) return GateType::kNor;
    if (patterns == std::vector<std::string>{"01", "10"}) return GateType::kXor;
    if (patterns == std::vector<std::string>{"00", "11"}) return GateType::kXnor;
  }
  throw SimError("from_blif: cover does not match a library gate");
}

}  // namespace

BlifModel from_blif(const std::string& text) {
  BlifModel model;
  std::map<std::string, NetId> nets;
  auto net_of = [&](const std::string& name) {
    const auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    const NetId id = model.netlist.add_net(name);
    nets.emplace(name, id);
    return id;
  };

  // Join continuation lines (trailing backslash) and split into lines.
  std::vector<std::string> lines;
  {
    std::istringstream is(text);
    std::string line, pending;
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\\') {
        pending += line.substr(0, line.size() - 1) + " ";
        continue;
      }
      lines.push_back(pending + line);
      pending.clear();
    }
    if (!pending.empty()) lines.push_back(pending);
  }

  bool seen_model = false;
  bool ended = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    auto toks = tokenize(lines[li]);
    if (toks.empty() || toks[0][0] == '#') continue;
    if (ended) break;
    const std::string& kw = toks[0];

    if (kw == ".model") {
      if (toks.size() < 2) throw SimError("from_blif: .model without a name");
      model.name = toks[1];
      seen_model = true;
    } else if (kw == ".inputs") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        model.netlist.mark_input(net_of(toks[i]));
      }
    } else if (kw == ".outputs") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        model.netlist.mark_output(net_of(toks[i]));
      }
    } else if (kw == ".latch") {
      // .latch <d> <q> [re clk [init]]
      if (toks.size() < 3) throw SimError("from_blif: malformed .latch");
      const NetId d = net_of(toks[1]);
      // add_dff creates a fresh net; splice it under the declared name.
      // Simplest correct handling: create q via helper gate mapping --
      // the declared q must not already be driven.
      const NetId q = net_of(toks[2]);
      // Netlist::add_dff returns a new net, so emulate by driving q with
      // a DFF through add_gate_onto-equivalent: there is no public API
      // for "dff onto existing net", so connect via an internal net and
      // a buffer: q = BUF(dff(d)).
      const NetId qi = model.netlist.add_dff(d, toks[2] + "__ff");
      model.netlist.add_gate_onto(GateType::kBuf, qi, kInvalidNet, q);
    } else if (kw == ".names") {
      if (toks.size() < 2) throw SimError("from_blif: .names without signals");
      const std::vector<std::string> sig(toks.begin() + 1, toks.end());
      const unsigned n_in = static_cast<unsigned>(sig.size()) - 1;
      if (n_in < 1 || n_in > 2) {
        throw SimError("from_blif: only 1- and 2-input covers supported");
      }
      // Collect the cover rows that follow.
      std::vector<std::string> patterns;
      while (li + 1 < lines.size()) {
        auto next = tokenize(lines[li + 1]);
        if (next.empty() || next[0][0] == '.') break;
        if (next.size() != 2 || next[1] != "1") {
          throw SimError("from_blif: only on-set single-output covers supported");
        }
        patterns.push_back(next[0]);
        ++li;
      }
      const GateType g = cover_to_gate(n_in, patterns);
      const NetId a = net_of(sig[0]);
      const NetId b = n_in == 2 ? net_of(sig[1]) : kInvalidNet;
      const NetId out = net_of(sig.back());
      model.netlist.add_gate_onto(g, a, b, out);
    } else if (kw == ".end") {
      ended = true;
    } else {
      throw SimError("from_blif: unsupported construct '" + kw + "'");
    }
  }

  if (!seen_model) throw SimError("from_blif: missing .model");
  model.netlist.finalize();
  return model;
}

}  // namespace ahbp::gate
