#include "gate/bitsim.hpp"

#include <bit>
#include <numeric>

#include "sim/report.hpp"

namespace ahbp::gate {

using sim::SimError;

BitSim::BitSim(const Netlist& nl, Technology tech, Accounting mode)
    : nl_(nl),
      tech_(tech),
      mode_(mode),
      values_(nl.net_count(), 0),
      scratch_(nl.net_count(), 0),
      input_next_(nl.net_count(), 0),
      toggle_counts_(nl.net_count(), 0),
      net_cap_(nl.net_count(), 0.0),
      toggle_energy_(nl.net_count(), 0.0) {
  if (!nl.finalized()) throw SimError("BitSim: netlist not finalized");

  // Same load model as GateSim: intrinsic node cap + one input cap per
  // driven pin + extra load on primary outputs.
  for (NetId n = 0; n < nl.net_count(); ++n) net_cap_[n] = tech_.c_node;
  for (const GateInst& g : nl.gates()) {
    net_cap_[g.in0] += tech_.c_in;
    if (g.in1 != kInvalidNet) net_cap_[g.in1] += tech_.c_in;
  }
  for (NetId n : nl.outputs()) net_cap_[n] += tech_.c_out;
  for (NetId n = 0; n < nl.net_count(); ++n) {
    toggle_energy_[n] = tech_.toggle_energy(net_cap_[n]);
  }

  // Flatten the evaluation order once: the hot loop walks a dense gate
  // array instead of indirecting topo index -> gates() element.
  program_.reserve(nl.topo_order().size());
  for (std::size_t gi : nl.topo_order()) program_.push_back(nl.gates()[gi]);

  if (mode_ == Accounting::kPerLaneToggles) {
    lane_toggle_counts_.assign(nl.net_count() * kLanes, 0);
  }

  // Consistent all-zero-input initial state, free of charge -- mirrors
  // GateSim's constructor settle.
  settle(scratch_);
  account_and_commit(/*account=*/false);
}

void BitSim::fail_not_input() const {
  throw SimError("set_input: net is not a primary input");
}

void BitSim::fail_lane_energy(unsigned lane) const {
  if (lane >= kLanes) throw SimError("lane_energy: lane out of range");
  throw SimError("lane_energy: requires per-lane accounting");
}

void BitSim::set_input_lane(NetId n, unsigned lane, bool v) {
  if (!nl_.is_input(n)) fail_not_input();
  if (lane >= kLanes) throw SimError("set_input_lane: lane out of range");
  const std::uint64_t bit = 1ull << lane;
  if (v) {
    input_next_[n] |= bit;
  } else {
    input_next_[n] &= ~bit;
  }
}

std::uint64_t BitSim::total_toggles() const {
  return std::accumulate(toggle_counts_.begin(), toggle_counts_.end(),
                         std::uint64_t{0});
}

std::uint64_t BitSim::lane_toggles(NetId n, unsigned lane) const {
  if (mode_ != Accounting::kPerLaneToggles) {
    throw SimError("lane_toggles: requires Accounting::kPerLaneToggles");
  }
  if (lane >= kLanes) throw SimError("lane_toggles: lane out of range");
  return lane_toggle_counts_[static_cast<std::size_t>(n) * kLanes + lane];
}

void BitSim::reset_accounting() {
  std::fill(toggle_counts_.begin(), toggle_counts_.end(), 0);
  energy_ = 0.0;
  lane_energy_.fill(0.0);
  std::fill(lane_toggle_counts_.begin(), lane_toggle_counts_.end(), 0);
}

void BitSim::settle(std::vector<std::uint64_t>& next) {
  for (NetId n : nl_.inputs()) next[n] = input_next_[n];
  for (const GateInst& g : program_) {
    const std::uint64_t a = next[g.in0];
    const std::uint64_t b = g.in1 != kInvalidNet ? next[g.in1] : 0;
    std::uint64_t r = 0;
    switch (g.type) {
      case GateType::kNot: r = ~a; break;
      case GateType::kBuf: r = a; break;
      case GateType::kAnd: r = a & b; break;
      case GateType::kOr: r = a | b; break;
      case GateType::kNand: r = ~(a & b); break;
      case GateType::kNor: r = ~(a | b); break;
      case GateType::kXor: r = a ^ b; break;
      case GateType::kXnor: r = ~(a ^ b); break;
      case GateType::kDff: break;  // sequential; excluded from topo order
    }
    next[g.out] = r;
  }
}

void BitSim::account_and_commit(bool account) {
  if (account) {
    const NetId n_nets = static_cast<NetId>(nl_.net_count());
    const bool per_lane = mode_ != Accounting::kAggregate;
    const bool track_toggles = mode_ == Accounting::kPerLaneToggles;
    for (NetId n = 0; n < n_nets; ++n) {
      const std::uint64_t mask = scratch_[n] ^ values_[n];
      if (mask == 0) continue;
      const int pc = std::popcount(mask);
      toggle_counts_[n] += static_cast<std::uint64_t>(pc);
      const double w = toggle_energy_[n];
      energy_ += static_cast<double>(pc) * w;
      if (per_lane) {
        // Per-lane accumulation in net-ascending order reproduces
        // GateSim's accounting scan exactly, so per-lane energy sums
        // round identically to the scalar path.
        std::uint64_t m = mask;
        while (m != 0) {
          const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
          lane_energy_[lane] += w;
        }
      }
      if (track_toggles) {
        std::uint64_t m = mask;
        std::uint64_t* lt =
            &lane_toggle_counts_[static_cast<std::size_t>(n) * kLanes];
        while (m != 0) {
          ++lt[std::countr_zero(m)];
          m &= m - 1;
        }
      }
    }
  }
  values_.swap(scratch_);
}

void BitSim::eval() {
  scratch_ = values_;
  settle(scratch_);
  account_and_commit(true);
}

void BitSim::eval_unaccounted() {
  scratch_ = values_;
  settle(scratch_);
  account_and_commit(false);
}

void BitSim::tick() {
  // Setup wave: pending inputs propagate to the DFF D pins.
  eval();

  // Clock edge: every DFF output takes its D value, then the new state
  // ripples through the combinational logic.
  scratch_ = values_;
  for (const GateInst& g : nl_.gates()) {
    if (g.type == GateType::kDff) scratch_[g.out] = values_[g.in0];
  }
  settle(scratch_);
  account_and_commit(true);
}

}  // namespace ahbp::gate
