#include "gate/netlist.hpp"

#include <algorithm>
#include <sstream>

#include "sim/report.hpp"

namespace ahbp::gate {

using sim::SimError;

const char* to_string(GateType t) {
  switch (t) {
    case GateType::kNot: return "not";
    case GateType::kBuf: return "buf";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kDff: return "dff";
  }
  return "?";
}

int arity(GateType t) {
  switch (t) {
    case GateType::kNot:
    case GateType::kBuf:
    case GateType::kDff:
      return 1;
    default:
      return 2;
  }
}

bool eval_gate(GateType t, bool a, bool b) {
  switch (t) {
    case GateType::kNot: return !a;
    case GateType::kBuf: return a;
    case GateType::kAnd: return a && b;
    case GateType::kOr: return a || b;
    case GateType::kNand: return !(a && b);
    case GateType::kNor: return !(a || b);
    case GateType::kXor: return a != b;
    case GateType::kXnor: return a == b;
    case GateType::kDff: break;
  }
  throw SimError("eval_gate: not a combinational gate");
}

NetId Netlist::add_net(std::string name) {
  if (name.empty()) name = "n" + std::to_string(net_names_.size());
  net_names_.push_back(std::move(name));
  return static_cast<NetId>(net_names_.size() - 1);
}

void Netlist::mark_input(NetId n) {
  if (n >= net_count()) throw SimError("mark_input: bad net id");
  inputs_.push_back(n);
  if (input_flag_.size() < net_count()) input_flag_.resize(net_count(), 0);
  input_flag_[n] = 1;
}

void Netlist::mark_output(NetId n) {
  if (n >= net_count()) throw SimError("mark_output: bad net id");
  outputs_.push_back(n);
}

NetId Netlist::add_gate(GateType t, NetId a, NetId b) {
  const NetId out = add_net();
  add_gate_onto(t, a, b, out);
  return out;
}

void Netlist::add_gate_onto(GateType t, NetId a, NetId b, NetId out) {
  if (t == GateType::kDff) throw SimError("use add_dff for flip-flops");
  if (a >= net_count() || out >= net_count()) throw SimError("add_gate: bad net id");
  if (arity(t) == 2 && b >= net_count()) throw SimError("add_gate: bad second input");
  if (arity(t) == 1) b = kInvalidNet;
  gates_.push_back(GateInst{t, a, b, out});
  finalized_ = false;
}

NetId Netlist::add_dff(NetId d, std::string q_name) {
  if (d >= net_count()) throw SimError("add_dff: bad net id");
  const NetId q = add_net(std::move(q_name));
  gates_.push_back(GateInst{GateType::kDff, d, kInvalidNet, q});
  finalized_ = false;
  return q;
}

NetId Netlist::add_tree(GateType t2, const std::vector<NetId>& ins) {
  if (arity(t2) != 2) throw SimError("add_tree: needs a binary gate type");
  if (ins.empty()) throw SimError("add_tree: empty input list");
  std::vector<NetId> level = ins;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_gate(t2, level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

std::size_t Netlist::dff_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const GateInst& g) { return g.type == GateType::kDff; }));
}

bool Netlist::is_output(NetId n) const {
  return std::find(outputs_.begin(), outputs_.end(), n) != outputs_.end();
}

void Netlist::finalize() {
  // Single-driver check: primary inputs and DFF outputs are "driven" too.
  std::vector<int> drivers(net_count(), 0);
  for (NetId n : inputs_) ++drivers[n];
  for (const GateInst& g : gates_) ++drivers[g.out];
  for (NetId n = 0; n < net_count(); ++n) {
    if (drivers[n] > 1) {
      throw SimError("netlist: net '" + net_names_[n] + "' has multiple drivers");
    }
    if (drivers[n] == 0) {
      throw SimError("netlist: net '" + net_names_[n] + "' is undriven");
    }
  }

  // Kahn topological sort over combinational gates. DFF outputs act as
  // sources; DFF inputs are sinks, so state loops through a DFF are legal.
  std::vector<bool> source_net(net_count(), false);
  for (NetId n : inputs_) source_net[n] = true;
  for (const GateInst& g : gates_) {
    if (g.type == GateType::kDff) source_net[g.out] = true;
  }
  std::vector<std::vector<std::size_t>> consumers(net_count());
  std::vector<int> pending(gates_.size(), 0);
  std::vector<std::size_t> ready;
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const GateInst& g = gates_[gi];
    if (g.type == GateType::kDff) continue;
    int deps = 0;
    for (NetId in : {g.in0, g.in1}) {
      if (in == kInvalidNet) continue;
      // A net is immediately available if it is a primary input or a DFF
      // output; otherwise we must wait for its driving gate.
      if (!source_net[in]) {
        consumers[in].push_back(gi);
        ++deps;
      }
    }
    pending[gi] = deps;
    if (deps == 0) ready.push_back(gi);
  }

  topo_.clear();
  while (!ready.empty()) {
    const std::size_t gi = ready.back();
    ready.pop_back();
    topo_.push_back(gi);
    for (std::size_t ci : consumers[gates_[gi].out]) {
      if (--pending[ci] == 0) ready.push_back(ci);
    }
  }

  std::size_t comb_gates = 0;
  for (const GateInst& g : gates_) {
    if (g.type != GateType::kDff) ++comb_gates;
  }
  if (topo_.size() != comb_gates) {
    throw SimError("netlist: combinational cycle detected");
  }
  finalized_ = true;
}

std::string Netlist::to_blif(const std::string& model_name) const {
  std::ostringstream os;
  os << ".model " << model_name << '\n';
  os << ".inputs";
  for (NetId n : inputs_) os << ' ' << net_names_[n];
  os << "\n.outputs";
  for (NetId n : outputs_) os << ' ' << net_names_[n];
  os << '\n';
  for (const GateInst& g : gates_) {
    if (g.type == GateType::kDff) {
      os << ".latch " << net_names_[g.in0] << ' ' << net_names_[g.out] << " re clk 0\n";
      continue;
    }
    os << ".names " << net_names_[g.in0];
    if (g.in1 != kInvalidNet) os << ' ' << net_names_[g.in1];
    os << ' ' << net_names_[g.out] << '\n';
    switch (g.type) {
      case GateType::kNot: os << "0 1\n"; break;
      case GateType::kBuf: os << "1 1\n"; break;
      case GateType::kAnd: os << "11 1\n"; break;
      case GateType::kOr: os << "1- 1\n-1 1\n"; break;
      case GateType::kNand: os << "0- 1\n-0 1\n"; break;
      case GateType::kNor: os << "00 1\n"; break;
      case GateType::kXor: os << "10 1\n01 1\n"; break;
      case GateType::kXnor: os << "00 1\n11 1\n"; break;
      case GateType::kDff: break;
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace ahbp::gate
