#pragma once
// 64-lane bit-parallel levelized gate simulator -- "power emulation".
//
// BitSim packs 64 independent stimulus patterns into one std::uint64_t
// per net (bit j = lane j) and evaluates every gate once per step with
// word-wide AND/OR/XOR/NOT, turning 64 GateSim trials into a single
// levelized pass -- the software form of the FPGA power-emulation trick
// in *Hardware Accelerated Power Estimation* (arXiv 0710.4742). Toggle
// activity falls out of std::popcount(next ^ prev) per net.
//
// Lane semantics: each lane is an independent scalar simulation. For
// any lane j, the per-net value stream, toggle counts and accounted
// energy are bit-identical to a scalar GateSim driven with lane j's
// pattern sequence (tests/gate/test_bitsim.cpp enforces this for all
// 64 lanes, with and without DFFs). Per-lane energy accumulates in the
// same net order as GateSim's accounting scan, so even the
// floating-point rounding matches.
//
// Accounting modes:
//  * kAggregate (default, fastest): per-net toggle totals summed over
//    lanes plus one all-lane energy accumulator -- one popcount and one
//    fused multiply-add per toggled net.
//  * kPerLane: additionally maintains per-lane energy accumulators,
//    walking the toggle mask with countr_zero (cost proportional to the
//    number of actual toggles). This is what characterization uses: one
//    eval yields 64 per-trial energies.
//  * kPerLaneToggles: kPerLane plus a per-net x per-lane toggle matrix.
//    Strictly for verification (the bit-identity tests); the matrix
//    update doubles the accounting walk and thrashes net_count*64 words
//    of cache, so the hot paths never ask for it.

#include <array>
#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/tech.hpp"

namespace ahbp::gate {

/// Simulates 64 independent stimulus lanes over one finalized Netlist.
class BitSim {
public:
  static constexpr unsigned kLanes = 64;

  enum class Accounting : std::uint8_t {
    kAggregate,       ///< lane-summed toggles + one energy total
    kPerLane,         ///< + per-lane energy accumulators
    kPerLaneToggles,  ///< + per-net x per-lane toggle matrix (tests)
  };

  /// The netlist must outlive the simulator and be finalize()d.
  explicit BitSim(const Netlist& nl,
                  Technology tech = Technology::default_2003(),
                  Accounting mode = Accounting::kAggregate);

  /// @name Driving primary inputs (take effect at the next eval()/tick())
  ///@{
  /// Drives all 64 lanes of a primary input at once (bit j = lane j).
  void set_input(NetId n, std::uint64_t lanes) {
    if (!nl_.is_input(n)) fail_not_input();
    input_next_[n] = lanes;
  }
  /// Drives one lane of a primary input, leaving the other lanes as-is.
  void set_input_lane(NetId n, unsigned lane, bool v);
  ///@}

  /// Settles combinational logic in all lanes and accounts transitions.
  void eval();

  /// Settles and commits like eval() but skips transition accounting.
  /// Characterization uses this to establish each lane's "previous"
  /// assignment without paying the accounting walk for transitions that
  /// are immediately discarded.
  void eval_unaccounted();

  /// One clock cycle in all lanes: combinational settle (the setup
  /// wave), DFF capture, then the post-edge settle -- both waves are
  /// accounted, mirroring GateSim::tick().
  void tick();

  /// @name Values
  ///@{
  [[nodiscard]] std::uint64_t value_word(NetId n) const { return values_[n]; }
  [[nodiscard]] bool value(NetId n, unsigned lane) const {
    return (values_[n] >> lane & 1u) != 0;
  }
  ///@}

  /// @name Activity and energy accounting
  ///@{
  /// Toggles of net `n` summed over all lanes.
  [[nodiscard]] std::uint64_t toggles(NetId n) const { return toggle_counts_[n]; }
  [[nodiscard]] std::uint64_t total_toggles() const;
  /// Toggles of net `n` in one lane (kPerLaneToggles mode only; throws
  /// otherwise).
  [[nodiscard]] std::uint64_t lane_toggles(NetId n, unsigned lane) const;
  /// Switching energy summed over all lanes [J].
  [[nodiscard]] double energy() const { return energy_; }
  /// One lane's switching energy [J] (kPerLane/kPerLaneToggles modes
  /// only; throws otherwise). Bit-identical to the scalar GateSim sum
  /// for the same pattern sequence.
  [[nodiscard]] double lane_energy(unsigned lane) const {
    if (mode_ == Accounting::kAggregate || lane >= kLanes) fail_lane_energy(lane);
    return lane_energy_[lane];
  }
  /// Clears energy and toggle counters (values are kept).
  void reset_accounting();
  ///@}

  /// Per-net total capacitance used for accounting [F].
  [[nodiscard]] double net_capacitance(NetId n) const { return net_cap_[n]; }

  [[nodiscard]] const Technology& tech() const { return tech_; }
  [[nodiscard]] Accounting accounting() const { return mode_; }

private:
  /// Applies pending inputs into `next` and settles all combinational
  /// gates in topological order.
  void settle(std::vector<std::uint64_t>& next);
  /// Accounts next-vs-current transitions and commits `next`.
  void account_and_commit(bool account);
  /// Cold error paths, kept out of line so the inline hot accessors
  /// above compile to a test-and-branch.
  [[noreturn]] void fail_not_input() const;
  [[noreturn]] void fail_lane_energy(unsigned lane) const;

  const Netlist& nl_;
  Technology tech_;
  Accounting mode_;
  std::vector<GateInst> program_;  ///< combinational gates in topo order
  std::vector<std::uint64_t> values_;      ///< lane word per net
  std::vector<std::uint64_t> scratch_;     ///< settle buffer (no per-call alloc)
  std::vector<std::uint64_t> input_next_;  ///< pending primary-input lanes
  std::vector<std::uint64_t> toggle_counts_;
  std::vector<double> net_cap_;
  std::vector<double> toggle_energy_;  ///< precomputed CV^2/2 per net
  double energy_ = 0.0;
  std::array<double, kLanes> lane_energy_{};
  std::vector<std::uint64_t> lane_toggle_counts_;  ///< [net * 64 + lane]
};

/// In-place 64x64 bit-matrix transpose (Hacker's Delight's recursive
/// block swap, widened to 64 bits): afterwards bit j of m[b] is the
/// former bit b of m[j]. This is the bridge between lane-major stimulus
/// (one word per lane, bit b = pin b) and BitSim's pin-major layout (one
/// word per pin, bit j = lane j): six log-stages of word ops instead of
/// a 64x64 bit-by-bit walk. The transpose is an involution, so the same
/// call converts in either direction.
inline void bit_transpose_64x64(std::uint64_t m[BitSim::kLanes]) {
  // Bit b of m[i] is matrix entry (row i, column b) -- LSB-first. Each
  // stage swaps the off-diagonal j x j sub-blocks of every 2j x 2j tile:
  // row k's high half against row k+j's low half.
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < BitSim::kLanes; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
      m[k] ^= t << j;
      m[k | j] ^= t;
    }
  }
}

}  // namespace ahbp::gate
