#pragma once
// Area estimation from gate-level structures.
//
// The paper's closing argument is that early analysis lets the designer
// trade "cost, performances and reliability"; power is its focus, but
// the same generated netlists also yield the cost axis: area in NAND2
// gate equivalents (the technology-neutral unit ASIC flows quote).

#include "gate/netlist.hpp"

namespace ahbp::gate {

/// NAND2-equivalent area factors per gate type (typical standard-cell
/// ratios; the absolute unit cancels in comparisons).
struct AreaFactors {
  double not_gate = 0.67;
  double buf_gate = 0.67;
  double nand_gate = 1.0;
  double and_gate = 1.33;
  double or_gate = 1.33;
  double nor_gate = 1.0;
  double xor_gate = 2.33;
  double xnor_gate = 2.33;
  double dff = 4.33;

  [[nodiscard]] double of(GateType t) const;
};

/// Total area of a netlist in NAND2 equivalents.
[[nodiscard]] double area_nand2(const Netlist& nl, AreaFactors f = AreaFactors{});

/// Area of the AHB fabric sub-blocks, built from the same generators the
/// power macromodels were characterized on.
struct AhbAreaEstimate {
  double decoder = 0.0;
  double m2s_mux = 0.0;
  double s2m_mux = 0.0;
  double arbiter = 0.0;
  [[nodiscard]] double total() const {
    return decoder + m2s_mux + s2m_mux + arbiter;
  }
};

/// Estimates the fabric area for a bus with the given shape
/// (data/address widths in bits).
[[nodiscard]] AhbAreaEstimate estimate_ahb_area(unsigned n_masters,
                                                unsigned n_slaves,
                                                unsigned data_width = 32,
                                                unsigned addr_width = 32);

}  // namespace ahbp::gate
