#pragma once
// Synthetic technology parameters for gate-level energy accounting.
//
// The paper characterized its macromodels against a real library through
// SIS; we have no such library, so these constants define a plausible
// 2003-era (0.35 um, 3.3 V) process, calibrated so that the per-
// instruction energies of the paper's testbench land in its reported
// 14-23 pJ band. Absolute joules are synthetic by construction -- what
// matters is that every experiment uses the same constants, so relative
// comparisons (the paper's actual claims) hold.

namespace ahbp::gate {

/// Process constants used by GateSim and by the analytic macromodels.
struct Technology {
  double vdd = 3.3;        ///< supply voltage [V]
  double c_node = 10e-15;  ///< equivalent output capacitance per node [F]
  double c_in = 3e-15;     ///< input capacitance per driven gate pin [F]
  double c_out = 50e-15;   ///< extra wire/pad load on primary outputs [F]

  /// Energy drawn from the supply per output transition of a node with
  /// total capacitance `c`: the classic CV^2/2.
  [[nodiscard]] double toggle_energy(double c) const { return 0.5 * c * vdd * vdd; }

  /// The default instance shared by the whole library.
  [[nodiscard]] static Technology default_2003() { return Technology{}; }
};

}  // namespace ahbp::gate
