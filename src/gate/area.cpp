#include "gate/area.hpp"

#include <algorithm>

#include "gate/synth.hpp"

namespace ahbp::gate {

double AreaFactors::of(GateType t) const {
  switch (t) {
    case GateType::kNot: return not_gate;
    case GateType::kBuf: return buf_gate;
    case GateType::kAnd: return and_gate;
    case GateType::kOr: return or_gate;
    case GateType::kNand: return nand_gate;
    case GateType::kNor: return nor_gate;
    case GateType::kXor: return xor_gate;
    case GateType::kXnor: return xnor_gate;
    case GateType::kDff: return dff;
  }
  return 1.0;
}

double area_nand2(const Netlist& nl, AreaFactors f) {
  double a = 0.0;
  for (const GateInst& g : nl.gates()) a += f.of(g.type);
  return a;
}

AhbAreaEstimate estimate_ahb_area(unsigned n_masters, unsigned n_slaves,
                                  unsigned data_width, unsigned addr_width) {
  AhbAreaEstimate est;
  const unsigned masters = std::max(2u, n_masters);
  const unsigned slaves = std::max(2u, n_slaves);
  est.decoder = area_nand2(build_onehot_decoder(slaves).nl);
  // M2S: address + control (~8 bits) + write data, selected by master.
  est.m2s_mux = area_nand2(build_mux(addr_width + 8 + data_width, masters).nl);
  // S2M: read data + response (~3 bits), selected by slave.
  est.s2m_mux = area_nand2(build_mux(data_width + 3, slaves).nl);
  est.arbiter = area_nand2(build_priority_arbiter(masters).nl);
  return est;
}

}  // namespace ahbp::gate
