#pragma once
// Umbrella header for ahbp::charlib -- the IP characterization flow
// (stimulus generation, gate-level sampling, least-squares fitting).

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "charlib/stimulus.hpp"
#include "charlib/table.hpp"
