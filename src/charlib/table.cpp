#include "charlib/table.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "sim/report.hpp"

namespace ahbp::charlib {

using sim::SimError;

void CoefficientTable::set(const std::string& block, const std::string& key,
                           double value) {
  if (block.empty() || key.empty()) {
    throw SimError("CoefficientTable: empty block or key");
  }
  if (block.find_first_of(" .=\n") != std::string::npos ||
      key.find_first_of(" .=\n") != std::string::npos) {
    throw SimError("CoefficientTable: block/key must not contain ' ', '.', '='");
  }
  values_[{block, key}] = value;
}

bool CoefficientTable::has(const std::string& block, const std::string& key) const {
  return values_.count({block, key}) != 0;
}

double CoefficientTable::get(const std::string& block, const std::string& key,
                             double fallback) const {
  const auto it = values_.find({block, key});
  return it == values_.end() ? fallback : it->second;
}

void CoefficientTable::store_mux(const std::string& block,
                                 const MuxCharacterization& c) {
  set(block, "k_in", c.calibrated.k_in);
  set(block, "k_sel", c.calibrated.k_sel);
  set(block, "k_out", c.calibrated.k_out);
  set(block, "width", c.width);
  set(block, "n_inputs", c.n_inputs);
  set(block, "fit_r2", c.fit.r_squared);
}

power::MuxModel::Coefficients CoefficientTable::mux_coefficients(
    const std::string& block) const {
  const power::MuxModel::Coefficients defaults{};
  power::MuxModel::Coefficients k;
  k.k_in = get(block, "k_in", defaults.k_in);
  k.k_sel = get(block, "k_sel", defaults.k_sel);
  k.k_out = get(block, "k_out", defaults.k_out);
  return k;
}

void CoefficientTable::store_decoder(const std::string& block,
                                     const DecoderCharacterization& c) {
  set(block, "e0", c.fit.coefficients.at(0));
  set(block, "e_per_hd", c.fit.coefficients.at(1));
  set(block, "n_outputs", c.n_outputs);
  set(block, "fit_r2", c.fit.r_squared);
}

void CoefficientTable::save(std::ostream& os) const {
  os << "# ahbpower coefficient table v1\n";
  for (const auto& [bk, v] : values_) {
    std::ostringstream num;
    num.precision(17);
    num << v;
    os << bk.first << '.' << bk.second << " = " << num.str() << '\n';
  }
}

CoefficientTable CoefficientTable::load(std::istream& is) {
  CoefficientTable t;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string lhs, eq;
    double value = 0.0;
    if (!(ls >> lhs)) continue;  // blank
    if (!(ls >> eq >> value) || eq != "=") {
      throw SimError("CoefficientTable: malformed line " + std::to_string(lineno));
    }
    const std::size_t dot = lhs.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= lhs.size()) {
      throw SimError("CoefficientTable: expected block.key at line " +
                     std::to_string(lineno));
    }
    t.set(lhs.substr(0, dot), lhs.substr(dot + 1), value);
  }
  return t;
}

}  // namespace ahbp::charlib
