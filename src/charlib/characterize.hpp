#pragma once
// IP characterization flows (Sec. 3 of the paper).
//
// Each flow drives the corresponding gate-level reference structure with
// stimulus, records (activity features -> measured energy) samples, fits
// the macromodel coefficients by least squares, and reports how well the
// closed-form macromodel tracks the gate level -- the step the authors
// performed with SIS.

#include <array>
#include <cstdint>
#include <vector>

#include "charlib/fit.hpp"
#include "charlib/stimulus.hpp"
#include "gate/tech.hpp"
#include "power/macromodel.hpp"

namespace ahbp::charlib {

/// Gate-level engine the characterization flows drive for reference
/// energies.
///
/// kBitParallel packs 64 trials into one gate::BitSim pass (lane j of
/// batch b = trial 64*b+j for the combinational decoder/mux flows; for
/// the sequential arbiter, lane j replays the j-th contiguous chunk of
/// the cycle sequence after a one-tick state warm-up). The mapping is
/// deterministic and the per-sample energies -- and therefore the fitted
/// coefficients -- are bit-identical to kScalar; the regression tests
/// assert exact equality, well inside the documented tolerance.
enum class Engine : std::uint8_t {
  kScalar,       ///< one pattern per gate::GateSim evaluation
  kBitParallel,  ///< 64 patterns per gate::BitSim evaluation (default)
};

/// One characterization sample: activity features and measured energy.
/// Features are stored inline (no flow has more than 3), so collecting
/// the tens of thousands of samples a sweep produces costs no per-sample
/// heap allocation.
struct Sample {
  std::array<double, 3> features{};  ///< first `n_features` entries valid
  unsigned n_features = 0;
  double energy = 0.0;  ///< gate-level reference energy [J]
};

/// Accuracy of a macromodel against the gate-level reference.
struct ModelAccuracy {
  double mean_abs_error = 0.0;      ///< [J]
  double mean_rel_error = 0.0;      ///< |model-ref| / mean(ref)
  double total_energy_model = 0.0;  ///< [J] summed over the stimulus run
  double total_energy_ref = 0.0;    ///< [J]
};

/// Decoder characterization result.
struct DecoderCharacterization {
  unsigned n_outputs = 0;
  FitResult fit;             ///< E = c0 + c1 * HD_IN against gate level
  ModelAccuracy paper_model; ///< paper's closed form vs gate level
  std::vector<Sample> samples;
};

/// Characterizes a one-hot decoder of `n_outputs` outputs with
/// `n_samples` random transitions.
[[nodiscard]] DecoderCharacterization characterize_decoder(
    unsigned n_outputs, unsigned n_samples, std::uint64_t seed,
    gate::Technology tech = gate::Technology::default_2003(),
    Engine engine = Engine::kBitParallel);

/// Mux characterization result.
struct MuxCharacterization {
  unsigned width = 0;
  unsigned n_inputs = 0;
  FitResult fit;  ///< E = c0 + c1*HD_IN + c2*HD_SEL + c3*HD_OUT
  power::MuxModel::Coefficients calibrated;  ///< mapped back to MuxModel form
  ModelAccuracy default_model;  ///< MuxModel with default coefficients
  ModelAccuracy fitted_model;   ///< MuxModel with calibrated coefficients
  std::vector<Sample> samples;
};

/// Characterizes an n-to-1 mux of the given shape.
[[nodiscard]] MuxCharacterization characterize_mux(
    unsigned width, unsigned n_inputs, unsigned n_samples, std::uint64_t seed,
    gate::Technology tech = gate::Technology::default_2003(),
    Engine engine = Engine::kBitParallel);

/// Arbiter characterization result.
struct ArbiterCharacterization {
  unsigned n_masters = 0;
  FitResult fit;  ///< E = c0 + c1*HD_REQ + c2*handover
  ModelAccuracy fsm_model;  ///< ArbiterFsmModel vs gate level
  std::vector<Sample> samples;
};

/// Characterizes the priority-arbiter FSM over random request patterns.
[[nodiscard]] ArbiterCharacterization characterize_arbiter(
    unsigned n_masters, unsigned n_cycles, std::uint64_t seed,
    gate::Technology tech = gate::Technology::default_2003(),
    Engine engine = Engine::kBitParallel);

}  // namespace ahbp::charlib
