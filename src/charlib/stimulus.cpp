#include "charlib/stimulus.hpp"

namespace ahbp::charlib {

std::uint64_t StimulusGen::next() {
  switch (profile_) {
    case Profile::kUniform:
      state_ = rng_() & mask();
      break;
    case Profile::kLowActivity:
      state_ ^= 1ull << (rng_() % width_);
      break;
    case Profile::kHighActivity:
      state_ = ~state_ & mask();
      break;
    case Profile::kWalkingOne:
      state_ = 1ull << (step_ % width_);
      break;
    case Profile::kSparse:
      if (rng_() % 8 == 0) state_ = rng_() & mask();
      break;
  }
  ++step_;
  return state_ & mask();
}

}  // namespace ahbp::charlib
