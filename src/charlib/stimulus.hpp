#pragma once
// Stimulus generators for IP characterization.
//
// The paper notes "it is very important to provide a complete set of
// testbenches to be able to observe all the different activity states of
// the system". These generators produce word streams with controlled
// switching statistics so characterization covers low-, mixed- and
// high-activity regimes.

#include <cstdint>
#include <random>

namespace ahbp::charlib {

/// Successive-word generator with a selectable activity profile.
class StimulusGen {
public:
  enum class Profile {
    kUniform,      ///< independent uniform words (mean HD = width/2)
    kLowActivity,  ///< flip ~1 bit per step
    kHighActivity, ///< flip ~all bits per step (alternating complement)
    kWalkingOne,   ///< a single 1 walking across the word
    kSparse,       ///< mostly repeats, occasional random jump
  };

  StimulusGen(Profile profile, unsigned width, std::uint64_t seed)
      : profile_(profile), width_(width), rng_(seed) {}

  /// Next word in the stream (masked to `width` bits).
  [[nodiscard]] std::uint64_t next();

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] Profile profile() const { return profile_; }

private:
  [[nodiscard]] std::uint64_t mask() const {
    return width_ >= 64 ? ~0ull : (1ull << width_) - 1;
  }

  Profile profile_;
  unsigned width_;
  std::mt19937_64 rng_;
  std::uint64_t state_ = 0;
  unsigned step_ = 0;
};

}  // namespace ahbp::charlib
