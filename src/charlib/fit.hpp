#pragma once
// Ordinary least squares for macromodel fitting.
//
// The characterization flow collects (activity features -> measured
// energy) samples from gate-level reference simulations and fits the
// activity-linear model family used by ahbp::power. Solved via the
// normal equations with Gaussian elimination -- fine for the handful of
// features these models have.

#include <cstddef>
#include <vector>

namespace ahbp::charlib {

/// Result of a least-squares fit.
struct FitResult {
  /// coefficients[0] is the intercept; [i] multiplies feature i-1.
  std::vector<double> coefficients;
  double r_squared = 0.0;       ///< coefficient of determination
  double max_abs_residual = 0.0;
  std::size_t samples = 0;
};

/// Fits y ~ c0 + sum_i c_i x_i.
///
/// `features` holds one row per sample; all rows must have equal length.
/// Requires more samples than unknowns and a non-singular design matrix;
/// throws sim::SimError otherwise.
[[nodiscard]] FitResult fit_linear(const std::vector<std::vector<double>>& features,
                                   const std::vector<double>& y);

/// Same fit over a flat row-major feature matrix (`n_samples` rows of
/// `n_features` columns, no intercept column -- it is added internally).
/// This is the hot-path form: the nested-vector overload forwards here,
/// and callers that already hold contiguous features avoid the per-row
/// vector allocations entirely. Accumulation order matches the nested
/// overload exactly, so the two produce bit-identical coefficients.
[[nodiscard]] FitResult fit_linear(const double* features, std::size_t n_samples,
                                   std::size_t n_features, const double* y);

/// Solves the dense linear system A x = b (Gaussian elimination with
/// partial pivoting). A is row-major n x n. Throws on singular systems.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<double> a,
                                                      std::vector<double> b);

}  // namespace ahbp::charlib
