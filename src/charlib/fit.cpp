#include "charlib/fit.hpp"

#include <algorithm>
#include <cmath>

#include "sim/report.hpp"

namespace ahbp::charlib {

using sim::SimError;

std::vector<double> solve_linear_system(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw SimError("solve_linear_system: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw SimError("solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i * n + c] * x[c];
    x[i] = s / a[i * n + i];
  }
  return x;
}

FitResult fit_linear(const double* features, std::size_t n_samples,
                     std::size_t n_features, const double* y) {
  const std::size_t m = n_samples;
  if (m == 0) throw SimError("fit_linear: no samples");
  const std::size_t k = n_features + 1;  // + intercept
  if (m < k) throw SimError("fit_linear: underdetermined fit");

  // Normal equations: (X^T X) c = X^T y with X = [1 | features]. X^T X
  // is symmetric with per-cell sums independent of each other, so only
  // the upper triangle is accumulated and mirrored afterwards -- the
  // mirrored cells hold the exact same doubles the full scan would
  // produce (commuted products, same sample order).
  std::vector<double> xtx(k * k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (std::size_t s = 0; s < m; ++s) {
    const double* row = features + s * n_features;
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = i == 0 ? 1.0 : row[i - 1];
      xty[i] += xi * y[s];
      double* acc = &xtx[i * k];
      if (i == 0) acc[0] += 1.0;
      for (std::size_t j = std::max<std::size_t>(i, 1); j < k; ++j) {
        acc[j] += xi * row[j - 1];
      }
    }
  }
  for (std::size_t i = 1; i < k; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx[i * k + j] = xtx[j * k + i];
  }

  FitResult res;
  res.coefficients = solve_linear_system(std::move(xtx), std::move(xty));
  res.samples = m;

  // Goodness of fit.
  double mean = 0.0;
  for (std::size_t s = 0; s < m; ++s) mean += y[s];
  mean /= static_cast<double>(m);
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    const double* row = features + s * n_features;
    double pred = res.coefficients[0];
    for (std::size_t i = 1; i < k; ++i) pred += res.coefficients[i] * row[i - 1];
    const double r = y[s] - pred;
    ss_res += r * r;
    ss_tot += (y[s] - mean) * (y[s] - mean);
    res.max_abs_residual = std::max(res.max_abs_residual, std::fabs(r));
  }
  res.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return res;
}

FitResult fit_linear(const std::vector<std::vector<double>>& features,
                     const std::vector<double>& y) {
  const std::size_t m = y.size();
  if (features.size() != m) throw SimError("fit_linear: sample count mismatch");
  if (m == 0) throw SimError("fit_linear: no samples");
  const std::size_t k0 = features[0].size();
  for (const auto& row : features) {
    if (row.size() != k0) throw SimError("fit_linear: ragged feature rows");
  }
  std::vector<double> flat;
  flat.reserve(m * k0);
  for (const auto& row : features) flat.insert(flat.end(), row.begin(), row.end());
  return fit_linear(flat.data(), m, k0, y.data());
}

}  // namespace ahbp::charlib
