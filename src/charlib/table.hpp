#pragma once
// Coefficient tables: the persistent artifact of IP characterization.
//
// The paper frames characterization as part of IP *qualification*: a
// vendor characterizes once and ships the numbers with the executable
// model. CoefficientTable is that shipping container -- a simple
// "block.key = value" text format that survives round-trips and plugs
// straight back into the power models.

#include <iosfwd>
#include <map>
#include <string>

#include "charlib/characterize.hpp"
#include "power/macromodel.hpp"

namespace ahbp::charlib {

/// Named (block, key) -> value store with text persistence.
class CoefficientTable {
public:
  /// @name Generic access
  ///@{
  void set(const std::string& block, const std::string& key, double value);
  [[nodiscard]] bool has(const std::string& block, const std::string& key) const;
  /// Returns the stored value, or `fallback` when absent.
  [[nodiscard]] double get(const std::string& block, const std::string& key,
                           double fallback = 0.0) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  ///@}

  /// @name Characterization bridges
  ///@{
  /// Stores a mux characterization's calibrated coefficients under `block`.
  void store_mux(const std::string& block, const MuxCharacterization& c);
  /// Reconstructs MuxModel coefficients stored under `block`; missing
  /// keys fall back to the structural defaults.
  [[nodiscard]] power::MuxModel::Coefficients mux_coefficients(
      const std::string& block) const;
  /// Stores a decoder characterization's linear fit under `block`.
  void store_decoder(const std::string& block, const DecoderCharacterization& c);
  ///@}

  /// @name Persistence ("block.key = value" lines, '#' comments)
  ///@{
  void save(std::ostream& os) const;
  [[nodiscard]] static CoefficientTable load(std::istream& is);
  ///@}

private:
  std::map<std::pair<std::string, std::string>, double> values_;
};

}  // namespace ahbp::charlib
