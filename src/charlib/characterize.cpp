#include "charlib/characterize.hpp"

#include <cmath>

#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::charlib {

using power::hamming;
using sim::SimError;

namespace {

/// Folds |model - ref| statistics over paired energy series.
ModelAccuracy accuracy(const std::vector<double>& model,
                       const std::vector<double>& ref) {
  ModelAccuracy a;
  double abs_err = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    abs_err += std::fabs(model[i] - ref[i]);
    a.total_energy_model += model[i];
    a.total_energy_ref += ref[i];
  }
  const auto n = static_cast<double>(model.size());
  a.mean_abs_error = n > 0 ? abs_err / n : 0.0;
  const double mean_ref = n > 0 ? a.total_energy_ref / n : 0.0;
  a.mean_rel_error = mean_ref > 0 ? a.mean_abs_error / mean_ref : 0.0;
  return a;
}

void drive_word(gate::GateSim& simu, const std::vector<gate::NetId>& pins,
                std::uint64_t value) {
  for (std::size_t b = 0; b < pins.size(); ++b) {
    simu.set_input(pins[b], (value >> b & 1u) != 0);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Decoder

DecoderCharacterization characterize_decoder(unsigned n_outputs, unsigned n_samples,
                                             std::uint64_t seed,
                                             gate::Technology tech) {
  if (n_samples < 8) throw SimError("characterize_decoder: too few samples");
  DecoderCharacterization out;
  out.n_outputs = n_outputs;

  gate::DecoderNetlist dec = gate::build_onehot_decoder(n_outputs);
  gate::GateSim simu(dec.nl, tech);
  power::DecoderModel paper(n_outputs, tech);

  const unsigned bits = static_cast<unsigned>(dec.addr.size());
  StimulusGen uniform(StimulusGen::Profile::kUniform, bits, seed);
  StimulusGen low(StimulusGen::Profile::kLowActivity, bits, seed + 1);

  std::uint64_t prev = 0;
  drive_word(simu, dec.addr, prev);
  simu.eval();
  simu.reset_accounting();

  std::vector<double> model_e, ref_e;
  for (unsigned i = 0; i < n_samples; ++i) {
    // Mix activity regimes so the fit sees the whole HD range.
    const std::uint64_t cur = (i % 2 == 0) ? uniform.next() : low.next();
    drive_word(simu, dec.addr, cur);
    simu.reset_accounting();
    simu.eval();
    const double e = simu.energy();
    const unsigned hd = hamming(prev, cur);
    out.samples.push_back(Sample{{static_cast<double>(hd)}, e});
    model_e.push_back(paper.energy(hd));
    ref_e.push_back(e);
    prev = cur;
  }

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const Sample& s : out.samples) {
    x.push_back(s.features);
    y.push_back(s.energy);
  }
  out.fit = fit_linear(x, y);
  out.paper_model = accuracy(model_e, ref_e);
  return out;
}

// ---------------------------------------------------------------------------
// Mux

MuxCharacterization characterize_mux(unsigned width, unsigned n_inputs,
                                     unsigned n_samples, std::uint64_t seed,
                                     gate::Technology tech) {
  if (n_samples < 16) throw SimError("characterize_mux: too few samples");
  MuxCharacterization out;
  out.width = width;
  out.n_inputs = n_inputs;

  gate::MuxNetlist mux = gate::build_mux(width, n_inputs);
  gate::GateSim simu(mux.nl, tech);

  std::mt19937_64 rng(seed);
  StimulusGen data_gen(StimulusGen::Profile::kUniform, width, seed + 2);
  StimulusGen low_gen(StimulusGen::Profile::kLowActivity, width, seed + 3);

  std::vector<std::uint64_t> data(n_inputs, 0);
  unsigned sel = 0;
  std::uint64_t prev_out = 0;

  for (unsigned i = 0; i < n_inputs; ++i) drive_word(simu, mux.data[i], 0);
  drive_word(simu, mux.sel, 0);
  simu.eval();
  simu.reset_accounting();

  power::MuxModel default_model(width, n_inputs, tech);
  std::vector<double> def_e, ref_e;

  for (unsigned s = 0; s < n_samples; ++s) {
    // Randomly change the selected input's data, occasionally the select.
    const unsigned prev_sel = sel;
    if (rng() % 4 == 0) sel = static_cast<unsigned>(rng() % n_inputs);
    const std::uint64_t new_word = (s % 2 == 0) ? data_gen.next() : low_gen.next();
    const unsigned victim = sel;
    const unsigned hd_in = hamming(data[victim], new_word);
    data[victim] = new_word;

    drive_word(simu, mux.data[victim], new_word);
    drive_word(simu, mux.sel, sel);
    simu.reset_accounting();
    simu.eval();
    const double e = simu.energy();

    std::uint64_t cur_out = 0;
    for (unsigned b = 0; b < width; ++b) {
      if (simu.value(mux.out[b])) cur_out |= 1ull << b;
    }
    const unsigned hd_sel = hamming(prev_sel, sel);
    const unsigned hd_out = hamming(prev_out, cur_out);
    prev_out = cur_out;

    out.samples.push_back(Sample{{static_cast<double>(hd_in),
                                  static_cast<double>(hd_sel),
                                  static_cast<double>(hd_out)},
                                 e});
    def_e.push_back(default_model.energy(hd_in, hd_sel, hd_out));
    ref_e.push_back(e);
  }

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const Sample& smp : out.samples) {
    x.push_back(smp.features);
    y.push_back(smp.energy);
  }
  out.fit = fit_linear(x, y);

  // Map the fitted linear coefficients back into MuxModel's structural
  // form: E = vdd^2/4 * c_node * (k_in*HD_IN + k_sel*w*HD_SEL + k_out*HD_OUT*(c_out/c_node)).
  const double unit = tech.vdd * tech.vdd / 4.0 * tech.c_node;
  out.calibrated.k_in = out.fit.coefficients[1] / unit;
  out.calibrated.k_sel = out.fit.coefficients[2] / (unit * width);
  out.calibrated.k_out = out.fit.coefficients[3] / (unit * (tech.c_out / tech.c_node));

  power::MuxModel fitted(width, n_inputs, tech, out.calibrated);
  std::vector<double> fit_e;
  for (const Sample& smp : out.samples) {
    fit_e.push_back(fitted.energy(static_cast<unsigned>(smp.features[0]),
                                  static_cast<unsigned>(smp.features[1]),
                                  static_cast<unsigned>(smp.features[2])));
  }
  out.default_model = accuracy(def_e, ref_e);
  out.fitted_model = accuracy(fit_e, ref_e);
  return out;
}

// ---------------------------------------------------------------------------
// Arbiter

ArbiterCharacterization characterize_arbiter(unsigned n_masters, unsigned n_cycles,
                                             std::uint64_t seed,
                                             gate::Technology tech) {
  if (n_cycles < 16) throw SimError("characterize_arbiter: too few cycles");
  ArbiterCharacterization out;
  out.n_masters = n_masters;

  gate::ArbiterNetlist arb = gate::build_priority_arbiter(n_masters);
  gate::GateSim simu(arb.nl, tech);
  power::ArbiterFsmModel fsm_model(n_masters, tech);

  std::mt19937_64 rng(seed);
  std::uint32_t prev_req = 0;
  unsigned prev_grant = 0;

  std::vector<double> model_e, ref_e;
  for (unsigned c = 0; c < n_cycles; ++c) {
    // Sticky random requests: each line flips with probability 1/4.
    std::uint32_t req = prev_req;
    for (unsigned m = 0; m < n_masters; ++m) {
      if (rng() % 4 == 0) req ^= 1u << m;
    }
    for (unsigned m = 0; m < n_masters; ++m) {
      simu.set_input(arb.req[m], (req >> m & 1u) != 0);
    }
    simu.reset_accounting();
    simu.tick();
    const double e = simu.energy();

    unsigned grant = 0;
    for (unsigned m = 0; m < n_masters; ++m) {
      if (simu.value(arb.grant[m])) grant = m;
    }
    const bool handover = grant != prev_grant;
    const unsigned hd_req = hamming(prev_req, req);

    out.samples.push_back(Sample{{static_cast<double>(hd_req),
                                  handover ? 1.0 : 0.0},
                                 e});
    model_e.push_back(fsm_model.energy(hd_req, handover));
    ref_e.push_back(e);
    prev_req = req;
    prev_grant = grant;
  }

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const Sample& smp : out.samples) {
    x.push_back(smp.features);
    y.push_back(smp.energy);
  }
  out.fit = fit_linear(x, y);
  out.fsm_model = accuracy(model_e, ref_e);
  return out;
}

}  // namespace ahbp::charlib
