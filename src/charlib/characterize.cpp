#include "charlib/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "gate/bitsim.hpp"
#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::charlib {

using power::hamming;
using sim::SimError;

namespace {

constexpr unsigned kLanes = gate::BitSim::kLanes;

/// Folds |model - ref| statistics over paired energy series.
ModelAccuracy accuracy(const std::vector<double>& model,
                       const std::vector<double>& ref) {
  ModelAccuracy a;
  double abs_err = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    abs_err += std::fabs(model[i] - ref[i]);
    a.total_energy_model += model[i];
    a.total_energy_ref += ref[i];
  }
  const auto n = static_cast<double>(model.size());
  a.mean_abs_error = n > 0 ? abs_err / n : 0.0;
  const double mean_ref = n > 0 ? a.total_energy_ref / n : 0.0;
  a.mean_rel_error = mean_ref > 0 ? a.mean_abs_error / mean_ref : 0.0;
  return a;
}

void drive_word(gate::GateSim& simu, const std::vector<gate::NetId>& pins,
                std::uint64_t value) {
  for (std::size_t b = 0; b < pins.size(); ++b) {
    simu.set_input(pins[b], (value >> b & 1u) != 0);
  }
}

/// Drives one word per lane onto a pin bundle: lane_words[j] bit b goes
/// to pin b's lane j. Lanes beyond `lanes` are driven 0. The buffer is
/// consumed (transposed from lane-major to pin-major in place). All
/// characterization bundles fit in 64 pins.
void drive_lane_words(gate::BitSim& simu, const std::vector<gate::NetId>& pins,
                      std::uint64_t lane_words[kLanes], unsigned lanes) {
  std::fill(lane_words + lanes, lane_words + kLanes, 0);
  gate::bit_transpose_64x64(lane_words);
  for (std::size_t b = 0; b < pins.size(); ++b) {
    simu.set_input(pins[b], lane_words[b]);
  }
}

/// Reads a pin bundle for every lane at once: out[j] is lane j's bundle
/// word (bit b = pin b).
void read_lane_words(const gate::BitSim& simu,
                     const std::vector<gate::NetId>& pins,
                     std::uint64_t out[kLanes]) {
  for (std::size_t b = 0; b < pins.size(); ++b) {
    out[b] = simu.value_word(pins[b]);
  }
  std::fill(out + pins.size(), out + kLanes, 0);
  gate::bit_transpose_64x64(out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Decoder

DecoderCharacterization characterize_decoder(unsigned n_outputs, unsigned n_samples,
                                             std::uint64_t seed,
                                             gate::Technology tech, Engine engine) {
  if (n_samples < 8) throw SimError("characterize_decoder: too few samples");
  DecoderCharacterization out;
  out.n_outputs = n_outputs;

  gate::DecoderNetlist dec = gate::build_onehot_decoder(n_outputs);
  power::DecoderModel paper(n_outputs, tech);

  const unsigned bits = static_cast<unsigned>(dec.addr.size());
  StimulusGen uniform(StimulusGen::Profile::kUniform, bits, seed);
  StimulusGen low(StimulusGen::Profile::kLowActivity, bits, seed + 1);

  // The full stimulus sequence up front, consuming the generators in the
  // exact order of the per-sample loop (mixed activity regimes so the
  // fit sees the whole HD range). Sample i measures the w[i-1] -> w[i]
  // transition (w[-1] = 0).
  std::vector<std::uint64_t> words(n_samples);
  for (unsigned i = 0; i < n_samples; ++i) {
    words[i] = (i % 2 == 0) ? uniform.next() : low.next();
  }

  std::vector<double> ref(n_samples, 0.0);
  if (engine == Engine::kScalar) {
    gate::GateSim simu(dec.nl, tech);
    drive_word(simu, dec.addr, 0);
    simu.eval();
    for (unsigned i = 0; i < n_samples; ++i) {
      drive_word(simu, dec.addr, words[i]);
      simu.reset_accounting();
      simu.eval();
      ref[i] = simu.energy();
    }
  } else {
    // 64 independent transitions per pass: lane j of the batch holds
    // trial base+j. The decoder is combinational, so establishing the
    // "previous" settled state is one unaccounted evaluation -- and
    // because consecutive trials are adjacent lanes, its pin words are
    // just the measured wave's words shifted up one lane, with the
    // previous batch's last word carried into lane 0 (all-zero before
    // trial 0). One transpose per batch instead of two.
    gate::BitSim simu(dec.nl, tech, gate::BitSim::Accounting::kPerLane);
    std::uint64_t cur_w[kLanes];
    std::uint64_t carry = 0;
    for (unsigned base = 0; base < n_samples; base += kLanes) {
      const unsigned lanes = std::min(kLanes, n_samples - base);
      for (unsigned j = 0; j < lanes; ++j) cur_w[j] = words[base + j];
      std::fill(cur_w + lanes, cur_w + kLanes, 0);
      gate::bit_transpose_64x64(cur_w);
      for (unsigned b = 0; b < bits; ++b) {
        simu.set_input(dec.addr[b], cur_w[b] << 1 | (carry >> b & 1u));
      }
      simu.eval_unaccounted();
      for (unsigned b = 0; b < bits; ++b) simu.set_input(dec.addr[b], cur_w[b]);
      simu.reset_accounting();
      simu.eval();
      for (unsigned j = 0; j < lanes; ++j) ref[base + j] = simu.lane_energy(j);
      carry = words[base + lanes - 1];
    }
  }

  std::vector<double> model_e, fx;
  out.samples.reserve(n_samples);
  model_e.reserve(n_samples);
  fx.reserve(n_samples);
  std::uint64_t prev = 0;
  for (unsigned i = 0; i < n_samples; ++i) {
    const unsigned hd = hamming(prev, words[i]);
    out.samples.push_back(Sample{{static_cast<double>(hd)}, 1, ref[i]});
    model_e.push_back(paper.energy(hd));
    fx.push_back(static_cast<double>(hd));
    prev = words[i];
  }

  out.fit = fit_linear(fx.data(), n_samples, 1, ref.data());
  out.paper_model = accuracy(model_e, ref);
  return out;
}

// ---------------------------------------------------------------------------
// Mux

MuxCharacterization characterize_mux(unsigned width, unsigned n_inputs,
                                     unsigned n_samples, std::uint64_t seed,
                                     gate::Technology tech, Engine engine) {
  if (n_samples < 16) throw SimError("characterize_mux: too few samples");
  MuxCharacterization out;
  out.width = width;
  out.n_inputs = n_inputs;

  gate::MuxNetlist mux = gate::build_mux(width, n_inputs);

  // Replay the stimulus policy up front: randomly change the selected
  // input's data, occasionally the select. Each step records only its
  // delta (one rewritten data input); any point of the sequence is
  // reconstructed by rolling the deltas forward, which both engines do
  // in strict step order.
  struct Step {
    unsigned sel = 0;
    unsigned prev_sel = 0;
    unsigned hd_in = 0;
    unsigned victim = 0;       ///< data input rewritten this step
    std::uint64_t word = 0;    ///< its new value
  };
  std::mt19937_64 rng(seed);
  StimulusGen data_gen(StimulusGen::Profile::kUniform, width, seed + 2);
  StimulusGen low_gen(StimulusGen::Profile::kLowActivity, width, seed + 3);

  std::vector<Step> steps(n_samples);
  {
    std::vector<std::uint64_t> data(n_inputs, 0);
    unsigned sel = 0;
    for (unsigned s = 0; s < n_samples; ++s) {
      Step& st = steps[s];
      st.prev_sel = sel;
      if (rng() % 4 == 0) sel = static_cast<unsigned>(rng() % n_inputs);
      const std::uint64_t new_word = (s % 2 == 0) ? data_gen.next() : low_gen.next();
      const unsigned victim = sel;
      st.sel = sel;
      st.victim = victim;
      st.word = new_word;
      st.hd_in = hamming(data[victim], new_word);
      data[victim] = new_word;
    }
  }

  std::vector<double> ref(n_samples, 0.0);
  std::vector<std::uint64_t> outs(n_samples, 0);
  if (engine == Engine::kScalar) {
    gate::GateSim simu(mux.nl, tech);
    for (unsigned i = 0; i < n_inputs; ++i) drive_word(simu, mux.data[i], 0);
    drive_word(simu, mux.sel, 0);
    simu.eval();
    for (unsigned s = 0; s < n_samples; ++s) {
      drive_word(simu, mux.data[steps[s].victim], steps[s].word);
      drive_word(simu, mux.sel, steps[s].sel);
      simu.reset_accounting();
      simu.eval();
      ref[s] = simu.energy();
      std::uint64_t cur_out = 0;
      for (unsigned b = 0; b < width; ++b) {
        if (simu.value(mux.out[b])) cur_out |= 1ull << b;
      }
      outs[s] = cur_out;
    }
  } else {
    // Lane j of each batch carries trial base+j: previous assignment in
    // the first (unaccounted) wave, measured assignment in the second.
    // The measured assignments come from rolling the step deltas
    // forward, written lane-major ([input i][lane j]) and transposed to
    // pin words -- and since lane j's previous assignment is lane j-1's
    // measured one, the first wave reuses those pin words shifted up one
    // lane, carrying in the batch-entry assignment at lane 0. One
    // transpose per bundle per batch instead of two.
    gate::BitSim simu(mux.nl, tech, gate::BitSim::Accounting::kPerLane);
    std::vector<std::uint64_t> cur_buf(n_inputs * kLanes, 0);
    std::vector<std::uint64_t> carry(n_inputs, 0);  ///< batch-entry assignment
    std::uint64_t cur_sel_w[kLanes];
    std::uint64_t lane_w[kLanes];
    std::vector<std::uint64_t> rolling(n_inputs, 0);
    unsigned carry_sel = 0;
    const unsigned sel_bits = static_cast<unsigned>(mux.sel.size());
    for (unsigned base = 0; base < n_samples; base += kLanes) {
      const unsigned lanes = std::min(kLanes, n_samples - base);
      for (unsigned j = 0; j < lanes; ++j) {
        const Step& st = steps[base + j];
        rolling[st.victim] = st.word;
        for (unsigned i = 0; i < n_inputs; ++i) {
          cur_buf[i * kLanes + j] = rolling[i];
        }
        cur_sel_w[j] = st.sel;
      }
      for (unsigned i = 0; i < n_inputs; ++i) {
        std::uint64_t* w = &cur_buf[i * kLanes];
        std::fill(w + lanes, w + kLanes, 0);
        gate::bit_transpose_64x64(w);
      }
      std::fill(cur_sel_w + lanes, cur_sel_w + kLanes, 0);
      gate::bit_transpose_64x64(cur_sel_w);

      for (unsigned i = 0; i < n_inputs; ++i) {
        const std::uint64_t* w = &cur_buf[i * kLanes];
        for (unsigned b = 0; b < width; ++b) {
          simu.set_input(mux.data[i][b], w[b] << 1 | (carry[i] >> b & 1u));
        }
      }
      for (unsigned b = 0; b < sel_bits; ++b) {
        simu.set_input(mux.sel[b], cur_sel_w[b] << 1 | (carry_sel >> b & 1u));
      }
      simu.eval_unaccounted();
      for (unsigned i = 0; i < n_inputs; ++i) {
        const std::uint64_t* w = &cur_buf[i * kLanes];
        for (unsigned b = 0; b < width; ++b) simu.set_input(mux.data[i][b], w[b]);
      }
      for (unsigned b = 0; b < sel_bits; ++b) simu.set_input(mux.sel[b], cur_sel_w[b]);
      simu.reset_accounting();
      simu.eval();
      read_lane_words(simu, mux.out, lane_w);
      for (unsigned j = 0; j < lanes; ++j) {
        ref[base + j] = simu.lane_energy(j);
        outs[base + j] = lane_w[j];
      }
      carry = rolling;
      carry_sel = steps[base + lanes - 1].sel;
    }
  }

  power::MuxModel default_model(width, n_inputs, tech);
  std::vector<double> def_e, fx;
  out.samples.reserve(n_samples);
  def_e.reserve(n_samples);
  fx.reserve(n_samples * 3);
  std::uint64_t prev_out = 0;
  for (unsigned s = 0; s < n_samples; ++s) {
    const unsigned hd_in = steps[s].hd_in;
    const unsigned hd_sel = hamming(steps[s].prev_sel, steps[s].sel);
    const unsigned hd_out = hamming(prev_out, outs[s]);
    prev_out = outs[s];
    out.samples.push_back(Sample{{static_cast<double>(hd_in),
                                  static_cast<double>(hd_sel),
                                  static_cast<double>(hd_out)},
                                 3, ref[s]});
    def_e.push_back(default_model.energy(hd_in, hd_sel, hd_out));
    fx.insert(fx.end(), {static_cast<double>(hd_in), static_cast<double>(hd_sel),
                         static_cast<double>(hd_out)});
  }

  out.fit = fit_linear(fx.data(), n_samples, 3, ref.data());

  // Map the fitted linear coefficients back into MuxModel's structural
  // form: E = vdd^2/4 * c_node * (k_in*HD_IN + k_sel*w*HD_SEL + k_out*HD_OUT*(c_out/c_node)).
  const double unit = tech.vdd * tech.vdd / 4.0 * tech.c_node;
  out.calibrated.k_in = out.fit.coefficients[1] / unit;
  out.calibrated.k_sel = out.fit.coefficients[2] / (unit * width);
  out.calibrated.k_out = out.fit.coefficients[3] / (unit * (tech.c_out / tech.c_node));

  power::MuxModel fitted(width, n_inputs, tech, out.calibrated);
  std::vector<double> fit_e;
  fit_e.reserve(n_samples);
  for (const Sample& smp : out.samples) {
    fit_e.push_back(fitted.energy(static_cast<unsigned>(smp.features[0]),
                                  static_cast<unsigned>(smp.features[1]),
                                  static_cast<unsigned>(smp.features[2])));
  }
  out.default_model = accuracy(def_e, ref);
  out.fitted_model = accuracy(fit_e, ref);
  return out;
}

// ---------------------------------------------------------------------------
// Arbiter

ArbiterCharacterization characterize_arbiter(unsigned n_masters, unsigned n_cycles,
                                             std::uint64_t seed,
                                             gate::Technology tech, Engine engine) {
  if (n_cycles < 16) throw SimError("characterize_arbiter: too few cycles");
  ArbiterCharacterization out;
  out.n_masters = n_masters;

  gate::ArbiterNetlist arb = gate::build_priority_arbiter(n_masters);

  // Sticky random requests, generated up front: each line flips with
  // probability 1/4 per cycle. One 64-bit draw is sliced into 32
  // independent 2-bit fields (one per master), so a cycle costs
  // ceil(n_masters/32) draws instead of n_masters. The draw schedule is
  // part of the stimulus definition and is shared verbatim by both
  // engines.
  std::mt19937_64 rng(seed);
  std::vector<std::uint32_t> reqs(n_cycles);
  {
    std::uint32_t req = 0;
    for (unsigned c = 0; c < n_cycles; ++c) {
      for (unsigned base = 0; base < n_masters; base += 32) {
        std::uint64_t draw = rng();
        const unsigned hi = std::min(n_masters, base + 32);
        for (unsigned m = base; m < hi; ++m, draw >>= 2) {
          if ((draw & 3u) == 0) req ^= 1u << m;
        }
      }
      reqs[c] = req;
    }
  }

  std::vector<double> ref(n_cycles, 0.0);
  std::vector<unsigned> grants(n_cycles, 0);
  if (engine == Engine::kScalar) {
    gate::GateSim simu(arb.nl, tech);
    for (unsigned c = 0; c < n_cycles; ++c) {
      for (unsigned m = 0; m < n_masters; ++m) {
        simu.set_input(arb.req[m], (reqs[c] >> m & 1u) != 0);
      }
      simu.reset_accounting();
      simu.tick();
      ref[c] = simu.energy();
      unsigned grant = 0;
      for (unsigned m = 0; m < n_masters; ++m) {
        if (simu.value(arb.grant[m])) grant = m;
      }
      grants[c] = grant;
    }
  } else {
    // The arbiter is sequential, but its next-state logic is a pure
    // priority encode of the request lines -- the post-tick netlist
    // state is a function of the last request vector alone. So lane j
    // replays the j-th contiguous chunk of the cycle sequence after a
    // single unaccounted warm-up tick with the chunk's predecessor
    // request (all-zero before cycle 0, which reproduces the reset
    // state): n_cycles scalar ticks become ceil(n_cycles/64)+1 64-lane
    // ticks.
    gate::BitSim simu(arb.nl, tech, gate::BitSim::Accounting::kPerLane);
    const unsigned len = (n_cycles + kLanes - 1) / kLanes;
    std::uint64_t lane_req[kLanes];
    std::uint64_t grant_w[kLanes];
    auto lane_cycle = [len](unsigned j, unsigned t) { return j * len + t; };

    // Handover detection needs no per-lane state: the sample-order loop
    // below walks grants[] with a rolling predecessor, which crosses
    // chunk boundaries exactly like the scalar cycle sequence.
    std::uint32_t prev_req[kLanes];
    for (unsigned j = 0; j < kLanes; ++j) {
      const unsigned start = lane_cycle(j, 0);
      lane_req[j] = (j == 0 || start > n_cycles || start == 0) ? 0 : reqs[start - 1];
      prev_req[j] = static_cast<std::uint32_t>(lane_req[j]);
    }
    drive_lane_words(simu, arb.req, lane_req, kLanes);
    simu.tick();

    for (unsigned t = 0; t < len; ++t) {
      for (unsigned j = 0; j < kLanes; ++j) {
        const unsigned c = lane_cycle(j, t);
        lane_req[j] = c < n_cycles ? reqs[c] : prev_req[j];
      }
      drive_lane_words(simu, arb.req, lane_req, kLanes);
      simu.reset_accounting();
      simu.tick();
      read_lane_words(simu, arb.grant, grant_w);
      for (unsigned j = 0; j < kLanes; ++j) {
        const unsigned c = lane_cycle(j, t);
        if (c >= n_cycles) continue;
        ref[c] = simu.lane_energy(j);
        // Highest set grant line wins, matching the scalar scan.
        unsigned grant = 0;
        for (unsigned m = 0; m < n_masters; ++m) {
          if ((grant_w[j] >> m & 1u) != 0) grant = m;
        }
        grants[c] = grant;
        prev_req[j] = reqs[c];
      }
    }
  }

  power::ArbiterFsmModel fsm_model(n_masters, tech);
  std::vector<double> model_e, fx;
  out.samples.reserve(n_cycles);
  model_e.reserve(n_cycles);
  fx.reserve(n_cycles * 2);
  std::uint32_t prev_req = 0;
  unsigned prev_grant = 0;
  for (unsigned c = 0; c < n_cycles; ++c) {
    const bool handover = grants[c] != prev_grant;
    const unsigned hd_req = hamming(prev_req, reqs[c]);
    out.samples.push_back(Sample{{static_cast<double>(hd_req),
                                  handover ? 1.0 : 0.0},
                                 2, ref[c]});
    model_e.push_back(fsm_model.energy(hd_req, handover));
    fx.insert(fx.end(), {static_cast<double>(hd_req), handover ? 1.0 : 0.0});
    prev_req = reqs[c];
    prev_grant = grants[c];
  }

  out.fit = fit_linear(fx.data(), n_cycles, 2, ref.data());
  out.fsm_model = accuracy(model_e, ref);
  return out;
}

}  // namespace ahbp::charlib
