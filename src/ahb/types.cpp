#include "ahb/types.hpp"

#include <ostream>

namespace ahbp::ahb {

const char* to_string(Trans t) {
  switch (t) {
    case Trans::kIdle: return "IDLE";
    case Trans::kBusy: return "BUSY";
    case Trans::kNonSeq: return "NONSEQ";
    case Trans::kSeq: return "SEQ";
  }
  return "?";
}

const char* to_string(Burst b) {
  switch (b) {
    case Burst::kSingle: return "SINGLE";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap4: return "WRAP4";
    case Burst::kIncr4: return "INCR4";
    case Burst::kWrap8: return "WRAP8";
    case Burst::kIncr8: return "INCR8";
    case Burst::kWrap16: return "WRAP16";
    case Burst::kIncr16: return "INCR16";
  }
  return "?";
}

const char* to_string(Resp r) {
  switch (r) {
    case Resp::kOkay: return "OKAY";
    case Resp::kError: return "ERROR";
    case Resp::kRetry: return "RETRY";
    case Resp::kSplit: return "SPLIT";
  }
  return "?";
}

const char* to_string(Size s) {
  switch (s) {
    case Size::kByte: return "BYTE";
    case Size::kHalfword: return "HALFWORD";
    case Size::kWord: return "WORD";
    case Size::kDword: return "DWORD";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Trans t) { return os << to_string(t); }
std::ostream& operator<<(std::ostream& os, Burst b) { return os << to_string(b); }
std::ostream& operator<<(std::ostream& os, Resp r) { return os << to_string(r); }
std::ostream& operator<<(std::ostream& os, Size s) { return os << to_string(s); }

}  // namespace ahbp::ahb
