#pragma once
// Signal bundles for the AHB fabric.
//
// Naming follows the AMBA spec: HADDR/HTRANS/... carried as plain
// integral signals (enum encodings via ahb::raw / static_cast).

#include <cstdint>
#include <string>

#include "ahb/types.hpp"
#include "sim/module.hpp"
#include "sim/signal.hpp"

namespace ahbp::ahb {

/// Per-master request/address/control/write-data outputs.
struct MasterSignals {
  MasterSignals(sim::Module* parent, const std::string& prefix)
      : hbusreq(parent, prefix + ".hbusreq", false),
        hlock(parent, prefix + ".hlock", false),
        haddr(parent, prefix + ".haddr", 0),
        htrans(parent, prefix + ".htrans", raw(Trans::kIdle)),
        hwrite(parent, prefix + ".hwrite", false),
        hsize(parent, prefix + ".hsize", raw(Size::kWord)),
        hburst(parent, prefix + ".hburst", raw(Burst::kSingle)),
        hwdata(parent, prefix + ".hwdata", 0) {}

  sim::Signal<bool> hbusreq;
  sim::Signal<bool> hlock;
  sim::Signal<std::uint32_t> haddr;
  sim::Signal<std::uint8_t> htrans;
  sim::Signal<bool> hwrite;
  sim::Signal<std::uint8_t> hsize;
  sim::Signal<std::uint8_t> hburst;
  sim::Signal<std::uint32_t> hwdata;
};

/// Per-slave response outputs.
struct SlaveSignals {
  SlaveSignals(sim::Module* parent, const std::string& prefix)
      : hrdata(parent, prefix + ".hrdata", 0),
        hreadyout(parent, prefix + ".hreadyout", true),
        hresp(parent, prefix + ".hresp", raw(Resp::kOkay)) {}

  sim::Signal<std::uint32_t> hrdata;
  sim::Signal<bool> hreadyout;
  sim::Signal<std::uint8_t> hresp;
};

/// The shared (multiplexed) bus: what every master and slave observes.
struct BusSignals {
  BusSignals(sim::Module* parent, const std::string& prefix)
      : haddr(parent, prefix + ".haddr", 0),
        htrans(parent, prefix + ".htrans", raw(Trans::kIdle)),
        hwrite(parent, prefix + ".hwrite", false),
        hsize(parent, prefix + ".hsize", raw(Size::kWord)),
        hburst(parent, prefix + ".hburst", raw(Burst::kSingle)),
        hwdata(parent, prefix + ".hwdata", 0),
        hrdata(parent, prefix + ".hrdata", 0),
        hready(parent, prefix + ".hready", true),
        hresp(parent, prefix + ".hresp", raw(Resp::kOkay)),
        hmaster(parent, prefix + ".hmaster", 0),
        hmaster_data(parent, prefix + ".hmaster_data", 0) {}

  /// @name Address/control phase (M2S mux outputs)
  ///@{
  sim::Signal<std::uint32_t> haddr;
  sim::Signal<std::uint8_t> htrans;
  sim::Signal<bool> hwrite;
  sim::Signal<std::uint8_t> hsize;
  sim::Signal<std::uint8_t> hburst;
  sim::Signal<std::uint32_t> hwdata;  ///< write-data mux output (data phase)
  ///@}

  /// @name Response path (S2M mux outputs)
  ///@{
  sim::Signal<std::uint32_t> hrdata;
  sim::Signal<bool> hready;
  sim::Signal<std::uint8_t> hresp;
  ///@}

  /// @name Arbiter status
  ///@{
  sim::Signal<std::uint8_t> hmaster;       ///< address-phase bus owner
  sim::Signal<std::uint8_t> hmaster_data;  ///< data-phase bus owner
  ///@}
};

}  // namespace ahbp::ahb
