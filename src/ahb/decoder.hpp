#pragma once
// AHB address decoder: HADDR -> HSELx (one-hot) + selected-slave index.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ahb/signals.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

/// Index value meaning "no mapped slave" before the default slave is
/// appended; after AhbBus::finalize() every address decodes somewhere.
inline constexpr std::uint8_t kNoSlave = 0xFF;

/// One entry of the system memory map.
struct AddressRange {
  std::uint32_t base = 0;
  std::uint32_t size = 0;  ///< bytes; range is [base, base+size)
  [[nodiscard]] bool contains(std::uint32_t addr) const {
    return addr >= base && addr - base < size;
  }
  [[nodiscard]] bool overlaps(const AddressRange& o) const {
    return base < o.base + o.size && o.base < base + size;
  }
};

/// Combinational address decoder.
///
/// Decodes the bus address into one-hot HSEL lines plus a binary
/// selected-slave index used by the pipeline register / S2M mux. Ranges
/// must not overlap; unmapped addresses select the fallback slave set via
/// set_fallback() (the bus wires this to its built-in default slave).
class Decoder : public sim::Module {
public:
  Decoder(sim::Module* parent, std::string name, BusSignals& bus);

  /// Adds a slave's address range; returns the slave index.
  unsigned attach(AddressRange range);

  /// Index selected when no range matches (the default slave).
  void set_fallback(unsigned slave_index);

  /// Creates HSEL signals and the decode process. Call once after all
  /// slaves are attached.
  void finalize();

  [[nodiscard]] sim::Signal<bool>& hsel(unsigned s) { return *hsel_.at(s); }
  /// Binary index of the currently addressed slave.
  [[nodiscard]] sim::Signal<std::uint8_t>& selected() { return selected_; }
  [[nodiscard]] unsigned n_slaves() const { return static_cast<unsigned>(ranges_.size()); }
  [[nodiscard]] const AddressRange& range(unsigned s) const { return ranges_.at(s); }

private:
  void decode();

  BusSignals& bus_;
  std::vector<AddressRange> ranges_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> hsel_;
  sim::Signal<std::uint8_t> selected_;
  unsigned fallback_ = kNoSlave;
  std::unique_ptr<sim::Method> proc_;
};

}  // namespace ahbp::ahb
