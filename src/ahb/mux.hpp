#pragma once
// AHB multiplexing logic: masters-to-slaves (address/control and write
// data) and slaves-to-masters (read data / ready / response), plus the
// data-phase pipeline register that steers them.

#include <memory>
#include <string>
#include <vector>

#include "ahb/decoder.hpp"
#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

/// Masters-to-slaves multiplexer (the paper's "M2S" block).
///
/// Routes the granted master's address/control onto the shared bus
/// combinationally, and the *data-phase* owner's HWDATA onto the shared
/// write-data bus (AHB pipelines address and data phases, so the two
/// selects differ by one transfer).
class MuxM2S : public sim::Module {
public:
  MuxM2S(sim::Module* parent, std::string name, BusSignals& bus);

  /// Registers one master's outgoing bundle (index order must match the
  /// arbiter's).
  void attach(MasterSignals& m);

  /// Creates the mux processes. Call once after all masters attach.
  void finalize();

  [[nodiscard]] unsigned n_inputs() const { return static_cast<unsigned>(masters_.size()); }
  /// The attached master bundles, by index (observability for gate-level
  /// co-simulation and tests).
  [[nodiscard]] const MasterSignals& input(unsigned m) const { return *masters_.at(m); }

private:
  void route_address();
  void route_wdata();

  BusSignals& bus_;
  std::vector<MasterSignals*> masters_;
  std::unique_ptr<sim::Method> addr_proc_;
  std::unique_ptr<sim::Method> wdata_proc_;
};

/// Slaves-to-masters multiplexer (the paper's "S2M" block).
///
/// Routes the data-phase slave's HRDATA / HREADYOUT / HRESP onto the
/// shared response bus. When no slave owns the data phase the bus is
/// ready with OKAY.
class MuxS2M : public sim::Module {
public:
  MuxS2M(sim::Module* parent, std::string name, BusSignals& bus,
         sim::Signal<std::uint8_t>& data_phase_slave);

  /// Registers one slave's response bundle (index order must match the
  /// decoder's).
  void attach(SlaveSignals& s);

  /// Creates the mux process. Call once after all slaves attach.
  void finalize();

  [[nodiscard]] unsigned n_inputs() const { return static_cast<unsigned>(slaves_.size()); }

private:
  void route();

  BusSignals& bus_;
  sim::Signal<std::uint8_t>& data_slave_;
  std::vector<SlaveSignals*> slaves_;
  std::unique_ptr<sim::Method> proc_;
};

/// The address-phase -> data-phase pipeline register.
///
/// At every ready clock edge it latches which master owned the address
/// phase and which slave it addressed; these registered values steer the
/// write-data and response muxes during the following data phase.
class PipelineRegister : public sim::Module {
public:
  PipelineRegister(sim::Module* parent, std::string name, sim::Clock& clk,
                   BusSignals& bus, Decoder& decoder);

  /// Slave owning the current data phase (kNoSlave when none).
  [[nodiscard]] sim::Signal<std::uint8_t>& data_phase_slave() { return data_slave_; }
  /// True while the current data phase belongs to an active transfer.
  [[nodiscard]] sim::Signal<bool>& data_phase_active() { return data_active_; }
  /// True while the current data phase is a write.
  [[nodiscard]] sim::Signal<bool>& data_phase_write() { return data_write_; }
  /// Address latched for the current data phase.
  [[nodiscard]] sim::Signal<std::uint32_t>& data_phase_addr() { return data_addr_; }

private:
  void latch();

  BusSignals& bus_;
  Decoder& decoder_;
  sim::Signal<std::uint8_t> data_slave_;
  sim::Signal<bool> data_active_;
  sim::Signal<bool> data_write_;
  sim::Signal<std::uint32_t> data_addr_;
  sim::Method proc_;
};

}  // namespace ahbp::ahb
