#include "ahb/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;
using sim::Task;
using sim::wait;

// ---------------------------------------------------------------------------
// TransactionTrace

TransactionTrace TransactionTrace::filter_master(std::uint8_t master) const {
  TransactionTrace out;
  for (const TransferRecord& r : records_) {
    if (r.master == master) out.add(r);
  }
  return out;
}

void TransactionTrace::save(std::ostream& os) const {
  os << "# ahbpower transaction trace v1: cycle master W|R addr data\n";
  for (const TransferRecord& r : records_) {
    os << r.cycle << ' ' << static_cast<unsigned>(r.master) << ' '
       << (r.write ? 'W' : 'R') << ' ' << std::hex << "0x" << r.addr << " 0x"
       << r.data << std::dec << '\n';
  }
}

TransactionTrace TransactionTrace::load(std::istream& is) {
  TransactionTrace t;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TransferRecord r;
    unsigned master = 0;
    char rw = 0;
    std::string addr_s, data_s;
    if (!(ls >> r.cycle)) continue;  // blank line
    if (!(ls >> master >> rw >> addr_s >> data_s) || (rw != 'W' && rw != 'R')) {
      throw SimError("TransactionTrace: malformed line " + std::to_string(lineno));
    }
    r.master = static_cast<std::uint8_t>(master);
    r.write = rw == 'W';
    r.addr = static_cast<std::uint32_t>(std::stoul(addr_s, nullptr, 0));
    r.data = static_cast<std::uint32_t>(std::stoul(data_s, nullptr, 0));
    t.add(r);
  }
  return t;
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(sim::Module* parent, std::string name, AhbBus& bus)
    : Module(parent, std::move(name)),
      bus_(bus),
      proc_(this, "record", [this] { on_cycle(); }) {
  if (!bus.finalized()) throw SimError("TraceRecorder: bus must be finalized");
  proc_.sensitive(bus.clock().negedge_event()).dont_initialize();
}

void TraceRecorder::on_cycle() {
  ++cycle_;
  const BusSignals& b = bus_.bus();
  if (!bus_.pipeline().data_phase_active().read() || !b.hready.read()) return;
  TransferRecord r;
  r.cycle = cycle_;
  r.master = b.hmaster_data.read();
  r.write = bus_.pipeline().data_phase_write().read();
  r.addr = bus_.pipeline().data_phase_addr().read();
  r.data = r.write ? b.hwdata.read() : b.hrdata.read();
  trace_.add(r);
}

// ---------------------------------------------------------------------------
// TraceMaster

TraceMaster::TraceMaster(sim::Module* parent, std::string name, AhbBus& bus,
                         TransactionTrace trace)
    : AhbMaster(parent, std::move(name), bus),
      trace_(std::move(trace)),
      thread_(this, "proc", [this] { return body(); }) {}

Task TraceMaster::body() {
  BusSignals& bus = bus_signals();
  sim::Event& edge = clock().posedge_event();
  if (trace_.records().empty()) co_return;

  const std::uint64_t t0 = trace_.records().front().cycle;
  std::uint64_t cycle = 0;
  bool have_pending = false;
  TransferRecord pending{};

  // Completes the pending transfer's bookkeeping at a ready edge.
  auto settle_pending = [&] {
    if (!have_pending) return;
    if (!pending.write && bus.hrdata.read() != pending.data) {
      ++stats_.read_mismatches;
    }
    ++stats_.replayed;
    have_pending = false;
  };

  for (const TransferRecord& r : trace_.records()) {
    const std::uint64_t due = r.cycle - t0;

    // A gap before this record: drain the in-flight transfer, then idle
    // with the bus released (pacing preserves the recorded rhythm).
    if (cycle < due && have_pending) {
      sig_.htrans.write(raw(Trans::kIdle));
      sig_.hbusreq.write(false);
      if (pending.write) sig_.hwdata.write(pending.data);
      do {
        co_await wait(edge);
        ++cycle;
      } while (!bus.hready.read());
      settle_pending();
    }
    while (cycle < due) {
      co_await wait(edge);
      ++cycle;
    }

    // Own the bus.
    if (!granted() || !sig_.hbusreq.read()) {
      sig_.hbusreq.write(true);
      while (!(granted() && bus.hready.read())) {
        co_await wait(edge);
        ++cycle;
      }
    }

    // Pipelined: address phase of this record beside the pending
    // record's data phase, exactly like the original masters.
    sig_.htrans.write(raw(Trans::kNonSeq));
    sig_.haddr.write(r.addr);
    sig_.hwrite.write(r.write);
    sig_.hburst.write(raw(Burst::kSingle));
    sig_.hsize.write(raw(Size::kWord));
    if (have_pending && pending.write) sig_.hwdata.write(pending.data);
    do {
      co_await wait(edge);
      ++cycle;
    } while (!bus.hready.read());
    settle_pending();
    pending = r;
    have_pending = true;
  }

  // Drain the final transfer.
  sig_.htrans.write(raw(Trans::kIdle));
  sig_.hbusreq.write(false);
  if (pending.write) sig_.hwdata.write(pending.data);
  do {
    co_await wait(edge);
    ++cycle;
  } while (!bus.hready.read());
  settle_pending();
}

}  // namespace ahbp::ahb
