#include "ahb/master.hpp"

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;
using sim::Task;
using sim::wait;

// ---------------------------------------------------------------------------
// AhbMaster

AhbMaster::AhbMaster(sim::Module* parent, std::string name, AhbBus& bus)
    : Module(parent, std::move(name)), bus_(bus), sig_(this, "out") {
  index_ = bus_.attach_master(sig_);
}

bool AhbMaster::granted() const { return bus_.hgrant(index_).read(); }

BusSignals& AhbMaster::bus_signals() const { return bus_.bus(); }

sim::Clock& AhbMaster::clock() const { return bus_.clock(); }

// ---------------------------------------------------------------------------
// TrafficMaster

TrafficMaster::TrafficMaster(sim::Module* parent, std::string name, AhbBus& bus,
                             Config cfg)
    : AhbMaster(parent, std::move(name), bus),
      cfg_(cfg),
      rng_(cfg.seed),
      thread_(this, "proc", [this] { return body(); }) {
  if (cfg_.max_idle_cycles < cfg_.min_idle_cycles || cfg_.min_idle_cycles == 0) {
    throw SimError("TrafficMaster: bad idle-cycle bounds");
  }
  if (cfg_.max_pairs < cfg_.min_pairs || cfg_.min_pairs == 0) {
    throw SimError("TrafficMaster: bad pair bounds");
  }
  if (cfg_.addr_range < 4) throw SimError("TrafficMaster: address window too small");
}

Task TrafficMaster::body() {
  BusSignals& bus = bus_signals();
  sim::Event& edge = clock().posedge_event();

  auto rand_between = [this](unsigned lo, unsigned hi) {
    return lo + static_cast<unsigned>(rng_() % (hi - lo + 1));
  };
  auto rand_addr = [this] {
    const std::uint32_t words = cfg_.addr_range / 4;
    return cfg_.addr_base + 4 * static_cast<std::uint32_t>(rng_() % words);
  };

  for (;;) {
    // --- IDLE phase: the only window in which handover can happen -------
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
    const unsigned idle_n = rand_between(cfg_.min_idle_cycles, cfg_.max_idle_cycles);
    for (unsigned i = 0; i < idle_n; ++i) co_await wait(edge);

    // Cooperative DPM: hold off the next tenure while throttled.
    while (cfg_.throttle != nullptr && cfg_.throttle->read()) {
      ++stats_.throttled_cycles;
      co_await wait(edge);
    }

    // --- request the bus and wait until granted and ready ---------------
    sig_.hbusreq.write(true);
    do {
      co_await wait(edge);
    } while (!(granted() && bus.hready.read()));

    // --- non-interruptible WRITE-READ pairs -----------------------------
    const unsigned pairs = rand_between(cfg_.min_pairs, cfg_.max_pairs);

    // Pipelined beat engine: while beat N's data phase runs, beat N+1's
    // address phase is on the bus.
    struct Beat {
      bool write;
      std::uint32_t addr;
      std::uint32_t data;  ///< write value / expected read-back
    };
    std::vector<Beat> beats;
    beats.reserve(2 * pairs);
    for (unsigned p = 0; p < pairs; ++p) {
      const std::uint32_t a = rand_addr();
      const std::uint32_t d = static_cast<std::uint32_t>(rng_());
      beats.push_back(Beat{true, a, d});
      beats.push_back(Beat{false, a, d});
    }

    bool have_pending = false;
    Beat pending{};
    for (const Beat& b : beats) {
      // Address phase for beat b; write-data phase for the pending beat.
      sig_.htrans.write(raw(Trans::kNonSeq));
      sig_.haddr.write(b.addr);
      sig_.hwrite.write(b.write);
      sig_.hburst.write(raw(Burst::kSingle));
      sig_.hsize.write(raw(Size::kWord));
      if (have_pending && pending.write) sig_.hwdata.write(pending.data);

      do {
        co_await wait(edge);
      } while (!bus.hready.read());

      // The pending beat's data phase completed at this edge.
      if (have_pending) {
        if (static_cast<Resp>(bus.hresp.read()) != Resp::kOkay) ++stats_.error_responses;
        if (pending.write) {
          ++stats_.writes;
        } else {
          ++stats_.reads;
          if (bus.hrdata.read() != pending.data) ++stats_.read_mismatches;
        }
      }
      pending = b;
      have_pending = true;
    }

    // Drain the final data phase while already releasing the bus.
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
    if (pending.write) sig_.hwdata.write(pending.data);
    do {
      co_await wait(edge);
    } while (!bus.hready.read());
    if (static_cast<Resp>(bus.hresp.read()) != Resp::kOkay) ++stats_.error_responses;
    if (pending.write) {
      ++stats_.writes;
    } else {
      ++stats_.reads;
      if (bus.hrdata.read() != pending.data) ++stats_.read_mismatches;
    }
    ++stats_.sequences;
  }
}

// ---------------------------------------------------------------------------
// DefaultMaster

DefaultMaster::DefaultMaster(sim::Module* parent, std::string name, AhbBus& bus)
    : AhbMaster(parent, std::move(name), bus) {}

// ---------------------------------------------------------------------------
// ScriptedMaster

ScriptedMaster::ScriptedMaster(sim::Module* parent, std::string name, AhbBus& bus,
                               std::vector<Op> script)
    : ScriptedMaster(parent, std::move(name), bus, std::move(script), Options{}) {}

ScriptedMaster::ScriptedMaster(sim::Module* parent, std::string name, AhbBus& bus,
                               std::vector<Op> script, Options opts)
    : AhbMaster(parent, std::move(name), bus),
      script_(std::move(script)),
      opts_(opts),
      thread_(this, "proc", [this] { return body(); }) {}

Task ScriptedMaster::body() {
  BusSignals& bus = bus_signals();
  sim::Event& edge = clock().posedge_event();

  bool have_pending = false;
  Op pending{};

  // Completes the pending data phase bookkeeping at a ready edge.
  auto record_pending = [&] {
    if (!have_pending) return;
    Result r;
    r.addr = pending.addr;
    r.write = pending.kind == Op::Kind::kWrite;
    r.data = r.write ? pending.data : bus.hrdata.read();
    r.resp = static_cast<Resp>(bus.hresp.read());
    results_.push_back(r);
    have_pending = false;
  };

  for (const Op& op : script_) {
    if (op.kind == Op::Kind::kIdle) {
      // Finish any in-flight data phase, then idle with the bus released.
      sig_.htrans.write(raw(Trans::kIdle));
      sig_.hbusreq.write(false);
      if (have_pending && pending.kind == Op::Kind::kWrite) {
        sig_.hwdata.write(pending.data);
      }
      if (have_pending) {
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        record_pending();
      }
      for (unsigned i = 0; i < op.idle_cycles; ++i) co_await wait(edge);
      continue;
    }

    // Transfer op: own the bus first.
    if (!granted() || !sig_.hbusreq.read()) {
      sig_.hbusreq.write(true);
      while (!(granted() && bus.hready.read())) co_await wait(edge);
    }

    if (opts_.retry) {
      // Serialized transfer: address phase, then a clean data phase with
      // nothing pipelined behind it, so a RETRY response can simply
      // re-issue the same transfer.
      unsigned attempts = 0;
      Resp resp = Resp::kOkay;
      std::uint32_t rdata = 0;
      for (;;) {
        sig_.htrans.write(raw(Trans::kNonSeq));
        sig_.haddr.write(op.addr);
        sig_.hwrite.write(op.kind == Op::Kind::kWrite);
        sig_.hburst.write(raw(Burst::kSingle));
        sig_.hsize.write(raw(Size::kWord));
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        sig_.htrans.write(raw(Trans::kIdle));
        if (op.kind == Op::Kind::kWrite) sig_.hwdata.write(op.data);
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        resp = static_cast<Resp>(bus.hresp.read());
        rdata = bus.hrdata.read();
        if ((resp == Resp::kRetry || resp == Resp::kSplit) &&
            attempts < opts_.max_retries) {
          ++attempts;
          ++retries_;
          if (resp == Resp::kSplit) {
            ++splits_;
            // The arbiter has masked this master: the grant signal still
            // reads its stale pre-handover value at this edge, so wait at
            // least one edge, then hold until the HSPLITx resume
            // re-grants the bus.
            do {
              co_await wait(edge);
            } while (!(granted() && bus.hready.read()));
          }
          continue;
        }
        break;
      }
      Result r;
      r.addr = op.addr;
      r.write = op.kind == Op::Kind::kWrite;
      r.data = r.write ? op.data : rdata;
      r.resp = resp;
      results_.push_back(r);
      continue;
    }

    sig_.htrans.write(raw(Trans::kNonSeq));
    sig_.haddr.write(op.addr);
    sig_.hwrite.write(op.kind == Op::Kind::kWrite);
    sig_.hburst.write(raw(Burst::kSingle));
    sig_.hsize.write(raw(Size::kWord));
    if (have_pending && pending.kind == Op::Kind::kWrite) {
      sig_.hwdata.write(pending.data);
    }
    do {
      co_await wait(edge);
    } while (!bus.hready.read());
    record_pending();
    pending = op;
    have_pending = true;
  }

  // Drain the last transfer and release the bus.
  sig_.htrans.write(raw(Trans::kIdle));
  sig_.hbusreq.write(false);
  if (have_pending) {
    if (pending.kind == Op::Kind::kWrite) sig_.hwdata.write(pending.data);
    do {
      co_await wait(edge);
    } while (!bus.hready.read());
    record_pending();
  }
}

}  // namespace ahbp::ahb
