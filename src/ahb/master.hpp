#pragma once
// AHB bus masters: the abstract base, the paper's traffic-generating
// master (WRITE-READ non-interruptible sequences + IDLE), the default
// master, and a scripted master for directed tests.

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

class AhbBus;

/// Base class for bus masters: owns the outgoing signal bundle and the
/// attachment to the bus.
class AhbMaster : public sim::Module {
public:
  AhbMaster(sim::Module* parent, std::string name, AhbBus& bus);

  [[nodiscard]] MasterSignals& signals() { return sig_; }
  [[nodiscard]] unsigned index() const { return index_; }

protected:
  /// True when this master owns the bus (HGRANT asserted).
  [[nodiscard]] bool granted() const;
  /// The shared bus signals (read-only use intended).
  [[nodiscard]] BusSignals& bus_signals() const;
  /// The bus clock.
  [[nodiscard]] sim::Clock& clock() const;

  AhbBus& bus_;
  MasterSignals sig_;
  unsigned index_;
};

/// The paper's testbench master.
///
/// Forever: IDLE for a random number of cycles, then request the bus and
/// run a random number of non-interruptible WRITE-READ pairs (write a
/// random word, read it back, verify), then release. Handover can only
/// happen while it idles, exactly as in the paper's testbench.
class TrafficMaster final : public AhbMaster {
public:
  struct Config {
    std::uint32_t addr_base = 0;      ///< start of the address window used
    std::uint32_t addr_range = 1024;  ///< bytes; word-aligned addresses inside
    unsigned min_idle_cycles = 1;
    unsigned max_idle_cycles = 8;
    unsigned min_pairs = 4;   ///< WRITE-READ pairs per bus tenure
    unsigned max_pairs = 24;  ///< long tenures, as in the paper's testbench
    std::uint64_t seed = 1;
    /// Optional cooperative throttle (see power::PowerGovernor): while
    /// the signal is high the master delays its next bus tenure.
    sim::Signal<bool>* throttle = nullptr;
  };

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t read_mismatches = 0;  ///< read-back value != written value
    std::uint64_t error_responses = 0;
    std::uint64_t sequences = 0;  ///< bus tenures completed
    std::uint64_t throttled_cycles = 0;  ///< cycles stalled by DPM throttle
  };

  TrafficMaster(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Late binding of the DPM throttle (the governor is typically
  /// constructed after the bus is finalized, i.e. after the masters).
  void set_throttle(sim::Signal<bool>* throttle) { cfg_.throttle = throttle; }

private:
  sim::Task body();

  Config cfg_;
  Stats stats_;
  std::mt19937_64 rng_;
  sim::Thread thread_;
};

/// The "simple default master": drives IDLE forever and never requests
/// the bus. It is granted whenever nobody else wants the bus.
class DefaultMaster final : public AhbMaster {
public:
  DefaultMaster(sim::Module* parent, std::string name, AhbBus& bus);
  // No process needed: the signal bundle's reset values are exactly the
  // IDLE pattern, and they are never changed.
};

/// A master driven by an explicit list of operations -- the workhorse of
/// the protocol unit tests.
class ScriptedMaster final : public AhbMaster {
public:
  struct Op {
    enum class Kind { kWrite, kRead, kIdle } kind = Kind::kIdle;
    std::uint32_t addr = 0;
    std::uint32_t data = 0;      ///< write value
    unsigned idle_cycles = 1;    ///< for kIdle
  };

  struct Result {
    std::uint32_t addr = 0;
    bool write = false;
    std::uint32_t data = 0;  ///< data written or read
    Resp resp = Resp::kOkay;
  };

  struct Options {
    /// Re-issue transfers that receive a RETRY or SPLIT response.
    /// Retrying masters run their transfers serialized (one in flight)
    /// so a re-issued transfer has no pipelined successor to cancel.
    /// After a SPLIT the master is masked at the arbiter; the re-issue
    /// waits for the re-grant (the HSPLITx resume).
    bool retry = false;
    unsigned max_retries = 8;  ///< per transfer; then the response is recorded
  };

  ScriptedMaster(sim::Module* parent, std::string name, AhbBus& bus,
                 std::vector<Op> script);
  ScriptedMaster(sim::Module* parent, std::string name, AhbBus& bus,
                 std::vector<Op> script, Options opts);

  /// One entry per completed kWrite/kRead op, in script order.
  [[nodiscard]] const std::vector<Result>& results() const { return results_; }
  [[nodiscard]] bool finished() const { return thread_.done(); }
  /// Number of RETRY/SPLIT-triggered re-issues performed.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Number of SPLIT responses absorbed (subset of retries()).
  [[nodiscard]] std::uint64_t splits() const { return splits_; }

private:
  sim::Task body();

  std::vector<Op> script_;
  Options opts_;
  std::vector<Result> results_;
  std::uint64_t retries_ = 0;
  std::uint64_t splits_ = 0;
  sim::Thread thread_;
};

}  // namespace ahbp::ahb
