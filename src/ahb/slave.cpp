#include "ahb/slave.hpp"

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

namespace {

/// Counts down outstanding HSPLITx resumes, unmasking each master at the
/// arbiter when its countdown expires. Order within a cycle is
/// irrelevant: resumes only toggle independent mask bits.
void tick_resumes(std::vector<std::pair<unsigned, unsigned>>& pending,
                  Arbiter& arb) {
  for (std::size_t i = 0; i < pending.size();) {
    if (--pending[i].second == 0) {
      arb.resume(pending[i].first);
      pending[i] = pending.back();
      pending.pop_back();
    } else {
      ++i;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AhbSlave

AhbSlave::AhbSlave(sim::Module* parent, std::string name, AhbBus& bus,
                   std::uint32_t base, std::uint32_t size)
    : Module(parent, std::move(name)), bus_(bus), sig_(this, "out") {
  index_ = bus_.attach_slave(sig_, AddressRange{base, size});
}

bool AhbSlave::selected() const { return bus_.hsel(index_).read(); }

BusSignals& AhbSlave::bus_signals() const { return bus_.bus(); }

sim::Clock& AhbSlave::clock() const { return bus_.clock(); }

// ---------------------------------------------------------------------------
// MemorySlave

MemorySlave::MemorySlave(sim::Module* parent, std::string name, AhbBus& bus,
                         Config cfg)
    : AhbSlave(parent, std::move(name), bus, cfg.base, cfg.size),
      cfg_(cfg),
      proc_(this, "clocked", [this] { on_clock(); }) {
  if (cfg_.size == 0 || cfg_.size % 4 != 0) {
    throw SimError("MemorySlave: size must be a positive multiple of 4");
  }
  proc_.sensitive(clock().posedge_event()).dont_initialize();
}

std::uint32_t MemorySlave::peek(std::uint32_t addr) const {
  const auto it = mem_.find(addr / 4);
  return it == mem_.end() ? 0 : it->second;
}

void MemorySlave::poke(std::uint32_t addr, std::uint32_t value) {
  mem_[addr / 4] = value;
}

void MemorySlave::on_clock() {
  BusSignals& bus = bus_signals();

  // 0. Progress outstanding SPLIT resumes and a two-cycle fault response.
  if (!pending_resumes_.empty()) tick_resumes(pending_resumes_, bus_.arbiter());
  if (resp_phase_ == RespPhase::kFail1) {
    // First failure cycle (HREADY low, HRESP set) done: raise HREADY.
    sig_.hreadyout.write(true);
    resp_phase_ = RespPhase::kFail2;
    return;  // cannot accept a new address phase mid-response
  }
  if (resp_phase_ == RespPhase::kFail2) {
    // Second failure cycle done: back to OKAY, ready for a new transfer.
    sig_.hresp.write(raw(Resp::kOkay));
    resp_phase_ = RespPhase::kNone;
  }

  // 1. Complete a data phase that we signalled ready for: a write
  //    captures HWDATA, which the master drove during the cycle that just
  //    ended.
  if (busy_ && completing_) {
    if (op_write_) {
      mem_[(op_addr_ - cfg_.base) / 4] = bus.hwdata.read();
      ++stats_.writes;
    } else {
      ++stats_.reads;
    }
    busy_ = false;
    completing_ = false;
  }

  // 2. Progress wait states of an in-flight data phase.
  if (busy_ && !completing_) {
    ++stats_.wait_cycles;
    if (--waits_left_ == 0) {
      if (!op_write_) sig_.hrdata.write(peek(op_addr_ - cfg_.base));
      sig_.hreadyout.write(true);
      completing_ = true;
    }
    return;  // cannot accept a new address phase while stalled
  }

  // 3. Accept the address phase that was on the bus during the cycle
  //    that just ended (only valid if the bus was ready).
  const bool accept = selected() &&
                      is_active(static_cast<Trans>(bus.htrans.read())) &&
                      bus.hready.read();
  if (!accept) return;

  op_write_ = bus.hwrite.read();
  op_addr_ = bus.haddr.read();

  // 3a. Consult the fault hook: a non-OKAY verdict turns this transfer
  //     into a two-cycle protocol response instead of a data phase.
  FaultDecision fault;
  if (cfg_.fault_hook) {
    FaultQuery q;
    q.transfer_index = transfer_index_;
    q.write = op_write_;
    q.addr = op_addr_;
    q.htrans = static_cast<Trans>(bus.htrans.read());
    // HMASTER still carries the owner that issued this address phase
    // (settled value from the cycle that just ended).
    q.master = bus.hmaster.read();
    fault = cfg_.fault_hook(q);
  }
  ++transfer_index_;
  if (fault.resp != Resp::kOkay) {
    switch (fault.resp) {
      case Resp::kRetry:
        ++stats_.retries;
        break;
      case Resp::kError:
        ++stats_.errors;
        break;
      case Resp::kSplit: {
        const unsigned m = bus.hmaster.read();
        bus_.arbiter().split(m);
        const unsigned resume = fault.split_resume_cycles == 0
                                    ? 1u
                                    : fault.split_resume_cycles;
        pending_resumes_.emplace_back(m, resume);
        ++stats_.splits;
        break;
      }
      case Resp::kOkay:
        break;
    }
    sig_.hresp.write(raw(fault.resp));
    sig_.hreadyout.write(false);
    resp_phase_ = RespPhase::kFail1;
    return;
  }

  busy_ = true;
  const unsigned waits = cfg_.wait_states + fault.extra_waits;
  stats_.jitter_cycles += fault.extra_waits;
  if (waits == 0) {
    if (!op_write_) sig_.hrdata.write(peek(op_addr_ - cfg_.base));
    sig_.hreadyout.write(true);  // already true, but keep the intent clear
    completing_ = true;
  } else {
    waits_left_ = waits;
    sig_.hreadyout.write(false);
    completing_ = false;
  }
}

// ---------------------------------------------------------------------------
// FaultySlave

FaultySlave::FaultySlave(sim::Module* parent, std::string name, AhbBus& bus,
                         Config cfg)
    : AhbSlave(parent, std::move(name), bus, cfg.base, cfg.size),
      cfg_(cfg),
      proc_(this, "clocked", [this] { on_clock(); }) {
  if (cfg_.size == 0 || cfg_.size % 4 != 0) {
    throw SimError("FaultySlave: size must be a positive multiple of 4");
  }
  if (cfg_.fail_every_n == 0) throw SimError("FaultySlave: fail_every_n must be > 0");
  if (cfg_.failure != Resp::kRetry && cfg_.failure != Resp::kError &&
      cfg_.failure != Resp::kSplit) {
    throw SimError("FaultySlave: failure response must be RETRY, ERROR or SPLIT");
  }
  if (cfg_.failure == Resp::kSplit && cfg_.split_resume_cycles == 0) {
    throw SimError("FaultySlave: split_resume_cycles must be > 0");
  }
  proc_.sensitive(clock().posedge_event()).dont_initialize();
}

std::uint32_t FaultySlave::peek(std::uint32_t addr) const {
  const auto it = mem_.find(addr / 4);
  return it == mem_.end() ? 0 : it->second;
}

void FaultySlave::on_clock() {
  BusSignals& bus = bus_signals();

  if (!pending_resumes_.empty()) tick_resumes(pending_resumes_, bus_.arbiter());

  switch (phase_) {
    case Phase::kData:
      // Successful data phase ended at this edge: commit the operation.
      if (op_write_) {
        mem_[(op_addr_ - cfg_.base) / 4] = bus.hwdata.read();
        ++stats_.ok_writes;
      } else {
        ++stats_.ok_reads;
      }
      phase_ = Phase::kIdle;
      break;
    case Phase::kFail1:
      // First failure cycle (HREADY low, HRESP set) done: raise HREADY.
      sig_.hreadyout.write(true);
      phase_ = Phase::kFail2;
      return;  // cannot accept a new address phase mid-response
    case Phase::kFail2:
      // Second failure cycle done: back to OKAY.
      sig_.hresp.write(raw(Resp::kOkay));
      ++stats_.failures;
      phase_ = Phase::kIdle;
      break;
    case Phase::kIdle:
      break;
  }

  const bool accept = selected() &&
                      is_active(static_cast<Trans>(bus.htrans.read())) &&
                      bus.hready.read();
  if (!accept) return;

  ++accepted_;
  op_write_ = bus.hwrite.read();
  op_addr_ = bus.haddr.read();
  if (accepted_ % cfg_.fail_every_n == 0) {
    if (cfg_.failure == Resp::kSplit) {
      // Mask the owner that issued this address phase; schedule the
      // HSPLITx resume.
      const unsigned m = bus.hmaster.read();
      bus_.arbiter().split(m);
      pending_resumes_.emplace_back(m, cfg_.split_resume_cycles);
    }
    sig_.hresp.write(raw(cfg_.failure));
    sig_.hreadyout.write(false);
    phase_ = Phase::kFail1;
  } else {
    if (!op_write_) sig_.hrdata.write(peek(op_addr_ - cfg_.base));
    phase_ = Phase::kData;
  }
}

// ---------------------------------------------------------------------------
// DefaultSlave

DefaultSlave::DefaultSlave(sim::Module* parent, std::string name, AhbBus& bus)
    : AhbSlave(parent, std::move(name), bus, 0, 0),
      proc_(this, "clocked", [this] { on_clock(); }) {
  proc_.sensitive(clock().posedge_event()).dont_initialize();
}

void DefaultSlave::on_clock() {
  BusSignals& bus = bus_signals();

  if (completing_) {
    // Second ERROR cycle done; back to the reset response.
    sig_.hresp.write(raw(Resp::kOkay));
    completing_ = false;
    return;
  }
  if (erroring_) {
    // First ERROR cycle (HREADY low) done; raise HREADY, keep ERROR.
    sig_.hreadyout.write(true);
    erroring_ = false;
    completing_ = true;
    return;
  }

  // An active transfer decoded into unmapped space: two-cycle ERROR.
  const bool hit = selected() && is_active(static_cast<Trans>(bus.htrans.read())) &&
                   bus.hready.read();
  if (hit) {
    ++errors_;
    sig_.hresp.write(raw(Resp::kError));
    sig_.hreadyout.write(false);
    erroring_ = true;
  }
}

}  // namespace ahbp::ahb
