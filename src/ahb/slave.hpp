#pragma once
// AHB slaves: abstract base, memory slave with configurable wait states,
// and the default slave (OKAY to IDLE/BUSY, ERROR to real transfers into
// unmapped space).

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

class AhbBus;

/// Per-transfer fault verdict returned by a FaultHook (see
/// MemorySlave::Config::fault_hook). The default is a clean transfer.
/// The ahb layer stays ignorant of fault *scheduling*; src/fault/ builds
/// deterministic seed-driven hooks on top of this interface.
struct FaultDecision {
  /// kOkay = complete normally; kRetry/kError/kSplit = two-cycle
  /// protocol response of that kind instead of completing.
  Resp resp = Resp::kOkay;
  /// Additional wait states injected into this transfer's data phase
  /// (added to the slave's configured wait_states; OKAY responses only).
  unsigned extra_waits = 0;
  /// For kSplit: clock cycles after the SPLIT response until the slave
  /// signals resume (HSPLITx) and the arbiter unmasks the master.
  /// Clamped to >= 1.
  unsigned split_resume_cycles = 4;
};

/// Everything a FaultHook may condition its verdict on, sampled at the
/// accept edge of the transfer.
struct FaultQuery {
  std::uint64_t transfer_index = 0;  ///< slave-local accept counter
  bool write = false;
  std::uint32_t addr = 0;
  Trans htrans = Trans::kNonSeq;  ///< kSeq = mid-burst beat
  unsigned master = 0;            ///< address-phase owner (HMASTER)
};

/// Decides the fate of one accepted transfer.
using FaultHook = std::function<FaultDecision(const FaultQuery&)>;

/// Base class for bus slaves: owns the response bundle and the
/// attachment (address range) on the bus.
class AhbSlave : public sim::Module {
public:
  /// Attaches to `bus` at [base, base+size). A size of 0 creates an
  /// unmapped slave reachable only as the decoder fallback.
  AhbSlave(sim::Module* parent, std::string name, AhbBus& bus, std::uint32_t base,
           std::uint32_t size);

  [[nodiscard]] SlaveSignals& signals() { return sig_; }
  [[nodiscard]] unsigned index() const { return index_; }

protected:
  /// True when the decoder addresses this slave.
  [[nodiscard]] bool selected() const;
  [[nodiscard]] BusSignals& bus_signals() const;
  [[nodiscard]] sim::Clock& clock() const;

  AhbBus& bus_;
  SlaveSignals sig_;
  unsigned index_;
};

/// A word-wide memory slave.
///
/// Supports zero-wait operation or a fixed number of wait states per
/// transfer. Storage is sparse (unordered map keyed by word address), so
/// large address ranges cost nothing until touched.
///
/// An optional FaultHook turns any memory slave into a fault injector:
/// the hook is consulted once per accepted transfer and can demand a
/// two-cycle RETRY/ERROR/SPLIT response or extra wait states. SPLIT
/// responses mask the requesting master at the arbiter and schedule the
/// HSPLITx resume `split_resume_cycles` later.
class MemorySlave final : public AhbSlave {
public:
  struct Config {
    std::uint32_t base = 0;
    std::uint32_t size = 1024;   ///< bytes
    unsigned wait_states = 0;    ///< extra cycles per data phase
    /// Optional per-transfer fault verdict; empty = always OKAY.
    FaultHook fault_hook{};
  };

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wait_cycles = 0;
    std::uint64_t retries = 0;      ///< RETRY responses issued by the hook
    std::uint64_t errors = 0;       ///< ERROR responses issued by the hook
    std::uint64_t splits = 0;       ///< SPLIT responses issued by the hook
    std::uint64_t jitter_cycles = 0; ///< extra_waits cycles injected
  };

  MemorySlave(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  /// Backdoor access for tests and initialization (word-aligned).
  [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
  void poke(std::uint32_t addr, std::uint32_t value);

  [[nodiscard]] const Stats& stats() const { return stats_; }

private:
  void on_clock();

  Config cfg_;
  Stats stats_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;

  // Data-phase state machine.
  bool busy_ = false;        ///< a transfer's data phase is in flight
  bool completing_ = false;  ///< HREADYOUT driven high, op finishes next edge
  bool op_write_ = false;
  std::uint32_t op_addr_ = 0;
  unsigned waits_left_ = 0;

  // Two-cycle fault-response machine (mirrors FaultySlave's phases).
  enum class RespPhase { kNone, kFail1, kFail2 } resp_phase_ = RespPhase::kNone;
  std::uint64_t transfer_index_ = 0;
  /// Outstanding HSPLITx resumes: {master index, cycles until resume}.
  std::vector<std::pair<unsigned, unsigned>> pending_resumes_;

  sim::Method proc_;
};

/// A fault-injecting memory slave: behaves like a zero-wait MemorySlave
/// except that every `fail_every_n`-th accepted transfer receives a
/// two-cycle non-OKAY response (RETRY, ERROR or SPLIT) instead of
/// completing. Failed transfers do not touch memory; the master is
/// expected to re-issue RETRYed/SPLIT transfers (see
/// ScriptedMaster::Options::retry). A SPLIT response masks the
/// requesting master at the arbiter and resumes it (HSPLITx)
/// `split_resume_cycles` later.
class FaultySlave final : public AhbSlave {
public:
  struct Config {
    std::uint32_t base = 0;
    std::uint32_t size = 1024;
    unsigned fail_every_n = 3;   ///< 1 = every transfer fails
    Resp failure = Resp::kRetry; ///< kRetry, kError or kSplit
    /// For kSplit: cycles from the SPLIT response to the HSPLITx resume.
    unsigned split_resume_cycles = 4;
  };

  struct Stats {
    std::uint64_t ok_reads = 0;
    std::uint64_t ok_writes = 0;
    std::uint64_t failures = 0;
  };

  FaultySlave(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }

private:
  void on_clock();

  Config cfg_;
  Stats stats_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;
  std::uint64_t accepted_ = 0;

  enum class Phase { kIdle, kData, kFail1, kFail2 } phase_ = Phase::kIdle;
  bool op_write_ = false;
  std::uint32_t op_addr_ = 0;
  /// Outstanding HSPLITx resumes: {master index, cycles until resume}.
  std::vector<std::pair<unsigned, unsigned>> pending_resumes_;

  sim::Method proc_;
};

/// The default slave: unmapped addresses land here. IDLE and BUSY get a
/// zero-wait OKAY; NONSEQ/SEQ get the protocol's two-cycle ERROR.
class DefaultSlave final : public AhbSlave {
public:
  DefaultSlave(sim::Module* parent, std::string name, AhbBus& bus);

  [[nodiscard]] std::uint64_t error_count() const { return errors_; }

private:
  void on_clock();

  bool erroring_ = false;  ///< in the first ERROR cycle
  bool completing_ = false;
  std::uint64_t errors_ = 0;
  sim::Method proc_;
};

}  // namespace ahbp::ahb
