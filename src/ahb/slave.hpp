#pragma once
// AHB slaves: abstract base, memory slave with configurable wait states,
// and the default slave (OKAY to IDLE/BUSY, ERROR to real transfers into
// unmapped space).

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

class AhbBus;

/// Base class for bus slaves: owns the response bundle and the
/// attachment (address range) on the bus.
class AhbSlave : public sim::Module {
public:
  /// Attaches to `bus` at [base, base+size). A size of 0 creates an
  /// unmapped slave reachable only as the decoder fallback.
  AhbSlave(sim::Module* parent, std::string name, AhbBus& bus, std::uint32_t base,
           std::uint32_t size);

  [[nodiscard]] SlaveSignals& signals() { return sig_; }
  [[nodiscard]] unsigned index() const { return index_; }

protected:
  /// True when the decoder addresses this slave.
  [[nodiscard]] bool selected() const;
  [[nodiscard]] BusSignals& bus_signals() const;
  [[nodiscard]] sim::Clock& clock() const;

  AhbBus& bus_;
  SlaveSignals sig_;
  unsigned index_;
};

/// A word-wide memory slave.
///
/// Supports zero-wait operation or a fixed number of wait states per
/// transfer. Storage is sparse (unordered map keyed by word address), so
/// large address ranges cost nothing until touched.
class MemorySlave final : public AhbSlave {
public:
  struct Config {
    std::uint32_t base = 0;
    std::uint32_t size = 1024;   ///< bytes
    unsigned wait_states = 0;    ///< extra cycles per data phase
  };

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wait_cycles = 0;
  };

  MemorySlave(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  /// Backdoor access for tests and initialization (word-aligned).
  [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
  void poke(std::uint32_t addr, std::uint32_t value);

  [[nodiscard]] const Stats& stats() const { return stats_; }

private:
  void on_clock();

  Config cfg_;
  Stats stats_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;

  // Data-phase state machine.
  bool busy_ = false;        ///< a transfer's data phase is in flight
  bool completing_ = false;  ///< HREADYOUT driven high, op finishes next edge
  bool op_write_ = false;
  std::uint32_t op_addr_ = 0;
  unsigned waits_left_ = 0;

  sim::Method proc_;
};

/// A fault-injecting memory slave: behaves like a zero-wait MemorySlave
/// except that every `fail_every_n`-th accepted transfer receives a
/// two-cycle non-OKAY response (RETRY or ERROR) instead of completing.
/// RETRYed transfers do not touch memory; the master is expected to
/// re-issue them (see ScriptedMaster::Options::retry). SPLIT is not
/// modeled (it requires arbiter-side master masking, out of this
/// reproduction's scope).
class FaultySlave final : public AhbSlave {
public:
  struct Config {
    std::uint32_t base = 0;
    std::uint32_t size = 1024;
    unsigned fail_every_n = 3;   ///< 1 = every transfer fails
    Resp failure = Resp::kRetry; ///< kRetry or kError
  };

  struct Stats {
    std::uint64_t ok_reads = 0;
    std::uint64_t ok_writes = 0;
    std::uint64_t failures = 0;
  };

  FaultySlave(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }

private:
  void on_clock();

  Config cfg_;
  Stats stats_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;
  std::uint64_t accepted_ = 0;

  enum class Phase { kIdle, kData, kFail1, kFail2 } phase_ = Phase::kIdle;
  bool op_write_ = false;
  std::uint32_t op_addr_ = 0;

  sim::Method proc_;
};

/// The default slave: unmapped addresses land here. IDLE and BUSY get a
/// zero-wait OKAY; NONSEQ/SEQ get the protocol's two-cycle ERROR.
class DefaultSlave final : public AhbSlave {
public:
  DefaultSlave(sim::Module* parent, std::string name, AhbBus& bus);

  [[nodiscard]] std::uint64_t error_count() const { return errors_; }

private:
  void on_clock();

  bool erroring_ = false;  ///< in the first ERROR cycle
  bool completing_ = false;
  std::uint64_t errors_ = 0;
  sim::Method proc_;
};

}  // namespace ahbp::ahb
