#include "ahb/burst.hpp"

#include <vector>

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;
using sim::Task;
using sim::wait;

std::uint32_t next_burst_addr(std::uint32_t addr, Burst burst, Size size) {
  const std::uint32_t step = size_bytes(size);
  const std::uint32_t next = addr + step;
  switch (burst) {
    case Burst::kSingle:
    case Burst::kIncr:
    case Burst::kIncr4:
    case Burst::kIncr8:
    case Burst::kIncr16:
      return next;
    case Burst::kWrap4:
    case Burst::kWrap8:
    case Burst::kWrap16: {
      const std::uint32_t block = burst_beats(burst) * step;
      const std::uint32_t base = addr & ~(block - 1);
      return base | (next & (block - 1));
    }
  }
  return next;
}

std::uint32_t wrap_boundary(std::uint32_t addr, Burst burst, Size size) {
  const std::uint32_t block = burst_beats(burst) * size_bytes(size);
  if (block == 0) return addr;  // INCR: no boundary
  return addr & ~(block - 1);
}

BurstMaster::BurstMaster(sim::Module* parent, std::string name, AhbBus& bus,
                         Config cfg)
    : AhbMaster(parent, std::move(name), bus),
      cfg_(cfg),
      rng_(cfg.seed),
      thread_(this, "proc", [this] { return body(); }) {
  if (cfg_.burst == Burst::kSingle) {
    throw SimError("BurstMaster: use TrafficMaster for SINGLE transfers");
  }
  if (cfg_.burst == Burst::kIncr && cfg_.incr_beats < 2) {
    throw SimError("BurstMaster: INCR bursts need >= 2 beats");
  }
  if (cfg_.busy_percent > 100) throw SimError("BurstMaster: busy_percent > 100");
  const unsigned beats =
      cfg_.burst == Burst::kIncr ? cfg_.incr_beats : burst_beats(cfg_.burst);
  if (cfg_.addr_range < beats * 4) {
    throw SimError("BurstMaster: address window smaller than one burst");
  }
  if (cfg_.max_idle_cycles < cfg_.min_idle_cycles || cfg_.min_idle_cycles == 0) {
    throw SimError("BurstMaster: bad idle-cycle bounds");
  }
  const std::uint32_t block = burst_beats(cfg_.burst) * 4;
  const bool wrapping = cfg_.burst == Burst::kWrap4 || cfg_.burst == Burst::kWrap8 ||
                        cfg_.burst == Burst::kWrap16;
  if (wrapping && cfg_.addr_base % block != 0) {
    throw SimError("BurstMaster: addr_base must be wrap-block aligned");
  }
}

Task BurstMaster::body() {
  BusSignals& bus = bus_signals();
  sim::Event& edge = clock().posedge_event();
  const unsigned beats =
      cfg_.burst == Burst::kIncr ? cfg_.incr_beats : burst_beats(cfg_.burst);

  auto rand_between = [this](unsigned lo, unsigned hi) {
    return lo + static_cast<unsigned>(rng_() % (hi - lo + 1));
  };

  for (;;) {
    // IDLE window (handover opportunity).
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
    const unsigned idle_n = rand_between(cfg_.min_idle_cycles, cfg_.max_idle_cycles);
    for (unsigned i = 0; i < idle_n; ++i) co_await wait(edge);

    // Own the bus.
    sig_.hbusreq.write(true);
    do {
      co_await wait(edge);
    } while (!(granted() && bus.hready.read()));

    // Pick a legal start address: word-aligned; for wrapping bursts any
    // aligned address inside the window works (the sequence wraps).
    const std::uint32_t words = cfg_.addr_range / 4;
    std::uint32_t start = cfg_.addr_base + 4 * static_cast<std::uint32_t>(
                                                   rng_() % (words - beats + 1));
    const bool wrapping = cfg_.burst == Burst::kWrap4 ||
                          cfg_.burst == Burst::kWrap8 ||
                          cfg_.burst == Burst::kWrap16;
    if (wrapping) {
      // Keep the whole wrap block inside the window (addr_base is
      // block-aligned, checked at construction).
      start = wrap_boundary(start, cfg_.burst, Size::kWord);
    }

    // Beat plan: write burst then read-back burst.
    struct Beat {
      bool write;
      bool first;  ///< NONSEQ (new burst) vs SEQ
      std::uint32_t addr;
      std::uint32_t data;
    };
    std::vector<Beat> plan;
    plan.reserve(2 * beats);
    for (int pass = 0; pass < 2; ++pass) {
      std::uint32_t a = start;
      for (unsigned b = 0; b < beats; ++b) {
        plan.push_back(Beat{pass == 0, b == 0, a, 0});
        a = next_burst_addr(a, cfg_.burst, Size::kWord);
      }
    }
    // One data word per address, shared by the write and read passes.
    for (unsigned b = 0; b < beats; ++b) {
      const auto d = static_cast<std::uint32_t>(rng_());
      plan[b].data = d;
      plan[beats + b].data = d;
    }

    // Pipelined beat engine with optional BUSY insertion.
    bool have_pending = false;
    Beat pending{};
    for (const Beat& b : plan) {
      if (!b.first && cfg_.busy_percent != 0 &&
          rng_() % 100 < cfg_.busy_percent) {
        // BUSY beat: address/control show the upcoming transfer, no data
        // phase is created; exactly one cycle (zero-wait by protocol).
        sig_.htrans.write(raw(Trans::kBusy));
        sig_.haddr.write(b.addr);
        sig_.hwrite.write(b.write);
        if (have_pending && pending.write) sig_.hwdata.write(pending.data);
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        ++stats_.busy_beats;
        if (have_pending) {
          // The pending beat's data phase completed under the BUSY beat.
          if (static_cast<Resp>(bus.hresp.read()) != Resp::kOkay) {
            ++stats_.error_responses;
          }
          if (pending.write) {
            ++stats_.write_beats;
          } else {
            ++stats_.read_beats;
            if (bus.hrdata.read() != pending.data) ++stats_.read_mismatches;
          }
          have_pending = false;
        }
      }

      sig_.htrans.write(raw(b.first ? Trans::kNonSeq : Trans::kSeq));
      sig_.haddr.write(b.addr);
      sig_.hwrite.write(b.write);
      sig_.hburst.write(raw(cfg_.burst));
      sig_.hsize.write(raw(Size::kWord));
      if (have_pending && pending.write) sig_.hwdata.write(pending.data);
      do {
        co_await wait(edge);
      } while (!bus.hready.read());
      if (have_pending) {
        if (static_cast<Resp>(bus.hresp.read()) != Resp::kOkay) {
          ++stats_.error_responses;
        }
        if (pending.write) {
          ++stats_.write_beats;
        } else {
          ++stats_.read_beats;
          if (bus.hrdata.read() != pending.data) ++stats_.read_mismatches;
        }
      }
      pending = b;
      have_pending = true;
    }

    // Drain the last beat.
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
    if (pending.write) sig_.hwdata.write(pending.data);
    do {
      co_await wait(edge);
    } while (!bus.hready.read());
    if (static_cast<Resp>(bus.hresp.read()) != Resp::kOkay) ++stats_.error_responses;
    if (pending.write) {
      ++stats_.write_beats;
    } else {
      ++stats_.read_beats;
      if (bus.hrdata.read() != pending.data) ++stats_.read_mismatches;
    }
    stats_.bursts += 2;  // one write burst + one read burst
  }
}

}  // namespace ahbp::ahb
