#include "ahb/monitor.hpp"

#include "ahb/burst.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

BusMonitor::BusMonitor(sim::Module* parent, std::string name, AhbBus& bus)
    : BusMonitor(parent, std::move(name), bus, Config{}) {}

BusMonitor::BusMonitor(sim::Module* parent, std::string name, AhbBus& bus, Config cfg)
    : Module(parent, std::move(name)),
      bus_(bus),
      cfg_(cfg),
      proc_(this, "check", [this] { on_clock(); }) {
  proc_.sensitive(bus.clock().posedge_event()).dont_initialize();
  if (cfg_.metrics != nullptr) {
    c_violations_ = &cfg_.metrics->counter("ahb.monitor.violations");
  }
}

void BusMonitor::violation(const std::string& what) {
  // Context prefix: where (cycle / sim time) and who (address-phase
  // master, plus the selected data-phase slave when one is in flight).
  std::string msg = "cycle " + std::to_string(stats_.cycles) + " @" +
                    kernel().now().to_string() + " master " +
                    std::to_string(bus_.bus().hmaster.read());
  const std::uint8_t ds = bus_.pipeline().data_phase_slave().read();
  if (ds != 0xFF) msg += " slave " + std::to_string(ds);
  msg += ": " + what;
  violations_.push_back(msg);
  if (c_violations_ != nullptr) c_violations_->increment();
  if (cfg_.fatal) {
    throw SimError("AHB protocol violation at " + msg);
  }
  sim::warn("ahb-protocol", msg);
}

void BusMonitor::on_clock() {
  BusSignals& b = bus_.bus();
  const auto htrans = static_cast<Trans>(b.htrans.read());
  const bool hready = b.hready.read();
  const auto hresp = static_cast<Resp>(b.hresp.read());
  const bool data_active = bus_.pipeline().data_phase_active().read();
  const bool data_write = bus_.pipeline().data_phase_write().read();
  const std::uint8_t hmaster = b.hmaster.read();

  ++stats_.cycles;

  // --- statistics --------------------------------------------------------
  if (data_active && hready) {
    ++stats_.transfers;
    if (data_write) {
      ++stats_.writes;
    } else {
      ++stats_.reads;
    }
  }
  if (data_active && !hready) ++stats_.wait_cycles;
  if (htrans == Trans::kIdle) ++stats_.idle_cycles;
  if (prev_.valid && hmaster != prev_.hmaster) ++stats_.handovers;
  if (hresp == Resp::kError && hready) ++stats_.error_responses;
  if (hresp == Resp::kRetry && hready) ++stats_.retry_responses;
  if (hresp == Resp::kSplit && hready) ++stats_.split_responses;

  // --- protocol checks ----------------------------------------------------
  // Exactly one grant must be asserted.
  unsigned grants = 0;
  for (unsigned m = 0; m < bus_.n_masters(); ++m) {
    if (bus_.hgrant(m).read()) ++grants;
  }
  if (grants != 1) {
    violation("expected exactly one HGRANT asserted, saw " + std::to_string(grants));
  }

  // The bus must be ready whenever no data phase is in flight.
  if (!data_active && !hready) {
    violation("HREADY low with no data phase in flight");
  }

  // A non-OKAY response only makes sense against an in-flight data phase.
  if (hresp != Resp::kOkay && !data_active) {
    violation("non-OKAY HRESP with no data phase in flight");
  }

  // Two-cycle response rule: the first RETRY/ERROR/SPLIT cycle must
  // drive HREADY low (so pipelined masters can cancel the following
  // address phase); the second must keep the same HRESP and raise
  // HREADY; there is no third cycle.
  const bool first_resp_cycle =
      hresp != Resp::kOkay && (!prev_.valid || prev_.hresp == Resp::kOkay);
  if (first_resp_cycle && hready) {
    violation("single-cycle " + std::string(to_string(hresp)) +
              " response (HREADY must be low on the first cycle)");
  }
  if (prev_.valid && prev_.hresp != Resp::kOkay && !prev_.hready) {
    if (hresp != prev_.hresp) {
      violation("HRESP changed between the two response cycles");
    }
    if (!hready) {
      violation("two-cycle " + std::string(to_string(hresp)) +
                " response stretched beyond two cycles");
    }
  }

  // Split-mask discipline: a masked master must never (re)gain the bus.
  if (prev_.valid && hmaster != prev_.hmaster &&
      ((bus_.arbiter().split_mask() >> hmaster) & 1u) != 0) {
    violation("split-masked master granted the bus");
  }

  if (prev_.valid) {
    // Address phase must be held stable while the bus is stalled.
    if (!prev_.hready && is_active(prev_.htrans)) {
      if (b.haddr.read() != prev_.haddr || htrans != prev_.htrans ||
          b.hwrite.read() != prev_.hwrite) {
        violation("address phase changed during wait states");
      }
    }
    // SEQ may only continue a burst, never start one.
    if (htrans == Trans::kSeq && prev_.htrans == Trans::kIdle) {
      violation("SEQ transfer immediately after IDLE");
    }
    // Burst address sequencing: a SEQ beat following an accepted beat
    // must continue the burst's address pattern; a SEQ after BUSY must
    // carry the address the BUSY beat already showed. (BUSY itself may
    // only appear inside a burst.)
    if (htrans == Trans::kSeq && prev_.hready) {
      std::uint32_t expected = prev_.haddr;
      if (prev_.htrans == Trans::kNonSeq || prev_.htrans == Trans::kSeq) {
        expected = next_burst_addr(prev_.haddr, prev_.hburst, prev_.hsize);
      }
      if (b.haddr.read() != expected) {
        violation("SEQ beat breaks the burst address sequence");
      }
    }
    if (htrans == Trans::kBusy && prev_.htrans == Trans::kIdle) {
      violation("BUSY beat outside a burst");
    }
    // Handover is only legal out of an IDLE address phase.
    if (hmaster != prev_.hmaster && prev_.htrans != Trans::kIdle) {
      violation("bus handover while the previous owner was mid-transfer");
    }
  }

  prev_.valid = true;
  prev_.haddr = b.haddr.read();
  prev_.htrans = htrans;
  prev_.hwrite = b.hwrite.read();
  prev_.hready = hready;
  prev_.hmaster = hmaster;
  prev_.hburst = static_cast<Burst>(b.hburst.read());
  prev_.hsize = static_cast<Size>(b.hsize.read());
  prev_.hresp = hresp;
}

}  // namespace ahbp::ahb
