#pragma once
// Bus-transaction trace capture and replay.
//
// Real methodology deployments feed production traces into the power
// model; we have no production traces (see DESIGN.md substitutions), so
// this module closes the loop synthetically: record the transfers of any
// live run into a portable text trace, then replay them -- with their
// original pacing -- as a TraceMaster on a fresh system. Replayed
// workloads reproduce the recorded transfer stream and hence its power
// signature.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ahb/master.hpp"
#include "ahb/monitor.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

/// One completed transfer (data-phase completion).
struct TransferRecord {
  std::uint64_t cycle = 0;  ///< bus cycle of completion
  std::uint8_t master = 0;  ///< data-phase owner
  bool write = false;
  std::uint32_t addr = 0;
  std::uint32_t data = 0;  ///< write data / read-back value

  bool operator==(const TransferRecord&) const = default;
};

/// An ordered list of transfers with text persistence.
class TransactionTrace {
public:
  void add(const TransferRecord& r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<TransferRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Keeps only one master's transfers (for replay by a single master).
  [[nodiscard]] TransactionTrace filter_master(std::uint8_t master) const;

  /// @name Persistence: "cycle master W|R addr data" lines, '#' comments.
  ///@{
  void save(std::ostream& os) const;
  [[nodiscard]] static TransactionTrace load(std::istream& is);
  ///@}

private:
  std::vector<TransferRecord> records_;
};

/// Passive recorder: samples the bus each cycle and appends every
/// completed transfer to its trace.
class TraceRecorder : public sim::Module {
public:
  TraceRecorder(sim::Module* parent, std::string name, AhbBus& bus);

  [[nodiscard]] const TransactionTrace& trace() const { return trace_; }

private:
  void on_cycle();

  AhbBus& bus_;
  TransactionTrace trace_;
  std::uint64_t cycle_ = 0;
  sim::Method proc_;
};

/// Replays a (single-master) trace: performs each recorded transfer at
/// its recorded relative cycle (or as soon after as the bus allows),
/// preserving the workload's pacing.
class TraceMaster final : public AhbMaster {
public:
  TraceMaster(sim::Module* parent, std::string name, AhbBus& bus,
              TransactionTrace trace);

  struct Stats {
    std::uint64_t replayed = 0;
    std::uint64_t read_mismatches = 0;  ///< replayed read != recorded value
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool finished() const { return thread_.done(); }

private:
  sim::Task body();

  TransactionTrace trace_;
  Stats stats_;
  sim::Thread thread_;
};

}  // namespace ahbp::ahb
