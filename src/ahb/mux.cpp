#include "ahb/mux.hpp"

#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

// ---------------------------------------------------------------------------
// MuxM2S

MuxM2S::MuxM2S(sim::Module* parent, std::string name, BusSignals& bus)
    : Module(parent, std::move(name)), bus_(bus) {}

void MuxM2S::attach(MasterSignals& m) {
  if (addr_proc_) throw SimError("m2s mux: attach after finalize");
  masters_.push_back(&m);
}

void MuxM2S::finalize() {
  if (addr_proc_) throw SimError("m2s mux: finalize called twice");
  if (masters_.empty()) throw SimError("m2s mux: no masters attached");

  addr_proc_ = std::make_unique<sim::Method>(this, "route_addr",
                                             [this] { route_address(); });
  addr_proc_->sensitive(bus_.hmaster.value_changed_event());
  for (MasterSignals* m : masters_) {
    addr_proc_->sensitive(m->haddr.value_changed_event())
        .sensitive(m->htrans.value_changed_event())
        .sensitive(m->hwrite.value_changed_event())
        .sensitive(m->hsize.value_changed_event())
        .sensitive(m->hburst.value_changed_event());
  }

  wdata_proc_ =
      std::make_unique<sim::Method>(this, "route_wdata", [this] { route_wdata(); });
  wdata_proc_->sensitive(bus_.hmaster_data.value_changed_event());
  for (MasterSignals* m : masters_) {
    wdata_proc_->sensitive(m->hwdata.value_changed_event());
  }
}

void MuxM2S::route_address() {
  const unsigned m = bus_.hmaster.read();
  if (m >= masters_.size()) throw SimError("m2s mux: HMASTER out of range");
  const MasterSignals& src = *masters_[m];
  bus_.haddr.write(src.haddr.read());
  bus_.htrans.write(src.htrans.read());
  bus_.hwrite.write(src.hwrite.read());
  bus_.hsize.write(src.hsize.read());
  bus_.hburst.write(src.hburst.read());
}

void MuxM2S::route_wdata() {
  const unsigned m = bus_.hmaster_data.read();
  if (m >= masters_.size()) throw SimError("m2s mux: HMASTER_DATA out of range");
  bus_.hwdata.write(masters_[m]->hwdata.read());
}

// ---------------------------------------------------------------------------
// MuxS2M

MuxS2M::MuxS2M(sim::Module* parent, std::string name, BusSignals& bus,
               sim::Signal<std::uint8_t>& data_phase_slave)
    : Module(parent, std::move(name)), bus_(bus), data_slave_(data_phase_slave) {}

void MuxS2M::attach(SlaveSignals& s) {
  if (proc_) throw SimError("s2m mux: attach after finalize");
  slaves_.push_back(&s);
}

void MuxS2M::finalize() {
  if (proc_) throw SimError("s2m mux: finalize called twice");
  if (slaves_.empty()) throw SimError("s2m mux: no slaves attached");
  proc_ = std::make_unique<sim::Method>(this, "route", [this] { route(); });
  proc_->sensitive(data_slave_.value_changed_event());
  for (SlaveSignals* s : slaves_) {
    proc_->sensitive(s->hrdata.value_changed_event())
        .sensitive(s->hreadyout.value_changed_event())
        .sensitive(s->hresp.value_changed_event());
  }
}

void MuxS2M::route() {
  const unsigned s = data_slave_.read();
  if (s == kNoSlave) {
    // No data phase in flight: bus idles ready with OKAY. HRDATA holds
    // its last value -- a real mux keeps driving its previous path, and
    // forcing zero would fabricate switching activity the hardware does
    // not have.
    bus_.hready.write(true);
    bus_.hresp.write(raw(Resp::kOkay));
    return;
  }
  if (s >= slaves_.size()) throw SimError("s2m mux: data-phase slave out of range");
  const SlaveSignals& src = *slaves_[s];
  bus_.hrdata.write(src.hrdata.read());
  bus_.hready.write(src.hreadyout.read());
  bus_.hresp.write(src.hresp.read());
}

// ---------------------------------------------------------------------------
// PipelineRegister

PipelineRegister::PipelineRegister(sim::Module* parent, std::string name,
                                   sim::Clock& clk, BusSignals& bus, Decoder& decoder)
    : Module(parent, std::move(name)),
      bus_(bus),
      decoder_(decoder),
      data_slave_(this, "data_slave", kNoSlave),
      data_active_(this, "data_active", false),
      data_write_(this, "data_write", false),
      data_addr_(this, "data_addr", 0),
      proc_(this, "latch", [this] { latch(); }) {
  proc_.sensitive(clk.posedge_event()).dont_initialize();
}

void PipelineRegister::latch() {
  // A data phase begins when the previous one completed (HREADY high at
  // this edge). IDLE/BUSY address phases produce an "empty" data phase.
  if (!bus_.hready.read()) return;
  const bool active = is_active(static_cast<Trans>(bus_.htrans.read()));
  bus_.hmaster_data.write(bus_.hmaster.read());
  data_active_.write(active);
  data_write_.write(active && bus_.hwrite.read());
  data_addr_.write(bus_.haddr.read());
  data_slave_.write(active ? decoder_.selected().read() : kNoSlave);
}

}  // namespace ahbp::ahb
