#pragma once
// Burst transfer support: address sequencing helpers and a burst-capable
// master. The paper's testbench only exercises SINGLE transfers; this
// extends the model to the full AHB burst protocol (INCR/INCR4/8/16,
// WRAP4/8/16, SEQ continuation beats and BUSY idle beats).

#include <cstdint>
#include <random>
#include <string>

#include "ahb/master.hpp"
#include "ahb/types.hpp"

namespace ahbp::ahb {

/// Address of the beat following `addr` within a burst of the given type
/// and per-beat size. INCR-type bursts increment; WRAP-type bursts wrap
/// at the (beats * bytes-per-beat) boundary, as per AMBA rev 2.0.
[[nodiscard]] std::uint32_t next_burst_addr(std::uint32_t addr, Burst burst,
                                            Size size);

/// Lowest legal start address for a wrapping burst containing `addr`
/// (wrapping bursts must not cross their wrap boundary mid-computation;
/// any aligned-to-size address inside the block is legal as a start).
[[nodiscard]] std::uint32_t wrap_boundary(std::uint32_t addr, Burst burst, Size size);

/// A master issuing whole write bursts followed by read-back bursts of
/// the same addresses, with optional BUSY beats injected mid-burst.
///
/// Tenure structure mirrors TrafficMaster (IDLE, request, non-
/// interruptible work, release) so it composes with the same arbiter
/// policies, but each unit of work is a full burst with NONSEQ/SEQ
/// sequencing instead of a single transfer.
class BurstMaster final : public AhbMaster {
public:
  struct Config {
    std::uint32_t addr_base = 0;
    std::uint32_t addr_range = 1024;  ///< bytes
    Burst burst = Burst::kIncr4;
    /// For Burst::kIncr (undefined length): beats per burst.
    unsigned incr_beats = 4;
    /// Probability (percent) of inserting a BUSY beat before a SEQ beat.
    unsigned busy_percent = 0;
    unsigned min_idle_cycles = 1;
    unsigned max_idle_cycles = 8;
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t bursts = 0;
    std::uint64_t write_beats = 0;
    std::uint64_t read_beats = 0;
    std::uint64_t busy_beats = 0;
    std::uint64_t read_mismatches = 0;
    std::uint64_t error_responses = 0;
  };

  BurstMaster(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

private:
  sim::Task body();

  Config cfg_;
  Stats stats_;
  std::mt19937_64 rng_;
  sim::Thread thread_;
};

}  // namespace ahbp::ahb
