#pragma once
// Umbrella header for ahbp::ahb -- the AMBA AHB bus model.
//
//   AhbBus                        -- fabric top (arbiter/decoder/muxes)
//   TrafficMaster, DefaultMaster,
//   ScriptedMaster                -- masters
//   MemorySlave, DefaultSlave     -- slaves
//   BusMonitor                    -- protocol checker + statistics

#include "ahb/arbiter.hpp"
#include "ahb/burst.hpp"
#include "ahb/bus.hpp"
#include "ahb/decoder.hpp"
#include "ahb/master.hpp"
#include "ahb/monitor.hpp"
#include "ahb/mux.hpp"
#include "ahb/signals.hpp"
#include "ahb/slave.hpp"
#include "ahb/trace.hpp"
#include "ahb/types.hpp"
