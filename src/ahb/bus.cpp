#include "ahb/bus.hpp"

#include "ahb/slave.hpp"
#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

AhbBus::AhbBus(sim::Module* parent, std::string name, sim::Clock& clk)
    : AhbBus(parent, std::move(name), clk, Config{}) {}

AhbBus::AhbBus(sim::Module* parent, std::string name, sim::Clock& clk, Config cfg)
    : Module(parent, std::move(name)),
      clk_(clk),
      cfg_(cfg),
      sig_(this, "sig"),
      arbiter_(this, "arbiter", clk, sig_, cfg.policy, cfg.default_master),
      decoder_(this, "decoder", sig_),
      m2s_(this, "m2s", sig_),
      pipeline_(this, "pipeline", clk, sig_, decoder_),
      s2m_(this, "s2m", sig_, pipeline_.data_phase_slave()) {}

AhbBus::~AhbBus() = default;

unsigned AhbBus::attach_master(MasterSignals& m) {
  if (finalized_) throw SimError("AhbBus: attach_master after finalize");
  const unsigned idx = arbiter_.attach(m.hbusreq);
  m2s_.attach(m);
  return idx;
}

unsigned AhbBus::attach_slave(SlaveSignals& s, AddressRange range) {
  if (finalized_) throw SimError("AhbBus: attach_slave after finalize");
  const unsigned idx = decoder_.attach(range);
  s2m_.attach(s);
  return idx;
}

void AhbBus::finalize() {
  if (finalized_) throw SimError("AhbBus: finalize called twice");
  if (m2s_.n_inputs() == 0) throw SimError("AhbBus: no masters attached");
  // The built-in default slave catches unmapped addresses; constructing
  // it self-attaches as the last slave index.
  default_slave_ = std::make_unique<DefaultSlave>(this, "default_slave", *this);
  decoder_.set_fallback(default_slave_->index());
  arbiter_.finalize();
  decoder_.finalize();
  m2s_.finalize();
  s2m_.finalize();
  finalized_ = true;
}

}  // namespace ahbp::ahb
