#pragma once
// AMBA AHB protocol types (ARM AMBA Specification rev 2.0 encodings).

#include <cstdint>
#include <iosfwd>

namespace ahbp::ahb {

/// HTRANS[1:0] transfer type.
enum class Trans : std::uint8_t {
  kIdle = 0,    ///< no transfer; slave must OKAY with zero waits
  kBusy = 1,    ///< master inserting an idle beat inside a burst
  kNonSeq = 2,  ///< first transfer of a burst / single transfer
  kSeq = 3,     ///< remaining transfers of a burst
};

/// HBURST[2:0] burst type.
enum class Burst : std::uint8_t {
  kSingle = 0,
  kIncr = 1,
  kWrap4 = 2,
  kIncr4 = 3,
  kWrap8 = 4,
  kIncr8 = 5,
  kWrap16 = 6,
  kIncr16 = 7,
};

/// HSIZE[2:0] transfer size: bytes transferred = 1 << value.
enum class Size : std::uint8_t {
  kByte = 0,
  kHalfword = 1,
  kWord = 2,
  kDword = 3,
};

/// HRESP[1:0] slave response.
enum class Resp : std::uint8_t {
  kOkay = 0,
  kError = 1,
  kRetry = 2,
  kSplit = 3,
};

/// True for NONSEQ/SEQ (a transfer that addresses a slave).
[[nodiscard]] constexpr bool is_active(Trans t) {
  return t == Trans::kNonSeq || t == Trans::kSeq;
}

/// Number of beats in a fixed-length burst (0 = undefined length: INCR
/// and SINGLE are handled by the master's own count).
[[nodiscard]] constexpr unsigned burst_beats(Burst b) {
  switch (b) {
    case Burst::kSingle: return 1;
    case Burst::kIncr: return 0;
    case Burst::kWrap4:
    case Burst::kIncr4: return 4;
    case Burst::kWrap8:
    case Burst::kIncr8: return 8;
    case Burst::kWrap16:
    case Burst::kIncr16: return 16;
  }
  return 0;
}

/// Bytes moved per beat for a given HSIZE.
[[nodiscard]] constexpr unsigned size_bytes(Size s) {
  return 1u << static_cast<unsigned>(s);
}

[[nodiscard]] const char* to_string(Trans t);
[[nodiscard]] const char* to_string(Burst b);
[[nodiscard]] const char* to_string(Resp r);
[[nodiscard]] const char* to_string(Size s);

std::ostream& operator<<(std::ostream& os, Trans t);
std::ostream& operator<<(std::ostream& os, Burst b);
std::ostream& operator<<(std::ostream& os, Resp r);
std::ostream& operator<<(std::ostream& os, Size s);

/// Raw-encoding helpers for the uint8_t signals the bus carries.
[[nodiscard]] constexpr std::uint8_t raw(Trans t) { return static_cast<std::uint8_t>(t); }
[[nodiscard]] constexpr std::uint8_t raw(Burst b) { return static_cast<std::uint8_t>(b); }
[[nodiscard]] constexpr std::uint8_t raw(Size s) { return static_cast<std::uint8_t>(s); }
[[nodiscard]] constexpr std::uint8_t raw(Resp r) { return static_cast<std::uint8_t>(r); }

}  // namespace ahbp::ahb
