#pragma once
// AhbBus: the top-level AHB fabric, owning the shared signals and the
// four sub-blocks of the paper's structural decomposition (arbiter,
// decoder, M2S mux, S2M mux) plus the pipeline register and the built-in
// default slave.

#include <cstdint>
#include <memory>
#include <string>

#include "ahb/arbiter.hpp"
#include "ahb/decoder.hpp"
#include "ahb/mux.hpp"
#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"

namespace ahbp::ahb {

class DefaultSlave;

/// The AMBA AHB bus fabric.
///
/// Wiring protocol:
///   1. construct the AhbBus with its clock;
///   2. construct masters (AhbMaster subclasses) and slaves (AhbSlave
///      subclasses) against it -- they self-attach;
///   3. call finalize() once; then run the kernel.
///
/// finalize() instantiates the internal default slave (unmapped
/// addresses), wires the decoder fallback and creates all combinational
/// and clocked processes.
class AhbBus : public sim::Module {
public:
  struct Config {
    ArbitrationPolicy policy = ArbitrationPolicy::kFixedPriority;
    unsigned default_master = 0;  ///< granted when nobody requests
  };

  AhbBus(sim::Module* parent, std::string name, sim::Clock& clk);
  AhbBus(sim::Module* parent, std::string name, sim::Clock& clk, Config cfg);
  ~AhbBus() override;

  /// @name Attachment (called by AhbMaster / AhbSlave constructors)
  ///@{
  unsigned attach_master(MasterSignals& m);
  unsigned attach_slave(SlaveSignals& s, AddressRange range);
  ///@}

  /// Completes elaboration; must be called exactly once, after all
  /// masters and slaves are constructed and before the kernel runs.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// @name Observability
  ///@{
  [[nodiscard]] BusSignals& bus() { return sig_; }
  [[nodiscard]] const BusSignals& bus() const { return sig_; }
  [[nodiscard]] sim::Clock& clock() const { return clk_; }
  [[nodiscard]] sim::Signal<bool>& hgrant(unsigned m) { return arbiter_.hgrant(m); }
  [[nodiscard]] sim::Signal<bool>& hsel(unsigned s) { return decoder_.hsel(s); }
  [[nodiscard]] unsigned n_masters() const { return m2s_.n_inputs(); }
  /// Includes the built-in default slave (the last index) after finalize().
  [[nodiscard]] unsigned n_slaves() const { return decoder_.n_slaves(); }
  ///@}

  /// @name Sub-blocks (the paper's structural decomposition)
  ///@{
  [[nodiscard]] Arbiter& arbiter() { return arbiter_; }
  [[nodiscard]] Decoder& decoder() { return decoder_; }
  [[nodiscard]] MuxM2S& m2s() { return m2s_; }
  [[nodiscard]] MuxS2M& s2m() { return s2m_; }
  [[nodiscard]] PipelineRegister& pipeline() { return pipeline_; }
  ///@}

private:
  sim::Clock& clk_;
  Config cfg_;
  BusSignals sig_;
  Arbiter arbiter_;
  Decoder decoder_;
  MuxM2S m2s_;
  PipelineRegister pipeline_;
  MuxS2M s2m_;
  std::unique_ptr<DefaultSlave> default_slave_;
  bool finalized_ = false;
};

}  // namespace ahbp::ahb
