#include "ahb/arbiter.hpp"

#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

Arbiter::Arbiter(sim::Module* parent, std::string name, sim::Clock& clk,
                 BusSignals& bus, ArbitrationPolicy policy, unsigned default_master)
    : Module(parent, std::move(name)),
      clk_(clk),
      bus_(bus),
      policy_(policy),
      default_master_(default_master) {}

unsigned Arbiter::attach(sim::Signal<bool>& hbusreq) {
  if (proc_) throw SimError("arbiter: attach after finalize");
  reqs_.push_back(&hbusreq);
  return static_cast<unsigned>(reqs_.size() - 1);
}

void Arbiter::finalize() {
  if (proc_) throw SimError("arbiter: finalize called twice");
  if (reqs_.empty()) throw SimError("arbiter: no masters attached");
  if (default_master_ >= reqs_.size()) {
    throw SimError("arbiter: default master index out of range");
  }
  for (unsigned m = 0; m < reqs_.size(); ++m) {
    grants_.push_back(std::make_unique<sim::Signal<bool>>(
        this, "hgrant" + std::to_string(m), m == default_master_));
  }
  current_ = default_master_;
  bus_.hmaster.write(static_cast<std::uint8_t>(current_));
  proc_ = std::make_unique<sim::Method>(this, "arbitrate", [this] { arbitrate(); });
  proc_->sensitive(clk_.posedge_event()).dont_initialize();
}

std::uint32_t Arbiter::request_vector() const {
  std::uint32_t v = 0;
  for (unsigned m = 0; m < reqs_.size(); ++m) {
    if (reqs_[m]->read()) v |= 1u << m;
  }
  return v;
}

void Arbiter::split(unsigned m) {
  if (m >= reqs_.size()) throw SimError("arbiter: split index out of range");
  if (!is_split(m)) {
    split_mask_ |= 1u << m;
    ++splits_;
  }
}

void Arbiter::resume(unsigned m) {
  if (m >= reqs_.size()) throw SimError("arbiter: resume index out of range");
  split_mask_ &= ~(1u << m);
}

unsigned Arbiter::pick_next() const {
  // Split-masked masters never win arbitration; the default master is
  // the fallback even while masked (it never drives transfers, so a mask
  // on it cannot occur in practice).
  switch (policy_) {
    case ArbitrationPolicy::kFixedPriority:
      for (unsigned m = 0; m < reqs_.size(); ++m) {
        if (reqs_[m]->read() && !is_split(m)) return m;
      }
      return default_master_;
    case ArbitrationPolicy::kRoundRobin:
      for (unsigned off = 1; off <= reqs_.size(); ++off) {
        const unsigned m = (current_ + off) % static_cast<unsigned>(reqs_.size());
        if (reqs_[m]->read() && !is_split(m)) return m;
      }
      return default_master_;
  }
  return default_master_;
}

void Arbiter::arbitrate() {
  // Handover only when the data path is quiescent: bus ready and the
  // current owner driving IDLE (paper's testbench restriction). The owner
  // also keeps the bus as long as it still requests it -- this makes
  // WRITE-READ sequences non-interruptible and closes the race where a
  // grant moves in the same cycle the new owner launches its first
  // address phase.
  //
  // A split-masked owner is the exception: its request must not hold the
  // bus (that is the point of the mask), so the owner-keeps-bus rule is
  // bypassed and the grant moves at the first ready+IDLE cycle after the
  // SPLIT response completes.
  if (!bus_.hready.read()) return;
  if (static_cast<Trans>(bus_.htrans.read()) != Trans::kIdle) return;
  if (reqs_[current_]->read() && !is_split(current_)) return;
  const unsigned next = pick_next();
  if (next == current_) return;
  grants_[current_]->write(false);
  grants_[next]->write(true);
  bus_.hmaster.write(static_cast<std::uint8_t>(next));
  current_ = next;
  ++handovers_;
}

}  // namespace ahbp::ahb
