#pragma once
// Bus monitor: AHB protocol checker and cycle-level statistics.
//
// Passive observer -- attach it to a finalized bus and it samples the
// shared signals once per clock edge (the values settled in the cycle
// that just ended), verifying protocol invariants and counting activity.

#include <cstdint>
#include <string>
#include <vector>

#include "ahb/bus.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"
#include "telemetry/metrics.hpp"

namespace ahbp::ahb {

/// Protocol checker + statistics counter.
class BusMonitor : public sim::Module {
public:
  struct Config {
    /// Throw sim::SimError on the first violation (true) or just record
    /// it (false).
    bool fatal = true;
    /// Optional metrics sink (not owned; must outlive the monitor).
    /// Violations count into `ahb.monitor.violations`.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t transfers = 0;  ///< completed data phases
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wait_cycles = 0;   ///< data phase stalled
    std::uint64_t idle_cycles = 0;   ///< address phase IDLE
    std::uint64_t handovers = 0;     ///< HMASTER changes
    std::uint64_t error_responses = 0;
    std::uint64_t retry_responses = 0;  ///< completed RETRY responses
    std::uint64_t split_responses = 0;  ///< completed SPLIT responses
  };

  BusMonitor(sim::Module* parent, std::string name, AhbBus& bus);
  BusMonitor(sim::Module* parent, std::string name, AhbBus& bus, Config cfg);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }

private:
  void on_clock();
  /// Records `what` prefixed with where it happened (cycle, sim time,
  /// address-phase master, data-phase slave when one is selected).
  void violation(const std::string& what);

  AhbBus& bus_;
  Config cfg_;
  Stats stats_;
  std::vector<std::string> violations_;
  telemetry::Counter* c_violations_ = nullptr;

  /// Snapshot of the previous cycle's settled values.
  struct Snapshot {
    bool valid = false;
    std::uint32_t haddr = 0;
    Trans htrans = Trans::kIdle;
    bool hwrite = false;
    bool hready = true;
    std::uint8_t hmaster = 0;
    Burst hburst = Burst::kSingle;
    Size hsize = Size::kWord;
    Resp hresp = Resp::kOkay;
  };
  Snapshot prev_;

  sim::Method proc_;
};

}  // namespace ahbp::ahb
