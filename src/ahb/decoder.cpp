#include "ahb/decoder.hpp"

#include "sim/report.hpp"

namespace ahbp::ahb {

using sim::SimError;

Decoder::Decoder(sim::Module* parent, std::string name, BusSignals& bus)
    : Module(parent, std::move(name)), bus_(bus), selected_(this, "selected", kNoSlave) {}

unsigned Decoder::attach(AddressRange range) {
  if (proc_) throw SimError("decoder: attach after finalize");
  // size == 0 is allowed: such a slave is reachable only as the fallback
  // (the bus's built-in default slave uses this).
  for (const AddressRange& r : ranges_) {
    if (r.size != 0 && r.overlaps(range)) {
      throw SimError("decoder: overlapping address ranges");
    }
  }
  ranges_.push_back(range);
  return static_cast<unsigned>(ranges_.size() - 1);
}

void Decoder::set_fallback(unsigned slave_index) {
  if (slave_index >= ranges_.size()) throw SimError("decoder: bad fallback index");
  fallback_ = slave_index;
}

void Decoder::finalize() {
  if (proc_) throw SimError("decoder: finalize called twice");
  if (ranges_.empty()) throw SimError("decoder: no slaves attached");
  if (fallback_ == kNoSlave) throw SimError("decoder: fallback slave not set");
  for (unsigned s = 0; s < ranges_.size(); ++s) {
    hsel_.push_back(
        std::make_unique<sim::Signal<bool>>(this, "hsel" + std::to_string(s), false));
  }
  proc_ = std::make_unique<sim::Method>(this, "decode", [this] { decode(); });
  proc_->sensitive(bus_.haddr.value_changed_event());
  // Runs once at initialization too, establishing the reset decode.
}

void Decoder::decode() {
  const std::uint32_t addr = bus_.haddr.read();
  unsigned sel = fallback_;
  for (unsigned s = 0; s < ranges_.size(); ++s) {
    if (ranges_[s].size != 0 && ranges_[s].contains(addr)) {
      sel = s;
      break;
    }
  }
  for (unsigned s = 0; s < ranges_.size(); ++s) {
    hsel_[s]->write(s == sel);
  }
  selected_.write(static_cast<std::uint8_t>(sel));
}

}  // namespace ahbp::ahb
