#pragma once
// AHB arbiter: grants bus ownership, drives HGRANTx and HMASTER.

#include <cstdint>
#include <memory>
#include <vector>

#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

/// Arbitration policy for the next bus owner.
enum class ArbitrationPolicy : std::uint8_t {
  kFixedPriority,  ///< lowest master index wins (paper's scheme)
  kRoundRobin,     ///< rotate starting after the last owner
};

/// The bus arbiter.
///
/// Re-arbitration happens at a clock edge when the bus is ready and the
/// current owner is driving IDLE -- the paper's simplification ("a bus
/// handover can occur only in this [idle] period"), which also keeps
/// WRITE-READ sequences non-interruptible. When no master requests, the
/// default master is granted.
///
/// Owned and wired by AhbBus; exposed for inspection and power probing.
class Arbiter : public sim::Module {
public:
  Arbiter(sim::Module* parent, std::string name, sim::Clock& clk, BusSignals& bus,
          ArbitrationPolicy policy, unsigned default_master);

  /// Registers one master's request line; returns the master index.
  unsigned attach(sim::Signal<bool>& hbusreq);

  /// Creates the grant signals and the arbitration process. Call once,
  /// after all masters are attached.
  void finalize();

  [[nodiscard]] sim::Signal<bool>& hgrant(unsigned m) { return *grants_.at(m); }
  [[nodiscard]] unsigned n_masters() const { return static_cast<unsigned>(reqs_.size()); }
  [[nodiscard]] ArbitrationPolicy policy() const { return policy_; }

  /// Number of grant changes (bus handovers) observed so far.
  [[nodiscard]] std::uint64_t handover_count() const { return handovers_; }

  /// Current HBUSREQ lines packed as a bit vector (bit m = master m).
  [[nodiscard]] std::uint32_t request_vector() const;

  /// @name SPLIT support (HSPLITx-style master masking)
  ///@{
  /// Masks master `m`: its requests are ignored by arbitration until
  /// resume(m). Called by a slave in the cycle it issues a SPLIT
  /// response; the current owner being masked forces a handover at the
  /// next arbitration point even though it still requests the bus.
  void split(unsigned m);
  /// Unmasks master `m` (the slave's HSPLITx resume signal); the master
  /// competes for the bus again from the next arbitration cycle.
  void resume(unsigned m);
  /// Currently masked masters packed as a bit vector (bit m = master m).
  [[nodiscard]] std::uint32_t split_mask() const { return split_mask_; }
  /// Total SPLIT masks ever applied.
  [[nodiscard]] std::uint64_t split_count() const { return splits_; }
  ///@}

private:
  void arbitrate();
  [[nodiscard]] unsigned pick_next() const;
  [[nodiscard]] bool is_split(unsigned m) const {
    return (split_mask_ >> m) & 1u;
  }

  sim::Clock& clk_;
  BusSignals& bus_;
  ArbitrationPolicy policy_;
  unsigned default_master_;
  unsigned current_ = 0;
  std::uint64_t handovers_ = 0;
  std::uint32_t split_mask_ = 0;
  std::uint64_t splits_ = 0;
  std::vector<sim::Signal<bool>*> reqs_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> grants_;
  std::unique_ptr<sim::Method> proc_;
};

}  // namespace ahbp::ahb
