#pragma once
// AHB arbiter: grants bus ownership, drives HGRANTx and HMASTER.

#include <cstdint>
#include <memory>
#include <vector>

#include "ahb/signals.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/process.hpp"

namespace ahbp::ahb {

/// Arbitration policy for the next bus owner.
enum class ArbitrationPolicy : std::uint8_t {
  kFixedPriority,  ///< lowest master index wins (paper's scheme)
  kRoundRobin,     ///< rotate starting after the last owner
};

/// The bus arbiter.
///
/// Re-arbitration happens at a clock edge when the bus is ready and the
/// current owner is driving IDLE -- the paper's simplification ("a bus
/// handover can occur only in this [idle] period"), which also keeps
/// WRITE-READ sequences non-interruptible. When no master requests, the
/// default master is granted.
///
/// Owned and wired by AhbBus; exposed for inspection and power probing.
class Arbiter : public sim::Module {
public:
  Arbiter(sim::Module* parent, std::string name, sim::Clock& clk, BusSignals& bus,
          ArbitrationPolicy policy, unsigned default_master);

  /// Registers one master's request line; returns the master index.
  unsigned attach(sim::Signal<bool>& hbusreq);

  /// Creates the grant signals and the arbitration process. Call once,
  /// after all masters are attached.
  void finalize();

  [[nodiscard]] sim::Signal<bool>& hgrant(unsigned m) { return *grants_.at(m); }
  [[nodiscard]] unsigned n_masters() const { return static_cast<unsigned>(reqs_.size()); }
  [[nodiscard]] ArbitrationPolicy policy() const { return policy_; }

  /// Number of grant changes (bus handovers) observed so far.
  [[nodiscard]] std::uint64_t handover_count() const { return handovers_; }

  /// Current HBUSREQ lines packed as a bit vector (bit m = master m).
  [[nodiscard]] std::uint32_t request_vector() const;

private:
  void arbitrate();
  [[nodiscard]] unsigned pick_next() const;

  sim::Clock& clk_;
  BusSignals& bus_;
  ArbitrationPolicy policy_;
  unsigned default_master_;
  unsigned current_ = 0;
  std::uint64_t handovers_ = 0;
  std::vector<sim::Signal<bool>*> reqs_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> grants_;
  std::unique_ptr<sim::Method> proc_;
};

}  // namespace ahbp::ahb
