#pragma once
// AHB-to-APB bridge: the AMBA architecture's standard way of hanging
// low-bandwidth peripherals off the high-performance bus (paper Sec. 5:
// "Also located on the high-performance bus is a bridge to the lower
// bandwidth APB, where most of the system peripheral devices are
// located").
//
// The bridge is an AHB slave; each accepted AHB transfer is converted
// into one APB access (SETUP + ENABLE), stalling HREADY for the four
// cycles the conversion takes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ahb/decoder.hpp"
#include "ahb/slave.hpp"
#include "apb/signals.hpp"
#include "sim/process.hpp"

namespace ahbp::apb {

class ApbSlave;

/// The APB bus master + decoder + read-data mux, packaged as an AHB
/// slave. Construct APB peripherals (ApbSlave subclasses) against it,
/// then call finalize() (after the AHB bus's own finalize()).
class AhbToApbBridge final : public ahb::AhbSlave {
public:
  struct Config {
    std::uint32_t base = 0;  ///< AHB window mapped onto the APB space
    std::uint32_t size = 4096;
  };

  struct Stats {
    std::uint64_t apb_reads = 0;
    std::uint64_t apb_writes = 0;
    std::uint64_t decode_errors = 0;  ///< AHB ERROR for unmapped APB addresses
  };

  AhbToApbBridge(sim::Module* parent, std::string name, ahb::AhbBus& bus,
                 Config cfg);

  /// @name APB-side attachment (called by ApbSlave constructors)
  ///@{
  unsigned attach(ApbSlaveSignals& s, std::uint32_t base, std::uint32_t size);
  ///@}

  /// Completes APB elaboration (creates PSEL lines). Call once after all
  /// peripherals exist.
  void finalize();

  /// The bus clock (shared by the AHB and APB sides; APB2 has no
  /// separate PCLK domain in this model).
  using ahb::AhbSlave::clock;

  /// @name Observability (power probes, tests)
  ///@{
  [[nodiscard]] ApbMasterSignals& apb() { return apb_sig_; }
  [[nodiscard]] sim::Signal<bool>& psel(unsigned s) { return *psel_.at(s); }
  [[nodiscard]] ApbSlaveSignals& peripheral(unsigned s) { return *peripherals_.at(s); }
  [[nodiscard]] unsigned n_peripherals() const {
    return static_cast<unsigned>(ranges_.size());
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  ///@}

private:
  void on_clock();
  /// APB-relative decode; returns peripheral index or UINT_MAX.
  [[nodiscard]] unsigned decode(std::uint32_t apb_addr) const;

  Config cfg_;
  Stats stats_;
  ApbMasterSignals apb_sig_;
  std::vector<ahb::AddressRange> ranges_;
  std::vector<ApbSlaveSignals*> peripherals_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> psel_;
  bool finalized_ = false;

  enum class Phase {
    kIdle,
    kSampleWdata,  ///< wait one cycle for the AHB data phase to settle
    kSetup,        ///< APB SETUP cycle in progress
    kEnable,       ///< APB ENABLE cycle in progress
    kComplete,     ///< HREADY raised; AHB data phase finishing
    kError1,       ///< first cycle of an AHB ERROR response (HREADY low)
    kError2,       ///< second cycle of an AHB ERROR response (HREADY high)
  } phase_ = Phase::kIdle;

  bool op_write_ = false;
  std::uint32_t op_addr_ = 0;  ///< APB-relative address
  unsigned op_sel_ = 0;

  sim::Method proc_;
};

}  // namespace ahbp::apb
