#include "apb/peripherals.hpp"

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::apb {

using sim::SimError;

// ---------------------------------------------------------------------------
// ApbSlave

ApbSlave::ApbSlave(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
                   std::uint32_t base, std::uint32_t size)
    : Module(parent, std::move(name)),
      bridge_(bridge),
      sig_(this, "out"),
      base_(base),
      proc_(this, "clocked", [this] { on_clock(); }) {
  index_ = bridge_.attach(sig_, base, size);
  proc_.sensitive(clock().posedge_event()).dont_initialize();
}

sim::Clock& ApbSlave::clock() const { return bridge_.clock(); }

void ApbSlave::on_clock() {
  const ApbMasterSignals& m = bridge_.apb();
  const bool sel = bridge_.psel(index_).read();
  const bool enable = m.penable.read();

  if (sel && !enable) {
    // SETUP cycle just started (PSEL rose last cycle): present read data
    // so it is stable through the ENABLE cycle.
    if (!m.pwrite.read()) {
      sig_.prdata.write(read_reg(m.paddr.read() - base_));
    }
    enable_seen_ = false;
  } else if (sel && enable && !enable_seen_) {
    // End of the ENABLE cycle: commit a write exactly once.
    if (m.pwrite.read()) {
      write_reg(m.paddr.read() - base_, m.pwdata.read());
    }
    enable_seen_ = true;
  }
}

// ---------------------------------------------------------------------------
// ApbRegisterFile

ApbRegisterFile::ApbRegisterFile(sim::Module* parent, std::string name,
                                 AhbToApbBridge& bridge, std::uint32_t base,
                                 std::uint32_t size)
    : ApbSlave(parent, std::move(name), bridge, base, size), regs_(size / 4, 0) {
  if (size == 0 || size % 4 != 0) {
    throw SimError("ApbRegisterFile: size must be a positive multiple of 4");
  }
}

std::uint32_t ApbRegisterFile::peek(std::uint32_t offset) const {
  return regs_.at(offset / 4);
}

void ApbRegisterFile::poke(std::uint32_t offset, std::uint32_t value) {
  regs_.at(offset / 4) = value;
}

std::uint32_t ApbRegisterFile::read_reg(std::uint32_t offset) {
  return offset / 4 < regs_.size() ? regs_[offset / 4] : 0;
}

void ApbRegisterFile::write_reg(std::uint32_t offset, std::uint32_t value) {
  if (offset / 4 < regs_.size()) regs_[offset / 4] = value;
}

// ---------------------------------------------------------------------------
// ApbTimer

ApbTimer::ApbTimer(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
                   std::uint32_t base)
    : ApbSlave(parent, std::move(name), bridge, base, 0x10),
      tick_proc_(this, "tick", [this] { tick(); }) {
  tick_proc_.sensitive(clock().posedge_event()).dont_initialize();
}

void ApbTimer::tick() {
  if (!enabled_) return;
  ++count_;
  if (count_ == compare_) matched_ = true;
}

std::uint32_t ApbTimer::read_reg(std::uint32_t offset) {
  switch (offset) {
    case kCtrl: return enabled_ ? 1u : 0u;
    case kCount: return count_;
    case kCompare: return compare_;
    case kStatus: return matched_ ? 1u : 0u;
    default: return 0;
  }
}

void ApbTimer::write_reg(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kCtrl:
      enabled_ = (value & 1u) != 0;
      if ((value & 2u) != 0) count_ = 0;
      break;
    case kCompare:
      compare_ = value;
      break;
    case kStatus:
      if ((value & 1u) != 0) matched_ = false;
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// ApbUartTx

ApbUartTx::ApbUartTx(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
                     std::uint32_t base)
    : ApbSlave(parent, std::move(name), bridge, base, 0x10),
      tx_(this, "tx", true),  // idle high
      shift_proc_(this, "shift", [this] { shift(); }) {
  shift_proc_.sensitive(clock().posedge_event()).dont_initialize();
}

void ApbUartTx::shift() {
  // Divider cadence: bits change only on bit boundaries, so the stop bit
  // keeps its full width even with a frame queued behind it.
  if (div_count_ != 0) {
    if (++div_count_ >= divider_) div_count_ = 0;
    return;
  }
  if (bits_left_ == 0) {
    if (fifo_.empty()) return;  // line idles high between frames
    const std::uint8_t byte = fifo_.front();
    fifo_.pop_front();
    // LSB-first frame, shifted out from bit 0: start(0), data, stop(1).
    shifter_ = static_cast<std::uint16_t>((1u << 9) | (byte << 1));
    bits_left_ = 10;
  }
  tx_.write((shifter_ & 1u) != 0);
  shifter_ >>= 1;
  --bits_left_;
  if (bits_left_ == 0) ++bytes_sent_;
  if (divider_ > 1) div_count_ = 1;
}

std::uint32_t ApbUartTx::read_reg(std::uint32_t offset) {
  switch (offset) {
    case kData: return static_cast<std::uint32_t>(fifo_.size());
    case kStatus:
      return (busy() || !fifo_.empty() ? 1u : 0u) |
             (fifo_.size() >= kFifoDepth ? 2u : 0u);
    case kDiv: return divider_;
    default: return 0;
  }
}

void ApbUartTx::write_reg(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kData:
      if (fifo_.size() < kFifoDepth) {
        fifo_.push_back(static_cast<std::uint8_t>(value));
      }
      break;
    case kDiv:
      divider_ = value == 0 ? 1 : value;
      break;
    default:
      break;
  }
}

}  // namespace ahbp::apb
