#pragma once
// APB peripherals: the slave base class plus two reference devices (a
// register file and a timer) of the kind that populate the peripheral
// bus in the paper's AMBA system picture.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "apb/bridge.hpp"
#include "sim/process.hpp"

namespace ahbp::apb {

/// Base class for APB peripherals.
///
/// The base owns the PRDATA bundle and the attachment to the bridge, and
/// runs the APB slave-side protocol: at the SETUP edge it asks the
/// subclass for read data; at the end of the ENABLE cycle it delivers a
/// write. Subclasses implement the two register hooks.
class ApbSlave : public sim::Module {
public:
  ApbSlave(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
           std::uint32_t base, std::uint32_t size);

  [[nodiscard]] unsigned index() const { return index_; }

protected:
  /// Peripheral-relative register read (called during SETUP).
  [[nodiscard]] virtual std::uint32_t read_reg(std::uint32_t offset) = 0;
  /// Peripheral-relative register write (committed at ENABLE end).
  virtual void write_reg(std::uint32_t offset, std::uint32_t value) = 0;

  /// The bus clock, for subclasses with their own sequential logic.
  [[nodiscard]] sim::Clock& clock() const;

  AhbToApbBridge& bridge_;
  ApbSlaveSignals sig_;
  unsigned index_;
  std::uint32_t base_;

private:
  void on_clock();

  bool enable_seen_ = false;
  sim::Method proc_;
};

/// A plain register file (word-addressed scratch registers).
class ApbRegisterFile final : public ApbSlave {
public:
  ApbRegisterFile(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
                  std::uint32_t base, std::uint32_t size);

  /// Backdoor access for tests.
  [[nodiscard]] std::uint32_t peek(std::uint32_t offset) const;
  void poke(std::uint32_t offset, std::uint32_t value);

protected:
  std::uint32_t read_reg(std::uint32_t offset) override;
  void write_reg(std::uint32_t offset, std::uint32_t value) override;

private:
  std::vector<std::uint32_t> regs_;
};

/// A timer peripheral:
///   0x0 CTRL   bit0 = enable, bit1 = clear (write-one-to-clear)
///   0x4 COUNT  free-running cycle counter (read-only)
///   0x8 COMPARE  match value; MATCHED flag latches when COUNT == COMPARE
///   0xC STATUS bit0 = matched (write-one-to-clear)
class ApbTimer final : public ApbSlave {
public:
  static constexpr std::uint32_t kCtrl = 0x0;
  static constexpr std::uint32_t kCount = 0x4;
  static constexpr std::uint32_t kCompare = 0x8;
  static constexpr std::uint32_t kStatus = 0xC;

  ApbTimer(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
           std::uint32_t base);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] bool matched() const { return matched_; }

protected:
  std::uint32_t read_reg(std::uint32_t offset) override;
  void write_reg(std::uint32_t offset, std::uint32_t value) override;

private:
  void tick();

  bool enabled_ = false;
  bool matched_ = false;
  std::uint32_t count_ = 0;
  std::uint32_t compare_ = 0;
  sim::Method tick_proc_;
};

/// A UART transmitter:
///   0x0 DATA    write = enqueue one byte (FIFO depth 8); read = FIFO level
///   0x4 STATUS  bit0 = busy (shifting), bit1 = FIFO full
///   0x8 DIV     clock divider (bus clocks per bit, >= 1)
/// Serial format: 1 start bit (low), 8 data bits LSB first, 1 stop bit
/// (high). The TX line idles high and is observable as a Signal<bool>
/// (trace it into a VCD to see real frames).
class ApbUartTx final : public ApbSlave {
public:
  static constexpr std::uint32_t kData = 0x0;
  static constexpr std::uint32_t kStatus = 0x4;
  static constexpr std::uint32_t kDiv = 0x8;
  static constexpr std::size_t kFifoDepth = 8;

  ApbUartTx(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
            std::uint32_t base);

  /// The serial output line.
  [[nodiscard]] sim::Signal<bool>& tx() { return tx_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] bool busy() const { return bits_left_ != 0; }
  [[nodiscard]] std::size_t fifo_level() const { return fifo_.size(); }

protected:
  std::uint32_t read_reg(std::uint32_t offset) override;
  void write_reg(std::uint32_t offset, std::uint32_t value) override;

private:
  void shift();

  sim::Signal<bool> tx_;
  std::deque<std::uint8_t> fifo_;
  std::uint32_t divider_ = 8;
  std::uint32_t div_count_ = 0;
  std::uint16_t shifter_ = 0;  ///< start + data + stop bits
  unsigned bits_left_ = 0;
  std::uint64_t bytes_sent_ = 0;
  sim::Method shift_proc_;
};

}  // namespace ahbp::apb
