#include "apb/power.hpp"

#include "sim/report.hpp"

namespace ahbp::apb {

ApbPowerModel::ApbPowerModel(unsigned n_peripherals, gate::Technology tech)
    : tech_(tech) {
  if (n_peripherals == 0) {
    throw sim::SimError("ApbPowerModel: need at least one peripheral");
  }
  // Each data/address wire drives one input pin per peripheral plus the
  // route itself (modeled as c_out-class load).
  c_wire_ = tech.c_out + n_peripherals * tech.c_in;
  // Strobes fan out the same way.
  c_strobe_ = tech.c_out + n_peripherals * tech.c_in;
}

double ApbPowerModel::energy(unsigned hd_data, unsigned hd_strobes) const {
  const double vdd2_2 = tech_.vdd * tech_.vdd / 2.0;
  return vdd2_2 * (c_wire_ * hd_data + c_strobe_ * hd_strobes);
}

ApbPowerMonitor::ApbPowerMonitor(sim::Module* parent, std::string name,
                                 AhbToApbBridge& bridge)
    : ApbPowerMonitor(parent, std::move(name), bridge,
                      gate::Technology::default_2003()) {}

ApbPowerMonitor::ApbPowerMonitor(sim::Module* parent, std::string name,
                                 AhbToApbBridge& bridge, gate::Technology tech)
    : Module(parent, std::move(name)),
      bridge_(bridge),
      model_(bridge.n_peripherals() == 0 ? 1 : bridge.n_peripherals(), tech),
      proc_(this, "sample", [this] { on_cycle(); }) {
  proc_.sensitive(bridge.clock().negedge_event()).dont_initialize();
  bind_channels();
}

void ApbPowerMonitor::bind_channels() {
  ch_paddr_ = &activity_.channel("paddr");
  ch_pwdata_ = &activity_.channel("pwdata");
  ch_strobes_ = &activity_.channel("strobes");
  ch_prdata_.clear();
  ch_prdata_.reserve(bridge_.n_peripherals());
  for (unsigned s = 0; s < bridge_.n_peripherals(); ++s) {
    ch_prdata_.push_back(&activity_.channel("prdata" + std::to_string(s)));
  }
}

void ApbPowerMonitor::on_cycle() {
  ++cycles_;
  const ApbMasterSignals& m = bridge_.apb();
  const unsigned hd_addr = ch_paddr_->store_activity(m.paddr.read());
  const unsigned hd_wdata = ch_pwdata_->store_activity(m.pwdata.read());
  // PRDATA switching, per peripheral driver.
  unsigned hd_rdata = 0;
  for (unsigned s = 0; s < bridge_.n_peripherals(); ++s) {
    hd_rdata += ch_prdata_[s]->store_activity(bridge_.peripheral(s).prdata.read());
  }
  // Strobe bundle: PENABLE, PWRITE and the PSEL lines.
  std::uint64_t strobes = m.penable.read() ? 1u : 0u;
  strobes |= m.pwrite.read() ? 2u : 0u;
  for (unsigned s = 0; s < bridge_.n_peripherals(); ++s) {
    strobes |= (bridge_.psel(s).read() ? 1ull : 0ull) << (2 + s);
  }
  const unsigned hd_strobes = ch_strobes_->store_activity(strobes);
  energy_ += model_.energy(hd_addr + hd_wdata + hd_rdata, hd_strobes);
}

}  // namespace ahbp::apb
