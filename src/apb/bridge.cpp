#include "apb/bridge.hpp"

#include "ahb/bus.hpp"
#include "sim/report.hpp"

namespace ahbp::apb {

using sim::SimError;

AhbToApbBridge::AhbToApbBridge(sim::Module* parent, std::string name,
                               ahb::AhbBus& bus, Config cfg)
    : AhbSlave(parent, std::move(name), bus, cfg.base, cfg.size),
      cfg_(cfg),
      apb_sig_(this, "apb"),
      proc_(this, "clocked", [this] { on_clock(); }) {
  if (cfg_.size == 0 || cfg_.size % 4 != 0) {
    throw SimError("AhbToApbBridge: size must be a positive multiple of 4");
  }
  proc_.sensitive(clock().posedge_event()).dont_initialize();
}

unsigned AhbToApbBridge::attach(ApbSlaveSignals& s, std::uint32_t base,
                                std::uint32_t size) {
  if (finalized_) throw SimError("bridge: attach after finalize");
  if (size == 0) throw SimError("bridge: empty peripheral range");
  const ahb::AddressRange range{base, size};
  if (base + size > cfg_.size) {
    throw SimError("bridge: peripheral range outside the APB window");
  }
  for (const auto& r : ranges_) {
    if (r.overlaps(range)) throw SimError("bridge: overlapping peripheral ranges");
  }
  ranges_.push_back(range);
  peripherals_.push_back(&s);
  return static_cast<unsigned>(ranges_.size() - 1);
}

void AhbToApbBridge::finalize() {
  if (finalized_) throw SimError("bridge: finalize called twice");
  for (unsigned s = 0; s < ranges_.size(); ++s) {
    psel_.push_back(
        std::make_unique<sim::Signal<bool>>(this, "psel" + std::to_string(s), false));
  }
  finalized_ = true;
}

unsigned AhbToApbBridge::decode(std::uint32_t apb_addr) const {
  for (unsigned s = 0; s < ranges_.size(); ++s) {
    if (ranges_[s].contains(apb_addr)) return s;
  }
  return UINT32_MAX;
}

void AhbToApbBridge::on_clock() {
  if (!finalized_) throw SimError("bridge: ran without finalize()");
  ahb::BusSignals& bus = bus_signals();

  switch (phase_) {
    case Phase::kIdle:
      break;

    case Phase::kSampleWdata:
      // The AHB data phase settled during the last cycle: write data is
      // now valid. Launch the APB SETUP cycle.
      apb_sig_.paddr.write(op_addr_);
      apb_sig_.pwrite.write(op_write_);
      if (op_write_) apb_sig_.pwdata.write(bus.hwdata.read());
      psel_[op_sel_]->write(true);
      apb_sig_.penable.write(false);
      phase_ = Phase::kSetup;
      return;

    case Phase::kSetup:
      apb_sig_.penable.write(true);
      phase_ = Phase::kEnable;
      return;

    case Phase::kEnable:
      // The ENABLE cycle just completed: the peripheral committed a
      // write / its read data settled. Finish the AHB side.
      if (!op_write_) {
        sig_.hrdata.write(peripherals_[op_sel_]->prdata.read());
        ++stats_.apb_reads;
      } else {
        ++stats_.apb_writes;
      }
      psel_[op_sel_]->write(false);
      apb_sig_.penable.write(false);
      sig_.hreadyout.write(true);
      phase_ = Phase::kComplete;
      return;

    case Phase::kComplete:
      // AHB data phase completed at this edge; fall through to accept a
      // pipelined next transfer.
      phase_ = Phase::kIdle;
      break;

    case Phase::kError1:
      sig_.hreadyout.write(true);
      phase_ = Phase::kError2;
      return;

    case Phase::kError2:
      sig_.hresp.write(ahb::raw(ahb::Resp::kOkay));
      phase_ = Phase::kIdle;
      break;
  }

  // Accept a new AHB address phase.
  const bool accept = selected() &&
                      is_active(static_cast<ahb::Trans>(bus.htrans.read())) &&
                      bus.hready.read();
  if (!accept) return;

  op_write_ = bus.hwrite.read();
  op_addr_ = bus.haddr.read() - cfg_.base;
  op_sel_ = decode(op_addr_);
  if (op_sel_ == UINT32_MAX) {
    // Unmapped peripheral space: the protocol's two-cycle AHB ERROR.
    ++stats_.decode_errors;
    sig_.hresp.write(ahb::raw(ahb::Resp::kError));
    sig_.hreadyout.write(false);
    phase_ = Phase::kError1;
    return;
  }
  sig_.hreadyout.write(false);
  phase_ = Phase::kSampleWdata;
}

}  // namespace ahbp::apb
