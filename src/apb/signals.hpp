#pragma once
// APB (Advanced Peripheral Bus, AMBA rev 2.0) signal bundles.
//
// APB2 is the low-bandwidth peripheral bus of the AMBA architecture: one
// bus master (the AHB-to-APB bridge), strobed two-cycle accesses
// (SETUP: PSEL & !PENABLE, ENABLE: PSEL & PENABLE), no wait states.

#include <cstdint>
#include <string>

#include "sim/module.hpp"
#include "sim/signal.hpp"

namespace ahbp::apb {

/// Signals driven by the APB master (the bridge).
struct ApbMasterSignals {
  ApbMasterSignals(sim::Module* parent, const std::string& prefix)
      : paddr(parent, prefix + ".paddr", 0),
        pwrite(parent, prefix + ".pwrite", false),
        penable(parent, prefix + ".penable", false),
        pwdata(parent, prefix + ".pwdata", 0) {}

  sim::Signal<std::uint32_t> paddr;
  sim::Signal<bool> pwrite;
  sim::Signal<bool> penable;
  sim::Signal<std::uint32_t> pwdata;
};

/// Signals driven by one APB slave.
struct ApbSlaveSignals {
  ApbSlaveSignals(sim::Module* parent, const std::string& prefix)
      : prdata(parent, prefix + ".prdata", 0) {}

  sim::Signal<std::uint32_t> prdata;
};

}  // namespace ahbp::apb
