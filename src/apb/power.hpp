#pragma once
// Power monitoring for the APB side -- the methodology of the paper
// applied to a second bus typology ("more complete and complex bus
// models simply require a longer period for the characterization",
// Sec. 5). The APB is electrically simple: a strobed wire bundle with
// one driver per direction, so its macromodel is a per-bit wire-load
// model over the Hamming distances of PADDR/PWDATA/PRDATA plus a strobe
// term for PSEL/PENABLE.

#include <cstdint>
#include <vector>

#include "apb/bridge.hpp"
#include "gate/tech.hpp"
#include "power/activity.hpp"
#include "sim/process.hpp"

namespace ahbp::apb {

/// Energy macromodel of the APB wire bundle.
///
///   E_cycle = VDD^2/2 * ( C_wire * (HD_addr + HD_wdata + HD_rdata)
///                         + C_strobe * HD_strobes )
///
/// C_wire is the per-bit load of the peripheral bus (higher than an
/// on-core node: long routes, one input per peripheral); C_strobe loads
/// the PSEL/PENABLE fan-out.
class ApbPowerModel {
public:
  ApbPowerModel(unsigned n_peripherals, gate::Technology tech);

  [[nodiscard]] double energy(unsigned hd_data, unsigned hd_strobes) const;

  [[nodiscard]] double wire_capacitance() const { return c_wire_; }
  [[nodiscard]] double strobe_capacitance() const { return c_strobe_; }

private:
  gate::Technology tech_;
  double c_wire_;
  double c_strobe_;
};

/// Per-cycle APB power monitor (local-style integration, like the AHB
/// estimator): samples the bridge's APB signals at the falling edge and
/// accumulates wire-switching energy.
class ApbPowerMonitor : public sim::Module {
public:
  ApbPowerMonitor(sim::Module* parent, std::string name, AhbToApbBridge& bridge);
  ApbPowerMonitor(sim::Module* parent, std::string name, AhbToApbBridge& bridge,
                  gate::Technology tech);

  [[nodiscard]] double total_energy() const { return energy_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  /// The instrumentation-side activity storage.
  [[nodiscard]] const power::Activity& activity() const { return activity_; }

private:
  void on_cycle();
  void bind_channels();

  AhbToApbBridge& bridge_;
  ApbPowerModel model_;
  power::Activity activity_;
  /// Hot-path cache: channel handles resolved once at construction
  /// (pointer-stable in Activity's unordered_map), so on_cycle() never
  /// builds a channel-name string. Mirrors PowerFsm::bind_channels().
  power::ActivityChannel* ch_paddr_ = nullptr;
  power::ActivityChannel* ch_pwdata_ = nullptr;
  power::ActivityChannel* ch_strobes_ = nullptr;
  std::vector<power::ActivityChannel*> ch_prdata_;
  double energy_ = 0.0;
  std::uint64_t cycles_ = 0;
  sim::Method proc_;
};

}  // namespace ahbp::apb
