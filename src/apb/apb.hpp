#pragma once
// Umbrella header for ahbp::apb -- the AMBA APB peripheral bus:
// AHB-to-APB bridge, peripherals (register file, timer) and the power
// methodology extended to the second bus typology.

#include "apb/bridge.hpp"
#include "apb/peripherals.hpp"
#include "apb/power.hpp"
#include "apb/signals.hpp"
