// AtomicFile: all-or-nothing publication, no temp-file litter, and
// error reporting instead of torn artifacts.

#include "telemetry/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace ahbp::telemetry {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ahbp_atomic_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string slurp(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Number of directory entries besides `expected` -- temp-file litter.
  [[nodiscard]] std::size_t extra_entries(const fs::path& expected) const {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path() != expected) ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CommitPublishesExactBytes) {
  const fs::path target = dir_ / "out.json";
  AtomicFile f(target);
  f.stream() << "{\"a\": 1}\n";
  f.commit();
  EXPECT_EQ(slurp(target), "{\"a\": 1}\n");
  EXPECT_EQ(extra_entries(target), 0u);
}

TEST_F(AtomicFileTest, UncommittedLeavesDestinationUntouched) {
  const fs::path target = dir_ / "out.json";
  {
    AtomicFile f(target);
    f.stream() << "never published";
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_EQ(extra_entries(target), 0u);
}

TEST_F(AtomicFileTest, CommitReplacesPreviousContentWholly) {
  const fs::path target = dir_ / "out.json";
  ASSERT_TRUE(AtomicFile::write(target, "old content, rather long"));
  AtomicFile f(target);
  f.stream() << "new";
  f.commit();
  EXPECT_EQ(slurp(target), "new");
}

TEST_F(AtomicFileTest, CreatesMissingParentDirectories) {
  const fs::path target = dir_ / "a" / "b" / "out.csv";
  AtomicFile f(target);
  f.stream() << "x,y\n";
  f.commit();
  EXPECT_EQ(slurp(target), "x,y\n");
}

TEST_F(AtomicFileTest, StaticWriteRoundTrips) {
  const fs::path target = dir_ / "blob.bin";
  const std::string payload("\x00\x01\xffraw", 6);
  std::string error;
  ASSERT_TRUE(AtomicFile::write(target, payload, &error)) << error;
  EXPECT_EQ(slurp(target), payload);
}

TEST_F(AtomicFileTest, FailureReportsErrorAndLeavesNoArtifact) {
  // The "directory" component is a regular file: commit cannot succeed.
  const fs::path blocker = dir_ / "blocker";
  ASSERT_TRUE(AtomicFile::write(blocker, "file, not dir"));
  const fs::path target = blocker / "out.json";
  std::string error;
  EXPECT_FALSE(AtomicFile::write(target, "content", &error));
  EXPECT_FALSE(error.empty());
  AtomicFile f(target);
  f.stream() << "content";
  EXPECT_THROW(f.commit(), std::runtime_error);
}

}  // namespace
}  // namespace ahbp::telemetry
