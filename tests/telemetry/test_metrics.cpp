// Unit tests for the metrics primitives: handle semantics, the global
// bypass switch, histogram bucketing, and the naming contract
// (docs/OBSERVABILITY.md).

#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/report.hpp"
#include "telemetry/exporters.hpp"

namespace ahbp::telemetry {
namespace {

TEST(Counter, AccumulatesAndBypasses) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  reg.set_enabled(false);
  c.add(1000);
  c.increment();
  EXPECT_EQ(c.value(), 42u);  // updates dropped while disabled

  reg.set_enabled(true);
  c.increment();
  EXPECT_EQ(c.value(), 43u);
}

TEST(Gauge, SetAddAndBypass) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.75);

  reg.set_enabled(false);
  g.set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.75);
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist", {1.0, 2.0, 5.0});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow

  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (bounds are inclusive upper limits)
  h.observe(1.5);   // <= 2.0
  h.observe(5.0);   // <= 5.0
  h.observe(100.0); // overflow

  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 108.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 108.0 / 5.0);
}

TEST(Histogram, EmptyStatsAreZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.empty", {1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactBoundValuesLandInTheirBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.bounds", {0.0, 1.0, 2.0});
  h.observe(0.0);  // == first bound: inclusive, not negative
  h.observe(1.0);
  h.observe(2.0);
  h.observe(2.0000001);  // just past the last bound -> overflow
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, RejectsNonFiniteAndNegativeObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.reject", {1.0, 2.0});
  h.observe(1.5);

  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(-0.5);

  // Dropped without touching any statistic.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 1.5);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[0] + h.counts()[2], 0u);

  h.observe(0.5);  // still accepts valid values afterwards
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, EmptyHistogramExportsZeroStats) {
  MetricsRegistry reg;
  (void)reg.histogram("test.never_observed", {1.0, 2.0});
  std::ostringstream os;
  write_metrics_json(os, reg);
  EXPECT_NE(os.str().find("\"test.never_observed\": {\"bounds\": [1, 2], "
                          "\"counts\": [0, 0, 0], \"count\": 0, \"sum\": 0, "
                          "\"min\": 0, \"max\": 0}"),
            std::string::npos);
}

TEST(Histogram, RejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW((void)reg.histogram("bad.empty", {}), sim::SimError);
  EXPECT_THROW((void)reg.histogram("bad.unsorted", {2.0, 1.0}), sim::SimError);
  EXPECT_THROW((void)reg.histogram("bad.dup", {1.0, 1.0}), sim::SimError);
}

TEST(MetricsRegistry, HandlesAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.add(7);
  // Force rebalancing of the underlying map with more registrations.
  for (int i = 0; i < 50; ++i) {
    reg.counter("x.filler_" + std::to_string(i)).add(1);
  }
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same handle, not a new metric
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(reg.size(), 51u);
}

TEST(MetricsRegistry, CrossKindRegistrationThrows) {
  MetricsRegistry reg;
  (void)reg.counter("metric.one");
  EXPECT_THROW((void)reg.gauge("metric.one"), sim::SimError);
  EXPECT_THROW((void)reg.histogram("metric.one", {1.0}), sim::SimError);

  (void)reg.histogram("metric.two", {1.0, 2.0});
  EXPECT_THROW((void)reg.counter("metric.two"), sim::SimError);
  // Same bounds re-registration is fine; different bounds are not.
  EXPECT_NO_THROW((void)reg.histogram("metric.two", {1.0, 2.0}));
  EXPECT_THROW((void)reg.histogram("metric.two", {1.0, 3.0}), sim::SimError);
}

TEST(MetricsRegistry, NamingContract) {
  EXPECT_TRUE(MetricsRegistry::valid_name("ahb.power.cycles"));
  EXPECT_TRUE(MetricsRegistry::valid_name("a"));
  EXPECT_TRUE(MetricsRegistry::valid_name("snake_case.seg2.x_1"));

  EXPECT_FALSE(MetricsRegistry::valid_name(""));
  EXPECT_FALSE(MetricsRegistry::valid_name(".leading"));
  EXPECT_FALSE(MetricsRegistry::valid_name("trailing."));
  EXPECT_FALSE(MetricsRegistry::valid_name("double..dot"));
  EXPECT_FALSE(MetricsRegistry::valid_name("Upper.case"));
  EXPECT_FALSE(MetricsRegistry::valid_name("has space"));
  EXPECT_FALSE(MetricsRegistry::valid_name("has-dash"));

  MetricsRegistry reg;
  EXPECT_THROW((void)reg.counter("Bad.Name"), sim::SimError);
}

TEST(MetricsRegistry, IteratesInNameOrder) {
  MetricsRegistry reg;
  (void)reg.counter("z.last");
  (void)reg.counter("a.first");
  (void)reg.counter("m.middle");
  std::vector<std::string> names;
  for (const auto& [name, c] : reg.counters()) names.push_back(name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"a.first", "m.middle", "z.last"}));
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.size(), 0u);

  (void)reg.counter("yes");
  EXPECT_NE(reg.find_counter("yes"), nullptr);
}

}  // namespace
}  // namespace ahbp::telemetry
