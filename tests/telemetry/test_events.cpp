// Unit tests for the structured event log (schema "ahbpower.events.v1"):
// sequence/timestamp stamping, typed field access, JSON rendering and
// escaping, tailing, listeners (including re-entrant emission), the
// disabled bypass and the durable JSONL sink.

#include "telemetry/events.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ahbp::telemetry {
namespace {

std::filesystem::path temp_path(const char* stem) {
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + "." + std::to_string(::getpid()) + ".jsonl");
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(EventLog, SequencesAndTimestampsAreMonotonic) {
  EventLog log;
  log.emit("campaign_start", {field_u64("runs", 6)});
  log.emit("run_start", {field_u64("run", 0), field_str("name", "a")});
  log.emit("run_finish", {field_u64("run", 0), field_str("status", "ok")});
  EXPECT_EQ(log.size(), 3u);

  const std::vector<Event> all = log.events_since(0);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 1);  // starts at 1, +1 per event
    if (i > 0) EXPECT_GE(all[i].t_mono_us, all[i - 1].t_mono_us);
  }
  EXPECT_EQ(all[0].type, "campaign_start");
  EXPECT_EQ(all[0].u64("runs"), 6u);
}

TEST(Event, TypedFieldAccessWithFallbacks) {
  EventLog log;
  log.emit("run_finish", {field_u64("run", 3), field_str("status", "failed"),
                          field_f64("wall_seconds", 0.25)});
  const Event ev = log.events_since(0).front();
  EXPECT_EQ(ev.u64("run"), 3u);
  EXPECT_EQ(ev.str("status"), "failed");
  EXPECT_DOUBLE_EQ(ev.f64("wall_seconds"), 0.25);
  // Absent key or kind mismatch falls back.
  EXPECT_EQ(ev.u64("missing", 7), 7u);
  EXPECT_EQ(ev.u64("status", 9), 9u);
  EXPECT_EQ(ev.str("run", "fb"), "fb");
  EXPECT_EQ(ev.find("nope"), nullptr);
}

TEST(Event, RenderEscapesHostileStrings) {
  EventLog log;
  log.emit("run_start", {field_str("name", "m\"0\\"),
                         field_str("noise", std::string("a\nb\tc\x01"))});
  const std::string line = log.events_since(0).front().render();
  EXPECT_NE(line.find("\"name\": \"m\\\"0\\\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  // No raw control bytes survive into the rendered JSON.
  for (const char c : line) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(EventLog, RenderSinceTailsTheLog) {
  EventLog log;
  log.emit("a");
  log.emit("b");
  log.emit("c");
  EXPECT_EQ(log.render_since(3), "");
  const std::string tail = log.render_since(1);
  EXPECT_EQ(log.events_since(1).size(), 2u);
  EXPECT_NE(tail.find("\"type\": \"b\""), std::string::npos);
  EXPECT_NE(tail.find("\"type\": \"c\""), std::string::npos);
  EXPECT_EQ(tail.find("\"type\": \"a\""), std::string::npos);
}

TEST(EventLog, ListenersRunPerEventAndMayReenter) {
  EventLog log;
  std::vector<std::string> seen;
  log.add_listener([&](const Event& ev) {
    seen.push_back(ev.type);
    // Re-entrant emission must not deadlock (this is exactly what the
    // ProgressTracker does when it emits worker_stalled).
    if (ev.type == "trigger") log.emit("reaction");
  });
  log.emit("plain");
  log.emit("trigger");
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "plain");
  EXPECT_EQ(seen[1], "trigger");
  EXPECT_EQ(seen[2], "reaction");
  EXPECT_EQ(log.size(), 3u);
}

TEST(EventLog, DisabledLogIgnoresEverything) {
  EventLog::Config cfg;
  cfg.enabled = false;
  EventLog log(cfg);
  bool called = false;
  log.add_listener([&](const Event&) { called = true; });
  log.emit("ignored");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(called);
  EXPECT_TRUE(log.error().empty());
}

TEST(EventLog, JsonlSinkWritesHeaderAndLines) {
  const std::filesystem::path path = temp_path("ahbp_events_sink");
  {
    EventLog::Config cfg;
    cfg.file = path;
    cfg.config_fingerprint = 0xabcdef0123456789ull;
    EventLog log(cfg);
    ASSERT_TRUE(log.error().empty()) << log.error();
    log.emit("campaign_start", {field_u64("runs", 1)});
    log.emit("campaign_finish", {field_u64("ok", 1)});
  }
  const std::string text = slurp(path);
  std::filesystem::remove(path);
  // Header line names the schema and fingerprint; then one line/event.
  EXPECT_NE(text.find("\"schema\": \"ahbpower.events.v1\""),
            std::string::npos);
  EXPECT_NE(text.find("abcdef0123456789"), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"campaign_start\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"campaign_finish\""), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 3);
}

TEST(EventLog, SinkFailureIsDeferredNotThrown) {
  EventLog::Config cfg;
  cfg.file = "/nonexistent-dir-for-sure/events.jsonl";
  EventLog log(cfg);
  log.emit("still_recorded");
  EXPECT_EQ(log.size(), 1u);  // in-memory log keeps working
  EXPECT_FALSE(log.error().empty());
}

}  // namespace
}  // namespace ahbp::telemetry
