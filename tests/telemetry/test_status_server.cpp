// Unit tests for the embedded HTTP status endpoint and its in-tree
// client: route dispatch, ?after= tailing, error mapping (404/400/500),
// ephemeral binding, bind-conflict reporting and clean shutdown.

#include "telemetry/status_server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "telemetry/events.hpp"

namespace ahbp::telemetry {
namespace {

StatusServer::Config test_config() {
  StatusServer::Config cfg;
  cfg.port = 0;  // ephemeral
  cfg.status_json = [] { return std::string("{\"schema\": \"test\"}"); };
  cfg.metrics_text = [] { return std::string("# TYPE x counter\nx 1\n"); };
  cfg.events_jsonl = [](std::uint64_t after) {
    return after == 0 ? std::string("{\"seq\": 1}\n") : std::string();
  };
  return cfg;
}

TEST(StatusServer, ServesAllThreeRoutes) {
  StatusServer server(test_config());
  ASSERT_NE(server.port(), 0);  // ephemeral port was bound and read back

  const HttpResponse status = http_get(server.port(), "/status");
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(status.body, "{\"schema\": \"test\"}");
  EXPECT_EQ(status.content_type, "application/json");

  const HttpResponse metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);

  const HttpResponse events = http_get(server.port(), "/events");
  EXPECT_EQ(events.status, 200);
  EXPECT_EQ(events.body, "{\"seq\": 1}\n");
  EXPECT_EQ(events.content_type, "application/x-ndjson");
}

TEST(StatusServer, EventsAfterParameterIsForwarded) {
  StatusServer server(test_config());
  const HttpResponse tail = http_get(server.port(), "/events?after=1");
  EXPECT_EQ(tail.status, 200);
  EXPECT_TRUE(tail.body.empty());  // callback saw after=1
}

TEST(StatusServer, UnknownRouteIs404) {
  StatusServer server(test_config());
  EXPECT_EQ(http_get(server.port(), "/nope").status, 404);
  EXPECT_EQ(http_get(server.port(), "/status/extra").status, 404);
}

TEST(StatusServer, MalformedAfterIs400) {
  StatusServer server(test_config());
  EXPECT_EQ(http_get(server.port(), "/events?after=xyz").status, 400);
}

TEST(StatusServer, ThrowingCallbackIs500) {
  StatusServer::Config cfg = test_config();
  cfg.status_json = []() -> std::string {
    throw std::runtime_error("snapshot raced");
  };
  StatusServer server(cfg);
  const HttpResponse res = http_get(server.port(), "/status");
  EXPECT_EQ(res.status, 500);
  EXPECT_NE(res.body.find("snapshot raced"), std::string::npos);
}

TEST(StatusServer, BindConflictThrows) {
  StatusServer first(test_config());
  StatusServer::Config clash = test_config();
  clash.port = first.port();
  EXPECT_THROW(StatusServer{clash}, std::runtime_error);
}

TEST(StatusServer, StopIsIdempotentAndRefusesAfter) {
  auto server = std::make_unique<StatusServer>(test_config());
  const std::uint16_t port = server->port();
  EXPECT_EQ(http_get(port, "/status").status, 200);
  server->stop();
  server->stop();  // idempotent
  server.reset();
  // The socket is closed; the client reports a transport failure.
  EXPECT_EQ(http_get(port, "/status", 1.0).status, 0);
}

TEST(StatusServer, ServesTheLiveEventLogTail) {
  EventLog log;
  StatusServer::Config cfg = test_config();
  cfg.events_jsonl = [&log](std::uint64_t after) {
    return log.render_since(after);
  };
  StatusServer server(cfg);
  log.emit("campaign_start");
  log.emit("run_start");
  const HttpResponse all = http_get(server.port(), "/events?after=0");
  EXPECT_NE(all.body.find("campaign_start"), std::string::npos);
  const HttpResponse tail = http_get(server.port(), "/events?after=1");
  EXPECT_EQ(tail.body.find("campaign_start"), std::string::npos);
  EXPECT_NE(tail.body.find("run_start"), std::string::npos);
}

}  // namespace
}  // namespace ahbp::telemetry
