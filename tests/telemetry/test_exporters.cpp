// Golden-file tests for the exporters: identical inputs must produce
// byte-identical output (the determinism contract of
// docs/OBSERVABILITY.md), and the formats themselves are locked down
// against the exact strings below.

#include "telemetry/exporters.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "telemetry/metrics.hpp"
#include "telemetry/window.hpp"

namespace ahbp::telemetry {
namespace {

// The reference scenario: two tracks, one full and one partial window,
// tick = 1 us so timestamps come out integral.
WindowSeries golden_series() {
  WindowSeries s(
      WindowSeries::Config{.window_ticks = 4, .tracks = {"arb", "dec"}});
  s.record(0, {1.0, 2.0});
  s.record(1, {0.5, 0.25});
  s.record(5, {0.25, 0.5});
  s.flush();
  return s;
}

ExportMeta golden_meta() {
  return ExportMeta{.tick_ns = 1000.0, .process_name = "test"};
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(-2.25), "-2.25");
  EXPECT_EQ(json_number(42.0), "42");  // exact integers drop the fraction
  EXPECT_EQ(json_number(1e-12), "1e-12");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.3333333333333333");
  // JSON has no inf/nan; the contract maps them to 0.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonEscape, ControlAndQuoteHandling) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(WindowCsv, MatchesGolden) {
  std::ostringstream os;
  write_window_csv(os, golden_series(), golden_meta());
  EXPECT_EQ(os.str(),
            "window,start_tick,ticks,t_start_us,e_arb_j,e_dec_j,e_total_j,"
            "p_total_w\n"
            "0,0,4,0,1.5,2.25,3.75,937499.9999999999\n"
            "1,4,2,4,0.25,0.5,0.75,374999.99999999994\n");
}

TEST(WindowJson, MatchesGolden) {
  std::ostringstream os;
  write_window_json(os, golden_series(), golden_meta());
  EXPECT_EQ(
      os.str(),
      "{\n"
      "  \"schema\": \"ahbpower.windows.v1\",\n"
      "  \"tick_ns\": 1000,\n"
      "  \"window_ticks\": 4,\n"
      "  \"tracks\": [\"arb\", \"dec\"],\n"
      "  \"total_energy_j\": 4.5,\n"
      "  \"windows\": [\n"
      "    {\"start_tick\": 0, \"ticks\": 4, \"t_start_us\": 0, \"energy_j\": "
      "[1.5, 2.25], \"energy_total_j\": 3.75, \"power_w\": "
      "937499.9999999999},\n"
      "    {\"start_tick\": 4, \"ticks\": 2, \"t_start_us\": 4, \"energy_j\": "
      "[0.25, 0.5], \"energy_total_j\": 0.75, \"power_w\": "
      "374999.99999999994}\n"
      "  ]\n"
      "}\n");
}

TEST(ChromeTrace, MatchesGolden) {
  TraceEventLog log;
  log.add_complete("READ", "bus", 0, 3);
  log.add_complete("IDLE", "bus", 3, 2);
  const WindowSeries series = golden_series();
  std::ostringstream os;
  write_chrome_trace(os, log, &series, golden_meta());
  EXPECT_EQ(
      os.str(),
      "{\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"test\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"name\": \"bus instructions\"}},\n"
      "  {\"name\": \"READ\", \"cat\": \"bus\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 0, \"dur\": 3},\n"
      "  {\"name\": \"IDLE\", \"cat\": \"bus\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 3, \"dur\": 2},\n"
      "  {\"name\": \"power_mw\", \"ph\": \"C\", \"pid\": 1, \"ts\": 0, "
      "\"args\": {\"arb\": 374999999.99999994, \"dec\": 562499999.9999999}},\n"
      "  {\"name\": \"power_mw\", \"ph\": \"C\", \"pid\": 1, \"ts\": 4, "
      "\"args\": {\"arb\": 124999999.99999999, \"dec\": "
      "249999999.99999997}}\n"
      "]}\n");
}

TEST(ChromeTrace, NoSeriesOmitsCounters) {
  TraceEventLog log;
  log.add_complete("WRITE", "bus", 0, 1);
  std::ostringstream os;
  write_chrome_trace(os, log, nullptr, golden_meta());
  EXPECT_EQ(os.str().find("power_mw"), std::string::npos);
  EXPECT_NE(os.str().find("\"WRITE\""), std::string::npos);
}

TEST(ChromeTrace, HostileNamesStayValidJson) {
  // Regression: free-form labels (spec/instruction names) flow into the
  // trace verbatim; a name like m"0\ must come out escaped, never as a
  // raw quote that truncates the JSON string.
  TraceEventLog log;
  log.add_complete("m\"0\\", "cat\nbreak", 0, 1);
  ExportMeta meta = golden_meta();
  meta.process_name = "proc\"quote";
  std::ostringstream os;
  write_chrome_trace(os, log, nullptr, meta);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"m\\\"0\\\\\""), std::string::npos);
  EXPECT_NE(out.find("cat\\nbreak"), std::string::npos);
  EXPECT_NE(out.find("proc\\\"quote"), std::string::npos);
  EXPECT_EQ(out.find("m\"0"), std::string::npos);  // raw name must not leak
}

TEST(MetricsJson, MatchesGolden) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist", {1.0, 2.0}).observe(0.5);
  reg.histogram("c.hist", {1.0, 2.0}).observe(5.0);
  std::ostringstream os;
  write_metrics_json(os, reg);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"ahbpower.metrics.v1\",\n"
            "  \"enabled\": true,\n"
            "  \"counters\": {\n"
            "    \"a.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"b.gauge\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"c.hist\": {\"bounds\": [1, 2], \"counts\": [1, 0, 1], "
            "\"count\": 2, \"sum\": 5.5, \"min\": 0.5, \"max\": 5}\n"
            "  }\n"
            "}\n");
}

TEST(MetricsJson, EmptyRegistry) {
  MetricsRegistry reg;
  std::ostringstream os;
  write_metrics_json(os, reg);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"ahbpower.metrics.v1\",\n"
            "  \"enabled\": true,\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(Exporters, ByteIdenticalAcrossRepeatedExport) {
  const WindowSeries series = golden_series();
  const ExportMeta meta = golden_meta();
  std::ostringstream a, b;
  write_window_json(a, series, meta);
  write_window_json(b, series, meta);
  EXPECT_EQ(a.str(), b.str());

  std::ostringstream c, d;
  write_window_csv(c, series, meta);
  write_window_csv(d, series, meta);
  EXPECT_EQ(c.str(), d.str());
}

}  // namespace
}  // namespace ahbp::telemetry
