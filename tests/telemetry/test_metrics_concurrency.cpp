// Concurrency regression tests for the metrics primitives. The
// original Counter/Gauge kept plain doubles behind no lock, so a
// /metrics scrape racing a hot simulation loop could observe torn
// reads; these tests drive writers and readers from real threads so
// TSan (scripts/sanitize.sh tsan) proves the atomics/mutex rework, and
// the count assertions catch lost updates even in a plain build.

#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/exporters.hpp"

namespace ahbp::telemetry {
namespace {

constexpr int kThreads = 4;
constexpr int kIters = 20000;

TEST(MetricsConcurrency, CounterAddsAreNotLost) {
  MetricsRegistry reg;
  Counter& c = reg.counter("conc.counter");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsConcurrency, GaugeAddsAreNotLost) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("conc.gauge");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kIters; ++i) g.add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
}

TEST(MetricsConcurrency, HistogramObservationsAreNotLost) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("conc.histogram", {1.0, 10.0, 100.0});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kIters; ++i) {
        h.observe(static_cast<double>((t + i) % 200));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsConcurrency, ScrapeRacesWritersWithoutTearing) {
  // One reader renders the Prometheus exposition in a loop while the
  // writers hammer every metric kind -- the exact /metrics-vs-simulation
  // race the status server introduces.
  MetricsRegistry reg;
  Counter& c = reg.counter("scrape.counter");
  Gauge& g = reg.gauge("scrape.gauge");
  Histogram& h = reg.histogram("scrape.histogram", {0.5, 5.0});
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::ostringstream os;
      write_prometheus_text(os, reg);
      ASSERT_NE(os.str().find("scrape_counter"), std::string::npos);
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        g.add(0.5);
        h.observe(static_cast<double>(i % 10));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace ahbp::telemetry
