// Locks down the window semantics documented in docs/OBSERVABILITY.md:
// boundary crossing, zero-valued gap windows, the partial final window,
// span splitting across edges, and the conservation guarantee.

#include "telemetry/window.hpp"

#include <gtest/gtest.h>

#include "sim/report.hpp"

namespace ahbp::telemetry {
namespace {

WindowSeries make_series(std::uint64_t window_ticks,
                         std::vector<std::string> tracks = {"e"}) {
  return WindowSeries(
      WindowSeries::Config{.window_ticks = window_ticks, .tracks = tracks});
}

TEST(WindowSeries, ClosesWindowOnBoundaryCrossing) {
  WindowSeries s = make_series(10);
  s.record(0, {1.0});
  s.record(9, {2.0});
  EXPECT_TRUE(s.windows().empty());  // window [0,10) still open

  s.record(10, {4.0});  // crossing closes [0,10)
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].start_tick, 0u);
  EXPECT_EQ(s.windows()[0].ticks, 10u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 3.0);
}

TEST(WindowSeries, EmitsZeroGapWindows) {
  WindowSeries s = make_series(10);
  s.record(5, {1.0});
  s.record(35, {2.0});  // skips windows [10,20) and [20,30)
  ASSERT_EQ(s.windows().size(), 3u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].values[0], 0.0);
  EXPECT_DOUBLE_EQ(s.windows()[2].values[0], 0.0);
  EXPECT_EQ(s.windows()[1].start_tick, 10u);
  EXPECT_EQ(s.windows()[1].ticks, 10u);  // gaps cover the full window
  EXPECT_EQ(s.windows()[2].start_tick, 20u);
}

TEST(WindowSeries, FirstWindowStartsAtFirstRecordsWindow) {
  WindowSeries s = make_series(10);
  s.record(42, {1.0});  // first record in window [40,50): no leading gaps
  s.flush();
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].start_tick, 40u);
}

TEST(WindowSeries, FlushClosesPartialFinalWindow) {
  WindowSeries s = make_series(10);
  s.record(0, {1.0});
  s.record(13, {2.0});  // closes [0,10), opens [10,20)
  s.flush();
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[1].start_tick, 10u);
  EXPECT_EQ(s.windows()[1].ticks, 4u);  // covered ticks 10..13 only
  EXPECT_DOUBLE_EQ(s.windows()[1].values[0], 2.0);

  s.flush();  // idempotent
  EXPECT_EQ(s.windows().size(), 2u);
}

TEST(WindowSeries, FlushOnExactBoundaryKeepsFullTicks) {
  WindowSeries s = make_series(10);
  for (std::uint64_t t = 0; t < 10; ++t) s.record(t, {1.0});
  s.flush();  // the window is exactly full but was never crossed
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].ticks, 10u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 10.0);
}

TEST(WindowSeries, SpanSplitsUniformlyAcrossEdges) {
  WindowSeries s = make_series(10);
  // 4 ticks in [8,12): 2 ticks fall in [0,10), 2 in [10,20).
  s.record_span(8, 4, {8.0});
  s.flush();
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 4.0);  // 8 * 2/4
  EXPECT_DOUBLE_EQ(s.windows()[1].values[0], 4.0);
  EXPECT_EQ(s.windows()[1].ticks, 2u);  // covers ticks 10..11
}

TEST(WindowSeries, LongSpanCoversManyWindows) {
  WindowSeries s = make_series(10);
  s.record_span(0, 35, {35.0});  // 1.0 per tick over 3.5 windows
  s.flush();
  ASSERT_EQ(s.windows().size(), 4u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 10.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].values[0], 10.0);
  EXPECT_DOUBLE_EQ(s.windows()[2].values[0], 10.0);
  EXPECT_DOUBLE_EQ(s.windows()[3].values[0], 5.0);
  EXPECT_EQ(s.windows()[3].ticks, 5u);
}

TEST(WindowSeries, MultiTrackValuesStayInOrder) {
  WindowSeries s = make_series(5, {"arb", "dec"});
  s.record(0, {1.0, 10.0});
  s.record(1, {2.0, 20.0});
  s.flush();
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 3.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[1], 30.0);
}

TEST(WindowSeries, ConservationAcrossMixedRecording) {
  WindowSeries s = make_series(7, {"a", "b"});
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (std::uint64_t t = 0; t < 100; t += 3) {
    const double a = 0.25 * static_cast<double>(t % 5);
    const double b = 1.0 / static_cast<double>(t + 1);
    s.record(t, {a, b});
    sum_a += a;
    sum_b += b;
  }
  s.record_span(100, 23, {5.5, 0.125});
  sum_a += 5.5;
  sum_b += 0.125;

  const std::vector<double> live = s.totals();  // before flush
  EXPECT_NEAR(live[0], sum_a, 1e-12 * sum_a);
  EXPECT_NEAR(live[1], sum_b, 1e-12);

  s.flush();
  double win_a = 0.0;
  double win_b = 0.0;
  for (const auto& w : s.windows()) {
    win_a += w.values[0];
    win_b += w.values[1];
  }
  EXPECT_NEAR(win_a, sum_a, 1e-12 * sum_a);
  EXPECT_NEAR(win_b, sum_b, 1e-12);
}

TEST(WindowSeries, RejectsBadConfigAndWidth) {
  EXPECT_THROW(make_series(0), sim::SimError);
  EXPECT_THROW(WindowSeries(WindowSeries::Config{.window_ticks = 10}),
               sim::SimError);  // no tracks
  WindowSeries s = make_series(10, {"a", "b"});
  EXPECT_THROW(s.record(0, {1.0}), sim::SimError);  // width mismatch
}

TEST(WindowSeries, StragglersFoldIntoOpenWindow) {
  WindowSeries s = make_series(10);
  s.record(8, {1.0});
  s.record(3, {2.0});  // earlier tick, same window: allowed
  s.flush();
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(s.windows()[0].values[0], 3.0);
  // last_tick_ stays at 8, so the partial window covers 9 ticks.
  EXPECT_EQ(s.windows()[0].ticks, 9u);
}

}  // namespace
}  // namespace ahbp::telemetry
