// Unit tests for the transaction-stream telemetry layer: record log,
// deterministic CSV/JSON exporters, and Chrome-trace span generation.

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/txn_trace.hpp"

namespace ahbp::telemetry {
namespace {

TxnRecord sample_record() {
  TxnRecord r;
  r.id = 7;
  r.master = 1;
  r.slave = 2;
  r.kind = "INCR4";
  r.write = true;
  r.req_tick = 10;
  r.start_tick = 12;
  r.end_tick = 18;
  r.arb_cycles = 2;
  r.addr_cycles = 4;
  r.data_beats = 4;
  r.wait_cycles = 1;
  r.busy_cycles = 0;
  r.retries = 0;
  r.splits = 0;
  r.errors = 0;
  r.energy_j = 1.5;
  return r;
}

TEST(TxnTraceLog, AppendsInOrder) {
  TxnTraceLog log;
  EXPECT_TRUE(log.empty());
  log.add(sample_record());
  TxnRecord r2 = sample_record();
  r2.id = 8;
  log.add(r2);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].id, 7u);
  EXPECT_EQ(log.records()[1].id, 8u);
}

TEST(TxnTraceCsv, GoldenOutput) {
  TxnTraceLog log;
  log.add(sample_record());
  std::ostringstream os;
  write_txn_csv(os, log);
  EXPECT_EQ(os.str(),
            "txn,master,slave,kind,write,req_tick,start_tick,end_tick,"
            "arb_cycles,addr_cycles,data_beats,wait_cycles,busy_cycles,"
            "retries,splits,errors,energy_j\n"
            "7,1,2,INCR4,W,10,12,18,2,4,4,1,0,0,0,0,1.5\n");
}

TEST(TxnTraceCsv, EmptyLogEmitsHeaderOnly) {
  TxnTraceLog log;
  std::ostringstream os;
  write_txn_csv(os, log);
  EXPECT_EQ(os.str(),
            "txn,master,slave,kind,write,req_tick,start_tick,end_tick,"
            "arb_cycles,addr_cycles,data_beats,wait_cycles,busy_cycles,"
            "retries,splits,errors,energy_j\n");
}

TEST(TxnTraceJson, GoldenOutput) {
  TxnTraceLog log;
  log.add(sample_record());
  TxnSummary summary;
  summary.total_energy_j = 2.0;
  summary.bus_energy_j = 0.5;
  summary.master_energy_j = {0.0, 1.5};
  summary.master_txns = {0, 1};
  summary.slave_energy_j = {0.0, 0.0, 1.5};
  const ExportMeta meta{.tick_ns = 10.0};
  std::ostringstream os;
  write_txn_json(os, log, summary, meta);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"ahbpower.txns.v1\",\n"
            "  \"tick_ns\": 10,\n"
            "  \"total_energy_j\": 2,\n"
            "  \"bus_energy_j\": 0.5,\n"
            "  \"masters\": [{\"energy_j\": 0, \"txns\": 0}, "
            "{\"energy_j\": 1.5, \"txns\": 1}],\n"
            "  \"slaves\": [{\"energy_j\": 0}, {\"energy_j\": 0}, "
            "{\"energy_j\": 1.5}],\n"
            "  \"txns\": [\n"
            "    {\"id\": 7, \"master\": 1, \"slave\": 2, \"kind\": \"INCR4\", "
            "\"write\": true, \"req_tick\": 10, \"start_tick\": 12, "
            "\"end_tick\": 18, \"arb_cycles\": 2, \"addr_cycles\": 4, "
            "\"data_beats\": 4, \"wait_cycles\": 1, \"busy_cycles\": 0, "
            "\"retries\": 0, \"splits\": 0, \"errors\": 0, \"energy_j\": 1.5}\n"
            "  ]\n"
            "}\n");
}

TEST(TxnTraceJson, DeterministicAcrossCalls) {
  TxnTraceLog log;
  log.add(sample_record());
  TxnSummary summary;
  summary.total_energy_j = 2.0;
  summary.bus_energy_j = 0.5;
  summary.master_energy_j = {0.0, 1.5};
  summary.master_txns = {0, 1};
  summary.slave_energy_j = {1.5};
  const ExportMeta meta{};
  std::ostringstream a;
  std::ostringstream b;
  write_txn_json(a, log, summary, meta);
  write_txn_json(b, log, summary, meta);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TxnSpans, PerMasterTrackWithNestedChildren) {
  EXPECT_EQ(txn_track_tid(0), 2);
  EXPECT_EQ(txn_track_tid(5), 7);

  TraceEventLog spans;
  append_txn_spans(spans, sample_record());
  ASSERT_EQ(spans.size(), 3u);
  const auto& events = spans.events();

  // Outer slice covers [req_tick, end_tick) on the master's track.
  EXPECT_EQ(events[0].name, "INCR4 WR");
  EXPECT_EQ(events[0].category, "txn");
  EXPECT_EQ(events[0].tid, txn_track_tid(1));
  EXPECT_EQ(events[0].start_tick, 10u);
  EXPECT_EQ(events[0].dur_ticks, 8u);
  EXPECT_NE(events[0].args_json.find("\"txn\": 7"), std::string::npos);
  EXPECT_NE(events[0].args_json.find("\"slave\": 2"), std::string::npos);
  EXPECT_NE(events[0].args_json.find("\"energy_j\": 1.5"), std::string::npos);

  // Children nest by containment on the same tid.
  EXPECT_EQ(events[1].name, "arb");
  EXPECT_EQ(events[1].start_tick, 10u);
  EXPECT_EQ(events[1].dur_ticks, 2u);
  EXPECT_EQ(events[1].tid, events[0].tid);
  EXPECT_EQ(events[2].name, "xfer");
  EXPECT_EQ(events[2].start_tick, 12u);
  EXPECT_EQ(events[2].dur_ticks, 6u);
  EXPECT_EQ(events[2].tid, events[0].tid);
}

TEST(TxnSpans, NoArbChildWhenGrantWasImmediate) {
  TxnRecord r = sample_record();
  r.req_tick = r.start_tick;  // no arbitration wait
  r.arb_cycles = 0;
  TraceEventLog spans;
  append_txn_spans(spans, r);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.events()[0].name, "INCR4 WR");
  EXPECT_EQ(spans.events()[1].name, "xfer");
}

TEST(TxnSpans, ReadDirectionInSliceName) {
  TxnRecord r = sample_record();
  r.write = false;
  r.kind = "SINGLE";
  TraceEventLog spans;
  append_txn_spans(spans, r);
  EXPECT_EQ(spans.events()[0].name, "SINGLE RD");
}

}  // namespace
}  // namespace ahbp::telemetry
