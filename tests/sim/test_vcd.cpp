// Tests for the VCD trace writer: header structure and value changes.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ahbp::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class VcdTest : public ::testing::Test {
protected:
  std::string path_ = ::testing::TempDir() + "ahbp_vcd_test.vcd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(VcdTest, HeaderAndBoolChanges) {
  {
    Kernel k;
    Module top(nullptr, "top");
    Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
    VcdWriter vcd(path_, k);
    vcd.add(clk.signal());
    k.run(SimTime::ns(25));
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! top_clk_clk $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("#10000\n1!"), std::string::npos);  // rise at 10 ns
  EXPECT_NE(text.find("#15000\n0!"), std::string::npos);  // fall at 15 ns
}

TEST_F(VcdTest, VectorChannel) {
  {
    Kernel k;
    Module top(nullptr, "top");
    Signal<std::uint32_t> addr(&top, "addr", 0);
    VcdWriter vcd(path_, k);
    vcd.add(addr, 8);
    Event go(&top, "go");
    Method w(&top, "w", [&] { addr.write(0xA5); });
    w.sensitive(go).dont_initialize();
    go.notify(SimTime::ns(3));
    k.run(SimTime::ns(5));
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("$var wire 8 ! top_addr $end"), std::string::npos);
  EXPECT_NE(text.find("b10100101 !"), std::string::npos);
}

TEST_F(VcdTest, NoRedundantDumpsForUnchangedValues) {
  {
    Kernel k;
    Module top(nullptr, "top");
    Signal<bool> s(&top, "s", false);
    VcdWriter vcd(path_, k);
    vcd.add(s);
    k.run(SimTime::ns(50));
  }
  const std::string text = slurp(path_);
  // Exactly one value line for the initial dump, no changes afterwards.
  EXPECT_EQ(text.find("0!"), text.rfind("0!"));
  EXPECT_EQ(text.find("1!"), std::string::npos);
}

TEST_F(VcdTest, AddAfterStartThrows) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<bool> s(&top, "s", false);
  VcdWriter vcd(path_, k);
  vcd.add(s);
  k.run(SimTime::ns(1));
  EXPECT_THROW(vcd.add(s), SimError);
}

TEST_F(VcdTest, UnopenablePathThrows) {
  Kernel k;
  EXPECT_THROW(VcdWriter("/nonexistent_dir_xyz/trace.vcd", k), SimError);
}

}  // namespace
}  // namespace ahbp::sim
