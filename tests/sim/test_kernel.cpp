// Unit tests for the scheduler: event notification semantics, delta
// cycles, method processes and the evaluate/update protocol.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ahbp::sim {
namespace {

TEST(Kernel, OnlyOneAlive) {
  Kernel k;
  EXPECT_THROW(Kernel{}, SimError);
}

TEST(Kernel, CurrentTracksLifetime) {
  EXPECT_EQ(Kernel::current_or_null(), nullptr);
  {
    Kernel k;
    EXPECT_EQ(&Kernel::current(), &k);
  }
  EXPECT_EQ(Kernel::current_or_null(), nullptr);
  EXPECT_THROW((void)Kernel::current(), SimError);
}

TEST(Kernel, ObjectWithoutKernelThrows) {
  EXPECT_THROW(Module(nullptr, "orphan"), SimError);
}

TEST(Kernel, MethodsRunOnceAtInitialization) {
  Kernel k;
  Module top(nullptr, "top");
  int runs = 0;
  Method m(&top, "m", [&] { ++runs; });
  k.run();
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, DontInitializeSuppressesFirstRun) {
  Kernel k;
  Module top(nullptr, "top");
  int runs = 0;
  Method m(&top, "m", [&] { ++runs; });
  m.dont_initialize();
  k.run();
  EXPECT_EQ(runs, 0);
}

TEST(Kernel, TimedNotificationAdvancesTime) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  SimTime seen = SimTime::max();
  Method m(&top, "m", [&] { seen = k.now(); });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::ns(25));
  k.run();
  EXPECT_EQ(seen, SimTime::ns(25));
  EXPECT_EQ(k.now(), SimTime::ns(25));
}

TEST(Kernel, BoundedRunAdvancesToExactlyTheBound) {
  Kernel k;
  Module top(nullptr, "top");
  k.run(SimTime::us(3));
  EXPECT_EQ(k.now(), SimTime::us(3));
}

TEST(Kernel, BoundedRunDoesNotExecuteEventsBeyondBound) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  int runs = 0;
  Method m(&top, "m", [&] { ++runs; });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::ns(100));
  k.run(SimTime::ns(50));
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(k.now(), SimTime::ns(50));
  k.run(SimTime::ns(50));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(k.now(), SimTime::ns(100));
}

TEST(Kernel, DeltaNotificationRunsAtSameTime) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  std::vector<std::uint64_t> deltas;
  Method producer(&top, "p", [&] { ev.notify_delta(); });
  Method consumer(&top, "c", [&] { deltas.push_back(k.delta_count()); });
  consumer.sensitive(ev).dont_initialize();
  k.run();
  EXPECT_EQ(k.now(), SimTime::zero());
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_GE(deltas[0], 1u);  // ran in a later delta than the producer
}

TEST(Kernel, ImmediateNotificationRunsInSameEvaluation) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  std::uint64_t producer_delta = ~0ull, consumer_delta = ~0ull;
  Method consumer(&top, "c", [&] { consumer_delta = k.delta_count(); });
  consumer.sensitive(ev).dont_initialize();
  Method producer(&top, "p", [&] {
    producer_delta = k.delta_count();
    ev.notify();
  });
  k.run();
  EXPECT_EQ(consumer_delta, producer_delta);
}

TEST(Kernel, TimedEventsAtSameInstantAllFire) {
  Kernel k;
  Module top(nullptr, "top");
  Event a(&top, "a"), b(&top, "b");
  int fired = 0;
  Method ma(&top, "ma", [&] { ++fired; });
  ma.sensitive(a).dont_initialize();
  Method mb(&top, "mb", [&] { ++fired; });
  mb.sensitive(b).dont_initialize();
  a.notify(SimTime::ns(5));
  b.notify(SimTime::ns(5));
  k.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, EventCancelSuppressesNotification) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  int fired = 0;
  Method m(&top, "m", [&] { ++fired; });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::ns(5));
  ev.cancel();
  k.run();
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, EarlierTimedNotifyOverridesLater) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  std::vector<SimTime> fires;
  Method m(&top, "m", [&] { fires.push_back(k.now()); });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::ns(50));
  ev.notify(SimTime::ns(10));  // earlier: overrides
  k.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], SimTime::ns(10));
}

TEST(Kernel, LaterTimedNotifyIsIgnoredWhilePending) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  std::vector<SimTime> fires;
  Method m(&top, "m", [&] { fires.push_back(k.now()); });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::ns(10));
  ev.notify(SimTime::ns(50));  // later: ignored
  k.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], SimTime::ns(10));
}

TEST(Kernel, DeltaOverridesPendingTimed) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  std::vector<SimTime> fires;
  Method m(&top, "m", [&] { fires.push_back(k.now()); });
  m.sensitive(ev).dont_initialize();
  Method kick(&top, "kick", [&] {
    ev.notify(SimTime::ns(50));
    ev.notify_delta();
  });
  k.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], SimTime::zero());
}

TEST(Kernel, StopEndsRun) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  int fired = 0;
  Method m(&top, "m", [&] {
    if (++fired == 3) {
      k.stop();
    } else {
      ev.notify(SimTime::ns(1));
    }
  });
  m.sensitive(ev);
  k.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(k.now(), SimTime::ns(2));
}

TEST(Kernel, RunnableDeduplication) {
  // A process sensitive to two events that fire in the same delta runs once.
  Kernel k;
  Module top(nullptr, "top");
  Event a(&top, "a"), b(&top, "b");
  int runs = 0;
  Method m(&top, "m", [&] { ++runs; });
  m.sensitive(a).sensitive(b).dont_initialize();
  a.notify(SimTime::ns(1));
  b.notify(SimTime::ns(1));
  k.run();
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, FullNamesReflectHierarchy) {
  Kernel k;
  Module top(nullptr, "top");
  Module sub(&top, "bus");
  Event ev(&sub, "ev");
  EXPECT_EQ(ev.full_name(), "top.bus.ev");
  EXPECT_EQ(sub.full_name(), "top.bus");
  EXPECT_EQ(top.full_name(), "top");
  EXPECT_EQ(ev.parent(), &sub);
  ASSERT_EQ(top.children().size(), 1u);
  EXPECT_EQ(top.children()[0], &sub);
}

TEST(Kernel, ObjectsRegisterAndUnregister) {
  Kernel k;
  auto before = k.objects().size();
  {
    Module top(nullptr, "top");
    EXPECT_EQ(k.objects().size(), before + 1);
  }
  EXPECT_EQ(k.objects().size(), before);
}

TEST(Kernel, ZeroDelayTimedNotifyActsAsDelta) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  int fired = 0;
  Method m(&top, "m", [&] { ++fired; });
  m.sensitive(ev).dont_initialize();
  ev.notify(SimTime::zero());
  k.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Kernel, MethodExceptionPropagatesOutOfRun) {
  Kernel k;
  Module top(nullptr, "top");
  Method m(&top, "m", [] { throw SimError("boom"); });
  EXPECT_THROW(k.run(), SimError);
}

TEST(Reporter, ErrorsThrowAndCount) {
  Reporter::reset_counts();
  EXPECT_THROW(Reporter::report(Severity::kError, "T", "bad"), SimError);
  EXPECT_EQ(Reporter::counts().error, 1u);
  Reporter::report(Severity::kWarning, "T", "careful");
  EXPECT_EQ(Reporter::counts().warning, 1u);
  Reporter::reset_counts();
  EXPECT_EQ(Reporter::counts().error, 0u);
}

}  // namespace
}  // namespace ahbp::sim
