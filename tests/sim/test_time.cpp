// Unit tests for SimTime arithmetic, ordering and formatting.

#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ahbp::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().femtoseconds(), 0);
}

TEST(SimTime, UnitConstructorsScale) {
  EXPECT_EQ(SimTime::ps(1).femtoseconds(), 1'000);
  EXPECT_EQ(SimTime::ns(1).femtoseconds(), 1'000'000);
  EXPECT_EQ(SimTime::us(1).femtoseconds(), 1'000'000'000);
  EXPECT_EQ(SimTime::ms(1).femtoseconds(), 1'000'000'000'000);
  EXPECT_EQ(SimTime::sec(1).femtoseconds(), 1'000'000'000'000'000);
}

TEST(SimTime, UnitAccessorsTruncate) {
  const auto t = SimTime::ns(1) + SimTime::ps(499);
  EXPECT_EQ(t.nanoseconds(), 1);
  EXPECT_EQ(t.picoseconds(), 1'499);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::ns(1), SimTime::ns(2));
  EXPECT_LE(SimTime::ns(2), SimTime::ns(2));
  EXPECT_GT(SimTime::us(1), SimTime::ns(999));
  EXPECT_EQ(SimTime::us(1), SimTime::ns(1000));
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(SimTime::ns(3) + SimTime::ns(4), SimTime::ns(7));
  EXPECT_EQ(SimTime::ns(9) - SimTime::ns(4), SimTime::ns(5));
  EXPECT_EQ(SimTime::ns(3) * 4, SimTime::ns(12));
  EXPECT_EQ(5 * SimTime::ns(2), SimTime::ns(10));
}

TEST(SimTime, DivisionCountsPeriods) {
  EXPECT_EQ(SimTime::us(1) / SimTime::ns(10), 100);
  EXPECT_EQ(SimTime::ns(25) / SimTime::ns(10), 2);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::ns(1);
  t += SimTime::ns(2);
  EXPECT_EQ(t, SimTime::ns(3));
  t -= SimTime::ns(1);
  EXPECT_EQ(t, SimTime::ns(2));
}

TEST(SimTime, ToSeconds) {
  EXPECT_DOUBLE_EQ(SimTime::us(1).to_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(SimTime::ns(10).to_seconds(), 1e-8);
  EXPECT_DOUBLE_EQ(SimTime::zero().to_seconds(), 0.0);
}

TEST(SimTime, MaxIsLargerThanEverything) {
  EXPECT_GT(SimTime::max(), SimTime::sec(1000));
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::zero().to_string(), "0 s");
  EXPECT_EQ(SimTime::ns(150).to_string(), "150 ns");
  EXPECT_EQ(SimTime::us(2).to_string(), "2 us");
  EXPECT_EQ(SimTime::fs(5).to_string(), "5 fs");
}

TEST(SimTime, ToStringFractional) {
  const auto t = SimTime::us(2) + SimTime::ns(500);
  EXPECT_EQ(t.to_string(), "2.500 us");
}

TEST(SimTime, StreamInsertion) {
  std::ostringstream os;
  os << SimTime::ns(42);
  EXPECT_EQ(os.str(), "42 ns");
}

}  // namespace
}  // namespace ahbp::sim
