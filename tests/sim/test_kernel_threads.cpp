// Kernel thread-hosting: one Kernel per thread is legal (current_ is
// thread-local), concurrent independent simulations reproduce their
// serial results exactly, and the one-kernel-per-thread limit still
// holds within a thread.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

namespace ahbp::sim {
namespace {

/// A small self-contained simulation: a signal driven through a timed
/// event chain for `rounds` steps of `step` each; returns the observed
/// (time, value) pairs plus the executed delta count. Everything lives
/// on the calling thread's kernel.
struct ChainResult {
  std::vector<SimTime> times;
  std::vector<int> values;
  std::uint64_t deltas = 0;

  bool operator==(const ChainResult&) const = default;
};

ChainResult run_chain(unsigned rounds, SimTime step) {
  Kernel k;
  Module top(nullptr, "top");
  Event tick(&top, "tick");
  Signal<int> sig(&top, "sig", 0);
  ChainResult r;
  unsigned n = 0;
  Method driver(&top, "driver", [&] {
    sig.write(sig.read() + 3);
    if (++n < rounds) tick.notify(step);
  });
  driver.sensitive(tick).dont_initialize();
  Method observer(&top, "observer", [&] {
    r.times.push_back(k.now());
    r.values.push_back(sig.read());
  });
  observer.sensitive(sig.value_changed_event()).dont_initialize();
  tick.notify(step);
  k.run();
  r.deltas = k.delta_count();
  return r;
}

TEST(KernelThreads, TwoKernelsOnTwoThreadsMatchSerialRuns) {
  // Serial references, one kernel at a time on this thread.
  const ChainResult serial_a = run_chain(40, SimTime::ns(7));
  const ChainResult serial_b = run_chain(25, SimTime::ns(13));

  // The same two simulations, concurrently on two jthreads. The latch
  // makes both threads construct their kernels before either runs, so
  // two kernels are demonstrably alive at once.
  ChainResult par_a, par_b;
  std::latch both_started{2};
  {
    std::jthread ta([&] {
      Kernel k;  // thread-hosted kernel #1
      both_started.arrive_and_wait();
      // run_chain builds its own kernel: destroy ours first.
      // (Scoped to prove construction succeeded while #2 is alive.)
    });
    std::jthread tb([&] {
      Kernel k;  // thread-hosted kernel #2
      both_started.arrive_and_wait();
    });
  }

  std::latch gate{2};
  {
    std::jthread ta([&] {
      gate.arrive_and_wait();
      par_a = run_chain(40, SimTime::ns(7));
    });
    std::jthread tb([&] {
      gate.arrive_and_wait();
      par_b = run_chain(25, SimTime::ns(13));
    });
  }

  EXPECT_EQ(par_a, serial_a);
  EXPECT_EQ(par_b, serial_b);
  ASSERT_EQ(par_a.values.size(), 40u);
  EXPECT_EQ(par_a.values.back(), 120);
  ASSERT_EQ(par_b.values.size(), 25u);
  EXPECT_EQ(par_b.values.back(), 75);
}

TEST(KernelThreads, SecondKernelOnSameThreadStillThrows) {
  bool threw_on_worker = false;
  std::jthread t([&] {
    Kernel k;
    try {
      Kernel second;  // same thread: must throw
    } catch (const SimError&) {
      threw_on_worker = true;
    }
  });
  t.join();
  EXPECT_TRUE(threw_on_worker);
}

TEST(KernelThreads, CurrentIsThreadLocal) {
  Kernel main_kernel;
  EXPECT_EQ(&Kernel::current(), &main_kernel);

  Kernel* seen_before = reinterpret_cast<Kernel*>(1);
  Kernel* worker_kernel = nullptr;
  std::jthread t([&] {
    seen_before = Kernel::current_or_null();  // fresh thread: none alive
    Kernel k;
    worker_kernel = &Kernel::current();
  });
  t.join();
  EXPECT_EQ(seen_before, nullptr);
  EXPECT_NE(worker_kernel, nullptr);
  EXPECT_NE(worker_kernel, &main_kernel);
  // The worker's kernel never disturbed this thread's slot.
  EXPECT_EQ(&Kernel::current(), &main_kernel);
}

TEST(KernelThreads, ReporterCountersAreThreadLocal) {
  Reporter::reset_counts();
  Reporter::set_verbosity(Severity::kFatal);
  std::jthread t([] {
    Reporter::set_verbosity(Severity::kFatal);
    Reporter::report(Severity::kWarning, "T", "worker-side warning");
    EXPECT_EQ(Reporter::counts().warning, 1u);
  });
  t.join();
  EXPECT_EQ(Reporter::counts().warning, 0u);  // untouched on this thread
  Reporter::set_verbosity(Severity::kWarning);
}

}  // namespace
}  // namespace ahbp::sim
