// Unit tests for Signal<T>: evaluate/update semantics, change events,
// edge events, and port binding.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ahbp::sim {
namespace {

TEST(Signal, InitialValue) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 42);
  EXPECT_EQ(s.read(), 42);
}

TEST(Signal, WriteTakesEffectNextDelta) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  int observed_during_eval = -1;
  Method writer(&top, "w", [&] {
    s.write(7);
    observed_during_eval = s.read();  // old value: update not applied yet
  });
  k.run();
  EXPECT_EQ(observed_during_eval, 0);
  EXPECT_EQ(s.read(), 7);
}

TEST(Signal, LastWriteInEvaluationWins) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  Method writer(&top, "w", [&] {
    s.write(1);
    s.write(2);
    s.write(3);
  });
  k.run();
  EXPECT_EQ(s.read(), 3);
}

TEST(Signal, ChangeEventFiresOnChange) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  int changes = 0;
  Method obs(&top, "obs", [&] { ++changes; });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  Method writer(&top, "w", [&] { s.write(5); });
  k.run();
  EXPECT_EQ(changes, 1);
}

TEST(Signal, NoEventWhenValueUnchanged) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 5);
  int changes = 0;
  Method obs(&top, "obs", [&] { ++changes; });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  Method writer(&top, "w", [&] { s.write(5); });
  k.run();
  EXPECT_EQ(changes, 0);
}

TEST(Signal, WriteThenRestoreIsNoEvent) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 5);
  int changes = 0;
  Method obs(&top, "obs", [&] { ++changes; });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  Method writer(&top, "w", [&] {
    s.write(9);
    s.write(5);  // restore before update: net no-change
  });
  k.run();
  EXPECT_EQ(changes, 0);
  EXPECT_EQ(s.read(), 5);
}

TEST(Signal, WriteThenRestoreLeavesUpdateMachineryClean) {
  // Regression for the write-then-restore path: the queued update
  // degrades to a no-op in apply_update(), and the signal must then
  // behave normally -- a real change in a later evaluation phase of the
  // same timestep still fires exactly one event.
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 5);
  Event again(&top, "again");
  int changes = 0;
  Method obs(&top, "obs", [&] { ++changes; });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  Method writer(&top, "w", [&] {
    s.write(9);
    s.write(5);  // restore: queued update becomes a no-op
    again.notify_delta();
  });
  Method second(&top, "w2", [&] { s.write(6); });  // later delta, same time
  second.sensitive(again).dont_initialize();
  k.run();
  EXPECT_EQ(changes, 1);  // only the real 5 -> 6 change fired
  EXPECT_EQ(s.read(), 6);
  EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Signal, PosedgeAndNegedgeEvents) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<bool> s(&top, "s", false);
  Event step(&top, "step");
  int pos = 0, neg = 0;
  Method obs_p(&top, "p", [&] { ++pos; });
  obs_p.sensitive(s.posedge_event()).dont_initialize();
  Method obs_n(&top, "n", [&] { ++neg; });
  obs_n.sensitive(s.negedge_event()).dont_initialize();
  int phase = 0;
  Method writer(&top, "w", [&] {
    if (phase == 0) {
      s.write(true);
    } else if (phase == 1) {
      s.write(false);
    }
    ++phase;
    if (phase < 3) step.notify(SimTime::ns(1));
  });
  writer.sensitive(step);
  k.run();
  EXPECT_EQ(pos, 1);
  EXPECT_EQ(neg, 1);
}

TEST(Signal, EventQueryTrueRightAfterChange) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  bool saw_event = false;
  Method obs(&top, "obs", [&] { saw_event = s.event(); });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  Method writer(&top, "w", [&] { s.write(1); });
  k.run();
  EXPECT_TRUE(saw_event);
  EXPECT_FALSE(s.event());  // stale outside the notification delta
}

TEST(Signal, StringPayload) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<std::string> s(&top, "s", "idle");
  Method writer(&top, "w", [&] { s.write("busy"); });
  k.run();
  EXPECT_EQ(s.read(), "busy");
}

TEST(Signal, ChainedSignalsPropagateOverDeltas) {
  // a -> b -> c combinational chain settles within one timestep.
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> a(&top, "a", 0), b(&top, "b", 0), c(&top, "c", 0);
  Method m_ab(&top, "ab", [&] { b.write(a.read() + 1); });
  m_ab.sensitive(a.value_changed_event());
  Method m_bc(&top, "bc", [&] { c.write(b.read() + 1); });
  m_bc.sensitive(b.value_changed_event());
  Method stim(&top, "stim", [&] { a.write(10); });
  stim.dont_initialize();
  Event go(&top, "go");
  stim.sensitive(go);
  go.notify(SimTime::ns(1));
  k.run();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 12);
  EXPECT_EQ(k.now(), SimTime::ns(1));
}

TEST(Port, InReadsBoundSignal) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 3);
  In<int> in;
  EXPECT_FALSE(in.bound());
  in.bind(s);
  EXPECT_TRUE(in.bound());
  EXPECT_EQ(in.read(), 3);
}

TEST(Port, OutWritesBoundSignal) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  Out<int> out;
  out.bind(s);
  Method w(&top, "w", [&] { out.write(9); });
  k.run();
  EXPECT_EQ(s.read(), 9);
  EXPECT_EQ(out.read(), 9);
}

TEST(Port, UnboundAccessThrows) {
  Kernel k;
  In<int> in;
  Out<int> out;
  EXPECT_THROW((void)in.read(), SimError);
  EXPECT_THROW(out.write(1), SimError);
}

}  // namespace
}  // namespace ahbp::sim
