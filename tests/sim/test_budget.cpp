// Watchdog tests: RunBudget limits, cooperative cancellation, deadlock
// diagnosis and the per-thread ambient defaults the campaign runner
// uses to impose budgets on opaque run functions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/sim.hpp"

namespace ahbp::sim {
namespace {

/// A free-running clock keeps the timed queue busy forever -- the
/// simulated equivalent of a hung run.
struct TickingBench {
  TickingBench()
      : top(nullptr, "top"),
        clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10)) {}
  Kernel kernel;
  Module top;
  Clock clk;
};

TEST(RunBudget, UnlimitedByDefault) {
  const RunBudget b;
  EXPECT_FALSE(b.limited());
  EXPECT_FALSE(Kernel{}.budget().limited());
}

TEST(RunBudget, MaxCyclesStopsARunawayClock) {
  TickingBench b;
  b.kernel.set_budget(RunBudget{.max_cycles = 50});
  try {
    b.kernel.run();  // unbounded: only the budget can stop it
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("max-cycle budget"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(b.kernel.running());
  EXPECT_LE(b.kernel.stats().time_advances, 50u);
}

TEST(RunBudget, MaxEventsCatchesActivationStorm) {
  TickingBench b;
  std::uint64_t ticks = 0;
  Method m(&b.top, "m", [&] { ++ticks; });
  m.sensitive(b.clk.posedge_event()).dont_initialize();
  b.kernel.set_budget(RunBudget{.max_events = 100});
  EXPECT_THROW(b.kernel.run(), BudgetExceededError);
  EXPECT_LE(b.kernel.stats().processes_executed, 101u);
}

TEST(RunBudget, WallDeadlineStopsTheRun) {
  TickingBench b;
  b.kernel.set_budget(RunBudget{.max_wall_seconds = 0.05});
  EXPECT_THROW(b.kernel.run(), BudgetExceededError);
}

TEST(RunBudget, BudgetCountsPerRunCall) {
  // Limits restart with each run() call: two bounded runs inside one
  // generous budget must both complete normally.
  TickingBench b;
  b.kernel.set_budget(RunBudget{.max_cycles = 100});
  EXPECT_NO_THROW(b.kernel.run(SimTime::ns(200)));
  EXPECT_NO_THROW(b.kernel.run(SimTime::ns(200)));
}

TEST(RunBudget, CancelFlagAbortsCooperatively) {
  TickingBench b;
  std::atomic<bool> cancel{false};
  b.kernel.set_cancel_flag(&cancel);
  // A bounded run with the flag clear completes...
  EXPECT_NO_THROW(b.kernel.run(SimTime::ns(100)));
  // ...and an unbounded one aborts as soon as another thread sets it.
  std::thread setter([&] { cancel.store(true); });
  try {
    b.kernel.run();
    FAIL() << "expected RunCancelledError";
  } catch (const RunCancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("run cancelled"), std::string::npos);
  }
  setter.join();
}

TEST(RunBudget, DeadlockDiagnosisNamesBlockedProcesses) {
  Kernel kernel;
  Module top(nullptr, "top");
  Event never(&top, "never");
  Thread t(&top, "stuck", [&]() -> Task { co_await wait(never); });
  kernel.set_budget(RunBudget{.fail_on_deadlock = true});
  try {
    kernel.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("top.stuck"), std::string::npos) << what;
  }
}

TEST(RunBudget, CleanFinishIsNotADeadlock) {
  Kernel kernel;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  Thread t(&top, "ok", [&]() -> Task { co_await wait(ev); });
  ev.notify(SimTime::ns(5));
  kernel.set_budget(RunBudget{.fail_on_deadlock = true});
  EXPECT_NO_THROW(kernel.run());
}

TEST(RunBudget, BlockedProcessesListsOnlySuspendedThreads) {
  Kernel kernel;
  Module top(nullptr, "top");
  Event never(&top, "never");
  Event soon(&top, "soon");
  Thread stuck(&top, "stuck", [&]() -> Task { co_await wait(never); });
  Thread done(&top, "done", [&]() -> Task { co_await wait(soon); });
  Method m(&top, "method", [] {});
  soon.notify(SimTime::ns(1));
  kernel.run();
  const auto blocked = kernel.blocked_processes();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0], "top.stuck");
}

TEST(RunBudget, ThreadDefaultsApplyToNewKernels) {
  std::atomic<bool> cancel{false};
  Kernel::set_thread_defaults(RunBudget{.max_cycles = 25}, &cancel);
  std::uint64_t advances = 0;
  try {
    TickingBench b;  // constructed after: inherits the ambient budget
    EXPECT_EQ(b.kernel.budget().max_cycles, 25u);
    EXPECT_THROW(b.kernel.run(), BudgetExceededError);
    advances = b.kernel.stats().time_advances;
  } catch (...) {
    Kernel::clear_thread_defaults();
    throw;
  }
  Kernel::clear_thread_defaults();
  EXPECT_LE(advances, 25u);
  // Defaults cleared: the next kernel is unlimited again.
  EXPECT_FALSE(Kernel{}.budget().limited());
}

}  // namespace
}  // namespace ahbp::sim
