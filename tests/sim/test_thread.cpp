// Unit tests for coroutine Thread processes: timed waits, event waits,
// interleaving with signals, and termination.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ahbp::sim {
namespace {

/// A module hosting a simple thread used across several tests.
struct WaiterModule : Module {
  WaiterModule(Module* parent, std::string name)
      : Module(parent, std::move(name)),
        thread(this, "t", [this] { return body(); }) {}

  Task body() {
    timestamps.push_back(kernel().now());
    co_await wait(SimTime::ns(10));
    timestamps.push_back(kernel().now());
    co_await wait(SimTime::ns(5));
    timestamps.push_back(kernel().now());
  }

  std::vector<SimTime> timestamps;
  Thread thread;
};

TEST(Thread, TimedWaitsAdvanceTime) {
  Kernel k;
  Module top(nullptr, "top");
  WaiterModule w(&top, "w");
  k.run();
  ASSERT_EQ(w.timestamps.size(), 3u);
  EXPECT_EQ(w.timestamps[0], SimTime::zero());
  EXPECT_EQ(w.timestamps[1], SimTime::ns(10));
  EXPECT_EQ(w.timestamps[2], SimTime::ns(15));
  EXPECT_TRUE(w.thread.done());
}

TEST(Thread, PartialRunSuspendsAndResumes) {
  Kernel k;
  Module top(nullptr, "top");
  WaiterModule w(&top, "w");
  k.run(SimTime::ns(12));
  EXPECT_EQ(w.timestamps.size(), 2u);
  EXPECT_FALSE(w.thread.done());
  k.run(SimTime::ns(12));
  EXPECT_EQ(w.timestamps.size(), 3u);
  EXPECT_TRUE(w.thread.done());
}

struct EventWaiter : Module {
  EventWaiter(Module* parent, std::string name, Event& ev)
      : Module(parent, std::move(name)),
        ev_(ev),
        thread(this, "t", [this] { return body(); }) {}

  Task body() {
    while (true) {
      co_await wait(ev_);
      ++wakes;
      last_wake = kernel().now();
    }
  }

  Event& ev_;
  int wakes = 0;
  SimTime last_wake;
  Thread thread;
};

TEST(Thread, EventWaitWakesOncePerTrigger) {
  Kernel k;
  Module top(nullptr, "top");
  Event ev(&top, "ev");
  EventWaiter w(&top, "w", ev);
  ev.notify(SimTime::ns(3));
  k.run();
  EXPECT_EQ(w.wakes, 1);
  EXPECT_EQ(w.last_wake, SimTime::ns(3));
  ev.notify(SimTime::ns(4));
  k.run();
  EXPECT_EQ(w.wakes, 2);
  EXPECT_EQ(w.last_wake, SimTime::ns(7));
}

struct ClockedCounter : Module {
  ClockedCounter(Module* parent, std::string name, Clock& clk, int limit)
      : Module(parent, std::move(name)),
        clk_(clk),
        limit_(limit),
        thread(this, "t", [this] { return body(); }) {}

  Task body() {
    while (count < limit_) {
      co_await wait(clk_.posedge_event());
      ++count;
      edge_times.push_back(kernel().now());
    }
  }

  Clock& clk_;
  int limit_;
  int count = 0;
  std::vector<SimTime> edge_times;
  Thread thread;
};

TEST(Thread, WaitOnClockEdges) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
  ClockedCounter c(&top, "c", clk, 4);
  k.run(SimTime::ns(100));
  EXPECT_EQ(c.count, 4);
  ASSERT_EQ(c.edge_times.size(), 4u);
  EXPECT_EQ(c.edge_times[0], SimTime::ns(10));
  EXPECT_EQ(c.edge_times[1], SimTime::ns(20));
  EXPECT_EQ(c.edge_times[3], SimTime::ns(40));
}

struct Producer : Module {
  Producer(Module* parent, std::string name, Signal<int>& out)
      : Module(parent, std::move(name)),
        out_(out),
        thread(this, "t", [this] { return body(); }) {}

  Task body() {
    for (int i = 1; i <= 3; ++i) {
      out_.write(i);
      co_await wait(SimTime::ns(10));
    }
  }

  Signal<int>& out_;
  Thread thread;
};

TEST(Thread, ProducerDrivesSignalOverTime) {
  Kernel k;
  Module top(nullptr, "top");
  Signal<int> s(&top, "s", 0);
  Producer p(&top, "p", s);
  std::vector<int> seen;
  Method obs(&top, "obs", [&] { seen.push_back(s.read()); });
  obs.sensitive(s.value_changed_event()).dont_initialize();
  k.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

struct Thrower : Module {
  Thrower(Module* parent, std::string name)
      : Module(parent, std::move(name)),
        thread(this, "t", [this] { return body(); }) {}

  Task body() {
    co_await wait(SimTime::ns(1));
    throw SimError("thread failure");
  }

  Thread thread;
};

TEST(Thread, ExceptionPropagatesOutOfRun) {
  Kernel k;
  Module top(nullptr, "top");
  Thrower t(&top, "t");
  EXPECT_THROW(k.run(), SimError);
}

TEST(Thread, ZeroDelayWaitResumesSameTime) {
  Kernel k;
  Module top(nullptr, "top");
  std::vector<std::uint64_t> deltas;
  struct Z : Module {
    Z(Module* p, std::vector<std::uint64_t>& d)
        : Module(p, "z"), deltas(d), thread(this, "t", [this] { return body(); }) {}
    Task body() {
      deltas.push_back(kernel().delta_count());
      co_await wait(SimTime::zero());
      deltas.push_back(kernel().delta_count());
    }
    std::vector<std::uint64_t>& deltas;
    Thread thread;
  } z(&top, deltas);
  k.run();
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_GT(deltas[1], deltas[0]);
  EXPECT_EQ(k.now(), SimTime::zero());
}

}  // namespace
}  // namespace ahbp::sim
