// Property-style stress tests for the scheduler: randomized timed
// notifications must fire in nondecreasing time order and FIFO within an
// instant; long clock runs must stay phase-exact; randomized
// signal-writer networks must stay deterministic.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

namespace ahbp::sim {
namespace {

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeeds, TimedNotificationsFireInTimeOrder) {
  Kernel k;
  Module top(nullptr, "top");
  std::mt19937_64 rng(GetParam());

  constexpr int kEvents = 40;
  std::vector<std::unique_ptr<Event>> events;
  std::vector<std::unique_ptr<Method>> methods;
  std::vector<std::pair<SimTime, int>> fired;  // (when, which)

  for (int i = 0; i < kEvents; ++i) {
    events.push_back(std::make_unique<Event>(&top, "e" + std::to_string(i)));
    auto m = std::make_unique<Method>(
        &top, "m" + std::to_string(i),
        [&k, &fired, i] { fired.emplace_back(k.now(), i); });
    m->sensitive(*events.back()).dont_initialize();
    methods.push_back(std::move(m));
  }

  // Schedule each event at a random time; some share instants.
  std::vector<SimTime> when(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    when[i] = SimTime::ns(1 + static_cast<std::int64_t>(rng() % 20));
    events[i]->notify(when[i]);
  }
  k.run();

  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first) << "order violated at " << i;
  }
  // Each fired exactly at its scheduled time.
  for (const auto& [t, idx] : fired) {
    EXPECT_EQ(t, when[idx]);
  }
}

TEST_P(StressSeeds, RepeatedRescheduleKeepsEarliestWins) {
  Kernel k;
  Module top(nullptr, "top");
  std::mt19937_64 rng(GetParam() ^ 0x5555);
  Event ev(&top, "ev");
  std::vector<SimTime> fires;
  Method m(&top, "m", [&] { fires.push_back(k.now()); });
  m.sensitive(ev).dont_initialize();

  // Many notifies before running: the earliest must win.
  SimTime earliest = SimTime::max();
  for (int i = 0; i < 25; ++i) {
    const SimTime t = SimTime::ns(1 + static_cast<std::int64_t>(rng() % 1000));
    earliest = std::min(earliest, t);
    ev.notify(t);
  }
  k.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], earliest);
}

TEST_P(StressSeeds, RandomSignalNetworkIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Kernel k;
    Module top(nullptr, "top");
    Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
    std::mt19937_64 rng(seed);

    constexpr int kSignals = 8;
    std::vector<std::unique_ptr<Signal<std::uint32_t>>> sigs;
    for (int i = 0; i < kSignals; ++i) {
      sigs.push_back(std::make_unique<Signal<std::uint32_t>>(
          &top, "s" + std::to_string(i), 0u));
    }
    // Random combinational network: each non-source signal derives from
    // two earlier ones (acyclic by construction).
    std::vector<std::unique_ptr<Method>> procs;
    for (int i = 2; i < kSignals; ++i) {
      const int a = static_cast<int>(rng() % i);
      const int b = static_cast<int>(rng() % i);
      auto* sa = sigs[a].get();
      auto* sb = sigs[b].get();
      auto* so = sigs[i].get();
      auto m = std::make_unique<Method>(&top, "p" + std::to_string(i), [=] {
        so->write(sa->read() * 3 + (sb->read() ^ 0x5A5Au));
      });
      m->sensitive(sa->value_changed_event()).sensitive(sb->value_changed_event());
      procs.push_back(std::move(m));
    }
    // Driver: random values on the two source signals each clock.
    auto drv = std::make_unique<Method>(&top, "drv", [&top, &sigs, &rng] {
      sigs[0]->write(static_cast<std::uint32_t>(rng()));
      sigs[1]->write(static_cast<std::uint32_t>(rng()));
    });
    drv->sensitive(clk.posedge_event()).dont_initialize();

    k.run(SimTime::us(2));
    std::uint64_t hash = 0;
    for (const auto& s : sigs) hash = hash * 1099511628211ull + s->read();
    return hash;
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull, 99999ull));

TEST(KernelStress, LongClockRunStaysPhaseExact) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
  std::uint64_t edges = 0;
  SimTime last_edge;
  Method m(&top, "count", [&] {
    ++edges;
    last_edge = k.now();
  });
  m.sensitive(clk.posedge_event()).dont_initialize();
  k.run(SimTime::ms(1));  // 100k cycles
  // Posedges at 10 ns, 20 ns, ..., 1 ms inclusive.
  EXPECT_EQ(edges, 100000u);
  EXPECT_EQ(last_edge, SimTime::ms(1));
}

TEST(KernelStress, ManyShortRunsEqualOneLongRun) {
  auto run_chunked = [](int chunks) {
    Kernel k;
    Module top(nullptr, "top");
    Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
    std::uint64_t edges = 0;
    Method m(&top, "count", [&] { ++edges; });
    m.sensitive(clk.posedge_event()).dont_initialize();
    for (int i = 0; i < chunks; ++i) {
      k.run(SimTime::us(100) * (10 / chunks));
    }
    return edges;
  };
  EXPECT_EQ(run_chunked(1), run_chunked(2));
  EXPECT_EQ(run_chunked(2), run_chunked(5));
  EXPECT_EQ(run_chunked(5), run_chunked(10));
}

}  // namespace
}  // namespace ahbp::sim
