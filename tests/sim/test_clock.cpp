// Unit tests for the Clock waveform generator.

#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ahbp::sim {
namespace {

struct EdgeRecorder : Module {
  EdgeRecorder(Module* parent, Clock& clk)
      : Module(parent, "rec"),
        pos_(this, "pos", [this, &clk] { pos_times.push_back(kernel().now()); }),
        neg_(this, "neg", [this, &clk] { neg_times.push_back(kernel().now()); }) {
    pos_.sensitive(clk.posedge_event()).dont_initialize();
    neg_.sensitive(clk.negedge_event()).dont_initialize();
  }
  std::vector<SimTime> pos_times, neg_times;
  Method pos_, neg_;
};

TEST(Clock, PeriodicEdgesWithStartDelay) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
  EdgeRecorder rec(&top, clk);
  k.run(SimTime::ns(45));
  // Posedges at 10, 20, 30, 40; negedges at 15, 25, 35 (45 not yet settled).
  ASSERT_GE(rec.pos_times.size(), 4u);
  EXPECT_EQ(rec.pos_times[0], SimTime::ns(10));
  EXPECT_EQ(rec.pos_times[1], SimTime::ns(20));
  EXPECT_EQ(rec.pos_times[2], SimTime::ns(30));
  EXPECT_EQ(rec.pos_times[3], SimTime::ns(40));
  ASSERT_GE(rec.neg_times.size(), 3u);
  EXPECT_EQ(rec.neg_times[0], SimTime::ns(15));
  EXPECT_EQ(rec.neg_times[1], SimTime::ns(25));
}

TEST(Clock, ZeroStartDelayRisesAtTimeZero) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10));
  EdgeRecorder rec(&top, clk);
  k.run(SimTime::ns(19));
  ASSERT_GE(rec.pos_times.size(), 2u);
  EXPECT_EQ(rec.pos_times[0], SimTime::zero());
  EXPECT_EQ(rec.pos_times[1], SimTime::ns(10));
}

TEST(Clock, DutyCycleControlsHighTime) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10), 0.3, SimTime::ns(10));
  EdgeRecorder rec(&top, clk);
  k.run(SimTime::ns(25));
  ASSERT_GE(rec.pos_times.size(), 1u);
  ASSERT_GE(rec.neg_times.size(), 1u);
  EXPECT_EQ(rec.pos_times[0], SimTime::ns(10));
  EXPECT_EQ(rec.neg_times[0], SimTime::ns(13));  // 30% of 10 ns high
}

TEST(Clock, ReadTracksLevel) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10), 0.5, SimTime::ns(10));
  k.run(SimTime::ns(12));
  EXPECT_TRUE(clk.read());  // inside the high phase (10..15)
  k.run(SimTime::ns(5));
  EXPECT_FALSE(clk.read());  // inside the low phase (15..20)
}

TEST(Clock, InvalidParametersThrow) {
  Kernel k;
  Module top(nullptr, "top");
  EXPECT_THROW(Clock(&top, "c1", SimTime::zero()), SimError);
  EXPECT_THROW(Clock(&top, "c2", SimTime::ns(10), 0.0), SimError);
  EXPECT_THROW(Clock(&top, "c3", SimTime::ns(10), 1.0), SimError);
}

TEST(Clock, PeriodAccessor) {
  Kernel k;
  Module top(nullptr, "top");
  Clock clk(&top, "clk", SimTime::ns(10));
  EXPECT_EQ(clk.period(), SimTime::ns(10));
}

}  // namespace
}  // namespace ahbp::sim
