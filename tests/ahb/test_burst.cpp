// Tests for burst transfers: address sequencing helpers, the burst
// master against memory slaves (all burst kinds, BUSY insertion, wait
// states), and the monitor's burst-sequence checking.

#include "ahb/burst.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;

TEST(BurstAddr, IncrTypesJustIncrement) {
  for (const Burst b : {Burst::kIncr, Burst::kIncr4, Burst::kIncr8, Burst::kIncr16,
                        Burst::kSingle}) {
    EXPECT_EQ(next_burst_addr(0x100, b, Size::kWord), 0x104u);
    EXPECT_EQ(next_burst_addr(0x100, b, Size::kByte), 0x101u);
    EXPECT_EQ(next_burst_addr(0x100, b, Size::kHalfword), 0x102u);
  }
}

TEST(BurstAddr, Wrap4WrapsAtBlockBoundary) {
  // WRAP4 word: 16-byte blocks.
  EXPECT_EQ(next_burst_addr(0x100, Burst::kWrap4, Size::kWord), 0x104u);
  EXPECT_EQ(next_burst_addr(0x108, Burst::kWrap4, Size::kWord), 0x10Cu);
  EXPECT_EQ(next_burst_addr(0x10C, Burst::kWrap4, Size::kWord), 0x100u);  // wrap
}

TEST(BurstAddr, Wrap8AndWrap16) {
  // WRAP8 word: 32-byte blocks; start mid-block.
  EXPECT_EQ(next_burst_addr(0x11C, Burst::kWrap8, Size::kWord), 0x100u);
  // WRAP16 word: 64-byte blocks.
  EXPECT_EQ(next_burst_addr(0x13C, Burst::kWrap16, Size::kWord), 0x100u);
  EXPECT_EQ(next_burst_addr(0x134, Burst::kWrap16, Size::kWord), 0x138u);
}

TEST(BurstAddr, WrapSequenceVisitsWholeBlockOnce) {
  std::uint32_t a = 0x208;  // start mid-block
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) {
    seen.insert(a);
    a = next_burst_addr(a, Burst::kWrap4, Size::kWord);
  }
  EXPECT_EQ(a, 0x208u);  // back at the start after 4 beats
  EXPECT_EQ(seen, (std::set<std::uint32_t>{0x200, 0x204, 0x208, 0x20C}));
}

TEST(BurstAddr, WrapBoundary) {
  EXPECT_EQ(wrap_boundary(0x10C, Burst::kWrap4, Size::kWord), 0x100u);
  EXPECT_EQ(wrap_boundary(0x13F, Burst::kWrap16, Size::kWord), 0x100u);
  EXPECT_EQ(wrap_boundary(0x123, Burst::kIncr, Size::kWord), 0x123u);
}

TEST(BurstMaster, RejectsBadConfigs) {
  Bench b;
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  EXPECT_THROW(
      BurstMaster(&b.top, "m1", b.bus, {.burst = Burst::kSingle}),
      SimError);
  EXPECT_THROW(BurstMaster(&b.top, "m2", b.bus,
                           {.burst = Burst::kIncr, .incr_beats = 1}),
               SimError);
  EXPECT_THROW(BurstMaster(&b.top, "m3", b.bus,
                           {.addr_range = 8, .burst = Burst::kIncr4}),
               SimError);
  EXPECT_THROW(BurstMaster(&b.top, "m4", b.bus,
                           {.addr_base = 0x104, .burst = Burst::kWrap4}),
               SimError);
  EXPECT_THROW(BurstMaster(&b.top, "m5", b.bus,
                           {.burst = Burst::kIncr4, .busy_percent = 101}),
               SimError);
}

struct BurstBench : Bench {
  BurstBench(Burst burst, unsigned busy_percent, unsigned wait_states)
      : dm(&top, "dm", bus),
        m(&top, "m", bus,
          BurstMaster::Config{.addr_base = 0x0000,
                              .addr_range = 0x1000,
                              .burst = burst,
                              .incr_beats = 6,
                              .busy_percent = busy_percent,
                              .seed = 77}),
        mem(&top, "mem", bus,
            {.base = 0, .size = 0x1000, .wait_states = wait_states}),
        mon_cfg{.fatal = false},
        mon(&top, "mon", bus, mon_cfg) {
    bus.finalize();
  }
  DefaultMaster dm;
  BurstMaster m;
  MemorySlave mem;
  BusMonitor::Config mon_cfg;
  BusMonitor mon;
};

struct BurstCase {
  Burst burst;
  unsigned busy_percent;
  unsigned wait_states;
};

class BurstSweep : public ::testing::TestWithParam<BurstCase> {};

TEST_P(BurstSweep, CleanRunWithCorrectData) {
  const auto [burst, busy, waits] = GetParam();
  BurstBench b(burst, busy, waits);
  b.run_cycles(3000);
  EXPECT_TRUE(b.mon.violations().empty())
      << "first violation: " << b.mon.violations().front();
  EXPECT_GT(b.m.stats().bursts, 4u);
  EXPECT_GT(b.m.stats().write_beats, 10u);
  EXPECT_EQ(b.m.stats().read_mismatches, 0u)
      << "burst read-back corrupted (" << to_string(burst) << ")";
  EXPECT_EQ(b.m.stats().error_responses, 0u);
  if (busy > 0) {
    EXPECT_GT(b.m.stats().busy_beats, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BurstSweep,
    ::testing::Values(BurstCase{Burst::kIncr4, 0, 0},
                      BurstCase{Burst::kIncr8, 0, 0},
                      BurstCase{Burst::kIncr16, 0, 0},
                      BurstCase{Burst::kIncr, 0, 0},
                      BurstCase{Burst::kWrap4, 0, 0},
                      BurstCase{Burst::kWrap8, 0, 0},
                      BurstCase{Burst::kWrap16, 0, 0},
                      BurstCase{Burst::kIncr4, 25, 0},
                      BurstCase{Burst::kWrap8, 25, 0},
                      BurstCase{Burst::kIncr4, 0, 2},
                      BurstCase{Burst::kIncr8, 25, 1}));

TEST(BurstMaster, SeqBeatsAreBackToBack) {
  // Zero-wait INCR4: each burst's 4 beats complete in 4 consecutive
  // cycles (pipelined), so transfers/cycle during a tenure approaches 1.
  BurstBench b(Burst::kIncr4, 0, 0);
  b.run_cycles(2000);
  const auto& st = b.mon.stats();
  EXPECT_EQ(st.wait_cycles, 0u);
  // beats = transfers; bursts complete fully.
  EXPECT_EQ((b.m.stats().write_beats + b.m.stats().read_beats) % 4, 0u);
}

TEST(BurstMaster, BusyBeatsDoNotTransfer) {
  BurstBench with_busy(Burst::kIncr8, 40, 0);
  with_busy.run_cycles(3000);
  // BUSY beats consume cycles but no transfers: slave write count equals
  // write beats exactly.
  EXPECT_EQ(with_busy.mem.stats().writes, with_busy.m.stats().write_beats);
  EXPECT_GT(with_busy.m.stats().busy_beats, 10u);
}

TEST(BurstMaster, TwoBurstMastersShareBusCleanly) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  BurstMaster m1(&b.top, "m1", b.bus,
                 {.addr_base = 0x0000, .addr_range = 0x1000,
                  .burst = Burst::kIncr4, .seed = 1});
  BurstMaster m2(&b.top, "m2", b.bus,
                 {.addr_base = 0x1000, .addr_range = 0x1000,
                  .burst = Burst::kWrap8, .seed = 2});
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s1(&b.top, "s1", b.bus, {.base = 0x1000, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(4000);
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_EQ(m1.stats().read_mismatches, 0u);
  EXPECT_EQ(m2.stats().read_mismatches, 0u);
  EXPECT_GT(mon.stats().handovers, 4u);
}

TEST(BurstMaster, MixedWithTrafficMaster) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  BurstMaster bm(&b.top, "bm", b.bus,
                 {.addr_base = 0x0000, .addr_range = 0x1000,
                  .burst = Burst::kIncr4, .seed = 3});
  TrafficMaster tm(&b.top, "tm", b.bus,
                   {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 4});
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s1(&b.top, "s1", b.bus, {.base = 0x1000, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(4000);
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_EQ(bm.stats().read_mismatches, 0u);
  EXPECT_EQ(tm.stats().read_mismatches, 0u);
}

TEST(Monitor, CatchesBrokenBurstSequence) {
  // A hand-driven master that violates the SEQ address pattern.
  Bench b;
  struct BadMaster : AhbMaster {
    BadMaster(sim::Module* p, AhbBus& bus)
        : AhbMaster(p, "bad", bus), thread_(this, "t", [this] { return body(); }) {}
    sim::Task body() {
      sim::Event& edge = clock().posedge_event();
      sig_.hbusreq.write(true);
      do {
        co_await wait(edge);
      } while (!(granted() && bus_signals().hready.read()));
      sig_.htrans.write(raw(Trans::kNonSeq));
      sig_.hburst.write(raw(Burst::kIncr4));
      sig_.haddr.write(0x100);
      do {
        co_await wait(edge);
      } while (!bus_signals().hready.read());
      sig_.htrans.write(raw(Trans::kSeq));
      sig_.haddr.write(0x200);  // WRONG: should be 0x104
      do {
        co_await wait(edge);
      } while (!bus_signals().hready.read());
      sig_.htrans.write(raw(Trans::kIdle));
      sig_.hbusreq.write(false);
    }
    sim::Thread thread_;
  } bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(30);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_NE(mon.violations().front().find("burst address sequence"),
            std::string::npos);
}

}  // namespace
}  // namespace ahbp::ahb
