// Long-running randomized tests: the paper's testbench topology (two
// traffic masters + default master + three slaves) under the protocol
// monitor, plus parameterized sweeps over arbitration policy and wait
// states.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using test::Bench;

/// The paper's testbench: 2 traffic masters, 1 default master, 3 slaves.
struct PaperBench : Bench {
  explicit PaperBench(unsigned wait_states = 0,
                      AhbBus::Config cfg = AhbBus::Config{})
      : Bench(cfg),
        dm(&top, "default_master", bus),
        m1(&top, "m1", bus,
           {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 101}),
        m2(&top, "m2", bus,
           {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 202}),
        s1(&top, "s1", bus,
           {.base = 0x0000, .size = 0x1000, .wait_states = wait_states}),
        s2(&top, "s2", bus,
           {.base = 0x1000, .size = 0x1000, .wait_states = wait_states}),
        s3(&top, "s3", bus,
           {.base = 0x2000, .size = 0x1000, .wait_states = wait_states}),
        mon_cfg{.fatal = false},
        mon(&top, "mon", bus, mon_cfg) {
    bus.finalize();
  }

  DefaultMaster dm;
  TrafficMaster m1, m2;
  MemorySlave s1, s2, s3;
  BusMonitor::Config mon_cfg;
  BusMonitor mon;
};

TEST(Traffic, PaperTestbenchRunsCleanFor5000Cycles) {
  PaperBench b;
  b.run_cycles(5000);
  EXPECT_TRUE(b.mon.violations().empty())
      << "first violation: " << b.mon.violations().front();
  EXPECT_GT(b.m1.stats().sequences, 10u);
  EXPECT_GT(b.m2.stats().sequences, 10u);
  EXPECT_EQ(b.m1.stats().read_mismatches, 0u);
  EXPECT_EQ(b.m2.stats().read_mismatches, 0u);
  EXPECT_EQ(b.m1.stats().error_responses, 0u);
  EXPECT_EQ(b.m2.stats().error_responses, 0u);
}

TEST(Traffic, WritesEqualReads) {
  // Every tenure is WRITE-READ pairs; at an arbitrary stopping point a
  // master can be at most one completed write ahead of its reads.
  PaperBench b;
  b.run_cycles(3000);
  for (const TrafficMaster* m : {&b.m1, &b.m2}) {
    EXPECT_GE(m->stats().writes, m->stats().reads);
    EXPECT_LE(m->stats().writes - m->stats().reads, 1u);
    EXPECT_GT(m->stats().writes, 0u);
  }
}

TEST(Traffic, MonitorCountsMatchMasterCounts) {
  PaperBench b;
  b.run_cycles(2000);
  const auto total_master_transfers = b.m1.stats().writes + b.m1.stats().reads +
                                      b.m2.stats().writes + b.m2.stats().reads;
  // The monitor may have seen a few transfers still in flight; allow a
  // difference of at most 2 (one pending data phase per master).
  EXPECT_NEAR(static_cast<double>(b.mon.stats().transfers),
              static_cast<double>(total_master_transfers), 2.0);
}

TEST(Traffic, HandoversHappenAndOnlyDuringIdle) {
  PaperBench b;
  b.run_cycles(3000);
  EXPECT_GT(b.mon.stats().handovers, 10u);
  // The monitor's handover-during-transfer check never fired:
  EXPECT_TRUE(b.mon.violations().empty());
}

TEST(Traffic, SlaveTrafficLandsInTheRightSlaves) {
  PaperBench b;
  b.run_cycles(3000);
  // m1 only targets s1's window, m2 only targets s2's.
  EXPECT_GT(b.s1.stats().writes, 0u);
  EXPECT_GT(b.s2.stats().writes, 0u);
  EXPECT_EQ(b.s3.stats().writes, 0u);
  EXPECT_EQ(b.s1.stats().writes + b.s2.stats().writes,
            b.m1.stats().writes + b.m2.stats().writes);
}

class TrafficWaitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TrafficWaitSweep, CleanUnderWaitStates) {
  PaperBench b(GetParam());
  b.run_cycles(2000);
  EXPECT_TRUE(b.mon.violations().empty());
  EXPECT_EQ(b.m1.stats().read_mismatches, 0u);
  EXPECT_EQ(b.m2.stats().read_mismatches, 0u);
  if (GetParam() > 0) {
    EXPECT_GT(b.mon.stats().wait_cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Waits, TrafficWaitSweep, ::testing::Values(0u, 1u, 3u));

TEST(Traffic, RoundRobinPolicyAlsoClean) {
  PaperBench b(0, AhbBus::Config{.policy = ArbitrationPolicy::kRoundRobin});
  b.run_cycles(3000);
  EXPECT_TRUE(b.mon.violations().empty());
  EXPECT_EQ(b.m1.stats().read_mismatches, 0u);
  EXPECT_EQ(b.m2.stats().read_mismatches, 0u);
  EXPECT_GT(b.m1.stats().sequences, 5u);
  EXPECT_GT(b.m2.stats().sequences, 5u);
}

TEST(Traffic, ThroughputIsFairUnderContention) {
  // With symmetric configs both masters should complete a comparable
  // number of sequences (fixed priority is technically unfair, but
  // tenures are short and requests alternate).
  PaperBench b;
  b.run_cycles(5000);
  const double r = static_cast<double>(b.m1.stats().sequences) /
                   static_cast<double>(b.m2.stats().sequences);
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 2.0);
}

TEST(Traffic, DeterministicForFixedSeeds) {
  // Only one kernel may be alive at a time, so run the two replicas
  // sequentially and compare their summaries.
  auto run_once = [] {
    PaperBench b;
    b.run_cycles(1000);
    return std::tuple{b.m1.stats().writes, b.m2.stats().reads,
                      b.mon.stats().handovers};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ahbp::ahb
