// Integration tests of the full AHB fabric: scripted transfers through
// memory slaves, wait states, pipelining, default-slave errors, and
// multi-master arbitration -- all under the protocol monitor.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using test::Bench;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }
Op idle_op(unsigned cycles) { return Op{Op::Kind::kIdle, 0, 0, cycles}; }

TEST(Bus, SingleWriteRead) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x100, 0xCAFEBABE), read_op(0x100)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(30);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_TRUE(m.results()[0].write);
  EXPECT_EQ(m.results()[0].resp, Resp::kOkay);
  EXPECT_FALSE(m.results()[1].write);
  EXPECT_EQ(m.results()[1].data, 0xCAFEBABEu);
  EXPECT_EQ(mem.peek(0x100), 0xCAFEBABEu);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bus, BackToBackTransfersArePipelined) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  std::vector<Op> script;
  for (int i = 0; i < 8; ++i) {
    script.push_back(write_op(0x10u * i, 0x1000u + i));
  }
  ScriptedMaster m(&b.top, "m", b.bus, script);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.peek(0x10u * i), 0x1000u + i);
  }
  // Zero-wait pipelining: 8 transfers complete in 8 data phases; with
  // grant latency and drain, well under 16 bus cycles of transfers.
  EXPECT_EQ(mon.stats().transfers, 8u);
  EXPECT_EQ(mon.stats().wait_cycles, 0u);
  EXPECT_TRUE(mon.violations().empty());
}

class WaitStateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WaitStateSweep, WaitStatesStallButPreserveData) {
  const unsigned ws = GetParam();
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x40, 0xA5A5A5A5), read_op(0x40),
                    write_op(0x44, 0x5A5A5A5A), read_op(0x44)});
  MemorySlave mem(&b.top, "mem", b.bus,
                  {.base = 0, .size = 0x1000, .wait_states = ws});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(80);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 4u);
  EXPECT_EQ(m.results()[1].data, 0xA5A5A5A5u);
  EXPECT_EQ(m.results()[3].data, 0x5A5A5A5Au);
  EXPECT_EQ(mon.stats().transfers, 4u);
  EXPECT_EQ(mon.stats().wait_cycles, 4u * ws);
  EXPECT_TRUE(mon.violations().empty());
}

INSTANTIATE_TEST_SUITE_P(Waits, WaitStateSweep, ::testing::Values(0u, 1u, 2u, 5u));

TEST(Bus, ReadUnwrittenMemoryReturnsZero) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {read_op(0x200)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  b.run_cycles(20);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[0].data, 0u);
}

TEST(Bus, UnmappedAddressGetsErrorResponse) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0xDEAD0000, 1), idle_op(4)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(30);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 1u);
  EXPECT_EQ(m.results()[0].resp, Resp::kError);
  EXPECT_GE(mon.stats().error_responses, 1u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bus, TwoSlavesSeparateAddressSpaces) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x0100, 11), write_op(0x1100, 22), read_op(0x0100),
                    read_op(0x1100)});
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s1(&b.top, "s1", b.bus, {.base = 0x1000, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[2].data, 11u);
  EXPECT_EQ(m.results()[3].data, 22u);
  EXPECT_EQ(s0.peek(0x100), 11u);
  EXPECT_EQ(s1.peek(0x100), 22u);  // slave-relative offset
  EXPECT_EQ(s0.stats().writes, 1u);
  EXPECT_EQ(s1.stats().writes, 1u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bus, MixedWaitStateSlavesPipelineCorrectly) {
  // A fast slave behind a slow one: wait states of one data phase must
  // stall the next address phase without corrupting it.
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x0000, 0x111), write_op(0x1000, 0x222),
                    read_op(0x0000), read_op(0x1000)});
  MemorySlave slow(&b.top, "slow", b.bus,
                   {.base = 0x0000, .size = 0x1000, .wait_states = 3});
  MemorySlave fast(&b.top, "fast", b.bus, {.base = 0x1000, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[2].data, 0x111u);
  EXPECT_EQ(m.results()[3].data, 0x222u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bus, TwoMastersInterleaveThroughArbitration) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m1(&b.top, "m1", b.bus,
                    {write_op(0x100, 0xAAA), idle_op(3), read_op(0x100)});
  ScriptedMaster m2(&b.top, "m2", b.bus,
                    {write_op(0x200, 0xBBB), idle_op(3), read_op(0x200)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);

  b.run_cycles(100);
  ASSERT_TRUE(m1.finished());
  ASSERT_TRUE(m2.finished());
  EXPECT_EQ(m1.results().back().data, 0xAAAu);
  EXPECT_EQ(m2.results().back().data, 0xBBBu);
  EXPECT_GE(mon.stats().handovers, 2u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bus, GrantReturnsToDefaultMasterBetweenTenures) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x100, 1), idle_op(6)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  EXPECT_TRUE(b.bus.hgrant(0).read());
  EXPECT_EQ(b.bus.bus().hmaster.read(), 0);
}

TEST(Bus, SlaveStatsCountOperations) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x10, 1), write_op(0x14, 2), read_op(0x10)});
  MemorySlave mem(&b.top, "mem", b.bus,
                  {.base = 0, .size = 0x1000, .wait_states = 1});
  b.bus.finalize();
  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(mem.stats().writes, 2u);
  EXPECT_EQ(mem.stats().reads, 1u);
  EXPECT_EQ(mem.stats().wait_cycles, 3u);
}

TEST(Bus, PokeAndPeekBackdoor) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {read_op(0x20)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  mem.poke(0x20, 0x12345678);
  b.bus.finalize();
  b.run_cycles(20);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[0].data, 0x12345678u);
}

TEST(Bus, RunWithoutFinalizeHasNoBusActivity) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  EXPECT_FALSE(b.bus.finalized());
  // Masters wait forever for a grant that never comes; nothing crashes.
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x0, 1)});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x100});
  b.bus.finalize();
  EXPECT_TRUE(b.bus.finalized());
}

}  // namespace
}  // namespace ahbp::ahb
