// Unit tests for the AHB address decoder.

#include "ahb/decoder.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "sim/sim.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;

TEST(AddressRange, ContainsAndOverlaps) {
  const AddressRange a{0x1000, 0x100};
  EXPECT_TRUE(a.contains(0x1000));
  EXPECT_TRUE(a.contains(0x10FF));
  EXPECT_FALSE(a.contains(0x1100));
  EXPECT_FALSE(a.contains(0x0FFF));
  EXPECT_TRUE(a.overlaps(AddressRange{0x10F0, 0x100}));
  EXPECT_FALSE(a.overlaps(AddressRange{0x1100, 0x100}));
  EXPECT_FALSE(a.overlaps(AddressRange{0x0F00, 0x100}));
  EXPECT_TRUE(a.overlaps(AddressRange{0x0, 0x10000}));
}

TEST(Decoder, RejectsOverlappingRanges) {
  Bench b;
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  EXPECT_THROW(
      MemorySlave(&b.top, "s1", b.bus, {.base = 0x0800, .size = 0x1000}),
      SimError);
}

TEST(Decoder, SelectsByAddress) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s1(&b.top, "s1", b.bus, {.base = 0x1000, .size = 0x1000});
  MemorySlave s2(&b.top, "s2", b.bus, {.base = 0x2000, .size = 0x1000});
  b.bus.finalize();
  EXPECT_EQ(b.bus.n_slaves(), 4u);  // 3 memories + default slave

  // Drive addresses straight onto the master's bundle; the mux routes
  // them (default master is granted).
  auto& haddr = dm.signals().haddr;
  struct Case {
    std::uint32_t addr;
    unsigned slave;
  };
  for (const auto& c :
       {Case{0x0004, 0}, Case{0x1FFC, 1}, Case{0x2000, 2}, Case{0x0FFC, 0}}) {
    haddr.write(c.addr);
    b.run_cycles(1);
    EXPECT_TRUE(b.bus.hsel(c.slave).read()) << std::hex << c.addr;
    EXPECT_EQ(b.bus.decoder().selected().read(), c.slave);
    for (unsigned s = 0; s < 3; ++s) {
      if (s != c.slave) {
        EXPECT_FALSE(b.bus.hsel(s).read());
      }
    }
  }
}

TEST(Decoder, UnmappedAddressSelectsDefaultSlave) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x0000, .size = 0x1000});
  b.bus.finalize();
  const unsigned default_slave = b.bus.n_slaves() - 1;

  dm.signals().haddr.write(0xDEAD0000);
  b.run_cycles(1);
  EXPECT_TRUE(b.bus.hsel(default_slave).read());
  EXPECT_FALSE(b.bus.hsel(0).read());
}

TEST(Decoder, FinalizeRequiresSlaves) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  // finalize() adds the internal default slave, so it succeeds even with
  // no user slave -- but every transfer then errors. Just checks no throw.
  EXPECT_NO_THROW(b.bus.finalize());
}

TEST(Decoder, AttachAfterFinalizeRejected) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  EXPECT_THROW(MemorySlave(&b.top, "late", b.bus, {.base = 0x9000, .size = 0x100}),
               SimError);
}

TEST(Decoder, RangeAccessor) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  MemorySlave s0(&b.top, "s0", b.bus, {.base = 0x4000, .size = 0x800});
  b.bus.finalize();
  EXPECT_EQ(b.bus.decoder().range(0).base, 0x4000u);
  EXPECT_EQ(b.bus.decoder().range(0).size, 0x800u);
}

}  // namespace
}  // namespace ahbp::ahb
