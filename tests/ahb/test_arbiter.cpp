// Unit tests for the AHB arbiter: default master, priority, round-robin,
// handover-only-during-idle.

#include "ahb/arbiter.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;

/// A master shell that lets the test drive hbusreq/htrans by hand.
struct ManualMaster : AhbMaster {
  ManualMaster(sim::Module* parent, std::string name, AhbBus& bus)
      : AhbMaster(parent, std::move(name), bus) {}
  using AhbMaster::bus_signals;
};

struct ArbBench : Bench {
  explicit ArbBench(AhbBus::Config cfg = AhbBus::Config{})
      : Bench(cfg),
        m0(&top, "m0", bus),
        m1(&top, "m1", bus),
        m2(&top, "m2", bus),
        mem(&top, "mem", bus, {.base = 0, .size = 0x1000}) {
    bus.finalize();
  }
  ManualMaster m0, m1, m2;
  MemorySlave mem;
};

TEST(Arbiter, DefaultMasterGrantedAtReset) {
  ArbBench b;
  b.run_cycles(2);
  EXPECT_TRUE(b.bus.hgrant(0).read());
  EXPECT_FALSE(b.bus.hgrant(1).read());
  EXPECT_FALSE(b.bus.hgrant(2).read());
  EXPECT_EQ(b.bus.bus().hmaster.read(), 0);
}

TEST(Arbiter, RequestMovesGrant) {
  ArbBench b;
  b.run_cycles(2);
  b.m1.signals().hbusreq.write(true);
  b.run_cycles(2);
  EXPECT_TRUE(b.bus.hgrant(1).read());
  EXPECT_EQ(b.bus.bus().hmaster.read(), 1);
  EXPECT_EQ(b.bus.arbiter().handover_count(), 1u);
}

TEST(Arbiter, GrantReturnsToDefaultOnRelease) {
  ArbBench b;
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(2).read());
  b.m2.signals().hbusreq.write(false);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(0).read());
  EXPECT_EQ(b.bus.arbiter().handover_count(), 2u);
}

TEST(Arbiter, FixedPriorityPrefersLowerIndex) {
  ArbBench b;
  b.m1.signals().hbusreq.write(true);
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(1).read());
  EXPECT_FALSE(b.bus.hgrant(2).read());
}

TEST(Arbiter, OwnerKeepsBusWhileRequesting) {
  // Even a higher-priority request cannot steal the bus from an owner
  // that still requests it (non-interruptible sequences).
  ArbBench b;
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(3);
  ASSERT_TRUE(b.bus.hgrant(2).read());
  b.m1.signals().hbusreq.write(true);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(2).read()) << "ownership stolen mid-tenure";
  b.m2.signals().hbusreq.write(false);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(1).read());
}

TEST(Arbiter, NoHandoverWhileTransferInProgress) {
  ArbBench b;
  b.m1.signals().hbusreq.write(true);
  b.run_cycles(3);
  ASSERT_TRUE(b.bus.hgrant(1).read());
  // m1 launches a transfer and (wrongly) drops its request mid-transfer;
  // the arbiter must still wait for IDLE before re-granting.
  b.m1.signals().htrans.write(raw(Trans::kNonSeq));
  b.m1.signals().haddr.write(0x10);
  b.run_cycles(1);
  b.m1.signals().hbusreq.write(false);
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(1);
  EXPECT_TRUE(b.bus.hgrant(1).read());  // HTRANS is NONSEQ: no handover
  b.m1.signals().htrans.write(raw(Trans::kIdle));
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(2).read());
}

TEST(Arbiter, RoundRobinRotates) {
  ArbBench b(AhbBus::Config{.policy = ArbitrationPolicy::kRoundRobin});
  // All three request; release one at a time and check rotation order.
  b.m1.signals().hbusreq.write(true);
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(3);
  // current was 0 -> next in rotation is 1.
  EXPECT_TRUE(b.bus.hgrant(1).read());
  b.m1.signals().hbusreq.write(false);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(2).read());
  b.m2.signals().hbusreq.write(false);
  b.m1.signals().hbusreq.write(true);
  b.run_cycles(3);
  EXPECT_TRUE(b.bus.hgrant(1).read());
}

TEST(Arbiter, ExactlyOneGrantAlways) {
  ArbBench b;
  BusMonitor mon(&b.top, "mon", b.bus);
  b.m1.signals().hbusreq.write(true);
  b.run_cycles(5);
  b.m1.signals().hbusreq.write(false);
  b.m2.signals().hbusreq.write(true);
  b.run_cycles(5);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Arbiter, BadDefaultMasterRejected) {
  Bench b(AhbBus::Config{.default_master = 7});
  ManualMaster m0(&b.top, "m0", b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x100});
  EXPECT_THROW(b.bus.finalize(), SimError);
}

TEST(Arbiter, FinalizeWithoutMastersRejected) {
  Bench b;
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x100});
  EXPECT_THROW(b.bus.finalize(), SimError);
}

TEST(Arbiter, DoubleFinalizeRejected) {
  ArbBench b;
  EXPECT_THROW(b.bus.finalize(), SimError);
}

}  // namespace
}  // namespace ahbp::ahb
