// Tests for transaction-trace capture, persistence and replay.

#include "ahb/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ahb/ahb.hpp"
#include "power/estimator.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;

TEST(Trace, SaveLoadRoundTrip) {
  TransactionTrace t;
  t.add({.cycle = 10, .master = 1, .write = true, .addr = 0x100, .data = 0xAB});
  t.add({.cycle = 12, .master = 2, .write = false, .addr = 0x104, .data = 0xCD});
  std::stringstream ss;
  t.save(ss);
  const TransactionTrace back = TransactionTrace::load(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.records()[0], t.records()[0]);
  EXPECT_EQ(back.records()[1], t.records()[1]);
}

TEST(Trace, LoadRejectsGarbage) {
  std::istringstream is("12 1 X 0x10 0x20\n");
  EXPECT_THROW((void)TransactionTrace::load(is), SimError);
  std::istringstream is2("12 1 W\n");
  EXPECT_THROW((void)TransactionTrace::load(is2), SimError);
}

TEST(Trace, FilterMaster) {
  TransactionTrace t;
  t.add({.cycle = 1, .master = 1, .write = true, .addr = 0, .data = 0});
  t.add({.cycle = 2, .master = 2, .write = true, .addr = 4, .data = 0});
  t.add({.cycle = 3, .master = 1, .write = false, .addr = 0, .data = 0});
  const TransactionTrace m1 = t.filter_master(1);
  ASSERT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1.records()[1].cycle, 3u);
}

TEST(Trace, RecorderCapturesAllTransfers) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  TrafficMaster m(&b.top, "m", b.bus,
                  {.addr_base = 0, .addr_range = 0x1000, .seed = 41});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  TraceRecorder rec(&b.top, "rec", b.bus);
  BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(2000);

  EXPECT_EQ(rec.trace().size(), mon.stats().transfers);
  // Writes and reads alternate per the WRITE-READ pairs; each read's
  // recorded data equals the preceding write to the same address.
  std::map<std::uint32_t, std::uint32_t> shadow;
  for (const TransferRecord& r : rec.trace().records()) {
    if (r.write) {
      shadow[r.addr] = r.data;
    } else {
      ASSERT_TRUE(shadow.count(r.addr));
      EXPECT_EQ(r.data, shadow[r.addr]);
    }
  }
}

TEST(Trace, ReplayReproducesTransfersAndMemoryState) {
  // Record a run...
  TransactionTrace recorded;
  {
    Bench b;
    DefaultMaster dm(&b.top, "dm", b.bus);
    TrafficMaster m(&b.top, "m", b.bus,
                    {.addr_base = 0, .addr_range = 0x400, .seed = 43});
    MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
    b.bus.finalize();
    TraceRecorder rec(&b.top, "rec", b.bus);
    b.run_cycles(1000);
    recorded = rec.trace().filter_master(m.index());
  }
  ASSERT_GT(recorded.size(), 50u);

  // ...and replay it on a fresh system.
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  TraceMaster replay(&b.top, "replay", b.bus, recorded);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(4000);

  ASSERT_TRUE(replay.finished());
  EXPECT_EQ(replay.stats().replayed, recorded.size());
  EXPECT_EQ(replay.stats().read_mismatches, 0u)
      << "replayed reads must return the recorded values";
  EXPECT_TRUE(mon.violations().empty());

  // End-state: every recorded write is visible in memory.
  std::map<std::uint32_t, std::uint32_t> final_writes;
  for (const TransferRecord& r : recorded.records()) {
    if (r.write) final_writes[r.addr] = r.data;
  }
  for (const auto& [addr, data] : final_writes) {
    EXPECT_EQ(mem.peek(addr), data) << std::hex << addr;
  }
}

TEST(Trace, ReplayPowerSignatureIsComparable) {
  // The replayed workload's energy lands very close to the original's:
  // same transfer stream, same payloads, same pipelining, same pacing.
  double original_energy = 0.0;
  TransactionTrace recorded;
  {
    Bench b;
    DefaultMaster dm(&b.top, "dm", b.bus);
    TrafficMaster m(&b.top, "m", b.bus,
                    {.addr_base = 0, .addr_range = 0x400, .seed = 44});
    MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
    b.bus.finalize();
    power::AhbPowerEstimator est(&b.top, "power", b.bus);
    TraceRecorder rec(&b.top, "rec", b.bus);
    b.run_cycles(1500);
    recorded = rec.trace().filter_master(m.index());
    original_energy = est.total_energy();
  }

  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  TraceMaster replay(&b.top, "replay", b.bus, recorded);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  power::AhbPowerEstimator est(&b.top, "power", b.bus);
  b.run_cycles(6000);
  ASSERT_TRUE(replay.finished());

  const double ratio = est.total_energy() / original_energy;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Trace, EmptyTraceFinishesImmediately) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  TraceMaster replay(&b.top, "replay", b.bus, TransactionTrace{});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x100});
  b.bus.finalize();
  b.run_cycles(10);
  EXPECT_TRUE(replay.finished());
  EXPECT_EQ(replay.stats().replayed, 0u);
}

}  // namespace
}  // namespace ahbp::ahb
