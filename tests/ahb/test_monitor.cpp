// Negative tests for the protocol monitor: deliberately misbehaving
// masters must be caught, and the fatal/non-fatal modes must behave.

#include "ahb/monitor.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;

/// A master that changes its address mid-wait-state (illegal).
struct WobblyMaster : AhbMaster {
  WobblyMaster(sim::Module* p, AhbBus& bus)
      : AhbMaster(p, "wobbly", bus), thread_(this, "t", [this] { return body(); }) {}
  sim::Task body() {
    sim::Event& edge = clock().posedge_event();
    sig_.hbusreq.write(true);
    do {
      co_await wait(edge);
    } while (!(granted() && bus_signals().hready.read()));
    // Launch a transfer into the slow slave...
    sig_.htrans.write(raw(Trans::kNonSeq));
    sig_.haddr.write(0x100);
    sig_.hwrite.write(true);
    do {
      co_await wait(edge);
    } while (!bus_signals().hready.read());
    // First data-phase cycle (stalled): fire a second address phase and
    // then ILLEGALLY change it while HREADY is low.
    sig_.haddr.write(0x200);
    co_await wait(edge);
    sig_.haddr.write(0x300);  // illegal mid-wait change
    co_await wait(edge);
    co_await wait(edge);
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
  }
  sim::Thread thread_;
};

TEST(Monitor, CatchesAddressChangeDuringWaitStates) {
  Bench b;
  WobblyMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus,
                  {.base = 0, .size = 0x1000, .wait_states = 3});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(40);
  ASSERT_FALSE(mon.violations().empty());
  bool found = false;
  for (const auto& v : mon.violations()) {
    if (v.find("wait states") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << mon.violations().front();
}

/// A master that starts a burst with SEQ (illegal).
struct SeqFirstMaster : AhbMaster {
  SeqFirstMaster(sim::Module* p, AhbBus& bus)
      : AhbMaster(p, "seqfirst", bus),
        thread_(this, "t", [this] { return body(); }) {}
  sim::Task body() {
    sim::Event& edge = clock().posedge_event();
    sig_.hbusreq.write(true);
    do {
      co_await wait(edge);
    } while (!(granted() && bus_signals().hready.read()));
    sig_.htrans.write(raw(Trans::kSeq));  // illegal: SEQ out of IDLE
    sig_.haddr.write(0x10);
    co_await wait(edge);
    co_await wait(edge);
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
  }
  sim::Thread thread_;
};

TEST(Monitor, CatchesSeqAfterIdle) {
  Bench b;
  SeqFirstMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(20);
  ASSERT_FALSE(mon.violations().empty());
  bool found = false;
  for (const auto& v : mon.violations()) {
    if (v.find("SEQ transfer immediately after IDLE") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

/// A master that injects BUSY without a burst in progress.
struct BusyIdleMaster : AhbMaster {
  BusyIdleMaster(sim::Module* p, AhbBus& bus)
      : AhbMaster(p, "busyidle", bus),
        thread_(this, "t", [this] { return body(); }) {}
  sim::Task body() {
    sim::Event& edge = clock().posedge_event();
    sig_.hbusreq.write(true);
    do {
      co_await wait(edge);
    } while (!(granted() && bus_signals().hready.read()));
    sig_.htrans.write(raw(Trans::kBusy));  // illegal: BUSY out of IDLE
    co_await wait(edge);
    co_await wait(edge);
    sig_.htrans.write(raw(Trans::kIdle));
    sig_.hbusreq.write(false);
  }
  sim::Thread thread_;
};

TEST(Monitor, CatchesBusyOutsideBurst) {
  Bench b;
  BusyIdleMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(20);
  bool found = false;
  for (const auto& v : mon.violations()) {
    if (v.find("BUSY beat outside a burst") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Monitor, ViolationMessagesCarryContext) {
  Bench b;
  SeqFirstMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(20);
  ASSERT_FALSE(mon.violations().empty());
  // Every recorded violation says where (cycle, sim time) and who
  // (address-phase master) before what went wrong.
  for (const auto& v : mon.violations()) {
    EXPECT_EQ(v.find("cycle "), 0u) << v;
    EXPECT_NE(v.find(" @"), std::string::npos) << v;
    EXPECT_NE(v.find(" master "), std::string::npos) << v;
    EXPECT_NE(v.find(": "), std::string::npos) << v;
  }
}

TEST(Monitor, ViolationCounterTracksMetricsRegistry) {
  Bench b;
  SeqFirstMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  telemetry::MetricsRegistry metrics;
  BusMonitor::Config cfg{.fatal = false, .metrics = &metrics};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);
  b.run_cycles(20);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(metrics.counter("ahb.monitor.violations").value(),
            mon.violations().size());
}

TEST(Monitor, FatalModeThrowsOnFirstViolation) {
  Bench b;
  SeqFirstMaster bad(&b.top, b.bus);
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);  // fatal by default
  EXPECT_THROW(b.run_cycles(20), SimError);
}

TEST(Monitor, CleanTrafficProducesNoViolations) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  TrafficMaster m(&b.top, "m", b.bus,
                  {.addr_base = 0, .addr_range = 0x1000, .seed = 5});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);  // fatal: any violation aborts
  EXPECT_NO_THROW(b.run_cycles(2000));
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Monitor, DefaultSlaveTwoCycleErrorIsClean) {
  // Regression for the two-cycle-response check: the default slave's
  // unmapped-address ERROR is a well-formed two-cycle response, so the
  // monitor must record the error without flagging a violation.
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {{ScriptedMaster::Op::Kind::kWrite, 0x5000, 1, 0},
                    {ScriptedMaster::Op::Kind::kWrite, 0x10, 2, 0}},
                   ScriptedMaster::Options{.retry = false});
  MemorySlave mem(&b.top, "mem", b.bus, {.base = 0, .size = 0x1000});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus, BusMonitor::Config{.fatal = false});
  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.results()[0].resp, Resp::kError);  // 0x5000 is unmapped
  EXPECT_EQ(m.results()[1].resp, Resp::kOkay);
  EXPECT_EQ(mon.stats().error_responses, 1u);
  EXPECT_TRUE(mon.violations().empty()) << mon.violations()[0];
}

/// A slave that answers every transfer with a single-cycle ERROR --
/// HREADY stays high on the first response cycle, violating the
/// two-cycle rule.
struct SingleCycleErrorSlave : AhbSlave {
  SingleCycleErrorSlave(sim::Module* p, AhbBus& bus)
      : AhbSlave(p, "badslave", bus, 0, 0x1000),
        proc_(this, "clocked", [this] { on_clock(); }) {
    sig_.hreadyout.write(true);
    sig_.hresp.write(raw(Resp::kOkay));
    proc_.sensitive(clock().posedge_event()).dont_initialize();
  }
  void on_clock() {
    BusSignals& bus = bus_signals();
    if (erroring_) {
      sig_.hresp.write(raw(Resp::kOkay));
      erroring_ = false;
      return;
    }
    if (selected() && is_active(static_cast<Trans>(bus.htrans.read())) &&
        bus.hready.read()) {
      sig_.hresp.write(raw(Resp::kError));  // HREADY left high: illegal
      erroring_ = true;
    }
  }
  sim::Method proc_;
  bool erroring_ = false;
};

TEST(Monitor, CatchesSingleCycleErrorResponse) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {{ScriptedMaster::Op::Kind::kWrite, 0x10, 1, 0}},
                   ScriptedMaster::Options{.retry = false});
  SingleCycleErrorSlave bad(&b.top, b.bus);
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus, BusMonitor::Config{.fatal = false});
  b.run_cycles(40);
  bool found = false;
  for (const auto& v : mon.violations()) {
    if (v.find("single-cycle") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << (mon.violations().empty() ? "no violations"
                                                  : mon.violations()[0]);
}

TEST(Monitor, StatsClassifyCycleTypes) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {{ScriptedMaster::Op::Kind::kWrite, 0x10, 1, 0},
                    {ScriptedMaster::Op::Kind::kIdle, 0, 0, 5},
                    {ScriptedMaster::Op::Kind::kRead, 0x10, 0, 0}});
  MemorySlave mem(&b.top, "mem", b.bus,
                  {.base = 0, .size = 0x1000, .wait_states = 1});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(60);
  EXPECT_EQ(mon.stats().transfers, 2u);
  EXPECT_EQ(mon.stats().writes, 1u);
  EXPECT_EQ(mon.stats().reads, 1u);
  EXPECT_EQ(mon.stats().wait_cycles, 2u);
  EXPECT_GT(mon.stats().idle_cycles, 5u);
  EXPECT_GT(mon.stats().cycles, 20u);
}

}  // namespace
}  // namespace ahbp::ahb
