#pragma once
// Shared fixture pieces for AHB tests: a kernel + clock + bus skeleton.

#include <memory>
#include <vector>

#include "ahb/ahb.hpp"
#include "sim/sim.hpp"

namespace ahbp::ahb::test {

/// A bare system: 100 MHz clock and a bus, nothing attached yet.
/// First rising edge at 10 ns.
struct Bench {
  explicit Bench(AhbBus::Config cfg = AhbBus::Config{})
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk, cfg) {}

  /// Runs for `cycles` bus cycles.
  void run_cycles(unsigned cycles) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(cycles));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
};

}  // namespace ahbp::ahb::test
