// Fault-injection tests: RETRY/ERROR responses from a faulty slave, the
// scripted master's retry machinery, and system behaviour around the
// default slave's error responses.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/estimator.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }

TEST(FaultySlave, RejectsBadConfigs) {
  Bench b;
  EXPECT_THROW(FaultySlave(&b.top, "f1", b.bus, {.size = 6}), SimError);
  EXPECT_THROW(FaultySlave(&b.top, "f2", b.bus, {.fail_every_n = 0}), SimError);
  EXPECT_THROW(FaultySlave(&b.top, "f3", b.bus, {.failure = Resp::kOkay}),
               SimError);
  EXPECT_THROW(FaultySlave(&b.top, "f4", b.bus, {.failure = Resp::kSplit}),
               SimError);
}

TEST(FaultySlave, RetryResponseReachesMaster) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  // Every transfer fails -> a non-retrying master records the RETRY.
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1)},
                   ScriptedMaster::Options{.retry = false});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 1});
  b.bus.finalize();
  b.run_cycles(30);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 1u);
  EXPECT_EQ(m.results()[0].resp, Resp::kRetry);
  EXPECT_EQ(fs.stats().failures, 1u);
  EXPECT_EQ(fs.stats().ok_writes, 0u);
}

TEST(FaultySlave, RetryingMasterEventuallySucceeds) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x20, 0xBEEF), read_op(0x20)},
                   ScriptedMaster::Options{.retry = true});
  // Every 2nd transfer fails: first write attempt fails, retry succeeds...
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 2});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);

  b.run_cycles(100);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.results()[0].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].data, 0xBEEFu);
  EXPECT_GT(m.retries(), 0u);
  EXPECT_EQ(fs.peek(0x20), 0xBEEFu);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(FaultySlave, MaxRetriesGivesUp) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1)},
                   ScriptedMaster::Options{.retry = true, .max_retries = 3});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 1});  // always fails
  b.bus.finalize();
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.retries(), 3u);
  EXPECT_EQ(m.results()[0].resp, Resp::kRetry);  // gave up, recorded RETRY
}

TEST(FaultySlave, ErrorsAreNotRetried) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1), read_op(0x14)},
                   ScriptedMaster::Options{.retry = true});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0,
                  .size = 0x1000,
                  .fail_every_n = 2,
                  .failure = Resp::kError});
  b.bus.finalize();
  b.run_cycles(100);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.retries(), 0u);
  // Exactly one of the two transfers hit the every-2nd failure.
  const int errors = (m.results()[0].resp == Resp::kError ? 1 : 0) +
                     (m.results()[1].resp == Resp::kError ? 1 : 0);
  EXPECT_EQ(errors, 1);
}

TEST(FaultySlave, FailureCadenceIsExact) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  std::vector<Op> script;
  for (int i = 0; i < 9; ++i) script.push_back(write_op(0x100 + 4 * i, i));
  ScriptedMaster m(&b.top, "m", b.bus, script,
                   ScriptedMaster::Options{.retry = false});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 3});
  b.bus.finalize();
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(fs.stats().failures, 3u);   // transfers 3, 6, 9
  EXPECT_EQ(fs.stats().ok_writes, 6u);
}

TEST(FaultySlave, PowerAnalysisSeesRetryTraffic) {
  // Failure cycles are bus activity too: the estimator keeps working and
  // records extra energy relative to a clean run.
  auto run = [](unsigned fail_every_n) {
    Bench b;
    DefaultMaster dm(&b.top, "dm", b.bus);
    std::vector<Op> script;
    for (int i = 0; i < 16; ++i) script.push_back(write_op(0x100 + 4 * i, 0xA0 + i));
    ScriptedMaster m(&b.top, "m", b.bus, script,
                     ScriptedMaster::Options{.retry = true});
    FaultySlave fs(&b.top, "fs", b.bus,
                   {.base = 0, .size = 0x1000, .fail_every_n = fail_every_n});
    b.bus.finalize();
    power::AhbPowerEstimator est(&b.top, "pwr", b.bus);
    b.run_cycles(400);
    return est.total_energy();
  };
  const double clean = run(1000000);  // effectively never fails
  const double faulty = run(2);
  EXPECT_GT(faulty, clean);
}

}  // namespace
}  // namespace ahbp::ahb
