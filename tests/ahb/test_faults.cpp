// Fault-injection tests: RETRY/ERROR responses from a faulty slave, the
// scripted master's retry machinery, and system behaviour around the
// default slave's error responses.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/estimator.hpp"
#include "testbench.hpp"

namespace ahbp::ahb {
namespace {

using sim::SimError;
using test::Bench;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }

TEST(FaultySlave, RejectsBadConfigs) {
  Bench b;
  EXPECT_THROW(FaultySlave(&b.top, "f1", b.bus, {.size = 6}), SimError);
  EXPECT_THROW(FaultySlave(&b.top, "f2", b.bus, {.fail_every_n = 0}), SimError);
  EXPECT_THROW(FaultySlave(&b.top, "f3", b.bus, {.failure = Resp::kOkay}),
               SimError);
  // kSplit is a legal failure mode now, but needs a resume delay.
  EXPECT_THROW(FaultySlave(&b.top, "f4", b.bus,
                           {.failure = Resp::kSplit, .split_resume_cycles = 0}),
               SimError);
  // kSplit with the default resume delay is accepted.  (A fresh address
  // range: the throwing constructors above already claimed the default
  // one in the decoder before their config checks fired.)
  EXPECT_NO_THROW(FaultySlave(&b.top, "f5", b.bus,
                              {.base = 0x4000, .failure = Resp::kSplit}));
}

TEST(FaultySlave, RetryResponseReachesMaster) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  // Every transfer fails -> a non-retrying master records the RETRY.
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1)},
                   ScriptedMaster::Options{.retry = false});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 1});
  b.bus.finalize();
  b.run_cycles(30);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 1u);
  EXPECT_EQ(m.results()[0].resp, Resp::kRetry);
  EXPECT_EQ(fs.stats().failures, 1u);
  EXPECT_EQ(fs.stats().ok_writes, 0u);
}

TEST(FaultySlave, RetryingMasterEventuallySucceeds) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x20, 0xBEEF), read_op(0x20)},
                   ScriptedMaster::Options{.retry = true});
  // Every 2nd transfer fails: first write attempt fails, retry succeeds...
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 2});
  b.bus.finalize();
  BusMonitor::Config cfg{.fatal = false};
  BusMonitor mon(&b.top, "mon", b.bus, cfg);

  b.run_cycles(100);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.results()[0].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].data, 0xBEEFu);
  EXPECT_GT(m.retries(), 0u);
  EXPECT_EQ(fs.peek(0x20), 0xBEEFu);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(FaultySlave, MaxRetriesGivesUp) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1)},
                   ScriptedMaster::Options{.retry = true, .max_retries = 3});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 1});  // always fails
  b.bus.finalize();
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.retries(), 3u);
  EXPECT_EQ(m.results()[0].resp, Resp::kRetry);  // gave up, recorded RETRY
}

TEST(FaultySlave, ErrorsAreNotRetried) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1), read_op(0x14)},
                   ScriptedMaster::Options{.retry = true});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0,
                  .size = 0x1000,
                  .fail_every_n = 2,
                  .failure = Resp::kError});
  b.bus.finalize();
  b.run_cycles(100);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.retries(), 0u);
  // Exactly one of the two transfers hit the every-2nd failure.
  const int errors = (m.results()[0].resp == Resp::kError ? 1 : 0) +
                     (m.results()[1].resp == Resp::kError ? 1 : 0);
  EXPECT_EQ(errors, 1);
}

TEST(FaultySlave, FailureCadenceIsExact) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  std::vector<Op> script;
  for (int i = 0; i < 9; ++i) script.push_back(write_op(0x100 + 4 * i, i));
  ScriptedMaster m(&b.top, "m", b.bus, script,
                   ScriptedMaster::Options{.retry = false});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 3});
  b.bus.finalize();
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(fs.stats().failures, 3u);   // transfers 3, 6, 9
  EXPECT_EQ(fs.stats().ok_writes, 6u);
}

TEST(FaultySlave, SplitReworkEventuallySucceeds) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x30, 0xCAFE), read_op(0x30)},
                   ScriptedMaster::Options{.retry = true});
  // Every 2nd transfer SPLITs: the arbiter masks the master, the slave's
  // resume countdown re-grants it, and the re-issued transfer lands.
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0,
                  .size = 0x1000,
                  .fail_every_n = 2,
                  .failure = Resp::kSplit,
                  .split_resume_cycles = 3});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus, BusMonitor::Config{.fatal = false});

  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.results()[0].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].resp, Resp::kOkay);
  EXPECT_EQ(m.results()[1].data, 0xCAFEu);
  EXPECT_GT(m.splits(), 0u);
  EXPECT_EQ(fs.peek(0x30), 0xCAFEu);
  EXPECT_GT(b.bus.arbiter().split_count(), 0u);
  EXPECT_EQ(b.bus.arbiter().split_mask(), 0u);  // every split resumed
  EXPECT_TRUE(mon.violations().empty()) << mon.violations()[0];
  EXPECT_GT(mon.stats().split_responses, 0u);
}

TEST(FaultySlave, SplitRetryExhaustionGivesUp) {
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x10, 1)},
                   ScriptedMaster::Options{.retry = true, .max_retries = 3});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0,
                  .size = 0x1000,
                  .fail_every_n = 1,  // always SPLITs
                  .failure = Resp::kSplit,
                  .split_resume_cycles = 2});
  b.bus.finalize();
  b.run_cycles(300);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.retries(), 3u);
  EXPECT_EQ(m.splits(), 3u);
  EXPECT_EQ(m.results()[0].resp, Resp::kSplit);  // gave up, recorded SPLIT
  EXPECT_EQ(fs.stats().ok_writes, 0u);
}

TEST(MemorySlave, FaultHookInjectsSplitRework) {
  // The MemorySlave hook path: every 3rd transfer SPLITs, everything
  // retried to completion, memory ends up consistent.
  Bench b;
  DefaultMaster dm(&b.top, "dm", b.bus);
  std::vector<Op> script;
  for (int i = 0; i < 6; ++i) script.push_back(write_op(0x100 + 4 * i, 0xB0 + i));
  for (int i = 0; i < 6; ++i) script.push_back(read_op(0x100 + 4 * i));
  ScriptedMaster m(&b.top, "m", b.bus, script,
                   ScriptedMaster::Options{.retry = true, .max_retries = 8});
  MemorySlave ms(&b.top, "ms", b.bus,
                 {.base = 0,
                  .size = 0x1000,
                  .wait_states = 0,
                  .fault_hook = [](const FaultQuery& q) {
                    FaultDecision d;
                    if (q.transfer_index % 3 == 2) {
                      d.resp = Resp::kSplit;
                      d.split_resume_cycles = 2;
                    }
                    return d;
                  }});
  b.bus.finalize();
  BusMonitor mon(&b.top, "mon", b.bus, BusMonitor::Config{.fatal = false});
  b.run_cycles(400);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), script.size());
  for (std::size_t i = 0; i < m.results().size(); ++i) {
    EXPECT_EQ(m.results()[i].resp, Resp::kOkay) << "op " << i;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ms.peek(0x100 + 4 * i), 0xB0u + static_cast<unsigned>(i));
  }
  EXPECT_GT(ms.stats().splits, 0u);
  EXPECT_TRUE(mon.violations().empty()) << mon.violations()[0];
}

TEST(FaultySlave, PowerAnalysisSeesRetryTraffic) {
  // Failure cycles are bus activity too: the estimator keeps working and
  // records extra energy relative to a clean run.
  auto run = [](unsigned fail_every_n) {
    Bench b;
    DefaultMaster dm(&b.top, "dm", b.bus);
    std::vector<Op> script;
    for (int i = 0; i < 16; ++i) script.push_back(write_op(0x100 + 4 * i, 0xA0 + i));
    ScriptedMaster m(&b.top, "m", b.bus, script,
                     ScriptedMaster::Options{.retry = true});
    FaultySlave fs(&b.top, "fs", b.bus,
                   {.base = 0, .size = 0x1000, .fail_every_n = fail_every_n});
    b.bus.finalize();
    power::AhbPowerEstimator est(&b.top, "pwr", b.bus);
    b.run_cycles(400);
    return est.total_energy();
  };
  const double clean = run(1000000);  // effectively never fails
  const double faulty = run(2);
  EXPECT_GT(faulty, clean);
}

}  // namespace
}  // namespace ahbp::ahb
