// Tests for the persistent coefficient table.

#include "charlib/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "power/power_fsm.hpp"
#include "sim/report.hpp"

namespace ahbp::charlib {
namespace {

using sim::SimError;

TEST(Table, SetGetHas) {
  CoefficientTable t;
  EXPECT_FALSE(t.has("m2s", "k_in"));
  EXPECT_DOUBLE_EQ(t.get("m2s", "k_in", 7.5), 7.5);
  t.set("m2s", "k_in", 2.25);
  EXPECT_TRUE(t.has("m2s", "k_in"));
  EXPECT_DOUBLE_EQ(t.get("m2s", "k_in"), 2.25);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Table, RejectsBadNames) {
  CoefficientTable t;
  EXPECT_THROW(t.set("", "k", 1), SimError);
  EXPECT_THROW(t.set("b", "", 1), SimError);
  EXPECT_THROW(t.set("a.b", "k", 1), SimError);
  EXPECT_THROW(t.set("b", "k v", 1), SimError);
  EXPECT_THROW(t.set("b", "k=v", 1), SimError);
}

TEST(Table, SaveLoadRoundTrip) {
  CoefficientTable t;
  t.set("m2s", "k_in", 2.218671234567890123);
  t.set("m2s", "k_sel", 2.18);
  t.set("dec", "e_per_hd", 3.5e-13);
  std::stringstream ss;
  t.save(ss);
  const CoefficientTable back = CoefficientTable::load(ss);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back.get("m2s", "k_in"), t.get("m2s", "k_in"));
  EXPECT_DOUBLE_EQ(back.get("dec", "e_per_hd"), 3.5e-13);
}

TEST(Table, LoadSkipsCommentsAndBlanks) {
  std::istringstream is(
      "# header comment\n"
      "\n"
      "m2s.k_in = 1.5   # trailing comment\n"
      "   \n"
      "dec.e0 = 0\n");
  const CoefficientTable t = CoefficientTable::load(is);
  EXPECT_DOUBLE_EQ(t.get("m2s", "k_in"), 1.5);
  EXPECT_TRUE(t.has("dec", "e0"));
}

TEST(Table, LoadRejectsMalformedLines) {
  {
    std::istringstream is("m2s.k_in 1.5\n");  // missing '='
    EXPECT_THROW((void)CoefficientTable::load(is), SimError);
  }
  {
    std::istringstream is("nokeydot = 1.5\n");
    EXPECT_THROW((void)CoefficientTable::load(is), SimError);
  }
  {
    std::istringstream is("m2s.k_in = \n");
    EXPECT_THROW((void)CoefficientTable::load(is), SimError);
  }
}

TEST(Table, CharacterizationBridgeRoundTrip) {
  const auto mux = characterize_mux(16, 3, 400, 77);
  const auto dec = characterize_decoder(4, 300, 78);
  CoefficientTable t;
  t.store_mux("m2s", mux);
  t.store_decoder("dec", dec);

  std::stringstream ss;
  t.save(ss);
  const CoefficientTable back = CoefficientTable::load(ss);

  const auto k = back.mux_coefficients("m2s");
  EXPECT_DOUBLE_EQ(k.k_in, mux.calibrated.k_in);
  EXPECT_DOUBLE_EQ(k.k_sel, mux.calibrated.k_sel);
  EXPECT_DOUBLE_EQ(k.k_out, mux.calibrated.k_out);
  EXPECT_DOUBLE_EQ(back.get("dec", "e_per_hd"), dec.fit.coefficients[1]);
  EXPECT_GT(back.get("m2s", "fit_r2"), 0.5);

  // Missing block falls back to structural defaults.
  const auto defaults = back.mux_coefficients("nonexistent");
  EXPECT_DOUBLE_EQ(defaults.k_in, power::MuxModel::Coefficients{}.k_in);

  // And the loaded coefficients drop into a PowerFsm config.
  power::PowerFsm::Config cfg{.n_masters = 3, .n_slaves = 4};
  cfg.m2s_coefficients = back.mux_coefficients("m2s");
  power::PowerFsm fsm(cfg);
  power::CycleView v;
  v.data_active = true;
  v.haddr = 0xFF;
  fsm.step(v);
  v.haddr = 0x00;
  fsm.step(v);
  EXPECT_GT(fsm.total_energy(), 0.0);
}

}  // namespace
}  // namespace ahbp::charlib
