// Unit tests for the least-squares fitter and the linear solver.

#include "charlib/fit.hpp"

#include <gtest/gtest.h>

#include <random>

#include "sim/report.hpp"

namespace ahbp::charlib {
namespace {

using sim::SimError;

TEST(Solver, Solves2x2) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  const auto x = solve_linear_system({2, 1, 1, -1}, {5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Solver, PivotsOnZeroDiagonal) {
  // 0x + y = 3 ; x + 0y = 4
  const auto x = solve_linear_system({0, 1, 1, 0}, {3, 4});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solver, RejectsSingular) {
  EXPECT_THROW((void)solve_linear_system({1, 2, 2, 4}, {1, 2}), SimError);
}

TEST(Solver, RejectsShapeMismatch) {
  EXPECT_THROW((void)solve_linear_system({1, 2, 3}, {1, 2}), SimError);
}

TEST(Fit, RecoversExactLinearRelation) {
  // y = 3 + 2*x0 - x1, no noise.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::mt19937 rng(1);
  for (int i = 0; i < 50; ++i) {
    const double a = static_cast<double>(rng() % 100);
    const double b = static_cast<double>(rng() % 100);
    x.push_back({a, b});
    y.push_back(3.0 + 2.0 * a - b);
  }
  const FitResult r = fit_linear(x, y);
  ASSERT_EQ(r.coefficients.size(), 3u);
  EXPECT_NEAR(r.coefficients[0], 3.0, 1e-8);
  EXPECT_NEAR(r.coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(r.coefficients[2], -1.0, 1e-10);
  EXPECT_NEAR(r.r_squared, 1.0, 1e-12);
  EXPECT_EQ(r.samples, 50u);
}

TEST(Fit, ToleratesNoise) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::mt19937 rng(7);
  std::normal_distribution<double> noise(0.0, 0.5);
  for (int i = 0; i < 500; ++i) {
    const double a = static_cast<double>(rng() % 50);
    x.push_back({a});
    y.push_back(10.0 + 4.0 * a + noise(rng));
  }
  const FitResult r = fit_linear(x, y);
  EXPECT_NEAR(r.coefficients[0], 10.0, 0.3);
  EXPECT_NEAR(r.coefficients[1], 4.0, 0.05);
  EXPECT_GT(r.r_squared, 0.99);
}

TEST(Fit, ConstantTargetGivesInterceptOnly) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(7.0);
  }
  const FitResult r = fit_linear(x, y);
  EXPECT_NEAR(r.coefficients[0], 7.0, 1e-9);
  EXPECT_NEAR(r.coefficients[1], 0.0, 1e-9);
  EXPECT_NEAR(r.r_squared, 1.0, 1e-9);  // degenerate ss_tot handled
}

TEST(Fit, RejectsMisuse) {
  EXPECT_THROW((void)fit_linear({}, {}), SimError);
  EXPECT_THROW((void)fit_linear({{1.0}}, {1.0, 2.0}), SimError);
  // Underdetermined: 2 unknowns, 1 sample.
  EXPECT_THROW((void)fit_linear({{1.0}}, {1.0}), SimError);
  // Ragged rows.
  EXPECT_THROW((void)fit_linear({{1.0}, {1.0, 2.0}, {3.0}}, {1, 2, 3}), SimError);
}

TEST(Fit, CollinearFeaturesRejected) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    const double v = i;
    x.push_back({v, 2 * v});  // perfectly collinear
    y.push_back(v);
  }
  EXPECT_THROW((void)fit_linear(x, y), SimError);
}

}  // namespace
}  // namespace ahbp::charlib
