// Tests for the characterization flows: stimulus statistics, fitted
// macromodels tracking the gate-level reference, and the paper's decoder
// closed form validated against the generated structure.

#include "charlib/characterize.hpp"

#include <gtest/gtest.h>

#include "power/activity.hpp"
#include "sim/report.hpp"

namespace ahbp::charlib {
namespace {

using power::hamming;

TEST(Stimulus, LowActivityFlipsOneBit) {
  StimulusGen g(StimulusGen::Profile::kLowActivity, 16, 3);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t cur = g.next();
    EXPECT_EQ(hamming(prev, cur), 1u);
    prev = cur;
  }
}

TEST(Stimulus, HighActivityFlipsAllBits) {
  StimulusGen g(StimulusGen::Profile::kHighActivity, 12, 3);
  std::uint64_t prev = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t cur = g.next();
    EXPECT_EQ(hamming(prev, cur), 12u);
    prev = cur;
  }
}

TEST(Stimulus, WalkingOneIsOneHot) {
  StimulusGen g(StimulusGen::Profile::kWalkingOne, 8, 0);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t v = g.next();
    EXPECT_EQ(hamming(0, v), 1u);
  }
}

TEST(Stimulus, UniformMeanHdNearHalfWidth) {
  StimulusGen g(StimulusGen::Profile::kUniform, 32, 5);
  std::uint64_t prev = g.next();
  double total = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t cur = g.next();
    total += hamming(prev, cur);
    prev = cur;
  }
  EXPECT_NEAR(total / n, 16.0, 1.0);
}

TEST(Stimulus, SparseMostlyRepeats) {
  StimulusGen g(StimulusGen::Profile::kSparse, 32, 5);
  std::uint64_t prev = g.next();
  int repeats = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t cur = g.next();
    if (cur == prev) ++repeats;
    prev = cur;
  }
  EXPECT_GT(repeats, 250);
}

TEST(Stimulus, MasksToWidth) {
  StimulusGen g(StimulusGen::Profile::kUniform, 5, 9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(g.next(), 32u);
  }
}

TEST(CharacterizeDecoder, FitTracksGateLevel) {
  const auto r = characterize_decoder(4, 300, 42);
  EXPECT_EQ(r.samples.size(), 300u);
  // Energy is strongly HD-driven in this structure.
  EXPECT_GT(r.fit.r_squared, 0.8);
  EXPECT_GT(r.fit.coefficients[1], 0.0);  // more HD -> more energy
}

TEST(CharacterizeDecoder, PaperClosedFormIsReasonable) {
  const auto r = characterize_decoder(4, 300, 42);
  // The paper's closed form is a macromodel, not an exact law; require
  // the same order of magnitude over the run and <60% mean error.
  EXPECT_GT(r.paper_model.total_energy_model,
            0.3 * r.paper_model.total_energy_ref);
  EXPECT_LT(r.paper_model.total_energy_model,
            3.0 * r.paper_model.total_energy_ref);
  EXPECT_LT(r.paper_model.mean_rel_error, 0.6);
}

class DecoderSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecoderSizes, EnergyGrowsWithDecoderSize) {
  const auto small = characterize_decoder(GetParam(), 200, 7);
  const auto large = characterize_decoder(GetParam() * 4, 200, 7);
  EXPECT_GT(large.paper_model.total_energy_ref,
            small.paper_model.total_energy_ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecoderSizes, ::testing::Values(2u, 4u));

TEST(CharacterizeMux, FittedBeatsDefaultModel) {
  const auto r = characterize_mux(16, 3, 400, 9);
  EXPECT_EQ(r.samples.size(), 400u);
  EXPECT_GT(r.fit.r_squared, 0.7);
  // Calibration can only improve (or match) the mean error.
  EXPECT_LE(r.fitted_model.mean_rel_error, r.default_model.mean_rel_error + 1e-9);
  EXPECT_LT(r.fitted_model.mean_rel_error, 0.5);
}

TEST(CharacterizeMux, CalibratedCoefficientsPositive) {
  const auto r = characterize_mux(8, 4, 400, 11);
  EXPECT_GT(r.calibrated.k_in, 0.0);
  EXPECT_GT(r.calibrated.k_out, 0.0);
}

TEST(CharacterizeArbiter, FsmModelTracksGateLevel) {
  const auto r = characterize_arbiter(3, 500, 13);
  EXPECT_EQ(r.samples.size(), 500u);
  EXPECT_GT(r.fit.r_squared, 0.5);
  // Handover coefficient should be clearly positive.
  EXPECT_GT(r.fit.coefficients[2], 0.0);
  EXPECT_GT(r.fsm_model.total_energy_model, 0.2 * r.fsm_model.total_energy_ref);
  EXPECT_LT(r.fsm_model.total_energy_model, 5.0 * r.fsm_model.total_energy_ref);
}

TEST(Characterize, RejectsTooFewSamples) {
  EXPECT_THROW((void)characterize_decoder(4, 2, 1), sim::SimError);
  EXPECT_THROW((void)characterize_mux(8, 2, 4, 1), sim::SimError);
  EXPECT_THROW((void)characterize_arbiter(2, 4, 1), sim::SimError);
}

TEST(Characterize, DeterministicForFixedSeed) {
  const auto a = characterize_decoder(4, 100, 5);
  const auto b = characterize_decoder(4, 100, 5);
  EXPECT_EQ(a.fit.coefficients, b.fit.coefficients);
}

// -- scalar vs bit-parallel engine regression -------------------------------
// The bit-parallel engine maps trial 64*b+j to lane j of batch b and
// accounts per-lane energy in the scalar engine's net order, so every
// per-sample reference energy -- and therefore every fitted coefficient
// -- must be EXACTLY equal, not merely within tolerance. Sample counts
// are deliberately not multiples of 64 to exercise partial batches.

TEST(CharacterizeEngines, DecoderBitParallelMatchesScalarExactly) {
  const auto s = characterize_decoder(8, 330, 42, gate::Technology::default_2003(),
                                      Engine::kScalar);
  const auto b = characterize_decoder(8, 330, 42, gate::Technology::default_2003(),
                                      Engine::kBitParallel);
  ASSERT_EQ(s.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    ASSERT_EQ(s.samples[i].energy, b.samples[i].energy) << "sample " << i;
    ASSERT_EQ(s.samples[i].features, b.samples[i].features) << "sample " << i;
  }
  EXPECT_EQ(s.fit.coefficients, b.fit.coefficients);
  EXPECT_EQ(s.fit.r_squared, b.fit.r_squared);
  EXPECT_EQ(s.paper_model.total_energy_ref, b.paper_model.total_energy_ref);
}

TEST(CharacterizeEngines, MuxBitParallelMatchesScalarExactly) {
  const auto s =
      characterize_mux(16, 3, 250, 9, gate::Technology::default_2003(),
                       Engine::kScalar);
  const auto b =
      characterize_mux(16, 3, 250, 9, gate::Technology::default_2003(),
                       Engine::kBitParallel);
  ASSERT_EQ(s.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    ASSERT_EQ(s.samples[i].energy, b.samples[i].energy) << "sample " << i;
    ASSERT_EQ(s.samples[i].features, b.samples[i].features) << "sample " << i;
  }
  EXPECT_EQ(s.fit.coefficients, b.fit.coefficients);
  EXPECT_EQ(s.calibrated.k_in, b.calibrated.k_in);
  EXPECT_EQ(s.calibrated.k_sel, b.calibrated.k_sel);
  EXPECT_EQ(s.calibrated.k_out, b.calibrated.k_out);
  EXPECT_EQ(s.fitted_model.mean_abs_error, b.fitted_model.mean_abs_error);
}

TEST(CharacterizeEngines, ArbiterBitParallelMatchesScalarExactly) {
  const auto s = characterize_arbiter(3, 470, 13, gate::Technology::default_2003(),
                                      Engine::kScalar);
  const auto b = characterize_arbiter(3, 470, 13, gate::Technology::default_2003(),
                                      Engine::kBitParallel);
  ASSERT_EQ(s.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    ASSERT_EQ(s.samples[i].energy, b.samples[i].energy) << "cycle " << i;
    ASSERT_EQ(s.samples[i].features, b.samples[i].features) << "cycle " << i;
  }
  EXPECT_EQ(s.fit.coefficients, b.fit.coefficients);
  EXPECT_EQ(s.fsm_model.total_energy_ref, b.fsm_model.total_energy_ref);
}

}  // namespace
}  // namespace ahbp::charlib
