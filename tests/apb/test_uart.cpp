// Tests for the APB UART transmitter: frame format on the TX line,
// FIFO semantics, divider behavior, end-to-end through the bridge.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "apb/apb.hpp"
#include "sim/sim.hpp"

namespace ahbp::apb {
namespace {

using ahb::ScriptedMaster;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }
Op idle_op(unsigned n) { return Op{Op::Kind::kIdle, 0, 0, n}; }

/// Samples the TX line every clock and decodes 8N1 frames.
struct UartDecoder : sim::Module {
  UartDecoder(sim::Module* parent, sim::Clock& clk, sim::Signal<bool>& tx,
              unsigned divider)
      : Module(parent, "decoder"),
        tx_(tx),
        divider_(divider),
        proc_(this, "sample", [this] { sample(); }) {
    proc_.sensitive(clk.negedge_event()).dont_initialize();
  }

  void sample() {
    const bool level = tx_.read();
    if (state_ == State::kIdle) {
      if (!level) {  // start bit detected
        state_ = State::kBits;
        count_ = 0;
        bit_ = 0;
        byte_ = 0;
      }
      return;
    }
    if (++count_ % divider_ != 0) return;  // one sample per bit time
    if (state_ == State::kBits) {
      if (bit_ < 8) {
        byte_ |= (level ? 1u : 0u) << bit_;
        ++bit_;
      } else {
        // stop bit
        stop_ok = stop_ok && level;
        received.push_back(static_cast<std::uint8_t>(byte_));
        state_ = State::kIdle;
      }
    }
  }

  sim::Signal<bool>& tx_;
  unsigned divider_;
  enum class State { kIdle, kBits } state_ = State::kIdle;
  unsigned count_ = 0;
  unsigned bit_ = 0;
  std::uint32_t byte_ = 0;
  bool stop_ok = true;
  std::vector<std::uint8_t> received;
  sim::Method proc_;
};

struct UartBench {
  explicit UartBench(std::vector<Op> script)
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        master(&top, "m", bus, std::move(script)),
        bridge(&top, "bridge", bus, {.base = 0x8000, .size = 0x1000}),
        uart(&top, "uart", bridge, 0x000) {
    bus.finalize();
    bridge.finalize();
  }
  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  ahb::AhbBus bus;
  ahb::DefaultMaster dm;
  ScriptedMaster master;
  AhbToApbBridge bridge;
  ApbUartTx uart;
};

TEST(Uart, TransmitsBytesAsSerialFrames) {
  UartBench b({write_op(0x8000 + ApbUartTx::kDiv, 4),
               write_op(0x8000 + ApbUartTx::kData, 0x55),
               write_op(0x8000 + ApbUartTx::kData, 0xA3)});
  UartDecoder dec(&b.top, b.clk, b.uart.tx(), 4);
  b.run_cycles(300);
  EXPECT_EQ(b.uart.bytes_sent(), 2u);
  ASSERT_EQ(dec.received.size(), 2u);
  EXPECT_EQ(dec.received[0], 0x55);
  EXPECT_EQ(dec.received[1], 0xA3);
  EXPECT_TRUE(dec.stop_ok);
}

TEST(Uart, LineIdlesHigh) {
  UartBench b({idle_op(4)});
  b.run_cycles(50);
  EXPECT_TRUE(b.uart.tx().read());
  EXPECT_EQ(b.uart.bytes_sent(), 0u);
}

TEST(Uart, StatusReflectsBusyAndFifo) {
  UartBench b({write_op(0x8000 + ApbUartTx::kDiv, 16),
               write_op(0x8000 + ApbUartTx::kData, 0x42),
               read_op(0x8000 + ApbUartTx::kStatus),
               idle_op(400),
               read_op(0x8000 + ApbUartTx::kStatus)});
  b.run_cycles(600);
  ASSERT_TRUE(b.master.finished());
  // results: [0] DIV write, [1] DATA write, [2] first STATUS read,
  // [3] second STATUS read (idle ops record nothing).
  ASSERT_EQ(b.master.results().size(), 4u);
  // Right after enqueue: busy (bit0). Long after: idle.
  EXPECT_EQ(b.master.results()[2].data & 1u, 1u);
  EXPECT_EQ(b.master.results()[3].data & 1u, 0u);
}

TEST(Uart, FifoFullDropsExtraBytes) {
  std::vector<Op> script;
  script.push_back(write_op(0x8000 + ApbUartTx::kDiv, 128));  // very slow
  for (int i = 0; i < 12; ++i) {
    script.push_back(write_op(0x8000 + ApbUartTx::kData, i));
  }
  script.push_back(read_op(0x8000 + ApbUartTx::kStatus));
  UartBench b(script);
  b.run_cycles(600);
  ASSERT_TRUE(b.master.finished());
  // FIFO depth 8 (+1 in the shifter): level capped, full flag seen.
  EXPECT_LE(b.uart.fifo_level(), ApbUartTx::kFifoDepth);
  EXPECT_EQ(b.master.results().back().data & 2u, 2u);
}

TEST(Uart, DividerStretchesBitTimes) {
  // Same byte at two dividers: the slow one takes proportionally longer.
  auto cycles_to_send = [](unsigned divider) {
    UartBench b({write_op(0x8000 + ApbUartTx::kDiv, divider),
                 write_op(0x8000 + ApbUartTx::kData, 0xFF)});
    unsigned cycles = 0;
    while (b.uart.bytes_sent() == 0 && cycles < 4000) {
      b.run_cycles(10);
      cycles += 10;
    }
    return cycles;
  };
  const unsigned fast = cycles_to_send(2);
  const unsigned slow = cycles_to_send(16);
  EXPECT_GT(slow, 3 * fast);
}

TEST(Uart, BackToBackFramesKeepStopBit) {
  // With two queued bytes the decoder must still see both stop bits
  // (full-width stop between frames).
  UartBench b({write_op(0x8000 + ApbUartTx::kDiv, 2),
               write_op(0x8000 + ApbUartTx::kData, 0x00),
               write_op(0x8000 + ApbUartTx::kData, 0xFF)});
  UartDecoder dec(&b.top, b.clk, b.uart.tx(), 2);
  b.run_cycles(200);
  ASSERT_EQ(dec.received.size(), 2u);
  EXPECT_EQ(dec.received[0], 0x00);
  EXPECT_EQ(dec.received[1], 0xFF);
  EXPECT_TRUE(dec.stop_ok);
}

}  // namespace
}  // namespace ahbp::apb
