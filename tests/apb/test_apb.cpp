// Tests for the APB side: bridge protocol (SETUP/ENABLE, wait states on
// the AHB side), register file and timer peripherals, decode errors, and
// the APB power monitor.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "apb/apb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::apb {
namespace {

using ahb::ScriptedMaster;
using sim::SimError;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }
Op idle_op(unsigned n) { return Op{Op::Kind::kIdle, 0, 0, n}; }

/// AHB system with an APB subsystem behind a bridge at 0x8000.
struct ApbBench {
  ApbBench()
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        ram(&top, "ram", bus, {.base = 0x0000, .size = 0x1000}),
        bridge(&top, "bridge", bus, {.base = 0x8000, .size = 0x1000}),
        regs(&top, "regs", bridge, 0x000, 0x100),
        timer(&top, "timer", bridge, 0x100) {}

  void finalize() {
    bus.finalize();
    bridge.finalize();
  }
  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  ahb::AhbBus bus;
  ahb::DefaultMaster dm;
  ahb::MemorySlave ram;
  AhbToApbBridge bridge;
  ApbRegisterFile regs;
  ApbTimer timer;
};

TEST(Bridge, RejectsBadConfigs) {
  ApbBench b;
  EXPECT_THROW(ApbRegisterFile(&b.top, "r1", b.bridge, 0x800, 0),
               SimError);
  EXPECT_THROW(ApbRegisterFile(&b.top, "r2", b.bridge, 0x080, 0x100),
               SimError);  // overlaps regs at 0x000..0x100
  EXPECT_THROW(ApbRegisterFile(&b.top, "r3", b.bridge, 0xF00, 0x200),
               SimError);  // exceeds APB window
}

TEST(Bridge, WriteAndReadBackThroughBridge) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x8010, 0xFACE0FF5), read_op(0x8010)});
  b.finalize();
  ahb::BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  ASSERT_EQ(m.results().size(), 2u);
  EXPECT_EQ(m.results()[0].resp, ahb::Resp::kOkay);
  EXPECT_EQ(m.results()[1].data, 0xFACE0FF5u);
  EXPECT_EQ(b.regs.peek(0x10), 0xFACE0FF5u);
  EXPECT_EQ(b.bridge.stats().apb_writes, 1u);
  EXPECT_EQ(b.bridge.stats().apb_reads, 1u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Bridge, AccessesInsertWaitStates) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x8000, 1)});
  b.finalize();
  ahb::BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  // The conversion costs several wait cycles (sample + setup + enable).
  EXPECT_GE(mon.stats().wait_cycles, 3u);
}

TEST(Bridge, FastMemoryUnaffectedByBridgeTraffic) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x0100, 0xAA), write_op(0x8000, 0xBB),
                    read_op(0x0100)});
  b.finalize();
  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[2].data, 0xAAu);
}

TEST(Bridge, UnmappedApbAddressErrors) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x8800, 1), idle_op(4)});
  b.finalize();
  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[0].resp, ahb::Resp::kError);
  EXPECT_EQ(b.bridge.stats().decode_errors, 1u);
}

TEST(Bridge, BackToBackAccessesAllComplete) {
  ApbBench b;
  std::vector<Op> script;
  for (int i = 0; i < 6; ++i) script.push_back(write_op(0x8000 + 4 * i, 0x50 + i));
  for (int i = 0; i < 6; ++i) script.push_back(read_op(0x8000 + 4 * i));
  ScriptedMaster m(&b.top, "m", b.bus, script);
  b.finalize();
  ahb::BusMonitor mon(&b.top, "mon", b.bus);
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(m.results()[6 + i].data, 0x50u + i) << i;
  }
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Timer, CountsWhenEnabled) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x8100 + ApbTimer::kCtrl, 1),  // enable
                    idle_op(50),
                    read_op(0x8100 + ApbTimer::kCount)});
  b.finalize();
  b.run_cycles(150);
  ASSERT_TRUE(m.finished());
  const std::uint32_t count = m.results()[1].data;
  EXPECT_GT(count, 40u);
  EXPECT_LT(count, 120u);
  EXPECT_TRUE(b.timer.enabled());
}

TEST(Timer, DisabledTimerHoldsCount) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x8100 + ApbTimer::kCtrl, 1), idle_op(20),
                    write_op(0x8100 + ApbTimer::kCtrl, 0),  // disable
                    read_op(0x8100 + ApbTimer::kCount), idle_op(30),
                    read_op(0x8100 + ApbTimer::kCount)});
  b.finalize();
  b.run_cycles(250);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[2].data, m.results()[3].data);
}

TEST(Timer, ClearResetsCount) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x8100 + ApbTimer::kCtrl, 1), idle_op(30),
                    write_op(0x8100 + ApbTimer::kCtrl, 3),  // enable + clear
                    read_op(0x8100 + ApbTimer::kCount)});
  b.finalize();
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_LT(m.results()[2].data, 20u);  // cleared recently
}

TEST(Timer, CompareMatchLatchesAndClears) {
  ApbBench b;
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x8100 + ApbTimer::kCompare, 10),
                    write_op(0x8100 + ApbTimer::kCtrl, 3),  // enable, clear
                    idle_op(40),
                    read_op(0x8100 + ApbTimer::kStatus),
                    write_op(0x8100 + ApbTimer::kStatus, 1),  // clear flag
                    read_op(0x8100 + ApbTimer::kStatus)});
  b.finalize();
  b.run_cycles(300);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[2].data, 1u);  // matched
  EXPECT_EQ(m.results()[4].data, 0u);  // cleared
}

TEST(RegisterFile, PokePeekBackdoor) {
  ApbBench b;
  b.regs.poke(0x20, 0x1234);
  ScriptedMaster m(&b.top, "m", b.bus, {read_op(0x8020)});
  b.finalize();
  b.run_cycles(40);
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.results()[0].data, 0x1234u);
}

TEST(ApbPower, MonitorAccumulatesOnTraffic) {
  ApbBench b;
  std::vector<Op> script;
  for (int i = 0; i < 8; ++i) script.push_back(write_op(0x8000 + 4 * i, 0xFF00FF00u >> (i % 8)));
  ScriptedMaster m(&b.top, "m", b.bus, script);
  b.finalize();
  ApbPowerMonitor pwr(&b.top, "apb_pwr", b.bridge);
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_GT(pwr.total_energy(), 0.0);
  EXPECT_GT(pwr.cycles(), 100u);
  EXPECT_NE(pwr.activity().find("paddr"), nullptr);
  EXPECT_GT(pwr.activity().find("pwdata")->bit_change_count(), 0u);
}

TEST(ApbPower, IdleApbBusCostsNothing) {
  ApbBench b;
  // Traffic only to AHB RAM; the APB side never moves.
  ScriptedMaster m(&b.top, "m", b.bus,
                   {write_op(0x0100, 1), read_op(0x0100)});
  b.finalize();
  ApbPowerMonitor pwr(&b.top, "apb_pwr", b.bridge);
  b.run_cycles(60);
  ASSERT_TRUE(m.finished());
  EXPECT_DOUBLE_EQ(pwr.total_energy(), 0.0);
}

TEST(ApbPower, ModelScalesWithFanout) {
  const gate::Technology tech;
  ApbPowerModel small(1, tech), big(8, tech);
  EXPECT_GT(big.energy(10, 2), small.energy(10, 2));
  EXPECT_DOUBLE_EQ(small.energy(0, 0), 0.0);
  EXPECT_THROW(ApbPowerModel(0, tech), SimError);
}

TEST(ApbPower, HierarchicalTotalIncludesBothBuses) {
  // The methodology composes: AHB estimator + APB monitor give the
  // system-level energy picture across the bus hierarchy.
  ApbBench b;
  std::vector<Op> script;
  for (int i = 0; i < 4; ++i) {
    script.push_back(write_op(0x0100 + 4 * i, i));       // AHB RAM
    script.push_back(write_op(0x8000 + 4 * i, i * 3));   // APB regs
  }
  ScriptedMaster m(&b.top, "m", b.bus, script);
  b.finalize();
  power::AhbPowerEstimator ahb_pwr(&b.top, "ahb_pwr", b.bus);
  ApbPowerMonitor apb_pwr(&b.top, "apb_pwr", b.bridge);
  b.run_cycles(200);
  ASSERT_TRUE(m.finished());
  EXPECT_GT(ahb_pwr.total_energy(), 0.0);
  EXPECT_GT(apb_pwr.total_energy(), 0.0);
  // The AHB side dominates (wider, busier).
  EXPECT_GT(ahb_pwr.total_energy(), apb_pwr.total_energy());
}

}  // namespace
}  // namespace ahbp::apb
