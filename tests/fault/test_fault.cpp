// Fault-plan and injector tests: the schedule is a pure function of
// (seed, slave, transfer index), rates are honoured, and a faulted
// simulation produces bit-identical joules regardless of thread count
// (the determinism smoke for the campaign runner).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ahb/ahb.hpp"
#include "campaign/campaign.hpp"
#include "fault/injector.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::fault {
namespace {

using sim::SimError;

TEST(FaultU01, DeterministicAndUniformRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = fault_u01(42, 1, i, 0x7265737021ULL);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, fault_u01(42, 1, i, 0x7265737021ULL));  // pure
  }
  // Distinct inputs decorrelate on every axis.
  EXPECT_NE(fault_u01(1, 0, 0, 0), fault_u01(2, 0, 0, 0));
  EXPECT_NE(fault_u01(1, 0, 0, 0), fault_u01(1, 1, 0, 0));
  EXPECT_NE(fault_u01(1, 0, 0, 0), fault_u01(1, 0, 1, 0));
  EXPECT_NE(fault_u01(1, 0, 0, 0), fault_u01(1, 0, 0, 1));
}

TEST(FaultPlan, RejectsBadConfigs) {
  EXPECT_THROW(FaultPlan::uniform(1, {.retry_rate = -0.1}, 1), SimError);
  EXPECT_THROW(FaultPlan::uniform(1, {.retry_rate = 1.5}, 1), SimError);
  EXPECT_THROW(
      FaultPlan::uniform(1, {.retry_rate = 0.5, .error_rate = 0.6}, 1),
      SimError);
  EXPECT_THROW(
      FaultPlan::uniform(1, {.split_rate = 0.1, .split_resume_cycles = 0}, 1),
      SimError);
  EXPECT_THROW(
      FaultPlan::uniform(1, {.jitter_rate = 0.1, .max_extra_waits = 0}, 1),
      SimError);
  EXPECT_NO_THROW(FaultPlan::uniform(1, {}, 4));
}

TEST(FaultPlan, ScheduleIsPureAndOrderIndependent) {
  const FaultPlan plan = FaultPlan::uniform(
      7, {.retry_rate = 0.2, .error_rate = 0.1, .split_rate = 0.1}, 2);
  ahb::FaultQuery q;
  q.transfer_index = 123;
  const ahb::FaultDecision first = plan.decide(0, q);
  // Consuming other decisions in between must not perturb it.
  for (std::uint64_t i = 0; i < 50; ++i) {
    ahb::FaultQuery other;
    other.transfer_index = i;
    (void)plan.decide(1, other);
  }
  const ahb::FaultDecision again = plan.decide(0, q);
  EXPECT_EQ(first.resp, again.resp);
  EXPECT_EQ(first.extra_waits, again.extra_waits);
}

TEST(FaultPlan, CertainRatesForceTheVerdict) {
  ahb::FaultQuery q;
  for (std::uint64_t i = 0; i < 20; ++i) {
    q.transfer_index = i;
    EXPECT_EQ(FaultPlan::uniform(3, {.retry_rate = 1.0}, 1).decide(0, q).resp,
              ahb::Resp::kRetry);
    EXPECT_EQ(FaultPlan::uniform(3, {.error_rate = 1.0}, 1).decide(0, q).resp,
              ahb::Resp::kError);
    const ahb::FaultDecision split =
        FaultPlan::uniform(3, {.split_rate = 1.0, .split_resume_cycles = 6}, 1)
            .decide(0, q);
    EXPECT_EQ(split.resp, ahb::Resp::kSplit);
    EXPECT_EQ(split.split_resume_cycles, 6u);
    const ahb::FaultDecision jitter =
        FaultPlan::uniform(3, {.jitter_rate = 1.0, .max_extra_waits = 3}, 1)
            .decide(0, q);
    EXPECT_EQ(jitter.resp, ahb::Resp::kOkay);
    EXPECT_GE(jitter.extra_waits, 1u);
    EXPECT_LE(jitter.extra_waits, 3u);
  }
}

TEST(FaultPlan, EmpiricalRateMatchesConfiguredRate) {
  const FaultPlan plan = FaultPlan::uniform(99, {.retry_rate = 0.3}, 1);
  int retries = 0;
  ahb::FaultQuery q;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    q.transfer_index = static_cast<std::uint64_t>(i);
    if (plan.decide(0, q).resp == ahb::Resp::kRetry) ++retries;
  }
  const double rate = static_cast<double>(retries) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultPlan, BurstInterruptHitsSeqBeatsOnly) {
  const FaultPlan plan =
      FaultPlan::uniform(5, {.burst_interrupt_rate = 1.0}, 1);
  ahb::FaultQuery q;
  q.htrans = ahb::Trans::kSeq;
  EXPECT_EQ(plan.decide(0, q).resp, ahb::Resp::kRetry);
  q.htrans = ahb::Trans::kNonSeq;
  EXPECT_EQ(plan.decide(0, q).resp, ahb::Resp::kOkay);
}

TEST(FaultPlan, SlavesBeyondConfigGetNoFaults) {
  const FaultPlan plan = FaultPlan::uniform(5, {.retry_rate = 1.0}, 2);
  ahb::FaultQuery q;
  EXPECT_EQ(plan.decide(0, q).resp, ahb::Resp::kRetry);
  EXPECT_EQ(plan.decide(7, q).resp, ahb::Resp::kOkay);
}

TEST(FaultInjector, StatsAndMetricsCountVerdicts) {
  telemetry::MetricsRegistry metrics;
  FaultInjector injector(
      FaultPlan::uniform(
          11, {.retry_rate = 0.3, .error_rate = 0.3, .split_rate = 0.3}, 1),
      &metrics);
  ahb::FaultHook hook = injector.hook(0);
  ahb::FaultQuery q;
  for (std::uint64_t i = 0; i < 300; ++i) {
    q.transfer_index = i;
    (void)hook(q);
  }
  const FaultInjector::Stats& s = injector.stats();
  EXPECT_EQ(s.decisions, 300u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.errors, 0u);
  EXPECT_GT(s.splits, 0u);
  EXPECT_EQ(metrics.counter("ahb.fault.decisions").value(), s.decisions);
  EXPECT_EQ(metrics.counter("ahb.fault.retries").value(), s.retries);
  EXPECT_EQ(metrics.counter("ahb.fault.errors").value(), s.errors);
  EXPECT_EQ(metrics.counter("ahb.fault.splits").value(), s.splits);
  EXPECT_EQ(metrics.counter("ahb.fault.jitter_cycles").value(),
            s.jitter_cycles);
}

/// A complete faulted AHB simulation as a campaign spec: traffic master,
/// two fault-injected slaves, power estimator. Everything is seeded, so
/// the run is a pure function of (seed, fault_seed).
campaign::RunSpec faulted_spec(std::uint64_t seed, std::uint64_t fault_seed) {
  return {"faulted/s" + std::to_string(seed), [seed, fault_seed] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5,
                           sim::SimTime::ns(10));
            ahb::AhbBus bus(&top, "ahb", clk, {});
            ahb::DefaultMaster dm(&top, "dm", bus);
            ahb::TrafficMaster m1(
                &top, "m1", bus,
                {.addr_base = 0x0000, .addr_range = 0x2000, .seed = seed});
            FaultInjector injector(FaultPlan::uniform(
                fault_seed,
                {.retry_rate = 0.05, .error_rate = 0.01, .jitter_rate = 0.1},
                2));
            ahb::MemorySlave s1(&top, "s1", bus,
                                {.base = 0x0000,
                                 .size = 0x1000,
                                 .fault_hook = injector.hook(0)});
            ahb::MemorySlave s2(&top, "s2", bus,
                                {.base = 0x1000,
                                 .size = 0x1000,
                                 .fault_hook = injector.hook(1)});
            bus.finalize();
            power::AhbPowerEstimator est(&top, "power", bus);
            kernel.run(sim::SimTime::us(5));

            campaign::PowerReport r;
            r.total_energy = est.total_energy();
            r.blocks = est.block_totals();
            r.cycles = est.fsm().cycles();
            // The fault schedule itself, exported for the bit-identity
            // check across thread counts.
            r.metrics["fault_retries"] =
                static_cast<double>(injector.stats().retries);
            r.metrics["fault_errors"] =
                static_cast<double>(injector.stats().errors);
            r.metrics["fault_jitter_cycles"] =
                static_cast<double>(injector.stats().jitter_cycles);
            return r;
          }};
}

TEST(FaultInjector, SameSeedBitIdenticalAcrossThreadCounts) {
  std::vector<campaign::RunSpec> specs;
  for (std::uint64_t seed : {3u, 5u, 8u, 13u}) {
    specs.push_back(faulted_spec(seed, 21));
  }
  const auto serial = campaign::Campaign({.threads = 1}).run(specs);
  const auto parallel = campaign::Campaign({.threads = 4}).run(specs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    // Same fault seed => same schedule and the same joules, bit for bit.
    EXPECT_EQ(std::memcmp(&serial[i].report.total_energy,
                          &parallel[i].report.total_energy, sizeof(double)),
              0)
        << "run " << i;
    EXPECT_EQ(serial[i].report.cycles, parallel[i].report.cycles);
    EXPECT_EQ(serial[i].report.metrics.at("fault_retries"),
              parallel[i].report.metrics.at("fault_retries"));
    EXPECT_EQ(serial[i].report.metrics.at("fault_errors"),
              parallel[i].report.metrics.at("fault_errors"));
    EXPECT_EQ(serial[i].report.metrics.at("fault_jitter_cycles"),
              parallel[i].report.metrics.at("fault_jitter_cycles"));
    // And the schedule actually injected something.
    EXPECT_GT(serial[i].report.metrics.at("fault_retries"), 0.0);
  }
}

}  // namespace
}  // namespace ahbp::fault
