// Tests for the multi-layer TLM interconnect: parallelism, contention,
// energy accounting per layer.

#include "tlm/multilayer.hpp"

#include <gtest/gtest.h>

#include "sim/report.hpp"

namespace ahbp::tlm {
namespace {

using sim::SimError;

TEST(Multilayer, RejectsBadConfigs) {
  EXPECT_THROW(MultilayerBus(MultilayerBus::Config{.n_masters = 0}), SimError);
  MultilayerBus bus({.n_masters = 2});
  TlmMemory a, b;
  bus.map(a, 0, 0x100);
  EXPECT_THROW(bus.map(b, 0x80, 0x100), SimError);
  EXPECT_THROW(bus.map(b, 0x200, 0), SimError);
}

TEST(Multilayer, DisjointTrafficRunsInParallel) {
  MultilayerBus bus({.n_masters = 2});
  TlmMemory s0, s1;
  bus.map(s0, 0x0000, 0x1000);
  bus.map(s1, 0x1000, 0x1000);
  for (int i = 0; i < 100; ++i) {
    bus.write(0, 0x0000 + 4 * i, i);
    bus.write(1, 0x1000 + 4 * i, i);
  }
  // Each layer did 100 cycles; global time = max, not sum.
  EXPECT_EQ(bus.layer_cycles(0), 100u);
  EXPECT_EQ(bus.layer_cycles(1), 100u);
  EXPECT_EQ(bus.cycles(), 100u);
  EXPECT_EQ(bus.transfers(), 200u);
  EXPECT_EQ(bus.contention_cycles(), 0u);
}

TEST(Multilayer, SameSlaveTrafficSerializes) {
  MultilayerBus bus({.n_masters = 2});
  TlmMemory s0;
  bus.map(s0, 0x0000, 0x1000);
  for (int i = 0; i < 50; ++i) {
    bus.write(0, 4 * i, i);
    bus.write(1, 4 * i, i + 1000);
  }
  // The slave's input stage serializes: layers stall on each other.
  EXPECT_GT(bus.contention_cycles(), 40u);
  EXPECT_GE(bus.cycles(), 99u);  // ~2 transfers per global cycle impossible
}

TEST(Multilayer, DataIntegrityAcrossLayers) {
  MultilayerBus bus({.n_masters = 3});
  TlmMemory s0;
  bus.map(s0, 0x0000, 0x1000);
  bus.write(0, 0x10, 0xA);
  bus.write(1, 0x14, 0xB);
  bus.write(2, 0x18, 0xC);
  std::uint32_t v = 0;
  bus.read(2, 0x10, v);
  EXPECT_EQ(v, 0xAu);
  bus.read(0, 0x18, v);
  EXPECT_EQ(v, 0xCu);
}

TEST(Multilayer, EnergyAccumulatesPerLayer) {
  MultilayerBus bus({.n_masters = 2});
  TlmMemory s0, s1;
  bus.map(s0, 0x0000, 0x1000);
  bus.map(s1, 0x1000, 0x1000);
  for (int i = 0; i < 64; ++i) bus.write(0, 4 * i, 0xFFFFFFFFu * (i & 1));
  EXPECT_GT(bus.layer_fsm(0).total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(bus.layer_fsm(1).total_energy(), 0.0);  // layer 1 idle
  EXPECT_NEAR(bus.total_energy(), bus.layer_fsm(0).total_energy(), 1e-18);
}

TEST(Multilayer, MoreLayersMoreFabricEnergyForSameWork) {
  // The same serialized workload costs more on a multi-layer fabric than
  // on a shared bus (duplicated input stages must still be clocked while
  // a layer stalls) -- quantified by the topology bench; here we assert
  // the qualitative ordering for the contended case.
  auto shared_energy = [] {
    TlmBus bus(TlmBus::Config{.n_masters = 2});
    TlmMemory s;
    bus.map(s, 0, 0x1000);
    std::mt19937_64 rng(3);
    for (int i = 0; i < 500; ++i) {
      bus.write(i % 2, 4 * (rng() % 256), static_cast<std::uint32_t>(rng()));
    }
    return bus.total_energy();
  }();
  auto multi_energy = [] {
    MultilayerBus bus({.n_masters = 2});
    TlmMemory s;
    bus.map(s, 0, 0x1000);
    std::mt19937_64 rng(3);
    for (int i = 0; i < 500; ++i) {
      bus.write(i % 2, 4 * (rng() % 256), static_cast<std::uint32_t>(rng()));
    }
    return bus.total_energy();
  }();
  EXPECT_GT(multi_energy, shared_energy);
}

TEST(Multilayer, UnmappedAccessCountsError) {
  MultilayerBus bus({.n_masters = 1});
  TlmMemory s;
  bus.map(s, 0, 0x100);
  std::uint32_t v;
  EXPECT_FALSE(bus.read(0, 0xFFFF, v));
}

}  // namespace
}  // namespace ahbp::tlm
