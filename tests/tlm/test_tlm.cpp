// Tests for the transaction-level model: functional behaviour, cycle
// accounting, and power-FSM agreement with the cycle-accurate model.

#include "tlm/tlm.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::tlm {
namespace {

TEST(TlmMemory, ReadWritePeekPoke) {
  TlmMemory mem;
  std::uint32_t v = 1;
  EXPECT_EQ(mem.read(0x10, v), 0u);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(mem.write(0x10, 0xABCD), 0u);
  mem.read(0x10, v);
  EXPECT_EQ(v, 0xABCDu);
  mem.poke(0x20, 7);
  EXPECT_EQ(mem.peek(0x20), 7u);
}

TEST(TlmMemory, WaitStatesReported) {
  TlmMemory mem(3);
  std::uint32_t v;
  EXPECT_EQ(mem.read(0, v), 3u);
  EXPECT_EQ(mem.write(0, 1), 3u);
}

TEST(TlmBus, MapRejectsOverlap) {
  TlmBus bus({});
  TlmMemory a, b;
  bus.map(a, 0x0000, 0x1000);
  EXPECT_THROW(bus.map(b, 0x0800, 0x1000), sim::SimError);
  EXPECT_THROW(bus.map(b, 0x2000, 0), sim::SimError);
  EXPECT_NO_THROW(bus.map(b, 0x1000, 0x1000));
}

TEST(TlmBus, TransfersRouteAndCount) {
  TlmBus bus({});
  TlmMemory a, b;
  bus.map(a, 0x0000, 0x1000);
  bus.map(b, 0x1000, 0x1000);
  bus.write(0, 0x0010, 0xAA);
  bus.write(1, 0x1010, 0xBB);
  std::uint32_t v = 0;
  bus.read(0, 0x0010, v);
  EXPECT_EQ(v, 0xAAu);
  bus.read(1, 0x1010, v);
  EXPECT_EQ(v, 0xBBu);
  EXPECT_EQ(a.peek(0x10), 0xAAu);
  EXPECT_EQ(b.peek(0x10), 0xBBu);
  EXPECT_EQ(bus.transfers(), 4u);
  EXPECT_EQ(bus.cycles(), 4u);
}

TEST(TlmBus, UnmappedAccessErrors) {
  TlmBus bus({});
  TlmMemory a;
  bus.map(a, 0, 0x100);
  std::uint32_t v;
  EXPECT_FALSE(bus.read(0, 0x9999, v));
  EXPECT_FALSE(bus.write(0, 0x9999, 1));
  EXPECT_EQ(bus.errors(), 2u);
}

TEST(TlmBus, WaitStatesConsumeCycles) {
  TlmBus bus({});
  TlmMemory slow(2);
  bus.map(slow, 0, 0x100);
  bus.write(0, 0, 1);
  EXPECT_EQ(bus.cycles(), 3u);  // 2 waits + 1 completion
}

TEST(TlmBus, IdleCyclesFeedThePowerFsm) {
  TlmBus bus({});
  TlmMemory a;
  bus.map(a, 0, 0x100);
  bus.idle(10);
  EXPECT_EQ(bus.cycles(), 10u);
  EXPECT_EQ(bus.fsm().cycles(), 10u);
  // Idle cycles still clock the arbiter model: tiny but non-zero energy.
  EXPECT_GT(bus.total_energy(), 0.0);
  EXPECT_LT(bus.total_energy(), 1e-12);
}

TEST(TlmBus, EnergyGrowsWithPayloadActivity) {
  auto run = [](std::uint32_t pattern) {
    TlmBus bus({});
    TlmMemory a;
    bus.map(a, 0, 0x1000);
    for (int i = 0; i < 100; ++i) {
      bus.write(0, 0x10, i % 2 == 0 ? pattern : 0u);
    }
    return bus.total_energy();
  };
  EXPECT_GT(run(0xFFFFFFFF), run(0x00000001));
}

TEST(TlmRunner, ReadsBackWhatItWrote) {
  TlmBus bus({});
  TlmMemory a;
  bus.map(a, 0, 0x1000);
  TlmTrafficRunner runner(bus, 1, {.addr_base = 0, .addr_range = 0x1000, .seed = 3});
  runner.run_until(5000);
  EXPECT_GT(runner.writes(), 100u);
  EXPECT_EQ(runner.writes(), runner.reads());
  EXPECT_EQ(runner.mismatches(), 0u);
}

TEST(TlmVsCycleAccurate, EnergyPerCycleAgrees) {
  // The same workload shape on both abstraction levels must land within
  // a modest factor in energy per cycle (the TLM folds away intra-
  // transfer signal detail, so exact agreement is not expected).
  // --- TLM ---
  TlmBus tlm_bus(TlmBus::Config{.n_masters = 3});
  TlmMemory m1, m2;
  tlm_bus.map(m1, 0x0000, 0x1000);
  tlm_bus.map(m2, 0x1000, 0x1000);
  TlmTrafficRunner r1(tlm_bus, 1,
                      {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 101});
  TlmTrafficRunner r2(tlm_bus, 2,
                      {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 202});
  r1.run_until(2500);
  r2.run_until(5000);
  const double tlm_epc =
      tlm_bus.total_energy() / static_cast<double>(tlm_bus.cycles());

  // --- cycle-accurate ---
  double ca_epc = 0.0;
  {
    sim::Kernel k;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TrafficMaster tm1(&top, "m1", bus,
                           {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 101});
    ahb::TrafficMaster tm2(&top, "m2", bus,
                           {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 202});
    ahb::MemorySlave s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000});
    ahb::MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
    bus.finalize();
    power::AhbPowerEstimator est(&top, "power", bus);
    k.run(sim::SimTime::us(50));
    ca_epc = est.total_energy() / static_cast<double>(est.fsm().cycles());
  }

  const double ratio = tlm_epc / ca_epc;
  EXPECT_GT(ratio, 0.4) << "tlm " << tlm_epc << " vs ca " << ca_epc;
  EXPECT_LT(ratio, 2.5) << "tlm " << tlm_epc << " vs ca " << ca_epc;
}

}  // namespace
}  // namespace ahbp::tlm
