// Write-ahead journal: exact outcome round-trips, torn-tail tolerance,
// corruption rejection, resume-skip semantics, and the end-to-end
// guarantee -- a campaign SIGKILLed mid-sweep resumes to a report
// byte-identical to an uninterrupted run.

#include "campaign/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"

namespace ahbp::campaign {
namespace {

namespace fs = std::filesystem;

/// A fully populated outcome with awkward doubles: the round trip must
/// be exact to the bit, not merely close.
RunOutcome sample_outcome(std::size_t index) {
  RunOutcome out;
  out.index = index;
  out.name = "cfg/" + std::to_string(index);
  out.ok = true;
  out.status = RunStatus::kOk;
  out.wall_seconds = 0.1 + static_cast<double>(index);
  out.attempts = 1;
  PowerReport& r = out.report;
  r.total_energy = 1.0 / 3.0 + static_cast<double>(index);
  r.blocks.arb = 0.1 * static_cast<double>(index + 1);
  r.blocks.dec = std::nextafter(0.2, 1.0);
  r.blocks.m2s = 1e-300;
  r.blocks.s2m = 12345.6789;
  r.cycles = 100000 + index;
  r.transfers = 4242;
  r.metrics["data_share"] = 0.123456789012345678;
  r.metrics["arb_share"] = 1e-17;
  r.attribution = {{0.5, 7}, {1.0 / 7.0, 3}};
  r.bus_energy_j = 2.0 / 3.0;
  return out;
}

RunOutcome failed_outcome() {
  RunOutcome out;
  out.index = 3;
  out.name = "bad \"quoted\"\nname";
  out.ok = false;
  out.status = RunStatus::kCrashed;
  out.term_signal = SIGSEGV;
  out.error = "worker crashed with signal 11 (SIGSEGV)";
  out.wall_seconds = 0.25;
  out.attempts = 2;
  return out;
}

/// Field-exact equality (doubles compared by bit pattern via ==; the
/// journal stores raw bits so even that is exact).
void expect_outcomes_equal(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.term_signal, b.term_signal);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.report.total_energy, b.report.total_energy);
  EXPECT_EQ(a.report.blocks.arb, b.report.blocks.arb);
  EXPECT_EQ(a.report.blocks.dec, b.report.blocks.dec);
  EXPECT_EQ(a.report.blocks.m2s, b.report.blocks.m2s);
  EXPECT_EQ(a.report.blocks.s2m, b.report.blocks.s2m);
  EXPECT_EQ(a.report.cycles, b.report.cycles);
  EXPECT_EQ(a.report.transfers, b.report.transfers);
  EXPECT_EQ(a.report.metrics, b.report.metrics);
  ASSERT_EQ(a.report.attribution.size(), b.report.attribution.size());
  for (std::size_t i = 0; i < a.report.attribution.size(); ++i) {
    EXPECT_EQ(a.report.attribution[i].energy_j,
              b.report.attribution[i].energy_j);
    EXPECT_EQ(a.report.attribution[i].txns, b.report.attribution[i].txns);
  }
  EXPECT_EQ(a.report.bus_energy_j, b.report.bus_energy_j);
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ahbp_journal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    file_ = dir_ / "campaign.journal";
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in(file_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void dump(const std::string& bytes) const {
    std::ofstream out(file_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  fs::path file_;
};

TEST_F(JournalTest, EncodeDecodeRoundTripsExactly) {
  for (const RunOutcome& original : {sample_outcome(0), failed_outcome()}) {
    RunOutcome decoded;
    ASSERT_TRUE(decode_outcome(encode_outcome(original), decoded));
    expect_outcomes_equal(original, decoded);
  }
}

TEST_F(JournalTest, DecodeRejectsMalformedPayloads) {
  const std::string good = encode_outcome(sample_outcome(1));
  RunOutcome out;
  EXPECT_FALSE(decode_outcome("", out));
  EXPECT_FALSE(decode_outcome(good.substr(0, good.size() / 2), out));
  EXPECT_FALSE(decode_outcome(good + "x", out));  // trailing bytes
}

TEST_F(JournalTest, WriterCreatesHeaderAndLoaderRoundTrips) {
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(0));
    writer.append(failed_outcome());
  }
  const std::string bytes = slurp();
  ASSERT_GE(bytes.size(), kJournalHeaderBytes);
  EXPECT_EQ(bytes.substr(0, kJournalHeaderBytes),
            std::string(kJournalSchema) + "\nconfig=0000000000000000\n");

  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_FALSE(loaded.torn_tail);
  EXPECT_EQ(loaded.valid_bytes, bytes.size());
  ASSERT_EQ(loaded.outcomes.size(), 2u);
  expect_outcomes_equal(sample_outcome(0), loaded.outcomes[0]);
  expect_outcomes_equal(failed_outcome(), loaded.outcomes[1]);
  for (const RunOutcome& o : loaded.outcomes) EXPECT_TRUE(o.resumed);
}

TEST_F(JournalTest, MissingFileLoadsEmpty) {
  const JournalLoadResult loaded = load_journal(file_);
  EXPECT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.outcomes.empty());
}

TEST_F(JournalTest, WriterAppendsAcrossReopens) {
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(0));
  }
  {
    JournalWriter writer(file_);  // the post-crash reopen
    writer.append(sample_outcome(1));
  }
  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_EQ(loaded.outcomes.size(), 2u);
}

TEST_F(JournalTest, WriterRefusesForeignFile) {
  dump("not a journal at all\n");
  EXPECT_THROW(JournalWriter{file_}, std::runtime_error);
}

TEST_F(JournalTest, TornTailIsTolerated) {
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(0));
    writer.append(sample_outcome(1));
  }
  const std::string bytes = slurp();
  // Cut the file mid-way through the second frame: the crash shape.
  const std::string header_and_one =
      bytes.substr(0, kJournalHeaderBytes + 12 +
                          encode_outcome(sample_outcome(0)).size());
  dump(header_and_one + bytes.substr(header_and_one.size(), 7));
  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_TRUE(loaded.torn_tail);
  EXPECT_EQ(loaded.valid_bytes, header_and_one.size());
  ASSERT_EQ(loaded.outcomes.size(), 1u);
  expect_outcomes_equal(sample_outcome(0), loaded.outcomes[0]);
}

TEST_F(JournalTest, ReopenTruncatesTornTailBeforeAppending) {
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(0));
    writer.append(sample_outcome(1));
  }
  const std::string bytes = slurp();
  const std::size_t one_frame_size =
      kJournalHeaderBytes + 12 + encode_outcome(sample_outcome(0)).size();
  // Leave a 7-byte partial second frame: the kill-mid-append shape.
  dump(bytes.substr(0, one_frame_size + 7));

  // The post-crash reopen must truncate the tail; appending after it
  // would otherwise let the torn frame's length field span the new
  // bytes and poison every frame journaled from here on.
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(2));
    writer.append(failed_outcome());
  }
  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_FALSE(loaded.torn_tail);
  ASSERT_EQ(loaded.outcomes.size(), 3u);
  expect_outcomes_equal(sample_outcome(0), loaded.outcomes[0]);
  expect_outcomes_equal(sample_outcome(2), loaded.outcomes[1]);
  expect_outcomes_equal(failed_outcome(), loaded.outcomes[2]);
}

TEST_F(JournalTest, ConfigFingerprintRoundTripsAndGuardsReopen) {
  {
    JournalWriter writer(file_, 0xdeadbeefcafe1234ull);
    writer.append(sample_outcome(0));
  }
  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.config_fingerprint, 0xdeadbeefcafe1234ull);

  // Same fingerprint reopens fine; a different campaign is refused.
  EXPECT_NO_THROW(JournalWriter(file_, 0xdeadbeefcafe1234ull));
  EXPECT_THROW(JournalWriter(file_, 0x1111111111111111ull),
               std::runtime_error);
  // 0 = caller opted out of the check (e.g. ad-hoc tooling).
  EXPECT_NO_THROW(JournalWriter(file_, 0));
}

TEST_F(JournalTest, SchemaLineWithoutConfigLineIsRejected) {
  dump(std::string(kJournalSchema) + "\n");
  EXPECT_FALSE(load_journal(file_).ok());
  EXPECT_THROW(JournalWriter{file_}, std::runtime_error);
}

TEST_F(JournalTest, CorruptCompleteFrameIsRejected) {
  {
    JournalWriter writer(file_);
    writer.append(sample_outcome(0));
  }
  std::string bytes = slurp();
  bytes[bytes.size() - 3] ^= 0x5a;  // flip payload bits, length intact
  dump(bytes);
  const JournalLoadResult loaded = load_journal(file_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos) << loaded.error;
  // A writer must refuse to append after corruption, not bury it.
  EXPECT_THROW(JournalWriter{file_}, std::runtime_error);
}

TEST_F(JournalTest, HeaderlessFileIsRejected) {
  dump("garbage");
  EXPECT_FALSE(load_journal(file_).ok());
}

// --- resume semantics through Campaign::run --------------------------------

/// Synthetic spec whose execution count is observable.
RunSpec counting_spec(std::string name, double energy, int* counter) {
  return RunSpec{std::move(name), [energy, counter] {
                   ++*counter;
                   PowerReport r;
                   r.total_energy = energy;
                   r.cycles = 10;
                   return r;
                 }};
}

TEST_F(JournalTest, ResumeSkipsJournaledRunsAndRunsTheRest) {
  int runs0 = 0;
  int runs1 = 0;
  std::vector<RunSpec> specs;
  specs.push_back(counting_spec("a", 1.0, &runs0));
  specs.push_back(counting_spec("b", 2.0, &runs1));

  const Campaign pool(Campaign::Config{.threads = 1});
  {
    JournalWriter writer(file_);
    Campaign::RunOptions opts;
    opts.journal = &writer;
    const auto first = pool.run({specs[0]}, opts);
    ASSERT_TRUE(first[0].ok) << first[0].error;
  }
  ASSERT_EQ(runs0, 1);

  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  JournalWriter writer(file_);
  Campaign::RunOptions opts;
  opts.journal = &writer;
  opts.resume = &loaded.outcomes;
  const auto outcomes = pool.run(specs, opts);

  EXPECT_EQ(runs0, 1) << "journaled run must not re-execute";
  EXPECT_EQ(runs1, 1);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[0].resumed);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[1].resumed);
  EXPECT_EQ(outcomes[0].report.total_energy, 1.0);
  EXPECT_EQ(outcomes[1].report.total_energy, 2.0);

  // Only the newly executed run was appended.
  const JournalLoadResult after = load_journal(file_);
  ASSERT_TRUE(after.ok()) << after.error;
  ASSERT_EQ(after.outcomes.size(), 2u);
  EXPECT_EQ(after.outcomes[1].name, "b");
}

/// Scoped RLIMIT_FSIZE clamp: writes past the limit fail with EFBIG
/// (SIGXFSZ ignored for the duration) -- a portable stand-in for a
/// full disk.
class FileSizeLimit {
 public:
  explicit FileSizeLimit(rlim_t bytes) {
    ::getrlimit(RLIMIT_FSIZE, &old_);
    old_handler_ = ::signal(SIGXFSZ, SIG_IGN);
    const rlimit lim{bytes, old_.rlim_max};
    ::setrlimit(RLIMIT_FSIZE, &lim);
  }
  ~FileSizeLimit() {
    ::setrlimit(RLIMIT_FSIZE, &old_);
    ::signal(SIGXFSZ, old_handler_);
  }

 private:
  rlimit old_{};
  void (*old_handler_)(int) = nullptr;
};

TEST_F(JournalTest, AppendFailureIsDeferredNotFatalWhenRequested) {
  JournalWriter writer(file_);
  const std::size_t journal_size = slurp().size();

  int runs = 0;
  std::vector<RunSpec> specs;
  specs.push_back(counting_spec("a", 1.0, &runs));
  const Campaign pool(Campaign::Config{.threads = 1});
  Campaign::RunOptions opts;
  opts.journal = &writer;

  const FileSizeLimit no_space(journal_size);  // next append hits "disk full"

  // With journal_error set, the outcomes survive the journal failure.
  std::string journal_error;
  opts.journal_error = &journal_error;
  const auto outcomes = pool.run(specs, opts);
  EXPECT_EQ(runs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_NE(journal_error.find("append"), std::string::npos) << journal_error;

  // Without it, the legacy contract: run() completes, then throws.
  opts.journal_error = nullptr;
  EXPECT_THROW((void)pool.run(specs, opts), std::runtime_error);
}

TEST_F(JournalTest, ResumeEntryMustMatchIndexAndName) {
  int runs = 0;
  std::vector<RunSpec> specs;
  specs.push_back(counting_spec("renamed", 1.0, &runs));

  RunOutcome stale = sample_outcome(0);
  stale.name = "original";  // spec list changed since the journal
  const std::vector<RunOutcome> resume{stale};
  const Campaign pool(Campaign::Config{.threads = 1});
  Campaign::RunOptions opts;
  opts.resume = &resume;
  const auto outcomes = pool.run(specs, opts);
  EXPECT_EQ(runs, 1) << "mismatched journal entry must not be trusted";
  EXPECT_FALSE(outcomes[0].resumed);
}

/// Deterministic all-ok report render (the byte-identity oracle).
std::string render(const std::vector<RunOutcome>& outcomes) {
  std::ostringstream os;
  write_campaign_json(
      os, outcomes,
      CampaignReportMeta{.name = "kill-resume", .cycles = 10, .threads = 1});
  return os.str();
}

/// Specs for the kill-resume scenario. When `lethal` is true the third
/// spec SIGKILLs its own process -- the hard-crash shape the journal
/// exists for.
std::vector<RunSpec> kill_specs(bool lethal) {
  std::vector<RunSpec> specs;
  static int sink = 0;  // counters are irrelevant here
  specs.push_back(counting_spec("s0", 1.25, &sink));
  specs.push_back(counting_spec("s1", 2.5, &sink));
  specs.push_back(RunSpec{"s2", [lethal] {
                            if (lethal) (void)::raise(SIGKILL);
                            PowerReport r;
                            r.total_energy = 3.75;
                            r.cycles = 10;
                            return r;
                          }});
  specs.push_back(counting_spec("s3", 5.0, &sink));
  return specs;
}

TEST_F(JournalTest, KillResumeReportIsByteIdentical) {
  // Phase 1: a child process runs the campaign serially with a journal
  // and is SIGKILLed by its third spec -- runs 0 and 1 are already
  // durable, nothing else is.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    JournalWriter writer(file_);
    const Campaign pool(Campaign::Config{.threads = 1});
    Campaign::RunOptions opts;
    opts.journal = &writer;
    (void)pool.run(kill_specs(/*lethal=*/true), opts);
    ::_exit(0);  // unreachable: spec s2 kills the process
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Phase 2: resume. The journal must hold exactly the two completed
  // runs; the resumed campaign re-executes only s2 (now healthy) and s3.
  const JournalLoadResult loaded = load_journal(file_);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_FALSE(loaded.torn_tail);
  ASSERT_EQ(loaded.outcomes.size(), 2u);
  EXPECT_EQ(loaded.outcomes[0].name, "s0");
  EXPECT_EQ(loaded.outcomes[1].name, "s1");

  JournalWriter writer(file_);
  const Campaign pool(Campaign::Config{.threads = 1});
  Campaign::RunOptions opts;
  opts.journal = &writer;
  opts.resume = &loaded.outcomes;
  const auto resumed = pool.run(kill_specs(/*lethal=*/false), opts);
  ASSERT_EQ(resumed.size(), 4u);
  for (const auto& o : resumed) EXPECT_TRUE(o.ok) << o.error;

  // The oracle: an uninterrupted campaign over the same specs.
  const auto uninterrupted = pool.run(kill_specs(/*lethal=*/false));
  EXPECT_EQ(render(resumed), render(uninterrupted));
}

}  // namespace
}  // namespace ahbp::campaign
