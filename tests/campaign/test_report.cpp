// Tests for the campaign JSON report: structure, failure capture, and
// the byte-identical determinism contract across thread counts.

#include "campaign/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/campaign.hpp"
#include "sim/sim.hpp"

namespace ahbp::campaign {
namespace {

/// Synthetic spec: no simulation, just a deterministic report.
RunSpec synthetic_spec(std::string name, double energy) {
  return RunSpec{std::move(name), [energy] {
                   PowerReport r;
                   r.total_energy = energy;
                   r.blocks.arb = energy * 0.25;
                   r.blocks.dec = energy * 0.25;
                   r.blocks.m2s = energy * 0.25;
                   r.blocks.s2m = energy * 0.25;
                   r.cycles = 100;
                   r.transfers = 42;
                   r.metrics["zeta"] = 2.0;   // key order must win over
                   r.metrics["alpha"] = 1.0;  // insertion order
                   return r;
                 }};
}

std::string render(const std::vector<RunOutcome>& outcomes, unsigned threads) {
  std::ostringstream os;
  write_campaign_json(
      os, outcomes,
      CampaignReportMeta{.name = "test", .cycles = 100, .threads = threads});
  return os.str();
}

TEST(CampaignReport, GoldenStructure) {
  const Campaign pool(Campaign::Config{.threads = 1});
  const auto outcomes = pool.run({synthetic_spec("a", 1.5)});
  EXPECT_EQ(render(outcomes, 1),
            "{\n"
            "  \"schema\": \"ahbpower.campaign.v4\",\n"
            "  \"name\": \"test\",\n"
            "  \"cycles\": 100,\n"
            "  \"threads\": 1,\n"
            "  \"runs\": [\n"
            "    {\"index\": 0, \"name\": \"a\", \"ok\": true, \"status\": "
            "\"ok\", \"cycles\": "
            "100, \"transfers\": 42, \"total_energy_j\": 1.5, \"blocks_j\": "
            "{\"arb\": 0.375, \"dec\": 0.375, \"m2s\": 0.375, \"s2m\": "
            "0.375}, \"metrics\": {\"alpha\": 1, \"zeta\": 2}}\n"
            "  ],\n"
            "  \"aggregate\": {\"runs\": 1, \"failed\": 0, "
            "\"total_energy_j\": 1.5, \"min_energy_j\": 1.5, "
            "\"max_energy_j\": 1.5}\n"
            "}\n");
}

TEST(CampaignReport, AttributionBlockRendersWhenPopulated) {
  RunSpec spec{"attr", [] {
                 PowerReport r;
                 r.total_energy = 2.0;
                 r.cycles = 10;
                 r.bus_energy_j = 0.5;
                 r.attribution = {{1.0, 7}, {0.5, 3}};
                 return r;
               }};
  const Campaign pool(Campaign::Config{.threads = 1});
  const std::string json = render(pool.run({std::move(spec)}), 1);
  EXPECT_NE(json.find("\"attribution\": {\"bus_energy_j\": 0.5, \"masters\": "
                      "[{\"energy_j\": 1, \"txns\": 7}, "
                      "{\"energy_j\": 0.5, \"txns\": 3}]}"),
            std::string::npos)
      << json;
  // v1 fields survive alongside the v2 addition.
  EXPECT_NE(json.find("\"total_energy_j\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"blocks_j\": "), std::string::npos);
}

TEST(CampaignReport, NoAttributionBlockWithoutData) {
  const Campaign pool(Campaign::Config{.threads = 1});
  const std::string json = render(pool.run({synthetic_spec("a", 1.0)}), 1);
  EXPECT_EQ(json.find("\"attribution\""), std::string::npos);
}

TEST(CampaignReport, CapturesFailures) {
  std::vector<RunSpec> specs;
  specs.push_back(synthetic_spec("good", 2.0));
  specs.push_back(RunSpec{"bad", []() -> PowerReport {
                            throw sim::SimError("deliberate");
                          }});
  const Campaign pool(Campaign::Config{.threads = 1});
  const auto outcomes = pool.run(specs);
  const std::string json = render(outcomes, 1);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("deliberate"), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  // Aggregate energy statistics cover successful runs only.
  EXPECT_NE(json.find("\"total_energy_j\": 2, \"min_energy_j\": 2, "
                      "\"max_energy_j\": 2"),
            std::string::npos);
  // v3/v4: failed runs are listed again in the degraded block, with the
  // wall time and attempt count that healthy output must not carry.
  // v4 extends the counts with crash and resume provenance.
  EXPECT_NE(json.find("\"degraded\": {\"count\": 1, \"failed\": 1, "
                      "\"timed_out\": 0, \"cancelled\": 0, \"crashed\": 0, "
                      "\"resumed\": 0"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"signal\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
}

TEST(CampaignReport, NoDegradedBlockWhenAllRunsSucceed) {
  const Campaign pool(Campaign::Config{.threads = 1});
  const std::string json = render(pool.run({synthetic_spec("a", 1.0)}), 1);
  EXPECT_EQ(json.find("\"degraded\""), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
}

TEST(CampaignReport, ByteIdenticalAcrossThreadCounts) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 8; ++i) {
    specs.push_back(synthetic_spec("run" + std::to_string(i), 0.5 + i));
  }
  const Campaign serial(Campaign::Config{.threads = 1});
  const Campaign parallel(Campaign::Config{.threads = 4});
  // Same meta.threads in both renders: the report records the campaign
  // configuration, not scheduling accidents; outcomes must not differ.
  const std::string a = render(serial.run(specs), 4);
  const std::string b = render(parallel.run(specs), 4);
  EXPECT_EQ(a, b);
}

TEST(CampaignReport, EmptyCampaign) {
  const std::string json = render({}, 1);
  EXPECT_NE(json.find("\"runs\": [\n  ]"), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 0, \"failed\": 0"), std::string::npos);
}

}  // namespace
}  // namespace ahbp::campaign
