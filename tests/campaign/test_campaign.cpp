// Campaign runner: deterministic result ordering, parallel-vs-serial
// bit-identical power reports, and per-run error capture.

#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::campaign {
namespace {

/// A complete small AHB simulation as a spec: one traffic master, two
/// slaves, a power estimator; the whole system lives and dies on the
/// executing thread. Seeded, so identical per rerun.
RunSpec ahb_spec(std::uint64_t seed, unsigned wait_states) {
  return {"ahb/s" + std::to_string(seed), [seed, wait_states] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5,
                           sim::SimTime::ns(10));
            ahb::AhbBus bus(&top, "ahb", clk, {});
            ahb::DefaultMaster dm(&top, "dm", bus);
            ahb::TrafficMaster m1(
                &top, "m1", bus,
                {.addr_base = 0x0000, .addr_range = 0x2000, .seed = seed});
            ahb::MemorySlave s1(&top, "s1", bus,
                                {.base = 0x0000,
                                 .size = 0x1000,
                                 .wait_states = wait_states});
            ahb::MemorySlave s2(&top, "s2", bus,
                                {.base = 0x1000,
                                 .size = 0x1000,
                                 .wait_states = wait_states});
            bus.finalize();
            power::AhbPowerEstimator est(&top, "power", bus);
            kernel.run(sim::SimTime::us(5));

            PowerReport r;
            r.total_energy = est.total_energy();
            r.blocks = est.block_totals();
            r.cycles = est.fsm().cycles();
            return r;
          }};
}

std::vector<RunSpec> sample_specs() {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    specs.push_back(ahb_spec(seed, seed % 3));
  }
  return specs;
}

TEST(Campaign, OutcomesOrderedBySpecIndex) {
  const auto specs = sample_specs();
  const Campaign pool(Campaign::Config{.threads = 4});
  const auto outcomes = pool.run(specs);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].name, specs[i].name);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_GT(outcomes[i].report.cycles, 0u);
    EXPECT_GT(outcomes[i].report.total_energy, 0.0);
  }
}

TEST(Campaign, ParallelIsBitIdenticalToSerial) {
  const auto specs = sample_specs();
  const Campaign serial(Campaign::Config{.threads = 1});
  const Campaign parallel(Campaign::Config{.threads = 4});
  const auto a = serial.run(specs);
  const auto b = parallel.run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same seeds => same joules, bit for bit.
    EXPECT_EQ(std::memcmp(&a[i].report.total_energy, &b[i].report.total_energy,
                          sizeof(double)),
              0)
        << "run " << i << ": " << a[i].report.total_energy << " vs "
        << b[i].report.total_energy;
    EXPECT_EQ(a[i].report.cycles, b[i].report.cycles);
    EXPECT_EQ(std::memcmp(&a[i].report.blocks.arb, &b[i].report.blocks.arb,
                          sizeof(double)),
              0);
  }
}

TEST(Campaign, ThrowingSpecIsCapturedOthersComplete) {
  std::vector<RunSpec> specs;
  specs.push_back(ahb_spec(7, 0));
  specs.push_back({"boom", []() -> PowerReport {
                     throw std::runtime_error("intentional failure");
                   }});
  specs.push_back(ahb_spec(9, 1));
  const Campaign pool(Campaign::Config{.threads = 2});
  const auto outcomes = pool.run(specs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].status, RunStatus::kFailed);
  // The error names the spec, then carries the exception text.
  EXPECT_EQ(outcomes[1].error.find("spec[1] boom: "), 0u) << outcomes[1].error;
  EXPECT_NE(outcomes[1].error.find("intentional failure"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
}

/// A spec that simulates forever: a free-running clock and an unbounded
/// run() call. Only a campaign budget can end it.
RunSpec hung_spec() {
  return {"hung", [] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5,
                           sim::SimTime::ns(10));
            kernel.run();
            return PowerReport{};
          }};
}

TEST(Campaign, HungAndCrashingSpecsDegradeOthersUnaffected) {
  // The acceptance scenario: one hung spec, one crashing spec, two
  // healthy ones. The campaign completes, classifies both casualties
  // with wall times, and the healthy runs' joules are bit-identical to
  // a fault-free rerun of the same seeds.
  std::vector<RunSpec> specs;
  specs.push_back(ahb_spec(7, 0));
  specs.push_back(hung_spec());
  specs.push_back({"crash", []() -> PowerReport {
                     throw std::runtime_error("intentional crash");
                   }});
  specs.push_back(ahb_spec(9, 1));

  Campaign::Config cfg;
  cfg.threads = 2;
  // Generous enough for the healthy ~1000-advance runs, fatal for the
  // unbounded one.
  cfg.run_budget.max_cycles = 100000;
  const auto outcomes = Campaign(cfg).run(specs);

  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[3].ok) << outcomes[3].error;

  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].status, RunStatus::kTimedOut);
  EXPECT_GT(outcomes[1].wall_seconds, 0.0);
  EXPECT_EQ(outcomes[1].error.find("spec[1] hung: "), 0u) << outcomes[1].error;
  EXPECT_NE(outcomes[1].error.find("max-cycle budget"), std::string::npos);

  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].status, RunStatus::kFailed);
  EXPECT_GE(outcomes[2].wall_seconds, 0.0);
  EXPECT_NE(outcomes[2].error.find("intentional crash"), std::string::npos);

  // Fault-free rerun of the surviving seeds, unlimited budget.
  const auto clean = Campaign(Campaign::Config{.threads = 2})
                         .run({ahb_spec(7, 0), ahb_spec(9, 1)});
  ASSERT_TRUE(clean[0].ok);
  ASSERT_TRUE(clean[1].ok);
  EXPECT_EQ(std::memcmp(&outcomes[0].report.total_energy,
                        &clean[0].report.total_energy, sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&outcomes[3].report.total_energy,
                        &clean[1].report.total_energy, sizeof(double)),
            0);
}

TEST(Campaign, RetryTransientSalvagesATransientCrash) {
  std::atomic<int> calls{0};
  std::vector<RunSpec> specs;
  specs.push_back({"flaky", [&]() -> PowerReport {
                     if (calls.fetch_add(1) == 0) {
                       throw std::runtime_error("transient");
                     }
                     return PowerReport{};
                   }});
  specs.push_back({"doomed", []() -> PowerReport {
                     throw std::runtime_error("deterministic");
                   }});
  Campaign::Config cfg;
  cfg.threads = 1;
  cfg.retry_transient = true;
  const auto outcomes = Campaign(cfg).run(specs);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].attempts, 2u);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].attempts, 2u);
  EXPECT_EQ(outcomes[1].status, RunStatus::kFailed);
}

TEST(Campaign, WallDeadlineCancelsUnstartedSpecs) {
  Campaign::Config cfg;
  cfg.threads = 1;
  cfg.campaign_wall_seconds = 1e-9;  // passed before the first claim
  const auto outcomes = Campaign(cfg).run(sample_specs());
  for (const RunOutcome& o : outcomes) {
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.status, RunStatus::kCancelled);
    EXPECT_EQ(o.attempts, 0u);
    EXPECT_NE(o.error.find("not started"), std::string::npos) << o.error;
  }
}

TEST(Campaign, EmptySpecListYieldsEmptyOutcomes) {
  const Campaign pool;
  EXPECT_TRUE(pool.run({}).empty());
}

TEST(Campaign, ThreadConfigResolution) {
  EXPECT_GE(Campaign::hardware_threads(), 1u);
  EXPECT_GE(Campaign().threads(), 1u);
  EXPECT_EQ(Campaign(Campaign::Config{.threads = 3}).threads(), 3u);
}

}  // namespace
}  // namespace ahbp::campaign
