// Campaign runner: deterministic result ordering, parallel-vs-serial
// bit-identical power reports, and per-run error capture.

#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::campaign {
namespace {

/// A complete small AHB simulation as a spec: one traffic master, two
/// slaves, a power estimator; the whole system lives and dies on the
/// executing thread. Seeded, so identical per rerun.
RunSpec ahb_spec(std::uint64_t seed, unsigned wait_states) {
  return {"ahb/s" + std::to_string(seed), [seed, wait_states] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5,
                           sim::SimTime::ns(10));
            ahb::AhbBus bus(&top, "ahb", clk, {});
            ahb::DefaultMaster dm(&top, "dm", bus);
            ahb::TrafficMaster m1(
                &top, "m1", bus,
                {.addr_base = 0x0000, .addr_range = 0x2000, .seed = seed});
            ahb::MemorySlave s1(&top, "s1", bus,
                                {.base = 0x0000,
                                 .size = 0x1000,
                                 .wait_states = wait_states});
            ahb::MemorySlave s2(&top, "s2", bus,
                                {.base = 0x1000,
                                 .size = 0x1000,
                                 .wait_states = wait_states});
            bus.finalize();
            power::AhbPowerEstimator est(&top, "power", bus);
            kernel.run(sim::SimTime::us(5));

            PowerReport r;
            r.total_energy = est.total_energy();
            r.blocks = est.block_totals();
            r.cycles = est.fsm().cycles();
            return r;
          }};
}

std::vector<RunSpec> sample_specs() {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    specs.push_back(ahb_spec(seed, seed % 3));
  }
  return specs;
}

TEST(Campaign, OutcomesOrderedBySpecIndex) {
  const auto specs = sample_specs();
  const Campaign pool(Campaign::Config{.threads = 4});
  const auto outcomes = pool.run(specs);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].name, specs[i].name);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_GT(outcomes[i].report.cycles, 0u);
    EXPECT_GT(outcomes[i].report.total_energy, 0.0);
  }
}

TEST(Campaign, ParallelIsBitIdenticalToSerial) {
  const auto specs = sample_specs();
  const Campaign serial(Campaign::Config{.threads = 1});
  const Campaign parallel(Campaign::Config{.threads = 4});
  const auto a = serial.run(specs);
  const auto b = parallel.run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same seeds => same joules, bit for bit.
    EXPECT_EQ(std::memcmp(&a[i].report.total_energy, &b[i].report.total_energy,
                          sizeof(double)),
              0)
        << "run " << i << ": " << a[i].report.total_energy << " vs "
        << b[i].report.total_energy;
    EXPECT_EQ(a[i].report.cycles, b[i].report.cycles);
    EXPECT_EQ(std::memcmp(&a[i].report.blocks.arb, &b[i].report.blocks.arb,
                          sizeof(double)),
              0);
  }
}

TEST(Campaign, ThrowingSpecIsCapturedOthersComplete) {
  std::vector<RunSpec> specs;
  specs.push_back(ahb_spec(7, 0));
  specs.push_back({"boom", []() -> PowerReport {
                     throw std::runtime_error("intentional failure");
                   }});
  specs.push_back(ahb_spec(9, 1));
  const Campaign pool(Campaign::Config{.threads = 2});
  const auto outcomes = pool.run(specs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error, "intentional failure");
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(Campaign, EmptySpecListYieldsEmptyOutcomes) {
  const Campaign pool;
  EXPECT_TRUE(pool.run({}).empty());
}

TEST(Campaign, ThreadConfigResolution) {
  EXPECT_GE(Campaign::hardware_threads(), 1u);
  EXPECT_GE(Campaign().threads(), 1u);
  EXPECT_EQ(Campaign(Campaign::Config{.threads = 3}).threads(), 3u);
}

}  // namespace
}  // namespace ahbp::campaign
