// Process-isolated campaign workers: healthy runs bit-identical to
// thread mode, hard crashes contained as kCrashed outcomes with the
// signal recorded, wall budgets enforced by the parent, and transient
// crashes salvaged by a respawn.

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"

namespace ahbp::campaign {
namespace {

namespace fs = std::filesystem;

// ASan and TSan intercept SIGSEGV and turn the death into a nonzero
// exit, so crash tests assert the exact signal only for signals no
// sanitizer can catch (SIGKILL) and settle for "contained as kCrashed"
// otherwise.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSignalInterceptingSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSignalInterceptingSanitizer = true;
#else
constexpr bool kSignalInterceptingSanitizer = false;
#endif
#else
constexpr bool kSignalInterceptingSanitizer = false;
#endif

/// Deterministic synthetic spec exercising the full report surface
/// (metrics, attribution) so the pipe serialization is fully covered.
RunSpec synthetic_spec(std::string name, double energy) {
  return RunSpec{std::move(name), [energy] {
                   PowerReport r;
                   r.total_energy = energy;
                   r.blocks.arb = energy / 3.0;
                   r.blocks.dec = energy / 7.0;
                   r.blocks.m2s = energy / 11.0;
                   r.blocks.s2m = energy / 13.0;
                   r.cycles = 1000;
                   r.transfers = 77;
                   r.metrics["data_share"] = energy / 17.0;
                   r.metrics["arb_share"] = energy / 19.0;
                   r.attribution = {{energy / 2.0, 5}, {energy / 4.0, 2}};
                   r.bus_energy_j = energy / 4.0;
                   return r;
                 }};
}

std::vector<RunSpec> healthy_specs() {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(
        synthetic_spec("run" + std::to_string(i), 0.25 + 0.5 * i));
  }
  return specs;
}

std::string render(const std::vector<RunOutcome>& outcomes) {
  std::ostringstream os;
  write_campaign_json(
      os, outcomes,
      CampaignReportMeta{.name = "isolation", .cycles = 1000, .threads = 2});
  return os.str();
}

TEST(Isolation, HealthyRunsBitIdenticalToThreadMode) {
  const auto specs = healthy_specs();
  const Campaign threaded(
      Campaign::Config{.threads = 2, .isolation = Isolation::kThread});
  const Campaign forked(
      Campaign::Config{.threads = 2, .isolation = Isolation::kProcess});
  const auto a = threaded.run(specs);
  const auto b = forked.run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(a[i].report.total_energy, b[i].report.total_energy);
    EXPECT_EQ(a[i].report.metrics, b[i].report.metrics);
  }
  EXPECT_EQ(render(a), render(b));
}

TEST(Isolation, SigkillBecomesCrashedOutcomeWithSignal) {
  std::vector<RunSpec> specs = healthy_specs();
  specs.insert(specs.begin() + 2, RunSpec{"killer", []() -> PowerReport {
                                            (void)::raise(SIGKILL);
                                            return {};
                                          }});
  const Campaign pool(
      Campaign::Config{.threads = 2, .isolation = Isolation::kProcess});
  const auto outcomes = pool.run(specs);
  ASSERT_EQ(outcomes.size(), specs.size());

  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].status, RunStatus::kCrashed);
  EXPECT_EQ(outcomes[2].term_signal, SIGKILL);
  EXPECT_NE(outcomes[2].error.find("SIGKILL"), std::string::npos)
      << outcomes[2].error;

  // Every other run survives the neighbor's death, bit-identically.
  const Campaign threaded(Campaign::Config{.threads = 2});
  const auto reference = threaded.run(healthy_specs());
  for (std::size_t i = 0, j = 0; i < outcomes.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].report.total_energy,
              reference[j].report.total_energy);
    ++j;
  }
}

TEST(Isolation, SegfaultIsContained) {
  std::vector<RunSpec> specs;
  specs.push_back(synthetic_spec("before", 1.0));
  specs.push_back(RunSpec{"segv", []() -> PowerReport {
                            volatile int* p = nullptr;
                            *p = 42;  // NOLINT: the point of the test
                            return {};
                          }});
  specs.push_back(synthetic_spec("after", 2.0));
  const Campaign pool(
      Campaign::Config{.threads = 1, .isolation = Isolation::kProcess});
  const auto outcomes = pool.run(specs);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].status, RunStatus::kCrashed);
  if (!kSignalInterceptingSanitizer) {
    EXPECT_EQ(outcomes[1].term_signal, SIGSEGV);
  }
  EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

TEST(Isolation, WallBudgetKillsHungWorker) {
  std::vector<RunSpec> specs;
  specs.push_back(synthetic_spec("quick", 1.0));
  specs.push_back(RunSpec{"hung", []() -> PowerReport {
                            for (;;) ::usleep(10000);
                          }});
  Campaign::Config cfg;
  cfg.threads = 2;
  cfg.isolation = Isolation::kProcess;
  cfg.run_budget.max_wall_seconds = 0.2;
  const Campaign pool(cfg);
  const auto outcomes = pool.run(specs);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].status, RunStatus::kTimedOut);
}

TEST(Isolation, RetryTransientRespawnsCrashedWorkerOnce) {
  // Cross-process "crash only on the first attempt" flag: the first
  // spawn creates the marker and dies; the respawn sees it and succeeds.
  const fs::path marker =
      fs::temp_directory_path() /
      ("ahbp_isolation_marker_" + std::to_string(::getpid()));
  fs::remove(marker);
  std::vector<RunSpec> specs;
  specs.push_back(RunSpec{"transient", [marker]() -> PowerReport {
                            if (!fs::exists(marker)) {
                              std::ofstream(marker) << "1";
                              (void)::raise(SIGKILL);
                            }
                            PowerReport r;
                            r.total_energy = 4.5;
                            r.cycles = 10;
                            return r;
                          }});
  Campaign::Config cfg;
  cfg.threads = 1;
  cfg.isolation = Isolation::kProcess;
  cfg.retry_transient = true;
  const Campaign pool(cfg);
  const auto outcomes = pool.run(specs);
  fs::remove(marker);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].attempts, 2u);
  EXPECT_EQ(outcomes[0].report.total_energy, 4.5);
}

TEST(Isolation, DeterministicCrashWithRetryStaysCrashed) {
  std::vector<RunSpec> specs;
  specs.push_back(RunSpec{"always", []() -> PowerReport {
                            (void)::raise(SIGKILL);
                            return {};
                          }});
  Campaign::Config cfg;
  cfg.threads = 1;
  cfg.isolation = Isolation::kProcess;
  cfg.retry_transient = true;
  const Campaign pool(cfg);
  const auto outcomes = pool.run(specs);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].status, RunStatus::kCrashed);
  EXPECT_EQ(outcomes[0].attempts, 2u);
}

}  // namespace
}  // namespace ahbp::campaign
