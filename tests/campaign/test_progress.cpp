// Unit tests for the ProgressTracker: deterministic throughput/ETA
// arithmetic via snapshot_at(), stall diagnosis and the one-event-per-
// episode contract, status_json rendering, and end-to-end agreement
// between a real campaign's outcomes and its replayed event stream.

#include "campaign/progress.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "telemetry/events.hpp"

namespace ahbp::campaign {
namespace {

using telemetry::Event;
using telemetry::field_f64;
using telemetry::field_str;
using telemetry::field_u64;

Event make_event(std::uint64_t t_mono_us, std::string type,
                 std::vector<telemetry::EventField> fields) {
  Event ev;
  ev.t_mono_us = t_mono_us;
  ev.type = std::move(type);
  ev.fields = std::move(fields);
  return ev;
}

TEST(ProgressTracker, SnapshotArithmeticIsDeterministic) {
  ProgressTracker tracker;
  tracker.on_event(make_event(0, "campaign_start",
                              {field_u64("runs", 4),
                               field_str("isolation", "thread")}));
  tracker.on_event(make_event(1'000'000, "run_start",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_u64("worker", 0)}));
  tracker.on_event(make_event(2'000'000, "run_finish",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_str("status", "ok"),
                               field_f64("wall_seconds", 1.0),
                               field_u64("attempts", 1)}));
  tracker.on_event(make_event(2'000'000, "run_restored",
                              {field_u64("run", 1), field_str("name", "b")}));
  tracker.on_event(make_event(3'000'000, "run_start",
                              {field_u64("run", 2), field_str("name", "c"),
                               field_u64("worker", 1)}));

  const ProgressTracker::Snapshot s = tracker.snapshot_at(4'000'000);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.done, 1u);       // executed completions only
  EXPECT_EQ(s.restored, 1u);   // accounted separately
  EXPECT_EQ(s.in_flight, 1u);
  EXPECT_FALSE(s.finished);
  EXPECT_DOUBLE_EQ(s.elapsed_seconds, 4.0);
  // 1 executed run over 4 s of campaign time; 2 specs still unaccounted.
  EXPECT_DOUBLE_EQ(s.runs_per_sec, 0.25);
  EXPECT_DOUBLE_EQ(s.eta_seconds, 8.0);
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].run, 2u);
  EXPECT_DOUBLE_EQ(s.workers[0].age_seconds, 1.0);
  // Thread isolation: no heartbeats, never diagnosed as stalled.
  EXPECT_FALSE(s.workers[0].stalled);
  EXPECT_EQ(s.stalled_workers, 0u);
}

TEST(ProgressTracker, EtaUnknownBeforeFirstCompletion) {
  ProgressTracker tracker;
  tracker.on_event(make_event(0, "campaign_start",
                              {field_u64("runs", 2),
                               field_str("isolation", "thread")}));
  tracker.on_event(make_event(0, "run_start",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_u64("worker", 0)}));
  const ProgressTracker::Snapshot s = tracker.snapshot_at(1'000'000);
  EXPECT_DOUBLE_EQ(s.runs_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(s.eta_seconds, -1.0);
}

TEST(ProgressTracker, RetryKeepsRunInFlightAndResetsLiveness) {
  ProgressTracker tracker;
  tracker.on_event(make_event(0, "campaign_start",
                              {field_u64("runs", 1),
                               field_str("isolation", "process")}));
  tracker.on_event(make_event(0, "run_start",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_u64("worker", 100)}));
  tracker.on_event(make_event(5'000'000, "run_retry",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_u64("worker", 200)}));
  const ProgressTracker::Snapshot s = tracker.snapshot_at(6'000'000);
  EXPECT_EQ(s.retries, 1u);
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].id, 200);             // respawned pid adopted
  EXPECT_DOUBLE_EQ(s.workers[0].age_seconds, 1.0);  // clock restarted
  EXPECT_FALSE(s.workers[0].stalled);
}

TEST(ProgressTracker, StallIsDiagnosedOncePerEpisode) {
  // Run events are fed directly with synthetic timestamps so the age
  // arithmetic is deterministic; the attached log only carries the
  // worker_stalled emissions out.
  telemetry::EventLog log;
  ProgressTracker tracker(ProgressTracker::Config{.stall_after_seconds = 0.5});
  tracker.attach(log);
  tracker.on_event(make_event(0, "campaign_start",
                              {field_u64("runs", 2),
                               field_str("isolation", "process")}));
  tracker.on_event(make_event(0, "run_start",
                              {field_u64("run", 0), field_str("name", "a"),
                               field_u64("worker", 111)}));
  tracker.on_event(make_event(0, "run_start",
                              {field_u64("run", 1), field_str("name", "b"),
                               field_u64("worker", 222)}));

  ProgressTracker::Snapshot s = tracker.snapshot_at(1'000'000);
  EXPECT_EQ(s.stalled_workers, 2u);
  for (const ProgressTracker::Worker& w : s.workers) {
    EXPECT_TRUE(w.stalled);
    EXPECT_GT(w.heartbeat_age_seconds, 0.5);
  }
  auto count_stalled_events = [&log] {
    std::size_t n = 0;
    for (const Event& ev : log.events_since(0)) {
      if (ev.type == "worker_stalled") ++n;
    }
    return n;
  };
  EXPECT_EQ(count_stalled_events(), 2u);

  // Still stalled at a later poll: no duplicate emission.
  s = tracker.snapshot_at(2'000'000);
  EXPECT_EQ(s.stalled_workers, 2u);
  EXPECT_EQ(count_stalled_events(), 2u);

  // A heartbeat for 111 ends its episode (heartbeat() stamps with the
  // real clock, which is far earlier than the next synthetic poll), so
  // the next threshold trip re-emits -- for 111 only; 222's episode is
  // still open.
  tracker.heartbeat(111);
  s = tracker.snapshot_at(3'000'000);
  EXPECT_EQ(s.stalled_workers, 2u);
  EXPECT_EQ(count_stalled_events(), 3u);
  const std::vector<Event> all = log.events_since(0);
  EXPECT_EQ(all.back().type, "worker_stalled");
  EXPECT_EQ(all.back().u64("worker"), 111u);
}

TEST(ProgressTracker, StatusJsonRendersSchemaAndEscapes) {
  telemetry::EventLog log;
  ProgressTracker tracker;
  tracker.attach(log);
  tracker.set_fingerprint(0x00000000000abcdeull);
  log.emit("campaign_start",
           {field_u64("runs", 1), field_str("isolation", "thread")});
  log.emit("run_start", {field_u64("run", 0), field_str("name", "m\"0\\"),
                         field_u64("worker", 0)});
  const std::string json = tracker.status_json();
  EXPECT_NE(json.find("\"schema\": \"ahbpower.status.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"config\": \"00000000000abcde\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"m\\\"0\\\\\""), std::string::npos);
  EXPECT_NE(json.find("\"eta_seconds\": -1"), std::string::npos);
}

TEST(ProgressTracker, RealCampaignEventsReplayToOutcomeCounts) {
  telemetry::EventLog log;
  ProgressTracker tracker;
  tracker.attach(log);

  std::vector<RunSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back({"ok_" + std::to_string(i), [] {
                       PowerReport r;
                       r.total_energy = 1e-9;
                       r.cycles = 10;
                       return r;
                     }});
  }
  specs.push_back({"boom", []() -> PowerReport {
                     throw std::runtime_error("expected failure");
                   }});

  Campaign::Config cfg;
  cfg.threads = 2;
  const Campaign pool(cfg);
  Campaign::RunOptions opts;
  opts.events = &log;
  opts.progress = &tracker;
  const std::vector<RunOutcome> outcomes = pool.run(specs, opts);

  // Tracker state agrees with the returned outcomes.
  const ProgressTracker::Snapshot s = tracker.snapshot();
  EXPECT_TRUE(s.finished);
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.ok, 4u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.done, 5u);
  EXPECT_EQ(s.in_flight, 0u);

  // And the raw event stream replays to the same counts.
  std::map<std::string, std::size_t> replay;
  const Event* finish = nullptr;
  const std::vector<Event> events = log.events_since(0);
  for (const Event& ev : events) {
    if (ev.type == "run_finish") ++replay[std::string(ev.str("status"))];
    if (ev.type == "campaign_finish") finish = &ev;
  }
  EXPECT_EQ(replay["ok"], 4u);
  EXPECT_EQ(replay["failed"], 1u);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(finish->u64("ok"), 4u);
  EXPECT_EQ(finish->u64("failed"), 1u);
  EXPECT_EQ(finish->u64("crashed"), 0u);
}

}  // namespace
}  // namespace ahbp::campaign
