// Tests for the structural generators: functional correctness of the
// generated decoder/mux/arbiter netlists, including parameterized sweeps.

#include "gate/synth.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gate/gatesim.hpp"
#include "sim/report.hpp"

namespace ahbp::gate {
namespace {

using sim::SimError;

TEST(SelectBits, MatchesPaperDefinition) {
  // "the first integer number greater than log2(nO - 1)" == ceil(log2 n).
  EXPECT_EQ(select_bits(2), 1u);
  EXPECT_EQ(select_bits(3), 2u);
  EXPECT_EQ(select_bits(4), 2u);
  EXPECT_EQ(select_bits(5), 3u);
  EXPECT_EQ(select_bits(8), 3u);
  EXPECT_EQ(select_bits(9), 4u);
  EXPECT_EQ(select_bits(16), 4u);
  EXPECT_EQ(select_bits(1), 1u);
}

TEST(Synth, RejectsDegenerateParameters) {
  EXPECT_THROW(build_onehot_decoder(1), SimError);
  EXPECT_THROW(build_mux(0, 4), SimError);
  EXPECT_THROW(build_mux(8, 1), SimError);
  EXPECT_THROW(build_priority_arbiter(1), SimError);
}

TEST(Synth, DecoderUsesOnlyNotAndAndBuf) {
  DecoderNetlist d = build_onehot_decoder(4);
  for (const GateInst& g : d.nl.gates()) {
    EXPECT_TRUE(g.type == GateType::kNot || g.type == GateType::kAnd ||
                g.type == GateType::kBuf)
        << to_string(g.type);
  }
}

class DecoderSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecoderSweep, ExactlyOneOutputHighForEveryAddress) {
  const unsigned n = GetParam();
  DecoderNetlist d = build_onehot_decoder(n);
  GateSim simu(d.nl);
  const unsigned addr_space = 1u << d.addr.size();
  for (unsigned v = 0; v < addr_space; ++v) {
    for (unsigned b = 0; b < d.addr.size(); ++b) {
      simu.set_input(d.addr[b], (v >> b & 1u) != 0);
    }
    simu.eval();
    unsigned highs = 0;
    int high_index = -1;
    for (unsigned o = 0; o < n; ++o) {
      if (simu.value(d.sel[o])) {
        ++highs;
        high_index = static_cast<int>(o);
      }
    }
    if (v < n) {
      EXPECT_EQ(highs, 1u) << "addr " << v;
      EXPECT_EQ(high_index, static_cast<int>(v));
    } else {
      EXPECT_EQ(highs, 0u) << "out-of-range addr " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecoderSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u));

struct MuxParam {
  unsigned width;
  unsigned n_inputs;
};

class MuxSweep : public ::testing::TestWithParam<MuxParam> {};

TEST_P(MuxSweep, SelectsTheRightInput) {
  const auto [width, n] = GetParam();
  MuxNetlist m = build_mux(width, n);
  GateSim simu(m.nl);
  std::mt19937 rng(12345);

  // Drive random data patterns, sweep the select, check out == data[sel].
  std::vector<std::vector<bool>> data(n, std::vector<bool>(width));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned b = 0; b < width; ++b) {
      data[i][b] = (rng() & 1u) != 0;
      simu.set_input(m.data[i][b], data[i][b]);
    }
  }
  for (unsigned s = 0; s < n; ++s) {
    for (unsigned b = 0; b < m.sel.size(); ++b) {
      simu.set_input(m.sel[b], (s >> b & 1u) != 0);
    }
    simu.eval();
    for (unsigned b = 0; b < width; ++b) {
      EXPECT_EQ(simu.value(m.out[b]), data[s][b]) << "sel=" << s << " bit=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MuxSweep,
    ::testing::Values(MuxParam{1, 2}, MuxParam{8, 2}, MuxParam{8, 3},
                      MuxParam{16, 4}, MuxParam{32, 2}, MuxParam{32, 5},
                      MuxParam{4, 16}));

class ArbiterSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArbiterSweep, GrantsHighestPriorityRequester) {
  const unsigned n = GetParam();
  ArbiterNetlist a = build_priority_arbiter(n);
  GateSim simu(a.nl);
  std::mt19937 rng(999);

  for (int iter = 0; iter < 200; ++iter) {
    std::vector<bool> req(n);
    for (unsigned i = 0; i < n; ++i) {
      req[i] = (rng() & 1u) != 0;
      simu.set_input(a.req[i], req[i]);
    }
    simu.tick();
    // Expected winner: lowest requesting index; default master 0 if none.
    unsigned expect = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (req[i]) {
        expect = i;
        break;
      }
    }
    unsigned granted = n;
    unsigned grants = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (simu.value(a.grant[i])) {
        granted = i;
        ++grants;
      }
    }
    EXPECT_EQ(grants, 1u);
    EXPECT_EQ(granted, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArbiterSweep, ::testing::Values(2u, 3u, 4u, 8u));

TEST(Synth, ArbiterGrantIsRegistered) {
  // The grant reflects the request pattern of the *previous* tick
  // (Moore FSM): change requests, grant moves only after the clock edge.
  ArbiterNetlist a = build_priority_arbiter(3);
  GateSim simu(a.nl);
  simu.set_input(a.req[2], true);
  simu.tick();
  EXPECT_TRUE(simu.value(a.grant[2]));
  simu.set_input(a.req[2], false);
  simu.set_input(a.req[1], true);
  simu.eval();  // combinational only: grant must not move yet
  EXPECT_TRUE(simu.value(a.grant[2]));
  simu.tick();
  EXPECT_TRUE(simu.value(a.grant[1]));
}

TEST(Synth, DecoderEnergyGrowsWithHammingDistance) {
  // The core premise of the paper's macromodel: more input bits flipping
  // means more internal switching energy.
  DecoderNetlist d = build_onehot_decoder(8);
  GateSim simu(d.nl);

  // HD=1 transition: 0 -> 1.
  for (unsigned b = 0; b < 3; ++b) simu.set_input(d.addr[b], false);
  simu.eval();
  simu.reset_accounting();
  simu.set_input(d.addr[0], true);
  simu.eval();
  const double e_hd1 = simu.energy();

  // HD=3 transition: 1 (001) -> 6 (110).
  simu.reset_accounting();
  simu.set_input(d.addr[0], false);
  simu.set_input(d.addr[1], true);
  simu.set_input(d.addr[2], true);
  simu.eval();
  const double e_hd3 = simu.energy();

  EXPECT_GT(e_hd1, 0.0);
  EXPECT_GT(e_hd3, e_hd1);
}

TEST(Synth, MuxGateCountScalesWithWidth) {
  const auto m8 = build_mux(8, 4);
  const auto m32 = build_mux(32, 4);
  EXPECT_GT(m32.nl.gate_count(), m8.nl.gate_count());
  EXPECT_GE(m32.nl.gate_count(), 4u * (m8.nl.gate_count() - 10));
}

}  // namespace
}  // namespace ahbp::gate
