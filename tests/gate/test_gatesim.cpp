// Unit tests for the toggle-counting gate simulator and its energy model.

#include "gate/gatesim.hpp"

#include <gtest/gtest.h>

#include "gate/synth.hpp"
#include "sim/report.hpp"

namespace ahbp::gate {
namespace {

using sim::SimError;

/// a AND b with both nets observable.
struct And2 {
  Netlist nl;
  NetId a, b, y;
  And2() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    nl.mark_input(a);
    nl.mark_input(b);
    y = nl.add_gate(GateType::kAnd, a, b);
    nl.mark_output(y);
    nl.finalize();
  }
};

TEST(GateSim, RequiresFinalizedNetlist) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  EXPECT_THROW(GateSim{nl}, SimError);
}

TEST(GateSim, CombinationalEvaluation) {
  And2 c;
  GateSim simu(c.nl);
  EXPECT_FALSE(simu.value(c.y));
  simu.set_input(c.a, true);
  simu.set_input(c.b, true);
  simu.eval();
  EXPECT_TRUE(simu.value(c.y));
  simu.set_input(c.b, false);
  simu.eval();
  EXPECT_FALSE(simu.value(c.y));
}

TEST(GateSim, TogglesCountSettledTransitions) {
  And2 c;
  GateSim simu(c.nl);
  simu.set_input(c.a, true);
  simu.eval();  // a: 0->1; y stays 0
  EXPECT_EQ(simu.toggles(c.a), 1u);
  EXPECT_EQ(simu.toggles(c.y), 0u);
  simu.set_input(c.b, true);
  simu.eval();  // b: 0->1, y: 0->1
  EXPECT_EQ(simu.toggles(c.b), 1u);
  EXPECT_EQ(simu.toggles(c.y), 1u);
  EXPECT_EQ(simu.total_toggles(), 3u);
}

TEST(GateSim, NoInputChangeNoEnergy) {
  And2 c;
  GateSim simu(c.nl);
  simu.eval();
  simu.eval();
  EXPECT_EQ(simu.total_toggles(), 0u);
  EXPECT_DOUBLE_EQ(simu.energy(), 0.0);
}

TEST(GateSim, EnergyMatchesHandComputation) {
  And2 c;
  const Technology tech;
  GateSim simu(c.nl, tech);
  simu.set_input(c.a, true);
  simu.set_input(c.b, true);
  simu.eval();
  // Nets toggled: a (c_node + 1 input cap), b (same), y (c_node + c_out).
  const double expected = tech.toggle_energy(tech.c_node + tech.c_in) * 2 +
                          tech.toggle_energy(tech.c_node + tech.c_out);
  EXPECT_DOUBLE_EQ(simu.energy(), expected);
}

TEST(GateSim, ResetAccountingKeepsState) {
  And2 c;
  GateSim simu(c.nl);
  simu.set_input(c.a, true);
  simu.set_input(c.b, true);
  simu.eval();
  EXPECT_GT(simu.energy(), 0.0);
  simu.reset_accounting();
  EXPECT_DOUBLE_EQ(simu.energy(), 0.0);
  EXPECT_EQ(simu.total_toggles(), 0u);
  EXPECT_TRUE(simu.value(c.y));  // logic state preserved
}

TEST(GateSim, SetInputOnNonInputThrows) {
  And2 c;
  GateSim simu(c.nl);
  EXPECT_THROW(simu.set_input(c.y, true), SimError);
}

TEST(GateSim, DffCapturesOnTick) {
  Netlist nl;
  const NetId d = nl.add_net("d");
  nl.mark_input(d);
  const NetId q = nl.add_dff(d, "q");
  nl.mark_output(q);
  nl.finalize();
  GateSim simu(nl);
  simu.set_input(d, true);
  simu.eval();  // combinational settle: q unchanged
  EXPECT_FALSE(simu.value(q));
  simu.tick();  // clock edge: q captures d
  EXPECT_TRUE(simu.value(q));
}

TEST(GateSim, ToggleFlipFlopDividesByTwo) {
  // q = DFF(not q) toggles every tick.
  Netlist nl;
  const NetId en = nl.add_net("en");
  nl.mark_input(en);
  const NetId dn = nl.add_net("d");
  const NetId q = nl.add_dff(dn, "q");
  nl.add_gate_onto(GateType::kNot, q, kInvalidNet, dn);
  nl.mark_output(q);
  nl.finalize();
  GateSim simu(nl);
  bool expected = false;
  for (int i = 0; i < 6; ++i) {
    simu.tick();
    expected = !expected;
    EXPECT_EQ(simu.value(q), expected) << "tick " << i;
  }
  EXPECT_EQ(simu.toggles(q), 6u);
}

TEST(GateSim, HigherVddMeansMoreEnergy) {
  And2 c;
  Technology lo;
  lo.vdd = 1.2;
  Technology hi;
  hi.vdd = 3.3;
  GateSim s_lo(c.nl, lo), s_hi(c.nl, hi);
  for (GateSim* s : {&s_lo, &s_hi}) {
    s->set_input(c.a, true);
    s->set_input(c.b, true);
    s->eval();
  }
  // Energy scales with VDD^2.
  EXPECT_NEAR(s_hi.energy() / s_lo.energy(), (3.3 * 3.3) / (1.2 * 1.2), 1e-9);
}

TEST(GateSim, DecoderOutputsOneHot) {
  DecoderNetlist dec = build_onehot_decoder(5);
  GateSim simu(dec.nl);
  for (unsigned v = 0; v < 5; ++v) {
    for (unsigned b = 0; b < dec.addr.size(); ++b) {
      simu.set_input(dec.addr[b], (v >> b & 1u) != 0);
    }
    simu.eval();
    for (unsigned o = 0; o < dec.sel.size(); ++o) {
      EXPECT_EQ(simu.value(dec.sel[o]), o == v) << "v=" << v << " o=" << o;
    }
  }
}

}  // namespace
}  // namespace ahbp::gate
