// Bit-identity tests for the 64-lane bit-parallel gate simulator.
//
// The load-bearing property: every BitSim lane is indistinguishable from
// a scalar GateSim fed the same pattern sequence -- per-net values,
// per-net toggle counts, and accounted energy, all bit-exact (the
// per-lane energy accumulates in GateSim's net order, so even the
// floating-point rounding matches). The property tests here check all
// 64 lanes against 64 independent GateSims on randomized netlists and
// stimulus, with and without DFFs.

#include "gate/bitsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "sim/report.hpp"

namespace ahbp::gate {
namespace {

using sim::SimError;

// ---------------------------------------------------------------------------
// 64x64 transpose

TEST(BitTranspose, MatchesNaiveTranspose) {
  std::mt19937_64 rng(7);
  std::uint64_t m[64], t[64];
  for (auto& w : m) w = rng();
  for (unsigned i = 0; i < 64; ++i) {
    t[i] = 0;
    for (unsigned b = 0; b < 64; ++b) t[i] |= (m[b] >> i & 1u) << b;
  }
  std::uint64_t fast[64];
  std::copy(std::begin(m), std::end(m), std::begin(fast));
  bit_transpose_64x64(fast);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(fast[i], t[i]) << "row " << i;
}

TEST(BitTranspose, IsAnInvolution) {
  std::mt19937_64 rng(8);
  std::uint64_t m[64], twice[64];
  for (auto& w : m) w = rng();
  std::copy(std::begin(m), std::end(m), std::begin(twice));
  bit_transpose_64x64(twice);
  bit_transpose_64x64(twice);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(twice[i], m[i]);
}

// ---------------------------------------------------------------------------
// Randomized netlists

/// Random combinational DAG: `n_inputs` primary inputs, `n_gates` gates
/// of uniformly random type over random existing nets. If `with_dffs`,
/// a register rank is inserted mid-way and the later gates mix register
/// outputs back in, giving real sequential state (exercised via tick()).
Netlist random_netlist(std::mt19937_64& rng, unsigned n_inputs, unsigned n_gates,
                       bool with_dffs) {
  Netlist nl;
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    const NetId n = nl.add_net();
    nl.mark_input(n);
    nets.push_back(n);
  }
  const auto pick = [&] { return nets[rng() % nets.size()]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    if (with_dffs && g == n_gates / 2) {
      for (unsigned d = 0; d < 4; ++d) nets.push_back(nl.add_dff(pick()));
    }
    const auto type = static_cast<GateType>(rng() % 8);  // all but kDff
    const NetId out = type == GateType::kNot || type == GateType::kBuf
                          ? nl.add_gate(type, pick())
                          : nl.add_gate(type, pick(), pick());
    nets.push_back(out);
    if (rng() % 4 == 0) nl.mark_output(out);
  }
  nl.mark_output(nets.back());
  nl.finalize();
  return nl;
}

/// Drives BitSim and 64 GateSims with the same random input patterns for
/// `steps` rounds and checks values, per-lane toggle counts, per-lane
/// energy, and the lane-summed aggregates -- all exactly.
void check_lanes_match(const Netlist& nl, std::mt19937_64& rng, unsigned steps,
                       bool sequential) {
  const Technology tech = Technology::default_2003();
  BitSim bit(nl, tech, BitSim::Accounting::kPerLaneToggles);
  std::vector<GateSim> scalar;
  scalar.reserve(BitSim::kLanes);
  for (unsigned j = 0; j < BitSim::kLanes; ++j) scalar.emplace_back(nl, tech);

  for (unsigned s = 0; s < steps; ++s) {
    for (NetId in : nl.inputs()) {
      const std::uint64_t lanes = rng();
      bit.set_input(in, lanes);
      for (unsigned j = 0; j < BitSim::kLanes; ++j) {
        scalar[j].set_input(in, (lanes >> j & 1u) != 0);
      }
    }
    if (sequential) {
      bit.tick();
      for (auto& sim : scalar) sim.tick();
    } else {
      bit.eval();
      for (auto& sim : scalar) sim.eval();
    }
    for (NetId n = 0; n < nl.net_count(); ++n) {
      for (unsigned j = 0; j < BitSim::kLanes; ++j) {
        ASSERT_EQ(bit.value(n, j), scalar[j].value(n))
            << "step " << s << " net " << n << " lane " << j;
      }
    }
  }

  std::uint64_t toggle_sum = 0;
  for (NetId n = 0; n < nl.net_count(); ++n) {
    std::uint64_t lane_sum = 0;
    for (unsigned j = 0; j < BitSim::kLanes; ++j) {
      ASSERT_EQ(bit.lane_toggles(n, j), scalar[j].toggles(n))
          << "net " << n << " lane " << j;
      lane_sum += bit.lane_toggles(n, j);
    }
    EXPECT_EQ(bit.toggles(n), lane_sum);
    toggle_sum += lane_sum;
  }
  EXPECT_EQ(bit.total_toggles(), toggle_sum);

  double lane_energy_sum = 0.0;
  for (unsigned j = 0; j < BitSim::kLanes; ++j) {
    // Exact: per-lane accounting replays GateSim's accumulation order.
    ASSERT_EQ(bit.lane_energy(j), scalar[j].energy()) << "lane " << j;
    lane_energy_sum += bit.lane_energy(j);
  }
  // The aggregate accumulates popcount*weight per net instead of lane by
  // lane, so it matches the lane sum only up to rounding.
  EXPECT_NEAR(bit.energy(), lane_energy_sum,
              1e-12 * std::max(1.0, lane_energy_sum));
}

TEST(BitSimProperty, RandomCombinationalNetlistsAllLanesExact) {
  std::mt19937_64 rng(0xC0FFEE);
  for (unsigned round = 0; round < 3; ++round) {
    const Netlist nl = random_netlist(rng, 6 + round * 3, 40 + round * 30,
                                      /*with_dffs=*/false);
    check_lanes_match(nl, rng, 25, /*sequential=*/false);
  }
}

TEST(BitSimProperty, RandomSequentialNetlistsAllLanesExact) {
  std::mt19937_64 rng(0xD1CE);
  for (unsigned round = 0; round < 3; ++round) {
    const Netlist nl = random_netlist(rng, 5 + round * 2, 30 + round * 20,
                                      /*with_dffs=*/true);
    check_lanes_match(nl, rng, 20, /*sequential=*/true);
  }
}

TEST(BitSimProperty, PriorityArbiterFeedbackExact) {
  // Real DFF feedback (the grant register feeds the priority logic).
  std::mt19937_64 rng(0xAB1);
  const ArbiterNetlist arb = build_priority_arbiter(4);
  check_lanes_match(arb.nl, rng, 30, /*sequential=*/true);
}

TEST(BitSimProperty, GeneratedMuxExact) {
  std::mt19937_64 rng(0x3A3);
  const MuxNetlist mux = build_mux(8, 3);
  check_lanes_match(mux.nl, rng, 25, /*sequential=*/false);
}

// ---------------------------------------------------------------------------
// API contract

struct And2 {
  Netlist nl;
  NetId a, b, y;
  And2() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    nl.mark_input(a);
    nl.mark_input(b);
    y = nl.add_gate(GateType::kAnd, a, b);
    nl.mark_output(y);
    nl.finalize();
  }
};

TEST(BitSim, RequiresFinalizedNetlist) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  EXPECT_THROW(BitSim{nl}, SimError);
}

TEST(BitSim, RejectsDrivingNonInputs) {
  And2 c;
  BitSim simu(c.nl);
  EXPECT_THROW(simu.set_input(c.y, 1), SimError);
  EXPECT_THROW(simu.set_input_lane(c.y, 0, true), SimError);
  EXPECT_THROW(simu.set_input_lane(c.a, 64, true), SimError);
}

TEST(BitSim, LaneAccountingRequiresMode) {
  And2 c;
  BitSim agg(c.nl);  // kAggregate
  EXPECT_THROW((void)agg.lane_energy(0), SimError);
  EXPECT_THROW((void)agg.lane_toggles(c.a, 0), SimError);
  BitSim per(c.nl, Technology::default_2003(), BitSim::Accounting::kPerLane);
  EXPECT_NO_THROW((void)per.lane_energy(0));
  EXPECT_THROW((void)per.lane_toggles(c.a, 0), SimError);
  EXPECT_THROW((void)per.lane_energy(64), SimError);
}

TEST(BitSim, WordWideEvaluation) {
  And2 c;
  BitSim simu(c.nl);
  simu.set_input(c.a, 0xFFFF0000FFFF0000ull);
  simu.set_input(c.b, 0xFF00FF00FF00FF00ull);
  simu.eval();
  EXPECT_EQ(simu.value_word(c.y), 0xFF000000FF000000ull);
}

TEST(BitSim, SetInputLaneTouchesOnlyThatLane) {
  And2 c;
  BitSim simu(c.nl);
  simu.set_input(c.a, ~0ull);
  simu.set_input(c.b, ~0ull);
  simu.set_input_lane(c.b, 3, false);
  simu.eval();
  EXPECT_EQ(simu.value_word(c.y), ~0ull & ~(1ull << 3));
}

TEST(BitSim, EvalUnaccountedCommitsValuesWithoutAccounting) {
  And2 c;
  BitSim simu(c.nl, Technology::default_2003(), BitSim::Accounting::kPerLane);
  simu.set_input(c.a, ~0ull);
  simu.set_input(c.b, ~0ull);
  simu.eval_unaccounted();
  EXPECT_EQ(simu.value_word(c.y), ~0ull);  // values committed
  EXPECT_EQ(simu.total_toggles(), 0u);     // nothing accounted
  EXPECT_DOUBLE_EQ(simu.energy(), 0.0);
  EXPECT_DOUBLE_EQ(simu.lane_energy(0), 0.0);
  // The next accounted eval charges transitions from the committed state.
  simu.set_input(c.b, 0);
  simu.eval();
  EXPECT_GT(simu.energy(), 0.0);
}

TEST(BitSim, AggregateMatchesPerLaneTotals) {
  And2 c;
  BitSim agg(c.nl);
  BitSim per(c.nl, Technology::default_2003(), BitSim::Accounting::kPerLane);
  std::mt19937_64 rng(11);
  for (int s = 0; s < 10; ++s) {
    const std::uint64_t a = rng(), b = rng();
    agg.set_input(c.a, a);
    agg.set_input(c.b, b);
    per.set_input(c.a, a);
    per.set_input(c.b, b);
    agg.eval();
    per.eval();
  }
  EXPECT_EQ(agg.total_toggles(), per.total_toggles());
  EXPECT_DOUBLE_EQ(agg.energy(), per.energy());
}

TEST(BitSim, NetCapacitanceMatchesGateSimLoadModel) {
  And2 c;
  BitSim bit(c.nl);
  GateSim scalar(c.nl);
  for (NetId n = 0; n < c.nl.net_count(); ++n) {
    EXPECT_DOUBLE_EQ(bit.net_capacitance(n), scalar.net_capacitance(n));
  }
}

}  // namespace
}  // namespace ahbp::gate
