// Unit tests for Netlist construction, validation and BLIF emission.

#include "gate/netlist.hpp"

#include <gtest/gtest.h>

#include "sim/report.hpp"

namespace ahbp::gate {
namespace {

using sim::SimError;

TEST(Netlist, GateHelpers) {
  EXPECT_EQ(arity(GateType::kNot), 1);
  EXPECT_EQ(arity(GateType::kAnd), 2);
  EXPECT_EQ(arity(GateType::kDff), 1);
  EXPECT_TRUE(eval_gate(GateType::kAnd, true, true));
  EXPECT_FALSE(eval_gate(GateType::kAnd, true, false));
  EXPECT_TRUE(eval_gate(GateType::kOr, false, true));
  EXPECT_TRUE(eval_gate(GateType::kNot, false, false));
  EXPECT_TRUE(eval_gate(GateType::kXor, true, false));
  EXPECT_FALSE(eval_gate(GateType::kXor, true, true));
  EXPECT_TRUE(eval_gate(GateType::kXnor, true, true));
  EXPECT_TRUE(eval_gate(GateType::kNand, false, true));
  EXPECT_FALSE(eval_gate(GateType::kNor, false, true));
  EXPECT_TRUE(eval_gate(GateType::kBuf, true, false));
  EXPECT_THROW((void)eval_gate(GateType::kDff, true, false), SimError);
  EXPECT_STREQ(to_string(GateType::kNand), "nand");
}

TEST(Netlist, BuildAndFinalize) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_input(a);
  nl.mark_input(b);
  const NetId y = nl.add_gate(GateType::kAnd, a, b);
  nl.mark_output(y);
  nl.finalize();
  EXPECT_TRUE(nl.finalized());
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.topo_order().size(), 1u);
  EXPECT_TRUE(nl.is_input(a));
  EXPECT_FALSE(nl.is_input(y));
  EXPECT_TRUE(nl.is_output(y));
}

TEST(Netlist, UndrivenNetRejected) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  (void)nl.add_net("floating");
  EXPECT_THROW(nl.finalize(), SimError);
}

TEST(Netlist, MultipleDriversRejected) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  const NetId y = nl.add_net("y");
  nl.add_gate_onto(GateType::kBuf, a, kInvalidNet, y);
  nl.add_gate_onto(GateType::kNot, a, kInvalidNet, y);
  EXPECT_THROW(nl.finalize(), SimError);
}

TEST(Netlist, CombinationalCycleRejected) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate_onto(GateType::kAnd, a, y, x);
  nl.add_gate_onto(GateType::kBuf, x, kInvalidNet, y);
  EXPECT_THROW(nl.finalize(), SimError);
}

TEST(Netlist, CycleThroughDffAccepted) {
  // A toggle flip-flop: q = DFF(not q).
  Netlist nl;
  const NetId en = nl.add_net("en");
  nl.mark_input(en);
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_dff(d, "q");
  nl.add_gate_onto(GateType::kNot, q, kInvalidNet, d);
  nl.mark_output(q);
  EXPECT_NO_THROW(nl.finalize());
  EXPECT_EQ(nl.dff_count(), 1u);
}

TEST(Netlist, TreeBuildsBalancedStructure) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    const NetId n = nl.add_net();
    nl.mark_input(n);
    ins.push_back(n);
  }
  const NetId root = nl.add_tree(GateType::kOr, ins);
  nl.mark_output(root);
  nl.finalize();
  EXPECT_EQ(nl.gate_count(), 4u);  // 5-input OR needs 4 two-input gates
}

TEST(Netlist, TreeOfOneIsPassThrough) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_input(a);
  EXPECT_EQ(nl.add_tree(GateType::kAnd, {a}), a);
}

TEST(Netlist, InvalidArgsThrow) {
  Netlist nl;
  EXPECT_THROW(nl.mark_input(99), SimError);
  EXPECT_THROW(nl.mark_output(99), SimError);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, 99, 98), SimError);
  EXPECT_THROW(nl.add_dff(7), SimError);
  EXPECT_THROW(nl.add_tree(GateType::kNot, {}), SimError);
  const NetId a = nl.add_net("a");
  EXPECT_THROW(nl.add_gate_onto(GateType::kDff, a, kInvalidNet, a), SimError);
}

TEST(Netlist, BlifEmission) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_input(a);
  nl.mark_input(b);
  const NetId y = nl.add_gate(GateType::kAnd, a, b);
  nl.mark_output(y);
  nl.finalize();
  const std::string blif = nl.to_blif("and2");
  EXPECT_NE(blif.find(".model and2"), std::string::npos);
  EXPECT_NE(blif.find(".inputs a b"), std::string::npos);
  EXPECT_NE(blif.find("11 1"), std::string::npos);
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

}  // namespace
}  // namespace ahbp::gate
