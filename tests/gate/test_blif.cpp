// BLIF round-trip tests: emit a generated netlist as BLIF, parse it
// back, and check functional equivalence by co-simulation; plus parser
// error handling and a random-netlist property sweep.

#include "gate/blif.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gate/gatesim.hpp"
#include "gate/synth.hpp"
#include "sim/report.hpp"

namespace ahbp::gate {
namespace {

using sim::SimError;

/// Drives both netlists with identical random input streams and checks
/// that all primary outputs always agree. Uses tick() so DFFs advance.
void expect_equivalent(const Netlist& a, const Netlist& b, unsigned steps,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  GateSim sa(a), sb(b);
  std::mt19937_64 rng(seed);
  for (unsigned s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const bool v = (rng() & 1u) != 0;
      sa.set_input(a.inputs()[i], v);
      sb.set_input(b.inputs()[i], v);
    }
    sa.tick();
    sb.tick();
    for (std::size_t o = 0; o < a.outputs().size(); ++o) {
      ASSERT_EQ(sa.value(a.outputs()[o]), sb.value(b.outputs()[o]))
          << "step " << s << " output " << o;
    }
  }
}

TEST(Blif, RoundTripDecoder) {
  DecoderNetlist dec = build_onehot_decoder(8);
  const BlifModel parsed = from_blif(dec.nl.to_blif("dec8"));
  EXPECT_EQ(parsed.name, "dec8");
  expect_equivalent(dec.nl, parsed.netlist, 200, 11);
}

TEST(Blif, RoundTripMux) {
  MuxNetlist mux = build_mux(8, 4);
  const BlifModel parsed = from_blif(mux.nl.to_blif("mux8x4"));
  expect_equivalent(mux.nl, parsed.netlist, 200, 12);
}

TEST(Blif, RoundTripArbiterWithLatches) {
  ArbiterNetlist arb = build_priority_arbiter(4);
  const BlifModel parsed = from_blif(arb.nl.to_blif("arb4"));
  EXPECT_EQ(parsed.netlist.dff_count(), arb.nl.dff_count());
  expect_equivalent(arb.nl, parsed.netlist, 300, 13);
}

TEST(Blif, ParsesAllLibraryCovers) {
  const char* text =
      ".model covers\n"
      ".inputs a b\n"
      ".outputs o1 o2 o3 o4 o5 o6 o7 o8\n"
      ".names a o1\n0 1\n"
      ".names a o2\n1 1\n"
      ".names a b o3\n11 1\n"
      ".names a b o4\n1- 1\n-1 1\n"
      ".names a b o5\n0- 1\n-0 1\n"
      ".names a b o6\n00 1\n"
      ".names a b o7\n10 1\n01 1\n"
      ".names a b o8\n00 1\n11 1\n"
      ".end\n";
  const BlifModel m = from_blif(text);
  EXPECT_EQ(m.netlist.gate_count(), 8u);
  GateSim simu(m.netlist);
  simu.set_input(m.netlist.inputs()[0], true);   // a=1
  simu.set_input(m.netlist.inputs()[1], false);  // b=0
  simu.eval();
  const auto& outs = m.netlist.outputs();
  EXPECT_FALSE(simu.value(outs[0]));  // not a
  EXPECT_TRUE(simu.value(outs[1]));   // buf a
  EXPECT_FALSE(simu.value(outs[2]));  // and
  EXPECT_TRUE(simu.value(outs[3]));   // or
  EXPECT_TRUE(simu.value(outs[4]));   // nand
  EXPECT_FALSE(simu.value(outs[5]));  // nor
  EXPECT_TRUE(simu.value(outs[6]));   // xor
  EXPECT_FALSE(simu.value(outs[7]));  // xnor
}

TEST(Blif, RejectsMalformedInput) {
  EXPECT_THROW((void)from_blif(""), SimError);
  EXPECT_THROW((void)from_blif(".model\n"), SimError);
  EXPECT_THROW((void)from_blif(".model m\n.inputs a\n.outputs o\n"
                               ".names a o\n"
                               "0 0\n.end\n"),
               SimError);  // off-set cover
  EXPECT_THROW((void)from_blif(".model m\n.inputs a b c\n.outputs o\n"
                               ".names a b c o\n111 1\n.end\n"),
               SimError);  // 3-input cover
  EXPECT_THROW((void)from_blif(".model m\n.subckt foo\n.end\n"), SimError);
  EXPECT_THROW((void)from_blif(".model m\n.inputs a\n.outputs o\n"
                               ".names a o\n0 1\n1 1\n.end\n"),
               SimError);  // cover matching no gate (constant 1)
}

TEST(Blif, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# a comment\n"
      ".model c\n\n"
      ".inputs a\n"
      "# another\n"
      ".outputs o\n"
      ".names a o\n1 1\n"
      ".end\n";
  EXPECT_NO_THROW((void)from_blif(text));
}

// --- random netlist property sweep ---------------------------------------

/// Builds a random layered DAG of library gates over `n_inputs` inputs.
Netlist random_netlist(unsigned n_inputs, unsigned n_gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Netlist nl;
  std::vector<NetId> pool;
  for (unsigned i = 0; i < n_inputs; ++i) {
    const NetId n = nl.add_net();
    nl.mark_input(n);
    pool.push_back(n);
  }
  const GateType kinds[] = {GateType::kNot, GateType::kBuf,  GateType::kAnd,
                            GateType::kOr,  GateType::kNand, GateType::kNor,
                            GateType::kXor, GateType::kXnor};
  for (unsigned g = 0; g < n_gates; ++g) {
    const GateType t = kinds[rng() % std::size(kinds)];
    const NetId a = pool[rng() % pool.size()];
    const NetId b = pool[rng() % pool.size()];
    pool.push_back(nl.add_gate(t, a, b));
  }
  // Mark the last few nets as outputs.
  for (unsigned o = 0; o < 4 && o < pool.size(); ++o) {
    nl.mark_output(pool[pool.size() - 1 - o]);
  }
  nl.finalize();
  return nl;
}

/// Naive fixpoint evaluator as the oracle for levelized evaluation.
std::vector<bool> fixpoint_eval(const Netlist& nl,
                                const std::vector<bool>& inputs) {
  std::vector<bool> val(nl.net_count(), false);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    val[nl.inputs()[i]] = inputs[i];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GateInst& g : nl.gates()) {
      const bool b = g.in1 != kInvalidNet && val[g.in1];
      const bool v = eval_gate(g.type, val[g.in0], b);
      if (v != val[g.out]) {
        val[g.out] = v;
        changed = true;
      }
    }
  }
  return val;
}

class RandomNetlistSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetlistSweep, LevelizedMatchesFixpointAndBlifRoundTrips) {
  const Netlist nl = random_netlist(6, 40, GetParam());
  GateSim simu(nl);
  std::mt19937_64 rng(GetParam() ^ 0xABCD);
  for (int step = 0; step < 50; ++step) {
    std::vector<bool> in(6);
    for (int i = 0; i < 6; ++i) {
      in[i] = (rng() & 1u) != 0;
      simu.set_input(nl.inputs()[i], in[i]);
    }
    simu.eval();
    const auto oracle = fixpoint_eval(nl, in);
    for (NetId n = 0; n < nl.net_count(); ++n) {
      ASSERT_EQ(simu.value(n), oracle[n]) << "net " << n << " step " << step;
    }
  }
  // And the BLIF round trip preserves behaviour.
  const BlifModel parsed = from_blif(nl.to_blif("rand"));
  expect_equivalent(nl, parsed.netlist, 60, GetParam() ^ 0x1234);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace ahbp::gate
