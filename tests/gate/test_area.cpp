// Tests for NAND2-equivalent area estimation.

#include "gate/area.hpp"

#include <gtest/gtest.h>

#include "gate/synth.hpp"

namespace ahbp::gate {
namespace {

TEST(Area, FactorsCoverEveryGateType) {
  AreaFactors f;
  for (const GateType t : {GateType::kNot, GateType::kBuf, GateType::kAnd,
                           GateType::kOr, GateType::kNand, GateType::kNor,
                           GateType::kXor, GateType::kXnor, GateType::kDff}) {
    EXPECT_GT(f.of(t), 0.0) << to_string(t);
  }
  EXPECT_GT(f.of(GateType::kXor), f.of(GateType::kNand));
  EXPECT_GT(f.of(GateType::kDff), f.of(GateType::kAnd));
}

TEST(Area, HandComputedNetlist) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_input(a);
  nl.mark_input(b);
  const NetId x = nl.add_gate(GateType::kAnd, a, b);
  const NetId y = nl.add_gate(GateType::kNot, x);
  const NetId q = nl.add_dff(y, "q");
  nl.mark_output(q);
  nl.finalize();
  const AreaFactors f;
  EXPECT_DOUBLE_EQ(area_nand2(nl, f), f.and_gate + f.not_gate + f.dff);
}

TEST(Area, GrowsWithStructureSize) {
  EXPECT_GT(area_nand2(build_onehot_decoder(16).nl),
            area_nand2(build_onehot_decoder(4).nl));
  EXPECT_GT(area_nand2(build_mux(32, 4).nl), area_nand2(build_mux(8, 4).nl));
  EXPECT_GT(area_nand2(build_mux(16, 8).nl), area_nand2(build_mux(16, 2).nl));
  EXPECT_GT(area_nand2(build_priority_arbiter(8).nl),
            area_nand2(build_priority_arbiter(2).nl));
}

TEST(Area, AhbEstimateShape) {
  const AhbAreaEstimate e = estimate_ahb_area(3, 4);
  EXPECT_GT(e.decoder, 0.0);
  EXPECT_GT(e.arbiter, 0.0);
  // The wide master-side mux dominates the fabric area, mirroring its
  // dominance of the power picture (Fig. 6).
  EXPECT_GT(e.m2s_mux, e.s2m_mux);
  EXPECT_GT(e.m2s_mux, e.decoder);
  EXPECT_GT(e.m2s_mux, e.arbiter);
  EXPECT_NEAR(e.total(), e.decoder + e.m2s_mux + e.s2m_mux + e.arbiter, 1e-9);
}

TEST(Area, MoreSlavesMoreFabric) {
  const AhbAreaEstimate small = estimate_ahb_area(2, 2);
  const AhbAreaEstimate big = estimate_ahb_area(2, 8);
  EXPECT_GT(big.decoder, small.decoder);
  EXPECT_GT(big.s2m_mux, small.s2m_mux);
  EXPECT_GT(big.total(), small.total());
}

TEST(Area, MoreMastersMoreFabric) {
  EXPECT_GT(estimate_ahb_area(8, 3).total(), estimate_ahb_area(2, 3).total());
}

}  // namespace
}  // namespace ahbp::gate
