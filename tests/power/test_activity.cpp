// Unit tests for Hamming utilities and the Activity instrumentation class.

#include "power/activity.hpp"

#include <gtest/gtest.h>

namespace ahbp::power {
namespace {

TEST(Hamming, BasicProperties) {
  EXPECT_EQ(hamming(0, 0), 0u);
  EXPECT_EQ(hamming(0b1010, 0b1010), 0u);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4u);
  EXPECT_EQ(hamming(0, ~0ull), 64u);
  EXPECT_EQ(hamming(0xFF, 0x00), 8u);
  EXPECT_EQ(hamming(1, 2), 2u);
}

TEST(Hamming, Symmetric) {
  EXPECT_EQ(hamming(0xCAFE, 0xBEEF), hamming(0xBEEF, 0xCAFE));
}

TEST(Hamming, ConstexprUsable) {
  static_assert(hamming(0b111, 0b000) == 3);
  SUCCEED();
}

TEST(ActivityChannel, FirstObservationCountsNothing) {
  ActivityChannel ch;
  EXPECT_EQ(ch.store_activity(0xFFFF), 0u);
  EXPECT_EQ(ch.bit_change_count(), 0u);
  EXPECT_EQ(ch.sample_count(), 1u);
}

TEST(ActivityChannel, AccumulatesHammingDistances) {
  ActivityChannel ch;
  ch.store_activity(0b0000);
  EXPECT_EQ(ch.store_activity(0b0011), 2u);
  EXPECT_EQ(ch.store_activity(0b0111), 1u);
  EXPECT_EQ(ch.bit_change_count(), 3u);
  EXPECT_EQ(ch.last_hd(), 1u);
  EXPECT_EQ(ch.last_value(), 0b0111u);
  EXPECT_EQ(ch.sample_count(), 3u);
}

TEST(ActivityChannel, MeanHd) {
  ActivityChannel ch;
  EXPECT_DOUBLE_EQ(ch.mean_hd(), 0.0);
  ch.store_activity(0);
  EXPECT_DOUBLE_EQ(ch.mean_hd(), 0.0);  // one sample: no transitions yet
  ch.store_activity(0b1111);  // HD 4
  ch.store_activity(0b1110);  // HD 1
  EXPECT_DOUBLE_EQ(ch.mean_hd(), 2.5);
}

TEST(ActivityChannel, ResetClearsEverything) {
  ActivityChannel ch;
  ch.store_activity(5);
  ch.store_activity(6);
  ch.reset();
  EXPECT_EQ(ch.bit_change_count(), 0u);
  EXPECT_EQ(ch.sample_count(), 0u);
  EXPECT_EQ(ch.store_activity(0xFF), 0u);  // first sample again
}

TEST(Activity, ChannelsAreCreatedOnDemand) {
  Activity a;
  EXPECT_EQ(a.find("haddr"), nullptr);
  a.channel("haddr").store_activity(1);
  EXPECT_NE(a.find("haddr"), nullptr);
  EXPECT_EQ(a.channels().size(), 1u);
}

TEST(Activity, BitChangeCountSumsChannels) {
  Activity a;
  a.channel("x").store_activity(0);
  a.channel("x").store_activity(0b11);  // 2
  a.channel("y").store_activity(0);
  a.channel("y").store_activity(0b111);  // 3
  EXPECT_EQ(a.bit_change_count(), 5u);
}

TEST(Activity, ResetClearsChannels) {
  Activity a;
  a.channel("x").store_activity(1);
  a.reset();
  EXPECT_TRUE(a.channels().empty());
}

}  // namespace
}  // namespace ahbp::power
