// Integration tests: power estimation over the live AHB testbench, the
// three integration styles, and the power trace.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

using ahb::AhbBus;
using ahb::DefaultMaster;
using ahb::MemorySlave;
using ahb::TrafficMaster;

/// The paper's testbench plus a power estimator.
struct PowerBench {
  explicit PowerBench(AhbPowerEstimator::Config cfg = AhbPowerEstimator::Config{})
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        m1(&top, "m1", bus, {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 11}),
        m2(&top, "m2", bus, {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 22}),
        s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000}),
        s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000}),
        s3(&top, "s3", bus, {.base = 0x2000, .size = 0x1000}) {
    bus.finalize();
    est = std::make_unique<AhbPowerEstimator>(&top, "power", bus, cfg);
  }

  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
  DefaultMaster dm;
  TrafficMaster m1, m2;
  MemorySlave s1, s2, s3;
  std::unique_ptr<AhbPowerEstimator> est;
};

TEST(Estimator, RequiresFinalizedBus) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  EXPECT_THROW(AhbPowerEstimator(&top, "p", bus), sim::SimError);
}

TEST(Estimator, AccumulatesEnergyOverRun) {
  PowerBench b;
  b.run_cycles(1000);
  EXPECT_GT(b.est->total_energy(), 0.0);
  // The clock's first falling edge is at 15 ns, so a 10 us run samples
  // 999 full cycles.
  EXPECT_GE(b.est->fsm().cycles(), 999u);
}

TEST(Estimator, DisabledEstimatorAccumulatesNothing) {
  PowerBench b(AhbPowerEstimator::Config{.enabled = false});
  b.run_cycles(500);
  EXPECT_DOUBLE_EQ(b.est->total_energy(), 0.0);
  EXPECT_EQ(b.est->fsm().cycles(), 0u);
}

TEST(Estimator, ReenableMidRun) {
  PowerBench b(AhbPowerEstimator::Config{.enabled = false});
  b.run_cycles(200);
  EXPECT_EQ(b.est->fsm().cycles(), 0u);
  b.est->set_enabled(true);
  b.run_cycles(200);
  EXPECT_EQ(b.est->fsm().cycles(), 200u);
  EXPECT_GT(b.est->total_energy(), 0.0);
}

TEST(Estimator, PaperShapeDataPathDominatesArbitration) {
  // The paper's headline: ~87% of the energy in data-transfer
  // instructions with no handover, ~13% in arbitration. We require the
  // same ordering with generous margins.
  PowerBench b;
  b.run_cycles(5000);
  const double data = data_transfer_share(b.est->fsm());
  const double arb = arbitration_share(b.est->fsm());
  EXPECT_GT(data, 0.6) << format_instruction_table(b.est->fsm());
  EXPECT_LT(arb, 0.35);
  EXPECT_GT(arb, 0.0);
  EXPECT_GT(data, arb * 3);
}

TEST(Estimator, PaperShapeM2sDominatesArbiterPower) {
  PowerBench b;
  b.run_cycles(5000);
  const BlockEnergy& e = b.est->block_totals();
  EXPECT_GT(e.m2s, 10 * e.arb) << format_block_breakdown(e);
  EXPECT_GT(e.m2s, e.dec);
  EXPECT_GT(e.m2s, e.s2m);
  EXPECT_GT(e.s2m, 0.0);
  EXPECT_GT(e.dec, 0.0);
  EXPECT_GT(e.arb, 0.0);
}

TEST(Estimator, InstructionAveragesInPaperBand) {
  PowerBench b;
  b.run_cycles(5000);
  const auto& tab = b.est->fsm().instructions();
  ASSERT_TRUE(tab.count("WRITE_READ"));
  ASSERT_TRUE(tab.count("READ_WRITE"));
  for (const char* name : {"WRITE_READ", "READ_WRITE"}) {
    const double avg = tab.at(name).average();
    EXPECT_GT(avg, 2e-12) << name;
    EXPECT_LT(avg, 60e-12) << name;
  }
}

TEST(Estimator, PaperInstructionsAppear)
{
  PowerBench b;
  b.run_cycles(5000);
  const auto& tab = b.est->fsm().instructions();
  // The five instructions of the paper's Table 1:
  for (const char* name : {"IDLE_HO_IDLE_HO", "IDLE_HO_WRITE", "READ_WRITE",
                           "READ_IDLE_HO", "WRITE_READ"}) {
    EXPECT_TRUE(tab.count(name)) << "missing instruction " << name << "\n"
                                 << format_instruction_table(b.est->fsm());
  }
}

TEST(Estimator, TraceProducesWindows) {
  PowerBench b(AhbPowerEstimator::Config{.trace_window = sim::SimTime::ns(100)});
  b.run_cycles(1000);  // 10 us
  b.est->flush_trace();
  ASSERT_NE(b.est->trace(), nullptr);
  const auto& pts = b.est->trace()->points();
  ASSERT_GE(pts.size(), 90u);
  // Total power is the sum of the block powers.
  const auto& p = pts[10];
  EXPECT_NEAR(b.est->trace()->power_total(p),
              b.est->trace()->power_arb(p) + b.est->trace()->power_dec(p) +
                  b.est->trace()->power_m2s(p) + b.est->trace()->power_s2m(p),
              1e-9);
}

TEST(Estimator, TraceEnergyMatchesTotalEnergy) {
  PowerBench b(AhbPowerEstimator::Config{.trace_window = sim::SimTime::ns(250)});
  b.run_cycles(800);
  b.est->flush_trace();
  double trace_total = 0.0;
  for (const auto& p : b.est->trace()->points()) trace_total += p.energy.total();
  EXPECT_NEAR(trace_total, b.est->total_energy(), b.est->total_energy() * 1e-9);
}

TEST(Estimator, NoTraceByDefault) {
  PowerBench b;
  EXPECT_EQ(b.est->trace(), nullptr);
  b.est->flush_trace();  // no-op, no crash
}

TEST(Styles, LocalAndGlobalAgreeExactly) {
  // The global analyzer runs the same FSM on the same per-cycle views, so
  // the two styles must produce identical energy.
  PowerBench b;
  GlobalPowerAnalyzer analyzer(
      &b.top, "analyzer",
      PowerFsm::Config{.n_masters = b.bus.n_masters(), .n_slaves = b.bus.n_slaves()});
  BusActivityProbe probe(&b.top, "probe", b.bus, analyzer);
  b.run_cycles(2000);
  EXPECT_GT(analyzer.total_energy(), 0.0);
  EXPECT_NEAR(analyzer.total_energy(), b.est->total_energy(),
              b.est->total_energy() * 1e-12);
  EXPECT_GE(probe.posted(), 1999u);
}

TEST(Styles, PrivateStyleSameOrderOfMagnitude) {
  // Event-level accounting differs from cycle-level sampling (it sees
  // intra-cycle changes separately) but must land in the same ballpark
  // and preserve the M2S >> ARB ordering.
  PowerBench b;
  PrivatePowerModel priv(&b.top, "priv", b.bus);
  b.run_cycles(2000);
  EXPECT_GT(priv.total_energy(), 0.0);
  const double ratio = priv.total_energy() / b.est->total_energy();
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
  EXPECT_GT(priv.block_totals().m2s, priv.block_totals().arb);
  EXPECT_GT(priv.event_count(), 0u);
}

TEST(Styles, GlobalAnalyzerIsBusAgnostic) {
  // The analyzer can be driven directly, with no bus at all.
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  GlobalPowerAnalyzer analyzer(&top, "an",
                               PowerFsm::Config{.n_masters = 2, .n_slaves = 2});
  CycleView v;
  v.data_active = true;
  v.data_write = true;
  v.haddr = 0xFF;
  v.hwdata = 0xFF00FF00;
  analyzer.post_cycle(v);
  analyzer.post_cycle(v);
  EXPECT_GT(analyzer.total_energy(), 0.0);
}

}  // namespace
}  // namespace ahbp::power
