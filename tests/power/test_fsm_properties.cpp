// Parameterized property tests for the power FSM across configuration
// shapes: non-negativity, energy conservation, monotonicity in activity,
// and scale behaviour in the configuration parameters.

#include <gtest/gtest.h>

#include <random>

#include "power/power_fsm.hpp"

namespace ahbp::power {
namespace {

struct Shape {
  unsigned masters;
  unsigned slaves;
  unsigned data_width;
};

class FsmShapes : public ::testing::TestWithParam<Shape> {
protected:
  PowerFsm::Config cfg() const {
    const auto [m, s, w] = GetParam();
    return PowerFsm::Config{.n_masters = m, .n_slaves = s, .data_width = w};
  }
};

TEST_P(FsmShapes, EnergyIsNonNegativeAndConserved) {
  PowerFsm fsm(cfg());
  std::mt19937_64 rng(GetParam().masters * 1000 + GetParam().slaves);
  for (int i = 0; i < 300; ++i) {
    CycleView v;
    v.haddr = static_cast<std::uint32_t>(rng());
    v.hwdata = static_cast<std::uint32_t>(rng());
    v.hrdata = static_cast<std::uint32_t>(rng());
    v.data_active = (rng() & 1u) != 0;
    v.data_write = (rng() & 1u) != 0;
    v.data_slave = static_cast<std::uint8_t>(rng() % GetParam().slaves);
    v.hmaster = static_cast<std::uint8_t>(rng() % GetParam().masters);
    v.req_vector = static_cast<std::uint32_t>(rng()) &
                   ((1u << GetParam().masters) - 1);
    v.grant_vector = 1u << v.hmaster;
    const auto r = fsm.step(v);
    EXPECT_GE(r.blocks.arb, 0.0);
    EXPECT_GE(r.blocks.dec, 0.0);
    EXPECT_GE(r.blocks.m2s, 0.0);
    EXPECT_GE(r.blocks.s2m, 0.0);
  }
  // Conservation: instruction energies == block totals == total.
  double instr_sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& [name, st] : fsm.instructions()) {
    instr_sum += st.energy;
    count += st.count;
  }
  EXPECT_NEAR(instr_sum, fsm.total_energy(), fsm.total_energy() * 1e-9);
  EXPECT_EQ(count, fsm.cycles());
  double master_sum = 0.0;
  for (double e : fsm.per_master_energy()) master_sum += e;
  EXPECT_NEAR(master_sum, fsm.total_energy(), fsm.total_energy() * 1e-9);
}

TEST_P(FsmShapes, MoreActivityNeverCostsLess) {
  // Two identical cycle streams except one flips more payload bits.
  auto run = [this](std::uint32_t data_mask) {
    PowerFsm fsm(cfg());
    for (int i = 0; i < 100; ++i) {
      CycleView v;
      v.data_active = true;
      v.data_write = true;
      v.haddr = 0x100;
      v.hwdata = (i % 2 != 0) ? data_mask : 0u;
      v.grant_vector = 1;
      fsm.step(v);
    }
    return fsm.total_energy();
  };
  EXPECT_LT(run(0x00000000), run(0x000000FF));
  EXPECT_LT(run(0x000000FF), run(0x00FFFFFF));
  EXPECT_LT(run(0x00FFFFFF), run(0xFFFFFFFF));
}

TEST_P(FsmShapes, IdleCyclesAreCheapestSteadyState) {
  PowerFsm fsm(cfg());
  CycleView idle;
  idle.grant_vector = 1;
  fsm.step(idle);
  const double idle_cost = fsm.step(idle).blocks.total();

  PowerFsm busy(cfg());
  CycleView b;
  b.data_active = true;
  b.data_write = true;
  b.haddr = 0xAAAAAAAA;
  b.hwdata = 0x55555555;
  b.grant_vector = 1;
  busy.step(b);
  b.haddr = ~b.haddr;
  b.hwdata = ~b.hwdata;
  const double busy_cost = busy.step(b).blocks.total();
  EXPECT_LT(idle_cost, busy_cost / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FsmShapes,
    ::testing::Values(Shape{2, 2, 32}, Shape{3, 4, 32}, Shape{4, 8, 32},
                      Shape{8, 16, 32}, Shape{3, 4, 16}, Shape{3, 4, 64},
                      Shape{16, 2, 32}));

TEST(FsmScaling, WiderDataBusCostsMorePerTransfer) {
  auto energy_at = [](unsigned width) {
    PowerFsm fsm(PowerFsm::Config{.n_masters = 3, .n_slaves = 4,
                                  .data_width = width});
    CycleView v;
    v.data_active = true;
    v.data_write = true;
    v.grant_vector = 1;
    fsm.step(v);
    // Select-change cycle: the width-scaled k_sel term dominates.
    CycleView h = v;
    h.hmaster = 1;
    h.grant_vector = 2;
    fsm.step(h);
    return fsm.total_energy();
  };
  EXPECT_LT(energy_at(16), energy_at(32));
  EXPECT_LT(energy_at(32), energy_at(64));
}

TEST(FsmScaling, MoreSlavesCostMorePerAddressFlip) {
  auto energy_at = [](unsigned slaves) {
    PowerFsm fsm(PowerFsm::Config{.n_masters = 3, .n_slaves = slaves});
    CycleView v;
    v.grant_vector = 1;
    fsm.step(v);
    v.haddr = 0xFFFFFFFF;
    return fsm.step(v).blocks.dec;
  };
  EXPECT_LT(energy_at(2), energy_at(8));
  EXPECT_LT(energy_at(8), energy_at(32));
}

}  // namespace
}  // namespace ahbp::power
