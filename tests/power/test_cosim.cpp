// Tests for the live gate-level co-simulation cross-check.

#include "power/cosim.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

using ahb::AhbBus;
using ahb::DefaultMaster;
using ahb::MemorySlave;
using ahb::TrafficMaster;

struct CosimBench {
  CosimBench()
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        m1(&top, "m1", bus, {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 21}),
        m2(&top, "m2", bus, {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 22}),
        s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000}),
        s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000}) {
    bus.finalize();
    check = std::make_unique<GateLevelCrossCheck>(&top, "cosim", bus);
  }

  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
  DefaultMaster dm;
  TrafficMaster m1, m2;
  MemorySlave s1, s2;
  std::unique_ptr<GateLevelCrossCheck> check;
};

TEST(CosimSeries, StatisticsOnKnownData) {
  CosimSeries s;
  s.model = {1.0, 2.0, 3.0, 4.0};
  s.gate = {2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(s.model_total(), 10.0);
  EXPECT_DOUBLE_EQ(s.gate_total(), 20.0);
  EXPECT_NEAR(s.correlation(), 1.0, 1e-12);  // perfectly linear
  EXPECT_DOUBLE_EQ(s.totals_ratio(), 0.5);
}

TEST(CosimSeries, DegenerateCases) {
  CosimSeries s;
  EXPECT_DOUBLE_EQ(s.correlation(), 0.0);
  EXPECT_DOUBLE_EQ(s.totals_ratio(), 0.0);
  s.model = {1.0, 1.0};
  s.gate = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(s.correlation(), 0.0);  // zero model variance
}

TEST(Cosim, RequiresFinalizedBus) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  EXPECT_THROW(GateLevelCrossCheck(&top, "c", bus), sim::SimError);
}

TEST(Cosim, SeriesGrowWithCycles) {
  CosimBench b;
  b.run_cycles(500);
  EXPECT_GE(b.check->cycles(), 499u);
  EXPECT_EQ(b.check->mux_series().model.size(), b.check->cycles());
  EXPECT_EQ(b.check->mux_series().gate.size(), b.check->cycles());
  EXPECT_EQ(b.check->arbiter_series().model.size(), b.check->cycles());
}

TEST(Cosim, MuxModelTracksGateLevelOnLiveTraffic) {
  CosimBench b;
  b.run_cycles(3000);
  const CosimSeries& s = b.check->mux_series();
  EXPECT_GT(s.gate_total(), 0.0);
  EXPECT_GT(s.correlation(), 0.6)
      << "macromodel should track gate-level per-cycle energy";
  const double r = s.totals_ratio();
  EXPECT_GT(r, 0.2);
  EXPECT_LT(r, 5.0);
}

TEST(Cosim, ArbiterModelTracksGateLevelOnLiveTraffic) {
  CosimBench b;
  b.run_cycles(3000);
  const CosimSeries& s = b.check->arbiter_series();
  EXPECT_GT(s.gate_total(), 0.0);
  // The simplified FSM's grant timing differs from the live arbiter's
  // hold-while-requesting rule, so per-cycle correlation is moderate;
  // total energy must still land in the right band.
  EXPECT_GT(s.correlation(), 0.25);
  const double r = s.totals_ratio();
  EXPECT_GT(r, 0.3);
  EXPECT_LT(r, 3.0);
}

TEST(Cosim, BatchedEngineMatchesPerCycleExactly) {
  // Two cross-checks watch the same live bus: one evaluates the gate
  // structures cycle by cycle, the other buffers 64 cycles and replays
  // them as BitSim lanes. Per-cycle gate energies must be bit-identical.
  CosimBench b;
  auto batched = std::make_unique<GateLevelCrossCheck>(
      &b.top, "cosimb", b.bus, gate::Technology::default_2003(),
      GateLevelCrossCheck::Engine::kBatched);
  ASSERT_EQ(batched->engine(), GateLevelCrossCheck::Engine::kBatched);
  b.run_cycles(500);  // not a multiple of 64: final flush is partial

  const CosimSeries& mux_pc = b.check->mux_series();
  const CosimSeries& mux_bt = batched->mux_series();  // flushes the tail
  ASSERT_EQ(mux_bt.gate.size(), mux_pc.gate.size());
  ASSERT_EQ(mux_bt.model.size(), mux_pc.model.size());
  for (std::size_t i = 0; i < mux_pc.gate.size(); ++i) {
    ASSERT_EQ(mux_bt.gate[i], mux_pc.gate[i]) << "mux cycle " << i;
    ASSERT_EQ(mux_bt.model[i], mux_pc.model[i]) << "mux cycle " << i;
  }
  const CosimSeries& arb_pc = b.check->arbiter_series();
  const CosimSeries& arb_bt = batched->arbiter_series();
  ASSERT_EQ(arb_bt.gate.size(), arb_pc.gate.size());
  for (std::size_t i = 0; i < arb_pc.gate.size(); ++i) {
    ASSERT_EQ(arb_bt.gate[i], arb_pc.gate[i]) << "arbiter cycle " << i;
    ASSERT_EQ(arb_bt.model[i], arb_pc.model[i]) << "arbiter cycle " << i;
  }
}

TEST(Cosim, BatchedEngineSurvivesMidRunFlush) {
  // Reading the series mid-run forces a partial flush; recording must
  // continue seamlessly (the carry keeps lane 0's "previous" assignment
  // correct across the flush boundary).
  CosimBench b;
  auto batched = std::make_unique<GateLevelCrossCheck>(
      &b.top, "cosimb", b.bus, gate::Technology::default_2003(),
      GateLevelCrossCheck::Engine::kBatched);
  b.run_cycles(100);
  const std::size_t at_100 = batched->mux_series().gate.size();  // partial flush
  EXPECT_EQ(at_100, batched->cycles());
  b.run_cycles(200);

  const CosimSeries& mux_pc = b.check->mux_series();
  const CosimSeries& mux_bt = batched->mux_series();
  ASSERT_EQ(mux_bt.gate.size(), mux_pc.gate.size());
  for (std::size_t i = 0; i < mux_pc.gate.size(); ++i) {
    ASSERT_EQ(mux_bt.gate[i], mux_pc.gate[i]) << "mux cycle " << i;
  }
  const CosimSeries& arb_pc = b.check->arbiter_series();
  const CosimSeries& arb_bt = batched->arbiter_series();
  ASSERT_EQ(arb_bt.gate.size(), arb_pc.gate.size());
  for (std::size_t i = 0; i < arb_pc.gate.size(); ++i) {
    ASSERT_EQ(arb_bt.gate[i], arb_pc.gate[i]) << "arbiter cycle " << i;
  }
}

TEST(Cosim, QuietBusMeansQuietGateStructures) {
  // No traffic masters: only the default master idles on the bus, so the
  // gate-level structures see (almost) no switching.
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  DefaultMaster dm2(&top, "dm2", bus);  // 2 masters so shapes are buildable
  MemorySlave s(&top, "s", bus, {.base = 0, .size = 0x100});
  bus.finalize();
  GateLevelCrossCheck check(&top, "cosim", bus);
  k.run(sim::SimTime::us(5));
  EXPECT_DOUBLE_EQ(check.mux_series().gate_total(), 0.0);
  EXPECT_DOUBLE_EQ(check.mux_series().model_total(), 0.0);
}

}  // namespace
}  // namespace ahbp::power
