// Tests for transaction reconstruction and energy attribution: synthetic
// cycle-view sequences with hand-computed expectations, plus the paper
// testbench end to end (conservation, determinism, retry rework).

#include <gtest/gtest.h>

#include <sstream>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"
#include "telemetry/telemetry.hpp"

#include "../ahb/testbench.hpp"

namespace ahbp::power {
namespace {

using ahb::FaultySlave;
using ahb::ScriptedMaster;
using ahb::test::Bench;
using Op = ScriptedMaster::Op;

Op write_op(std::uint32_t addr, std::uint32_t data) {
  return Op{Op::Kind::kWrite, addr, data, 0};
}
Op read_op(std::uint32_t addr) { return Op{Op::Kind::kRead, addr, 0, 0}; }

constexpr std::uint8_t kIdle = 0;
constexpr std::uint8_t kBusy = 1;
constexpr std::uint8_t kNonSeq = 2;
constexpr std::uint8_t kSeq = 3;
constexpr std::uint8_t kRespOkay = 0;
constexpr std::uint8_t kRespRetry = 2;

// Every synthetic cycle spends the same per-block joules, so totals are
// easy to count by hand: 15 J per cycle, split 1/2/4/8.
constexpr BlockEnergy kE{.arb = 1.0, .dec = 2.0, .m2s = 4.0, .s2m = 8.0};

TransactionTracer make_tracer(telemetry::MetricsRegistry* metrics = nullptr) {
  return TransactionTracer({.n_masters = 3, .n_slaves = 4, .metrics = metrics});
}

CycleView idle_cycle(std::uint8_t owner, std::uint32_t req = 0) {
  CycleView v;
  v.htrans = kIdle;
  v.hmaster = owner;
  v.hready = true;
  v.req_vector = req;
  return v;
}

CycleView addr_cycle(std::uint8_t master, std::uint8_t trans,
                     std::uint8_t burst, bool write) {
  CycleView v;
  v.htrans = trans;
  v.hburst = burst;
  v.hwrite = write;
  v.hmaster = master;
  v.hready = true;
  // A master holds HBUSREQ at least through its first address beat, so
  // the arbitration-wait tracking sees a continuous request.
  v.req_vector = 1u << master;
  return v;
}

void add_data_phase(CycleView& v, std::uint8_t master, std::uint8_t slave,
                    bool write, bool hready, std::uint8_t resp = kRespOkay) {
  v.data_active = true;
  v.hmaster_data = master;
  v.data_slave = slave;
  v.data_write = write;
  v.hready = hready;
  v.hresp = resp;
}

// ---------------------------------------------------------------------------
// Synthetic sequences

TEST(TxnTracer, SingleWriteWithArbWaitAndWaitState) {
  TransactionTracer tracer = make_tracer();

  // Master 1 requests for two cycles while master 0 idles, wins the bus,
  // issues one SINGLE write that takes one wait state.
  tracer.on_cycle(idle_cycle(0, /*req=*/1u << 1), kE);
  tracer.on_cycle(idle_cycle(0, /*req=*/1u << 1), kE);
  tracer.on_cycle(addr_cycle(1, kNonSeq, /*SINGLE*/ 0, /*write=*/true), kE);
  CycleView wait = idle_cycle(1);
  add_data_phase(wait, 1, /*slave=*/2, true, /*hready=*/false);
  tracer.on_cycle(wait, kE);
  CycleView done = idle_cycle(1);
  add_data_phase(done, 1, /*slave=*/2, true, /*hready=*/true);
  tracer.on_cycle(done, kE);
  tracer.flush();

  ASSERT_EQ(tracer.log().size(), 1u);
  const telemetry::TxnRecord& r = tracer.log().records()[0];
  EXPECT_EQ(r.master, 1u);
  EXPECT_EQ(r.slave, 2u);
  EXPECT_EQ(r.kind, "SINGLE");
  EXPECT_TRUE(r.write);
  EXPECT_EQ(r.req_tick, 0u);
  EXPECT_EQ(r.start_tick, 2u);
  EXPECT_EQ(r.end_tick, 5u);
  EXPECT_EQ(r.arb_cycles, 2u);
  EXPECT_EQ(r.addr_cycles, 1u);
  EXPECT_EQ(r.data_beats, 1u);
  EXPECT_EQ(r.wait_cycles, 1u);
  EXPECT_EQ(r.busy_cycles, 0u);
  EXPECT_EQ(r.retries, 0u);

  // Hand count: the two idle cycles (15 J each) and the non-owned blocks
  // (s2m while only the address phase runs, arb while only the data
  // phase runs) belong to the bus; the rest to the transaction.
  EXPECT_DOUBLE_EQ(r.energy_j, 35.0);
  const EnergyAttributor& a = tracer.attribution();
  EXPECT_DOUBLE_EQ(a.master_energy()[1], 35.0);
  EXPECT_DOUBLE_EQ(a.slave_energy()[2], 35.0);
  EXPECT_DOUBLE_EQ(a.bus_energy(), 40.0);
  EXPECT_DOUBLE_EQ(a.masters_total() + a.bus_energy(), 5 * kE.total());
}

TEST(TxnTracer, Incr4BurstWithBusyBeat) {
  TransactionTracer tracer = make_tracer();

  // INCR4 read by master 0 with a BUSY inserted before beat 3. The BUSY
  // cycle leaves a one-cycle hole in the data phase but the burst stays
  // one transaction.
  tracer.on_cycle(addr_cycle(0, kNonSeq, /*INCR4*/ 3, false), kE);
  CycleView v = addr_cycle(0, kSeq, 3, false);
  add_data_phase(v, 0, 1, false, true);
  tracer.on_cycle(v, kE);
  v = addr_cycle(0, kBusy, 3, false);
  add_data_phase(v, 0, 1, false, true);
  tracer.on_cycle(v, kE);
  tracer.on_cycle(addr_cycle(0, kSeq, 3, false), kE);  // BUSY's empty data slot
  v = addr_cycle(0, kSeq, 3, false);
  add_data_phase(v, 0, 1, false, true);
  tracer.on_cycle(v, kE);
  v = idle_cycle(0);
  add_data_phase(v, 0, 1, false, true);
  tracer.on_cycle(v, kE);
  tracer.flush();

  ASSERT_EQ(tracer.log().size(), 1u);
  const telemetry::TxnRecord& r = tracer.log().records()[0];
  EXPECT_EQ(r.kind, "INCR4");
  EXPECT_FALSE(r.write);
  EXPECT_EQ(r.arb_cycles, 0u);
  EXPECT_EQ(r.addr_cycles, 5u);  // 4 address beats + 1 BUSY
  EXPECT_EQ(r.data_beats, 4u);
  EXPECT_EQ(r.busy_cycles, 1u);
  EXPECT_EQ(r.wait_cycles, 0u);
  EXPECT_EQ(r.end_tick, 6u);  // last data beat lands in cycle 5

  const EnergyAttributor& a = tracer.attribution();
  EXPECT_DOUBLE_EQ(a.masters_total() + a.bus_energy(), 6 * kE.total());
}

TEST(TxnTracer, RetryReissueIsANewTransaction) {
  TransactionTracer tracer = make_tracer();

  // Beat gets a two-cycle RETRY response; the master re-issues. The
  // RETRY lands on the first transaction, the completed beat on the
  // second.
  tracer.on_cycle(addr_cycle(0, kNonSeq, 0, true), kE);
  CycleView v = idle_cycle(0);
  add_data_phase(v, 0, 1, true, /*hready=*/false, kRespRetry);
  tracer.on_cycle(v, kE);
  v = idle_cycle(0);
  add_data_phase(v, 0, 1, true, /*hready=*/true, kRespRetry);
  tracer.on_cycle(v, kE);
  tracer.on_cycle(addr_cycle(0, kNonSeq, 0, true), kE);  // re-issue
  v = idle_cycle(0);
  add_data_phase(v, 0, 1, true, /*hready=*/true, kRespOkay);
  tracer.on_cycle(v, kE);
  tracer.flush();

  ASSERT_EQ(tracer.log().size(), 2u);
  const telemetry::TxnRecord& first = tracer.log().records()[0];
  const telemetry::TxnRecord& second = tracer.log().records()[1];
  EXPECT_EQ(first.retries, 1u);
  EXPECT_EQ(first.data_beats, 0u);
  EXPECT_EQ(second.retries, 0u);
  EXPECT_EQ(second.data_beats, 1u);
  EXPECT_EQ(tracer.master_txns()[0], 2u);
}

TEST(TxnTracer, FlushClosesInFlightAndIsIdempotent) {
  TransactionTracer tracer = make_tracer();
  tracer.on_cycle(addr_cycle(2, kNonSeq, 0, true), kE);
  EXPECT_TRUE(tracer.log().empty());
  tracer.flush();
  ASSERT_EQ(tracer.log().size(), 1u);
  EXPECT_EQ(tracer.log().records()[0].master, 2u);
  EXPECT_GE(tracer.log().records()[0].end_tick,
            tracer.log().records()[0].start_tick + 1);
  tracer.flush();  // second flush must not duplicate the tail
  EXPECT_EQ(tracer.log().size(), 1u);
}

TEST(TxnTracer, DisabledTracerObservesNothing) {
  TransactionTracer tracer = make_tracer();
  tracer.set_enabled(false);
  tracer.on_cycle(addr_cycle(0, kNonSeq, 0, true), kE);
  CycleView v = idle_cycle(0);
  add_data_phase(v, 0, 1, true, true);
  tracer.on_cycle(v, kE);
  tracer.flush();
  EXPECT_TRUE(tracer.log().empty());
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_DOUBLE_EQ(tracer.attribution().bus_energy(), 0.0);
  EXPECT_DOUBLE_EQ(tracer.attribution().masters_total(), 0.0);
}

TEST(TxnTracer, MetricsPublication) {
  telemetry::MetricsRegistry metrics;
  TransactionTracer tracer = make_tracer(&metrics);
  tracer.on_cycle(idle_cycle(0, /*req=*/1u << 1), kE);
  tracer.on_cycle(addr_cycle(1, kNonSeq, 0, true), kE);
  CycleView v = idle_cycle(1);
  add_data_phase(v, 1, 2, true, true);
  tracer.on_cycle(v, kE);
  tracer.flush();

  EXPECT_EQ(metrics.counter("ahb.txn.count").value(), 1u);
  EXPECT_EQ(metrics.counter("ahb.txn.master.1.count").value(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge("ahb.txn.master.1.energy_j").value(),
                   tracer.attribution().master_energy()[1]);
  EXPECT_DOUBLE_EQ(metrics.gauge("ahb.txn.bus_energy_j").value(),
                   tracer.attribution().bus_energy());
  const telemetry::Histogram* h =
      metrics.find_histogram("ahb.txn.arb_latency_cycles");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 1.0);  // requested one cycle before owning
}

// ---------------------------------------------------------------------------
// Full-system integration on the paper testbench

/// The paper's testbench with transaction tracing enabled.
struct TxnBench {
  TxnBench()
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        m1(&top, "m1", bus,
           {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 11}),
        m2(&top, "m2", bus,
           {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 22}),
        s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000, .wait_states = 1}),
        s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000, .wait_states = 1}),
        s3(&top, "s3", bus, {.base = 0x2000, .size = 0x1000}) {
    bus.finalize();
    est = std::make_unique<AhbPowerEstimator>(
        &top, "power", bus, AhbPowerEstimator::Config{.txn_trace = true});
  }

  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  ahb::AhbBus bus;
  ahb::DefaultMaster dm;
  ahb::TrafficMaster m1, m2;
  ahb::MemorySlave s1, s2, s3;
  std::unique_ptr<AhbPowerEstimator> est;
};

TEST(TxnTraceIntegration, AttributionConservesTotalEnergy) {
  TxnBench b;
  b.run_cycles(2000);
  b.est->flush_telemetry();

  const TransactionTracer* tracer = b.est->txn_tracer();
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(tracer->log().size(), 0u);

  const double total = b.est->total_energy();
  ASSERT_GT(total, 0.0);

  // Conservation: attributed masters + the synthetic bus owner must
  // reproduce the estimator total. Same check via the records.
  const EnergyAttributor& a = tracer->attribution();
  EXPECT_NEAR(a.masters_total() + a.bus_energy(), total, 1e-9 * total);
  double record_sum = 0.0;
  for (const auto& r : tracer->log().records()) record_sum += r.energy_j;
  EXPECT_NEAR(record_sum + a.bus_energy(), total, 1e-9 * total);

  // Per-master counts agree between the attributor view and the log.
  std::vector<std::uint64_t> counted(3, 0);
  for (const auto& r : tracer->log().records()) {
    ASSERT_LT(r.master, counted.size());
    ++counted[r.master];
    EXPECT_GE(r.end_tick, r.start_tick + 1);
    EXPECT_GE(r.start_tick, r.req_tick);
  }
  EXPECT_EQ(counted, tracer->master_txns());
}

TEST(TxnTraceIntegration, ExportsAreDeterministic) {
  auto render = [] {
    TxnBench b;
    b.run_cycles(1500);
    b.est->flush_telemetry();
    const TransactionTracer* t = b.est->txn_tracer();
    std::ostringstream os;
    telemetry::write_txn_csv(os, t->log());
    telemetry::write_txn_json(os, t->log(),
                              t->summary(b.est->total_energy()),
                              telemetry::ExportMeta{});
    telemetry::write_chrome_trace(os, t->spans(), nullptr,
                                  telemetry::ExportMeta{});
    return os.str();
  };
  const std::string a = render();
  const std::string b = render();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical across identically seeded runs
}

TEST(TxnTraceIntegration, RetriedTransferAppearsAsRework) {
  // A scripted master against a slave that RETRYs every other access:
  // the retried issue closes with the RETRY counted and zero beats, the
  // re-issue completes as its own transaction.
  Bench b;
  ahb::DefaultMaster dm(&b.top, "dm", b.bus);
  ScriptedMaster m(&b.top, "m", b.bus, {write_op(0x20, 0xBEEF), read_op(0x20)},
                   ScriptedMaster::Options{.retry = true});
  FaultySlave fs(&b.top, "fs", b.bus,
                 {.base = 0, .size = 0x1000, .fail_every_n = 2});
  b.bus.finalize();
  auto est = std::make_unique<AhbPowerEstimator>(
      &b.top, "power", b.bus, AhbPowerEstimator::Config{.txn_trace = true});
  b.run_cycles(200);
  est->flush_telemetry();

  const TransactionTracer* tracer = est->txn_tracer();
  ASSERT_NE(tracer, nullptr);
  std::uint32_t retries = 0;
  std::uint64_t retried_beats = 0;
  std::uint64_t completed = 0;
  for (const auto& r : tracer->log().records()) {
    if (r.retries > 0) retried_beats += r.data_beats;
    retries += r.retries;
    if (r.data_beats > 0) ++completed;
  }
  EXPECT_GT(retries, 0u);          // the fault injector fired
  EXPECT_EQ(retried_beats, 0u);    // RETRYed issues complete no beats
  EXPECT_GE(completed, 2u);        // both ops eventually landed
  EXPECT_GT(m.retries(), 0u);

  const double total = est->total_energy();
  const EnergyAttributor& a = tracer->attribution();
  EXPECT_NEAR(a.masters_total() + a.bus_energy(), total, 1e-9 * total);
}

TEST(TxnTraceIntegration, SummaryMirrorsAttribution) {
  TxnBench b;
  b.run_cycles(500);
  b.est->flush_telemetry();
  const TransactionTracer* t = b.est->txn_tracer();
  const telemetry::TxnSummary s = t->summary(b.est->total_energy());
  EXPECT_DOUBLE_EQ(s.total_energy_j, b.est->total_energy());
  EXPECT_DOUBLE_EQ(s.bus_energy_j, t->attribution().bus_energy());
  EXPECT_EQ(s.master_energy_j, t->attribution().master_energy());
  EXPECT_EQ(s.slave_energy_j, t->attribution().slave_energy());
  EXPECT_EQ(s.master_txns, t->master_txns());
}

}  // namespace
}  // namespace ahbp::power
