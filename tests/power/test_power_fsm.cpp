// Unit tests for the instruction-level power FSM: cycle classification,
// instruction naming, and accounting invariants.

#include "power/power_fsm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace ahbp::power {
namespace {

PowerFsm::Config small_cfg() {
  return PowerFsm::Config{.n_masters = 3, .n_slaves = 4};
}

CycleView idle_view() {
  CycleView v;
  v.grant_vector = 0b001;  // default master granted
  return v;
}

CycleView write_view(std::uint32_t addr, std::uint32_t data) {
  CycleView v = idle_view();
  v.data_active = true;
  v.data_write = true;
  v.haddr = addr;
  v.hwdata = data;
  v.data_slave = 0;
  return v;
}

CycleView read_view(std::uint32_t addr, std::uint32_t data) {
  CycleView v = idle_view();
  v.data_active = true;
  v.data_write = false;
  v.haddr = addr;
  v.hrdata = data;
  v.data_slave = 0;
  return v;
}

TEST(PowerFsmNames, ModeAndInstructionStrings) {
  EXPECT_STREQ(to_string(BusMode::kIdle), "IDLE");
  EXPECT_STREQ(to_string(BusMode::kIdleHo), "IDLE_HO");
  EXPECT_STREQ(to_string(BusMode::kRead), "READ");
  EXPECT_STREQ(to_string(BusMode::kWrite), "WRITE");
  EXPECT_EQ(instruction_name(BusMode::kWrite, BusMode::kRead), "WRITE_READ");
  EXPECT_EQ(instruction_name(BusMode::kIdleHo, BusMode::kIdleHo),
            "IDLE_HO_IDLE_HO");
  EXPECT_EQ(instruction_name(BusMode::kIdle, BusMode::kWrite), "IDLE_WRITE");
}

TEST(PowerFsm, ClassifiesTransferCycles) {
  PowerFsm fsm(small_cfg());
  EXPECT_EQ(fsm.step(write_view(0x10, 0xAA)).mode, BusMode::kWrite);
  EXPECT_EQ(fsm.step(read_view(0x10, 0xAA)).mode, BusMode::kRead);
  EXPECT_EQ(fsm.step(idle_view()).mode, BusMode::kIdle);
}

TEST(PowerFsm, ClassifiesArbitrationAsIdleHo) {
  PowerFsm fsm(small_cfg());
  fsm.step(idle_view());
  // A non-owner requests: arbitration in progress.
  CycleView v = idle_view();
  v.req_vector = 0b010;
  EXPECT_EQ(fsm.step(v).mode, BusMode::kIdleHo);
  // Ownership moves (handover cycle).
  CycleView v2 = idle_view();
  v2.grant_vector = 0b010;
  v2.hmaster = 1;
  v2.req_vector = 0b010;
  EXPECT_EQ(fsm.step(v2).mode, BusMode::kIdleHo);
}

TEST(PowerFsm, OwnerRequestingIsPlainIdle) {
  PowerFsm fsm(small_cfg());
  CycleView v = idle_view();
  v.grant_vector = 0b010;
  v.hmaster = 1;
  v.req_vector = 0b010;  // the owner itself requests: no arbitration
  fsm.step(v);
  EXPECT_EQ(fsm.step(v).mode, BusMode::kIdle);
}

TEST(PowerFsm, InstructionSequenceIsRecorded) {
  PowerFsm fsm(small_cfg());
  fsm.step(idle_view());                 // IDLE_IDLE (first cycle)
  fsm.step(write_view(0x100, 0x1));      // IDLE_WRITE
  fsm.step(read_view(0x100, 0x1));       // WRITE_READ
  fsm.step(write_view(0x104, 0x2));      // READ_WRITE
  fsm.step(idle_view());                 // WRITE_IDLE
  const auto& tab = fsm.instructions();
  EXPECT_EQ(tab.at("IDLE_WRITE").count, 1u);
  EXPECT_EQ(tab.at("WRITE_READ").count, 1u);
  EXPECT_EQ(tab.at("READ_WRITE").count, 1u);
  EXPECT_EQ(tab.at("WRITE_IDLE").count, 1u);
  EXPECT_EQ(fsm.cycles(), 5u);
}

TEST(PowerFsm, InstructionEnergiesSumToTotal) {
  PowerFsm fsm(small_cfg());
  std::mt19937 rng(7);
  for (int i = 0; i < 200; ++i) {
    switch (rng() % 4) {
      case 0: fsm.step(idle_view()); break;
      case 1: fsm.step(write_view(rng(), rng())); break;
      case 2: fsm.step(read_view(rng(), rng())); break;
      default: {
        CycleView v = idle_view();
        v.req_vector = 0b110;
        fsm.step(v);
        break;
      }
    }
  }
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& [name, st] : fsm.instructions()) {
    sum += st.energy;
    count += st.count;
  }
  EXPECT_NEAR(sum, fsm.total_energy(), fsm.total_energy() * 1e-12);
  EXPECT_EQ(count, fsm.cycles());
}

TEST(PowerFsm, DataCyclesCostMoreThanIdleCycles) {
  PowerFsm fsm(small_cfg());
  fsm.step(idle_view());
  const double e_idle = fsm.step(idle_view()).blocks.total();
  const double e_write = fsm.step(write_view(0xDEADBEEF, 0x12345678)).blocks.total();
  EXPECT_GT(e_write, e_idle * 5);
}

TEST(PowerFsm, PerInstructionAverageInPaperBand) {
  // Alternating WRITE-READ with random words: the average instruction
  // energy should land in the paper's order of magnitude (pJ, roughly
  // 5..50 pJ with our synthetic technology).
  PowerFsm fsm(small_cfg());
  std::mt19937 rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t a = 0x400 + 4 * (rng() % 256);
    const std::uint32_t d = rng();
    fsm.step(write_view(a, d));
    fsm.step(read_view(a, d ^ rng()));
  }
  // instructions() returns by value; keep the map alive before indexing.
  const auto tab = fsm.instructions();
  const auto& wr = tab.at("WRITE_READ");
  const auto& rw = tab.at("READ_WRITE");
  EXPECT_GT(wr.average(), 5e-12);
  EXPECT_LT(wr.average(), 50e-12);
  EXPECT_GT(rw.average(), 5e-12);
  EXPECT_LT(rw.average(), 50e-12);
}

TEST(PowerFsm, HandoverChargesArbiter) {
  PowerFsm fsm(small_cfg());
  CycleView a = idle_view();
  fsm.step(a);
  const double arb_before = fsm.block_totals().arb;
  CycleView b = idle_view();
  b.hmaster = 1;
  b.grant_vector = 0b010;
  fsm.step(b);
  const double arb_delta = fsm.block_totals().arb - arb_before;
  // Baseline idle arbiter energy:
  PowerFsm fsm2(small_cfg());
  fsm2.step(a);
  const double before2 = fsm2.block_totals().arb;
  fsm2.step(a);
  const double idle_delta = fsm2.block_totals().arb - before2;
  EXPECT_GT(arb_delta, idle_delta * 2);
}

TEST(PowerFsm, ResetClearsAccumulation) {
  PowerFsm fsm(small_cfg());
  fsm.step(write_view(0x123, 0x456));
  fsm.step(read_view(0x123, 0x456));
  EXPECT_GT(fsm.total_energy(), 0.0);
  fsm.reset();
  EXPECT_DOUBLE_EQ(fsm.total_energy(), 0.0);
  EXPECT_EQ(fsm.cycles(), 0u);
  EXPECT_TRUE(fsm.instructions().empty());
  EXPECT_EQ(fsm.mode(), BusMode::kIdle);
}

TEST(PowerFsm, ActivityStorageIsPopulated) {
  PowerFsm fsm(small_cfg());
  fsm.step(write_view(0x0, 0x0));
  fsm.step(write_view(0xFFFFFFFF, 0xFFFFFFFF));
  const Activity& a = fsm.activity();
  ASSERT_NE(a.find("haddr"), nullptr);
  EXPECT_EQ(a.find("haddr")->bit_change_count(), 32u);
  ASSERT_NE(a.find("hwdata"), nullptr);
  EXPECT_EQ(a.find("hwdata")->bit_change_count(), 32u);
}

TEST(BlockEnergy, Arithmetic) {
  BlockEnergy a{.arb = 1, .dec = 2, .m2s = 3, .s2m = 4};
  EXPECT_DOUBLE_EQ(a.total(), 10.0);
  BlockEnergy b{.arb = 1, .dec = 1, .m2s = 1, .s2m = 1};
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 14.0);
  EXPECT_DOUBLE_EQ(a.m2s, 4.0);
}

}  // namespace
}  // namespace ahbp::power
