// Unit tests for result rendering: instruction table, block breakdown,
// shares, trace CSV, and unit formatting.

#include "power/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/report.hpp"

namespace ahbp::power {
namespace {

TEST(Format, Energy) {
  EXPECT_EQ(format_energy(0.0), "0 J");
  EXPECT_EQ(format_energy(14.7e-12), "14.70 pJ");
  EXPECT_EQ(format_energy(839.6e-6), "839.600 uJ");
  EXPECT_EQ(format_energy(2.5e-9), "2.500 nJ");
  EXPECT_EQ(format_energy(1.5e-3), "1.500 mJ");
  EXPECT_EQ(format_energy(3e-15), "3.00 fJ");
}

TEST(Format, Power) {
  EXPECT_EQ(format_power(0.0), "0 W");
  EXPECT_EQ(format_power(2.5e-3), "2.500 mW");
  EXPECT_EQ(format_power(150e-6), "150.000 uW");
  EXPECT_EQ(format_power(1.25), "1.250 W");
}

PowerFsm make_fsm_with_history() {
  PowerFsm fsm(PowerFsm::Config{.n_masters = 3, .n_slaves = 4});
  CycleView idle;
  idle.grant_vector = 1;
  CycleView wr = idle;
  wr.data_active = true;
  wr.data_write = true;
  wr.haddr = 0xAAAA5555;
  wr.hwdata = 0x12345678;
  CycleView rd = idle;
  rd.data_active = true;
  rd.data_write = false;
  rd.haddr = 0x5555AAAA;
  rd.hrdata = 0x87654321;
  CycleView ho = idle;
  ho.req_vector = 0b010;

  fsm.step(idle);
  for (int i = 0; i < 10; ++i) {
    fsm.step(wr);
    fsm.step(rd);
  }
  fsm.step(ho);
  fsm.step(ho);
  fsm.step(idle);
  return fsm;
}

TEST(Report, InstructionTableSortedByTotal) {
  PowerFsm fsm = make_fsm_with_history();
  const auto rows = instruction_table(fsm);
  ASSERT_GE(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].total_j, rows[i].total_j);
  }
  double pct = 0.0;
  for (const auto& r : rows) pct += r.percent;
  EXPECT_NEAR(pct, 100.0, 1e-6);
}

TEST(Report, FormattedTableMentionsInstructions) {
  PowerFsm fsm = make_fsm_with_history();
  const std::string s = format_instruction_table(fsm);
  EXPECT_NE(s.find("WRITE_READ"), std::string::npos);
  EXPECT_NE(s.find("READ_WRITE"), std::string::npos);
  EXPECT_NE(s.find("Total simulation energy"), std::string::npos);
}

TEST(Report, SharesPartitionSensibly) {
  PowerFsm fsm = make_fsm_with_history();
  const double data = data_transfer_share(fsm);
  const double arb = arbitration_share(fsm);
  EXPECT_GT(data, 0.5);
  EXPECT_GT(arb, 0.0);
  EXPECT_LE(data + arb, 1.0 + 1e-9);
}

TEST(Report, BlockBreakdownPercentagesSumTo100) {
  BlockEnergy e{.arb = 1e-9, .dec = 2e-9, .m2s = 5e-9, .s2m = 2e-9};
  const std::string s = format_block_breakdown(e);
  EXPECT_NE(s.find("M2S"), std::string::npos);
  EXPECT_NE(s.find("50.00 %"), std::string::npos);  // m2s = 5/10
  EXPECT_NE(s.find("10.00 %"), std::string::npos);  // arb = 1/10
}

TEST(Report, TraceCsvHasHeaderAndRows) {
  PowerTrace tr(sim::SimTime::ns(100));
  BlockEnergy e{.arb = 1e-12, .dec = 1e-12, .m2s = 2e-12, .s2m = 1e-12};
  tr.record(sim::SimTime::ns(10), e);
  tr.record(sim::SimTime::ns(150), e);
  tr.flush();
  std::ostringstream os;
  write_trace_csv(os, tr);
  const std::string s = os.str();
  EXPECT_NE(s.find("time_us,p_total_mw"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);  // header + 2 windows
}

TEST(Report, FormatTraceSelectsBlock) {
  PowerTrace tr(sim::SimTime::ns(100));
  BlockEnergy e{.arb = 4e-12, .dec = 0, .m2s = 0, .s2m = 0};
  tr.record(sim::SimTime::ns(10), e);
  tr.flush();
  const std::string total = format_trace(tr, "total");
  const std::string arb = format_trace(tr, "arb");
  const std::string dec = format_trace(tr, "dec");
  EXPECT_NE(total.find("40.000 uW"), std::string::npos);  // 4pJ/100ns
  EXPECT_NE(arb.find("40.000 uW"), std::string::npos);
  EXPECT_NE(dec.find("0 W"), std::string::npos);
}

TEST(Report, FormatTraceHonorsUntil) {
  PowerTrace tr(sim::SimTime::ns(100));
  BlockEnergy e{.arb = 1e-12};
  for (int i = 0; i < 10; ++i) {
    tr.record(sim::SimTime::ns(100) * i + sim::SimTime::ns(5), e);
  }
  tr.flush();
  const std::string all = format_trace(tr, "total");
  const std::string cut = format_trace(tr, "total", sim::SimTime::ns(300));
  EXPECT_GT(std::count(all.begin(), all.end(), '\n'),
            std::count(cut.begin(), cut.end(), '\n'));
}

TEST(Trace, WindowsCloseOnBoundaries) {
  PowerTrace tr(sim::SimTime::us(1));
  BlockEnergy e{.m2s = 1e-12};
  tr.record(sim::SimTime::ns(100), e);
  tr.record(sim::SimTime::ns(900), e);
  EXPECT_TRUE(tr.points().empty());  // first window still open
  tr.record(sim::SimTime::ns(1100), e);
  ASSERT_EQ(tr.points().size(), 1u);
  EXPECT_DOUBLE_EQ(tr.points()[0].energy.m2s, 2e-12);
  EXPECT_EQ(tr.points()[0].start, sim::SimTime::zero());
  tr.flush();
  ASSERT_EQ(tr.points().size(), 2u);
  EXPECT_EQ(tr.points()[1].start, sim::SimTime::us(1));
}

TEST(Trace, GapsProduceEmptyWindows) {
  PowerTrace tr(sim::SimTime::us(1));
  BlockEnergy e{.m2s = 1e-12};
  tr.record(sim::SimTime::ns(100), e);
  tr.record(sim::SimTime::us(3) + sim::SimTime::ns(100), e);
  ASSERT_EQ(tr.points().size(), 3u);
  EXPECT_DOUBLE_EQ(tr.points()[1].energy.total(), 0.0);
  EXPECT_DOUBLE_EQ(tr.points()[2].energy.total(), 0.0);
}

TEST(Trace, RejectsZeroWindow) {
  EXPECT_THROW(PowerTrace(sim::SimTime::zero()), sim::SimError);
}

TEST(Report, InstructionCsv) {
  PowerFsm fsm = make_fsm_with_history();
  std::ostringstream os;
  write_instruction_csv(os, fsm);
  const std::string s = os.str();
  EXPECT_NE(s.find("instruction,count,avg_pj,total_pj,percent"),
            std::string::npos);
  EXPECT_NE(s.find("WRITE_READ,"), std::string::npos);
  // One header + one line per observed instruction.
  EXPECT_EQ(static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n')),
            1 + fsm.instructions().size());
}

TEST(Report, ActivityReport) {
  PowerFsm fsm = make_fsm_with_history();
  const std::string s = format_activity_report(fsm.activity());
  EXPECT_NE(s.find("haddr"), std::string::npos);
  EXPECT_NE(s.find("hwdata"), std::string::npos);
  EXPECT_NE(s.find("mean HD"), std::string::npos);
}

TEST(Report, ActivityReportChangeProbabilityBounds) {
  Activity a;
  auto& ch = a.channel("x");
  ch.store_activity(0);
  ch.store_activity(1);
  ch.store_activity(1);
  const std::string s = format_activity_report(a);
  // P(change) = 1 change / 2 transitions = 0.5.
  EXPECT_NE(s.find("0.500"), std::string::npos);
}

}  // namespace
}  // namespace ahbp::power
