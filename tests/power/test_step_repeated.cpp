// Tests for the batched PowerFsm::step_repeated fast path and for the
// estimator's physics (energy vs frequency, VCD power channels).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

PowerFsm::Config cfg3x4() { return PowerFsm::Config{.n_masters = 3, .n_slaves = 4}; }

CycleView busy_view() {
  CycleView v;
  v.data_active = true;
  v.data_write = true;
  v.haddr = 0x5A5A;
  v.hwdata = 0xF0F0F0F0;
  v.grant_vector = 1;
  return v;
}

TEST(StepRepeated, MatchesLoopOfSteps) {
  PowerFsm looped(cfg3x4()), batched(cfg3x4());
  const CycleView v = busy_view();
  for (int i = 0; i < 100; ++i) looped.step(v);
  batched.step_repeated(v, 100);

  EXPECT_EQ(batched.cycles(), looped.cycles());
  EXPECT_NEAR(batched.total_energy(), looped.total_energy(),
              looped.total_energy() * 1e-12);
  EXPECT_NEAR(batched.block_totals().m2s, looped.block_totals().m2s,
              looped.block_totals().m2s * 1e-12);
  EXPECT_NEAR(batched.block_totals().arb, looped.block_totals().arb,
              looped.block_totals().arb * 1e-12);
  // Instruction tables agree.
  const auto lt = looped.instructions();
  const auto bt = batched.instructions();
  ASSERT_EQ(lt.size(), bt.size());
  for (const auto& [name, st] : lt) {
    ASSERT_TRUE(bt.count(name)) << name;
    EXPECT_EQ(bt.at(name).count, st.count) << name;
    EXPECT_NEAR(bt.at(name).energy, st.energy, st.energy * 1e-12) << name;
  }
  // Per-master attribution agrees too.
  EXPECT_NEAR(batched.per_master_energy()[0], looped.per_master_energy()[0],
              looped.per_master_energy()[0] * 1e-12);
}

TEST(StepRepeated, SmallCountsAndZero) {
  PowerFsm a(cfg3x4()), b(cfg3x4());
  const CycleView v = busy_view();
  a.step_repeated(v, 0);
  EXPECT_EQ(a.cycles(), 0u);
  a.step_repeated(v, 1);
  b.step(v);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  a.step_repeated(v, 2);
  b.step(v);
  b.step(v);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_NEAR(a.total_energy(), b.total_energy(), b.total_energy() * 1e-12);
}

TEST(Physics, EnergyIndependentOfFrequencyPowerScalesWithIt) {
  // The same number of bus cycles at half the clock: identical switching
  // energy, half the average power.
  auto run = [](std::int64_t period_ns) {
    sim::Kernel k;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(period_ns), 0.5,
                   sim::SimTime::ns(period_ns));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TrafficMaster m(&top, "m", bus,
                         {.addr_base = 0, .addr_range = 0x1000, .seed = 91});
    ahb::MemorySlave s(&top, "s", bus, {.base = 0, .size = 0x1000});
    bus.finalize();
    AhbPowerEstimator est(&top, "power", bus);
    k.run(sim::SimTime::ns(period_ns) * 2000);  // 2000 cycles either way
    return std::pair{est.total_energy(),
                     est.total_energy() / k.now().to_seconds()};
  };
  const auto [e100, p100] = run(10);  // 100 MHz
  const auto [e50, p50] = run(20);    // 50 MHz
  EXPECT_NEAR(e50, e100, e100 * 0.01);      // same activity, same energy
  EXPECT_NEAR(p50, p100 / 2, p100 * 0.02);  // half the power
}

TEST(VcdIntegration, PowerChannelDumpsWindowedPower) {
  const std::string path = ::testing::TempDir() + "power_trace_test.vcd";
  {
    sim::Kernel k;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TrafficMaster m(&top, "m", bus,
                         {.addr_base = 0, .addr_range = 0x1000, .seed = 92});
    ahb::MemorySlave s(&top, "s", bus, {.base = 0, .size = 0x1000});
    bus.finalize();
    AhbPowerEstimator est(&top, "power", bus);
    sim::VcdWriter vcd(path, k);
    // Dump the accumulated energy (in fJ) as a 32-bit channel: the VCD
    // shows the staircase climbing with bus activity.
    vcd.add_channel("bus_energy_fJ", 32, [&est] {
      return static_cast<std::uint64_t>(est.total_energy() * 1e15) & 0xFFFFFFFFull;
    });
    k.run(sim::SimTime::us(2));
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("bus_energy_fJ"), std::string::npos);
  // The channel changed at least a few dozen times over 200 cycles.
  std::size_t changes = 0, pos = 0;
  while ((pos = text.find("\nb", pos)) != std::string::npos) {
    ++changes;
    ++pos;
  }
  EXPECT_GT(changes, 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ahbp::power
