// Tests for the whole-system roll-up: memory energy model and summary.

#include "power/system.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

TEST(MemoryModel, BiggerMemoriesCostMorePerAccess) {
  const gate::Technology tech;
  MemoryEnergyModel small(1024, tech), big(64 * 1024, tech);
  EXPECT_GT(big.read_energy(), small.read_energy());
  EXPECT_GT(big.write_energy(), small.write_energy());
  // Sub-linear growth: 64x the size costs well under 64x per access.
  EXPECT_LT(big.read_energy(), 16 * small.read_energy());
}

TEST(MemoryModel, WritesCostMoreThanReads) {
  MemoryEnergyModel m(4096, gate::Technology{});
  EXPECT_GT(m.write_energy(), m.read_energy());
  EXPECT_LT(m.idle_cycle_energy(), m.read_energy() / 10);
}

TEST(MemoryModel, TotalAccounting) {
  MemoryEnergyModel m(4096, gate::Technology{});
  ahb::MemorySlave::Stats st;
  st.reads = 100;
  st.writes = 50;
  const double e = m.total(st, 1000);
  const double expect = 100 * m.read_energy() + 50 * m.write_energy() +
                        850 * m.idle_cycle_energy();
  EXPECT_NEAR(e, expect, expect * 1e-12);
}

TEST(MemoryModel, RejectsEmpty) {
  EXPECT_THROW(MemoryEnergyModel(0, gate::Technology{}), sim::SimError);
}

TEST(SystemSummary, TotalsAndFormat) {
  SystemPowerSummary sum;
  sum.add("ahb fabric", 4e-9);
  sum.add("sram", 5e-9);
  sum.add("apb", 1e-9);
  EXPECT_NEAR(sum.total(), 10e-9, 1e-18);
  const std::string s = sum.format(1e-5);
  EXPECT_NE(s.find("sram"), std::string::npos);
  EXPECT_NE(s.find("50.00 %"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  // Sorted: sram (largest) appears before apb.
  EXPECT_LT(s.find("sram"), s.find("apb"));
}

TEST(SystemSummary, EndToEndWithLiveRun) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster dm(&top, "dm", bus);
  ahb::TrafficMaster m(&top, "m", bus,
                       {.addr_base = 0, .addr_range = 0x1000, .seed = 3});
  ahb::MemorySlave ram(&top, "ram", bus, {.base = 0, .size = 0x1000});
  bus.finalize();
  AhbPowerEstimator est(&top, "power", bus);
  k.run(sim::SimTime::us(20));

  MemoryEnergyModel ram_model(0x1000, gate::Technology{});
  SystemPowerSummary sum;
  sum.add("ahb fabric", est.total_energy());
  sum.add("ram", ram_model.total(ram.stats(), est.fsm().cycles()));
  EXPECT_GT(sum.total(), est.total_energy());
  // The memory array out-spends the bus fabric per access -- the bus
  // analysis alone understates system power, which is why the roll-up
  // exists.
  EXPECT_GT(sum.items()[1].energy, 0.0);
  const std::string s = sum.format(k.now().to_seconds());
  EXPECT_NE(s.find("ahb fabric"), std::string::npos);
}

}  // namespace
}  // namespace ahbp::power
