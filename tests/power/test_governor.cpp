// Tests for the dynamic-power-management governor: budget enforcement,
// throttle signalling, and the performance/power trade-off.

#include "power/governor.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

using ahb::AhbBus;
using ahb::DefaultMaster;
using ahb::MemorySlave;
using ahb::TrafficMaster;

struct GovernorBench {
  /// budget <= 0 disables throttling (masters get no throttle signal).
  explicit GovernorBench(double budget_watts)
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus) {
    m1 = std::make_unique<TrafficMaster>(
        &top, "m1", bus,
        TrafficMaster::Config{.addr_base = 0x0000, .addr_range = 0x1000, .seed = 31});
    m2 = std::make_unique<TrafficMaster>(
        &top, "m2", bus,
        TrafficMaster::Config{.addr_base = 0x1000, .addr_range = 0x1000, .seed = 32});
    bus_slaves();
    bus.finalize();
    est = std::make_unique<AhbPowerEstimator>(&top, "power", bus);
    if (budget_watts > 0) {
      gov = std::make_unique<PowerGovernor>(
          &top, "gov", *est,
          PowerGovernor::Config{.budget_watts = budget_watts, .window_cycles = 32});
      m1->set_throttle(&gov->throttle());
      m2->set_throttle(&gov->throttle());
    }
  }

  void bus_slaves() {
    s1 = std::make_unique<MemorySlave>(
        &top, "s1", bus, MemorySlave::Config{.base = 0x0000, .size = 0x1000});
    s2 = std::make_unique<MemorySlave>(
        &top, "s2", bus, MemorySlave::Config{.base = 0x1000, .size = 0x1000});
  }

  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
  DefaultMaster dm;
  std::unique_ptr<MemorySlave> s1, s2;
  std::unique_ptr<AhbPowerEstimator> est;
  std::unique_ptr<PowerGovernor> gov;
  std::unique_ptr<TrafficMaster> m1, m2;
};

TEST(Governor, RejectsBadConfig) {
  GovernorBench b(-1.0);
  EXPECT_THROW(PowerGovernor(&b.top, "g1", *b.est,
                             PowerGovernor::Config{.budget_watts = 0}),
               sim::SimError);
  EXPECT_THROW(PowerGovernor(&b.top, "g2", *b.est,
                             PowerGovernor::Config{.budget_watts = 1e-3,
                                                   .window_cycles = 0}),
               sim::SimError);
}

TEST(Governor, GenerousBudgetNeverThrottles) {
  GovernorBench b(10.0);  // 10 W: never reachable
  b.run_cycles(3000);
  ASSERT_TRUE(b.gov != nullptr);
  EXPECT_EQ(b.gov->stats().over_budget_windows, 0u);
  EXPECT_FALSE(b.gov->throttle().read());
  EXPECT_EQ(b.m1->stats().throttled_cycles, 0u);
  EXPECT_GT(b.gov->stats().windows, 50u);
}

TEST(Governor, TightBudgetThrottlesMasters) {
  // Unthrottled mean bus power is ~0.8 mW; ask for a quarter of that.
  GovernorBench b(0.2e-3);
  b.run_cycles(5000);
  EXPECT_GT(b.gov->stats().over_budget_windows, 0u);
  EXPECT_GT(b.m1->stats().throttled_cycles + b.m2->stats().throttled_cycles, 0u);
}

TEST(Governor, ThrottlingReducesMeanPowerAndThroughput) {
  std::uint64_t free_transfers = 0, capped_transfers = 0;
  double free_power = 0.0, capped_power = 0.0;
  {
    GovernorBench b(-1.0);  // no governor at all
    b.run_cycles(5000);
    free_transfers = b.m1->stats().writes + b.m2->stats().writes;
    free_power = b.est->total_energy() / b.kernel.now().to_seconds();
  }
  {
    GovernorBench b(0.2e-3);
    b.run_cycles(5000);
    capped_transfers = b.m1->stats().writes + b.m2->stats().writes;
    capped_power = b.est->total_energy() / b.kernel.now().to_seconds();
  }
  EXPECT_LT(capped_power, free_power);
  EXPECT_LT(capped_transfers, free_transfers);
  EXPECT_GT(capped_transfers, 0u);  // still makes progress
}

TEST(Governor, StatsTrackWindows) {
  GovernorBench b(1.0);
  b.run_cycles(3200);
  // 3200 cycles / 32-cycle windows ~ 100 windows (first partial cycle).
  EXPECT_NEAR(static_cast<double>(b.gov->stats().windows), 100.0, 3.0);
  EXPECT_GT(b.gov->stats().mean_window_power, 0.0);
  EXPECT_GE(b.gov->stats().peak_window_power, b.gov->stats().mean_window_power);
}

}  // namespace
}  // namespace ahbp::power
