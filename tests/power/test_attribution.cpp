// Tests for per-master energy attribution and for calibrated macromodel
// coefficients plumbed from charlib into the power FSM.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "charlib/charlib.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

using ahb::AhbBus;
using ahb::DefaultMaster;
using ahb::MemorySlave;
using ahb::TrafficMaster;

TEST(Attribution, EnergySplitsAcrossMasters) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  TrafficMaster m1(&top, "m1", bus,
                   {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 71});
  TrafficMaster m2(&top, "m2", bus,
                   {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 72});
  MemorySlave s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
  bus.finalize();
  AhbPowerEstimator est(&top, "power", bus);
  k.run(sim::SimTime::us(30));

  const auto& per = est.fsm().per_master_energy();
  ASSERT_EQ(per.size(), 3u);
  double sum = 0.0;
  for (double e : per) sum += e;
  EXPECT_NEAR(sum, est.total_energy(), est.total_energy() * 1e-9);
  // Both traffic masters burn real energy; the parked default master's
  // share is the residual idle cost.
  EXPECT_GT(per[1], 0.0);
  EXPECT_GT(per[2], 0.0);
  EXPECT_GT(per[1], per[0]);
  EXPECT_GT(per[2], per[0]);
}

TEST(Attribution, AsymmetricWorkloadsShowAsymmetricShares) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  // m1 works hard, m2 mostly idles.
  TrafficMaster m1(&top, "m1", bus,
                   {.addr_base = 0x0000, .addr_range = 0x1000,
                    .min_idle_cycles = 1, .max_idle_cycles = 2,
                    .min_pairs = 10, .max_pairs = 24, .seed = 81});
  TrafficMaster m2(&top, "m2", bus,
                   {.addr_base = 0x1000, .addr_range = 0x1000,
                    .min_idle_cycles = 60, .max_idle_cycles = 120,
                    .min_pairs = 1, .max_pairs = 2, .seed = 82});
  MemorySlave s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
  bus.finalize();
  AhbPowerEstimator est(&top, "power", bus);
  k.run(sim::SimTime::us(50));

  const auto& per = est.fsm().per_master_energy();
  EXPECT_GT(per[1], 3 * per[2]);
}

TEST(Attribution, SplitReworkConservesEnergy) {
  // SPLIT rework traffic -- two-cycle responses, masked-master handover
  // cycles, resume re-grants, re-issued transfers -- must attribute
  // conservation-exact: per-master energies sum to the PowerFsm total
  // within 1e-9 relative error.
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  std::vector<ahb::ScriptedMaster::Op> script;
  for (int i = 0; i < 24; ++i) {
    script.push_back({i % 2 ? ahb::ScriptedMaster::Op::Kind::kRead
                            : ahb::ScriptedMaster::Op::Kind::kWrite,
                      0x100u + 4u * static_cast<std::uint32_t>(i / 2),
                      0xC0DE0000u + static_cast<std::uint32_t>(i), 0});
  }
  ahb::ScriptedMaster m1(&top, "m1", bus, script,
                         ahb::ScriptedMaster::Options{.retry = true,
                                                      .max_retries = 8});
  TrafficMaster m2(&top, "m2", bus,
                   {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 72});
  // Every 3rd transfer to s1 SPLITs; s2 stays clean.
  MemorySlave s1(&top, "s1", bus,
                 {.base = 0x0000,
                  .size = 0x1000,
                  .fault_hook = [](const ahb::FaultQuery& q) {
                    ahb::FaultDecision d;
                    if (q.transfer_index % 3 == 1) {
                      d.resp = ahb::Resp::kSplit;
                      d.split_resume_cycles = 3;
                    }
                    return d;
                  }});
  MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
  bus.finalize();
  AhbPowerEstimator est(&top, "power", bus);
  k.run(sim::SimTime::us(30));

  ASSERT_TRUE(m1.finished());
  EXPECT_GT(m1.splits(), 0u);
  EXPECT_GT(s1.stats().splits, 0u);

  const auto& per = est.fsm().per_master_energy();
  ASSERT_EQ(per.size(), 3u);
  double sum = 0.0;
  for (double e : per) sum += e;
  EXPECT_NEAR(sum, est.total_energy(), est.total_energy() * 1e-9);
  EXPECT_GT(per[1], 0.0);  // the split-and-reworked master still pays
}

TEST(Attribution, ReportFormatsNamesAndShares) {
  PowerFsm fsm(PowerFsm::Config{.n_masters = 2, .n_slaves = 2});
  CycleView v;
  v.hmaster = 1;
  v.grant_vector = 2;
  v.data_active = true;
  v.data_write = true;
  v.haddr = 0xFFFF;
  v.hwdata = 0xAAAA;
  fsm.step(v);
  v.hwdata = 0x5555;
  fsm.step(v);
  const std::string s =
      format_master_attribution(fsm, {"default", "cpu"});
  EXPECT_NE(s.find("cpu"), std::string::npos);
  EXPECT_NE(s.find("default"), std::string::npos);
  EXPECT_NE(s.find("100.00 %"), std::string::npos);  // all energy on cpu
}

TEST(Attribution, ResetClearsPerMasterTotals) {
  PowerFsm fsm(PowerFsm::Config{.n_masters = 2, .n_slaves = 2});
  CycleView v;
  v.data_active = true;
  v.haddr = 0xF0F0;
  fsm.step(v);
  fsm.reset();
  for (double e : fsm.per_master_energy()) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(Calibration, FittedCoefficientsChangeTheEstimate) {
  // Fit the M2S-sized mux against gate level, plumb the coefficients in,
  // and verify the estimate moves (and stays positive and finite).
  const auto fit = charlib::characterize_mux(16, 3, 800, 33);
  PowerFsm::Config base{.n_masters = 3, .n_slaves = 4};
  PowerFsm::Config calibrated = base;
  calibrated.m2s_coefficients = fit.calibrated;

  PowerFsm fsm_a(base), fsm_b(calibrated);
  CycleView v;
  v.data_active = true;
  v.data_write = true;
  v.haddr = 0x1234;
  v.hwdata = 0xDEADBEEF;
  CycleView v2 = v;
  v2.haddr = 0x4321;
  v2.hwdata = 0x0BADF00D;
  for (int i = 0; i < 10; ++i) {
    fsm_a.step(i % 2 ? v : v2);
    fsm_b.step(i % 2 ? v : v2);
  }
  EXPECT_GT(fsm_b.total_energy(), 0.0);
  EXPECT_NE(fsm_a.total_energy(), fsm_b.total_energy());
  // The calibrated coefficients came out positive (sanity of the fit).
  EXPECT_GT(fit.calibrated.k_in, 0.0);
}

}  // namespace
}  // namespace ahbp::power
