// Unit tests for the sub-block energy macromodels.

#include "power/macromodel.hpp"

#include <gtest/gtest.h>

#include "sim/report.hpp"

namespace ahbp::power {
namespace {

using sim::SimError;

TEST(LinearModel, EvaluatesAffineForm) {
  LinearModel m({1.0, 2.0, 3.0});  // 1 + 2*x0 + 3*x1
  EXPECT_DOUBLE_EQ(m.energy({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.energy({1.0, 1.0}), 6.0);
  EXPECT_DOUBLE_EQ(m.energy({2.0, -1.0}), 2.0);
}

TEST(LinearModel, RejectsMisuse) {
  LinearModel empty;
  EXPECT_THROW((void)empty.energy({1.0}), SimError);
  LinearModel m({1.0, 2.0});
  EXPECT_THROW((void)m.energy({1.0, 2.0}), SimError);
}

TEST(DecoderModel, MatchesPaperClosedForm) {
  // E_DEC = VDD^2/4 * (nO*nI*C_PD*HD_IN + 2*HD_OUT*C_O)
  gate::Technology tech;
  tech.vdd = 2.0;
  tech.c_node = 10e-15;
  tech.c_out = 40e-15;
  DecoderModel m(4, tech);  // nO=4 -> nI=2
  const double vdd2_4 = 1.0;  // 2^2/4
  EXPECT_DOUBLE_EQ(m.energy(0u), 0.0);
  EXPECT_DOUBLE_EQ(m.energy(1u),
                   vdd2_4 * (4.0 * 2.0 * 10e-15 * 1 + 2.0 * 40e-15));
  EXPECT_DOUBLE_EQ(m.energy(2u),
                   vdd2_4 * (4.0 * 2.0 * 10e-15 * 2 + 2.0 * 40e-15));
}

TEST(DecoderModel, InputCountFollowsPaperRule) {
  gate::Technology tech;
  EXPECT_EQ(DecoderModel(2, tech).n_inputs(), 1u);
  EXPECT_EQ(DecoderModel(4, tech).n_inputs(), 2u);
  EXPECT_EQ(DecoderModel(5, tech).n_inputs(), 3u);
  EXPECT_EQ(DecoderModel(16, tech).n_inputs(), 4u);
}

TEST(DecoderModel, WordOverloadComputesHd) {
  gate::Technology tech;
  DecoderModel m(8, tech);
  EXPECT_DOUBLE_EQ(m.energy(0b000u, 0b101u), m.energy(2u));
  EXPECT_DOUBLE_EQ(m.energy(0b111u, 0b111u), 0.0);
}

TEST(DecoderModel, MonotonicInActivityAndSize) {
  gate::Technology tech;
  DecoderModel m4(4, tech), m16(16, tech);
  EXPECT_LT(m4.energy(1u), m4.energy(2u));
  EXPECT_LT(m4.energy(2u), m16.energy(2u));
}

TEST(DecoderModel, RejectsDegenerate) {
  EXPECT_THROW(DecoderModel(1, gate::Technology{}), SimError);
}

TEST(MuxModel, ZeroActivityZeroEnergy) {
  MuxModel m(32, 4, gate::Technology{});
  EXPECT_DOUBLE_EQ(m.energy(0, 0, 0), 0.0);
}

TEST(MuxModel, SelectSwitchScalesWithWidth) {
  gate::Technology tech;
  MuxModel narrow(8, 4, tech), wide(64, 4, tech);
  // A select change re-steers every bit slice.
  EXPECT_DOUBLE_EQ(wide.energy(0, 1, 0) / narrow.energy(0, 1, 0), 8.0);
}

TEST(MuxModel, LinearInFeatures) {
  MuxModel m(32, 4, gate::Technology{});
  const double e1 = m.energy(1, 0, 0);
  EXPECT_NEAR(m.energy(3, 0, 0), 3 * e1, 1e-20);
  const double es = m.energy(0, 1, 0);
  const double eo = m.energy(0, 0, 1);
  EXPECT_NEAR(m.energy(2, 1, 3), 2 * e1 + es + 3 * eo, 1e-20);
}

TEST(MuxModel, CustomCoefficients) {
  gate::Technology tech;
  MuxModel m(16, 2, tech, MuxModel::Coefficients{.k_in = 1.0, .k_sel = 0.0, .k_out = 0.0});
  const double unit = tech.vdd * tech.vdd / 4.0 * tech.c_node;
  EXPECT_DOUBLE_EQ(m.energy(5, 7, 9), 5 * unit);
}

TEST(MuxModel, RejectsDegenerate) {
  EXPECT_THROW(MuxModel(0, 4, gate::Technology{}), SimError);
  EXPECT_THROW(MuxModel(8, 1, gate::Technology{}), SimError);
}

TEST(ArbiterFsmModel, ComponentsAddUp) {
  gate::Technology tech;
  ArbiterFsmModel m(3, tech);
  EXPECT_DOUBLE_EQ(m.energy(0, false), m.idle_energy());
  EXPECT_DOUBLE_EQ(m.energy(2, false), m.idle_energy() + 2 * m.request_energy());
  EXPECT_DOUBLE_EQ(m.energy(1, true),
                   m.idle_energy() + m.request_energy() + m.handover_energy());
}

TEST(ArbiterFsmModel, HandoverDominatesIdle) {
  ArbiterFsmModel m(3, gate::Technology{});
  EXPECT_GT(m.handover_energy(), m.idle_energy());
}

TEST(ArbiterFsmModel, RejectsDegenerate) {
  EXPECT_THROW(ArbiterFsmModel(1, gate::Technology{}), SimError);
}

TEST(Macromodels, EnergyScalesWithVddSquared) {
  gate::Technology lo, hi;
  lo.vdd = 1.0;
  hi.vdd = 3.0;
  DecoderModel dlo(4, lo), dhi(4, hi);
  EXPECT_NEAR(dhi.energy(2u) / dlo.energy(2u), 9.0, 1e-12);
  MuxModel mlo(16, 4, lo), mhi(16, 4, hi);
  EXPECT_NEAR(mhi.energy(3, 1, 3) / mlo.energy(3, 1, 3), 9.0, 1e-12);
}

}  // namespace
}  // namespace ahbp::power
