// Tests for the analytic (simulation-free) power predictor: exactness
// against measured statistics, plausibility of a-priori assumptions.

#include "power/analytic.hpp"

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::power {
namespace {

PowerFsm::Config cfg3x4() { return PowerFsm::Config{.n_masters = 3, .n_slaves = 4}; }

TEST(Analytic, ZeroActivityCostsOnlyArbiterIdle) {
  AnalyticPowerModel m(cfg3x4());
  const WorkloadStats quiet{};
  const BlockEnergy e = m.blocks_per_cycle(quiet);
  EXPECT_DOUBLE_EQ(e.dec, 0.0);
  EXPECT_DOUBLE_EQ(e.m2s, 0.0);
  EXPECT_DOUBLE_EQ(e.s2m, 0.0);
  EXPECT_GT(e.arb, 0.0);  // state-register clocking
}

TEST(Analytic, LinearInEveryFeature) {
  AnalyticPowerModel m(cfg3x4());
  WorkloadStats s{};
  s.hd_wdata = 4.0;
  const double e1 = m.energy_per_cycle(s);
  s.hd_wdata = 8.0;
  const double e2 = m.energy_per_cycle(s);
  WorkloadStats zero{};
  const double e0 = m.energy_per_cycle(zero);
  EXPECT_NEAR(e2 - e0, 2.0 * (e1 - e0), 1e-20);
}

TEST(Analytic, ReproducesSimulatedEnergyFromMeasuredStats) {
  // Run the paper testbench; feed the measured per-cycle statistics back
  // through the closed form: it must land on the simulated total
  // (the models are linear; only empirical indicator terms intervene).
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster dm(&top, "dm", bus);
  ahb::TrafficMaster m1(&top, "m1", bus,
                        {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 51});
  ahb::TrafficMaster m2(&top, "m2", bus,
                        {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 52});
  ahb::MemorySlave s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000});
  ahb::MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
  bus.finalize();
  AhbPowerEstimator est(&top, "power", bus);
  ahb::BusMonitor mon(&top, "mon", bus);
  k.run(sim::SimTime::us(50));

  const std::uint64_t cycles = est.fsm().cycles();
  const double p_handover = static_cast<double>(mon.stats().handovers) /
                            static_cast<double>(cycles);
  const WorkloadStats stats =
      AnalyticPowerModel::from_activity(est.fsm().activity(), cycles, p_handover);

  AnalyticPowerModel model(est.fsm().config());
  const double predicted = model.energy_per_cycle(stats) * static_cast<double>(cycles);
  const double measured = est.total_energy();
  EXPECT_NEAR(predicted, measured, 0.02 * measured)
      << "analytic reconstruction should be near-exact";

  // Per-block reconstruction too.
  const BlockEnergy pb = model.blocks_per_cycle(stats);
  EXPECT_NEAR(pb.m2s * cycles, est.block_totals().m2s,
              0.02 * est.block_totals().m2s);
  EXPECT_NEAR(pb.dec * cycles, est.block_totals().dec,
              0.05 * est.block_totals().dec);
}

TEST(Analytic, APrioriAssumptionLandsInTheRightBand) {
  // Predict the paper-testbench power *before* simulating: assume ~75%
  // of cycles carry transfers, half writes, 4 KiB windows.
  AnalyticPowerModel model(cfg3x4());
  const WorkloadStats assumed =
      AnalyticPowerModel::assume_random_traffic(0.75, 0.5, 0x1000);
  const double predicted_power = model.power(assumed, 100e6);

  // Measure the real thing.
  double measured_power = 0.0;
  {
    sim::Kernel k;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TrafficMaster m1(&top, "m1", bus,
                          {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 61});
    ahb::TrafficMaster m2(&top, "m2", bus,
                          {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 62});
    ahb::MemorySlave s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000});
    ahb::MemorySlave s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000});
    bus.finalize();
    AhbPowerEstimator est(&top, "power", bus);
    k.run(sim::SimTime::us(50));
    measured_power = est.total_energy() / k.now().to_seconds();
  }

  // "Early, cheap indication": same order of magnitude.
  EXPECT_GT(predicted_power, measured_power / 3);
  EXPECT_LT(predicted_power, measured_power * 3);
}

TEST(Analytic, NonzeroCountTracksIndicator) {
  ActivityChannel ch;
  ch.store_activity(0);
  ch.store_activity(0);    // HD 0
  ch.store_activity(1);    // HD 1
  ch.store_activity(1);    // HD 0
  ch.store_activity(3);    // HD 1
  EXPECT_EQ(ch.nonzero_count(), 2u);
}

}  // namespace
}  // namespace ahbp::power
