// Integration tests for the estimator's telemetry path: cycle-windowed
// energy conservation, bus-instruction trace events, and hot-path /
// end-of-run metrics publication.

#include <gtest/gtest.h>

#include <cmath>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"
#include "telemetry/telemetry.hpp"

namespace ahbp::power {
namespace {

using ahb::AhbBus;
using ahb::DefaultMaster;
using ahb::MemorySlave;
using ahb::TrafficMaster;

/// The paper's testbench plus a telemetry-enabled power estimator.
struct TelemetryBench {
  explicit TelemetryBench(AhbPowerEstimator::Config cfg)
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        m1(&top, "m1", bus, {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 11}),
        m2(&top, "m2", bus, {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 22}),
        s1(&top, "s1", bus, {.base = 0x0000, .size = 0x1000}),
        s2(&top, "s2", bus, {.base = 0x1000, .size = 0x1000}),
        s3(&top, "s3", bus, {.base = 0x2000, .size = 0x1000}) {
    bus.finalize();
    est = std::make_unique<AhbPowerEstimator>(&top, "power", bus, cfg);
  }

  void run_cycles(unsigned n) {
    kernel.run(sim::SimTime::ns(10) * static_cast<std::int64_t>(n));
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
  DefaultMaster dm;
  TrafficMaster m1, m2;
  MemorySlave s1, s2, s3;
  std::unique_ptr<AhbPowerEstimator> est;
};

TEST(EstimatorTelemetry, DisabledByDefault) {
  TelemetryBench b(AhbPowerEstimator::Config{});
  b.run_cycles(100);
  EXPECT_EQ(b.est->windows(), nullptr);
  EXPECT_EQ(b.est->trace_events(), nullptr);
  b.est->flush_telemetry();  // no-op, must not crash
}

TEST(EstimatorTelemetry, WindowEnergiesSumToTotal) {
  TelemetryBench b(
      AhbPowerEstimator::Config{.telemetry_window_cycles = 100});
  b.run_cycles(2000);
  b.est->flush_telemetry();

  ASSERT_NE(b.est->windows(), nullptr);
  const auto& windows = b.est->windows()->windows();
  ASSERT_GE(windows.size(), 19u);  // ~2000 cycles / 100 per window

  double sum = 0.0;
  for (const auto& w : windows) {
    for (const double v : w.values) sum += v;
  }
  const double total = b.est->total_energy();
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(sum, total, 1e-9 * total);  // the conservation guarantee
}

TEST(EstimatorTelemetry, WindowsTileTheCycleAxis) {
  TelemetryBench b(
      AhbPowerEstimator::Config{.telemetry_window_cycles = 64});
  b.run_cycles(1000);
  b.est->flush_telemetry();
  const auto& windows = b.est->windows()->windows();
  ASSERT_FALSE(windows.empty());
  std::uint64_t expect_start = windows.front().start_tick;
  std::uint64_t covered = 0;
  for (const auto& w : windows) {
    EXPECT_EQ(w.start_tick, expect_start);
    expect_start += 64;
    covered += w.ticks;
  }
  EXPECT_EQ(covered, b.est->fsm().cycles());
}

TEST(EstimatorTelemetry, TraceEventsTileTheRun) {
  TelemetryBench b(
      AhbPowerEstimator::Config{.telemetry_window_cycles = 100});
  b.run_cycles(500);
  b.est->flush_telemetry();

  ASSERT_NE(b.est->trace_events(), nullptr);
  const auto& events = b.est->trace_events()->events();
  ASSERT_FALSE(events.empty());
  // Slices are contiguous, non-overlapping, and cover every sampled
  // cycle: each run of same-mode cycles becomes exactly one slice.
  std::uint64_t pos = events.front().start_tick;
  std::uint64_t dur_sum = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.start_tick, pos);
    EXPECT_GT(e.dur_ticks, 0u);
    EXPECT_EQ(e.category, "bus");
    pos += e.dur_ticks;
    dur_sum += e.dur_ticks;
  }
  EXPECT_EQ(dur_sum, b.est->fsm().cycles());
  // Slice names are the paper's four bus instructions.
  for (const auto& e : events) {
    EXPECT_TRUE(e.name == "IDLE" || e.name == "IDLE_HO" || e.name == "READ" ||
                e.name == "WRITE")
        << e.name;
  }
}

TEST(EstimatorTelemetry, FlushIsIdempotent) {
  TelemetryBench b(
      AhbPowerEstimator::Config{.telemetry_window_cycles = 100});
  b.run_cycles(300);
  b.est->flush_telemetry();
  const std::size_t n_windows = b.est->windows()->windows().size();
  const std::size_t n_events = b.est->trace_events()->size();
  b.est->flush_telemetry();
  EXPECT_EQ(b.est->windows()->windows().size(), n_windows);
  EXPECT_EQ(b.est->trace_events()->size(), n_events);
}

TEST(EstimatorTelemetry, LiveMetricsAndPublishedTotals) {
  telemetry::MetricsRegistry metrics;
  TelemetryBench b(AhbPowerEstimator::Config{.metrics = &metrics});
  b.run_cycles(400);

  // Hot-path metrics are live during the run.
  const telemetry::Counter* sampled =
      metrics.find_counter("ahb.power.sampled_cycles");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->value(), b.est->fsm().cycles());
  const telemetry::Histogram* h =
      metrics.find_histogram("ahb.power.cycle_energy_pj");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), b.est->fsm().cycles());
  // The histogram's sum is the run's energy in pJ.
  EXPECT_NEAR(h->sum() * 1e-12, b.est->total_energy(),
              1e-9 * b.est->total_energy());

  // End-of-run totals appear on flush.
  EXPECT_EQ(metrics.find_counter("ahb.power.cycles"), nullptr);
  b.est->flush_telemetry();
  const telemetry::Counter* cycles = metrics.find_counter("ahb.power.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value(), b.est->fsm().cycles());
  const telemetry::Gauge* total = metrics.find_gauge("ahb.power.energy.total_j");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), b.est->total_energy());

  // Publication happens once even if flushed again.
  b.est->flush_telemetry();
  EXPECT_EQ(cycles->value(), b.est->fsm().cycles());
}

TEST(EstimatorTelemetry, DisabledRegistryStaysEmptyButRunProceeds) {
  telemetry::MetricsRegistry metrics;
  metrics.set_enabled(false);
  TelemetryBench b(AhbPowerEstimator::Config{.metrics = &metrics});
  b.run_cycles(200);
  b.est->flush_telemetry();
  EXPECT_GT(b.est->total_energy(), 0.0);  // power analysis unaffected
  const telemetry::Counter* sampled =
      metrics.find_counter("ahb.power.sampled_cycles");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->value(), 0u);  // updates bypassed
}

TEST(EstimatorTelemetry, PerInstructionMetricsMatchFsm) {
  telemetry::MetricsRegistry metrics;
  TelemetryBench b(AhbPowerEstimator::Config{.metrics = &metrics});
  b.run_cycles(300);
  b.est->flush_telemetry();

  std::uint64_t from_metrics = 0;
  for (const auto& [name, c] : metrics.counters()) {
    if (name.rfind("ahb.power.instr.", 0) == 0) from_metrics += c.value();
  }
  // Every sampled cycle executes exactly one instruction (the first
  // cycle counts as a self-transition), so the counts sum to cycles().
  EXPECT_EQ(from_metrics, b.est->fsm().cycles());
}

}  // namespace
}  // namespace ahbp::power
